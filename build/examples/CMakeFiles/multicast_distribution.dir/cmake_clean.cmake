file(REMOVE_RECURSE
  "CMakeFiles/multicast_distribution.dir/multicast_distribution.cpp.o"
  "CMakeFiles/multicast_distribution.dir/multicast_distribution.cpp.o.d"
  "multicast_distribution"
  "multicast_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
