# Empty compiler generated dependencies file for multicast_distribution.
# This may be replaced when dependencies are built.
