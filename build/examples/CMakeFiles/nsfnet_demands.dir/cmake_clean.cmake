file(REMOVE_RECURSE
  "CMakeFiles/nsfnet_demands.dir/nsfnet_demands.cpp.o"
  "CMakeFiles/nsfnet_demands.dir/nsfnet_demands.cpp.o.d"
  "nsfnet_demands"
  "nsfnet_demands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsfnet_demands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
