
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/nsfnet_demands.cpp" "examples/CMakeFiles/nsfnet_demands.dir/nsfnet_demands.cpp.o" "gcc" "examples/CMakeFiles/nsfnet_demands.dir/nsfnet_demands.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lumen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/lumen_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/rwa/CMakeFiles/lumen_rwa.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/lumen_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/wdm/CMakeFiles/lumen_wdm.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lumen_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
