# Empty dependencies file for nsfnet_demands.
# This may be replaced when dependencies are built.
