file(REMOVE_RECURSE
  "CMakeFiles/online_sessions.dir/online_sessions.cpp.o"
  "CMakeFiles/online_sessions.dir/online_sessions.cpp.o.d"
  "online_sessions"
  "online_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
