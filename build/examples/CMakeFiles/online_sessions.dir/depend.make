# Empty dependencies file for online_sessions.
# This may be replaced when dependencies are built.
