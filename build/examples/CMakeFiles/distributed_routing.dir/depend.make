# Empty dependencies file for distributed_routing.
# This may be replaced when dependencies are built.
