# Empty compiler generated dependencies file for protection_alternatives.
# This may be replaced when dependencies are built.
