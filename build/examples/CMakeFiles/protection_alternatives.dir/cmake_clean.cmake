file(REMOVE_RECURSE
  "CMakeFiles/protection_alternatives.dir/protection_alternatives.cpp.o"
  "CMakeFiles/protection_alternatives.dir/protection_alternatives.cpp.o.d"
  "protection_alternatives"
  "protection_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protection_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
