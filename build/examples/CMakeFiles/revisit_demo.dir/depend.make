# Empty dependencies file for revisit_demo.
# This may be replaced when dependencies are built.
