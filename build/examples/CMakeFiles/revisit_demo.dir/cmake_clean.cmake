file(REMOVE_RECURSE
  "CMakeFiles/revisit_demo.dir/revisit_demo.cpp.o"
  "CMakeFiles/revisit_demo.dir/revisit_demo.cpp.o.d"
  "revisit_demo"
  "revisit_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revisit_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
