# Empty compiler generated dependencies file for lumen_route.
# This may be replaced when dependencies are built.
