file(REMOVE_RECURSE
  "CMakeFiles/lumen_route.dir/lumen_route.cpp.o"
  "CMakeFiles/lumen_route.dir/lumen_route.cpp.o.d"
  "lumen_route"
  "lumen_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
