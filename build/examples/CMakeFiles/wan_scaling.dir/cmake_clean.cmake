file(REMOVE_RECURSE
  "CMakeFiles/wan_scaling.dir/wan_scaling.cpp.o"
  "CMakeFiles/wan_scaling.dir/wan_scaling.cpp.o.d"
  "wan_scaling"
  "wan_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
