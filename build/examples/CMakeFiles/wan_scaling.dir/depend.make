# Empty dependencies file for wan_scaling.
# This may be replaced when dependencies are built.
