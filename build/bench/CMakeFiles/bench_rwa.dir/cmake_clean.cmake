file(REMOVE_RECURSE
  "CMakeFiles/bench_rwa.dir/bench_rwa.cc.o"
  "CMakeFiles/bench_rwa.dir/bench_rwa.cc.o.d"
  "bench_rwa"
  "bench_rwa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rwa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
