# Empty dependencies file for bench_rwa.
# This may be replaced when dependencies are built.
