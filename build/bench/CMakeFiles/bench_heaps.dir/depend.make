# Empty dependencies file for bench_heaps.
# This may be replaced when dependencies are built.
