file(REMOVE_RECURSE
  "CMakeFiles/bench_heaps.dir/bench_heaps.cc.o"
  "CMakeFiles/bench_heaps.dir/bench_heaps.cc.o.d"
  "bench_heaps"
  "bench_heaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
