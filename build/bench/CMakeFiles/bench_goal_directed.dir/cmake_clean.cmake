file(REMOVE_RECURSE
  "CMakeFiles/bench_goal_directed.dir/bench_goal_directed.cc.o"
  "CMakeFiles/bench_goal_directed.dir/bench_goal_directed.cc.o.d"
  "bench_goal_directed"
  "bench_goal_directed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_goal_directed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
