# Empty compiler generated dependencies file for bench_goal_directed.
# This may be replaced when dependencies are built.
