file(REMOVE_RECURSE
  "CMakeFiles/bench_restricted.dir/bench_restricted.cc.o"
  "CMakeFiles/bench_restricted.dir/bench_restricted.cc.o.d"
  "bench_restricted"
  "bench_restricted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_restricted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
