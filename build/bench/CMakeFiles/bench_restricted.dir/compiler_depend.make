# Empty compiler generated dependencies file for bench_restricted.
# This may be replaced when dependencies are built.
