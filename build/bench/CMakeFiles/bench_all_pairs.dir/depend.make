# Empty dependencies file for bench_all_pairs.
# This may be replaced when dependencies are built.
