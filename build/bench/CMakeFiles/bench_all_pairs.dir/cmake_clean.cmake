file(REMOVE_RECURSE
  "CMakeFiles/bench_all_pairs.dir/bench_all_pairs.cc.o"
  "CMakeFiles/bench_all_pairs.dir/bench_all_pairs.cc.o.d"
  "bench_all_pairs"
  "bench_all_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_all_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
