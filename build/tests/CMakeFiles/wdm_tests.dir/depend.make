# Empty dependencies file for wdm_tests.
# This may be replaced when dependencies are built.
