file(REMOVE_RECURSE
  "CMakeFiles/wdm_tests.dir/wdm/conversion_test.cc.o"
  "CMakeFiles/wdm_tests.dir/wdm/conversion_test.cc.o.d"
  "CMakeFiles/wdm_tests.dir/wdm/io_test.cc.o"
  "CMakeFiles/wdm_tests.dir/wdm/io_test.cc.o.d"
  "CMakeFiles/wdm_tests.dir/wdm/metrics_test.cc.o"
  "CMakeFiles/wdm_tests.dir/wdm/metrics_test.cc.o.d"
  "CMakeFiles/wdm_tests.dir/wdm/network_test.cc.o"
  "CMakeFiles/wdm_tests.dir/wdm/network_test.cc.o.d"
  "CMakeFiles/wdm_tests.dir/wdm/semilightpath_test.cc.o"
  "CMakeFiles/wdm_tests.dir/wdm/semilightpath_test.cc.o.d"
  "CMakeFiles/wdm_tests.dir/wdm/wavelength_set_test.cc.o"
  "CMakeFiles/wdm_tests.dir/wdm/wavelength_set_test.cc.o.d"
  "wdm_tests"
  "wdm_tests.pdb"
  "wdm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
