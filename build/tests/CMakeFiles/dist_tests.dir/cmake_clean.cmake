file(REMOVE_RECURSE
  "CMakeFiles/dist_tests.dir/dist/async_router_test.cc.o"
  "CMakeFiles/dist_tests.dir/dist/async_router_test.cc.o.d"
  "CMakeFiles/dist_tests.dir/dist/diffusing_sssp_test.cc.o"
  "CMakeFiles/dist_tests.dir/dist/diffusing_sssp_test.cc.o.d"
  "CMakeFiles/dist_tests.dir/dist/dist_router_test.cc.o"
  "CMakeFiles/dist_tests.dir/dist/dist_router_test.cc.o.d"
  "CMakeFiles/dist_tests.dir/dist/distance_vector_test.cc.o"
  "CMakeFiles/dist_tests.dir/dist/distance_vector_test.cc.o.d"
  "CMakeFiles/dist_tests.dir/dist/distributed_sssp_test.cc.o"
  "CMakeFiles/dist_tests.dir/dist/distributed_sssp_test.cc.o.d"
  "CMakeFiles/dist_tests.dir/dist/sync_network_test.cc.o"
  "CMakeFiles/dist_tests.dir/dist/sync_network_test.cc.o.d"
  "dist_tests"
  "dist_tests.pdb"
  "dist_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
