
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/betweenness_test.cc" "tests/CMakeFiles/graph_tests.dir/graph/betweenness_test.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/betweenness_test.cc.o.d"
  "/root/repo/tests/graph/csr_test.cc" "tests/CMakeFiles/graph_tests.dir/graph/csr_test.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/csr_test.cc.o.d"
  "/root/repo/tests/graph/digraph_test.cc" "tests/CMakeFiles/graph_tests.dir/graph/digraph_test.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/digraph_test.cc.o.d"
  "/root/repo/tests/graph/heap_test.cc" "tests/CMakeFiles/graph_tests.dir/graph/heap_test.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/heap_test.cc.o.d"
  "/root/repo/tests/graph/shortest_path_test.cc" "tests/CMakeFiles/graph_tests.dir/graph/shortest_path_test.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/shortest_path_test.cc.o.d"
  "/root/repo/tests/graph/suurballe_test.cc" "tests/CMakeFiles/graph_tests.dir/graph/suurballe_test.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/suurballe_test.cc.o.d"
  "/root/repo/tests/graph/traversal_test.cc" "tests/CMakeFiles/graph_tests.dir/graph/traversal_test.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/traversal_test.cc.o.d"
  "/root/repo/tests/graph/yen_ksp_test.cc" "tests/CMakeFiles/graph_tests.dir/graph/yen_ksp_test.cc.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/yen_ksp_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lumen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/lumen_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/rwa/CMakeFiles/lumen_rwa.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/lumen_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/wdm/CMakeFiles/lumen_wdm.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lumen_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
