file(REMOVE_RECURSE
  "CMakeFiles/graph_tests.dir/graph/betweenness_test.cc.o"
  "CMakeFiles/graph_tests.dir/graph/betweenness_test.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/csr_test.cc.o"
  "CMakeFiles/graph_tests.dir/graph/csr_test.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/digraph_test.cc.o"
  "CMakeFiles/graph_tests.dir/graph/digraph_test.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/heap_test.cc.o"
  "CMakeFiles/graph_tests.dir/graph/heap_test.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/shortest_path_test.cc.o"
  "CMakeFiles/graph_tests.dir/graph/shortest_path_test.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/suurballe_test.cc.o"
  "CMakeFiles/graph_tests.dir/graph/suurballe_test.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/traversal_test.cc.o"
  "CMakeFiles/graph_tests.dir/graph/traversal_test.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/yen_ksp_test.cc.o"
  "CMakeFiles/graph_tests.dir/graph/yen_ksp_test.cc.o.d"
  "graph_tests"
  "graph_tests.pdb"
  "graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
