file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/all_pairs_test.cc.o"
  "CMakeFiles/core_tests.dir/core/all_pairs_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/aux_graph_test.cc.o"
  "CMakeFiles/core_tests.dir/core/aux_graph_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/constrained_test.cc.o"
  "CMakeFiles/core_tests.dir/core/constrained_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/goal_directed_test.cc.o"
  "CMakeFiles/core_tests.dir/core/goal_directed_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/k_shortest_test.cc.o"
  "CMakeFiles/core_tests.dir/core/k_shortest_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/multicast_test.cc.o"
  "CMakeFiles/core_tests.dir/core/multicast_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/node_revisit_test.cc.o"
  "CMakeFiles/core_tests.dir/core/node_revisit_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/paper_example_test.cc.o"
  "CMakeFiles/core_tests.dir/core/paper_example_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/protection_exactness_test.cc.o"
  "CMakeFiles/core_tests.dir/core/protection_exactness_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/protection_ksp_interop_test.cc.o"
  "CMakeFiles/core_tests.dir/core/protection_ksp_interop_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/protection_test.cc.o"
  "CMakeFiles/core_tests.dir/core/protection_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/restricted_case_test.cc.o"
  "CMakeFiles/core_tests.dir/core/restricted_case_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/router_api_test.cc.o"
  "CMakeFiles/core_tests.dir/core/router_api_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/routing_equivalence_test.cc.o"
  "CMakeFiles/core_tests.dir/core/routing_equivalence_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
