
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/all_pairs_test.cc" "tests/CMakeFiles/core_tests.dir/core/all_pairs_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/all_pairs_test.cc.o.d"
  "/root/repo/tests/core/aux_graph_test.cc" "tests/CMakeFiles/core_tests.dir/core/aux_graph_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/aux_graph_test.cc.o.d"
  "/root/repo/tests/core/constrained_test.cc" "tests/CMakeFiles/core_tests.dir/core/constrained_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/constrained_test.cc.o.d"
  "/root/repo/tests/core/goal_directed_test.cc" "tests/CMakeFiles/core_tests.dir/core/goal_directed_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/goal_directed_test.cc.o.d"
  "/root/repo/tests/core/k_shortest_test.cc" "tests/CMakeFiles/core_tests.dir/core/k_shortest_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/k_shortest_test.cc.o.d"
  "/root/repo/tests/core/multicast_test.cc" "tests/CMakeFiles/core_tests.dir/core/multicast_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/multicast_test.cc.o.d"
  "/root/repo/tests/core/node_revisit_test.cc" "tests/CMakeFiles/core_tests.dir/core/node_revisit_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/node_revisit_test.cc.o.d"
  "/root/repo/tests/core/paper_example_test.cc" "tests/CMakeFiles/core_tests.dir/core/paper_example_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/paper_example_test.cc.o.d"
  "/root/repo/tests/core/protection_exactness_test.cc" "tests/CMakeFiles/core_tests.dir/core/protection_exactness_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/protection_exactness_test.cc.o.d"
  "/root/repo/tests/core/protection_ksp_interop_test.cc" "tests/CMakeFiles/core_tests.dir/core/protection_ksp_interop_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/protection_ksp_interop_test.cc.o.d"
  "/root/repo/tests/core/protection_test.cc" "tests/CMakeFiles/core_tests.dir/core/protection_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/protection_test.cc.o.d"
  "/root/repo/tests/core/restricted_case_test.cc" "tests/CMakeFiles/core_tests.dir/core/restricted_case_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/restricted_case_test.cc.o.d"
  "/root/repo/tests/core/router_api_test.cc" "tests/CMakeFiles/core_tests.dir/core/router_api_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/router_api_test.cc.o.d"
  "/root/repo/tests/core/routing_equivalence_test.cc" "tests/CMakeFiles/core_tests.dir/core/routing_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/routing_equivalence_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lumen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/lumen_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/rwa/CMakeFiles/lumen_rwa.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/lumen_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/wdm/CMakeFiles/lumen_wdm.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lumen_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
