# Empty dependencies file for rwa_tests.
# This may be replaced when dependencies are built.
