file(REMOVE_RECURSE
  "CMakeFiles/rwa_tests.dir/rwa/batch_test.cc.o"
  "CMakeFiles/rwa_tests.dir/rwa/batch_test.cc.o.d"
  "CMakeFiles/rwa_tests.dir/rwa/defragment_test.cc.o"
  "CMakeFiles/rwa_tests.dir/rwa/defragment_test.cc.o.d"
  "CMakeFiles/rwa_tests.dir/rwa/dynamic_workload_test.cc.o"
  "CMakeFiles/rwa_tests.dir/rwa/dynamic_workload_test.cc.o.d"
  "CMakeFiles/rwa_tests.dir/rwa/failure_test.cc.o"
  "CMakeFiles/rwa_tests.dir/rwa/failure_test.cc.o.d"
  "CMakeFiles/rwa_tests.dir/rwa/placement_test.cc.o"
  "CMakeFiles/rwa_tests.dir/rwa/placement_test.cc.o.d"
  "CMakeFiles/rwa_tests.dir/rwa/session_manager_test.cc.o"
  "CMakeFiles/rwa_tests.dir/rwa/session_manager_test.cc.o.d"
  "CMakeFiles/rwa_tests.dir/rwa/wavelength_assignment_test.cc.o"
  "CMakeFiles/rwa_tests.dir/rwa/wavelength_assignment_test.cc.o.d"
  "rwa_tests"
  "rwa_tests.pdb"
  "rwa_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwa_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
