file(REMOVE_RECURSE
  "CMakeFiles/lumen_core.dir/all_pairs.cc.o"
  "CMakeFiles/lumen_core.dir/all_pairs.cc.o.d"
  "CMakeFiles/lumen_core.dir/aux_graph.cc.o"
  "CMakeFiles/lumen_core.dir/aux_graph.cc.o.d"
  "CMakeFiles/lumen_core.dir/brute_force.cc.o"
  "CMakeFiles/lumen_core.dir/brute_force.cc.o.d"
  "CMakeFiles/lumen_core.dir/cfz.cc.o"
  "CMakeFiles/lumen_core.dir/cfz.cc.o.d"
  "CMakeFiles/lumen_core.dir/constrained.cc.o"
  "CMakeFiles/lumen_core.dir/constrained.cc.o.d"
  "CMakeFiles/lumen_core.dir/goal_directed.cc.o"
  "CMakeFiles/lumen_core.dir/goal_directed.cc.o.d"
  "CMakeFiles/lumen_core.dir/k_shortest.cc.o"
  "CMakeFiles/lumen_core.dir/k_shortest.cc.o.d"
  "CMakeFiles/lumen_core.dir/liang_shen.cc.o"
  "CMakeFiles/lumen_core.dir/liang_shen.cc.o.d"
  "CMakeFiles/lumen_core.dir/multicast.cc.o"
  "CMakeFiles/lumen_core.dir/multicast.cc.o.d"
  "CMakeFiles/lumen_core.dir/protection.cc.o"
  "CMakeFiles/lumen_core.dir/protection.cc.o.d"
  "CMakeFiles/lumen_core.dir/state_dijkstra.cc.o"
  "CMakeFiles/lumen_core.dir/state_dijkstra.cc.o.d"
  "liblumen_core.a"
  "liblumen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
