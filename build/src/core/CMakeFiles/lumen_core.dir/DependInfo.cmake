
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/all_pairs.cc" "src/core/CMakeFiles/lumen_core.dir/all_pairs.cc.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/all_pairs.cc.o.d"
  "/root/repo/src/core/aux_graph.cc" "src/core/CMakeFiles/lumen_core.dir/aux_graph.cc.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/aux_graph.cc.o.d"
  "/root/repo/src/core/brute_force.cc" "src/core/CMakeFiles/lumen_core.dir/brute_force.cc.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/brute_force.cc.o.d"
  "/root/repo/src/core/cfz.cc" "src/core/CMakeFiles/lumen_core.dir/cfz.cc.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/cfz.cc.o.d"
  "/root/repo/src/core/constrained.cc" "src/core/CMakeFiles/lumen_core.dir/constrained.cc.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/constrained.cc.o.d"
  "/root/repo/src/core/goal_directed.cc" "src/core/CMakeFiles/lumen_core.dir/goal_directed.cc.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/goal_directed.cc.o.d"
  "/root/repo/src/core/k_shortest.cc" "src/core/CMakeFiles/lumen_core.dir/k_shortest.cc.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/k_shortest.cc.o.d"
  "/root/repo/src/core/liang_shen.cc" "src/core/CMakeFiles/lumen_core.dir/liang_shen.cc.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/liang_shen.cc.o.d"
  "/root/repo/src/core/multicast.cc" "src/core/CMakeFiles/lumen_core.dir/multicast.cc.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/multicast.cc.o.d"
  "/root/repo/src/core/protection.cc" "src/core/CMakeFiles/lumen_core.dir/protection.cc.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/protection.cc.o.d"
  "/root/repo/src/core/state_dijkstra.cc" "src/core/CMakeFiles/lumen_core.dir/state_dijkstra.cc.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/state_dijkstra.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wdm/CMakeFiles/lumen_wdm.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lumen_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
