# Empty dependencies file for lumen_core.
# This may be replaced when dependencies are built.
