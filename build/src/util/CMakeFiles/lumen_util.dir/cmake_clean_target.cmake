file(REMOVE_RECURSE
  "liblumen_util.a"
)
