# Empty compiler generated dependencies file for lumen_util.
# This may be replaced when dependencies are built.
