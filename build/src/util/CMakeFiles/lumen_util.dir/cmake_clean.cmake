file(REMOVE_RECURSE
  "CMakeFiles/lumen_util.dir/rng.cc.o"
  "CMakeFiles/lumen_util.dir/rng.cc.o.d"
  "CMakeFiles/lumen_util.dir/stats.cc.o"
  "CMakeFiles/lumen_util.dir/stats.cc.o.d"
  "CMakeFiles/lumen_util.dir/table.cc.o"
  "CMakeFiles/lumen_util.dir/table.cc.o.d"
  "liblumen_util.a"
  "liblumen_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
