file(REMOVE_RECURSE
  "liblumen_topo.a"
)
