file(REMOVE_RECURSE
  "CMakeFiles/lumen_topo.dir/topologies.cc.o"
  "CMakeFiles/lumen_topo.dir/topologies.cc.o.d"
  "CMakeFiles/lumen_topo.dir/wavelengths.cc.o"
  "CMakeFiles/lumen_topo.dir/wavelengths.cc.o.d"
  "liblumen_topo.a"
  "liblumen_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
