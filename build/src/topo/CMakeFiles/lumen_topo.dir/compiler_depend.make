# Empty compiler generated dependencies file for lumen_topo.
# This may be replaced when dependencies are built.
