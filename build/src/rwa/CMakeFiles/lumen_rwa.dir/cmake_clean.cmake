file(REMOVE_RECURSE
  "CMakeFiles/lumen_rwa.dir/batch.cc.o"
  "CMakeFiles/lumen_rwa.dir/batch.cc.o.d"
  "CMakeFiles/lumen_rwa.dir/defragment.cc.o"
  "CMakeFiles/lumen_rwa.dir/defragment.cc.o.d"
  "CMakeFiles/lumen_rwa.dir/dynamic_workload.cc.o"
  "CMakeFiles/lumen_rwa.dir/dynamic_workload.cc.o.d"
  "CMakeFiles/lumen_rwa.dir/placement.cc.o"
  "CMakeFiles/lumen_rwa.dir/placement.cc.o.d"
  "CMakeFiles/lumen_rwa.dir/session_manager.cc.o"
  "CMakeFiles/lumen_rwa.dir/session_manager.cc.o.d"
  "CMakeFiles/lumen_rwa.dir/wavelength_assignment.cc.o"
  "CMakeFiles/lumen_rwa.dir/wavelength_assignment.cc.o.d"
  "liblumen_rwa.a"
  "liblumen_rwa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_rwa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
