
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rwa/batch.cc" "src/rwa/CMakeFiles/lumen_rwa.dir/batch.cc.o" "gcc" "src/rwa/CMakeFiles/lumen_rwa.dir/batch.cc.o.d"
  "/root/repo/src/rwa/defragment.cc" "src/rwa/CMakeFiles/lumen_rwa.dir/defragment.cc.o" "gcc" "src/rwa/CMakeFiles/lumen_rwa.dir/defragment.cc.o.d"
  "/root/repo/src/rwa/dynamic_workload.cc" "src/rwa/CMakeFiles/lumen_rwa.dir/dynamic_workload.cc.o" "gcc" "src/rwa/CMakeFiles/lumen_rwa.dir/dynamic_workload.cc.o.d"
  "/root/repo/src/rwa/placement.cc" "src/rwa/CMakeFiles/lumen_rwa.dir/placement.cc.o" "gcc" "src/rwa/CMakeFiles/lumen_rwa.dir/placement.cc.o.d"
  "/root/repo/src/rwa/session_manager.cc" "src/rwa/CMakeFiles/lumen_rwa.dir/session_manager.cc.o" "gcc" "src/rwa/CMakeFiles/lumen_rwa.dir/session_manager.cc.o.d"
  "/root/repo/src/rwa/wavelength_assignment.cc" "src/rwa/CMakeFiles/lumen_rwa.dir/wavelength_assignment.cc.o" "gcc" "src/rwa/CMakeFiles/lumen_rwa.dir/wavelength_assignment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lumen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/wdm/CMakeFiles/lumen_wdm.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lumen_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
