# Empty dependencies file for lumen_rwa.
# This may be replaced when dependencies are built.
