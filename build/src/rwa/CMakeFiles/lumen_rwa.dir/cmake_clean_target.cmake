file(REMOVE_RECURSE
  "liblumen_rwa.a"
)
