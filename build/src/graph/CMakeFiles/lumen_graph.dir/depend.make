# Empty dependencies file for lumen_graph.
# This may be replaced when dependencies are built.
