file(REMOVE_RECURSE
  "CMakeFiles/lumen_graph.dir/bellman_ford.cc.o"
  "CMakeFiles/lumen_graph.dir/bellman_ford.cc.o.d"
  "CMakeFiles/lumen_graph.dir/betweenness.cc.o"
  "CMakeFiles/lumen_graph.dir/betweenness.cc.o.d"
  "CMakeFiles/lumen_graph.dir/csr.cc.o"
  "CMakeFiles/lumen_graph.dir/csr.cc.o.d"
  "CMakeFiles/lumen_graph.dir/dijkstra.cc.o"
  "CMakeFiles/lumen_graph.dir/dijkstra.cc.o.d"
  "CMakeFiles/lumen_graph.dir/fib_heap.cc.o"
  "CMakeFiles/lumen_graph.dir/fib_heap.cc.o.d"
  "CMakeFiles/lumen_graph.dir/suurballe.cc.o"
  "CMakeFiles/lumen_graph.dir/suurballe.cc.o.d"
  "CMakeFiles/lumen_graph.dir/traversal.cc.o"
  "CMakeFiles/lumen_graph.dir/traversal.cc.o.d"
  "CMakeFiles/lumen_graph.dir/yen_ksp.cc.o"
  "CMakeFiles/lumen_graph.dir/yen_ksp.cc.o.d"
  "liblumen_graph.a"
  "liblumen_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
