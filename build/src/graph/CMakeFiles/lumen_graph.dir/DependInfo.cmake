
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bellman_ford.cc" "src/graph/CMakeFiles/lumen_graph.dir/bellman_ford.cc.o" "gcc" "src/graph/CMakeFiles/lumen_graph.dir/bellman_ford.cc.o.d"
  "/root/repo/src/graph/betweenness.cc" "src/graph/CMakeFiles/lumen_graph.dir/betweenness.cc.o" "gcc" "src/graph/CMakeFiles/lumen_graph.dir/betweenness.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/graph/CMakeFiles/lumen_graph.dir/csr.cc.o" "gcc" "src/graph/CMakeFiles/lumen_graph.dir/csr.cc.o.d"
  "/root/repo/src/graph/dijkstra.cc" "src/graph/CMakeFiles/lumen_graph.dir/dijkstra.cc.o" "gcc" "src/graph/CMakeFiles/lumen_graph.dir/dijkstra.cc.o.d"
  "/root/repo/src/graph/fib_heap.cc" "src/graph/CMakeFiles/lumen_graph.dir/fib_heap.cc.o" "gcc" "src/graph/CMakeFiles/lumen_graph.dir/fib_heap.cc.o.d"
  "/root/repo/src/graph/suurballe.cc" "src/graph/CMakeFiles/lumen_graph.dir/suurballe.cc.o" "gcc" "src/graph/CMakeFiles/lumen_graph.dir/suurballe.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/graph/CMakeFiles/lumen_graph.dir/traversal.cc.o" "gcc" "src/graph/CMakeFiles/lumen_graph.dir/traversal.cc.o.d"
  "/root/repo/src/graph/yen_ksp.cc" "src/graph/CMakeFiles/lumen_graph.dir/yen_ksp.cc.o" "gcc" "src/graph/CMakeFiles/lumen_graph.dir/yen_ksp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lumen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
