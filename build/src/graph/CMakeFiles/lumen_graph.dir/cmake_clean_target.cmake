file(REMOVE_RECURSE
  "liblumen_graph.a"
)
