file(REMOVE_RECURSE
  "CMakeFiles/lumen_wdm.dir/io.cc.o"
  "CMakeFiles/lumen_wdm.dir/io.cc.o.d"
  "CMakeFiles/lumen_wdm.dir/metrics.cc.o"
  "CMakeFiles/lumen_wdm.dir/metrics.cc.o.d"
  "CMakeFiles/lumen_wdm.dir/network.cc.o"
  "CMakeFiles/lumen_wdm.dir/network.cc.o.d"
  "CMakeFiles/lumen_wdm.dir/semilightpath.cc.o"
  "CMakeFiles/lumen_wdm.dir/semilightpath.cc.o.d"
  "liblumen_wdm.a"
  "liblumen_wdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_wdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
