
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wdm/io.cc" "src/wdm/CMakeFiles/lumen_wdm.dir/io.cc.o" "gcc" "src/wdm/CMakeFiles/lumen_wdm.dir/io.cc.o.d"
  "/root/repo/src/wdm/metrics.cc" "src/wdm/CMakeFiles/lumen_wdm.dir/metrics.cc.o" "gcc" "src/wdm/CMakeFiles/lumen_wdm.dir/metrics.cc.o.d"
  "/root/repo/src/wdm/network.cc" "src/wdm/CMakeFiles/lumen_wdm.dir/network.cc.o" "gcc" "src/wdm/CMakeFiles/lumen_wdm.dir/network.cc.o.d"
  "/root/repo/src/wdm/semilightpath.cc" "src/wdm/CMakeFiles/lumen_wdm.dir/semilightpath.cc.o" "gcc" "src/wdm/CMakeFiles/lumen_wdm.dir/semilightpath.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lumen_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
