# Empty compiler generated dependencies file for lumen_wdm.
# This may be replaced when dependencies are built.
