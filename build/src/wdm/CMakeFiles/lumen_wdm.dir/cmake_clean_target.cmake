file(REMOVE_RECURSE
  "liblumen_wdm.a"
)
