file(REMOVE_RECURSE
  "CMakeFiles/lumen_dist.dir/async_router.cc.o"
  "CMakeFiles/lumen_dist.dir/async_router.cc.o.d"
  "CMakeFiles/lumen_dist.dir/diffusing_sssp.cc.o"
  "CMakeFiles/lumen_dist.dir/diffusing_sssp.cc.o.d"
  "CMakeFiles/lumen_dist.dir/dist_router.cc.o"
  "CMakeFiles/lumen_dist.dir/dist_router.cc.o.d"
  "CMakeFiles/lumen_dist.dir/distance_vector.cc.o"
  "CMakeFiles/lumen_dist.dir/distance_vector.cc.o.d"
  "CMakeFiles/lumen_dist.dir/distributed_sssp.cc.o"
  "CMakeFiles/lumen_dist.dir/distributed_sssp.cc.o.d"
  "CMakeFiles/lumen_dist.dir/protocol_state.cc.o"
  "CMakeFiles/lumen_dist.dir/protocol_state.cc.o.d"
  "liblumen_dist.a"
  "liblumen_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
