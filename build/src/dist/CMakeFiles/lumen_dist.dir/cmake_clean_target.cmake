file(REMOVE_RECURSE
  "liblumen_dist.a"
)
