
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/async_router.cc" "src/dist/CMakeFiles/lumen_dist.dir/async_router.cc.o" "gcc" "src/dist/CMakeFiles/lumen_dist.dir/async_router.cc.o.d"
  "/root/repo/src/dist/diffusing_sssp.cc" "src/dist/CMakeFiles/lumen_dist.dir/diffusing_sssp.cc.o" "gcc" "src/dist/CMakeFiles/lumen_dist.dir/diffusing_sssp.cc.o.d"
  "/root/repo/src/dist/dist_router.cc" "src/dist/CMakeFiles/lumen_dist.dir/dist_router.cc.o" "gcc" "src/dist/CMakeFiles/lumen_dist.dir/dist_router.cc.o.d"
  "/root/repo/src/dist/distance_vector.cc" "src/dist/CMakeFiles/lumen_dist.dir/distance_vector.cc.o" "gcc" "src/dist/CMakeFiles/lumen_dist.dir/distance_vector.cc.o.d"
  "/root/repo/src/dist/distributed_sssp.cc" "src/dist/CMakeFiles/lumen_dist.dir/distributed_sssp.cc.o" "gcc" "src/dist/CMakeFiles/lumen_dist.dir/distributed_sssp.cc.o.d"
  "/root/repo/src/dist/protocol_state.cc" "src/dist/CMakeFiles/lumen_dist.dir/protocol_state.cc.o" "gcc" "src/dist/CMakeFiles/lumen_dist.dir/protocol_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wdm/CMakeFiles/lumen_wdm.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lumen_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lumen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
