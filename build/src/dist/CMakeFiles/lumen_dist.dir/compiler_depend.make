# Empty compiler generated dependencies file for lumen_dist.
# This may be replaced when dependencies are built.
