// Quickstart: build the paper's Fig. 1 example network, route an optimal
// semilightpath, and print the wavelength assignment and switch settings.
//
//   $ ./quickstart
//
// Walks through the full public API surface: WdmNetwork construction,
// conversion models, route_semilightpath, route_lightpath, and the
// structural stats of the auxiliary graph.
#include <cstdio>
#include <memory>

#include "core/liang_shen.h"
#include "wdm/network.h"

namespace {

using namespace lumen;

/// The 7-node, 4-wavelength network of the paper's Fig. 1 (0-based ids).
WdmNetwork build_example() {
  // Conversion: every node can switch any wavelength pair at cost 0.25,
  // except λ1→λ2 at node 2, which its hardware cannot do (paper Fig. 3).
  auto conv = std::make_shared<MatrixConversion>(7, 4);
  for (std::uint32_t v = 0; v < 7; ++v) conv->set_all_pairs(NodeId{v}, 0.25);
  conv->set(NodeId{2}, Wavelength{1}, Wavelength{2}, kInfiniteCost);

  WdmNetwork net(7, 4, std::move(conv));
  struct Spec {
    std::uint32_t u, v;
    std::initializer_list<std::uint32_t> lambdas;
  };
  // Links and their available wavelengths (0-based λ indices).
  const Spec specs[] = {
      {0, 1, {0, 2}}, {0, 3, {0, 1, 3}}, {1, 2, {0, 3}}, {1, 6, {0, 1}},
      {2, 0, {1, 2}}, {2, 6, {2, 3}},    {3, 4, {2}},    {4, 2, {1, 3}},
      {4, 5, {0, 2}}, {5, 3, {1, 2}},    {5, 6, {1, 2, 3}},
  };
  for (const auto& spec : specs) {
    const LinkId e = net.add_link(NodeId{spec.u}, NodeId{spec.v});
    for (const std::uint32_t l : spec.lambdas)
      net.set_wavelength(e, Wavelength{l}, 1.0);  // unit link costs
  }
  return net;
}

}  // namespace

int main() {
  const WdmNetwork net = build_example();
  std::printf("network: n=%u nodes, m=%u links, k=%u wavelengths, k0=%u\n\n",
              net.num_nodes(), net.num_links(), net.num_wavelengths(),
              net.k0());

  const NodeId s{3}, t{6};  // paper nodes 4 -> 7

  // Optimal semilightpath (wavelength conversion allowed where supported).
  const RouteResult semi = route_semilightpath(net, s, t);
  if (!semi.found) {
    std::printf("no semilightpath from %u to %u\n", s.value(), t.value());
    return 1;
  }
  std::printf("optimal semilightpath %u -> %u (cost %.2f):\n  %s\n",
              s.value(), t.value(), semi.cost,
              semi.path.to_string(net).c_str());
  std::printf("  hops=%zu conversions=%u\n", semi.path.length(),
              semi.path.num_conversions());
  for (const SwitchSetting& sw : semi.switches) {
    std::printf("  set switch at node %u: λ%u -> λ%u\n", sw.node.value(),
                sw.from.value(), sw.to.value());
  }

  // Compare with the best pure lightpath (no conversion anywhere).
  const RouteResult light = route_lightpath(net, s, t);
  if (light.found) {
    std::printf("\nbest pure lightpath costs %.2f (semilightpath saves "
                "%.2f)\n",
                light.cost, light.cost - semi.cost);
  } else {
    std::printf("\nno wavelength-continuous lightpath exists: conversion is "
                "the only way to connect %u -> %u\n",
                s.value(), t.value());
  }

  // What the router built under the hood (Theorem 1's auxiliary graph).
  std::printf("\nauxiliary graph G_{s,t}: %llu nodes, %llu links, "
              "%llu heap pops\n",
              static_cast<unsigned long long>(semi.stats.aux_nodes),
              static_cast<unsigned long long>(semi.stats.aux_links),
              static_cast<unsigned long long>(semi.stats.search_pops));
  return 0;
}
