// The Fig. 5 phenomenon: an optimal semilightpath that visits a node twice.
//
//   $ ./revisit_demo
//
// Node w cannot convert λ0 directly to λ2, but it can reach λ2 in two
// steps (λ0→λ1, then λ1→λ2).  The only way to apply both conversions is to
// leave w and come back — so the optimal route loops through a neighbor.
// The demo then enforces the paper's Restrictions 1 and 2 and shows the
// loop disappear (Theorem 2).
#include <cstdio>
#include <memory>

#include "core/liang_shen.h"
#include "wdm/network.h"

using namespace lumen;

namespace {

WdmNetwork build(bool allow_direct_conversion) {
  auto conv = std::make_shared<MatrixConversion>(4, 3);
  conv->set(NodeId{1}, Wavelength{0}, Wavelength{1}, 0.1);
  conv->set(NodeId{1}, Wavelength{1}, Wavelength{2}, 0.1);
  if (allow_direct_conversion) {
    // Restriction 1: conversion defined on all of Λ_in(w) × Λ_out(w).
    conv->set(NodeId{1}, Wavelength{0}, Wavelength{2}, 0.1);
  }
  WdmNetwork net(4, 3, std::move(conv));
  const LinkId sw = net.add_link(NodeId{0}, NodeId{1});  // s -> w
  net.set_wavelength(sw, Wavelength{0}, 1.0);
  const LinkId wa = net.add_link(NodeId{1}, NodeId{2});  // w -> a
  net.set_wavelength(wa, Wavelength{1}, 1.0);
  const LinkId aw = net.add_link(NodeId{2}, NodeId{1});  // a -> w
  net.set_wavelength(aw, Wavelength{1}, 1.0);
  const LinkId wt = net.add_link(NodeId{1}, NodeId{3});  // w -> t
  net.set_wavelength(wt, Wavelength{2}, 1.0);
  return net;
}

void report(const char* title, const WdmNetwork& net) {
  const RouteResult r = route_semilightpath(net, NodeId{0}, NodeId{3});
  std::printf("%s\n", title);
  if (!r.found) {
    std::printf("  no semilightpath exists\n\n");
    return;
  }
  std::printf("  optimal: %s\n  cost=%.2f hops=%zu conversions=%u "
              "revisits-a-node=%s\n\n",
              r.path.to_string(net).c_str(), r.cost, r.path.length(),
              r.path.num_conversions(),
              r.path.revisits_node(net) ? "YES" : "no");
}

}  // namespace

int main() {
  std::printf("s=0, w=1, a=2, t=3; links: s→w(λ0) w→a(λ1) a→w(λ1) w→t(λ2)\n\n");
  report("[1] w converts only λ0→λ1 and λ1→λ2 (Restriction 1 violated):",
         build(false));
  report("[2] w also converts λ0→λ2 directly (Restrictions 1+2 hold):",
         build(true));
  std::printf("With the restrictions in force the loop through a vanishes, "
              "exactly as Theorem 2 predicts.\n");
  return 0;
}
