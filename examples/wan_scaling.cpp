// Head-to-head scaling of Liang–Shen vs the CFZ baseline on growing WANs.
//
//   $ ./wan_scaling [max_n] [seed]
//
// The Section III-C regime: sparse networks (m = 4n), few wavelengths
// (k = ceil(log2 n)).  The paper predicts T_CFZ / T_LS = Ω(n / log n);
// this example prints the measured wall-clock ratio as n doubles.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/cfz.h"
#include "core/liang_shen.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace lumen;

int main(int argc, char** argv) {
  const std::uint32_t max_n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2048;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 99;

  Table table({"n", "m", "k", "t_LS (ms)", "t_CFZ (ms)", "ratio"});
  for (std::uint32_t n = 128; n <= max_n; n *= 2) {
    const auto k = static_cast<std::uint32_t>(std::ceil(std::log2(n)));
    Rng rng(seed + n);
    const Topology topo = random_sparse_topology(n, 3 * n, rng);
    const Availability avail = uniform_availability(
        topo, k, 1, std::min(k, 4u), CostSpec::uniform(1.0, 3.0), rng);
    const auto net = assemble_network(
        topo, k, avail, std::make_shared<UniformConversion>(0.3));

    const NodeId s{0}, t{n / 2};
    Stopwatch ls_clock;
    const RouteResult ls = route_semilightpath(net, s, t);
    const double ls_ms = ls_clock.millis();
    Stopwatch cfz_clock;
    const RouteResult cfz = cfz_route(net, s, t);
    const double cfz_ms = cfz_clock.millis();

    if (ls.found != cfz.found ||
        (ls.found && std::abs(ls.cost - cfz.cost) > 1e-6)) {
      std::printf("MISMATCH at n=%u\n", n);
      return 1;
    }
    table.add_row({fmt_int(n), fmt_int(net.num_links()), fmt_int(k),
                   fmt_double(ls_ms, 2), fmt_double(cfz_ms, 2),
                   fmt_double(cfz_ms / std::max(ls_ms, 1e-6), 1)});
  }
  std::printf("%s\n", table.to_markdown().c_str());
  std::printf("the ratio grows roughly like n / log n, the paper's claimed "
              "improvement factor.\n");
  return 0;
}
