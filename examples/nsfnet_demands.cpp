// NSFNET demand routing under contention.
//
// The scenario the paper's introduction motivates: a realistic WAN where
// existing lightpaths occupy wavelengths, so new demands often cannot find
// a wavelength-continuous path and must convert at intermediate nodes.
//
//   $ ./nsfnet_demands [num_interferers] [num_demands] [seed]
//
// Routes a batch of demands twice — as pure lightpaths and as
// semilightpaths — and reports blocking rates, mean costs, and conversion
// usage.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/liang_shen.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"
#include "util/stats.h"
#include "util/table.h"

using namespace lumen;

int main(int argc, char** argv) {
  const std::uint32_t interferers =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 150;
  const std::uint32_t num_demands =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 100;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 2026;

  constexpr std::uint32_t kWavelengths = 8;
  Rng rng(seed);
  const Topology topo = nsfnet_topology();
  // Pre-route `interferers` lightpath demands; what they consume is gone.
  const Availability avail = occupancy_availability(
      topo, kWavelengths, interferers, CostSpec::distance(10.0), rng);
  const auto net = assemble_network(
      topo, kWavelengths, avail, std::make_shared<UniformConversion>(0.5));

  std::uint64_t remaining = 0;
  for (std::uint32_t e = 0; e < net.num_links(); ++e)
    remaining += net.num_available(LinkId{e});
  std::printf("NSFNET: %u nodes, %u links, k=%u; after %u interfering "
              "lightpaths %llu/%llu (link,λ) pairs remain free\n\n",
              net.num_nodes(), net.num_links(), kWavelengths, interferers,
              static_cast<unsigned long long>(remaining),
              static_cast<unsigned long long>(net.num_links()) * kWavelengths);

  std::uint32_t light_ok = 0, semi_ok = 0;
  RunningStats light_cost, semi_cost, conversions;
  Rng demand_rng(seed ^ 0xbeefULL);
  for (const auto& [s, t] : random_demands(net.num_nodes(), num_demands,
                                           demand_rng)) {
    const RouteResult light = route_lightpath(net, s, t);
    const RouteResult semi = route_semilightpath(net, s, t);
    if (light.found) {
      ++light_ok;
      light_cost.add(light.cost);
    }
    if (semi.found) {
      ++semi_ok;
      semi_cost.add(semi.cost);
      conversions.add(semi.path.num_conversions());
    }
  }

  Table table({"routing mode", "carried", "blocked", "blocking %",
               "mean cost", "mean conversions"});
  table.add_row({"lightpath (no conversion)", fmt_int(light_ok),
                 fmt_int(num_demands - light_ok),
                 fmt_double(100.0 * (num_demands - light_ok) / num_demands, 1),
                 light_ok ? fmt_double(light_cost.mean(), 2) : "-", "0"});
  table.add_row({"semilightpath (Liang–Shen)", fmt_int(semi_ok),
                 fmt_int(num_demands - semi_ok),
                 fmt_double(100.0 * (num_demands - semi_ok) / num_demands, 1),
                 semi_ok ? fmt_double(semi_cost.mean(), 2) : "-",
                 semi_ok ? fmt_double(conversions.mean(), 2) : "-"});
  std::printf("%s\n", table.to_markdown().c_str());

  std::printf("wavelength conversion rescued %u demands that pure "
              "lightpath routing blocks.\n",
              semi_ok - light_ok);
  return 0;
}
