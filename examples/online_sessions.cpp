// Online session provisioning under Poisson traffic.
//
//   $ ./online_sessions [num_arrivals] [seed] [--metrics out.jsonl]
//
// Sweeps offered load on the ARPANET backbone and compares the three
// routing policies of the RWA engine: greedy first-fit lightpaths,
// optimal lightpaths, and the paper's optimal semilightpaths.  The
// semilightpath column shows how wavelength conversion suppresses
// blocking at moderate loads — the operational payoff of the paper's
// algorithm in the online setting its introduction motivates.
//
// With --metrics <file> every offered request across every (policy, load)
// point is appended to <file> as one JSONL RouteEvent record (schema:
// docs/OBSERVABILITY.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include "obs/export.h"
#include "obs/route_event.h"
#include "rwa/dynamic_workload.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"
#include "util/table.h"

using namespace lumen;

namespace {

SessionManager make_manager(RoutingPolicy policy, std::uint64_t seed) {
  constexpr std::uint32_t kWavelengths = 8;
  Rng rng(seed);
  const Topology topo = arpanet_topology();
  const Availability avail =
      full_availability(topo, kWavelengths, CostSpec::distance(10.0), rng);
  return SessionManager(
      assemble_network(topo, kWavelengths, avail,
                       std::make_shared<UniformConversion>(0.5)),
      policy);
}

double blocking_at(RoutingPolicy policy, double load,
                   std::uint32_t num_arrivals, std::uint64_t seed,
                   obs::RouteEventLog* events) {
  auto manager = make_manager(policy, seed);
  if (events != nullptr) manager.set_telemetry(events);
  DynamicWorkloadConfig config;
  config.arrival_rate = load;
  config.mean_holding_time = 1.0;
  config.num_arrivals = num_arrivals;
  config.seed = seed ^ 0x10adULL;
  return run_dynamic_workload(manager, config).stats.blocking_rate();
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off `--metrics <file>` wherever it appears.
  const char* metrics_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  const std::uint32_t num_arrivals =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2000;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 11;
  obs::RouteEventLog event_log;
  obs::RouteEventLog* events = metrics_path != nullptr ? &event_log : nullptr;

  std::printf("ARPANET (20 nodes, 32 spans), k=8 wavelengths, %u Poisson "
              "arrivals per point\n\n",
              num_arrivals);
  Table table({"offered load (Erlang)", "first-fit lightpath %",
               "optimal lightpath %", "semilightpath %"});
  for (const double load : {20.0, 40.0, 60.0, 80.0, 120.0}) {
    table.add_row(
        {fmt_double(load, 0),
         fmt_double(100 * blocking_at(RoutingPolicy::kLightpathFirstFit, load,
                                      num_arrivals, seed, events),
                    1),
         fmt_double(100 * blocking_at(RoutingPolicy::kLightpathBestCost, load,
                                      num_arrivals, seed, events),
                    1),
         fmt_double(100 * blocking_at(RoutingPolicy::kSemilightpath, load,
                                      num_arrivals, seed, events),
                    1)});
  }
  std::printf("%s\nblocking %% per policy; lower is better.\n",
              table.to_markdown().c_str());
  if (events != nullptr) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open metrics file '%s'\n",
                   metrics_path);
      return 2;
    }
    const auto records = events->snapshot();
    obs::write_route_events_jsonl(out, records);
    std::printf("wrote %zu route events to %s\n", records.size(),
                metrics_path);
  }
  return 0;
}
