// Command-line semilightpath router over the lumen-wdm text format.
//
//   $ ./lumen_route <network-file> <src> <dst>           # one query
//   $ ./lumen_route <network-file> --all-pairs           # cost matrix
//   $ ./lumen_route --demo                               # emit a sample file
//
// With --metrics <file> a single-query run also appends one JSONL
// RouteEvent record (schema: docs/OBSERVABILITY.md) describing the query.
//
// The scriptable face of the library: networks come from wdm/io's text
// format (see src/wdm/io.h for the grammar), answers go to stdout as a
// human-readable route plus the switch settings an operator would program.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include "core/all_pairs.h"
#include "core/liang_shen.h"
#include "obs/export.h"
#include "wdm/io.h"

using namespace lumen;

namespace {

int emit_demo() {
  WdmNetwork net(4, 3, std::make_shared<UniformConversion>(0.25));
  const LinkId a = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(a, Wavelength{0}, 1.0);
  net.set_wavelength(a, Wavelength{1}, 1.5);
  const LinkId b = net.add_link(NodeId{1}, NodeId{2});
  net.set_wavelength(b, Wavelength{1}, 1.0);
  const LinkId c = net.add_link(NodeId{2}, NodeId{3});
  net.set_wavelength(c, Wavelength{2}, 2.0);
  const LinkId d = net.add_link(NodeId{0}, NodeId{3});
  net.set_wavelength(d, Wavelength{0}, 9.0);
  std::printf("%s", network_to_string(net).c_str());
  return 0;
}

int run_all_pairs(const WdmNetwork& net) {
  AllPairsRouter router(net);
  const auto matrix = router.cost_matrix();
  std::printf("optimal semilightpath cost matrix (%u x %u):\n",
              net.num_nodes(), net.num_nodes());
  for (std::uint32_t s = 0; s < net.num_nodes(); ++s) {
    for (std::uint32_t t = 0; t < net.num_nodes(); ++t) {
      if (matrix[s][t] == kInfiniteCost) {
        std::printf("%8s", "-");
      } else {
        std::printf("%8.3f", matrix[s][t]);
      }
    }
    std::printf("\n");
  }
  return 0;
}

/// Appends one RouteEvent JSONL record for the query to `metrics_path`.
void dump_metrics(const char* metrics_path, std::uint32_t s, std::uint32_t t,
                  const RouteResult& r) {
  obs::RouteEvent event;
  event.source = s;
  event.target = t;
  event.policy = "semilightpath";
  event.heap = "fibonacci";
  event.outcome = r.found ? "found" : "not_found";
  event.cost = r.found ? r.cost : 0.0;
  event.hops = static_cast<std::uint32_t>(r.path.length());
  event.conversions = static_cast<std::uint32_t>(r.path.num_conversions());
  event.aux_nodes = r.stats.aux_nodes;
  event.aux_links = r.stats.aux_links;
  event.relaxations = r.stats.search_relaxations;
  event.heap_pops = r.stats.search_pops;
  event.build_seconds = r.stats.build_seconds;
  event.search_seconds = r.stats.search_seconds;
  std::ofstream out(metrics_path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "warning: cannot open metrics file '%s'\n",
                 metrics_path);
    return;
  }
  const obs::RouteEvent events[] = {event};
  obs::write_route_events_jsonl(out, events);
}

int run_query(const WdmNetwork& net, std::uint32_t s, std::uint32_t t,
              const char* metrics_path) {
  if (s >= net.num_nodes() || t >= net.num_nodes()) {
    std::fprintf(stderr, "error: node ids must be < %u\n", net.num_nodes());
    return 2;
  }
  const RouteResult r = route_semilightpath(net, NodeId{s}, NodeId{t});
  if (metrics_path != nullptr) dump_metrics(metrics_path, s, t, r);
  if (!r.found) {
    std::printf("no semilightpath from %u to %u\n", s, t);
    return 1;
  }
  std::printf("cost %.6f\nroute %s\n", r.cost, r.path.to_string(net).c_str());
  for (const SwitchSetting& sw : r.switches) {
    std::printf("switch node=%u %u->%u\n", sw.node.value(), sw.from.value(),
                sw.to.value());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--demo") == 0) return emit_demo();

  // Peel off `--metrics <file>` wherever it appears.
  const char* metrics_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }

  if (argc != 3 && argc != 4) {
    std::fprintf(stderr,
                 "usage: %s <network-file> <src> <dst> [--metrics <file>]\n"
                 "       %s <network-file> --all-pairs\n"
                 "       %s --demo    # print a sample network file\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }

  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "error: cannot open '%s'\n", argv[1]);
    return 2;
  }
  try {
    const WdmNetwork net = read_network(file);
    if (argc == 3) {
      if (std::strcmp(argv[2], "--all-pairs") != 0) {
        std::fprintf(stderr, "error: expected --all-pairs or <src> <dst>\n");
        return 2;
      }
      return run_all_pairs(net);
    }
    return run_query(net, static_cast<std::uint32_t>(std::atoi(argv[2])),
                     static_cast<std::uint32_t>(std::atoi(argv[3])),
                     metrics_path);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
