// Command-line semilightpath router over the lumen-wdm text format.
//
//   $ ./lumen_route <network-file> <src> <dst>           # one query
//   $ ./lumen_route <network-file> --all-pairs           # cost matrix
//   $ ./lumen_route --demo                               # emit a sample file
//
// The scriptable face of the library: networks come from wdm/io's text
// format (see src/wdm/io.h for the grammar), answers go to stdout as a
// human-readable route plus the switch settings an operator would program.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include "core/all_pairs.h"
#include "core/liang_shen.h"
#include "wdm/io.h"

using namespace lumen;

namespace {

int emit_demo() {
  WdmNetwork net(4, 3, std::make_shared<UniformConversion>(0.25));
  const LinkId a = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(a, Wavelength{0}, 1.0);
  net.set_wavelength(a, Wavelength{1}, 1.5);
  const LinkId b = net.add_link(NodeId{1}, NodeId{2});
  net.set_wavelength(b, Wavelength{1}, 1.0);
  const LinkId c = net.add_link(NodeId{2}, NodeId{3});
  net.set_wavelength(c, Wavelength{2}, 2.0);
  const LinkId d = net.add_link(NodeId{0}, NodeId{3});
  net.set_wavelength(d, Wavelength{0}, 9.0);
  std::printf("%s", network_to_string(net).c_str());
  return 0;
}

int run_all_pairs(const WdmNetwork& net) {
  AllPairsRouter router(net);
  const auto matrix = router.cost_matrix();
  std::printf("optimal semilightpath cost matrix (%u x %u):\n",
              net.num_nodes(), net.num_nodes());
  for (std::uint32_t s = 0; s < net.num_nodes(); ++s) {
    for (std::uint32_t t = 0; t < net.num_nodes(); ++t) {
      if (matrix[s][t] == kInfiniteCost) {
        std::printf("%8s", "-");
      } else {
        std::printf("%8.3f", matrix[s][t]);
      }
    }
    std::printf("\n");
  }
  return 0;
}

int run_query(const WdmNetwork& net, std::uint32_t s, std::uint32_t t) {
  if (s >= net.num_nodes() || t >= net.num_nodes()) {
    std::fprintf(stderr, "error: node ids must be < %u\n", net.num_nodes());
    return 2;
  }
  const RouteResult r = route_semilightpath(net, NodeId{s}, NodeId{t});
  if (!r.found) {
    std::printf("no semilightpath from %u to %u\n", s, t);
    return 1;
  }
  std::printf("cost %.6f\nroute %s\n", r.cost, r.path.to_string(net).c_str());
  for (const SwitchSetting& sw : r.switches) {
    std::printf("switch node=%u %u->%u\n", sw.node.value(), sw.from.value(),
                sw.to.value());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--demo") == 0) return emit_demo();
  if (argc != 3 && argc != 4) {
    std::fprintf(stderr,
                 "usage: %s <network-file> <src> <dst>\n"
                 "       %s <network-file> --all-pairs\n"
                 "       %s --demo    # print a sample network file\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }

  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "error: cannot open '%s'\n", argv[1]);
    return 2;
  }
  try {
    const WdmNetwork net = read_network(file);
    if (argc == 3) {
      if (std::strcmp(argv[2], "--all-pairs") != 0) {
        std::fprintf(stderr, "error: expected --all-pairs or <src> <dst>\n");
        return 2;
      }
      return run_all_pairs(net);
    }
    return run_query(net, static_cast<std::uint32_t>(std::atoi(argv[2])),
                     static_cast<std::uint32_t>(std::atoi(argv[3])));
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
