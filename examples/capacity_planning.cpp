// Capacity planning: how many wavelengths does a demand set need?
//
//   $ ./capacity_planning [num_demands] [seed]
//
// The planning workflow, end to end: generate gravity-model traffic for
// NSFNET, compute the conflict-graph lower bound for the routed paths,
// then sweep installed wavelength counts k and batch-provision the whole
// set (longest-demands-first) until everything is carried — reporting the
// carried fraction and residual fragmentation at each k.  Exercises the
// gravity workload, batch provisioning, wavelength-assignment bounds, and
// the metrics module together.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/liang_shen.h"
#include "rwa/batch.h"
#include "rwa/wavelength_assignment.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"
#include "util/table.h"
#include "wdm/metrics.h"

using namespace lumen;

int main(int argc, char** argv) {
  const std::uint32_t num_demands =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 60;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 5;

  const Topology topo = nsfnet_topology();
  Rng demand_rng(seed);
  const auto demands = gravity_demands(topo, num_demands, demand_rng);

  // Phase 1: the static lower bound.  Route every demand on a bare
  // single-wavelength substrate and bound the wavelength need by the
  // conflict structure of the chosen paths.
  Rng rng(seed ^ 0xfaceULL);
  const auto probe = assemble_network(
      topo, 1, full_availability(topo, 1, CostSpec::unit(), rng),
      std::make_shared<NoConversion>());
  std::vector<RoutedPath> routed;
  for (const auto& [s, t] : demands) {
    const RouteResult r = route_semilightpath(probe, s, t);
    if (!r.found) continue;
    RoutedPath p;
    for (const Hop& hop : r.path.hops()) p.links.push_back(hop.link);
    routed.push_back(std::move(p));
  }
  const std::uint32_t congestion = congestion_lower_bound(routed);
  const auto coloring = assign_wavelengths(routed, AssignmentHeuristic::kDsatur);
  std::printf("NSFNET, %u gravity demands: link congestion bound %u, "
              "DSATUR coloring of shortest-path routes uses %u wavelengths\n\n",
              num_demands, congestion, coloring.wavelengths_used);

  // Phase 2: dynamic check — provision the batch with conversion-capable
  // routing at each candidate k and report what actually fits.
  Table table({"k installed", "carried", "blocked", "utilization %",
               "continuity alignment"});
  for (std::uint32_t k = congestion / 2 + 1; k <= coloring.wavelengths_used + 2;
       ++k) {
    Rng avail_rng(seed ^ k);
    SessionManager manager(
        assemble_network(topo, k,
                         full_availability(topo, k, CostSpec::unit(),
                                           avail_rng),
                         std::make_shared<UniformConversion>(0.1)),
        RoutingPolicy::kSemilightpath);
    const auto result =
        provision_batch(manager, demands, DemandOrder::kLongestFirst);
    const NetworkMetrics metrics = compute_metrics(manager.residual());
    table.add_row({fmt_int(k), fmt_int(result.carried),
                   fmt_int(result.blocked),
                   fmt_double(100.0 * manager.wavelength_utilization(), 1),
                   fmt_double(metrics.continuity_alignment, 3)});
    if (result.blocked == 0) break;  // found the smallest sufficient k
  }
  std::printf("%s\nthe first row with 0 blocked is the smallest installed "
              "capacity that carries the full set with conversion; compare "
              "it to the wavelength-continuity bounds above.\n",
              table.to_markdown().c_str());
  return 0;
}
