// Distributed semilightpath routing (Theorem 3) on a wide-area topology.
//
//   $ ./distributed_routing [n] [seed]
//
// Builds a Waxman WAN, runs the synchronous distributed protocol for a few
// demands, and compares its answers and measured message/round counts with
// the centralized router and with the paper's O(km) / O(kn) bounds.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/liang_shen.h"
#include "dist/dist_router.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"
#include "util/table.h"

using namespace lumen;

int main(int argc, char** argv) {
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 60;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;

  constexpr std::uint32_t kWavelengths = 8;
  constexpr std::uint32_t kK0 = 4;
  Rng rng(seed);
  const Topology topo = waxman_topology(n, 0.4, 0.2, rng);
  const Availability avail = uniform_availability(
      topo, kWavelengths, 2, kK0, CostSpec::distance(10.0), rng);
  const auto net = assemble_network(
      topo, kWavelengths, avail,
      std::make_shared<RangeLimitedConversion>(3, 0.2, 0.1));

  const std::uint64_t km = static_cast<std::uint64_t>(kWavelengths) *
                           net.num_links();
  std::printf("Waxman WAN: n=%u m=%u k=%u k0=%u; Theorem 3 bounds: "
              "O(km)=O(%llu) messages, O(kn)=O(%llu) rounds\n\n",
              net.num_nodes(), net.num_links(), kWavelengths, net.k0(),
              static_cast<unsigned long long>(km),
              static_cast<unsigned long long>(
                  static_cast<std::uint64_t>(kWavelengths) * n));

  Table table({"demand", "centralized cost", "distributed cost", "messages",
               "rounds", "messages/km"});
  Rng demand_rng(seed ^ 0x1234ULL);
  for (const auto& [s, t] : random_demands(n, 8, demand_rng)) {
    const RouteResult central = route_semilightpath(net, s, t);
    const DistRouteResult dist = distributed_route_semilightpath(net, s, t);
    char label[32];
    std::snprintf(label, sizeof label, "%u -> %u", s.value(), t.value());
    table.add_row(
        {label, central.found ? fmt_double(central.cost, 3) : "blocked",
         dist.found ? fmt_double(dist.cost, 3) : "blocked",
         fmt_int(static_cast<std::int64_t>(dist.messages)),
         fmt_int(static_cast<std::int64_t>(dist.rounds)),
         fmt_double(static_cast<double>(dist.messages) /
                        static_cast<double>(km),
                    3)});
    if (central.found && dist.found &&
        std::abs(central.cost - dist.cost) > 1e-9) {
      std::printf("MISMATCH on %s!\n", label);
      return 1;
    }
  }
  std::printf("%s\n", table.to_markdown().c_str());
  std::printf("distributed and centralized optima agree on every demand; "
              "message totals sit well inside the O(km) envelope.\n");
  return 0;
}
