// Ranked alternative semilightpaths for protection routing.
//
//   $ ./protection_alternatives [K] [seed]
//
// Provisioning a protected connection needs a working path plus fallbacks
// that are ready if provisioning races or failures invalidate the first
// choice.  This demo ranks the K cheapest semilightpaths on NSFNET and
// highlights how alternatives differ — sometimes a different physical
// route, sometimes the same route on different wavelengths or with
// different conversion points.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/k_shortest.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"
#include "util/table.h"

using namespace lumen;

int main(int argc, char** argv) {
  const std::uint32_t K =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 6;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 4;

  constexpr std::uint32_t kWavelengths = 6;
  Rng rng(seed);
  const Topology topo = nsfnet_topology();
  const Availability avail = uniform_availability(
      topo, kWavelengths, 2, 4, CostSpec::distance(10.0), rng);
  const auto net = assemble_network(
      topo, kWavelengths, avail, std::make_shared<UniformConversion>(0.4));

  const NodeId s{0 /* Seattle */}, t{13 /* Princeton */};
  const auto ranked = k_shortest_semilightpaths(net, s, t, K);
  if (ranked.empty()) {
    std::printf("no semilightpath from %u to %u\n", s.value(), t.value());
    return 1;
  }

  std::printf("top %zu semilightpaths %u -> %u on NSFNET (k=%u):\n\n",
              ranked.size(), s.value(), t.value(), kWavelengths);
  Table table({"rank", "cost", "hops", "conversions", "route"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const auto& route = ranked[i];
    table.add_row({fmt_int(static_cast<std::int64_t>(i + 1)),
                   fmt_double(route.cost, 3),
                   fmt_int(static_cast<std::int64_t>(route.path.length())),
                   fmt_int(route.path.num_conversions()),
                   route.path.to_string(net)});
  }
  std::printf("%s\n", table.to_markdown().c_str());

  const double premium =
      ranked.size() > 1
          ? 100.0 * (ranked.back().cost - ranked.front().cost) /
                ranked.front().cost
          : 0.0;
  std::printf("the %zu-th alternative costs %.1f%% more than the optimum — "
              "the protection premium.\n",
              ranked.size(), premium);
  return 0;
}
