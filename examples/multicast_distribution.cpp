// Multicast content distribution over a hierarchical metro/backbone WAN.
//
//   $ ./multicast_distribution [hubs] [ring_size] [seed]
//
// A content source at one hub feeds subscribers scattered across the metro
// rings.  Routing the whole group on one auxiliary shortest-path tree
// (core/multicast) keeps every leg individually optimal while shared tree
// prefixes carry one copy of the signal — the light-forest saving this
// demo quantifies against independent unicasts.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/multicast.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"
#include "util/table.h"

using namespace lumen;

int main(int argc, char** argv) {
  const std::uint32_t hubs =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 5;
  const std::uint32_t ring_size =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 6;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 3;

  constexpr std::uint32_t kWavelengths = 8;
  Rng rng(seed);
  const Topology topo = hierarchical_topology(hubs, ring_size, hubs / 2, rng);
  const Availability avail = uniform_availability(
      topo, kWavelengths, 3, 6, CostSpec::distance(10.0), rng);
  const auto net = assemble_network(
      topo, kWavelengths, avail,
      std::make_shared<RangeLimitedConversion>(2, 0.3, 0.1));

  std::printf("hierarchical WAN: %u hubs x %u metro nodes = %u nodes, "
              "%u links, k=%u\n\n",
              hubs, ring_size, net.num_nodes(), net.num_links(),
              kWavelengths);

  // Source at hub 0; subscribers cluster in two remote metro rings, so
  // their backbone legs overlap (that overlap is the light-tree sharing).
  const NodeId source{0};
  std::vector<NodeId> subscribers;
  for (const std::uint32_t h : {hubs / 2, hubs / 2 + 1}) {
    for (std::uint32_t i = 0; i < ring_size; i += 2) {
      subscribers.push_back(NodeId{hubs + h * ring_size + i});
    }
  }

  const MulticastResult mc = route_multicast(net, source, subscribers);
  Table table({"subscriber", "reached", "cost", "hops", "conversions"});
  for (const MulticastLeg& leg : mc.legs) {
    table.add_row({fmt_int(leg.destination.value()),
                   leg.reached ? "yes" : "NO",
                   leg.reached ? fmt_double(leg.cost, 3) : "-",
                   fmt_int(static_cast<std::int64_t>(leg.path.length())),
                   fmt_int(leg.path.num_conversions())});
  }
  std::printf("%s\n", table.to_markdown().c_str());

  std::printf("forest provisions %llu (link,λ) pairs; independent unicasts "
              "would need %llu — sharing saves %llu (%.0f%%).\n",
              static_cast<unsigned long long>(mc.tree_resources),
              static_cast<unsigned long long>(mc.unicast_resources),
              static_cast<unsigned long long>(mc.sharing()),
              mc.unicast_resources
                  ? 100.0 * static_cast<double>(mc.sharing()) /
                        static_cast<double>(mc.unicast_resources)
                  : 0.0);
  return mc.all_reached ? 0 : 1;
}
