#include "dist/diffusing_sssp.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "topo/topologies.h"
#include "util/rng.h"

namespace lumen {
namespace {

TEST(DiffusingSsspTest, LineGraphExact) {
  Digraph g(4);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  g.add_link(NodeId{1}, NodeId{2}, 2.0);
  g.add_link(NodeId{2}, NodeId{3}, 3.0);
  const auto r = diffusing_sssp(g, NodeId{0}, /*seed=*/1);
  EXPECT_TRUE(r.detected);
  EXPECT_DOUBLE_EQ(r.dist[3], 6.0);
  EXPECT_EQ(r.basic_messages, 3u);
  // Every basic message is acknowledged exactly once.
  EXPECT_EQ(r.ack_messages, r.basic_messages);
  // Detection cannot precede actual quiescence.
  EXPECT_GE(r.detection_time, r.quiescence_time);
}

TEST(DiffusingSsspTest, MatchesDijkstraAcrossSchedules) {
  Rng topo_rng(2);
  Digraph g(40);
  for (int i = 0; i < 220; ++i) {
    const auto u = static_cast<std::uint32_t>(topo_rng.next_below(40));
    const auto v = static_cast<std::uint32_t>(topo_rng.next_below(40));
    if (u != v)
      g.add_link(NodeId{u}, NodeId{v}, topo_rng.next_double_in(0.5, 4.0));
  }
  const auto reference = dijkstra(g, NodeId{0});
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto r = diffusing_sssp(g, NodeId{0}, seed);
    EXPECT_TRUE(r.detected) << "seed " << seed;
    EXPECT_EQ(r.ack_messages, r.basic_messages) << "seed " << seed;
    for (std::uint32_t v = 0; v < 40; ++v) {
      if (reference.dist[v] == kInfiniteCost) {
        EXPECT_EQ(r.dist[v], kInfiniteCost) << "seed " << seed;
      } else {
        EXPECT_NEAR(r.dist[v], reference.dist[v], 1e-9)
            << "seed " << seed << " node " << v;
      }
    }
  }
}

TEST(DiffusingSsspTest, IsolatedSourceTerminatesImmediately) {
  Digraph g(3);
  g.add_link(NodeId{1}, NodeId{2}, 1.0);
  const auto r = diffusing_sssp(g, NodeId{0}, 1);
  EXPECT_TRUE(r.detected);
  EXPECT_EQ(r.basic_messages, 0u);
  EXPECT_EQ(r.ack_messages, 0u);
  EXPECT_DOUBLE_EQ(r.detection_time, 0.0);
  EXPECT_EQ(r.dist[1], kInfiniteCost);
}

TEST(DiffusingSsspTest, ParentTreeConsistent) {
  Rng rng(5);
  const Topology topo = random_sparse_topology(30, 60, rng);
  Digraph g = topo.to_digraph();
  for (std::uint32_t e = 0; e < g.num_links(); ++e)
    g.set_weight(LinkId{e}, rng.next_double_in(0.5, 2.0));
  const auto r = diffusing_sssp(g, NodeId{0}, 7);
  for (std::uint32_t v = 1; v < 30; ++v) {
    ASSERT_NE(r.dist[v], kInfiniteCost);
    const LinkId e = r.parent_link[v];
    ASSERT_TRUE(e.valid());
    EXPECT_EQ(g.head(e), NodeId{v});
    EXPECT_NEAR(r.dist[g.tail(e).value()] + g.weight(e), r.dist[v], 1e-9);
  }
}

TEST(DiffusingSsspTest, WideDelaySpreadStillDetects) {
  Rng rng(6);
  const Topology topo = ring_topology(15, false);
  const Digraph g = topo.to_digraph();
  const auto r = diffusing_sssp(g, NodeId{0}, 11, 0.01, 20.0);
  EXPECT_TRUE(r.detected);
  EXPECT_DOUBLE_EQ(r.dist[14], 14.0);
  EXPECT_EQ(r.ack_messages, r.basic_messages);
}

TEST(DiffusingSsspTest, MessageOverheadIsExactlyTwofold) {
  // The cost of self-detected termination: acks double the traffic, no
  // more (every basic message triggers exactly one ack).
  Rng rng(8);
  const Topology topo = grid_topology(5, 5);
  const Digraph g = topo.to_digraph();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto r = diffusing_sssp(g, NodeId{0}, seed);
    EXPECT_EQ(r.ack_messages, r.basic_messages);
    EXPECT_GT(r.basic_messages, 0u);
  }
}

TEST(DiffusingSsspTest, Preconditions) {
  Digraph g(2);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  EXPECT_THROW((void)diffusing_sssp(g, NodeId{5}, 1), Error);
  EXPECT_THROW((void)diffusing_sssp(g, NodeId{0}, 1, 0.0, 1.0), Error);
  EXPECT_THROW((void)diffusing_sssp(g, NodeId{0}, 1, 2.0, 1.0), Error);
}

}  // namespace
}  // namespace lumen
