// Theorem 3/5: the distributed router must reproduce the centralized
// optimum, with message counts bounded by the embedded-E_org size (≈ km,
// or m·k0 in the restricted regime) up to the relaxation-wave constant.
#include "dist/dist_router.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/all_pairs.h"
#include "core/liang_shen.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::random_network;

TEST(DistRouterTest, PaperExampleMatchesCentralized) {
  const auto net = testing::paper_example_network();
  for (std::uint32_t s = 0; s < 7; ++s) {
    for (std::uint32_t t = 0; t < 7; ++t) {
      if (s == t) continue;
      const auto central = route_semilightpath(net, NodeId{s}, NodeId{t});
      const auto dist = distributed_route_semilightpath(net, NodeId{s},
                                                        NodeId{t});
      ASSERT_EQ(central.found, dist.found) << s << "->" << t;
      if (central.found) {
        EXPECT_NEAR(central.cost, dist.cost, 1e-9) << s << "->" << t;
        EXPECT_TRUE(dist.path.is_valid(net));
        EXPECT_NEAR(dist.path.cost(net), dist.cost, 1e-9);
        EXPECT_EQ(dist.path.source(net), NodeId{s});
        EXPECT_EQ(dist.path.destination(net), NodeId{t});
      }
    }
  }
}

TEST(DistRouterTest, SelfRouteTrivial) {
  const auto net = testing::paper_example_network();
  const auto r = distributed_route_semilightpath(net, NodeId{2}, NodeId{2});
  EXPECT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_EQ(r.messages, 0u);
}

TEST(DistRouterTest, UnreachableReported) {
  // Node 7 of the paper example has no out-links.
  const auto net = testing::paper_example_network();
  const auto r = distributed_route_semilightpath(net, NodeId{6}, NodeId{0});
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.cost, kInfiniteCost);
}

class DistRouterRandomTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint32_t, std::uint32_t,
                     std::uint32_t, ConvKind>> {};

TEST_P(DistRouterRandomTest, MatchesCentralizedEverywhere) {
  const auto [seed, n, k, k0, kind] = GetParam();
  Rng rng(seed);
  const auto net = random_network(n, 2 * n, k, k0, kind, rng);
  Rng pick(seed ^ 0xd157ULL);
  for (int trial = 0; trial < 10; ++trial) {
    const auto s = static_cast<std::uint32_t>(pick.next_below(n));
    auto t = static_cast<std::uint32_t>(pick.next_below(n));
    if (s == t) t = (t + 1) % n;
    const auto central = route_semilightpath(net, NodeId{s}, NodeId{t});
    const auto dist =
        distributed_route_semilightpath(net, NodeId{s}, NodeId{t});
    ASSERT_EQ(central.found, dist.found)
        << s << "->" << t << " seed " << seed;
    if (central.found) {
      EXPECT_NEAR(central.cost, dist.cost, 1e-9) << s << "->" << t;
      EXPECT_TRUE(dist.path.is_valid(net));
      EXPECT_NEAR(dist.path.cost(net), dist.cost, 1e-9);
    }
  }
}

TEST_P(DistRouterRandomTest, MessageAndRoundAccounting) {
  const auto [seed, n, k, k0, kind] = GetParam();
  Rng rng(seed);
  const auto net = random_network(n, 2 * n, k, k0, kind, rng);
  const auto r = distributed_route_semilightpath(net, NodeId{0}, NodeId{n / 2});
  // Structural ceiling: each of the Σ|Λ(e)| <= m·k0 embedded E_org links
  // carries at most one offer per relaxation wave, and waves are bounded
  // by the aux-node count; in practice a small constant.  We assert the
  // paper's shape with a generous wave constant.
  const std::uint64_t e_org = net.total_link_wavelengths();
  EXPECT_LE(r.messages, 6 * e_org) << "seed " << seed;
  // Rounds bounded by aux path depth: <= 2 * n * min(k, d*k0) nodes, but
  // in practice close to the hop diameter; assert the O(kn) claim.
  EXPECT_LE(r.rounds, 2ULL * k * n + 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistRouterRandomTest,
    ::testing::Values(
        std::tuple{71ULL, 15u, 4u, 2u, ConvKind::kUniform},
        std::tuple{72ULL, 25u, 6u, 3u, ConvKind::kNone},
        std::tuple{73ULL, 30u, 5u, 4u, ConvKind::kRange},
        std::tuple{74ULL, 20u, 8u, 3u, ConvKind::kSparse},
        std::tuple{75ULL, 12u, 4u, 2u, ConvKind::kRandomMatrix},
        std::tuple{76ULL, 40u, 10u, 4u, ConvKind::kUniform}));

TEST(DistAllPairsTest, MatchesCentralizedAllPairs) {
  Rng rng(81);
  const auto net = random_network(12, 24, 4, 2, ConvKind::kUniform, rng);
  const auto dist = distributed_all_pairs(net);
  AllPairsRouter central(net);
  const auto matrix = central.cost_matrix();
  for (std::uint32_t s = 0; s < 12; ++s) {
    for (std::uint32_t t = 0; t < 12; ++t) {
      if (s == t) continue;
      if (matrix[s][t] == kInfiniteCost) {
        EXPECT_EQ(dist.cost[s][t], kInfiniteCost) << s << "->" << t;
      } else {
        EXPECT_NEAR(dist.cost[s][t], matrix[s][t], 1e-9) << s << "->" << t;
      }
    }
  }
  EXPECT_GT(dist.messages, 0u);
  EXPECT_GT(dist.rounds, 0u);
}

TEST(DistAllPairsTest, MessageTotalScalesWithSources) {
  // n single-source executions: total messages ≈ n × per-source messages.
  Rng rng(82);
  const auto net = random_network(10, 20, 3, 2, ConvKind::kUniform, rng);
  const auto all = distributed_all_pairs(net);
  std::uint64_t single_total = 0;
  for (std::uint32_t s = 0; s < 10; ++s) {
    single_total +=
        distributed_route_semilightpath(net, NodeId{s}, NodeId{(s + 1) % 10})
            .messages;
  }
  EXPECT_EQ(all.messages, single_total);
}

}  // namespace
}  // namespace lumen
