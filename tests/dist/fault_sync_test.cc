// SyncNetwork fault mechanics and the hardened synchronous router: under
// any healed FaultPlan the retransmission sweeps must recover every lost
// offer and the protocol must converge to the exact fault-free optimum,
// with the loss-correct quiescence check (a clean post-heal sweep)
// certifying termination.
#include <gtest/gtest.h>

#include "core/liang_shen.h"
#include "dist/dist_router.h"
#include "dist/fault_plan.h"
#include "dist/sync_network.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::random_network;

Digraph line3() {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  g.add_link(NodeId{1}, NodeId{2}, 1.0);
  return g;
}

TEST(FaultSyncNetworkTest, DropAllLeavesNothingInFlight) {
  const Digraph g = line3();
  SyncNetwork<int> net(g);
  FaultPlan plan(1);
  plan.drop_messages(1.0, 100.0);
  net.set_fault_plan(&plan);
  net.send(LinkId{0}, 7);
  net.send(LinkId{1}, 8);
  EXPECT_FALSE(net.advance());  // everything was lost at send time
  EXPECT_EQ(net.total_messages(), 0u);
  EXPECT_EQ(plan.stats().dropped_random, 2u);
}

TEST(FaultSyncNetworkTest, DelaySpikePushesDeliveryWholeRounds) {
  const Digraph g = line3();
  SyncNetwork<int> net(g);
  FaultPlan plan(2);
  plan.delay_spikes(1.0, 2.0);
  net.set_fault_plan(&plan);
  net.send(LinkId{0}, 42);  // sent in round 0, due in round 3
  ASSERT_TRUE(net.advance());  // round 1: in flight, nothing delivered
  EXPECT_TRUE(net.inbox(NodeId{1}).empty());
  ASSERT_TRUE(net.advance());  // round 2: still in flight
  EXPECT_TRUE(net.inbox(NodeId{1}).empty());
  ASSERT_TRUE(net.advance());  // round 3: delivered
  ASSERT_EQ(net.inbox(NodeId{1}).size(), 1u);
  EXPECT_EQ(net.inbox(NodeId{1})[0].payload, 42);
  EXPECT_EQ(net.total_messages(), 1u);
  EXPECT_FALSE(net.advance());  // quiescent again
}

TEST(FaultSyncNetworkTest, DuplicationDeliversBothCopies) {
  const Digraph g = line3();
  SyncNetwork<int> net(g);
  FaultPlan plan(3);
  plan.duplicate_messages(1.0);
  net.set_fault_plan(&plan);
  net.send(LinkId{0}, 5);
  ASSERT_TRUE(net.advance());
  EXPECT_EQ(net.inbox(NodeId{1}).size(), 2u);
  EXPECT_EQ(net.total_messages(), 2u);
}

TEST(FaultSyncNetworkTest, CrashedReceiverNeverGetsTheMessage) {
  const Digraph g = line3();
  SyncNetwork<int> net(g);
  FaultPlan plan(4);
  plan.node_crash(NodeId{1}, 0.0, 5.0);  // delivery at round 1 is inside
  net.set_fault_plan(&plan);
  net.send(LinkId{0}, 9);
  EXPECT_FALSE(net.advance());  // refused at delivery evaluation
  EXPECT_EQ(plan.stats().dropped_crash, 1u);
}

TEST(FaultSyncNetworkTest, TickAdvancesTimeWhileQuiescent) {
  const Digraph g = line3();
  SyncNetwork<int> net(g);
  EXPECT_EQ(net.rounds(), 0u);
  net.tick();
  net.tick();
  EXPECT_EQ(net.rounds(), 2u);
  EXPECT_EQ(net.total_messages(), 0u);
  // tick() is only legal on an idle network.
  net.send(LinkId{0}, 1);
  EXPECT_THROW(net.tick(), Error);
}

// --- hardened synchronous router -----------------------------------------

TEST(FaultSyncRouterTest, FaultFreePlanMatchesPlainProtocol) {
  const auto net = testing::paper_example_network();
  const auto plain = distributed_route_semilightpath(net, NodeId{0}, NodeId{6});
  FaultPlan plan(1);  // no rules: transparent
  const auto hardened =
      distributed_route_semilightpath(net, NodeId{0}, NodeId{6}, plan);
  ASSERT_TRUE(hardened.converged);
  ASSERT_EQ(hardened.found, plain.found);
  EXPECT_NEAR(hardened.cost, plain.cost, 1e-12);
  // Termination still needs one clean certifying sweep.
  EXPECT_GE(hardened.retransmit_sweeps, 1u);
}

TEST(FaultSyncRouterTest, HealedRandomDropsConvergeToOptimum) {
  const auto net = testing::paper_example_network();
  for (std::uint32_t t = 1; t < 7; ++t) {
    const auto central = route_semilightpath(net, NodeId{0}, NodeId{t});
    FaultPlan plan(100 + t);
    plan.drop_messages(0.4, 8.0).duplicate_messages(0.2).delay_spikes(0.3,
                                                                      2.0);
    const auto result =
        distributed_route_semilightpath(net, NodeId{0}, NodeId{t}, plan);
    ASSERT_TRUE(result.converged) << "t=" << t;
    ASSERT_EQ(result.found, central.found) << "t=" << t;
    if (central.found) {
      EXPECT_NEAR(result.cost, central.cost, 1e-9) << "t=" << t;
      EXPECT_TRUE(result.path.is_valid(net)) << "t=" << t;
      EXPECT_NEAR(result.path.cost(net), result.cost, 1e-9) << "t=" << t;
    }
  }
}

TEST(FaultSyncRouterTest, SpanOutageHealsAndConverges) {
  const auto net = testing::paper_example_network();
  const auto central = route_semilightpath(net, NodeId{0}, NodeId{6});
  FaultPlan plan(11);
  plan.span_down(NodeId{0}, NodeId{3}, 0.0, 5.0)
      .span_down(NodeId{1}, NodeId{6}, 2.0, 6.0);
  const auto result =
      distributed_route_semilightpath(net, NodeId{0}, NodeId{6}, plan);
  ASSERT_TRUE(result.converged);
  ASSERT_TRUE(result.found);
  EXPECT_NEAR(result.cost, central.cost, 1e-9);
  EXPECT_GT(plan.stats().dropped_link_down, 0u);
}

TEST(FaultSyncRouterTest, CrashWindowHealsAndConverges) {
  const auto net = testing::paper_example_network();
  const auto central = route_semilightpath(net, NodeId{0}, NodeId{6});
  FaultPlan plan(12);
  plan.node_crash(NodeId{1}, 0.0, 6.0);  // paper node 2, on cheap routes
  const auto result =
      distributed_route_semilightpath(net, NodeId{0}, NodeId{6}, plan);
  ASSERT_TRUE(result.converged);
  ASSERT_TRUE(result.found);
  EXPECT_NEAR(result.cost, central.cost, 1e-9);
}

TEST(FaultSyncRouterTest, PartitionHealsAndConverges) {
  const auto net = testing::paper_example_network();
  const auto central = route_semilightpath(net, NodeId{0}, NodeId{6});
  FaultPlan plan(13);
  plan.partition({NodeId{0}, NodeId{3}}, 7.0);  // source side cut off
  const auto result =
      distributed_route_semilightpath(net, NodeId{0}, NodeId{6}, plan);
  ASSERT_TRUE(result.converged);
  ASSERT_TRUE(result.found);
  EXPECT_NEAR(result.cost, central.cost, 1e-9);
  EXPECT_GT(plan.stats().dropped_partition, 0u);
}

TEST(FaultSyncRouterTest, NeverHealingPlanTerminatesBestEffort) {
  const auto net = testing::paper_example_network();
  FaultPlan plan(14);
  plan.drop_messages(1.0, 1e18);  // nothing ever gets through
  const auto result = distributed_route_semilightpath(net, NodeId{0}, NodeId{6},
                                                      plan, /*max_sweeps=*/8);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.retransmit_sweeps, 8u);
  EXPECT_FALSE(result.found);  // no offer ever crossed a wire
}

TEST(FaultSyncRouterTest, RandomNetworksUnderHealedPlans) {
  Rng rng(91);
  const auto net = random_network(16, 32, 4, 3, ConvKind::kUniform, rng);
  const auto central = route_semilightpath(net, NodeId{0}, NodeId{9});
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    FaultPlan plan = FaultPlan::random_plan(seed, net.topology(), 6.0);
    const auto result =
        distributed_route_semilightpath(net, NodeId{0}, NodeId{9}, plan);
    ASSERT_TRUE(result.converged) << plan.describe();
    ASSERT_EQ(result.found, central.found) << plan.describe();
    if (central.found) {
      EXPECT_NEAR(result.cost, central.cost, 1e-9) << plan.describe();
    }
  }
}

}  // namespace
}  // namespace lumen
