#include "dist/sync_network.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace lumen {
namespace {

Digraph triangle() {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  g.add_link(NodeId{1}, NodeId{2}, 1.0);
  g.add_link(NodeId{2}, NodeId{0}, 1.0);
  return g;
}

TEST(SyncNetworkTest, NoTrafficNoRounds) {
  const auto g = triangle();
  SyncNetwork<int> net(g);
  EXPECT_FALSE(net.advance());
  EXPECT_EQ(net.rounds(), 0u);
  EXPECT_EQ(net.total_messages(), 0u);
}

TEST(SyncNetworkTest, DeliveryNextRound) {
  const auto g = triangle();
  SyncNetwork<int> net(g);
  net.send(LinkId{0}, 42);
  // Not delivered until advance().
  EXPECT_TRUE(net.inbox(NodeId{1}).empty());
  ASSERT_TRUE(net.advance());
  const auto inbox = net.inbox(NodeId{1});
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].payload, 42);
  EXPECT_EQ(inbox[0].link, LinkId{0});
  EXPECT_EQ(net.rounds(), 1u);
  EXPECT_EQ(net.total_messages(), 1u);
}

TEST(SyncNetworkTest, InboxClearedEachRound) {
  const auto g = triangle();
  SyncNetwork<int> net(g);
  net.send(LinkId{0}, 1);
  ASSERT_TRUE(net.advance());
  net.send(LinkId{1}, 2);
  ASSERT_TRUE(net.advance());
  EXPECT_TRUE(net.inbox(NodeId{1}).empty());
  ASSERT_EQ(net.inbox(NodeId{2}).size(), 1u);
  EXPECT_EQ(net.inbox(NodeId{2})[0].payload, 2);
}

TEST(SyncNetworkTest, MultipleMessagesSameDestination) {
  Digraph g(2);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);  // parallel
  SyncNetwork<int> net(g);
  net.send(LinkId{0}, 10);
  net.send(LinkId{1}, 20);
  ASSERT_TRUE(net.advance());
  EXPECT_EQ(net.inbox(NodeId{1}).size(), 2u);
  EXPECT_EQ(net.total_messages(), 2u);
}

TEST(SyncNetworkTest, QuiescenceTerminates) {
  const auto g = triangle();
  SyncNetwork<int> net(g);
  net.send(LinkId{0}, 1);
  int rounds = 0;
  while (net.advance()) {
    ++rounds;
    // Relay once around the triangle then stop.
    for (std::uint32_t v = 0; v < 3; ++v) {
      for (const auto& d : net.inbox(NodeId{v})) {
        if (d.payload < 3) net.send(LinkId{v}, d.payload + 1);
      }
    }
  }
  EXPECT_EQ(rounds, 3);
  EXPECT_EQ(net.total_messages(), 3u);
}

TEST(SyncNetworkTest, InvalidLinkRejected) {
  const auto g = triangle();
  SyncNetwork<int> net(g);
  EXPECT_THROW(net.send(LinkId{9}, 1), Error);
  EXPECT_THROW((void)net.inbox(NodeId{5}), Error);
}

TEST(SyncNetworkTest, MoveOnlyishPayloadsCopyable) {
  const auto g = triangle();
  struct Payload {
    double a;
    std::uint32_t b;
  };
  SyncNetwork<Payload> net(g);
  net.send(LinkId{2}, Payload{1.5, 7});
  ASSERT_TRUE(net.advance());
  ASSERT_EQ(net.inbox(NodeId{0}).size(), 1u);
  EXPECT_DOUBLE_EQ(net.inbox(NodeId{0})[0].payload.a, 1.5);
}

}  // namespace
}  // namespace lumen
