// FaultPlan unit coverage: every rule kind in isolation, deterministic
// replay from the seed, heal-horizon accounting, and the replay helpers
// (describe, span_timeline, random_plan) the fuzz suites depend on.
#include "dist/fault_plan.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/digraph.h"
#include "util/error.h"

namespace lumen {
namespace {

/// A 4-node directed cycle used by the rule tests.
Digraph cycle4() {
  Digraph g(4);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  g.add_link(NodeId{1}, NodeId{2}, 1.0);
  g.add_link(NodeId{2}, NodeId{3}, 1.0);
  g.add_link(NodeId{3}, NodeId{0}, 1.0);
  return g;
}

TEST(FaultPlanTest, EmptyPlanIsTransparent) {
  FaultPlan plan(1);
  for (double t = 0.0; t < 10.0; t += 1.0) {
    const auto d = plan.decide_send(NodeId{0}, NodeId{1}, LinkId{0}, t);
    EXPECT_FALSE(d.drop);
    EXPECT_EQ(d.copies, 1u);
    EXPECT_DOUBLE_EQ(d.extra_delay, 0.0);
    EXPECT_TRUE(plan.deliverable(NodeId{1}, t + 1.0));
  }
  EXPECT_DOUBLE_EQ(plan.healed_after(), 0.0);
  EXPECT_EQ(plan.stats().sends, 10u);
  EXPECT_EQ(plan.stats().total_dropped(), 0u);
}

TEST(FaultPlanTest, SameSeedSameRulesReplaysBitForBit) {
  const auto run = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    plan.drop_messages(0.3, 50.0).duplicate_messages(0.25).delay_spikes(0.2,
                                                                        2.0);
    std::vector<FaultDecision> decisions;
    for (int i = 0; i < 200; ++i) {
      decisions.push_back(plan.decide_send(NodeId{0}, NodeId{1}, LinkId{0},
                                           static_cast<double>(i % 40)));
    }
    return decisions;
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal_to_c = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].drop, b[i].drop) << i;
    EXPECT_EQ(a[i].copies, b[i].copies) << i;
    EXPECT_DOUBLE_EQ(a[i].extra_delay, b[i].extra_delay) << i;
    all_equal_to_c &= a[i].drop == c[i].drop && a[i].copies == c[i].copies;
  }
  EXPECT_FALSE(all_equal_to_c);  // a different seed rolls different dice
}

TEST(FaultPlanTest, DropWindowRespected) {
  FaultPlan plan(2);
  plan.drop_messages(1.0, 5.0);
  for (double t = 0.0; t < 5.0; t += 1.0)
    EXPECT_TRUE(plan.decide_send(NodeId{0}, NodeId{1}, LinkId{0}, t).drop);
  for (double t = 5.0; t < 10.0; t += 1.0)
    EXPECT_FALSE(plan.decide_send(NodeId{0}, NodeId{1}, LinkId{0}, t).drop);
  EXPECT_EQ(plan.stats().dropped_random, 5u);
  EXPECT_DOUBLE_EQ(plan.healed_after(), 5.0);
}

TEST(FaultPlanTest, DuplicationAndSpikes) {
  FaultPlan plan(3);
  plan.duplicate_messages(1.0).delay_spikes(1.0, 3.0);
  const auto d = plan.decide_send(NodeId{0}, NodeId{1}, LinkId{0}, 0.0);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(d.copies, 2u);
  EXPECT_DOUBLE_EQ(d.extra_delay, 3.0);
  EXPECT_EQ(plan.stats().duplicated, 1u);
  EXPECT_EQ(plan.stats().delayed, 1u);
  // Neither rule can lose a message: the plan is healed from the start.
  EXPECT_DOUBLE_EQ(plan.healed_after(), 0.0);
}

TEST(FaultPlanTest, LinkDownWindow) {
  FaultPlan plan(4);
  plan.link_down(LinkId{1}, 2.0, 4.0);
  EXPECT_FALSE(plan.decide_send(NodeId{1}, NodeId{2}, LinkId{1}, 1.0).drop);
  EXPECT_TRUE(plan.decide_send(NodeId{1}, NodeId{2}, LinkId{1}, 2.0).drop);
  EXPECT_TRUE(plan.decide_send(NodeId{1}, NodeId{2}, LinkId{1}, 3.5).drop);
  EXPECT_FALSE(plan.decide_send(NodeId{1}, NodeId{2}, LinkId{1}, 4.0).drop);
  // Other links are unaffected inside the window.
  EXPECT_FALSE(plan.decide_send(NodeId{0}, NodeId{1}, LinkId{0}, 3.0).drop);
  EXPECT_EQ(plan.stats().dropped_link_down, 2u);
  EXPECT_DOUBLE_EQ(plan.healed_after(), 4.0);
}

TEST(FaultPlanTest, SpanDownKillsBothDirections) {
  FaultPlan plan(5);
  plan.span_down(NodeId{1}, NodeId{2}, 0.0, 3.0);
  EXPECT_TRUE(plan.decide_send(NodeId{1}, NodeId{2}, LinkId{1}, 1.0).drop);
  EXPECT_TRUE(plan.decide_send(NodeId{2}, NodeId{1}, LinkId{9}, 1.0).drop);
  EXPECT_FALSE(plan.decide_send(NodeId{2}, NodeId{3}, LinkId{2}, 1.0).drop);
  EXPECT_FALSE(plan.decide_send(NodeId{1}, NodeId{2}, LinkId{1}, 3.0).drop);
}

TEST(FaultPlanTest, NodeCrashIsDeafAndMute) {
  FaultPlan plan(6);
  plan.node_crash(NodeId{2}, 1.0, 4.0);
  // Mute: sends from the crashed node are lost inside the window.
  EXPECT_TRUE(plan.decide_send(NodeId{2}, NodeId{3}, LinkId{2}, 2.0).drop);
  EXPECT_FALSE(plan.decide_send(NodeId{2}, NodeId{3}, LinkId{2}, 4.0).drop);
  // Deaf: deliveries to the crashed node are refused inside the window.
  EXPECT_FALSE(plan.deliverable(NodeId{2}, 2.0));
  EXPECT_TRUE(plan.deliverable(NodeId{2}, 4.5));
  EXPECT_TRUE(plan.deliverable(NodeId{1}, 2.0));
  EXPECT_EQ(plan.stats().dropped_crash, 2u);
}

TEST(FaultPlanTest, PartitionDropsOnlyCrossCutTraffic) {
  FaultPlan plan(7);
  plan.partition({NodeId{0}, NodeId{1}}, 5.0);
  // Cross-cut, before heal: lost (both directions).
  EXPECT_TRUE(plan.decide_send(NodeId{1}, NodeId{2}, LinkId{1}, 0.0).drop);
  EXPECT_TRUE(plan.decide_send(NodeId{3}, NodeId{0}, LinkId{3}, 4.9).drop);
  // Same side: unaffected.
  EXPECT_FALSE(plan.decide_send(NodeId{0}, NodeId{1}, LinkId{0}, 0.0).drop);
  EXPECT_FALSE(plan.decide_send(NodeId{2}, NodeId{3}, LinkId{2}, 0.0).drop);
  // Healed.
  EXPECT_FALSE(plan.decide_send(NodeId{1}, NodeId{2}, LinkId{1}, 5.0).drop);
  EXPECT_EQ(plan.stats().dropped_partition, 2u);
  EXPECT_DOUBLE_EQ(plan.healed_after(), 5.0);
}

TEST(FaultPlanTest, HealHorizonIsTheLatestDropCapableRule) {
  FaultPlan plan(8);
  plan.drop_messages(0.5, 5.0)
      .duplicate_messages(1.0)  // never needs to heal
      .span_down(NodeId{0}, NodeId{1}, 2.0, 7.0)
      .node_crash(NodeId{3}, 0.0, 3.0);
  EXPECT_DOUBLE_EQ(plan.healed_after(), 7.0);
}

TEST(FaultPlanTest, RuleValidation) {
  FaultPlan plan(9);
  EXPECT_THROW(plan.drop_messages(1.5, 10.0), Error);
  EXPECT_THROW(plan.drop_messages(-0.1, 10.0), Error);
  EXPECT_THROW(plan.delay_spikes(0.5, -1.0), Error);
  EXPECT_THROW(plan.link_down(LinkId{0}, 5.0, 2.0), Error);
  EXPECT_THROW(plan.span_down(NodeId{1}, NodeId{1}, 0.0, 2.0), Error);
  EXPECT_THROW(plan.node_crash(NodeId{0}, -1.0, 2.0), Error);
}

TEST(FaultPlanTest, DescribeNamesEveryRule) {
  FaultPlan plan(42);
  plan.drop_messages(0.2, 8.0)
      .duplicate_messages(0.1)
      .delay_spikes(0.3, 2.0)
      .link_down(LinkId{5}, 1.0, 2.0)
      .span_down(NodeId{1}, NodeId{2}, 0.0, 4.0)
      .node_crash(NodeId{3}, 2.0, 6.0)
      .partition({NodeId{0}, NodeId{1}, NodeId{2}}, 8.0);
  const std::string s = plan.describe();
  EXPECT_NE(s.find("seed=42"), std::string::npos) << s;
  EXPECT_NE(s.find("drop(0.2,<8)"), std::string::npos) << s;
  EXPECT_NE(s.find("dup(0.1)"), std::string::npos) << s;
  EXPECT_NE(s.find("spike(0.3,+2)"), std::string::npos) << s;
  EXPECT_NE(s.find("link_down(e5"), std::string::npos) << s;
  EXPECT_NE(s.find("span(1-2"), std::string::npos) << s;
  EXPECT_NE(s.find("crash(n3"), std::string::npos) << s;
  EXPECT_NE(s.find("partition(|side|=3,<8)"), std::string::npos) << s;
}

TEST(FaultPlanTest, SpanTimelineSortedDownsBeforeUps) {
  FaultPlan plan(10);
  plan.span_down(NodeId{0}, NodeId{1}, 2.0, 6.0)
      .span_down(NodeId{2}, NodeId{3}, 0.0, 2.0);  // its up ties a down
  const auto events = plan.span_timeline();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events[0].time, 0.0);
  EXPECT_TRUE(events[0].down);
  // At t = 2 the 0-1 cut (down) sorts before the 2-3 repair (up).
  EXPECT_DOUBLE_EQ(events[1].time, 2.0);
  EXPECT_TRUE(events[1].down);
  EXPECT_EQ(events[1].a, NodeId{0});
  EXPECT_DOUBLE_EQ(events[2].time, 2.0);
  EXPECT_FALSE(events[2].down);
  EXPECT_EQ(events[2].a, NodeId{2});
  EXPECT_DOUBLE_EQ(events[3].time, 6.0);
  EXPECT_FALSE(events[3].down);
}

TEST(FaultPlanTest, RandomPlanIsReproducibleAndHealed) {
  const Digraph g = cycle4();
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    FaultPlan a = FaultPlan::random_plan(seed, g, 6.0);
    FaultPlan b = FaultPlan::random_plan(seed, g, 6.0);
    EXPECT_EQ(a.describe(), b.describe()) << seed;
    // Decision streams replay identically too.
    for (int i = 0; i < 64; ++i) {
      const double t = static_cast<double>(i % 10);
      const auto da = a.decide_send(NodeId{0}, NodeId{1}, LinkId{0}, t);
      const auto db = b.decide_send(NodeId{0}, NodeId{1}, LinkId{0}, t);
      EXPECT_EQ(da.drop, db.drop) << seed << " @" << i;
      EXPECT_EQ(da.copies, db.copies) << seed << " @" << i;
      EXPECT_DOUBLE_EQ(da.extra_delay, db.extra_delay) << seed << " @" << i;
    }
    // Every generated plan heals by the requested horizon, so the
    // hardened routers are guaranteed to converge under it.
    EXPECT_LE(a.healed_after(), 6.0) << a.describe();
  }
}

TEST(FaultPlanTest, RandomPlansDifferAcrossSeeds) {
  const Digraph g = cycle4();
  int distinct = 0;
  const std::string base = FaultPlan::random_plan(0, g, 6.0).describe();
  for (std::uint64_t seed = 1; seed < 16; ++seed) {
    distinct += FaultPlan::random_plan(seed, g, 6.0).describe() != base;
  }
  EXPECT_GE(distinct, 12);  // the generator actually varies its rules
}

}  // namespace
}  // namespace lumen
