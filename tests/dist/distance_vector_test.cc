#include "dist/distance_vector.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "topo/topologies.h"
#include "util/rng.h"

namespace lumen {
namespace {

TEST(DistanceVectorTest, LineGraphExact) {
  Digraph g(4);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  g.add_link(NodeId{1}, NodeId{2}, 2.0);
  g.add_link(NodeId{2}, NodeId{3}, 4.0);
  const auto r = distance_vector_apsp(g);
  EXPECT_DOUBLE_EQ(r.dist[0][3], 7.0);
  EXPECT_DOUBLE_EQ(r.dist[1][3], 6.0);
  EXPECT_DOUBLE_EQ(r.dist[0][0], 0.0);
  // Backward direction unreachable.
  EXPECT_EQ(r.dist[3][0], kInfiniteCost);
}

TEST(DistanceVectorTest, MatchesDijkstraOnRandomGraphs) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Rng rng(seed);
    Digraph g(30);
    for (int i = 0; i < 160; ++i) {
      const auto u = static_cast<std::uint32_t>(rng.next_below(30));
      const auto v = static_cast<std::uint32_t>(rng.next_below(30));
      if (u != v) g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(0.5, 4));
    }
    const auto dv = distance_vector_apsp(g);
    for (std::uint32_t s = 0; s < 30; ++s) {
      const auto tree = dijkstra(g, NodeId{s});
      for (std::uint32_t t = 0; t < 30; ++t) {
        if (tree.dist[t] == kInfiniteCost) {
          EXPECT_EQ(dv.dist[s][t], kInfiniteCost) << s << "->" << t;
        } else {
          EXPECT_NEAR(dv.dist[s][t], tree.dist[t], 1e-9) << s << "->" << t;
        }
      }
    }
  }
}

TEST(DistanceVectorTest, ForwardingTablesAreConsistent) {
  Rng rng(7);
  const Topology topo = random_sparse_topology(25, 50, rng);
  Digraph g = topo.to_digraph();
  for (std::uint32_t e = 0; e < g.num_links(); ++e)
    g.set_weight(LinkId{e}, rng.next_double_in(0.5, 2.0));
  const auto r = distance_vector_apsp(g);
  for (std::uint32_t s = 0; s < 25; ++s) {
    for (std::uint32_t t = 0; t < 25; ++t) {
      if (s == t) {
        EXPECT_FALSE(r.next_link[s][t].valid());
        continue;
      }
      const LinkId e = r.next_link[s][t];
      ASSERT_TRUE(e.valid()) << s << "->" << t;  // strongly connected
      EXPECT_EQ(g.tail(e), NodeId{s});
      // Bellman consistency: d(s,t) = w(e) + d(head(e), t).
      EXPECT_NEAR(r.dist[s][t],
                  g.weight(e) + r.dist[g.head(e).value()][t], 1e-9)
          << s << "->" << t;
    }
  }
}

TEST(DistanceVectorTest, FollowingForwardingTablesReachesTarget) {
  Rng rng(8);
  const Topology topo = torus_topology(3, 4);
  Digraph g = topo.to_digraph();
  for (std::uint32_t e = 0; e < g.num_links(); ++e)
    g.set_weight(LinkId{e}, rng.next_double_in(1.0, 2.0));
  const auto r = distance_vector_apsp(g);
  for (std::uint32_t s = 0; s < 12; ++s) {
    for (std::uint32_t t = 0; t < 12; ++t) {
      NodeId at{s};
      double total = 0.0;
      int hops = 0;
      while (at != NodeId{t} && hops <= 24) {
        const LinkId e = r.next_link[at.value()][t];
        ASSERT_TRUE(e.valid());
        total += g.weight(e);
        at = g.head(e);
        ++hops;
      }
      EXPECT_EQ(at, NodeId{t});
      EXPECT_NEAR(total, r.dist[s][t], 1e-9);
    }
  }
}

TEST(DistanceVectorTest, AccountingPopulated) {
  Rng rng(9);
  const Topology topo = ring_topology(10);
  const Digraph g = topo.to_digraph();
  const auto r = distance_vector_apsp(g);
  EXPECT_GT(r.messages, 0u);
  EXPECT_GE(r.entries, r.messages);  // every message carries >= 1 entry
  // Rounds bounded by the hop diameter + constant.
  EXPECT_LE(r.rounds, 10u);
  // Entry volume is Θ(n·m)-ish on a ring: each of n destinations crosses
  // each of 2n directed links a bounded number of times.
  EXPECT_LE(r.entries, 4ULL * g.num_links() * g.num_nodes());
}

TEST(DistanceVectorTest, EmptyAndSingleton) {
  const auto empty = distance_vector_apsp(Digraph{});
  EXPECT_TRUE(empty.dist.empty());
  const auto one = distance_vector_apsp(Digraph{1});
  ASSERT_EQ(one.dist.size(), 1u);
  EXPECT_DOUBLE_EQ(one.dist[0][0], 0.0);
  EXPECT_EQ(one.messages, 0u);
}

}  // namespace
}  // namespace lumen
