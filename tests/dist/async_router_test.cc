// The asynchronous schedule (Chandy–Misra's actual model) must converge to
// the same optimum as the synchronous rounds and the centralized router,
// for every random delay assignment.
#include "dist/async_router.h"

#include <gtest/gtest.h>

#include "core/liang_shen.h"
#include "dist/async_network.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::random_network;

TEST(AsyncNetworkTest, DeliversInTimeOrder) {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  g.add_link(NodeId{1}, NodeId{2}, 1.0);
  AsyncNetwork<int> net(g, Rng(1), 1.0, 2.0);
  net.send(LinkId{0}, 10);
  net.send(LinkId{1}, 20);
  net.send(LinkId{0}, 30);
  double prev = 0.0;
  int seen = 0;
  while (auto d = net.next()) {
    EXPECT_GE(d->time, prev);
    prev = d->time;
    ++seen;
  }
  EXPECT_EQ(seen, 3);
  EXPECT_EQ(net.total_messages(), 3u);
  EXPECT_TRUE(net.quiescent());
}

TEST(AsyncNetworkTest, DelaysWithinBounds) {
  Digraph g(2);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  AsyncNetwork<int> net(g, Rng(2), 0.5, 1.5);
  for (int i = 0; i < 50; ++i) net.send(LinkId{0}, i);
  // All sent at time 0: deliveries land in [0.5, 1.5).
  while (auto d = net.next()) {
    EXPECT_GE(d->time, 0.5);
    EXPECT_LT(d->time, 1.5);
  }
}

TEST(AsyncNetworkTest, InvalidParamsRejected) {
  Digraph g(2);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  EXPECT_THROW((AsyncNetwork<int>(g, Rng(1), -0.1, 1.0)), Error);
  EXPECT_THROW((AsyncNetwork<int>(g, Rng(1), 2.0, 1.0)), Error);
  AsyncNetwork<int> net(g, Rng(1));
  EXPECT_THROW(net.send(LinkId{7}, 0), Error);
}

TEST(AsyncNetworkTest, ZeroMinDelayIsALegalSchedule) {
  // Regression: min_delay == 0 used to be rejected, but zero-latency
  // deliveries are just a harsher (slack-free) schedule.
  Digraph g(2);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  AsyncNetwork<int> net(g, Rng(3), 0.0, 1.0);
  for (int i = 0; i < 20; ++i) net.send(LinkId{0}, i);
  while (auto d = net.next()) {
    EXPECT_GE(d->time, 0.0);
    EXPECT_LT(d->time, 1.0);
  }
  EXPECT_EQ(net.total_messages(), 20u);
}

TEST(AsyncRouterTest, MatchesCentralizedOnPaperExample) {
  const auto net = testing::paper_example_network();
  for (std::uint32_t s = 0; s < 7; ++s) {
    for (std::uint32_t t = 0; t < 7; ++t) {
      if (s == t) continue;
      const auto central = route_semilightpath(net, NodeId{s}, NodeId{t});
      const auto async =
          async_route_semilightpath(net, NodeId{s}, NodeId{t}, /*seed=*/7);
      ASSERT_EQ(central.found, async.found) << s << "->" << t;
      if (central.found) {
        EXPECT_NEAR(central.cost, async.cost, 1e-9) << s << "->" << t;
        EXPECT_TRUE(async.path.is_valid(net));
        EXPECT_NEAR(async.path.cost(net), async.cost, 1e-9);
      }
    }
  }
}

TEST(AsyncRouterTest, ScheduleIndependence) {
  // Same network, many delay assignments: identical optima every time.
  Rng rng(55);
  const auto net = random_network(25, 50, 5, 3, ConvKind::kUniform, rng);
  const auto central = route_semilightpath(net, NodeId{0}, NodeId{12});
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto async =
        async_route_semilightpath(net, NodeId{0}, NodeId{12}, seed);
    ASSERT_EQ(central.found, async.found) << "seed " << seed;
    if (central.found) {
      EXPECT_NEAR(central.cost, async.cost, 1e-9) << "seed " << seed;
    }
  }
}

TEST(AsyncRouterTest, WideDelaySpreadStillConverges) {
  Rng rng(56);
  const auto net = random_network(20, 40, 4, 2, ConvKind::kRange, rng);
  const auto central = route_semilightpath(net, NodeId{0}, NodeId{10});
  const auto async = async_route_semilightpath(net, NodeId{0}, NodeId{10},
                                               /*seed=*/3, 0.01, 10.0);
  ASSERT_EQ(central.found, async.found);
  if (central.found) {
    EXPECT_NEAR(central.cost, async.cost, 1e-9);
  }
}

TEST(AsyncRouterTest, MessageCountAtLeastSynchronous) {
  // Without per-round batching the async schedule generally sends more.
  // We only assert it is bounded by a constant multiple of the E_org size
  // (self-stabilizing Bellman–Ford over nonneg costs converges fast).
  Rng rng(57);
  const auto net = random_network(30, 60, 4, 3, ConvKind::kUniform, rng);
  const auto async =
      async_route_semilightpath(net, NodeId{0}, NodeId{15}, /*seed=*/9);
  EXPECT_GT(async.messages, 0u);
  EXPECT_LE(async.messages, 40 * net.total_link_wavelengths());
  EXPECT_GT(async.virtual_time, 0.0);
}

TEST(AsyncRouterTest, SelfAndUnreachable) {
  const auto net = testing::paper_example_network();
  const auto self = async_route_semilightpath(net, NodeId{1}, NodeId{1}, 1);
  EXPECT_TRUE(self.found);
  EXPECT_DOUBLE_EQ(self.cost, 0.0);
  const auto unreachable =
      async_route_semilightpath(net, NodeId{6}, NodeId{2}, 1);
  EXPECT_FALSE(unreachable.found);
}

}  // namespace
}  // namespace lumen
