// Hardened asynchronous router: healed fault plans must converge to the
// exact fault-free optimum on every delay schedule, and — because the
// protocol is a chaotic iteration of one monotone fixpoint operator — the
// converged label vector is identical (bitwise) across schedules, which
// the ~50-seed sweep checks with exact equality.
#include "dist/async_router.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/liang_shen.h"
#include "graph/dijkstra.h"  // kInfiniteCost
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::random_network;

TEST(FaultAsyncRouterTest, ZeroMinDelayScheduleMatchesCentralized) {
  // Satellite regression: the harsher min_delay == 0 schedule (zero-latency
  // deliveries allowed) is legal end to end, not just at the simulator.
  const auto net = testing::paper_example_network();
  const auto central = route_semilightpath(net, NodeId{0}, NodeId{6});
  const auto async = async_route_semilightpath(net, NodeId{0}, NodeId{6},
                                               /*seed=*/5, 0.0, 1.0);
  ASSERT_EQ(async.found, central.found);
  EXPECT_NEAR(async.cost, central.cost, 1e-9);
  EXPECT_TRUE(async.converged);
  EXPECT_EQ(async.retransmit_sweeps, 0u);  // fault-free path: no sweeps
}

TEST(FaultAsyncRouterTest, NodeCostsAreThePerNodeOptima) {
  const auto net = testing::paper_example_network();
  const auto async =
      async_route_semilightpath(net, NodeId{0}, NodeId{6}, /*seed=*/3);
  ASSERT_EQ(async.node_costs.size(), net.num_nodes());
  EXPECT_DOUBLE_EQ(async.node_costs[0], 0.0);
  for (std::uint32_t v = 1; v < net.num_nodes(); ++v) {
    const auto central = route_semilightpath(net, NodeId{0}, NodeId{v});
    if (central.found) {
      EXPECT_NEAR(async.node_costs[v], central.cost, 1e-9) << "v=" << v;
    } else {
      EXPECT_EQ(async.node_costs[v], kInfiniteCost) << "v=" << v;
    }
  }
}

TEST(FaultAsyncRouterTest, HealedPlanConvergesToOptimum) {
  const auto net = testing::paper_example_network();
  const auto central = route_semilightpath(net, NodeId{0}, NodeId{6});
  FaultPlan plan(17);
  plan.drop_messages(0.4, 6.0).duplicate_messages(0.2).delay_spikes(0.25,
                                                                    2.0);
  AsyncOptions options;
  options.faults = &plan;
  const auto result =
      async_route_semilightpath(net, NodeId{0}, NodeId{6}, /*seed=*/9, options);
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.found, central.found);
  EXPECT_NEAR(result.cost, central.cost, 1e-9);
  EXPECT_TRUE(result.path.is_valid(net));
  EXPECT_GE(result.retransmit_sweeps, 1u);
  EXPECT_GT(plan.stats().total_dropped(), 0u);
}

TEST(FaultAsyncRouterTest, CustomRetransmitTimeoutStillConverges) {
  const auto net = testing::paper_example_network();
  const auto central = route_semilightpath(net, NodeId{0}, NodeId{6});
  FaultPlan plan(18);
  plan.drop_messages(0.5, 4.0);
  AsyncOptions options;
  options.faults = &plan;
  options.retransmit_timeout = 0.25;  // aggressive timer
  const auto result =
      async_route_semilightpath(net, NodeId{0}, NodeId{6}, /*seed=*/2, options);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.cost, central.cost, 1e-9);
}

TEST(FaultAsyncRouterTest, NeverHealingPlanTerminatesBestEffort) {
  const auto net = testing::paper_example_network();
  FaultPlan plan(19);
  plan.drop_messages(1.0, 1e18);
  AsyncOptions options;
  options.faults = &plan;
  options.max_sweeps = 6;
  const auto result =
      async_route_semilightpath(net, NodeId{0}, NodeId{6}, /*seed=*/4, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.retransmit_sweeps, 6u);
  EXPECT_FALSE(result.found);
}

TEST(FaultAsyncRouterTest, ScheduleIndependenceUnderFaultsAcross50Seeds) {
  // ~50 delay schedules, each under its own replay of the same fault
  // rules: the converged per-node label vector must be IDENTICAL every
  // time.  Equality is exact (EXPECT_EQ, not NEAR): every schedule sums
  // the same link/conversion costs along the same optimal paths, so even
  // the floating-point bits agree.
  Rng rng(63);
  const auto net = random_network(14, 28, 4, 2, ConvKind::kUniform, rng);

  AsyncOptions baseline_options;  // fault-free reference labels
  const auto baseline = async_route_semilightpath(net, NodeId{0}, NodeId{7},
                                                  /*seed=*/0, baseline_options);
  ASSERT_TRUE(baseline.converged);

  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    FaultPlan plan(777);  // same rules each run; interleaving differs
    plan.drop_messages(0.3, 5.0)
        .duplicate_messages(0.15)
        .delay_spikes(0.2, 1.5)
        .node_crash(NodeId{3}, 0.0, 3.0);
    AsyncOptions options;
    options.min_delay = 0.0;  // include the harshest schedule family
    options.max_delay = 2.0;
    options.faults = &plan;
    const auto run =
        async_route_semilightpath(net, NodeId{0}, NodeId{7}, seed, options);
    ASSERT_TRUE(run.converged) << "seed " << seed;
    EXPECT_EQ(run.node_costs, baseline.node_costs) << "seed " << seed;
    EXPECT_EQ(run.found, baseline.found) << "seed " << seed;
    EXPECT_EQ(run.cost, baseline.cost) << "seed " << seed;
  }
}

}  // namespace
}  // namespace lumen
