#include "dist/distributed_sssp.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "topo/topologies.h"
#include "util/rng.h"

namespace lumen {
namespace {

TEST(DistributedSsspTest, LineGraph) {
  Digraph g(4);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  g.add_link(NodeId{1}, NodeId{2}, 2.0);
  g.add_link(NodeId{2}, NodeId{3}, 3.0);
  const auto r = distributed_sssp(g, NodeId{0});
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(r.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(r.dist[2], 3.0);
  EXPECT_DOUBLE_EQ(r.dist[3], 6.0);
  EXPECT_EQ(r.rounds, 3u);    // one wave down the line
  EXPECT_EQ(r.messages, 3u);  // one message per link
}

TEST(DistributedSsspTest, UnreachableStaysInfinite) {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  const auto r = distributed_sssp(g, NodeId{0});
  EXPECT_EQ(r.dist[2], kInfiniteCost);
  EXPECT_EQ(r.parent_link[2], LinkId::invalid());
}

TEST(DistributedSsspTest, MatchesDijkstraOnRandomGraphs) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    Rng rng(seed);
    Digraph g(60);
    for (int i = 0; i < 350; ++i) {
      const auto u = static_cast<std::uint32_t>(rng.next_below(60));
      const auto v = static_cast<std::uint32_t>(rng.next_below(60));
      if (u != v) g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(0, 5));
    }
    const auto dist_result = distributed_sssp(g, NodeId{0});
    const auto reference = dijkstra(g, NodeId{0});
    for (std::uint32_t v = 0; v < 60; ++v) {
      if (reference.dist[v] == kInfiniteCost) {
        EXPECT_EQ(dist_result.dist[v], kInfiniteCost);
      } else {
        EXPECT_NEAR(dist_result.dist[v], reference.dist[v], 1e-9)
            << "seed " << seed << " node " << v;
      }
    }
  }
}

TEST(DistributedSsspTest, ParentLinksFormTree) {
  Rng rng(9);
  const auto topo = random_sparse_topology(40, 80, rng);
  Digraph g = topo.to_digraph();
  for (std::uint32_t e = 0; e < g.num_links(); ++e)
    g.set_weight(LinkId{e}, rng.next_double_in(0.5, 2.0));
  const auto r = distributed_sssp(g, NodeId{0});
  for (std::uint32_t v = 1; v < 40; ++v) {
    ASSERT_NE(r.dist[v], kInfiniteCost);  // strongly connected
    const LinkId e = r.parent_link[v];
    ASSERT_TRUE(e.valid());
    EXPECT_EQ(g.head(e), NodeId{v});
    EXPECT_NEAR(r.dist[g.tail(e).value()] + g.weight(e), r.dist[v], 1e-9);
  }
}

TEST(DistributedSsspTest, RoundsBoundedByNodes) {
  // With non-negative weights, the synchronous protocol settles within n
  // waves (each round finalizes at least the next shortest-path layer).
  Rng rng(10);
  const auto topo = ring_topology(25, false);  // worst case: directed cycle
  Digraph g = topo.to_digraph();
  const auto r = distributed_sssp(g, NodeId{0});
  EXPECT_LE(r.rounds, 25u);
  EXPECT_DOUBLE_EQ(r.dist[24], 24.0);
}

TEST(DistributedSsspTest, MessageCountLinearInLinksForUnitWeights) {
  // Unit weights: distances finalize in BFS order, so each link carries at
  // most a small constant number of offers.
  Rng rng(11);
  const auto topo = random_sparse_topology(80, 160, rng);
  const Digraph g = topo.to_digraph();
  const auto r = distributed_sssp(g, NodeId{0});
  EXPECT_LE(r.messages, 4ULL * g.num_links());
}

}  // namespace
}  // namespace lumen
