// Deterministic schedule-fuzz sweep for the fault-hardened routers:
// random networks (the shared fuzz_network generator, degenerate shapes
// included) x random healed fault plans, both the synchronous and the
// asynchronous hardened protocol checked against the independent
// state-space oracle.  Every fault plan here heals by kHealAt, so each
// run MUST converge to the exact fault-free optimum; any miss prints a
// one-line REPLAY string whose (net_seed, plan_seed) pair reproduces the
// failing run bit-for-bit.
#include <gtest/gtest.h>

#include <string>

#include "core/state_dijkstra.h"
#include "dist/async_router.h"
#include "dist/dist_router.h"
#include "dist/fault_plan.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::fuzz_network;

constexpr double kHealAt = 6.0;

/// The one-line reproduction recipe printed with every failed assertion.
std::string replay(std::uint64_t net_seed, std::uint64_t plan_seed,
                   const FaultPlan& plan) {
  return "REPLAY: net_seed=" + std::to_string(net_seed) +
         " plan_seed=" + std::to_string(plan_seed) + " plan{" +
         plan.describe() + "}";
}

TEST(FaultFuzzTest, HealedPlansConvergeToOracleAcross200Combos) {
  std::uint32_t routed = 0;
  for (std::uint64_t net_seed = 0; net_seed < 50; ++net_seed) {
    Rng rng(net_seed * 2654435761ULL + 901);
    const WdmNetwork net = fuzz_network(rng);
    const auto s =
        NodeId{static_cast<std::uint32_t>(rng.next_below(net.num_nodes()))};
    auto t =
        NodeId{static_cast<std::uint32_t>(rng.next_below(net.num_nodes()))};
    if (s == t) t = NodeId{(t.value() + 1) % net.num_nodes()};

    const auto oracle = state_dijkstra_route(net, s, t);
    if (oracle.found) ++routed;

    for (std::uint64_t plan_seed = 0; plan_seed < 4; ++plan_seed) {
      const std::uint64_t mixed = net_seed * 1000 + plan_seed;

      // Synchronous hardened protocol.
      FaultPlan sync_plan =
          FaultPlan::random_plan(mixed, net.topology(), kHealAt);
      const auto sync =
          distributed_route_semilightpath(net, s, t, sync_plan);
      ASSERT_TRUE(sync.converged)
          << replay(net_seed, mixed, sync_plan) << " (sync)";
      ASSERT_EQ(sync.found, oracle.found)
          << replay(net_seed, mixed, sync_plan) << " (sync)";
      if (oracle.found) {
        ASSERT_NEAR(sync.cost, oracle.cost, 1e-9)
            << replay(net_seed, mixed, sync_plan) << " (sync)";
        ASSERT_TRUE(sync.path.is_valid(net))
            << replay(net_seed, mixed, sync_plan) << " (sync)";
      }

      // Asynchronous hardened protocol, fresh replay of the same plan.
      FaultPlan async_plan =
          FaultPlan::random_plan(mixed, net.topology(), kHealAt);
      AsyncOptions options;
      options.faults = &async_plan;
      const auto async =
          async_route_semilightpath(net, s, t, /*seed=*/mixed, options);
      ASSERT_TRUE(async.converged)
          << replay(net_seed, mixed, async_plan) << " (async)";
      ASSERT_EQ(async.found, oracle.found)
          << replay(net_seed, mixed, async_plan) << " (async)";
      if (oracle.found) {
        ASSERT_NEAR(async.cost, oracle.cost, 1e-9)
            << replay(net_seed, mixed, async_plan) << " (async)";
        ASSERT_TRUE(async.path.is_valid(net))
            << replay(net_seed, mixed, async_plan) << " (async)";
      }
    }
  }
  // The generator must not be degenerate-only: a healthy fraction of the
  // instances are actually routable.
  EXPECT_GE(routed, 15u);
}

TEST(FaultFuzzTest, ReplayIsBitForBitReproducible) {
  // The contract behind the REPLAY line: rebuilding the network from
  // net_seed and the plan from plan_seed reruns the identical execution.
  const std::uint64_t net_seed = 7;
  const std::uint64_t plan_seed = 7013;
  const auto run = [&]() {
    Rng rng(net_seed * 2654435761ULL + 901);
    const WdmNetwork net = fuzz_network(rng);
    const auto s =
        NodeId{static_cast<std::uint32_t>(rng.next_below(net.num_nodes()))};
    auto t =
        NodeId{static_cast<std::uint32_t>(rng.next_below(net.num_nodes()))};
    if (s == t) t = NodeId{(t.value() + 1) % net.num_nodes()};
    FaultPlan plan = FaultPlan::random_plan(plan_seed, net.topology(), kHealAt);
    return distributed_route_semilightpath(net, s, t, plan);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.retransmit_sweeps, b.retransmit_sweeps);
}

}  // namespace
}  // namespace lumen
