// Compiles the obs headers with LUMEN_OBS_DISABLED and checks the whole
// instrumentation surface degrades to inert no-ops.  The inline disabled
// stubs live in their own inline namespace, so this TU links cleanly into
// a binary whose other TUs use the enabled implementation.
#define LUMEN_OBS_DISABLED

#include <gtest/gtest.h>

#include <sstream>

#include "obs/export.h"
#include "obs/obs.h"
#include "obs/registry.h"
#include "obs/trace.h"

static_assert(LUMEN_OBS_ENABLED == 0,
              "LUMEN_OBS_DISABLED must switch the gate off");

namespace lumen::obs {
namespace {

TEST(DisabledObsTest, CounterIsInert) {
  Counter c;
  c.add();
  c.add(1000);
  EXPECT_EQ(c.value(), 0u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(DisabledObsTest, HistogramIsInert) {
  LatencyHistogram h;
  h.record(123);
  h.record_seconds(4.5);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
  EXPECT_EQ(h.summary().count, 0u);
  EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST(DisabledObsTest, RegistryHandsOutDummiesAndStaysEmpty) {
  Registry& registry = Registry::global();
  registry.counter("lumen.disabled.a").add(7);
  registry.histogram("lumen.disabled.b").record(7);
  EXPECT_TRUE(registry.counter_entries().empty());
  EXPECT_TRUE(registry.histogram_entries().empty());
  EXPECT_EQ(registry.counter("lumen.disabled.a").value(), 0u);
}

TEST(DisabledObsTest, SpansAndCollectorAreInert) {
  TraceCollector& collector = TraceCollector::global();
  {
    TraceSpan outer("outer", &collector);
    TraceSpan inner("inner", &collector);
    EXPECT_EQ(inner.depth(), 0u);
    EXPECT_DOUBLE_EQ(inner.elapsed_seconds(), 0.0);
    inner.close();
  }
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_EQ(collector.total_emitted(), 0u);
  EXPECT_TRUE(collector.snapshot().empty());
}

TEST(DisabledObsTest, PrometheusExportIsEmpty) {
  EXPECT_EQ(prometheus_text(Registry::global()), "");
}

TEST(DisabledObsTest, RouteEventLogStillWorks) {
  // The structured event log is passive data, not ambient instrumentation:
  // it stays functional even when the obs gate is off.
  RouteEventLog log;
  RouteEvent e;
  e.sequence = 1;
  e.outcome = "carried";
  log.append(e);
  EXPECT_EQ(log.size(), 1u);
  std::stringstream stream;
  write_route_events_jsonl(stream, log.snapshot());
  EXPECT_EQ(read_route_events_jsonl(stream).size(), 1u);
}

}  // namespace
}  // namespace lumen::obs
