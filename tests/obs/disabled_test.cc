// Compiles the obs headers with LUMEN_OBS_DISABLED and checks the whole
// instrumentation surface degrades to inert no-ops.  The inline disabled
// stubs live in their own inline namespace, so this TU links cleanly into
// a binary whose other TUs use the enabled implementation.
#define LUMEN_OBS_DISABLED

#include <gtest/gtest.h>

#include <sstream>

#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_server.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/slo.h"
#include "obs/span_buffer.h"
#include "obs/tagset.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

static_assert(LUMEN_OBS_ENABLED == 0,
              "LUMEN_OBS_DISABLED must switch the gate off");

namespace lumen::obs {
namespace {

TEST(DisabledObsTest, CounterIsInert) {
  Counter c;
  c.add();
  c.add(1000);
  EXPECT_EQ(c.value(), 0u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(DisabledObsTest, HistogramIsInert) {
  LatencyHistogram h;
  h.record(123);
  h.record_seconds(4.5);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
  EXPECT_EQ(h.summary().count, 0u);
  EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST(DisabledObsTest, RegistryHandsOutDummiesAndStaysEmpty) {
  Registry& registry = Registry::global();
  registry.counter("lumen.disabled.a").add(7);
  registry.histogram("lumen.disabled.b").record(7);
  EXPECT_TRUE(registry.counter_entries().empty());
  EXPECT_TRUE(registry.histogram_entries().empty());
  EXPECT_EQ(registry.counter("lumen.disabled.a").value(), 0u);
}

TEST(DisabledObsTest, SpansAndCollectorAreInert) {
  TraceCollector& collector = TraceCollector::global();
  {
    TraceSpan outer("outer", &collector);
    TraceSpan inner("inner", &collector);
    EXPECT_EQ(inner.depth(), 0u);
    EXPECT_DOUBLE_EQ(inner.elapsed_seconds(), 0.0);
    inner.close();
  }
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_EQ(collector.total_emitted(), 0u);
  EXPECT_TRUE(collector.snapshot().empty());
}

TEST(DisabledObsTest, PrometheusExportIsEmpty) {
  EXPECT_EQ(prometheus_text(Registry::global()), "");
}

TEST(DisabledObsTest, CausalSpansAndContextAreInert) {
  EXPECT_FALSE(current_trace_context().valid());
  CausalSpan ambient("outer");
  EXPECT_EQ(ambient.trace_id(), 0u);
  EXPECT_EQ(ambient.span_id(), 0u);
  EXPECT_FALSE(ambient.context().valid());
  ambient.set_node(3);
  ambient.set_virtual_interval(1.0, 2.0);
  ambient.set_attributes(4, 5);
  ambient.close();

  TraceContext parent;
  parent.trace_id = 99;
  parent.parent_span_id = 7;
  CausalSpan child("inner", parent);
  EXPECT_EQ(child.trace_id(), 0u);
  ScopedTraceContext adopt(parent);
  EXPECT_FALSE(current_trace_context().valid());
}

TEST(DisabledObsTest, SpanBufferStoresNothing) {
  SpanBuffer& buffer = SpanBuffer::global();
  buffer.emit(CausalSpanRecord{});
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.capacity(), 0u);
  EXPECT_EQ(buffer.total_emitted(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
  EXPECT_TRUE(buffer.snapshot().empty());
  buffer.clear();
}

TEST(DisabledObsTest, FlightRecorderRecordsAndDumpsNothing) {
  FlightRecorder& recorder = FlightRecorder::global();
  RouteEvent e;
  e.sequence = 1;
  recorder.record_event(e);
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_EQ(recorder.event_capacity(), 0u);
  EXPECT_EQ(recorder.events_dropped(), 0u);
  EXPECT_EQ(recorder.dump_string(), "");
  EXPECT_FALSE(recorder.dump("/nonexistent/dir/file.jsonl"));
  EXPECT_EQ(recorder.trigger_dump(".", "tag"), "");
}

TEST(DisabledObsTest, WatchdogNeverBreachesAndPumpTicksEmpty) {
  SloWatchdog dog;
  dog.add_rule(SloRule::counter_value("r", "m", 0.0));
  EXPECT_EQ(dog.num_rules(), 1u);
  EXPECT_TRUE(dog.evaluate().empty());
  EXPECT_FALSE(dog.breaching("r"));

  MetricsPump pump;
  const PumpSnapshot snapshot = pump.tick();
  EXPECT_EQ(snapshot.tick, 1u);
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.alerts.empty());
  pump.start();
  EXPECT_FALSE(pump.running());
  pump.stop();
  EXPECT_EQ(pump.ticks(), 1u);
  EXPECT_NE(pump_snapshot_to_json(snapshot).find("\"tick\":1"),
            std::string::npos);
}

TEST(DisabledObsTest, MetricsServerNeverBinds) {
  EXPECT_EQ(serve_metrics(0), nullptr);
  MetricsServer server(0);
  EXPECT_FALSE(server.ok());
  EXPECT_EQ(server.port(), 0);
  server.stop();
}

TEST(DisabledObsTest, LabeledFamiliesHandOutOneInertDummy) {
  Registry& registry = Registry::global();
  auto& family = registry.labeled_counter("lumen.disabled.labeled");
  family.at(TagSet{}.tenant(3)).add(7);
  family.at(TagSet{}.tenant(4)).add(9);
  EXPECT_EQ(family.at(TagSet{}.tenant(3)).value(), 0u);
  EXPECT_EQ(family.size(), 0u);
  EXPECT_EQ(family.dropped(), 0u);
  EXPECT_TRUE(family.entries().empty());
  EXPECT_TRUE(registry.labeled_counter_entries().empty());
  EXPECT_TRUE(registry.labeled_gauge_entries().empty());
  EXPECT_TRUE(registry.labeled_histogram_entries().empty());
  // TagSet arithmetic itself still works: numeric ids never touch the
  // interner, so labels stay meaningful for the passive codecs.  (The
  // interned dimensions are exercised by tagset_test in both builds —
  // the interner is out-of-line, so this TU's stubs don't replace it.)
  EXPECT_EQ(TagSet{}.tenant(3).shard(1).canonical(), "tenant=3,shard=1");
}

TEST(DisabledObsTest, ProfilerIsInert) {
  Profiler& profiler = Profiler::global();
  profiler.on_span_open("stage");
  profiler.on_span_close(100);
  EXPECT_EQ(profiler.total_samples(), 0u);
  EXPECT_EQ(profiler.dropped(), 0u);
  EXPECT_EQ(profiler.capacity(), 0u);
  EXPECT_TRUE(profiler.snapshot().entries.empty());
  // The passive renderings stay functional for collectors.
  ProfileSnapshot snap;
  snap.entries = {{"a;b", 1, 2, 3}};
  EXPECT_EQ(snap.folded(), "a;b 2\n");
  EXPECT_NE(profile_entry_to_json(snap.entries[0]).find("\"total_ns\":3"),
            std::string::npos);
}

TEST(DisabledObsTest, RouteEventLogStillWorks) {
  // The structured event log is passive data, not ambient instrumentation:
  // it stays functional even when the obs gate is off.
  RouteEventLog log;
  RouteEvent e;
  e.sequence = 1;
  e.outcome = "carried";
  log.append(e);
  EXPECT_EQ(log.size(), 1u);
  std::stringstream stream;
  write_route_events_jsonl(stream, log.snapshot());
  EXPECT_EQ(read_route_events_jsonl(stream).size(), 1u);
}

}  // namespace
}  // namespace lumen::obs
