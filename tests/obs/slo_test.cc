// SLO watchdog rule semantics, the MetricsPump snapshot/sink/dump cycle,
// and the Prometheus pull endpoint.  The load-bearing case: a breach must
// deterministically trigger a flight-recorder dump that contains the
// breaching request's full event chain (events + spans, one trace id).
#include "obs/slo.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/metrics_server.h"
#include "obs/registry.h"
#include "obs/span_buffer.h"
#include "rwa/session_manager.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using obs::AlertEvent;
using obs::FlightRecorder;
using obs::MetricsPump;
using obs::PumpOptions;
using obs::Registry;
using obs::SloRule;
using obs::SloWatchdog;

TEST(SloWatchdogTest, WindowedCounterRuleIsEdgeTriggered) {
  Registry registry;
  auto& errors = registry.counter("errors");
  SloWatchdog dog;
  dog.add_rule(SloRule::counter_value("err-burst", "errors", 2.0));
  EXPECT_EQ(dog.num_rules(), 1u);

  errors.add(100);
  // First window only primes the baseline — no alert even though the
  // lifetime value is huge.
  EXPECT_TRUE(dog.evaluate(registry).empty());
  errors.add(5);
  auto alerts = dog.evaluate(registry);  // delta 5 > 2: breach
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "err-burst");
  EXPECT_FALSE(alerts[0].resolved);
  EXPECT_DOUBLE_EQ(alerts[0].value, 5.0);
  EXPECT_TRUE(dog.breaching("err-burst"));

  errors.add(5);
  EXPECT_TRUE(dog.evaluate(registry).empty());  // still breaching: no edge
  alerts = dog.evaluate(registry);              // delta 0 <= 2: resolves
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].resolved);
  EXPECT_FALSE(dog.breaching("err-burst"));
}

TEST(SloWatchdogTest, RatioRuleUsesWindowDeltas) {
  Registry registry;
  auto& blocked = registry.counter("blocked");
  auto& offered = registry.counter("offered");
  SloWatchdog dog;
  dog.add_rule(SloRule::ratio("blocking", "blocked", "offered", 0.5));

  offered.add(10);
  EXPECT_TRUE(dog.evaluate(registry).empty());  // priming window
  blocked.add(4);
  offered.add(5);
  auto alerts = dog.evaluate(registry);  // 4/5 > 0.5: breach
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_DOUBLE_EQ(alerts[0].value, 0.8);
  // No offers at all in the next window: no evidence, stays breaching.
  EXPECT_TRUE(dog.evaluate(registry).empty());
  EXPECT_TRUE(dog.breaching("blocking"));
  offered.add(10);
  alerts = dog.evaluate(registry);  // 0/10: resolves
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].resolved);
}

TEST(SloWatchdogTest, PercentileRuleReadsHistogram) {
  Registry registry;
  auto& latency = registry.histogram("lat");
  SloWatchdog dog;
  dog.add_rule(SloRule::percentile("lat-p99", "lat", 0.99, 1000.0));

  EXPECT_TRUE(dog.evaluate(registry).empty());  // empty histogram: no evidence
  for (int i = 0; i < 100; ++i) latency.record(10);
  EXPECT_TRUE(dog.evaluate(registry).empty());  // p99 ~10: fine
  for (int i = 0; i < 100; ++i) latency.record(1 << 20);
  const auto alerts = dog.evaluate(registry);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_GT(alerts[0].value, 1000.0);
  EXPECT_EQ(alerts[0].metric, "lat");
}

TEST(MetricsPumpTest, TickSnapshotsCountersAndDeltas) {
  Registry registry;
  auto& c = registry.counter("pump.c");
  c.add(3);
  MetricsPump pump(registry);
  auto snap = pump.tick();
  EXPECT_EQ(snap.tick, 1u);
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "pump.c");
  EXPECT_EQ(snap.counters[0].second, 3u);
  EXPECT_EQ(snap.counter_deltas[0].second, 3u);  // first tick: delta = value
  c.add(2);
  snap = pump.tick();
  EXPECT_EQ(snap.tick, 2u);
  EXPECT_EQ(snap.counters[0].second, 5u);
  EXPECT_EQ(snap.counter_deltas[0].second, 2u);
  EXPECT_GE(snap.uptime_seconds, 0.0);
  EXPECT_EQ(pump.ticks(), 2u);
}

TEST(MetricsPumpTest, SinkAppendsSnapshotLines) {
  Registry registry;
  registry.counter("sink.c").add(7);
  const std::string path = ::testing::TempDir() + "pump_sink_test.jsonl";
  std::remove(path.c_str());
  PumpOptions options;
  options.snapshot_path = path;
  MetricsPump pump(registry, options);
  (void)pump.tick();
  (void)pump.tick();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"tick\":1"), std::string::npos);
  EXPECT_NE(line.find("\"c:sink.c\":7"), std::string::npos);
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"tick\":2"), std::string::npos);
  in.close();
  std::remove(path.c_str());
}

TEST(MetricsPumpTest, BackgroundThreadTicksAndStops) {
  Registry registry;
  PumpOptions options;
  options.interval_seconds = 0.005;
  MetricsPump pump(registry, options);
  EXPECT_FALSE(pump.running());
  pump.start();
  EXPECT_TRUE(pump.running());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (pump.ticks() == 0 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(pump.ticks(), 1u);
  pump.stop();
  EXPECT_FALSE(pump.running());
  pump.stop();  // idempotent
}

TEST(MetricsPumpTest, BreachTriggersDumpWithBreachingEventChain) {
  FlightRecorder::global().clear();
  obs::SpanBuffer::global().clear();

  SessionManager manager(testing::paper_example_network(),
                         RoutingPolicy::kSemilightpath);

  SloWatchdog dog;
  dog.add_rule(
      SloRule::ratio("blocking", "lumen.rwa.blocked", "lumen.rwa.offered",
                     0.5));
  PumpOptions options;
  options.watchdog = &dog;
  options.recorder = &FlightRecorder::global();
  options.dump_dir = ::testing::TempDir();
  MetricsPump pump(Registry::global(), options);
  (void)pump.tick();  // prime the windowed rule

  // Paper node 7 (index 6) has no out-links: this request always blocks.
  EXPECT_FALSE(manager.open(NodeId{6}, NodeId{0}).has_value());
  const auto events = FlightRecorder::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].outcome, "blocked");
  const std::uint64_t trace = events[0].trace_id;
  ASSERT_NE(trace, 0u);

  const auto snap = pump.tick();  // window: 1 blocked / 1 offered = 1.0
  ASSERT_EQ(snap.alerts.size(), 1u);
  const AlertEvent& alert = snap.alerts[0];
  EXPECT_EQ(alert.rule, "blocking");
  EXPECT_FALSE(alert.resolved);
  EXPECT_EQ(alert.tick, snap.tick);
  ASSERT_FALSE(alert.dump_path.empty());

  // The dump holds the breaching request end-to-end: its blocked event
  // and its rwa.open span, tied by one trace id.
  std::ifstream in(alert.dump_path);
  ASSERT_TRUE(in.good());
  std::stringstream dump;
  dump << in.rdbuf();
  in.close();
  const std::string text = dump.str();
  const std::string trace_key = "\"trace_id\":" + std::to_string(trace);
  EXPECT_NE(text.find("\"outcome\":\"blocked\""), std::string::npos);
  EXPECT_NE(text.find(trace_key), std::string::npos);
  std::istringstream lines(text);
  bool open_span_in_trace = false;
  for (std::string line; std::getline(lines, line);) {
    if (line.find("\"type\":\"span\"") != std::string::npos &&
        line.find("\"rwa.open\"") != std::string::npos &&
        line.find(trace_key) != std::string::npos)
      open_span_in_trace = true;
  }
  EXPECT_TRUE(open_span_in_trace);
  std::remove(alert.dump_path.c_str());
}

TEST(MetricsServerTest, ServesPrometheusTextOverHttp) {
  Registry registry;
  registry.counter("lumen.demo.requests").add(12);
  registry.histogram("lumen.demo.latency").record(100);
  auto server = obs::serve_metrics(0, registry);
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->ok());
  ASSERT_NE(server->port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server->port());
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_GT(::send(fd, request, sizeof request - 1, 0), 0);
  std::string response;
  char buf[4096];
  for (ssize_t n = 0; (n = ::recv(fd, buf, sizeof buf, 0)) > 0;)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);

  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("lumen_demo_requests 12"), std::string::npos);
  EXPECT_NE(response.find("# TYPE lumen_demo_latency histogram"),
            std::string::npos);
  server->stop();
  EXPECT_FALSE(server->ok());  // the listener is gone after stop()
  server->stop();              // idempotent
}

TEST(MetricsServerTest, AlertJsonRoundTripsKeys) {
  AlertEvent alert;
  alert.rule = "blocking";
  alert.metric = "lumen.rwa.blocked";
  alert.value = 0.75;
  alert.threshold = 0.5;
  alert.tick = 9;
  alert.dump_path = "/tmp/x.jsonl";
  const std::string json = obs::alert_to_json(alert);
  EXPECT_NE(json.find("\"alert\":\"blocking\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"resolved\":false"), std::string::npos);
  EXPECT_NE(json.find("\"tick\":9"), std::string::npos);
}

}  // namespace
}  // namespace lumen
