// Wire-format primitives: big-endian serialization (util/byteorder.h)
// and the frame/set layout the encoder emits (obs/wire).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/wire/wire_encoder.h"
#include "obs/wire/wire_format.h"
#include "obs/wire/wire_transport.h"
#include "util/byteorder.h"

namespace lumen::obs::wire {
namespace {

TEST(ByteOrderTest, ScalarRoundTrip) {
  std::vector<std::byte> buffer;
  ByteWriter writer(buffer);
  writer.u8(0xAB);
  writer.u16(0xBEEF);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFULL);
  writer.f64(-1.0 / 3.0);
  writer.str("hello");
  writer.str("");

  ByteReader reader(buffer);
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0xBEEF);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.f64(), -1.0 / 3.0);
  EXPECT_EQ(reader.str(), "hello");
  EXPECT_EQ(reader.str(), "");
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(ByteOrderTest, IntegersAreBigEndian) {
  std::vector<std::byte> buffer;
  ByteWriter writer(buffer);
  writer.u32(0x01020304);
  ASSERT_EQ(buffer.size(), 4u);
  EXPECT_EQ(std::to_integer<int>(buffer[0]), 0x01);
  EXPECT_EQ(std::to_integer<int>(buffer[3]), 0x04);
}

TEST(ByteOrderTest, PatchOverwritesInPlace) {
  std::vector<std::byte> buffer;
  ByteWriter writer(buffer);
  writer.u16(0);
  writer.u8(9);
  writer.patch_u16(0, 0x1234);
  ByteReader reader(buffer);
  EXPECT_EQ(reader.u16(), 0x1234);
}

TEST(ByteOrderTest, TruncatedReadStickyFails) {
  std::vector<std::byte> buffer;
  ByteWriter writer(buffer);
  writer.u16(7);
  ByteReader reader(buffer);
  (void)reader.u32();  // 4 bytes wanted, 2 available
  EXPECT_FALSE(reader.ok());
  // Sticky: everything after the failure is 0/empty, never out of bounds.
  EXPECT_EQ(reader.u64(), 0u);
  EXPECT_EQ(reader.str(), "");
}

TEST(ByteOrderTest, StringPrefixBeyondBufferFails) {
  std::vector<std::byte> buffer;
  ByteWriter writer(buffer);
  writer.u16(1000);  // claims 1000 bytes; none follow
  ByteReader reader(buffer);
  EXPECT_EQ(reader.str(), "");
  EXPECT_FALSE(reader.ok());
}

TEST(ByteOrderTest, OverlongStringTruncatesAt16Bits) {
  std::vector<std::byte> buffer;
  ByteWriter writer(buffer);
  writer.str(std::string(70000, 'x'));
  ByteReader reader(buffer);
  EXPECT_EQ(reader.str().size(), 0xFFFFu);
  EXPECT_TRUE(reader.ok());
}

TEST(WireFormatTest, FrameHeaderLayout) {
  LoopbackTransport transport;
  WireExporterOptions options;
  options.domain = 42;
  WireExporter exporter(transport, options);
  PumpSnapshot snapshot;
  snapshot.tick = 3;
  exporter.export_snapshot(snapshot);

  ASSERT_EQ(transport.frames().size(), 1u);
  const auto& frame = transport.frames()[0];
  ByteReader reader(frame);
  EXPECT_EQ(reader.u16(), kWireVersion);
  EXPECT_EQ(reader.u16(), frame.size());  // length covers the whole frame
  EXPECT_EQ(reader.u32(), 0u);            // first frame: sequence 0
  EXPECT_EQ(reader.u32(), 3u);            // export tick
  EXPECT_EQ(reader.u32(), 42u);           // domain
  // The first set of the first frame is the template announcement.
  EXPECT_EQ(reader.u16(), kTemplateSetId);
}

TEST(WireFormatTest, SequenceIncrementsPerFrame) {
  LoopbackTransport transport;
  WireExporter exporter(transport);
  PumpSnapshot snapshot;
  exporter.export_snapshot(snapshot);
  exporter.export_snapshot(snapshot);
  ASSERT_EQ(transport.frames().size(), 2u);
  ByteReader second(transport.frames()[1]);
  second.skip(4);
  EXPECT_EQ(second.u32(), 1u);
  EXPECT_EQ(exporter.next_sequence(), 2u);
  EXPECT_EQ(exporter.stats().frames_sent, 2u);
}

TEST(WireFormatTest, TemplatesAnnouncedOnceWhenIntervalZero) {
  LoopbackTransport transport;
  WireExporterOptions options;
  options.template_interval = 0;
  WireExporter exporter(transport, options);
  PumpSnapshot snapshot;
  for (int i = 0; i < 4; ++i) exporter.export_snapshot(snapshot);
  EXPECT_EQ(exporter.stats().template_sets, 1u);
}

TEST(WireFormatTest, OversizedRecordIsDroppedNotSent) {
  LoopbackTransport transport;
  WireExporter exporter(transport);
  // A ~60KB policy string blows past the frame ceiling; the record can
  // never be framed, so it must be counted and dropped.
  RouteEvent event;
  event.policy = std::string(60001, 'p');
  exporter.export_route_events(std::span<const RouteEvent>(&event, 1));
  EXPECT_EQ(exporter.stats().records_dropped, 1u);
}

}  // namespace
}  // namespace lumen::obs::wire
