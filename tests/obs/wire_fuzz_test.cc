// Frame-fuzz sweep for the wire decoder: seeded mutations of valid
// frames plus pure random blobs.  The decoder must never crash or read
// out of bounds (the asan preset runs this suite), and the accounting
// invariant frames_received == frames_accepted + frames_rejected must
// hold after every single frame.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/slo.h"
#include "obs/wire/wire_decoder.h"
#include "obs/wire/wire_encoder.h"
#include "obs/wire/wire_transport.h"
#include "util/rng.h"

namespace lumen::obs::wire {
namespace {

/// The invariant every decode_frame call must preserve, malformed or not.
void expect_accounted(const WireDecoder& decoder) {
  const WireDecoderStats& s = decoder.stats();
  ASSERT_EQ(s.frames_received, s.frames_accepted + s.frames_rejected);
}

PumpSnapshot seed_snapshot(std::uint64_t tick) {
  PumpSnapshot snapshot;
  snapshot.tick = tick;
  snapshot.uptime_seconds = static_cast<double>(tick);
  snapshot.counters = {{"lumen.rwa.blocked", tick}, {"lumen.rwa.offered", 9}};
  snapshot.counter_deltas = snapshot.counters;
  snapshot.gauges = {{"lumen.rwa.util.busy_ratio", 0.25}};
  HistogramSummary summary;
  summary.count = tick;
  summary.mean = 3.5;
  snapshot.histograms = {{"lumen.rwa.open_latency_ns", summary}};
  AlertEvent alert;
  alert.rule = "blocking";
  alert.metric = "lumen.rwa.blocked";
  snapshot.alerts = {alert};
  // Labeled series + profile put templates 262/263/264 in the corpus so
  // the mutation sweep exercises their decode paths too.
  snapshot.labeled_counters = {{"lumen.svc.admitted", "tenant=3", tick, 1}};
  snapshot.labeled_gauges = {{"lumen.svc.tenant_share", "tenant=3", 0.5}};
  snapshot.labeled_histograms = {
      {"lumen.svc.admit_latency_ns", "tenant=3", summary, 0xbeef}};
  snapshot.profile = {{"svc.admit;svc.route", 8, 100, 200}};
  return snapshot;
}

/// A corpus of genuine frames to mutate (templates + every record kind).
std::vector<std::vector<std::byte>> corpus() {
  LoopbackTransport transport;
  transport.set_max_frame_bytes(400);  // multi-frame snapshots too
  WireExporter exporter(transport);
  exporter.export_snapshot(seed_snapshot(1));
  exporter.export_snapshot(seed_snapshot(2));
  RouteEvent event;
  event.policy = "goal_directed_engine";
  event.outcome = "carried";
  exporter.export_route_events(std::span<const RouteEvent>(&event, 1));
  return transport.frames();
}

TEST(WireFuzzTest, SingleByteMutationsNeverCrash) {
  const auto frames = corpus();
  ASSERT_FALSE(frames.empty());
  lumen::Rng rng(0xC0FFEEULL);
  for (const auto& frame : frames) {
    // Every byte position gets flipped at least once across the sweep.
    for (std::size_t pos = 0; pos < frame.size(); ++pos) {
      std::vector<std::byte> mutated = frame;
      mutated[pos] ^= static_cast<std::byte>(1 + rng.next_below(255));
      WireDecoder decoder;
      (void)decoder.decode_frame(mutated);
      expect_accounted(decoder);
    }
  }
}

TEST(WireFuzzTest, MultiByteMutationStreamsNeverCrash) {
  const auto frames = corpus();
  lumen::Rng rng(0xDEADBEEFULL);
  // One long-lived decoder: mutated frames interleave with genuine ones,
  // so corrupted state (bogus templates, half-open snapshots) must not
  // poison later decodes either.
  WireDecoder decoder;
  for (int round = 0; round < 200; ++round) {
    std::vector<std::byte> mutated =
        frames[rng.next_below(frames.size())];
    const std::size_t flips = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < flips; ++i)
      mutated[rng.next_below(mutated.size())] =
          static_cast<std::byte>(rng.next_below(256));
    // Also exercise truncation, the classic UDP failure.
    if (rng.next_below(4) == 0) mutated.resize(rng.next_below(mutated.size()));
    (void)decoder.decode_frame(mutated);
    expect_accounted(decoder);
    if (rng.next_below(4) == 0) {
      (void)decoder.decode_frame(frames[rng.next_below(frames.size())]);
      expect_accounted(decoder);
    }
  }
  decoder.flush();
  (void)decoder.take_snapshots();
  (void)decoder.take_route_events();
}

TEST(WireFuzzTest, RandomBlobsAreAllRejectedOrAccountedNeverFatal) {
  lumen::Rng rng(42);
  WireDecoder decoder;
  for (int round = 0; round < 500; ++round) {
    std::vector<std::byte> blob(rng.next_below(600));
    for (auto& b : blob) b = static_cast<std::byte>(rng.next_below(256));
    (void)decoder.decode_frame(blob);
    expect_accounted(decoder);
  }
  // Random bytes essentially never form a valid version-1 header; at the
  // very least, nothing here may count as silently dropped.
  expect_accounted(decoder);
}

TEST(WireFuzzTest, EmptyAndTinyFramesAreRejected) {
  WireDecoder decoder;
  EXPECT_FALSE(decoder.decode_frame({}));
  std::vector<std::byte> tiny(kHeaderBytes - 1);
  EXPECT_FALSE(decoder.decode_frame(tiny));
  expect_accounted(decoder);
  EXPECT_EQ(decoder.stats().frames_rejected, 2u);
}

TEST(WireFuzzTest, ParkedSetCapEvictsOldestAndCounts) {
  // Data sets for an unannounced template park up to max_buffered_sets;
  // beyond that the oldest is evicted and counted, bounding memory.
  LoopbackTransport transport;
  WireExporterOptions options;
  options.template_interval = 0;
  WireExporter exporter(transport, options);
  for (std::uint64_t tick = 1; tick <= 40; ++tick)
    exporter.export_snapshot(seed_snapshot(tick));

  WireDecoderOptions decoder_options;
  decoder_options.max_buffered_sets = 4;
  WireDecoder decoder(decoder_options);
  // Skip frame 0 (the only template announcement): everything parks.
  for (std::size_t i = 1; i < transport.frames().size(); ++i)
    EXPECT_TRUE(decoder.decode_frame(transport.frames()[i]));
  expect_accounted(decoder);
  EXPECT_GT(decoder.stats().buffered_dropped, 0u);
  EXPECT_EQ(decoder.stats().buffered_sets -
                decoder.stats().buffered_dropped,
            decoder_options.max_buffered_sets);
}

}  // namespace
}  // namespace lumen::obs::wire
