// Flight recorder: ring wraparound and drop accounting, dump format, and
// the SessionManager wiring that gives every open/block/reroute/drop a
// trace id matching its causal spans end-to-end.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/liang_shen.h"
#include "obs/registry.h"
#include "obs/span_buffer.h"
#include "obs/trace_assembler.h"
#include "obs/trace_context.h"
#include "rwa/session_manager.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using obs::FlightRecorder;
using obs::RouteEvent;
using obs::SpanBuffer;

RouteEvent event_with_sequence(std::uint64_t sequence) {
  RouteEvent e;
  e.sequence = sequence;
  e.policy = "semilightpath";
  e.outcome = "carried";
  return e;
}

TEST(FlightRecorderTest, RingKeepsNewestOldestFirstAndCountsDrops) {
  SpanBuffer spans(8);
  FlightRecorder recorder(4, &spans);
  EXPECT_EQ(recorder.event_capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i)
    recorder.record_event(event_with_sequence(i));
  EXPECT_EQ(recorder.events_dropped(), 6u);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(events[i].sequence, 6u + i);  // oldest-first: 6, 7, 8, 9
}

TEST(FlightRecorderTest, WraparoundBumpsRegistryDropCounter) {
  auto& counter = obs::Registry::global().counter("lumen.obs.events_dropped");
  const std::uint64_t before = counter.value();
  SpanBuffer spans(8);
  FlightRecorder recorder(2, &spans);
  for (std::uint64_t i = 0; i < 5; ++i)
    recorder.record_event(event_with_sequence(i));
  EXPECT_EQ(counter.value(), before + 3);
}

TEST(FlightRecorderTest, RouteEventLogOverflowCountsDrops) {
  auto& counter = obs::Registry::global().counter("lumen.obs.events_dropped");
  const std::uint64_t before = counter.value();
  obs::RouteEventLog log(3);
  for (std::uint64_t i = 0; i < 8; ++i) log.append(event_with_sequence(i));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 5u);
  EXPECT_EQ(counter.value(), before + 5);
  const auto kept = log.snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].sequence, 5u);
}

TEST(FlightRecorderTest, DumpStringHoldsSpansThenEvents) {
  SpanBuffer spans(8);
  FlightRecorder recorder(8, &spans);
  {
    obs::CausalSpan span("flight.demo", &spans);
    span.set_node(2);
  }
  recorder.record_event(event_with_sequence(41));
  const std::string dump = recorder.dump_string();
  std::istringstream in(dump);
  std::string first;
  std::string second;
  ASSERT_TRUE(std::getline(in, first));
  ASSERT_TRUE(std::getline(in, second));
  EXPECT_EQ(first.find("{\"type\":\"span\","), 0u);
  EXPECT_NE(first.find("\"flight.demo\""), std::string::npos);
  EXPECT_EQ(second.find("{\"type\":\"route_event\","), 0u);
  EXPECT_NE(second.find("\"sequence\":41"), std::string::npos);
}

TEST(FlightRecorderTest, TriggerDumpSanitizesTagAndWritesFile) {
  SpanBuffer spans(8);
  FlightRecorder recorder(8, &spans);
  recorder.record_event(event_with_sequence(7));
  const std::string path =
      recorder.trigger_dump(::testing::TempDir(), "slo p99/breach tick#3");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.find('#'), std::string::npos);
  EXPECT_NE(path.find("slo"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"route_event\""), std::string::npos);
  in.close();
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, SessionManagerMirrorsEventsWithMatchingTraces) {
  FlightRecorder::global().clear();
  SpanBuffer::global().clear();

  SessionManager manager(testing::paper_example_network(),
                         RoutingPolicy::kSemilightpath);
  // No RouteEventLog attached: the global recorder must capture anyway.
  const auto id = manager.open(NodeId{0}, NodeId{6});
  ASSERT_TRUE(id.has_value());

  const auto events = FlightRecorder::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].outcome, "carried");
  ASSERT_NE(events[0].trace_id, 0u);

  // The event's trace resolves to a span tree rooted at rwa.open with the
  // routing work nested under it — the end-to-end linkage.
  const auto spans = SpanBuffer::global().snapshot();
  const obs::TraceTree tree =
      obs::assemble_trace(spans, events[0].trace_id);
  ASSERT_EQ(tree.roots.size(), 1u);
  EXPECT_STREQ(tree.roots[0].span.name, "rwa.open");
  EXPECT_EQ(tree.roots[0].span.node, 0u);
  EXPECT_NE(obs::find_span(tree, "route.semilightpath"), nullptr);
}

TEST(FlightRecorderTest, FailSpanStormSharesOneTrace) {
  FlightRecorder::global().clear();
  SpanBuffer::global().clear();

  const WdmNetwork net = testing::paper_example_network();
  const RouteResult route = route_semilightpath(net, NodeId{0}, NodeId{6});
  ASSERT_TRUE(route.found);
  ASSERT_FALSE(route.path.hops().empty());
  const LinkId first_link = route.path.hops()[0].link;

  SessionManager manager(net, RoutingPolicy::kSemilightpath);
  ASSERT_TRUE(manager.open(NodeId{0}, NodeId{6}).has_value());
  FlightRecorder::global().clear();

  // Fail the span carrying the session's first hop; the reroute (or drop)
  // event must carry the fail_span trace, with rwa.reroute under its root.
  manager.fail_span(net.tail(first_link), net.head(first_link));
  const auto events = FlightRecorder::global().events();
  ASSERT_GE(events.size(), 1u);
  const std::uint64_t trace = events.back().trace_id;
  ASSERT_NE(trace, 0u);
  for (const RouteEvent& e : events) EXPECT_EQ(e.trace_id, trace);

  const obs::TraceTree tree =
      obs::assemble_trace(SpanBuffer::global().snapshot(), trace);
  ASSERT_EQ(tree.roots.size(), 1u);
  EXPECT_STREQ(tree.roots[0].span.name, "rwa.fail_span");
  EXPECT_NE(obs::find_span(tree, "rwa.reroute"), nullptr);
}

}  // namespace
}  // namespace lumen
