#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace lumen::obs {
namespace {

TEST(TraceSpanTest, EmitsOneRecordOnClose) {
  TraceCollector collector(16);
  {
    TraceSpan span("stage.a", &collector);
  }
  const auto records = collector.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].name, "stage.a");
  EXPECT_EQ(records[0].depth, 0u);
}

TEST(TraceSpanTest, CloseIsIdempotent) {
  TraceCollector collector(16);
  {
    TraceSpan span("stage.a", &collector);
    span.close();
    span.close();  // second close must not double-emit
  }                // destructor must not re-emit either
  EXPECT_EQ(collector.size(), 1u);
}

TEST(TraceSpanTest, NestedSpansCarryDepth) {
  TraceCollector collector(16);
  {
    TraceSpan outer("route.semilightpath", &collector);
    EXPECT_EQ(outer.depth(), 0u);
    {
      TraceSpan build("route.aux_build", &collector);
      EXPECT_EQ(build.depth(), 1u);
      TraceSpan inner("route.dijkstra", &collector);
      EXPECT_EQ(inner.depth(), 2u);
    }
    TraceSpan extract("route.path_extract", &collector);
    EXPECT_EQ(extract.depth(), 1u);
  }
  // Records land innermost-first (close order).
  const auto records = collector.snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(std::string(records[0].name), "route.dijkstra");
  EXPECT_EQ(records[0].depth, 2u);
  EXPECT_EQ(std::string(records[3].name), "route.semilightpath");
  EXPECT_EQ(records[3].depth, 0u);
  // The outer span encloses the inner in time.
  EXPECT_LE(records[3].start_ns, records[0].start_ns);
  EXPECT_GE(records[3].start_ns + records[3].duration_ns,
            records[0].start_ns + records[0].duration_ns);
}

TEST(TraceSpanTest, ElapsedGrowsAndSurvivesClose) {
  TraceSpan span("x", nullptr);  // null collector: timing only
  const double before = span.elapsed_seconds();
  span.close();
  EXPECT_GE(span.elapsed_seconds(), before);
}

TEST(TraceCollectorTest, RingBufferKeepsNewestAndCountsDrops) {
  TraceCollector collector(4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span(i % 2 == 0 ? "even" : "odd", &collector);
  }
  EXPECT_EQ(collector.size(), 4u);
  EXPECT_EQ(collector.total_emitted(), 10u);
  EXPECT_EQ(collector.dropped(), 6u);
  // Snapshot is oldest-first: spans 6, 7, 8, 9.
  const auto records = collector.snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_STREQ(records[0].name, "even");  // span 6
  EXPECT_STREQ(records[1].name, "odd");   // span 7
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_GE(records[i].start_ns, records[i - 1].start_ns);
}

TEST(TraceCollectorTest, ClearResets) {
  TraceCollector collector(4);
  { TraceSpan span("x", &collector); }
  collector.clear();
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_EQ(collector.total_emitted(), 0u);
  EXPECT_EQ(collector.dropped(), 0u);
}

TEST(TraceCollectorTest, GlobalIsASingleton) {
  EXPECT_EQ(&TraceCollector::global(), &TraceCollector::global());
}

}  // namespace
}  // namespace lumen::obs
