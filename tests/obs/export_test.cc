#include "obs/export.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"

namespace lumen::obs {
namespace {

RouteEvent sample_event(std::uint64_t sequence) {
  RouteEvent e;
  e.sequence = sequence;
  e.source = 3;
  e.target = 17;
  e.policy = "semilightpath";
  e.heap = "fibonacci";
  e.outcome = "carried";
  e.cost = 12.625;
  e.hops = 4;
  e.conversions = 1;
  e.aux_nodes = 120;
  e.aux_links = 480;
  e.relaxations = 96;
  e.heap_pops = 64;
  e.build_seconds = 0.00125;
  e.search_seconds = 0.0005;
  e.trace_id = 0xabcdef01;
  return e;
}

TEST(ExportTest, JsonlRoundTripIsLossless) {
  std::vector<RouteEvent> events{sample_event(0), sample_event(1)};
  events[1].outcome = "blocked";
  events[1].cost = 1.0 / 3.0;  // not exactly representable in decimal

  std::stringstream stream;
  write_route_events_jsonl(stream, events);
  const std::vector<RouteEvent> parsed = read_route_events_jsonl(stream);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], events[0]);
  EXPECT_EQ(parsed[1], events[1]);
}

TEST(ExportTest, JsonEscapesSpecialCharacters) {
  RouteEvent e = sample_event(0);
  e.policy = "quote\" backslash\\ newline\n tab\t";
  std::stringstream stream;
  write_route_events_jsonl(stream, std::vector<RouteEvent>{e});
  const auto parsed = read_route_events_jsonl(stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].policy, e.policy);
}

TEST(ExportTest, JsonlSkipsBlankLinesAndIgnoresUnknownKeys) {
  std::stringstream stream(
      "\n"
      "{\"sequence\":5,\"outcome\":\"carried\",\"mystery\":1.5}\n"
      "   \n");
  const auto parsed = read_route_events_jsonl(stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].sequence, 5u);
  EXPECT_EQ(parsed[0].outcome, "carried");
}

TEST(ExportTest, JsonlMalformedThrows) {
  std::stringstream stream("{\"sequence\":}\n");
  EXPECT_THROW((void)read_route_events_jsonl(stream), Error);
  std::stringstream not_object("42\n");
  EXPECT_THROW((void)read_route_events_jsonl(not_object), Error);
}

TEST(ExportTest, CsvHasHeaderAndOneRowPerEvent) {
  std::vector<RouteEvent> events{sample_event(0), sample_event(1)};
  std::stringstream stream;
  write_route_events_csv(stream, events);
  std::string line;
  ASSERT_TRUE(std::getline(stream, line));
  EXPECT_EQ(line.substr(0, 22), "sequence,source,target");
  int rows = 0;
  while (std::getline(stream, line)) ++rows;
  EXPECT_EQ(rows, 2);
}

TEST(ExportTest, CsvQuotesEmbeddedQuotes) {
  RouteEvent e = sample_event(0);
  e.outcome = "say \"what\"";
  std::stringstream stream;
  write_route_events_csv(stream, std::vector<RouteEvent>{e});
  EXPECT_NE(stream.str().find("\"say \"\"what\"\"\""), std::string::npos);
}

TEST(ExportTest, PrometheusCountersAndHistograms) {
  Registry registry;
  registry.counter("lumen.test.requests").add(42);
  LatencyHistogram& h = registry.histogram("lumen.test.latency_ns");
  h.record(1);    // bucket 1
  h.record(3);    // bucket 2
  h.record(3);    // bucket 2

  const std::string text = prometheus_text(registry);
  EXPECT_NE(text.find("# TYPE lumen_test_requests counter\n"
                      "lumen_test_requests 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lumen_test_latency_ns histogram"),
            std::string::npos);
  // Cumulative buckets: le="1" -> 1 observation, le="3" -> all 3.
  EXPECT_NE(text.find("lumen_test_latency_ns_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lumen_test_latency_ns_bucket{le=\"3\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lumen_test_latency_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lumen_test_latency_ns_sum 7"), std::string::npos);
  EXPECT_NE(text.find("lumen_test_latency_ns_count 3"), std::string::npos);
}

TEST(ExportTest, PrometheusEmptyRegistryIsEmpty) {
  Registry registry;
  EXPECT_EQ(prometheus_text(registry), "");
}

TEST(ExportTest, TraceIdRidesAtTheEndOfBothSchemas) {
  const RouteEvent e = sample_event(9);
  const std::string json = route_event_to_json(e);
  // Appended last so pre-v2 consumers keyed on field order stay valid.
  EXPECT_NE(json.find("\"trace_id\":2882400001}"), std::string::npos);

  std::stringstream csv;
  write_route_events_csv(csv, std::vector<RouteEvent>{e});
  std::string header;
  std::string row;
  ASSERT_TRUE(std::getline(csv, header));
  ASSERT_TRUE(std::getline(csv, row));
  EXPECT_EQ(header.substr(header.size() - 9), ",trace_id");
  EXPECT_EQ(row.substr(row.size() - 11), ",2882400001");
}

TEST(ExportTest, PrometheusSummaryGaugesBehindFlag) {
  Registry registry;
  LatencyHistogram& h = registry.histogram("lumen.test.latency_ns");
  for (int i = 0; i < 100; ++i) h.record(64);

  // Default: native histogram only, no summary rendering.
  const std::string native = prometheus_text(registry);
  EXPECT_NE(native.find("# TYPE lumen_test_latency_ns histogram"),
            std::string::npos);
  EXPECT_EQ(native.find("summary"), std::string::npos);

  PrometheusOptions options;
  options.summary_gauges = true;
  const std::string both = prometheus_text(registry, options);
  // The legacy rendering appears under a suffixed name so the two typed
  // metrics never collide.
  EXPECT_NE(both.find("# TYPE lumen_test_latency_ns_summary summary"),
            std::string::npos);
  EXPECT_NE(both.find("lumen_test_latency_ns_summary{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(both.find("lumen_test_latency_ns_summary_count 100"),
            std::string::npos);
  EXPECT_NE(both.find("lumen_test_latency_ns_bucket{le=\"+Inf\"} 100"),
            std::string::npos);

  options.native_histograms = false;
  const std::string summary_only = prometheus_text(registry, options);
  EXPECT_EQ(summary_only.find("_bucket{"), std::string::npos);
  EXPECT_NE(summary_only.find("_summary{quantile=\"0.5\"} "),
            std::string::npos);
}

TEST(ExportTest, PrometheusRendersFaultInstruments) {
  Registry registry;
  registry.counter("lumen.dist.faults.retransmit_sweeps").add(7);
  registry.counter("lumen.dist.faults.stale_offers").add(19);
  registry.counter("lumen.dist.faults.redundant_retransmits").add(4);
  registry.histogram("lumen.dist.faults.recovery_rounds").record(12);

  const std::string text = prometheus_text(registry);
  EXPECT_NE(text.find("# TYPE lumen_dist_faults_retransmit_sweeps counter\n"
                      "lumen_dist_faults_retransmit_sweeps 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("lumen_dist_faults_stale_offers 19"), std::string::npos);
  EXPECT_NE(text.find("lumen_dist_faults_redundant_retransmits 4"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE lumen_dist_faults_recovery_rounds histogram"),
      std::string::npos);
  EXPECT_NE(text.find("lumen_dist_faults_recovery_rounds_bucket{le=\"15\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lumen_dist_faults_recovery_rounds_sum 12"),
            std::string::npos);
}

}  // namespace
}  // namespace lumen::obs
