#include "obs/export.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"

namespace lumen::obs {
namespace {

RouteEvent sample_event(std::uint64_t sequence) {
  RouteEvent e;
  e.sequence = sequence;
  e.source = 3;
  e.target = 17;
  e.policy = "semilightpath";
  e.heap = "fibonacci";
  e.outcome = "carried";
  e.cost = 12.625;
  e.hops = 4;
  e.conversions = 1;
  e.aux_nodes = 120;
  e.aux_links = 480;
  e.relaxations = 96;
  e.heap_pops = 64;
  e.build_seconds = 0.00125;
  e.search_seconds = 0.0005;
  return e;
}

TEST(ExportTest, JsonlRoundTripIsLossless) {
  std::vector<RouteEvent> events{sample_event(0), sample_event(1)};
  events[1].outcome = "blocked";
  events[1].cost = 1.0 / 3.0;  // not exactly representable in decimal

  std::stringstream stream;
  write_route_events_jsonl(stream, events);
  const std::vector<RouteEvent> parsed = read_route_events_jsonl(stream);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], events[0]);
  EXPECT_EQ(parsed[1], events[1]);
}

TEST(ExportTest, JsonEscapesSpecialCharacters) {
  RouteEvent e = sample_event(0);
  e.policy = "quote\" backslash\\ newline\n tab\t";
  std::stringstream stream;
  write_route_events_jsonl(stream, std::vector<RouteEvent>{e});
  const auto parsed = read_route_events_jsonl(stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].policy, e.policy);
}

TEST(ExportTest, JsonlSkipsBlankLinesAndIgnoresUnknownKeys) {
  std::stringstream stream(
      "\n"
      "{\"sequence\":5,\"outcome\":\"carried\",\"mystery\":1.5}\n"
      "   \n");
  const auto parsed = read_route_events_jsonl(stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].sequence, 5u);
  EXPECT_EQ(parsed[0].outcome, "carried");
}

TEST(ExportTest, JsonlMalformedThrows) {
  std::stringstream stream("{\"sequence\":}\n");
  EXPECT_THROW((void)read_route_events_jsonl(stream), Error);
  std::stringstream not_object("42\n");
  EXPECT_THROW((void)read_route_events_jsonl(not_object), Error);
}

TEST(ExportTest, CsvHasHeaderAndOneRowPerEvent) {
  std::vector<RouteEvent> events{sample_event(0), sample_event(1)};
  std::stringstream stream;
  write_route_events_csv(stream, events);
  std::string line;
  ASSERT_TRUE(std::getline(stream, line));
  EXPECT_EQ(line.substr(0, 22), "sequence,source,target");
  int rows = 0;
  while (std::getline(stream, line)) ++rows;
  EXPECT_EQ(rows, 2);
}

TEST(ExportTest, CsvQuotesEmbeddedQuotes) {
  RouteEvent e = sample_event(0);
  e.outcome = "say \"what\"";
  std::stringstream stream;
  write_route_events_csv(stream, std::vector<RouteEvent>{e});
  EXPECT_NE(stream.str().find("\"say \"\"what\"\"\""), std::string::npos);
}

TEST(ExportTest, PrometheusCountersAndHistograms) {
  Registry registry;
  registry.counter("lumen.test.requests").add(42);
  LatencyHistogram& h = registry.histogram("lumen.test.latency_ns");
  h.record(1);    // bucket 1
  h.record(3);    // bucket 2
  h.record(3);    // bucket 2

  const std::string text = prometheus_text(registry);
  EXPECT_NE(text.find("# TYPE lumen_test_requests counter\n"
                      "lumen_test_requests 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lumen_test_latency_ns histogram"),
            std::string::npos);
  // Cumulative buckets: le="1" -> 1 observation, le="3" -> all 3.
  EXPECT_NE(text.find("lumen_test_latency_ns_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lumen_test_latency_ns_bucket{le=\"3\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lumen_test_latency_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lumen_test_latency_ns_sum 7"), std::string::npos);
  EXPECT_NE(text.find("lumen_test_latency_ns_count 3"), std::string::npos);
}

TEST(ExportTest, PrometheusEmptyRegistryIsEmpty) {
  Registry registry;
  EXPECT_EQ(prometheus_text(registry), "");
}

}  // namespace
}  // namespace lumen::obs
