// The real-socket wire path: UdpSocket primitives, then the full
// exporter → UDP datagram → decoder round trip over loopback.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/slo.h"
#include "obs/wire/wire_decoder.h"
#include "obs/wire/wire_encoder.h"
#include "obs/wire/wire_transport.h"
#include "util/udp.h"

namespace lumen::obs::wire {
namespace {

std::vector<std::byte> as_bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(UdpSocketTest, BindSendReceiveRoundTrip) {
  lumen::UdpSocket receiver(0);  // kernel-assigned ephemeral port
  ASSERT_TRUE(receiver.ok());
  ASSERT_NE(receiver.port(), 0);

  lumen::UdpSocket sender;
  ASSERT_TRUE(sender.ok());
  const auto payload = as_bytes("wire telemetry datagram");
  ASSERT_TRUE(sender.send_to(receiver.port(), payload));

  std::vector<std::byte> buf(512);
  const long got = receiver.recv(buf, /*timeout_seconds=*/2.0);
  ASSERT_EQ(got, static_cast<long>(payload.size()));
  EXPECT_EQ(std::memcmp(buf.data(), payload.data(), payload.size()), 0);
}

TEST(UdpSocketTest, RecvTimesOutWhenQuiet) {
  lumen::UdpSocket receiver(0);
  ASSERT_TRUE(receiver.ok());
  std::vector<std::byte> buf(64);
  EXPECT_EQ(receiver.recv(buf, /*timeout_seconds=*/0.01), 0);
  EXPECT_EQ(receiver.recv(buf, /*timeout_seconds=*/-1.0), 0);  // pure poll
}

TEST(UdpSocketTest, OversizedDatagramIsTruncatedToBuffer) {
  lumen::UdpSocket receiver(0);
  ASSERT_TRUE(receiver.ok());
  lumen::UdpSocket sender;
  ASSERT_TRUE(sender.send_to(receiver.port(),
                             as_bytes(std::string(300, 'x'))));
  std::vector<std::byte> buf(100);
  EXPECT_EQ(receiver.recv(buf, 2.0), 100);
}

TEST(UdpSocketTest, MovedFromSocketIsInert) {
  lumen::UdpSocket receiver(0);
  const std::uint16_t port = receiver.port();
  lumen::UdpSocket moved = std::move(receiver);
  EXPECT_TRUE(moved.ok());
  EXPECT_EQ(moved.port(), port);
  EXPECT_FALSE(receiver.ok());  // NOLINT(bugprone-use-after-move): pinned
  EXPECT_FALSE(receiver.send_to(port, as_bytes("x")));
}

TEST(WireUdpTest, SnapshotSurvivesARealSocketHop) {
  lumen::UdpSocket receiver(0);
  ASSERT_TRUE(receiver.ok());
  UdpWireTransport transport(receiver.port());
  ASSERT_TRUE(transport.ok());
  WireExporter exporter(transport);

  PumpSnapshot sent;
  sent.tick = 11;
  sent.uptime_seconds = 5.5;
  sent.counters = {{"lumen.rwa.blocked", 7}};
  sent.counter_deltas = {{"lumen.rwa.blocked", 2}};
  sent.gauges = {{"lumen.rwa.util.fragmentation", 0.125}};
  exporter.export_snapshot(sent);
  ASSERT_EQ(exporter.stats().frames_lost, 0u);

  WireDecoder decoder;
  std::vector<std::byte> buf(65536);
  for (std::uint64_t i = 0; i < exporter.stats().frames_sent; ++i) {
    const long got = receiver.recv(buf, 2.0);
    ASSERT_GT(got, 0);
    EXPECT_TRUE(decoder.decode_frame(
        std::span<const std::byte>(buf.data(), static_cast<std::size_t>(got))));
  }
  decoder.flush();
  const auto snapshots = decoder.take_snapshots();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].tick, sent.tick);
  EXPECT_EQ(snapshots[0].counters, sent.counters);
  EXPECT_EQ(snapshots[0].counter_deltas, sent.counter_deltas);
  EXPECT_EQ(snapshots[0].gauges, sent.gauges);
  EXPECT_EQ(pump_snapshot_to_json(snapshots[0]), pump_snapshot_to_json(sent));
}

TEST(WireUdpTest, SendToDeadPortCountsAsLostNotFatal) {
  // Nothing listens on the receiver's port once it closes; loopback UDP
  // reports the ICMP refusal on a later send.  Whatever the kernel does,
  // the exporter must keep running and keep its sequence advancing so a
  // future collector sees the gap.
  lumen::UdpSocket placeholder(0);
  const std::uint16_t dead_port = placeholder.port();
  placeholder.close();

  UdpWireTransport transport(dead_port);
  ASSERT_TRUE(transport.ok());
  WireExporter exporter(transport);
  PumpSnapshot snapshot;
  for (std::uint64_t tick = 1; tick <= 3; ++tick) {
    snapshot.tick = tick;
    exporter.export_snapshot(snapshot);
  }
  EXPECT_EQ(exporter.stats().frames_sent + exporter.stats().frames_lost, 3u);
  EXPECT_EQ(exporter.next_sequence(), 3u);
}

}  // namespace
}  // namespace lumen::obs::wire
