// The obs-v3 acceptance path end to end: a forced svc-admit-p99 breach
// must trigger a flight-recorder dump whose breach line names the
// offending tenant, whose exemplar trace ids resolve to span lines in
// the same dump, and whose profile lines attribute >= 90% of sampled
// admit time to named stages under svc.admit.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/slo.h"
#include "obs/span_buffer.h"
#include "svc/service.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

#if LUMEN_OBS_ENABLED

/// Minimal field scrape from one flat-JSON dump line.
std::string field_text(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t begin = at + needle.size();
  return line.substr(begin, line.find('"', begin) - begin);
}

TEST(BreachLinkageTest, AdmitP99BreachDumpNamesTenantTraceAndStages) {
  obs::FlightRecorder::global().clear();
  obs::SpanBuffer::global().clear();
  obs::Profiler::global().clear();
  obs::Profiler::global().set_sample_period(1);

  svc::ServiceOptions options;
  options.num_shards = 2;
  options.num_tenants = 4;
  svc::RoutingService service(testing::paper_example_network(), options);

  obs::SloWatchdog dog;
  // 1 ns is always exceeded: every admit "breaches", which forces the
  // dump deterministically without depending on machine speed.
  dog.add_rule(obs::SloRule::percentile(
      "svc-admit-p99", "lumen.svc.admit_latency_ns", 0.99, 1.0));
  obs::PumpOptions pump_options;
  pump_options.watchdog = &dog;
  pump_options.recorder = &obs::FlightRecorder::global();
  pump_options.dump_dir = ::testing::TempDir();
  pump_options.profiler = &obs::Profiler::global();
  obs::MetricsPump pump(obs::Registry::global(), pump_options);
  (void)pump.tick();  // prime

  // Tenant 3 runs full admissions (route + commit, tens of µs); tenant 1
  // only ever hits the quota-denied fast path (sub-µs), so tenant 3's
  // p99 child is deterministically the worst — the offender.
  service.set_quota(svc::TenantId{1}, 0);
  for (int i = 0; i < 80; ++i) {
    (void)service.open(svc::TenantId{3}, NodeId{0},
                       NodeId{static_cast<std::uint32_t>(1 + (i % 5))});
  }
  for (int i = 0; i < 4; ++i)
    (void)service.open(svc::TenantId{1}, NodeId{0}, NodeId{1});

  const auto snap = pump.tick();
  ASSERT_FALSE(snap.alerts.empty());
  const obs::AlertEvent* alert = nullptr;
  for (const auto& a : snap.alerts)
    if (a.rule == "svc-admit-p99") alert = &a;
  ASSERT_NE(alert, nullptr);
  ASSERT_FALSE(alert->dump_path.empty());

  std::ifstream in(alert->dump_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  const std::string text = buffer.str();

  // 1. The breach line names the offending tenant and carries at least
  //    one exemplar trace id.
  std::string breach_line;
  std::vector<std::string> profile_lines;
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    if (line.find("\"type\":\"breach\"") != std::string::npos)
      breach_line = line;
    if (line.find("\"type\":\"profile\"") != std::string::npos)
      profile_lines.push_back(line);
  }
  ASSERT_FALSE(breach_line.empty());
  EXPECT_NE(breach_line.find("\"rule\":\"svc-admit-p99\""),
            std::string::npos);
  EXPECT_EQ(field_text(breach_line, "labels"), "tenant=3");
  const std::string exemplars = field_text(breach_line, "exemplars");
  ASSERT_FALSE(exemplars.empty());

  // 2. Each exemplar resolves to a svc.admit span line in the same dump
  //    (at least one must — older exemplars can age out of the ring).
  bool exemplar_resolved = false;
  std::istringstream ids(exemplars);
  for (std::string id; std::getline(ids, id, ',');) {
    const std::string trace_key = "\"trace_id\":" + id;
    std::istringstream again(text);
    for (std::string line; std::getline(again, line);) {
      if (line.find("\"type\":\"span\"") != std::string::npos &&
          line.find("\"svc.admit\"") != std::string::npos &&
          line.find(trace_key) != std::string::npos)
        exemplar_resolved = true;
    }
  }
  EXPECT_TRUE(exemplar_resolved);

  // 3. The profile attributes >= 90% of sampled admit time to named
  //    stages: self times across the svc.admit subtree must add back up
  //    to the root's total (period-1 sampling makes this exact modulo
  //    clamping).
  ASSERT_FALSE(profile_lines.empty());
  std::uint64_t root_total = 0;
  std::uint64_t named_self = 0;
  bool saw_stage_below_admit = false;
  for (const std::string& line : profile_lines) {
    const std::string stack = field_text(line, "stack");
    if (stack != "svc.admit" &&
        stack.compare(0, 10, "svc.admit;") != 0)
      continue;
    const std::string self_key = "\"self_ns\":";
    const std::size_t self_at = line.find(self_key);
    ASSERT_NE(self_at, std::string::npos);
    named_self += std::stoull(line.substr(self_at + self_key.size()));
    if (stack == "svc.admit") {
      const std::string total_key = "\"total_ns\":";
      const std::size_t total_at = line.find(total_key);
      ASSERT_NE(total_at, std::string::npos);
      root_total = std::stoull(line.substr(total_at + total_key.size()));
    } else {
      saw_stage_below_admit = true;
    }
  }
  ASSERT_GT(root_total, 0u);
  EXPECT_TRUE(saw_stage_below_admit);
  EXPECT_GE(static_cast<double>(named_self),
            0.9 * static_cast<double>(root_total));

  obs::Profiler::global().set_sample_period(
      obs::Profiler::kDefaultSamplePeriod);
  std::remove(alert->dump_path.c_str());
}

#endif  // LUMEN_OBS_ENABLED

}  // namespace
}  // namespace lumen
