// TagSet packing/canonicalisation and the shared labels codec: equal
// label sets must pack to equal u64 keys regardless of build order, the
// canonical text must render in fixed dimension order with escaping,
// and labels_canonical/labels_parse must round-trip arbitrary values.
#include "obs/tagset.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace lumen::obs {
namespace {

TEST(TagSetTest, EmptySetHasZeroKey) {
  const TagSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.key(), 0u);
  EXPECT_EQ(empty.canonical(), "");
  EXPECT_TRUE(empty.entries().empty());
}

TEST(TagSetTest, BuildOrderDoesNotChangeKey) {
  const TagSet a = TagSet{}.tenant(3).shard(1);
  const TagSet b = TagSet{}.shard(1).tenant(3);
  EXPECT_EQ(a.key(), b.key());
  EXPECT_EQ(a, b);
  const TagSet c = TagSet{}.tenant(4).shard(1);
  EXPECT_NE(a.key(), c.key());
}

TEST(TagSetTest, ReplacingADimensionKeepsOneSlot) {
  const TagSet a = TagSet{}.tenant(3).tenant(9);
  EXPECT_EQ(a, TagSet{}.tenant(9));
  const auto entries = a.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, "tenant");
  EXPECT_EQ(entries[0].second, "9");
}

TEST(TagSetTest, CanonicalRendersInDimensionOrder) {
  // The canonical order is the TagKey enum order (tenant, shard,
  // policy, stage), not build order.
  const TagSet numeric = TagSet{}.shard(1).tenant(3);
  EXPECT_EQ(numeric.canonical(), "tenant=3,shard=1");
#if LUMEN_OBS_ENABLED
  const TagSet tags = TagSet{}.stage("route").shard(1).tenant(3);
  EXPECT_EQ(tags.canonical(), "tenant=3,shard=1,stage=route");
#endif
}

TEST(TagSetTest, NumericFastPathMatchesInternedText) {
#if LUMEN_OBS_ENABLED
  // Small ids encode directly; the same value arriving as interned text
  // (policy path is string-typed) must still render identically.
  const TagSet numeric = TagSet{}.tenant(42);
  EXPECT_EQ(numeric.canonical(), "tenant=42");
  // Direct encoding: vid == value for ids below the numeric limit.
  EXPECT_EQ(detail::intern_tag_value("42"), 42);
  // Large ids fall back to the interner but still render exactly.
  const TagSet large = TagSet{}.tenant(123456789);
  EXPECT_EQ(large.canonical(), "tenant=123456789");
#endif
}

TEST(TagSetTest, InternedStringsAreStableAcrossLookups) {
#if LUMEN_OBS_ENABLED
  const std::uint16_t first = detail::intern_tag_value("gold-policy");
  const std::uint16_t again = detail::intern_tag_value("gold-policy");
  EXPECT_EQ(first, again);
  EXPECT_GE(first, detail::kNumericVidLimit);
  EXPECT_EQ(detail::tag_value_text(first), "gold-policy");
  const TagSet tags = TagSet{}.policy("gold-policy");
  EXPECT_EQ(tags.canonical(), "policy=gold-policy");
#endif
}

TEST(TagSetTest, CanonicalEscapesSeparators) {
#if LUMEN_OBS_ENABLED
  const TagSet tags = TagSet{}.policy("a,b=c\\d");
  EXPECT_EQ(tags.canonical(), "policy=a\\,b\\=c\\\\d");
  // And the shared codec parses it back.
  const auto parsed = labels_parse(tags.canonical());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].first, "policy");
  EXPECT_EQ(parsed[0].second, "a,b=c\\d");
#endif
}

TEST(LabelsCodecTest, CanonicalParseRoundTrip) {
  const std::vector<std::pair<std::string, std::string>> labels = {
      {"tenant", "3"},
      {"shard", "1"},
      {"policy", "a,b=c\\d"},
      {"stage", ""},
  };
  const std::string text = labels_canonical(labels);
  EXPECT_EQ(text, "tenant=3,shard=1,policy=a\\,b\\=c\\\\d,stage=");
  EXPECT_EQ(labels_parse(text), labels);
}

TEST(LabelsCodecTest, ParseToleratesMissingEquals) {
  const auto parsed = labels_parse("flag,k=v");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].first, "flag");
  EXPECT_EQ(parsed[0].second, "");
  EXPECT_EQ(parsed[1].first, "k");
  EXPECT_EQ(parsed[1].second, "v");
  EXPECT_TRUE(labels_parse("").empty());
}

TEST(TagSetTest, TagKeyNamesAreStable) {
  EXPECT_STREQ(tag_key_name(TagKey::kTenant), "tenant");
  EXPECT_STREQ(tag_key_name(TagKey::kShard), "shard");
  EXPECT_STREQ(tag_key_name(TagKey::kPolicy), "policy");
  EXPECT_STREQ(tag_key_name(TagKey::kStage), "stage");
}

}  // namespace
}  // namespace lumen::obs
