// MetricsServer behavior under real (and badly behaved) HTTP clients:
// whole-request scrapes, clients that dribble the request line across
// several sends, and clients that connect and say nothing.
#include <gtest/gtest.h>

#include "obs/metrics_server.h"
#include "obs/obs.h"
#include "obs/registry.h"

#if LUMEN_OBS_ENABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

namespace lumen::obs {
namespace {

/// A loopback TCP client socket connected to `port`; -1 on failure.
int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
}

std::string recv_all(int fd) {
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

TEST(MetricsServerTest, ServesPrometheusTextToAWholeRequest) {
  Registry registry;
  registry.counter("lumen.rwa.offered").add(5);
  const auto server = serve_metrics(0, registry);
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->ok());

  const int fd = connect_to(server->port());
  ASSERT_GE(fd, 0);
  send_all(fd, "GET /metrics HTTP/1.0\r\n\r\n");
  const std::string response = recv_all(fd);
  ::close(fd);

  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("lumen_rwa_offered 5"), std::string::npos);
}

TEST(MetricsServerTest, SlowClientDribblingTheRequestLineStillGets200) {
  Registry registry;
  registry.counter("lumen.rwa.blocked").add(2);
  const auto server = serve_metrics(0, registry);
  ASSERT_NE(server, nullptr);

  const int fd = connect_to(server->port());
  ASSERT_GE(fd, 0);
  // The request line arrives in three short writes with pauses between
  // them; the server must keep reading until the newline, not respond to
  // (or choke on) a fragment.
  for (const char* part : {"GET /met", "rics HT", "TP/1.0\r\n\r\n"}) {
    send_all(fd, part);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const std::string response = recv_all(fd);
  ::close(fd);

  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("lumen_rwa_blocked 2"), std::string::npos);
}

TEST(MetricsServerTest, ClientThatClosesWithoutARequestDoesNotWedge) {
  Registry registry;
  registry.counter("lumen.rwa.offered").add(1);
  const auto server = serve_metrics(0, registry);
  ASSERT_NE(server, nullptr);

  // Connect and immediately close: the server's read loop sees EOF and
  // must move on to the next connection rather than wedging the
  // accept thread.
  const int silent = connect_to(server->port());
  ASSERT_GE(silent, 0);
  ::close(silent);

  const int fd = connect_to(server->port());
  ASSERT_GE(fd, 0);
  send_all(fd, "GET / HTTP/1.0\r\n\r\n");
  const std::string response = recv_all(fd);
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
}

TEST(MetricsServerTest, StopIsIdempotentAndPortStaysBound) {
  Registry registry;
  const auto server = serve_metrics(0, registry);
  ASSERT_NE(server, nullptr);
  EXPECT_NE(server->port(), 0);
  server->stop();
  server->stop();  // second stop must be a no-op, not a crash
  EXPECT_FALSE(server->ok());
}

}  // namespace
}  // namespace lumen::obs

#else  // LUMEN_OBS_ENABLED

namespace lumen::obs {
namespace {

TEST(MetricsServerTest, DisabledModeNeverBindsAndServesNothing) {
  const auto server = serve_metrics(0);
  EXPECT_EQ(server, nullptr);
}

}  // namespace
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
