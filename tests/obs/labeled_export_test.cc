// Labeled-series export surfaces: Prometheus label-value escaping and
// rendering, labeled children merged under their plain family's TYPE
// block, and the pump snapshot JSON key scheme for labeled series and
// profile entries.
#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "obs/registry.h"
#include "obs/slo.h"
#include "obs/tagset.h"

namespace lumen::obs {
namespace {

TEST(LabeledExportTest, PrometheusLabelValueEscapes) {
  EXPECT_EQ(prometheus_label_value("plain"), "plain");
  EXPECT_EQ(prometheus_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_label_value("line\nbreak"), "line\\nbreak");
}

TEST(LabeledExportTest, PrometheusLabelsRendersCanonicalText) {
  EXPECT_EQ(prometheus_labels("tenant=3,shard=1"),
            "{tenant=\"3\",shard=\"1\"}");
  // Canonical escapes unwrap, then Prometheus escaping applies; label
  // *keys* are name-mangled like metric names.
  EXPECT_EQ(prometheus_labels("policy=a\\,b\\=c\\\\d"),
            "{policy=\"a,b=c\\\\d\"}");
  EXPECT_EQ(prometheus_labels("stage.kind=x"), "{stage_kind=\"x\"}");
  // An empty label set renders as nothing, not "{}".
  EXPECT_EQ(prometheus_labels(""), "");
}

#if LUMEN_OBS_ENABLED

TEST(LabeledExportTest, LabeledChildrenShareThePlainTypeBlock) {
  Registry registry;
  registry.counter("lumen.test.admitted").add(10);
  auto& family = registry.labeled_counter("lumen.test.admitted");
  family.at(TagSet{}.tenant(3)).add(7);
  family.at(TagSet{}.tenant(4)).add(2);

  const std::string text = prometheus_text(registry);
  // One TYPE line, plain sample first, then the labeled children.
  EXPECT_NE(text.find("# TYPE lumen_test_admitted counter\n"
                      "lumen_test_admitted 10\n"
                      "lumen_test_admitted{tenant=\"3\"} 7\n"
                      "lumen_test_admitted{tenant=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE lumen_test_admitted counter",
                      text.find("# TYPE lumen_test_admitted counter") + 1),
            std::string::npos);
}

TEST(LabeledExportTest, LabeledOnlyFamilyGetsItsOwnTypeBlock) {
  Registry registry;
  registry.labeled_gauge("lumen.test.share").at(TagSet{}.tenant(1)).set(0.25);
  const std::string text = prometheus_text(registry);
  EXPECT_NE(text.find("# TYPE lumen_test_share gauge\n"
                      "lumen_test_share{tenant=\"1\"} 0.25\n"),
            std::string::npos);
}

TEST(LabeledExportTest, LabeledHistogramBucketsMergeLeWithLabels) {
  Registry registry;
  auto& family = registry.labeled_histogram("lumen.test.latency_ns");
  LatencyHistogram& child = family.at(TagSet{}.tenant(3));
  child.record(1);
  child.record(3);

  const std::string text = prometheus_text(registry);
  EXPECT_NE(text.find("# TYPE lumen_test_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("lumen_test_latency_ns_bucket{tenant=\"3\",le=\"1\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find("lumen_test_latency_ns_bucket{tenant=\"3\",le=\"+Inf\"} 2"),
      std::string::npos);
  EXPECT_NE(text.find("lumen_test_latency_ns_count{tenant=\"3\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lumen_test_latency_ns_sum{tenant=\"3\"} 4"),
            std::string::npos);
}

TEST(LabeledExportTest, PumpSnapshotJsonUsesBraceKeys) {
  PumpSnapshot snapshot;
  snapshot.tick = 1;
  snapshot.labeled_counters = {{"lumen.svc.admitted", "tenant=3", 17, 4}};
  snapshot.labeled_gauges = {{"lumen.svc.share", "tenant=3", 0.625}};
  HistogramSummary summary;
  summary.count = 5;
  summary.p99 = 8.5e3;
  snapshot.labeled_histograms = {
      {"lumen.svc.admit_latency_ns", "tenant=3", summary, 0xbeef}};
  snapshot.profile = {{"svc.admit;svc.route", 24, 9000, 12000}};

  const std::string json = pump_snapshot_to_json(snapshot);
  EXPECT_NE(json.find("\"c:lumen.svc.admitted{tenant=3}\":17"),
            std::string::npos);
  EXPECT_NE(json.find("\"d:lumen.svc.admitted{tenant=3}\":4"),
            std::string::npos);
  EXPECT_NE(json.find("\"g:lumen.svc.share{tenant=3}\":0.625"),
            std::string::npos);
  EXPECT_NE(json.find("\"h:lumen.svc.admit_latency_ns{tenant=3}:count\":5"),
            std::string::npos);
  EXPECT_NE(
      json.find("\"h:lumen.svc.admit_latency_ns{tenant=3}:exemplar\":48879"),
      std::string::npos);
  EXPECT_NE(json.find("\"p:svc.admit;svc.route:n\":24"), std::string::npos);
  EXPECT_NE(json.find("\"p:svc.admit;svc.route:self\":9000"),
            std::string::npos);
  EXPECT_NE(json.find("\"p:svc.admit;svc.route:total\":12000"),
            std::string::npos);
}

#endif  // LUMEN_OBS_ENABLED

}  // namespace
}  // namespace lumen::obs
