#include "obs/registry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace lumen::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exact zeros; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3);
  EXPECT_EQ(LatencyHistogram::bucket_of(7), 3);
  EXPECT_EQ(LatencyHistogram::bucket_of(8), 4);
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}), 64);

  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(3), 7u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(64), ~std::uint64_t{0});
}

TEST(HistogramTest, CountSumMinMax) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  h.record(10);
  h.record(100);
  h.record(1);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 111u);
  EXPECT_DOUBLE_EQ(h.mean(), 37.0);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, PercentileOfSingletonIsItsBucketFloor) {
  LatencyHistogram h;
  h.record(8);  // exactly a bucket lower bound
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 8.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 8.0);
}

TEST(HistogramTest, PercentilesOrderAndBucketError) {
  // 1000 observations 1..1000: log-bucket percentiles are inexact but
  // must be monotone and within one bucket (2x) of the true value.
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const double p50 = h.percentile(0.50);
  const double p90 = h.percentile(0.90);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p99, 495.0);
  EXPECT_LE(p99, 1024.0);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_DOUBLE_EQ(s.p50, p50);
  EXPECT_DOUBLE_EQ(s.p99, p99);
}

TEST(HistogramTest, RecordSecondsUsesNanosecondTicks) {
  LatencyHistogram h;
  h.record_seconds(1e-6);  // 1000 ns
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 1000u);
  EXPECT_NEAR(h.percentile_seconds(1.0), 1e-6, 1e-6);
  h.record_seconds(-5.0);  // clamped to 0
  EXPECT_EQ(h.min(), 0u);
}

TEST(RegistryTest, SameNameSameInstrument) {
  Registry registry;
  Counter& a = registry.counter("lumen.test.a");
  Counter& b = registry.counter("lumen.test.a");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(registry.counter("lumen.test.a").value(), 7u);
  LatencyHistogram& h = registry.histogram("lumen.test.h");
  EXPECT_EQ(&h, &registry.histogram("lumen.test.h"));
}

TEST(RegistryTest, EntriesAreSortedByName) {
  Registry registry;
  registry.counter("b.counter").add(2);
  registry.counter("a.counter").add(1);
  const auto entries = registry.counter_entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "a.counter");
  EXPECT_EQ(entries[0].second->value(), 1u);
  EXPECT_EQ(entries[1].first, "b.counter");
}

TEST(RegistryTest, ResetZeroesButKeepsRegistrations) {
  Registry registry;
  registry.counter("x").add(5);
  registry.histogram("y").record(5);
  registry.reset();
  EXPECT_EQ(registry.counter_entries().size(), 1u);
  EXPECT_EQ(registry.counter("x").value(), 0u);
  EXPECT_EQ(registry.histogram("y").count(), 0u);
}

TEST(RegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace lumen::obs
