// Wire round-trip property: encode → transport → decode reproduces
// every PumpSnapshot value and route event exactly, including across
// frame splits, lost template frames, and mid-stream template resends.
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "obs/slo.h"
#include "obs/wire/wire_decoder.h"
#include "obs/wire/wire_encoder.h"
#include "obs/wire/wire_transport.h"

namespace lumen::obs::wire {
namespace {

PumpSnapshot sample_snapshot(std::uint64_t tick) {
  PumpSnapshot snapshot;
  snapshot.tick = tick;
  snapshot.uptime_seconds = 0.5 * static_cast<double>(tick);
  snapshot.counters = {{"lumen.rwa.blocked", 3 + tick},
                       {"lumen.rwa.offered", 100 * tick}};
  snapshot.counter_deltas = {{"lumen.rwa.blocked", 1},
                             {"lumen.rwa.offered", 100}};
  snapshot.gauges = {{"lumen.rwa.util.busy_ratio", 1.0 / 3.0},
                     {"lumen.rwa.util.spans_busy", 17.0}};
  HistogramSummary summary;
  summary.count = 12 + tick;
  summary.mean = 2.5e-6;
  summary.min = 1.25e-7;
  summary.max = 9e-6;
  summary.p50 = 2e-6;
  summary.p90 = 7e-6;
  summary.p99 = 8.5e-6;
  snapshot.histograms = {{"lumen.rwa.open_latency_ns", summary}};
  return snapshot;
}

void feed_all(const LoopbackTransport& transport, WireDecoder& decoder,
              std::size_t skip_index = SIZE_MAX) {
  for (std::size_t i = 0; i < transport.frames().size(); ++i) {
    if (i == skip_index) continue;
    EXPECT_TRUE(decoder.decode_frame(transport.frames()[i]));
  }
}

void expect_equal(const PumpSnapshot& got, const PumpSnapshot& want) {
  EXPECT_EQ(got.tick, want.tick);
  EXPECT_EQ(got.uptime_seconds, want.uptime_seconds);
  EXPECT_EQ(got.counters, want.counters);
  EXPECT_EQ(got.counter_deltas, want.counter_deltas);
  EXPECT_EQ(got.gauges, want.gauges);
  EXPECT_EQ(got.histograms, want.histograms);
  // The JSON rendering is the cross-tool contract; it must agree too.
  EXPECT_EQ(pump_snapshot_to_json(got), pump_snapshot_to_json(want));
}

TEST(WireRoundTripTest, SnapshotSurvivesExactly) {
  LoopbackTransport transport;
  WireExporter exporter(transport);
  const PumpSnapshot sent = sample_snapshot(7);
  exporter.export_snapshot(sent);

  WireDecoder decoder;
  feed_all(transport, decoder);
  decoder.flush();
  const auto snapshots = decoder.take_snapshots();
  ASSERT_EQ(snapshots.size(), 1u);
  expect_equal(snapshots[0], sent);
  EXPECT_EQ(decoder.stats().frames_rejected, 0u);
}

TEST(WireRoundTripTest, AlertsSurviveWithEveryField) {
  LoopbackTransport transport;
  WireExporter exporter(transport);
  PumpSnapshot sent = sample_snapshot(9);
  AlertEvent breach;
  breach.rule = "blocking";
  breach.metric = "lumen.rwa.blocked";
  breach.value = 0.25;
  breach.threshold = 0.2;
  breach.resolved = false;
  breach.tick = 9;
  breach.dump_path = "dumps/slo-blocking-tick9.jsonl";
  AlertEvent resolve = breach;
  resolve.resolved = true;
  resolve.dump_path = "";
  sent.alerts = {breach, resolve};
  exporter.export_snapshot(sent);

  WireDecoder decoder;
  feed_all(transport, decoder);
  decoder.flush();
  const auto snapshots = decoder.take_snapshots();
  ASSERT_EQ(snapshots.size(), 1u);
  ASSERT_EQ(snapshots[0].alerts.size(), 2u);
  const AlertEvent& got = snapshots[0].alerts[0];
  EXPECT_EQ(got.rule, breach.rule);
  EXPECT_EQ(got.metric, breach.metric);
  EXPECT_EQ(got.value, breach.value);
  EXPECT_EQ(got.threshold, breach.threshold);
  EXPECT_FALSE(got.resolved);
  EXPECT_EQ(got.tick, 9u);
  EXPECT_EQ(got.dump_path, breach.dump_path);
  EXPECT_TRUE(snapshots[0].alerts[1].resolved);
}

TEST(WireRoundTripTest, SplitsAcrossFramesAtTransportCeiling) {
  LoopbackTransport transport;
  transport.set_max_frame_bytes(256);  // force aggressive splitting
  WireExporter exporter(transport);
  PumpSnapshot sent = sample_snapshot(1);
  for (int i = 0; i < 40; ++i)
    sent.counters.emplace_back("lumen.synthetic.counter_" + std::to_string(i),
                               static_cast<std::uint64_t>(i) * 1000);
  sent.counter_deltas.clear();
  for (const auto& [name, value] : sent.counters)
    sent.counter_deltas.emplace_back(name, value / 2);
  exporter.export_snapshot(sent);
  ASSERT_GT(transport.frames().size(), 3u) << "splitting did not happen";

  WireDecoder decoder;
  feed_all(transport, decoder);
  decoder.flush();
  const auto snapshots = decoder.take_snapshots();
  ASSERT_EQ(snapshots.size(), 1u);
  expect_equal(snapshots[0], sent);
}

TEST(WireRoundTripTest, DataBeforeTemplateIsBufferedThenReplayed) {
  LoopbackTransport transport;
  WireExporterOptions options;
  options.template_interval = 0;  // templates only in the very first frame
  WireExporter exporter(transport, options);
  const PumpSnapshot first = sample_snapshot(1);
  const PumpSnapshot second = sample_snapshot(2);
  exporter.export_snapshot(first);
  exporter.export_snapshot(second);
  ASSERT_EQ(transport.frames().size(), 2u);

  // The collector joins late: frame 0 (with the templates) is lost.
  WireDecoder decoder;
  EXPECT_TRUE(decoder.decode_frame(transport.frames()[1]));
  EXPECT_TRUE(decoder.take_snapshots().empty());
  EXPECT_GT(decoder.stats().buffered_sets, 0u);

  // A mid-stream template resend unlocks the parked data.
  exporter.resend_templates();
  const PumpSnapshot third = sample_snapshot(3);
  exporter.export_snapshot(third);
  ASSERT_EQ(transport.frames().size(), 3u);
  EXPECT_TRUE(decoder.decode_frame(transport.frames()[2]));
  decoder.flush();

  const auto snapshots = decoder.take_snapshots();
  ASSERT_EQ(snapshots.size(), 2u);  // the buffered tick 2, then tick 3
  expect_equal(snapshots[0], second);
  expect_equal(snapshots[1], third);
  EXPECT_GT(decoder.stats().replayed_sets, 0u);
}

TEST(WireRoundTripTest, PeriodicTemplateResendHealsWithoutIntervention) {
  LoopbackTransport transport;
  WireExporterOptions options;
  options.template_interval = 2;  // re-announce every other snapshot
  WireExporter exporter(transport, options);
  for (std::uint64_t tick = 1; tick <= 4; ++tick)
    exporter.export_snapshot(sample_snapshot(tick));
  EXPECT_GE(exporter.stats().template_sets, 2u);

  // Lose the first frame entirely; the tick-3 frame re-announces, so
  // ticks 3 and 4 decode live and tick 2's parked sets replay.
  WireDecoder decoder;
  feed_all(transport, decoder, /*skip_index=*/0);
  decoder.flush();
  const auto snapshots = decoder.take_snapshots();
  ASSERT_EQ(snapshots.size(), 3u);
  expect_equal(snapshots[0], sample_snapshot(2));
  expect_equal(snapshots[1], sample_snapshot(3));
  expect_equal(snapshots[2], sample_snapshot(4));
}

TEST(WireRoundTripTest, LostFrameCountsAsSequenceGap) {
  LoopbackTransport transport;
  WireExporter exporter(transport);
  for (std::uint64_t tick = 1; tick <= 3; ++tick)
    exporter.export_snapshot(sample_snapshot(tick));
  ASSERT_EQ(transport.frames().size(), 3u);

  WireDecoder decoder;
  feed_all(transport, decoder, /*skip_index=*/1);
  EXPECT_EQ(decoder.stats().sequence_gaps, 1u);
  EXPECT_EQ(decoder.stats().frames_missed, 1u);
}

TEST(WireRoundTripTest, RouteEventsSurviveExactly) {
  LoopbackTransport transport;
  WireExporter exporter(transport);
  std::vector<RouteEvent> sent(3);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i].sequence = i;
    sent[i].source = 2 + static_cast<std::uint32_t>(i);
    sent[i].target = 9;
    sent[i].policy = "goal_directed_engine";
    sent[i].heap = "binary";
    sent[i].outcome = i == 1 ? "blocked" : "carried";
    sent[i].cost = 12.625 + static_cast<double>(i);
    sent[i].hops = 4;
    sent[i].conversions = 1;
    sent[i].aux_nodes = 120;
    sent[i].aux_links = 480;
    sent[i].relaxations = 96;
    sent[i].heap_pops = 64;
    sent[i].build_seconds = 0.00125;
    sent[i].search_seconds = 0.0005;
    sent[i].trace_id = 0xabcdef01 + i;
  }
  exporter.export_route_events(sent);

  WireDecoder decoder;
  feed_all(transport, decoder);
  const auto got = decoder.take_route_events();
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) EXPECT_EQ(got[i], sent[i]);
}

TEST(WireRoundTripTest, TwoDomainsDoNotInterfere) {
  LoopbackTransport transport;
  WireExporterOptions a_options;
  a_options.domain = 1;
  WireExporterOptions b_options;
  b_options.domain = 2;
  WireExporter a(transport, a_options);
  WireExporter b(transport, b_options);
  a.export_snapshot(sample_snapshot(1));
  b.export_snapshot(sample_snapshot(10));
  a.export_snapshot(sample_snapshot(2));

  WireDecoder decoder;
  feed_all(transport, decoder);
  decoder.flush();
  // Interleaved domains share one decoder: templates and sequence state
  // must be tracked per domain (no spurious gaps from the interleave).
  EXPECT_EQ(decoder.stats().sequence_gaps, 0u);
  EXPECT_EQ(decoder.stats().frames_rejected, 0u);
  EXPECT_EQ(decoder.take_snapshots().size(), 3u);
}

PumpSnapshot labeled_snapshot(std::uint64_t tick) {
  PumpSnapshot snapshot = sample_snapshot(tick);
  snapshot.labeled_counters = {
      {"lumen.svc.admitted", "tenant=3", 17 + tick, 4},
      {"lumen.svc.admitted", "tenant=4", 2, 2},
      {"lumen.svc.blocked", "shard=1,policy=a\\,b\\=c", 1, 0}};
  snapshot.labeled_gauges = {{"lumen.svc.tenant_share", "tenant=3", 0.625}};
  HistogramSummary summary;
  summary.count = 5;
  summary.mean = 2.5e3;
  summary.min = 1e3;
  summary.max = 9e3;
  summary.p50 = 2e3;
  summary.p90 = 7e3;
  summary.p99 = 8.5e3;
  snapshot.labeled_histograms = {
      {"lumen.svc.admit_latency_ns", "tenant=3", summary, 0xfeedbeef},
      {"lumen.svc.admit_latency_ns", "tenant=4", summary, 0}};
  snapshot.profile = {{"svc.admit", 24, 9000, 21000},
                      {"svc.admit;svc.route", 24, 12000, 12000}};
  return snapshot;
}

TEST(WireRoundTripTest, LabeledSeriesAndProfileSurviveExactly) {
  LoopbackTransport transport;
  WireExporter exporter(transport);
  const PumpSnapshot sent = labeled_snapshot(3);
  exporter.export_snapshot(sent);

  WireDecoder decoder;
  feed_all(transport, decoder);
  decoder.flush();
  const auto snapshots = decoder.take_snapshots();
  ASSERT_EQ(snapshots.size(), 1u);
  const PumpSnapshot& got = snapshots[0];
  expect_equal(got, sent);
  // Templates 262/263/264 carry every field bit-exactly, including the
  // escaped label text, zero vs nonzero exemplars, and profile weights.
  EXPECT_EQ(got.labeled_counters, sent.labeled_counters);
  EXPECT_EQ(got.labeled_gauges, sent.labeled_gauges);
  EXPECT_EQ(got.labeled_histograms, sent.labeled_histograms);
  EXPECT_EQ(got.profile, sent.profile);
  EXPECT_EQ(decoder.stats().frames_rejected, 0u);
}

TEST(WireRoundTripTest, LabeledRecordsSplitAcrossTinyFrames) {
  LoopbackTransport transport;
  transport.set_max_frame_bytes(160);
  WireExporter exporter(transport);
  const PumpSnapshot sent = labeled_snapshot(5);
  exporter.export_snapshot(sent);
  ASSERT_GT(transport.frames().size(), 2u);

  WireDecoder decoder;
  feed_all(transport, decoder);
  decoder.flush();
  const auto snapshots = decoder.take_snapshots();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].labeled_counters, sent.labeled_counters);
  EXPECT_EQ(snapshots[0].labeled_histograms, sent.labeled_histograms);
  EXPECT_EQ(snapshots[0].profile, sent.profile);
}

}  // namespace
}  // namespace lumen::obs::wire
