// Edge cases of the snapshot/alert JSON renderings and the Prometheus
// exporter: empty inputs, zero-count histograms, names that need
// escaping or mangling.  The JSON half is mode-independent (passive
// data); the Prometheus half needs live instruments and is gated.
#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "obs/registry.h"
#include "obs/slo.h"

namespace lumen::obs {
namespace {

TEST(PumpSnapshotJsonTest, EmptySnapshotIsStillValidJson) {
  const PumpSnapshot snapshot;
  EXPECT_EQ(pump_snapshot_to_json(snapshot),
            "{\"tick\":0,\"uptime_seconds\":0,\"alerts\":0}");
}

TEST(PumpSnapshotJsonTest, ZeroCountHistogramRendersAllFields) {
  PumpSnapshot snapshot;
  snapshot.histograms = {{"lumen.rwa.open_latency_ns", HistogramSummary{}}};
  const std::string json = pump_snapshot_to_json(snapshot);
  EXPECT_NE(json.find("\"h:lumen.rwa.open_latency_ns:count\":0"),
            std::string::npos);
  EXPECT_NE(json.find("\"h:lumen.rwa.open_latency_ns:p99\":0"),
            std::string::npos);
  EXPECT_NE(json.find("\"h:lumen.rwa.open_latency_ns:max\":0"),
            std::string::npos);
}

TEST(PumpSnapshotJsonTest, GaugeKeysUseThePrefixLumenTopParses) {
  PumpSnapshot snapshot;
  snapshot.gauges = {{"lumen.rwa.util.busy_ratio", 0.5}};
  EXPECT_NE(pump_snapshot_to_json(snapshot)
                .find("\"g:lumen.rwa.util.busy_ratio\":0.5"),
            std::string::npos);
}

TEST(PumpSnapshotJsonTest, NamesWithQuotesAndBackslashesAreEscaped) {
  PumpSnapshot snapshot;
  snapshot.counters = {{"weird\"name\\with\ncontrol", 1}};
  const std::string json = pump_snapshot_to_json(snapshot);
  EXPECT_NE(json.find("\"c:weird\\\"name\\\\with\\ncontrol\":1"),
            std::string::npos);
}

TEST(PumpSnapshotJsonTest, AlertsAreCountedNotInlined) {
  PumpSnapshot snapshot;
  AlertEvent alert;
  alert.rule = "blocking";
  snapshot.alerts = {alert, alert};
  const std::string json = pump_snapshot_to_json(snapshot);
  EXPECT_NE(json.find("\"alerts\":2"), std::string::npos);
  EXPECT_EQ(json.find("blocking"), std::string::npos);
}

TEST(AlertJsonTest, EveryFieldRendersAndEscapes) {
  AlertEvent alert;
  alert.rule = "p99\"latency";
  alert.metric = "lumen.rwa.open_latency_ns";
  alert.value = 0.5;
  alert.threshold = 0.25;
  alert.resolved = true;
  alert.tick = 42;
  alert.dump_path = "dumps\\slo.jsonl";
  EXPECT_EQ(alert_to_json(alert),
            "{\"alert\":\"p99\\\"latency\","
            "\"metric\":\"lumen.rwa.open_latency_ns\","
            "\"value\":0.5,\"threshold\":0.25,\"resolved\":true,"
            "\"tick\":42,\"dump_path\":\"dumps\\\\slo.jsonl\"}");
}

TEST(PrometheusNameTest, MapsEveryForbiddenCharacter) {
  EXPECT_EQ(prometheus_name("lumen.rwa.util.busy-ratio"),
            "lumen_rwa_util_busy_ratio");
  EXPECT_EQ(prometheus_name("ok_name:with:colons09"),
            "ok_name:with:colons09");
  EXPECT_EQ(prometheus_name("spaces and/slashes"), "spaces_and_slashes");
}

#if LUMEN_OBS_ENABLED

TEST(PrometheusEdgeTest, EmptyRegistryRendersNothing) {
  Registry registry;
  EXPECT_EQ(prometheus_text(registry), "");
}

TEST(PrometheusEdgeTest, GaugeRendersTypeLineAndValue) {
  Registry registry;
  registry.gauge("lumen.rwa.util.fragmentation").set(0.375);
  const std::string text = prometheus_text(registry);
  EXPECT_NE(text.find("# TYPE lumen_rwa_util_fragmentation gauge"),
            std::string::npos);
  EXPECT_NE(text.find("lumen_rwa_util_fragmentation 0.375"),
            std::string::npos);
}

TEST(PrometheusEdgeTest, UntouchedHistogramStillRendersCountZero) {
  Registry registry;
  (void)registry.histogram("lumen.rwa.open_latency_ns");
  const std::string text = prometheus_text(registry);
  EXPECT_NE(text.find("lumen_rwa_open_latency_ns_count 0"),
            std::string::npos);
}

#endif  // LUMEN_OBS_ENABLED

}  // namespace
}  // namespace lumen::obs
