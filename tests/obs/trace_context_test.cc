// Causal trace-context propagation: CausalSpan mechanics, and the exact
// parent/child linkage of the span trees the distributed routers emit —
// fault-free (a pure relaxation chain down a line network) and under a
// healed FaultPlan (sweeps and the recovery interval as children of the
// run root, everything in one trace).
#include "obs/trace_context.h"

#include <gtest/gtest.h>

#include <memory>

#include "dist/async_router.h"
#include "dist/dist_router.h"
#include "dist/distributed_sssp.h"
#include "dist/fault_plan.h"
#include "obs/span_buffer.h"
#include "obs/trace_assembler.h"
#include "tests/test_util.h"
#include "wdm/conversion.h"
#include "wdm/network.h"

namespace lumen {
namespace {

using obs::CausalSpan;
using obs::CausalSpanRecord;
using obs::SpanBuffer;
using obs::TraceContext;
using obs::TraceNode;
using obs::TraceTree;

/// 0 → 1 → 2 → 3, both wavelengths on every link, cheap conversion.
WdmNetwork line4() {
  WdmNetwork net(4, 2, std::make_shared<UniformConversion>(0.2));
  for (std::uint32_t u = 0; u + 1 < 4; ++u) {
    const LinkId e = net.add_link(NodeId{u}, NodeId{u + 1});
    net.set_wavelength(e, Wavelength{0}, 1.0);
    net.set_wavelength(e, Wavelength{1}, 1.0);
  }
  return net;
}

TEST(CausalSpanTest, AmbientSpansNestViaThreadLocalContext) {
  SpanBuffer buffer(64);
  std::uint64_t outer_id = 0;
  std::uint64_t trace = 0;
  {
    CausalSpan outer("outer", &buffer);
    trace = outer.trace_id();
    outer_id = outer.span_id();
    EXPECT_NE(trace, 0u);
    EXPECT_EQ(obs::current_trace_context(), outer.context());
    {
      CausalSpan inner("inner", &buffer);
      EXPECT_EQ(inner.trace_id(), trace);
      EXPECT_EQ(obs::current_trace_context(), inner.context());
    }
    // Inner closed: ambient context restored to outer.
    EXPECT_EQ(obs::current_trace_context(), outer.context());
  }
  EXPECT_FALSE(obs::current_trace_context().valid());

  const auto spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const TraceTree tree = obs::assemble_trace(spans, trace);
  ASSERT_EQ(tree.roots.size(), 1u);
  EXPECT_STREQ(tree.roots[0].span.name, "outer");
  ASSERT_EQ(tree.roots[0].children.size(), 1u);
  EXPECT_STREQ(tree.roots[0].children[0].span.name, "inner");
  EXPECT_EQ(tree.roots[0].children[0].span.parent_span_id, outer_id);
}

TEST(CausalSpanTest, ExplicitParentDoesNotTouchAmbientContext) {
  SpanBuffer buffer(64);
  CausalSpan root("root", &buffer);
  {
    CausalSpan child("child", root.context(), &buffer);
    EXPECT_EQ(child.trace_id(), root.trace_id());
    // Explicit-parent spans never install themselves as ambient context.
    EXPECT_EQ(obs::current_trace_context(), root.context());
  }
  // An invalid parent starts a fresh trace.
  CausalSpan fresh("fresh", TraceContext{}, &buffer);
  EXPECT_NE(fresh.trace_id(), 0u);
  EXPECT_NE(fresh.trace_id(), root.trace_id());
}

TEST(CausalSpanTest, ScopedTraceContextAdoptsAndRestores) {
  SpanBuffer buffer(64);
  CausalSpan root("root", &buffer);
  const TraceContext handoff = root.context();
  root.close();
  EXPECT_FALSE(obs::current_trace_context().valid());
  {
    obs::ScopedTraceContext scope(handoff);
    EXPECT_EQ(obs::current_trace_context(), handoff);
    CausalSpan worker("worker", &buffer);
    EXPECT_EQ(worker.trace_id(), handoff.trace_id);
  }
  EXPECT_FALSE(obs::current_trace_context().valid());
}

TEST(CausalSpanTest, RecordCarriesOptionalFields) {
  SpanBuffer buffer(8);
  {
    CausalSpan span("s", &buffer);
    span.set_node(5);
    span.set_virtual_interval(2.0, 7.5);
    span.set_attributes(11, 13);
  }
  const auto spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].node, 5u);
  EXPECT_DOUBLE_EQ(spans[0].vt_begin, 2.0);
  EXPECT_DOUBLE_EQ(spans[0].vt_end, 7.5);
  EXPECT_EQ(spans[0].attr0, 11u);
  EXPECT_EQ(spans[0].attr1, 13u);
}

TEST(DistTraceTest, FaultFreeLineIsOneRelaxationChain) {
  SpanBuffer::global().clear();
  const WdmNetwork net = line4();
  const DistRouteResult result =
      distributed_route_semilightpath(net, NodeId{0}, NodeId{3});
  ASSERT_TRUE(result.found);
  ASSERT_NE(result.trace_id, 0u);

  const auto spans = SpanBuffer::global().snapshot();
  const TraceTree tree = obs::assemble_trace(spans, result.trace_id);
  EXPECT_EQ(tree.orphans, 0u);
  ASSERT_EQ(tree.roots.size(), 1u);
  const TraceNode& root = tree.roots[0];
  EXPECT_STREQ(root.span.name, "dist.sync.run");
  EXPECT_EQ(root.span.node, 0u);

  // Exactly one useful node-round per downstream node, and the causal
  // chain mirrors the physical line: the offer that wakes node i comes
  // from node i-1's round (node 1's from the run root's seeding).
  const auto rounds = obs::find_spans(tree, "dist.node_round");
  ASSERT_EQ(rounds.size(), 3u);
  ASSERT_EQ(root.children.size(), 1u);
  const TraceNode* node1 = &root.children[0];
  EXPECT_STREQ(node1->span.name, "dist.node_round");
  EXPECT_EQ(node1->span.node, 1u);
  EXPECT_EQ(node1->span.parent_span_id, root.span.span_id);
  ASSERT_EQ(node1->children.size(), 1u);
  const TraceNode* node2 = &node1->children[0];
  EXPECT_EQ(node2->span.node, 2u);
  EXPECT_EQ(node2->span.parent_span_id, node1->span.span_id);
  ASSERT_EQ(node2->children.size(), 1u);
  const TraceNode* node3 = &node2->children[0];
  EXPECT_EQ(node3->span.node, 3u);
  EXPECT_EQ(node3->span.parent_span_id, node2->span.span_id);
  EXPECT_TRUE(node3->children.empty());

  // Virtual time advances one round per hop down the line.
  EXPECT_DOUBLE_EQ(node1->span.vt_begin, 1.0);
  EXPECT_DOUBLE_EQ(node2->span.vt_begin, 2.0);
  EXPECT_DOUBLE_EQ(node3->span.vt_begin, 3.0);

  // No sweeps or recovery in a fault-free run.
  EXPECT_EQ(obs::find_span(tree, "dist.sweep"), nullptr);
  EXPECT_EQ(obs::find_span(tree, "dist.recovery"), nullptr);
}

TEST(DistTraceTest, HealedFaultRunIsOneTreeWithSweepAndRecoveryChildren) {
  Rng rng(20260806);
  const WdmNetwork net =
      testing::random_network(24, 40, 4, 4, testing::ConvKind::kUniform, rng);

  // Fault-free optimum for comparison (its spans land in another trace).
  const DistRouteResult pristine =
      distributed_route_semilightpath(net, NodeId{0}, NodeId{23});

  SpanBuffer::global().clear();
  FaultPlan plan(97);
  plan.drop_messages(0.3, 6.0).span_down(NodeId{1}, NodeId{2}, 0.0, 4.0);
  const DistRouteResult faulted =
      distributed_route_semilightpath(net, NodeId{0}, NodeId{23}, plan);
  ASSERT_TRUE(faulted.converged);
  EXPECT_EQ(faulted.found, pristine.found);
  if (pristine.found) EXPECT_DOUBLE_EQ(faulted.cost, pristine.cost);
  ASSERT_NE(faulted.trace_id, 0u);
  ASSERT_GE(faulted.retransmit_sweeps, 1u);

  const auto spans = SpanBuffer::global().snapshot();
  // Every span of the run belongs to the one trace: the whole execution —
  // seeding, node rounds, sweeps, recovery — is a single causal tree.
  const TraceTree tree = obs::assemble_trace(spans, faulted.trace_id);
  EXPECT_EQ(tree.orphans, 0u);
  ASSERT_EQ(tree.roots.size(), 1u);
  const TraceNode& root = tree.roots[0];
  EXPECT_STREQ(root.span.name, "dist.sync.run");

  // Each retransmission sweep is timeout-driven, so causally a child of
  // the run root, never of another message.
  const auto sweeps = obs::find_spans(tree, "dist.sweep");
  ASSERT_EQ(sweeps.size(), faulted.retransmit_sweeps);
  for (const TraceNode* sweep : sweeps)
    EXPECT_EQ(sweep->span.parent_span_id, root.span.span_id);

  // The recovery interval (heal horizon → quiescence) hangs off the root
  // and is linked to the triggering plan by its seed attribute.
  const TraceNode* recovery = obs::find_span(tree, "dist.recovery");
  ASSERT_NE(recovery, nullptr);
  EXPECT_EQ(recovery->span.parent_span_id, root.span.span_id);
  EXPECT_DOUBLE_EQ(recovery->span.vt_begin, 6.0);
  EXPECT_GE(recovery->span.vt_end, recovery->span.vt_begin);
  EXPECT_EQ(recovery->span.attr0, plan.seed());
  EXPECT_EQ(recovery->span.attr1, faulted.retransmit_sweeps);

  // The plan's fiber cut is replayed as a child span of the root.
  const TraceNode* cut = obs::find_span(tree, "fault.span_down");
  ASSERT_NE(cut, nullptr);
  EXPECT_EQ(cut->span.parent_span_id, root.span.span_id);
  EXPECT_DOUBLE_EQ(cut->span.vt_begin, 0.0);
  EXPECT_DOUBLE_EQ(cut->span.vt_end, 4.0);
  EXPECT_EQ(cut->span.attr0, 1u);
  EXPECT_EQ(cut->span.attr1, 2u);

  // Node rounds may parent under seeding, another node round, or a sweep
  // — but never float: with zero orphans every parent is in the tree.
  EXPECT_FALSE(obs::find_spans(tree, "dist.node_round").empty());
}

TEST(DistTraceTest, AsyncHealedRunIsOneTree) {
  Rng rng(7);
  const WdmNetwork net =
      testing::random_network(20, 32, 3, 3, testing::ConvKind::kUniform, rng);
  SpanBuffer::global().clear();

  FaultPlan plan(5);
  plan.drop_messages(0.25, 8.0);
  AsyncOptions options;
  options.faults = &plan;
  const AsyncRouteResult result =
      async_route_semilightpath(net, NodeId{0}, NodeId{19}, 11, options);
  ASSERT_TRUE(result.converged);
  ASSERT_NE(result.trace_id, 0u);

  const TraceTree tree =
      obs::assemble_trace(SpanBuffer::global().snapshot(), result.trace_id);
  EXPECT_EQ(tree.orphans, 0u);
  ASSERT_EQ(tree.roots.size(), 1u);
  EXPECT_STREQ(tree.roots[0].span.name, "dist.async.run");
  for (const TraceNode* sweep : obs::find_spans(tree, "dist.sweep"))
    EXPECT_EQ(sweep->span.parent_span_id, tree.roots[0].span.span_id);
  EXPECT_FALSE(obs::find_spans(tree, "dist.node_event").empty());
}

TEST(DistTraceTest, SsspChainParentsFollowRelaxations) {
  SpanBuffer::global().clear();
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  g.add_link(NodeId{1}, NodeId{2}, 1.0);
  const DistributedSsspResult result = distributed_sssp(g, NodeId{0});
  ASSERT_NE(result.trace_id, 0u);
  EXPECT_DOUBLE_EQ(result.dist[2], 2.0);

  const TraceTree tree =
      obs::assemble_trace(SpanBuffer::global().snapshot(), result.trace_id);
  ASSERT_EQ(tree.roots.size(), 1u);
  EXPECT_STREQ(tree.roots[0].span.name, "dist.sssp.run");
  ASSERT_EQ(tree.roots[0].children.size(), 1u);
  EXPECT_EQ(tree.roots[0].children[0].span.node, 1u);
  ASSERT_EQ(tree.roots[0].children[0].children.size(), 1u);
  EXPECT_EQ(tree.roots[0].children[0].children[0].span.node, 2u);
}

TEST(TraceAssemblerTest, RendersJsonAndText) {
  SpanBuffer buffer(16);
  std::uint64_t trace = 0;
  {
    CausalSpan root("demo.root", &buffer);
    trace = root.trace_id();
    root.set_node(3);
    CausalSpan child("demo.child", root.context(), &buffer);
    child.set_virtual_interval(1.0, 2.0);
  }
  const TraceTree tree = obs::assemble_trace(buffer.snapshot(), trace);
  const std::string json = obs::trace_tree_to_json(tree);
  EXPECT_NE(json.find("\"demo.root\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":[{"), std::string::npos);
  const std::string text = obs::render_trace_tree(tree);
  EXPECT_NE(text.find("demo.root"), std::string::npos);
  EXPECT_NE(text.find("demo.child"), std::string::npos);
  EXPECT_NE(text.find("vt=[1,2]"), std::string::npos);
}

}  // namespace
}  // namespace lumen
