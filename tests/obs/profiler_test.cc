// Sampling-profiler semantics: weighted stack aggregation with
// self/total attribution, ring wraparound drop accounting, the ambient
// span-hook path (1-in-N close sampling), and the passive renderings
// (folded stacks, profile JSONL).
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>

namespace lumen::obs {
namespace {

#if LUMEN_OBS_ENABLED

/// The per-thread sample countdown is shared by every Profiler instance
/// and survives across tests.  Driving closes on a period-1 profiler
/// until one sample lands leaves the countdown at exactly 1, so the
/// next close on this thread is guaranteed to sample.
void sync_thread_countdown() {
  Profiler drain(/*capacity=*/8, /*sample_period=*/1);
  while (drain.total_samples() == 0) {
    drain.on_span_open("drain");
    drain.on_span_close(1);
  }
}

TEST(ProfilerTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Profiler(5, 1).capacity(), 8u);
  EXPECT_EQ(Profiler(8, 1).capacity(), 8u);
  EXPECT_EQ(Profiler(0, 1).capacity(), 2u);
}

TEST(ProfilerTest, SelfTimeSubtractsDirectChildrenOnly) {
  Profiler profiler(64, 1);
  const std::array<const char*, 3> abc = {"a", "b", "c"};
  profiler.record({abc.data(), 1}, /*duration_ns=*/1000, /*weight=*/1);
  profiler.record({abc.data(), 2}, /*duration_ns=*/300, /*weight=*/1);
  profiler.record({abc.data(), 3}, /*duration_ns=*/100, /*weight=*/1);

  const ProfileSnapshot snap = profiler.snapshot();
  EXPECT_EQ(snap.samples, 3u);
  EXPECT_EQ(snap.dropped, 0u);
  ASSERT_EQ(snap.entries.size(), 3u);
  // Entries are sorted by stack; self = total minus *direct* children
  // ("a" loses b's total, not c's — c is already inside b).
  EXPECT_EQ(snap.entries[0].stack, "a");
  EXPECT_EQ(snap.entries[0].total_ns, 1000u);
  EXPECT_EQ(snap.entries[0].self_ns, 700u);
  EXPECT_EQ(snap.entries[1].stack, "a;b");
  EXPECT_EQ(snap.entries[1].total_ns, 300u);
  EXPECT_EQ(snap.entries[1].self_ns, 200u);
  EXPECT_EQ(snap.entries[2].stack, "a;b;c");
  EXPECT_EQ(snap.entries[2].self_ns, 100u);
}

TEST(ProfilerTest, ChildExceedingParentClampsSelfAtZero) {
  // Sampling noise can weight a child above its parent; self time must
  // clamp at zero instead of wrapping.
  Profiler profiler(64, 1);
  const std::array<const char*, 2> ab = {"a", "b"};
  profiler.record({ab.data(), 1}, 100, 1);
  profiler.record({ab.data(), 2}, 500, 1);
  const ProfileSnapshot snap = profiler.snapshot();
  ASSERT_EQ(snap.entries.size(), 2u);
  EXPECT_EQ(snap.entries[0].self_ns, 0u);
  EXPECT_EQ(snap.entries[0].total_ns, 100u);
}

TEST(ProfilerTest, WeightMultipliesSamplesAndTime) {
  Profiler profiler(64, 1);
  const std::array<const char*, 1> a = {"a"};
  profiler.record({a.data(), 1}, 250, /*weight=*/8);
  const ProfileSnapshot snap = profiler.snapshot();
  ASSERT_EQ(snap.entries.size(), 1u);
  EXPECT_EQ(snap.entries[0].samples, 8u);
  EXPECT_EQ(snap.entries[0].total_ns, 2000u);
}

TEST(ProfilerTest, RingWrapKeepsNewestAndCountsDrops) {
  Profiler profiler(/*capacity=*/4, /*sample_period=*/1);
  static const char* const kNames[10] = {"s0", "s1", "s2", "s3", "s4",
                                         "s5", "s6", "s7", "s8", "s9"};
  for (int i = 0; i < 10; ++i)
    profiler.record({&kNames[i], 1}, 100, 1);
  EXPECT_EQ(profiler.total_samples(), 10u);
  EXPECT_EQ(profiler.dropped(), 6u);
  const ProfileSnapshot snap = profiler.snapshot();
  EXPECT_EQ(snap.samples, 4u);
  EXPECT_EQ(snap.dropped, 6u);
  ASSERT_EQ(snap.entries.size(), 4u);
  // Only the newest capacity-many samples survive.
  EXPECT_EQ(snap.entries[0].stack, "s6");
  EXPECT_EQ(snap.entries[3].stack, "s9");
  profiler.clear();
  EXPECT_EQ(profiler.total_samples(), 0u);
  EXPECT_TRUE(profiler.snapshot().entries.empty());
}

TEST(ProfilerTest, DeepStacksFoldIntoEighthAncestor) {
  Profiler profiler(64, 1);
  static const char* const kDeep[10] = {"f0", "f1", "f2", "f3", "f4",
                                        "f5", "f6", "f7", "f8", "f9"};
  profiler.record({kDeep, 10}, 100, 1);
  const ProfileSnapshot snap = profiler.snapshot();
  ASSERT_EQ(snap.entries.size(), 1u);
  EXPECT_EQ(snap.entries[0].stack, "f0;f1;f2;f3;f4;f5;f6;f7");
}

TEST(ProfilerTest, SpanHooksSampleEveryCloseAtPeriodOne) {
  sync_thread_countdown();
  Profiler profiler(64, /*sample_period=*/1);
  profiler.on_span_open("outer");
  profiler.on_span_open("inner");
  profiler.on_span_close(50);   // samples "outer;inner"
  profiler.on_span_close(200);  // samples "outer"
  const ProfileSnapshot snap = profiler.snapshot();
  ASSERT_EQ(snap.entries.size(), 2u);
  EXPECT_EQ(snap.entries[0].stack, "outer");
  EXPECT_EQ(snap.entries[0].total_ns, 200u);
  EXPECT_EQ(snap.entries[0].self_ns, 150u);
  EXPECT_EQ(snap.entries[1].stack, "outer;inner");
  EXPECT_EQ(snap.entries[1].total_ns, 50u);
}

TEST(ProfilerTest, PeriodNWeighsOneSampleForNCloses) {
  sync_thread_countdown();
  Profiler profiler(64, /*sample_period=*/4);
  for (int i = 0; i < 8; ++i) {
    profiler.on_span_open("stage");
    profiler.on_span_close(100);
  }
  // Closes 1 and 5 sample (countdown arrived at 1); each carries
  // weight 4, so the weighted sample count equals the close count.
  EXPECT_EQ(profiler.total_samples(), 2u);
  const ProfileSnapshot snap = profiler.snapshot();
  ASSERT_EQ(snap.entries.size(), 1u);
  EXPECT_EQ(snap.entries[0].samples, 8u);
  EXPECT_EQ(snap.entries[0].total_ns, 800u);
  // Normalizing period 0 means "every close".
  profiler.set_sample_period(0);
  EXPECT_EQ(profiler.sample_period(), 1u);
}

TEST(ProfilerTest, UnbalancedCloseIsDroppedSilently) {
  sync_thread_countdown();
  Profiler profiler(64, 1);
  profiler.on_span_close(100);  // no matching open
  EXPECT_EQ(profiler.total_samples(), 0u);
}

TEST(ProfilerTest, GlobalIsASingleton) {
  EXPECT_EQ(&Profiler::global(), &Profiler::global());
}

#endif  // LUMEN_OBS_ENABLED

TEST(ProfileSnapshotTest, FoldedRendersSelfTimeLines) {
  ProfileSnapshot snap;
  snap.entries = {{"svc.admit", 3, 100, 400},
                  {"svc.admit;svc.route", 3, 300, 300}};
  EXPECT_EQ(snap.folded(), "svc.admit 100\nsvc.admit;svc.route 300\n");
}

TEST(ProfileSnapshotTest, EntryJsonHasEveryField) {
  const ProfileEntry entry{"svc.admit;svc.route", 24, 9000, 12000};
  EXPECT_EQ(profile_entry_to_json(entry),
            "{\"type\":\"profile\",\"stack\":\"svc.admit;svc.route\","
            "\"samples\":24,\"self_ns\":9000,\"total_ns\":12000}");
}

}  // namespace
}  // namespace lumen::obs
