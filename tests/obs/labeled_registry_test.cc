// LabeledFamily semantics: per-TagSet children, the cardinality cap
// collapsing into overflow() with lumen.obs.labels_dropped accounting,
// histogram exemplars, and lossless concurrent labeled increments.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "obs/tagset.h"

namespace lumen::obs {
namespace {

// Everything here asserts enabled-mode semantics (real children, cap
// accounting, exemplars); the disabled stubs are covered by
// disabled_test.cc.
#if LUMEN_OBS_ENABLED

TEST(LabeledFamilyTest, SameTagsSameChildDistinctTagsDistinct) {
  Registry registry;
  auto& family = registry.labeled_counter("lumen.test.admitted");
  EXPECT_EQ(&family, &registry.labeled_counter("lumen.test.admitted"));
  Counter& t3 = family.at(TagSet{}.tenant(3));
  Counter& t4 = family.at(TagSet{}.tenant(4));
  EXPECT_NE(&t3, &t4);
  EXPECT_EQ(&t3, &family.at(TagSet{}.tenant(3)));
  t3.add(7);
  t4.add(1);
  EXPECT_EQ(family.at(TagSet{}.tenant(3)).value(), 7u);
  EXPECT_EQ(family.size(), 2u);
}

TEST(LabeledFamilyTest, EmptyTagSetLandsInOverflow) {
  Registry registry;
  auto& family = registry.labeled_counter("lumen.test.untagged");
  family.at(TagSet{}).add(5);
  EXPECT_EQ(family.overflow().value(), 5u);
  EXPECT_EQ(family.size(), 0u);
}

TEST(LabeledFamilyTest, EntriesAreSortedByCanonicalLabels) {
  Registry registry;
  auto& family = registry.labeled_counter("lumen.test.sorted");
  family.at(TagSet{}.tenant(2)).add(2);
  family.at(TagSet{}.tenant(1)).add(1);
  const auto entries = family.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "tenant=1");
  EXPECT_EQ(entries[0].second->value(), 1u);
  EXPECT_EQ(entries[1].first, "tenant=2");
}

TEST(LabeledFamilyTest, CardinalityCapCollapsesIntoOverflowAndCounts) {
  Registry registry;
  const std::uint64_t dropped_before =
      Registry::global().counter("lumen.obs.labels_dropped").value();
  LabeledFamily<Counter> family("lumen.test.capped", /*max_children=*/4);
  for (std::uint64_t t = 1; t <= 10; ++t)
    family.at(TagSet{}.tenant(t)).add();
  EXPECT_EQ(family.size(), 4u);
  EXPECT_EQ(family.dropped(), 6u);
  EXPECT_EQ(family.overflow().value(), 6u);
  // Children admitted before the cap keep their own counts.
  EXPECT_EQ(family.at(TagSet{}.tenant(1)).value(), 1u);
  // Post-cap sets keep resolving to overflow (no flapping).
  family.at(TagSet{}.tenant(10)).add();
  EXPECT_EQ(family.overflow().value(), 7u);
  EXPECT_EQ(Registry::global().counter("lumen.obs.labels_dropped").value(),
            dropped_before + 7);
}

TEST(LabeledFamilyTest, ResetZeroesChildrenButKeepsRegistrations) {
  Registry registry;
  auto& family = registry.labeled_counter("lumen.test.reset");
  family.at(TagSet{}.tenant(1)).add(9);
  family.reset();
  EXPECT_EQ(family.size(), 1u);
  EXPECT_EQ(family.at(TagSet{}.tenant(1)).value(), 0u);
  // Registry-wide reset also reaches labeled families.
  family.at(TagSet{}.tenant(1)).add(3);
  registry.reset();
  EXPECT_EQ(family.at(TagSet{}.tenant(1)).value(), 0u);
}

TEST(LabeledFamilyTest, LabeledEntriesListFamiliesByName) {
  Registry registry;
  registry.labeled_counter("b.family").at(TagSet{}.tenant(1)).add();
  registry.labeled_counter("a.family").at(TagSet{}.tenant(1)).add();
  registry.labeled_gauge("g.family").at(TagSet{}.shard(0)).set(0.5);
  registry.labeled_histogram("h.family").at(TagSet{}.tenant(1)).record(8);
  const auto counters = registry.labeled_counter_entries();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a.family");
  EXPECT_EQ(counters[1].first, "b.family");
  EXPECT_EQ(registry.labeled_gauge_entries().size(), 1u);
  EXPECT_EQ(registry.labeled_histogram_entries().size(), 1u);
}

TEST(LabeledFamilyTest, HistogramExemplarTracksLastTracePerBucket) {
  Registry registry;
  auto& family = registry.labeled_histogram("lumen.test.latency");
  LatencyHistogram& child = family.at(TagSet{}.tenant(3));
  child.record(100, /*trace_id=*/0xAAAA);
  child.record(100, /*trace_id=*/0xBBBB);  // same bucket: last wins
  child.record(100000, /*trace_id=*/0xCCCC);
  EXPECT_EQ(child.exemplar(LatencyHistogram::bucket_of(100)), 0xBBBBu);
  // worst_exemplar is the trace in the highest populated bucket.
  EXPECT_EQ(child.worst_exemplar(), 0xCCCCu);
  // trace_id 0 never overwrites a retained exemplar.
  child.record(100000, /*trace_id=*/0);
  EXPECT_EQ(child.worst_exemplar(), 0xCCCCu);
}

TEST(LabeledFamilyTest, ConcurrentLabeledIncrementsAreLossless) {
  Registry registry;
  auto& family = registry.labeled_counter("lumen.test.concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  constexpr std::uint64_t kTenants = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&family, t] {
      for (int i = 0; i < kPerThread; ++i)
        family.at(TagSet{}.tenant((t + i) % kTenants)).add();
    });
  }
  for (auto& t : threads) t.join();
  std::uint64_t total = 0;
  for (const auto& [labels, child] : family.entries()) total += child->value();
  EXPECT_EQ(family.size(), kTenants);
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(family.dropped(), 0u);
}

#endif  // LUMEN_OBS_ENABLED

}  // namespace
}  // namespace lumen::obs
