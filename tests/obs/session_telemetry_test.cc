#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/liang_shen.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/route_event.h"
#include "rwa/session_manager.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"

namespace lumen {
namespace {

/// A tiny chain 0 -> 1 -> 2 with two wavelengths everywhere.
WdmNetwork chain_net() {
  WdmNetwork net(3, 2, std::make_shared<UniformConversion>(0.25));
  for (std::uint32_t i = 0; i < 2; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{0}, 1.0);
    net.set_wavelength(e, Wavelength{1}, 1.0);
  }
  return net;
}

TEST(SessionTelemetryTest, OneEventPerOfferedRequest) {
  obs::RouteEventLog log;
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  manager.set_telemetry(&log);
  ASSERT_TRUE(manager.open(NodeId{0}, NodeId{2}).has_value());
  ASSERT_TRUE(manager.open(NodeId{0}, NodeId{2}).has_value());
  EXPECT_FALSE(manager.open(NodeId{0}, NodeId{2}).has_value());  // full

  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), manager.stats().offered);
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].sequence, i);
    EXPECT_EQ(events[i].source, 0u);
    EXPECT_EQ(events[i].target, 2u);
    EXPECT_EQ(events[i].policy, "semilightpath");
  }
  EXPECT_EQ(events[0].outcome, "carried");
  EXPECT_EQ(events[1].outcome, "carried");
  EXPECT_EQ(events[2].outcome, "blocked");
  // Blocked events report cost 0, never kInfiniteCost — `inf` is not a
  // valid JSON token in the JSONL export.
  EXPECT_DOUBLE_EQ(events[2].cost, 0.0);
  EXPECT_EQ(events[0].hops, 2u);
  EXPECT_GT(events[0].cost, 0.0);
  EXPECT_GT(events[0].aux_nodes, 0u);
  EXPECT_GT(events[0].relaxations, 0u);
}

TEST(SessionTelemetryTest, EventsSurviveJsonlRoundTrip) {
  obs::RouteEventLog log;
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  manager.set_telemetry(&log);
  (void)manager.open(NodeId{0}, NodeId{2});
  (void)manager.open(NodeId{0}, NodeId{2});
  (void)manager.open(NodeId{0}, NodeId{2});

  std::stringstream stream;
  obs::write_route_events_jsonl(stream, log.snapshot());
  const auto parsed = obs::read_route_events_jsonl(stream);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed, log.snapshot());
}

TEST(SessionTelemetryTest, MetricsSeriesSamplesOnPeriod) {
  obs::RouteEventLog log;
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  manager.set_telemetry(&log, /*metrics_every=*/2);
  (void)manager.open(NodeId{0}, NodeId{2});  // offered 1: no sample
  (void)manager.open(NodeId{0}, NodeId{2});  // offered 2: sample
  (void)manager.open(NodeId{0}, NodeId{2});  // offered 3 (blocked): no sample
  (void)manager.open(NodeId{0}, NodeId{2});  // offered 4 (blocked): sample

  const auto& series = manager.metrics_series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].offered, 2u);
  EXPECT_EQ(series[1].offered, 4u);
  EXPECT_EQ(series[0].active, 2u);
  EXPECT_DOUBLE_EQ(series[0].utilization, 1.0);  // all 4 pairs reserved
  EXPECT_EQ(series[0].metrics.free_pairs, 0u);
}

TEST(SessionTelemetryTest, SnapshotsWithoutEventLog) {
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  manager.set_telemetry(nullptr, /*metrics_every=*/1);
  (void)manager.open(NodeId{0}, NodeId{2});
  EXPECT_EQ(manager.metrics_series().size(), 1u);
}

TEST(SessionTelemetryTest, DetachStopsRecording) {
  obs::RouteEventLog log;
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  manager.set_telemetry(&log, 1);
  (void)manager.open(NodeId{0}, NodeId{2});
  manager.set_telemetry(nullptr, 0);
  (void)manager.open(NodeId{0}, NodeId{2});
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(manager.metrics_series().size(), 1u);
}

TEST(SessionTelemetryTest, FailSpanRecordsRerouteOrDropEvents) {
  // Ring gives an alternate route, so a span failure reroutes.
  Rng rng(7);
  const Topology topo = ring_topology(5);
  const Availability avail = full_availability(topo, 2, CostSpec::unit(), rng);
  WdmNetwork net =
      assemble_network(topo, 2, avail, std::make_shared<UniformConversion>(0.1));
  obs::RouteEventLog log;
  SessionManager manager(std::move(net), RoutingPolicy::kSemilightpath);
  manager.set_telemetry(&log);
  const auto id = manager.open(NodeId{0}, NodeId{1});
  ASSERT_TRUE(id.has_value());
  const auto report = manager.fail_span(NodeId{0}, NodeId{1});
  EXPECT_EQ(report.rerouted, 1u);

  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].outcome, "rerouted");
  // Sequence numbers stay strictly increasing across open/fail_span.
  EXPECT_GT(events[1].sequence, events[0].sequence);
}

TEST(SessionTelemetryTest, UtilizationGaugesTrackOccupancyAndFragmentation) {
  // One link, three wavelengths: open/close sessions and pin the
  // wavelength-occupancy gauges at every step.
  WdmNetwork net(2, 3, std::make_shared<UniformConversion>(0.25));
  const LinkId e = net.add_link(NodeId{0}, NodeId{1});
  for (std::uint32_t l = 0; l < 3; ++l)
    net.set_wavelength(e, Wavelength{l}, 1.0);
  SessionManager manager(std::move(net), RoutingPolicy::kSemilightpath);

  const auto gauge = [](const char* name) {
    return obs::Registry::global().gauge(name).value();
  };

  manager.update_utilization_gauges();
#if LUMEN_OBS_ENABLED
  EXPECT_EQ(gauge("lumen.rwa.util.spans_busy"), 0.0);
  EXPECT_EQ(gauge("lumen.rwa.util.busy_ratio"), 0.0);
  EXPECT_EQ(gauge("lumen.rwa.util.fragmentation"), 0.0);
#endif

  // Fill the link: three sessions claim all three wavelengths, one
  // each.  The assignment order is a routing-policy detail, so map each
  // session to its wavelength by diffing the residual across the open.
  std::vector<std::pair<SessionId, std::uint32_t>> opened;
  for (int i = 0; i < 3; ++i) {
    std::vector<bool> before;
    for (std::uint32_t l = 0; l < 3; ++l)
      before.push_back(
          manager.residual().is_available(LinkId{0}, Wavelength{l}));
    const auto id = manager.open(NodeId{0}, NodeId{1});
    ASSERT_TRUE(id.has_value());
    std::uint32_t claimed = 3;
    for (std::uint32_t l = 0; l < 3; ++l)
      if (before[l] &&
          !manager.residual().is_available(LinkId{0}, Wavelength{l}))
        claimed = l;
    ASSERT_LT(claimed, 3u) << "session did not claim a wavelength";
    opened.emplace_back(*id, claimed);
  }
  manager.update_utilization_gauges();
#if LUMEN_OBS_ENABLED
  EXPECT_EQ(gauge("lumen.rwa.util.spans_busy"), 1.0);
  EXPECT_NEAR(gauge("lumen.rwa.util.busy_ratio"), 1.0, 1e-12);
  // No free spectrum at all: fragmentation is defined as 0.
  EXPECT_EQ(gauge("lumen.rwa.util.fragmentation"), 0.0);
#endif

  // Close the sessions on the outer wavelengths, keeping wavelength 1
  // busy: free wavelengths {0, 2} are two runs of length one out of two
  // free slots = fragmentation 0.5.
  for (const auto& [id, wavelength] : opened)
    if (wavelength != 1) ASSERT_TRUE(manager.close(id));
  manager.update_utilization_gauges();
#if LUMEN_OBS_ENABLED
  EXPECT_EQ(gauge("lumen.rwa.util.spans_busy"), 1.0);
  EXPECT_NEAR(gauge("lumen.rwa.util.busy_ratio"), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(gauge("lumen.rwa.util.fragmentation"), 0.5, 1e-12);
#else
  // Disabled build: the gauges are inert stubs pinned at zero.
  EXPECT_EQ(gauge("lumen.rwa.util.fragmentation"), 0.0);
#endif
}

TEST(SessionTelemetryTest, RouteResultCarriesStageTelemetry) {
  // The router populates RouteResult::telemetry (built with obs enabled).
  const WdmNetwork net = chain_net();
  const RouteResult result = route_semilightpath(net, NodeId{0}, NodeId{2});
  ASSERT_TRUE(result.found);
#if LUMEN_OBS_ENABLED
  ASSERT_TRUE(result.telemetry.has_value());
  EXPECT_GE(result.telemetry->aux_build_seconds, 0.0);
  EXPECT_GE(result.telemetry->dijkstra_seconds, 0.0);
  EXPECT_GE(result.telemetry->path_extract_seconds, 0.0);
  EXPECT_GE(result.telemetry->total_seconds(),
            result.telemetry->dijkstra_seconds);
#endif
}

}  // namespace
}  // namespace lumen
