// End-to-end scenarios across modules: realistic topologies, occupancy
// workloads, centralized + distributed routing, all-pairs consistency.
#include <gtest/gtest.h>

#include <memory>

#include "core/all_pairs.h"
#include "core/cfz.h"
#include "core/liang_shen.h"
#include "core/state_dijkstra.h"
#include "dist/dist_router.h"
#include "graph/traversal.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

TEST(EndToEndTest, NsfnetWithOccupancyWorkload) {
  Rng rng(1001);
  const Topology topo = nsfnet_topology();
  const Availability avail =
      occupancy_availability(topo, 8, 40, CostSpec::distance(10.0), rng);
  const auto net = assemble_network(
      topo, 8, avail, std::make_shared<UniformConversion>(0.25));

  std::uint32_t found = 0, demands = 0;
  Rng pick(1002);
  for (const auto& [s, t] : random_demands(14, 30, pick)) {
    ++demands;
    const auto ls = route_semilightpath(net, s, t);
    const auto oracle = state_dijkstra_route(net, s, t);
    ASSERT_EQ(ls.found, oracle.found);
    if (!ls.found) continue;
    ++found;
    EXPECT_NEAR(ls.cost, oracle.cost, 1e-9);
    EXPECT_TRUE(ls.path.is_valid(net));
    // Distributed agrees too.
    const auto dist = distributed_route_semilightpath(net, s, t);
    ASSERT_TRUE(dist.found);
    EXPECT_NEAR(dist.cost, ls.cost, 1e-9);
  }
  // NSFNET is well connected: most demands should be routable even with
  // 40 pre-routed interferers on 8 wavelengths.
  EXPECT_GT(found, demands / 2);
}

TEST(EndToEndTest, SemilightpathBeatsLightpathUnderContention) {
  // The paper's motivation: when wavelength continuity cannot be
  // satisfied, conversion rescues connectivity.  Count blocked demands
  // under both routing modes on a congested network.
  Rng rng(1003);
  const Topology topo = grid_topology(5, 5);
  const Availability avail =
      occupancy_availability(topo, 6, 80, CostSpec::unit(), rng);
  const auto net = assemble_network(
      topo, 6, avail, std::make_shared<UniformConversion>(0.1));

  std::uint32_t light_blocked = 0, semi_blocked = 0;
  Rng pick(1004);
  for (const auto& [s, t] : random_demands(25, 40, pick)) {
    const auto semi = route_semilightpath(net, s, t);
    const auto light = route_lightpath(net, s, t);
    if (!semi.found) ++semi_blocked;
    if (!light.found) ++light_blocked;
    if (semi.found && light.found) {
      EXPECT_LE(semi.cost, light.cost + 1e-9);
    }
    // A lightpath is a semilightpath: light.found implies semi.found.
    if (light.found) {
      EXPECT_TRUE(semi.found);
    }
  }
  EXPECT_LE(semi_blocked, light_blocked);
}

TEST(EndToEndTest, TorusAllPairsConsistency) {
  Rng rng(1005);
  const Topology topo = torus_topology(3, 4);
  const Availability avail =
      uniform_availability(topo, 6, 2, 4, CostSpec::uniform(1.0, 2.0), rng);
  const auto net = assemble_network(
      topo, 6, avail,
      std::make_shared<RangeLimitedConversion>(2, 0.3, 0.1));

  AllPairsRouter router(net);
  const auto matrix = router.cost_matrix();
  const auto dist = distributed_all_pairs(net);
  for (std::uint32_t s = 0; s < 12; ++s) {
    for (std::uint32_t t = 0; t < 12; ++t) {
      if (s == t) continue;
      if (matrix[s][t] == kInfiniteCost) {
        EXPECT_EQ(dist.cost[s][t], kInfiniteCost);
      } else {
        EXPECT_NEAR(matrix[s][t], dist.cost[s][t], 1e-9) << s << "->" << t;
      }
    }
  }
}

TEST(EndToEndTest, SparseConvertersOnWaxman) {
  // Sparse wavelength conversion (converters at few nodes) on a Waxman
  // WAN; routers must agree and paths must only convert at converters.
  Rng rng(1006);
  const Topology topo = waxman_topology(40, 0.4, 0.2, rng);
  const Availability avail =
      uniform_availability(topo, 8, 2, 4, CostSpec::distance(5.0), rng);
  std::vector<NodeId> converters;
  for (std::uint32_t v = 0; v < 40; v += 5) converters.push_back(NodeId{v});
  auto conv = std::make_shared<SparseConversion>(
      converters, std::make_shared<UniformConversion>(0.2));
  const auto net = assemble_network(topo, 8, avail, conv);

  Rng pick(1007);
  for (const auto& [s, t] : random_demands(40, 20, pick)) {
    const auto ls = route_semilightpath(net, s, t);
    const auto oracle = state_dijkstra_route(net, s, t);
    ASSERT_EQ(ls.found, oracle.found);
    if (!ls.found) continue;
    EXPECT_NEAR(ls.cost, oracle.cost, 1e-9);
    for (const auto& sw : ls.switches) {
      EXPECT_TRUE(conv->is_converter(sw.node))
          << "conversion at non-converter node " << sw.node.value();
    }
  }
}

TEST(EndToEndTest, HubTrafficOnRing) {
  // Unidirectional ring: exactly one route exists per pair; verify costs
  // add up around the ring.
  Rng rng(1008);
  const Topology topo = ring_topology(10, false);
  const Availability avail = full_availability(topo, 3, CostSpec::unit(), rng);
  const auto net =
      assemble_network(topo, 3, avail, std::make_shared<NoConversion>());
  for (std::uint32_t t = 1; t < 10; ++t) {
    const auto r = route_semilightpath(net, NodeId{0}, NodeId{t});
    ASSERT_TRUE(r.found);
    EXPECT_DOUBLE_EQ(r.cost, static_cast<double>(t));
    EXPECT_EQ(r.path.length(), t);
    EXPECT_TRUE(r.path.is_lightpath());
  }
}

TEST(EndToEndTest, CfzAndLiangShenAgreeOnRealisticNetwork) {
  Rng rng(1009);
  const Topology topo = nsfnet_topology();
  const Availability avail =
      uniform_availability(topo, 6, 2, 5, CostSpec::distance(8.0), rng);
  const auto net = assemble_network(
      topo, 6, avail, std::make_shared<UniformConversion>(0.15));
  for (std::uint32_t s = 0; s < 14; s += 2) {
    for (std::uint32_t t = 1; t < 14; t += 3) {
      if (s == t) continue;
      const auto ls = route_semilightpath(net, NodeId{s}, NodeId{t});
      const auto cfz = cfz_route(net, NodeId{s}, NodeId{t});
      ASSERT_EQ(ls.found, cfz.found) << s << "->" << t;
      if (ls.found) {
        EXPECT_NEAR(ls.cost, cfz.cost, 1e-9) << s << "->" << t;
      }
    }
  }
}

}  // namespace
}  // namespace lumen
