// Cross-module integration: the full static RWA pipeline.
//
// Route a traffic matrix with the Liang–Shen router (conversion-free
// regime so routes are plain paths), build the conflict graph of the
// chosen routes, color it, and check the wavelength count against the
// congestion lower bound and the hardware budget — the classic two-phase
// RWA workflow assembled entirely from this library's pieces.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/liang_shen.h"
#include "graph/traversal.h"
#include "rwa/session_manager.h"
#include "rwa/wavelength_assignment.h"
#include "tests/test_util.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"

namespace lumen {
namespace {

/// Routes each demand on the cheapest path (single wavelength universe so
/// route choice is purely topological), returning the link sequences.
std::vector<RoutedPath> route_demands(
    const WdmNetwork& net,
    const std::vector<std::pair<NodeId, NodeId>>& demands) {
  std::vector<RoutedPath> routed;
  for (const auto& [s, t] : demands) {
    const RouteResult r = route_semilightpath(net, s, t);
    if (!r.found) continue;
    RoutedPath p;
    for (const Hop& hop : r.path.hops()) p.links.push_back(hop.link);
    routed.push_back(std::move(p));
  }
  return routed;
}

WdmNetwork routing_substrate(const Topology& topo) {
  // One wavelength, unit costs: the router picks hop-shortest paths.
  Rng rng(71);
  const Availability avail = full_availability(topo, 1, CostSpec::unit(), rng);
  return assemble_network(topo, 1, avail, std::make_shared<NoConversion>());
}

TEST(StaticRwaPipelineTest, NsfnetPermutationTraffic) {
  const Topology topo = nsfnet_topology();
  const auto net = routing_substrate(topo);
  // Permutation traffic: every node sends to its index-reverse peer.
  std::vector<std::pair<NodeId, NodeId>> demands;
  for (std::uint32_t v = 0; v < 14; ++v) {
    if (v != 13 - v) demands.emplace_back(NodeId{v}, NodeId{13 - v});
  }
  const auto routed = route_demands(net, demands);
  ASSERT_EQ(routed.size(), demands.size());

  for (const auto heuristic :
       {AssignmentHeuristic::kFirstFit, AssignmentHeuristic::kDsatur}) {
    const auto assignment = assign_wavelengths(routed, heuristic);
    EXPECT_TRUE(assignment_is_valid(routed, assignment.wavelength));
    EXPECT_GE(assignment.wavelengths_used, congestion_lower_bound(routed));
    // Shortest-path permutation traffic on NSFNET is mild: a handful of
    // wavelengths suffices (way below one-per-demand).
    EXPECT_LT(assignment.wavelengths_used, demands.size() / 2);
  }
}

TEST(StaticRwaPipelineTest, RingAllToOneNeedsCongestionWavelengths) {
  // All-to-one traffic on a unidirectional ring: the last link into the
  // sink carries every demand, so congestion == #demands and coloring
  // must use exactly that many wavelengths.
  const Topology topo = ring_topology(6, false);
  const auto net = routing_substrate(topo);
  std::vector<std::pair<NodeId, NodeId>> demands;
  for (std::uint32_t v = 1; v < 6; ++v)
    demands.emplace_back(NodeId{v}, NodeId{0});
  const auto routed = route_demands(net, demands);
  ASSERT_EQ(routed.size(), 5u);
  const auto bound = congestion_lower_bound(routed);
  EXPECT_EQ(bound, 5u);  // link 5->0 carries all of them
  const auto assignment =
      assign_wavelengths(routed, AssignmentHeuristic::kDsatur);
  EXPECT_EQ(assignment.wavelengths_used, bound);
  EXPECT_TRUE(assignment_is_valid(routed, assignment.wavelength));
}

TEST(StaticRwaPipelineTest, RandomTrafficOnHierarchicalWan) {
  Rng rng(72);
  const Topology topo = hierarchical_topology(4, 4, 1, rng);
  const auto net = routing_substrate(topo);
  Rng demand_rng(73);
  const auto demands = random_demands(topo.num_nodes, 40, demand_rng);
  const auto routed = route_demands(net, demands);
  ASSERT_EQ(routed.size(), 40u);  // strongly connected: all routable

  const auto ff = assign_wavelengths(routed, AssignmentHeuristic::kFirstFit);
  const auto ds = assign_wavelengths(routed, AssignmentHeuristic::kDsatur);
  EXPECT_TRUE(assignment_is_valid(routed, ff.wavelength));
  EXPECT_TRUE(assignment_is_valid(routed, ds.wavelength));
  const auto bound = congestion_lower_bound(routed);
  EXPECT_GE(ff.wavelengths_used, bound);
  EXPECT_GE(ds.wavelengths_used, bound);
  // Both heuristics stay within a small factor of the lower bound on
  // this workload (documented expectation, not a theorem).
  EXPECT_LE(ds.wavelengths_used, 2 * bound);
}

TEST(StaticRwaPipelineTest, ConversionBeatsContinuityBoundOnNsfnet) {
  // Deterministic regression of the capacity_planning capstone: 60
  // gravity demands on NSFNET need 9 wavelengths under wavelength
  // continuity (congestion bound) but fit into 6 with conversion.
  const Topology topo = nsfnet_topology();
  Rng demand_rng(5);
  const auto demands = gravity_demands(topo, 60, demand_rng);

  // Continuity bound from the routed shortest paths.
  Rng probe_rng(5 ^ 0xfaceULL);
  const auto probe = assemble_network(
      topo, 1, full_availability(topo, 1, CostSpec::unit(), probe_rng),
      std::make_shared<NoConversion>());
  std::vector<RoutedPath> routed;
  for (const auto& [s, t] : demands) {
    const RouteResult r = route_semilightpath(probe, s, t);
    ASSERT_TRUE(r.found);
    RoutedPath p;
    for (const Hop& hop : r.path.hops()) p.links.push_back(hop.link);
    routed.push_back(std::move(p));
  }
  const std::uint32_t bound = congestion_lower_bound(routed);
  EXPECT_EQ(bound, 9u);

  // Conversion-capable provisioning carries everything with fewer
  // wavelengths than the continuity bound.
  const std::uint32_t k = 6;
  Rng avail_rng(5 ^ k);
  SessionManager manager(
      assemble_network(topo, k,
                       full_availability(topo, k, CostSpec::unit(),
                                         avail_rng),
                       std::make_shared<UniformConversion>(0.1)),
      RoutingPolicy::kSemilightpath);
  std::uint32_t blocked = 0;
  // Longest-first ordering, as in the example.
  std::vector<std::pair<NodeId, NodeId>> ordered(demands.begin(),
                                                 demands.end());
  const Digraph& g = manager.residual().topology();
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const auto& a, const auto& b) {
                     return bfs_hops(g, a.first, a.second) >
                            bfs_hops(g, b.first, b.second);
                   });
  for (const auto& [s, t] : ordered) {
    if (!manager.open(s, t).has_value()) ++blocked;
  }
  EXPECT_EQ(blocked, 0u) << "k=6 with conversion must carry the full set "
                            "that continuity routing needs 9 for";
  EXPECT_LT(k, bound);
}

}  // namespace
}  // namespace lumen
