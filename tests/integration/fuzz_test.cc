// Fuzz-style differential sweep: many random networks, including
// degenerate shapes, checked against the independent state-space oracle.
// Any disagreement or thrown invariant is a bug.
#include <gtest/gtest.h>

#include <memory>

#include "core/constrained.h"
#include "core/goal_directed.h"
#include "core/liang_shen.h"
#include "core/state_dijkstra.h"
#include "dist/dist_router.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::fuzz_network;

TEST(FuzzTest, RoutersAgreeWithOracleAcrossManySeeds) {
  std::uint32_t routed = 0;
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    Rng rng(seed * 2654435761ULL + 17);
    const WdmNetwork net = fuzz_network(rng);
    const auto s =
        NodeId{static_cast<std::uint32_t>(rng.next_below(net.num_nodes()))};
    auto t =
        NodeId{static_cast<std::uint32_t>(rng.next_below(net.num_nodes()))};
    if (s == t) t = NodeId{(t.value() + 1) % net.num_nodes()};

    const auto oracle = state_dijkstra_route(net, s, t);
    const auto ls = route_semilightpath(net, s, t);
    const auto astar = route_semilightpath_astar(net, s, t);
    const auto dist = distributed_route_semilightpath(net, s, t);

    ASSERT_EQ(ls.found, oracle.found) << "seed " << seed;
    ASSERT_EQ(astar.found, oracle.found) << "seed " << seed;
    ASSERT_EQ(dist.found, oracle.found) << "seed " << seed;
    if (!oracle.found) continue;
    ++routed;
    EXPECT_NEAR(ls.cost, oracle.cost, 1e-9) << "seed " << seed;
    EXPECT_NEAR(astar.cost, oracle.cost, 1e-9) << "seed " << seed;
    EXPECT_NEAR(dist.cost, oracle.cost, 1e-9) << "seed " << seed;
    EXPECT_TRUE(ls.path.is_valid(net)) << "seed " << seed;
    EXPECT_NEAR(ls.path.cost(net), ls.cost, 1e-9) << "seed " << seed;

    // The bounded router with a generous budget must agree too.
    const auto bounded = route_semilightpath_bounded(
        net, s, t, net.num_nodes() * net.num_wavelengths());
    ASSERT_TRUE(bounded.found) << "seed " << seed;
    EXPECT_NEAR(bounded.cost, oracle.cost, 1e-9) << "seed " << seed;
  }
  // The generator must not be degenerate-only: a healthy fraction of the
  // seeds produce routable instances (the rest exercise unreachable and
  // empty-availability paths).
  EXPECT_GE(routed, 25u);
}

TEST(FuzzTest, ZeroCostNetworksBehave) {
  // All-zero costs: every reachable pair has optimal cost 0; ties must not
  // break invariants anywhere.
  WdmNetwork net(6, 2, std::make_shared<UniformConversion>(0.0));
  Rng rng(99);
  for (int i = 0; i < 15; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(6));
    const auto v = static_cast<std::uint32_t>(rng.next_below(6));
    if (u == v) continue;
    const LinkId e = net.add_link(NodeId{u}, NodeId{v});
    net.set_wavelength(e, Wavelength{0}, 0.0);
    net.set_wavelength(e, Wavelength{1}, 0.0);
  }
  for (std::uint32_t s = 0; s < 6; ++s) {
    for (std::uint32_t t = 0; t < 6; ++t) {
      if (s == t) continue;
      const auto ls = route_semilightpath(net, NodeId{s}, NodeId{t});
      const auto oracle = state_dijkstra_route(net, NodeId{s}, NodeId{t});
      ASSERT_EQ(ls.found, oracle.found);
      if (ls.found) {
        EXPECT_DOUBLE_EQ(ls.cost, 0.0);
        EXPECT_DOUBLE_EQ(oracle.cost, 0.0);
      }
    }
  }
}

TEST(FuzzTest, SingleWavelengthNetworkIsPlainShortestPath) {
  // k = 1 degenerates to ordinary shortest paths; cross-check against
  // Dijkstra on the bare weighted digraph.
  Rng rng(77);
  WdmNetwork net(12, 1, std::make_shared<NoConversion>());
  Digraph bare(12);
  for (int i = 0; i < 40; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(12));
    const auto v = static_cast<std::uint32_t>(rng.next_below(12));
    if (u == v) continue;
    const double w = rng.next_double_in(0.5, 3.0);
    const LinkId e = net.add_link(NodeId{u}, NodeId{v});
    net.set_wavelength(e, Wavelength{0}, w);
    bare.add_link(NodeId{u}, NodeId{v}, w);
  }
  const auto tree = dijkstra(bare, NodeId{0});
  for (std::uint32_t t = 1; t < 12; ++t) {
    const auto r = route_semilightpath(net, NodeId{0}, NodeId{t});
    if (tree.dist[t] == kInfiniteCost) {
      EXPECT_FALSE(r.found);
    } else {
      ASSERT_TRUE(r.found);
      EXPECT_NEAR(r.cost, tree.dist[t], 1e-9);
    }
  }
}

}  // namespace
}  // namespace lumen
