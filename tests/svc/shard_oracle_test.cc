// Concurrency oracle for the sharded routing service.
//
// Three layers of checking, all deterministic-seeded (every failed
// assertion prints a one-line REPLAY string that reproduces the run):
//
//   1. Double-booking audit: after a concurrent churn run quiesces, no
//      (link, λ) slot may be held by two sessions, every held slot's
//      SlotTable owner must match the session that claims it, and the
//      table's occupancy must equal the live sessions' footprint.
//   2. Linearizability: every commit draws its log seq after its claims
//      and every release before its frees (see svc/slot_table.h), so the
//      recorded history replayed SERIALLY in seq order into a fresh
//      occupancy table must never conflict.  A conflict would mean the
//      concurrent decisions have no linearization.
//   3. Serial equivalence: driven single-threaded, the service (any
//      shard count — cross-shard re-sync is synchronous in that regime)
//      must make exactly the admit/block decisions of the serial
//      SessionManager oracle at exactly the same costs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "rwa/session_manager.h"
#include "svc/service.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace lumen::svc {
namespace {

using lumen::testing::random_network;

/// The one-line reproduction recipe printed with every failed assertion.
std::string replay(std::uint64_t net_seed, std::uint32_t shards,
                   std::uint32_t threads) {
  return "REPLAY: net_seed=" + std::to_string(net_seed) +
         " shards=" + std::to_string(shards) +
         " threads=" + std::to_string(threads);
}

/// Replays the commit log serially; returns "" on success, else a
/// description of the first conflict (which disproves linearizability).
std::string check_linearization(const std::vector<CommitRecord>& log,
                                std::uint32_t num_slots) {
  std::vector<std::uint64_t> owner(num_slots, 0);
  for (const CommitRecord& record : log) {
    for (const std::uint32_t slot : record.slots) {
      if (slot >= num_slots) return "slot out of range";
      if (!record.is_release) {
        if (owner[slot] != 0) {
          return "seq " + std::to_string(record.seq) + " claims slot " +
                 std::to_string(slot) + " already owned in serial replay";
        }
        owner[slot] = record.owner;
      } else {
        if (owner[slot] != record.owner) {
          return "seq " + std::to_string(record.seq) + " releases slot " +
                 std::to_string(slot) + " it does not own in serial replay";
        }
        owner[slot] = 0;
      }
    }
  }
  return "";
}

/// Quiesced audit of one service instance (layers 1 and 2).
void audit_service(RoutingService& service, const std::string& context) {
  service.drain_all();
  const SlotTable& table = service.slot_table();

  // Layer 1: unique slot ownership, consistent with the table.
  std::vector<std::uint64_t> seen(table.num_slots(), 0);
  std::uint64_t held = 0;
  for (const auto& [owner_bits, slots] : service.active_reservations()) {
    for (const std::uint32_t slot : slots) {
      ASSERT_LT(slot, table.num_slots()) << context;
      ASSERT_EQ(seen[slot], 0u)
          << context << " slot " << slot << " double-booked by sessions "
          << seen[slot] << " and " << owner_bits;
      seen[slot] = owner_bits;
      ASSERT_EQ(table.owner(slot), owner_bits)
          << context << " slot " << slot
          << " table owner disagrees with the session that claims it";
      ++held;
    }
  }
  ASSERT_EQ(table.occupied(), held)
      << context << " table occupancy != live sessions' footprint";

  // Layer 2: the recorded history linearizes.
  const std::string conflict =
      check_linearization(service.commit_log().snapshot(), table.num_slots());
  ASSERT_EQ(conflict, "") << context << " " << conflict;

  // Accounting closes.
  const ServiceStats stats = service.stats();
  ASSERT_EQ(stats.offered, stats.admitted + stats.blocked +
                               stats.quota_denied + stats.aborted)
      << context;
  ASSERT_EQ(stats.active, stats.admitted - stats.released) << context;
}

struct WorkerResult {
  std::uint64_t opened = 0;
  std::uint64_t closed = 0;
};

/// One churn worker: opens random pairs, closes only its own sessions.
WorkerResult churn(RoutingService& service, TenantId tenant,
                   std::uint32_t num_nodes, std::uint64_t seed,
                   std::uint32_t ops) {
  Rng rng(seed);
  std::vector<SvcSessionId> mine;
  WorkerResult result;
  for (std::uint32_t op = 0; op < ops; ++op) {
    if (!mine.empty() && rng.next_bool(0.45)) {
      const std::size_t pick = rng.next_below(mine.size());
      const SvcSessionId id = mine[pick];
      mine[pick] = mine.back();
      mine.pop_back();
      if (service.close(id)) ++result.closed;
    } else {
      const auto s = NodeId{static_cast<std::uint32_t>(
          rng.next_below(num_nodes))};
      auto t = NodeId{static_cast<std::uint32_t>(
          rng.next_below(num_nodes))};
      if (s == t) t = NodeId{(t.value() + 1) % num_nodes};
      const AdmitTicket ticket = service.open(tenant, s, t);
      if (ticket.status == AdmitStatus::kAdmitted) {
        mine.push_back(ticket.id);
        ++result.opened;
      }
    }
  }
  // Drain half of what's left so the audit sees both live and released
  // sessions.
  for (std::size_t i = 0; i + 1 < mine.size(); i += 2) {
    if (service.close(mine[i])) ++result.closed;
  }
  return result;
}

TEST(ShardOracleTest, ConcurrentChurnAcross50NetsNeverDoubleBooks) {
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint32_t kOpsPerThread = 60;
  std::uint64_t total_admitted = 0;
  std::uint64_t total_conflicts = 0;

  for (std::uint64_t net_seed = 0; net_seed < 50; ++net_seed) {
    Rng rng(net_seed * 6364136223846793005ULL + 1442695040888963407ULL);
    const WdmNetwork net =
        random_network(/*n=*/14, /*extra_links=*/16, /*k=*/4, /*k0_max=*/4,
                       testing::ConvKind::kUniform, rng);

    ServiceOptions options;
    // Mix shard counts: 1 (pure striping on one mutex), 4 (cross-shard
    // races and re-sync traffic).
    options.num_shards = (net_seed % 7 == 0) ? 1 : 4;
    options.num_tenants = 2;
    options.record_commit_log = true;
    options.query.goal_directed = true;
    if (net_seed % 5 == 0) {
      options.engine.build_hierarchy = true;
      options.query.use_hierarchy = true;
    }
    RoutingService service(net, options);
    if (net_seed % 3 == 0) {
      service.set_quota(TenantId{1}, 5);  // starve tenant 1
    }

    std::vector<std::thread> workers;
    std::vector<WorkerResult> results(kThreads);
    for (std::uint32_t w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        results[w] = churn(service, TenantId{w % 2}, net.num_nodes(),
                           net_seed * 1000 + w, kOpsPerThread);
      });
    }
    for (std::thread& worker : workers) worker.join();

    const std::string context =
        replay(net_seed, options.num_shards, kThreads);
    audit_service(service, context);

    if (net_seed % 3 == 0) {
      EXPECT_LE(service.tenant_stats(TenantId{1}).active, 5u) << context;
    }
    const ServiceStats stats = service.stats();
    total_admitted += stats.admitted;
    total_conflicts += stats.commit_conflicts;
  }
  // The sweep must actually exercise the machinery, not vacuously pass.
  EXPECT_GT(total_admitted, 1000u);
  // Conflicts are timing-dependent; just surface the count.
  RecordProperty("commit_conflicts", static_cast<int>(total_conflicts));
}

TEST(ShardOracleTest, SerialDecisionsMatchSessionManagerOracle) {
  for (std::uint64_t net_seed = 0; net_seed < 12; ++net_seed) {
    Rng rng(net_seed * 2654435761ULL + 17);
    const WdmNetwork net =
        random_network(/*n=*/12, /*extra_links=*/14, /*k=*/3, /*k0_max=*/3,
                       testing::ConvKind::kUniform, rng);

    for (const std::uint32_t shards : {1u, 3u}) {
      ServiceOptions options;
      options.num_shards = shards;
      options.record_commit_log = true;
      // Plain (non-goal-directed) queries: bit-identical search order to
      // the kSemilightpathEngine oracle policy.
      options.query = RouteEngine::QueryOptions{};
      RoutingService service(net, options);
      SessionManager oracle(net, RoutingPolicy::kSemilightpathEngine);

      const std::string context =
          replay(net_seed, shards, /*threads=*/1) + " (serial equivalence)";

      Rng ops(net_seed * 977 + 5);
      // Parallel id maps: tape index -> (service id, oracle id).
      std::vector<std::pair<SvcSessionId, SessionId>> live;
      for (std::uint32_t op = 0; op < 120; ++op) {
        if (!live.empty() && ops.next_bool(0.4)) {
          const std::size_t pick = ops.next_below(live.size());
          const auto [svc_id, oracle_id] = live[pick];
          live[pick] = live.back();
          live.pop_back();
          ASSERT_TRUE(service.close(svc_id)) << context;
          ASSERT_TRUE(oracle.close(oracle_id)) << context;
          continue;
        }
        const auto s = NodeId{static_cast<std::uint32_t>(
            ops.next_below(net.num_nodes()))};
        auto t = NodeId{static_cast<std::uint32_t>(
            ops.next_below(net.num_nodes()))};
        if (s == t) t = NodeId{(t.value() + 1) % net.num_nodes()};

        const AdmitTicket ticket = service.open(TenantId{0}, s, t);
        const std::optional<SessionId> oracle_id = oracle.open(s, t);
        ASSERT_EQ(ticket.status == AdmitStatus::kAdmitted,
                  oracle_id.has_value())
            << context << " op=" << op << " s=" << s.value()
            << " t=" << t.value() << ": service and oracle disagree";
        if (oracle_id.has_value()) {
          ASSERT_NEAR(ticket.cost, oracle.find(*oracle_id)->cost, 1e-9)
              << context << " op=" << op;
          live.emplace_back(ticket.id, *oracle_id);
        }
      }
      ASSERT_EQ(service.active_sessions(), oracle.active_sessions())
          << context;
      audit_service(service, context);
    }
  }
}

TEST(ShardOracleTest, AbortedAdmissionsLeakNothing) {
  // A single-wavelength chain: every session wants the same slots, so
  // concurrent opens collide constantly; afterwards the table must hold
  // exactly the survivors' slots and nothing else.
  WdmNetwork net(4, 1, std::make_shared<NoConversion>());
  for (std::uint32_t i = 0; i < 3; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{0}, 1.0);
  }
  for (std::uint64_t round = 0; round < 20; ++round) {
    ServiceOptions options;
    options.num_shards = 4;
    options.record_commit_log = true;
    RoutingService service(net, options);

    std::vector<std::thread> workers;
    std::vector<AdmitTicket> tickets(4);
    for (std::uint32_t w = 0; w < 4; ++w) {
      workers.emplace_back([&, w] {
        tickets[w] = service.open(TenantId{0}, NodeId{0}, NodeId{3});
      });
    }
    for (std::thread& worker : workers) worker.join();

    std::uint32_t admitted = 0;
    for (const AdmitTicket& ticket : tickets) {
      if (ticket.status == AdmitStatus::kAdmitted) ++admitted;
    }
    const std::string context = "REPLAY: round=" + std::to_string(round);
    // The chain has capacity for exactly one 0->3 session.
    ASSERT_EQ(admitted, 1u) << context;
    ASSERT_EQ(service.slot_table().occupied(), 3u) << context;
    audit_service(service, context);
  }
}

}  // namespace
}  // namespace lumen::svc
