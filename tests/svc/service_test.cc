// Unit coverage for the svc building blocks: session-id packing, the
// atomic SlotTable (two-phase claim/rollback), the commit log, and the
// RoutingService front-end (admission outcomes, quotas, tenant/service
// accounting, SLO rule wiring) on the paper's example network.
#include "svc/service.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "svc/slot_table.h"
#include "svc/types.h"
#include "tests/test_util.h"

namespace lumen::svc {
namespace {

using lumen::testing::paper_example_network;

TEST(SvcSessionIdTest, PacksShardAndSequence) {
  EXPECT_FALSE(SvcSessionId{}.valid());
  EXPECT_EQ(SvcSessionId{}.bits(), 0u);

  const SvcSessionId id = SvcSessionId::make(3, 41);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.shard(), 3u);
  EXPECT_EQ(id.seq(), 41u);
  EXPECT_EQ(SvcSessionId::from_bits(id.bits()), id);

  // Max shard, large seq: fields stay separable.
  const SvcSessionId big = SvcSessionId::make(0xffff, (1ULL << 48) - 1);
  EXPECT_EQ(big.shard(), 0xffffu);
  EXPECT_EQ(big.seq(), (1ULL << 48) - 1);
}

TEST(SvcSessionIdTest, StatusNames) {
  EXPECT_STREQ(admit_status_name(AdmitStatus::kAdmitted), "admitted");
  EXPECT_STREQ(admit_status_name(AdmitStatus::kBlocked), "blocked");
  EXPECT_STREQ(admit_status_name(AdmitStatus::kQuotaDenied), "quota_denied");
  EXPECT_STREQ(admit_status_name(AdmitStatus::kAborted), "aborted");
}

TEST(SlotTableTest, MapsEveryBasePairDensely) {
  const WdmNetwork net = paper_example_network();
  const SlotTable table(net);
  EXPECT_EQ(table.num_slots(), net.total_link_wavelengths());
  EXPECT_EQ(table.occupied(), 0u);

  std::uint64_t mapped = 0;
  for (std::uint32_t e = 0; e < net.num_links(); ++e) {
    for (const LinkWavelength& lw : net.available(LinkId{e})) {
      const std::uint32_t slot = table.slot_of(LinkId{e}, lw.lambda);
      ASSERT_NE(slot, SlotTable::kInvalidSlot);
      EXPECT_EQ(table.link_of(slot), LinkId{e});
      EXPECT_EQ(table.lambda_of(slot), lw.lambda);
      EXPECT_DOUBLE_EQ(table.base_cost(slot), lw.cost);
      ++mapped;
    }
    // A wavelength outside the base Λ(e) has no slot.
    for (std::uint32_t l = 0; l < net.num_wavelengths(); ++l) {
      if (!net.is_available(LinkId{e}, Wavelength{l})) {
        EXPECT_EQ(table.slot_of(LinkId{e}, Wavelength{l}),
                  SlotTable::kInvalidSlot);
      }
    }
  }
  EXPECT_EQ(mapped, table.num_slots());
}

TEST(SlotTableTest, ClaimReleaseLifecycle) {
  const WdmNetwork net = paper_example_network();
  SlotTable table(net);
  const std::uint64_t alice = SvcSessionId::make(0, 1).bits();
  const std::uint64_t bob = SvcSessionId::make(1, 1).bits();

  EXPECT_TRUE(table.try_claim(0, alice));
  EXPECT_EQ(table.owner(0), alice);
  EXPECT_FALSE(table.try_claim(0, bob));    // held
  EXPECT_FALSE(table.release(0, bob));      // not the owner
  EXPECT_EQ(table.owner(0), alice);
  EXPECT_TRUE(table.release(0, alice));
  EXPECT_EQ(table.owner(0), 0u);
  EXPECT_TRUE(table.try_claim(0, bob));     // free again
  EXPECT_EQ(table.occupied(), 1u);
}

TEST(SlotTableTest, ClaimAllRollsBackOnConflict) {
  const WdmNetwork net = paper_example_network();
  SlotTable table(net);
  const std::uint64_t alice = SvcSessionId::make(0, 1).bits();
  const std::uint64_t bob = SvcSessionId::make(1, 1).bits();

  ASSERT_TRUE(table.try_claim(2, bob));  // pre-claim the middle slot

  const std::vector<std::uint32_t> want = {0, 1, 2, 3};
  std::uint32_t conflict_pos = 99;
  EXPECT_FALSE(table.claim_all(want, alice, &conflict_pos));
  EXPECT_EQ(conflict_pos, 2u);
  // Two-phase abort: slots 0 and 1 were rolled back.
  EXPECT_EQ(table.owner(0), 0u);
  EXPECT_EQ(table.owner(1), 0u);
  EXPECT_EQ(table.owner(2), bob);
  EXPECT_EQ(table.owner(3), 0u);
  EXPECT_EQ(table.occupied(), 1u);

  ASSERT_TRUE(table.release(2, bob));
  EXPECT_TRUE(table.claim_all(want, alice, &conflict_pos));
  EXPECT_EQ(table.occupied(), 4u);
  table.release_all(want, alice);
  EXPECT_EQ(table.occupied(), 0u);
}

TEST(CommitLogTest, DisabledByDefaultSnapshotSorted) {
  CommitLog log;
  EXPECT_FALSE(log.enabled());
  log.enable();
  ASSERT_TRUE(log.enabled());
  const std::uint64_t a = log.next_seq();
  const std::uint64_t b = log.next_seq();
  EXPECT_LT(a, b);
  log.append(CommitRecord{b, true, 7, {1}});
  log.append(CommitRecord{a, false, 7, {1}});
  const std::vector<CommitRecord> sorted = log.snapshot();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].seq, a);
  EXPECT_FALSE(sorted[0].is_release);
  EXPECT_EQ(sorted[1].seq, b);
  log.clear();
  EXPECT_TRUE(log.snapshot().empty());
}

TEST(RoutingServiceTest, AdmitsRoutesAndReleases) {
  const WdmNetwork net = paper_example_network();
  ServiceOptions options;
  options.num_shards = 2;
  RoutingService service(net, options);

  const AdmitTicket ticket =
      service.open(TenantId{0}, NodeId{0}, NodeId{6});
  ASSERT_EQ(ticket.status, AdmitStatus::kAdmitted);
  EXPECT_TRUE(ticket.id.valid());
  EXPECT_GT(ticket.hops, 0u);
  EXPECT_GT(ticket.cost, 0.0);
  EXPECT_EQ(service.active_sessions(), 1u);
  EXPECT_EQ(service.slot_table().occupied(), ticket.hops);

  EXPECT_TRUE(service.close(ticket.id));
  EXPECT_EQ(service.active_sessions(), 0u);
  EXPECT_EQ(service.slot_table().occupied(), 0u);
  // Double close and unknown ids are clean no-ops.
  EXPECT_FALSE(service.close(ticket.id));
  EXPECT_FALSE(service.close(SvcSessionId{}));
  EXPECT_FALSE(service.close(SvcSessionId::make(99, 1)));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.offered, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.released, 1u);
  EXPECT_EQ(stats.active, 0u);
}

TEST(RoutingServiceTest, AdmissionCostMatchesTicket) {
  // The admitted cost is the optimal semilightpath cost on the residual —
  // for the first admission, the pristine-network optimum.
  const WdmNetwork net = paper_example_network();
  ServiceOptions options;
  options.num_shards = 1;
  RoutingService service(net, options);
  RouteEngine reference(net);
  const RouteResult expected = reference.route_semilightpath(
      NodeId{0}, NodeId{6});
  ASSERT_TRUE(expected.found);

  const AdmitTicket ticket =
      service.open(TenantId{0}, NodeId{0}, NodeId{6});
  ASSERT_EQ(ticket.status, AdmitStatus::kAdmitted);
  EXPECT_NEAR(ticket.cost, expected.cost, 1e-12);
}

TEST(RoutingServiceTest, ExhaustionBlocks) {
  // One wavelength on a single link: the second session through it must
  // block, and a release must reopen it.
  WdmNetwork net(2, 1, std::make_shared<NoConversion>());
  const LinkId e = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(e, Wavelength{0}, 1.0);

  RoutingService service(net, ServiceOptions{.num_shards = 2});
  const AdmitTicket first = service.open(TenantId{0}, NodeId{0}, NodeId{1});
  ASSERT_EQ(first.status, AdmitStatus::kAdmitted);
  const AdmitTicket second = service.open(TenantId{0}, NodeId{0}, NodeId{1});
  EXPECT_EQ(second.status, AdmitStatus::kBlocked);

  ASSERT_TRUE(service.close(first.id));
  const AdmitTicket third = service.open(TenantId{0}, NodeId{0}, NodeId{1});
  EXPECT_EQ(third.status, AdmitStatus::kAdmitted);
}

TEST(RoutingServiceTest, QuotaDeniesAndRefunds) {
  const WdmNetwork net = paper_example_network();
  ServiceOptions options;
  options.num_shards = 2;
  options.num_tenants = 2;
  RoutingService service(net, options);
  service.set_quota(TenantId{1}, 1);

  const AdmitTicket first = service.open(TenantId{1}, NodeId{0}, NodeId{6});
  ASSERT_EQ(first.status, AdmitStatus::kAdmitted);
  const AdmitTicket denied = service.open(TenantId{1}, NodeId{0}, NodeId{4});
  EXPECT_EQ(denied.status, AdmitStatus::kQuotaDenied);
  // Tenant 0 is unaffected by tenant 1's quota.
  const AdmitTicket other = service.open(TenantId{0}, NodeId{0}, NodeId{4});
  EXPECT_EQ(other.status, AdmitStatus::kAdmitted);

  const TenantStats starved = service.tenant_stats(TenantId{1});
  EXPECT_EQ(starved.quota, 1u);
  EXPECT_EQ(starved.active, 1u);
  EXPECT_EQ(starved.admitted, 1u);
  EXPECT_EQ(starved.quota_denied, 1u);

  // Closing refunds the quota.
  ASSERT_TRUE(service.close(first.id));
  const AdmitTicket again = service.open(TenantId{1}, NodeId{0}, NodeId{6});
  EXPECT_EQ(again.status, AdmitStatus::kAdmitted);
}

TEST(RoutingServiceTest, CrossShardResyncPropagates) {
  // Shard 0 admits; after a drain, shard 1's replica must see the claimed
  // slots as unroutable — a single-wavelength link makes this observable:
  // the second admission (round-robin lands on shard 1) must block
  // without a single commit conflict, proving it routed on the re-synced
  // view rather than discovering the claim at commit time.
  WdmNetwork net(2, 1, std::make_shared<NoConversion>());
  const LinkId e = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(e, Wavelength{0}, 1.0);

  RoutingService service(net, ServiceOptions{.num_shards = 2});
  const AdmitTicket first = service.open(TenantId{0}, NodeId{0}, NodeId{1});
  ASSERT_EQ(first.status, AdmitStatus::kAdmitted);
  service.drain_all();
  const AdmitTicket second = service.open(TenantId{0}, NodeId{0}, NodeId{1});
  EXPECT_EQ(second.status, AdmitStatus::kBlocked);
  EXPECT_EQ(second.conflicts, 0u);
  EXPECT_GT(service.stats().cross_shard_patches, 0u);
}

TEST(RoutingServiceTest, DefaultSloRulesCoverTheServiceInstruments) {
  const std::vector<obs::SloRule> rules =
      RoutingService::default_slo_rules(2.5e6);
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].name, "svc-admit-p99");
  EXPECT_EQ(rules[0].metric, "lumen.svc.admit_latency_ns");
  EXPECT_DOUBLE_EQ(rules[0].threshold, 2.5e6);
  EXPECT_EQ(rules[1].name, "svc-abort-rate");
  EXPECT_EQ(rules[1].denominator, "lumen.svc.offered");
  EXPECT_EQ(rules[2].name, "svc-quota-pressure");
}

}  // namespace
}  // namespace lumen::svc
