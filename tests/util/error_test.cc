#include "util/error.h"

#include <gtest/gtest.h>

#include <string>

namespace lumen {
namespace {

TEST(ErrorTest, RequirePassesOnTrue) {
  EXPECT_NO_THROW(LUMEN_REQUIRE(1 + 1 == 2));
  EXPECT_NO_THROW(LUMEN_REQUIRE_MSG(true, "never shown"));
  EXPECT_NO_THROW(LUMEN_ASSERT(42 > 0));
}

TEST(ErrorTest, RequireThrowsWithExpression) {
  try {
    LUMEN_REQUIRE(1 == 2);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("error_test.cc"), std::string::npos);
  }
}

TEST(ErrorTest, RequireMsgIncludesMessage) {
  try {
    LUMEN_REQUIRE_MSG(false, "wavelength outside universe");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("wavelength outside universe"),
              std::string::npos);
  }
}

TEST(ErrorTest, AssertMarksInvariant) {
  try {
    LUMEN_ASSERT(false);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(ErrorTest, IsARuntimeError) {
  // Callers may catch std::runtime_error or std::exception generically.
  try {
    LUMEN_REQUIRE(false);
  } catch (const std::runtime_error&) {
    SUCCEED();
    return;
  }
  FAIL();
}

TEST(ErrorTest, SideEffectsEvaluatedOnce) {
  int calls = 0;
  auto touch = [&calls]() {
    ++calls;
    return true;
  };
  LUMEN_REQUIRE(touch());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace lumen
