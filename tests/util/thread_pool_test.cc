// ThreadPool: ordering-independent completion, exception propagation,
// dynamic work claiming.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lumen {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(64);
  for (std::size_t i = 0; i < hits.size(); ++i)
    pool.submit([&hits, i] { hits[i].fetch_add(1); });
  pool.wait();
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossRounds) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndex) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ParallelForOnEmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, WaitRethrowsTheFirstTaskError) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 8; ++i) pool.submit([&] { completed.fetch_add(1); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The remaining tasks still ran; the pool stays usable.
  EXPECT_EQ(completed.load(), 8);
  pool.submit([&] { completed.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(completed.load(), 9);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) pool.submit([&] { counter.fetch_add(1); });
    // No wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
  ThreadPool defaulted;  // 0 = hardware default
  EXPECT_GE(defaulted.size(), 1u);
}

}  // namespace
}  // namespace lumen
