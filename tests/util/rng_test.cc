#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace lumen {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW((void)rng.next_below(0), Error);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextBelowRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 10, kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(RngTest, NextInClosedRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto x = rng.next_in(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextInSingleton) {
  Rng rng(11);
  EXPECT_EQ(rng.next_in(5, 5), 5);
}

TEST(RngTest, NextInInvalidThrows) {
  Rng rng(11);
  EXPECT_THROW((void)rng.next_in(2, 1), Error);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(3);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, NextDoubleInRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double_in(2.5, 7.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(RngTest, NextBoolProbabilityZeroAndOne) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(17);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.split();
  // The split stream should not track the parent.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  for (std::uint32_t count : {0u, 1u, 5u, 50u, 100u}) {
    const auto sample = rng.sample_without_replacement(100, count);
    EXPECT_EQ(sample.size(), count);
    std::set<std::uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), count);
    for (const auto x : sample) EXPECT_LT(x, 100u);
  }
}

TEST(RngTest, SampleFullUniverseIsPermutation) {
  Rng rng(43);
  const auto sample = rng.sample_without_replacement(20, 20);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(RngTest, SampleMoreThanUniverseThrows) {
  Rng rng(43);
  EXPECT_THROW((void)rng.sample_without_replacement(5, 6), Error);
}

TEST(RngTest, SplitMix64KnownStability) {
  // Pin the seeding path so networks generated in benches stay stable
  // across refactors.
  std::uint64_t state = 0;
  const auto first = splitmix64(state);
  const auto second = splitmix64(state);
  EXPECT_NE(first, second);
  Rng a(0), b(0);
  EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace lumen
