// Drop-in parity for util/flat_map.h against std::unordered_map: the
// FlatMap alias replaces the standard map on hot tables, so every
// operation the codebase uses must agree with the reference semantics —
// including under churn heavy enough to exercise displacement, backward
// shift, and several rehash generations.
#include "util/flat_map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/strong_id.h"

namespace lumen {
namespace {

TEST(FlatMapTest, StartsEmpty) {
  FlatMap<int, int> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.begin(), map.end());
  EXPECT_FALSE(map.contains(7));
  EXPECT_EQ(map.find(7), map.end());
  EXPECT_EQ(map.erase(7), 0u);
}

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<int, std::string> map;
  auto [it, inserted] = map.try_emplace(1, "one");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->first, 1);
  EXPECT_EQ(it->second, "one");

  auto [again, fresh] = map.try_emplace(1, "uno");
  EXPECT_FALSE(fresh);
  EXPECT_EQ(again->second, "one");  // try_emplace never overwrites

  map[2] = "two";
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.find(2)->second, "two");
  EXPECT_EQ(map.count(2), 1u);

  EXPECT_EQ(map.erase(1), 1u);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_FALSE(map.contains(1));
  EXPECT_TRUE(map.contains(2));
}

TEST(FlatMapTest, EmplaceAndInsertMatchStdSemantics) {
  FlatMap<int, int> map;
  EXPECT_TRUE(map.emplace(5, 50).second);
  EXPECT_FALSE(map.emplace(5, 99).second);
  EXPECT_EQ(map.find(5)->second, 50);

  EXPECT_TRUE(map.insert({6, 60}).second);
  EXPECT_FALSE(map.insert({6, 61}).second);
  EXPECT_EQ(map.find(6)->second, 60);
}

TEST(FlatMapTest, OperatorIndexDefaultConstructs) {
  FlatMap<int, int> map;
  EXPECT_EQ(map[3], 0);
  map[3] += 7;
  EXPECT_EQ(map[3], 7);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, StrongIdKeys) {
  struct Tag {};
  using Id = StrongId<Tag>;
  FlatMap<Id, int> map;
  for (std::uint32_t i = 0; i < 100; ++i) map.try_emplace(Id(i), int(i) * 3);
  ASSERT_EQ(map.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(map.contains(Id(i)));
    EXPECT_EQ(map.find(Id(i))->second, int(i) * 3);
  }
}

TEST(FlatMapTest, ReserveAvoidsRehash) {
  FlatMap<int, int> map;
  map.reserve(1000);
  const std::size_t capacity = map.capacity();
  for (int i = 0; i < 1000; ++i) map.try_emplace(i, i);
  EXPECT_EQ(map.capacity(), capacity);
  EXPECT_EQ(map.size(), 1000u);
}

TEST(FlatMapTest, IterationVisitsEveryEntryExactlyOnce) {
  FlatMap<int, int> map;
  for (int i = 0; i < 500; ++i) map.try_emplace(i * 7, i);
  std::vector<int> seen;
  for (const auto& [key, value] : map) {
    seen.push_back(key);
    EXPECT_EQ(key, value * 7);
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(seen[i], i * 7);
}

TEST(FlatMapTest, ConstIterationAndConversion) {
  FlatMap<int, int> map;
  map.try_emplace(1, 10);
  map.try_emplace(2, 20);
  const FlatMap<int, int>& view = map;
  int sum = 0;
  for (const auto& [key, value] : view) sum += value;
  EXPECT_EQ(sum, 30);
  FlatMap<int, int>::const_iterator converted = map.find(1);
  EXPECT_EQ(converted->second, 10);
}

TEST(FlatMapTest, EraseByIteratorReturnsContinuation) {
  // Erasing through an iterator must visit every remaining entry exactly
  // once even though backward shift moves entries into the erased slot.
  FlatMap<int, int> map;
  for (int i = 0; i < 200; ++i) map.try_emplace(i, i);
  std::vector<int> kept;
  for (auto it = map.begin(); it != map.end();) {
    if (it->first % 3 == 0) {
      it = map.erase(it);
    } else {
      kept.push_back(it->first);
      ++it;
    }
  }
  std::sort(kept.begin(), kept.end());
  std::vector<int> expected;
  for (int i = 0; i < 200; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  EXPECT_EQ(kept, expected);
  EXPECT_EQ(map.size(), expected.size());
  for (const int key : expected) EXPECT_TRUE(map.contains(key));
}

TEST(FlatMapTest, ClearKeepsCapacityAndReusability) {
  FlatMap<int, int> map;
  for (int i = 0; i < 100; ++i) map.try_emplace(i, i);
  const std::size_t capacity = map.capacity();
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), capacity);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(map.contains(i));
  map.try_emplace(42, 1);
  EXPECT_TRUE(map.contains(42));
}

TEST(FlatMapTest, CopyAndMove) {
  FlatMap<int, std::string> map;
  for (int i = 0; i < 50; ++i) map.try_emplace(i, std::to_string(i));

  FlatMap<int, std::string> copy(map);
  EXPECT_EQ(copy.size(), 50u);
  copy.try_emplace(99, "ninety-nine");
  EXPECT_FALSE(map.contains(99));  // deep copy

  FlatMap<int, std::string> moved(std::move(copy));
  EXPECT_EQ(moved.size(), 51u);
  EXPECT_EQ(moved.find(7)->second, "7");

  FlatMap<int, std::string> assigned;
  assigned = moved;
  EXPECT_EQ(assigned.size(), moved.size());
  assigned = std::move(moved);
  EXPECT_EQ(assigned.size(), 51u);
}

// A deliberately terrible hash: everything collides into a handful of
// homes, forcing long displacement chains and deep backward shifts.
struct ColliderHash {
  std::size_t operator()(int key) const noexcept {
    return static_cast<std::size_t>(key % 3);
  }
};

TEST(FlatMapTest, SurvivesPathologicalCollisions) {
  FlatHashMap<int, int, ColliderHash> map;
  std::unordered_map<int, int> reference;
  for (int i = 0; i < 300; ++i) {
    map.try_emplace(i, i * 2);
    reference.emplace(i, i * 2);
  }
  for (int i = 0; i < 300; i += 2) {
    EXPECT_EQ(map.erase(i), reference.erase(i));
  }
  ASSERT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_TRUE(map.contains(key)) << "missing key " << key;
    EXPECT_EQ(map.find(key)->second, value);
  }
}

// The core parity check: a long random op tape applied to both maps must
// leave them element-for-element identical, across every rehash the churn
// triggers.  Three seeds keep the sweep deterministic.
TEST(FlatMapTest, RandomOpTapeMatchesUnorderedMap) {
  for (const std::uint64_t seed : {11u, 222u, 3333u}) {
    std::mt19937_64 rng(seed);
    FlatMap<std::uint32_t, std::uint64_t> map;
    std::unordered_map<std::uint32_t, std::uint64_t> reference;
    for (int op = 0; op < 20000; ++op) {
      const std::uint32_t key =
          static_cast<std::uint32_t>(rng() % 4096);  // force collisions
      switch (rng() % 4) {
        case 0: {  // try_emplace
          const std::uint64_t value = rng();
          const bool a = map.try_emplace(key, value).second;
          const bool b = reference.try_emplace(key, value).second;
          ASSERT_EQ(a, b) << "seed=" << seed << " op=" << op;
          break;
        }
        case 1: {  // operator[] overwrite
          const std::uint64_t value = rng();
          map[key] = value;
          reference[key] = value;
          break;
        }
        case 2: {  // erase
          ASSERT_EQ(map.erase(key), reference.erase(key))
              << "seed=" << seed << " op=" << op;
          break;
        }
        default: {  // lookup
          const auto it = map.find(key);
          const auto ref = reference.find(key);
          ASSERT_EQ(it != map.end(), ref != reference.end())
              << "seed=" << seed << " op=" << op;
          if (ref != reference.end()) {
            ASSERT_EQ(it->second, ref->second)
                << "seed=" << seed << " op=" << op;
          }
          break;
        }
      }
      ASSERT_EQ(map.size(), reference.size())
          << "seed=" << seed << " op=" << op;
    }
    // Full-table sweep both directions.
    for (const auto& [key, value] : reference) {
      ASSERT_TRUE(map.contains(key)) << "seed=" << seed;
      ASSERT_EQ(map.find(key)->second, value) << "seed=" << seed;
    }
    std::size_t visited = 0;
    for (const auto& [key, value] : map) {
      const auto ref = reference.find(key);
      ASSERT_NE(ref, reference.end()) << "seed=" << seed;
      ASSERT_EQ(ref->second, value) << "seed=" << seed;
      ++visited;
    }
    ASSERT_EQ(visited, reference.size()) << "seed=" << seed;
  }
}

// Iteration across a rehash must still visit exactly the live entries
// (order may change; the set may not).
TEST(FlatMapTest, RehashPreservesEntrySet) {
  FlatMap<int, int> map;
  std::vector<std::pair<int, int>> before;
  for (int i = 0; i < 64; ++i) map.try_emplace(i * 31, i);
  for (const auto& entry : map) before.push_back(entry);
  map.reserve(10000);  // force an explicit rehash
  std::vector<std::pair<int, int>> after;
  for (const auto& entry : map) after.push_back(entry);
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace lumen
