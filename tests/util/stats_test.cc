#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace lumen {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  Rng rng(1);
  RunningStats s;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double_in(-10, 10);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(RunningStatsTest, SummaryMirrorsAccessors) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 6.0}) s.add(x);
  const StatsSummary sum = s.summary();
  EXPECT_EQ(sum.count, 3u);
  EXPECT_DOUBLE_EQ(sum.mean, 4.0);
  EXPECT_DOUBLE_EQ(sum.stddev, s.stddev());
  EXPECT_DOUBLE_EQ(sum.min, 2.0);
  EXPECT_DOUBLE_EQ(sum.max, 6.0);
}

TEST(PercentilesTest, ExactBelowCapacity) {
  Percentiles p(100);
  for (int i = 1; i <= 11; ++i) p.add(i);  // 1..11
  EXPECT_EQ(p.count(), 11u);
  EXPECT_EQ(p.sample_size(), 11u);
  EXPECT_DOUBLE_EQ(p.p50(), 6.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 11.0);
}

TEST(PercentilesTest, ReservoirApproximatesLargeStream) {
  // 10k uniform [0, 1) observations through a 512-slot reservoir: the
  // estimated quantiles should land near the true ones.
  Rng rng(42);
  Percentiles p(512);
  for (int i = 0; i < 10000; ++i) p.add(rng.next_double());
  EXPECT_EQ(p.count(), 10000u);
  EXPECT_EQ(p.sample_size(), 512u);
  EXPECT_NEAR(p.p50(), 0.5, 0.08);
  EXPECT_NEAR(p.p90(), 0.9, 0.08);
  EXPECT_NEAR(p.p99(), 0.99, 0.08);
}

TEST(PercentilesTest, DeterministicForFixedStream) {
  Percentiles a(16), b(16);
  for (int i = 0; i < 1000; ++i) {
    a.add(i % 97);
    b.add(i % 97);
  }
  EXPECT_DOUBLE_EQ(a.p90(), b.p90());
}

TEST(PercentilesTest, EmptyThrows) {
  Percentiles p(8);
  EXPECT_THROW((void)p.p50(), Error);
}

TEST(QuantileTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(QuantileTest, Extremes) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(QuantileTest, EmptyThrows) {
  EXPECT_THROW((void)quantile({}, 0.5), Error);
}

TEST(QuantileTest, OutOfRangeThrows) {
  EXPECT_THROW((void)quantile({1.0}, 1.5), Error);
}

TEST(FitLineTest, PerfectLine) {
  const auto fit = fit_line({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 1 + 2x
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineHighR2) {
  Rng rng(9);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(i);
    ys.push_back(7.0 + 0.5 * i + rng.next_double_in(-0.1, 0.1));
  }
  const auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(FitLineTest, RequiresTwoPoints) {
  EXPECT_THROW((void)fit_line({1.0}, {1.0}), Error);
  EXPECT_THROW((void)fit_line({1.0, 2.0}, {1.0}), Error);
}

}  // namespace
}  // namespace lumen
