#include "util/strong_id.h"

#include <gtest/gtest.h>

#include <type_traits>
#include <unordered_set>

namespace lumen {
namespace {

TEST(StrongIdTest, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(StrongIdTest, ConstructedIsValid) {
  NodeId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(StrongIdTest, Ordering) {
  EXPECT_LT(NodeId{1}, NodeId{2});
  EXPECT_EQ(NodeId{3}, NodeId{3});
  EXPECT_NE(NodeId{3}, NodeId{4});
}

TEST(StrongIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, LinkId>);
  static_assert(!std::is_same_v<NodeId, Wavelength>);
  static_assert(!std::is_convertible_v<NodeId, LinkId>);
  static_assert(!std::is_convertible_v<std::uint32_t, NodeId>);
}

TEST(StrongIdTest, Hashable) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId{1});
  set.insert(NodeId{2});
  set.insert(NodeId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(NodeId{2}));
}

TEST(StrongIdTest, InvalidSentinelIsMax) {
  EXPECT_EQ(NodeId::invalid().value(), NodeId::kInvalidValue);
  // A valid id can never collide with the sentinel by construction in the
  // library (ids are dense and < 2^32-1).
  EXPECT_FALSE(NodeId{NodeId::kInvalidValue}.valid());
}

}  // namespace
}  // namespace lumen
