#include "util/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace lumen {
namespace {

TEST(StopwatchTest, MonotoneNonNegative) {
  Stopwatch clock;
  const double first = clock.seconds();
  EXPECT_GE(first, 0.0);
  const double second = clock.seconds();
  EXPECT_GE(second, first);
}

TEST(StopwatchTest, MeasuresSleep) {
  Stopwatch clock;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = clock.millis();
  EXPECT_GE(elapsed, 18.0);   // scheduler may round down slightly
  EXPECT_LT(elapsed, 2000.0); // but not wildly up
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch clock;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  clock.reset();
  EXPECT_LT(clock.millis(), 10.0);
}

TEST(StopwatchTest, UnitsConsistent) {
  Stopwatch clock;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = clock.seconds();
  const double ms = clock.millis();
  // millis read slightly later, so ms/1000 >= s.
  EXPECT_GE(ms / 1000.0, s - 1e-9);
  EXPECT_NEAR(ms / 1000.0, s, 0.05);
}

}  // namespace
}  // namespace lumen
