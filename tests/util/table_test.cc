#include "util/table.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace lumen {
namespace {

TEST(TableTest, MarkdownLayout) {
  Table t({"n", "time"});
  t.add_row({"10", "1.5"});
  t.add_row({"100", "2.25"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| n   | time |"), std::string::npos);
  EXPECT_NE(md.find("| 10  | 1.5  |"), std::string::npos);
  EXPECT_NE(md.find("| 100 | 2.25 |"), std::string::npos);
  // Separator row present.
  EXPECT_NE(md.find("|---"), std::string::npos);
}

TEST(TableTest, CsvLayout) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, ArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), Error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), Error);
}

TEST(TableTest, EmptyHeadersRejected) { EXPECT_THROW(Table t({}), Error); }

TEST(TableTest, Counts) {
  Table t({"x", "y", "z"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(FormatTest, FmtDouble) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
}

TEST(FormatTest, FmtInt) {
  EXPECT_EQ(fmt_int(-42), "-42");
  EXPECT_EQ(fmt_int(1234567890123LL), "1234567890123");
}

TEST(FormatTest, FmtSci) { EXPECT_EQ(fmt_sci(1250000.0, 2), "1.25e+06"); }

}  // namespace
}  // namespace lumen
