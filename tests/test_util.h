// Shared helpers for lumen tests: canonical small networks and randomized
// network generators used across core/dist/integration suites.
#pragma once

#include <memory>
#include <utility>

#include "topo/topologies.h"
#include "topo/wavelengths.h"
#include "wdm/network.h"

namespace lumen::testing {

/// The 7-node, 4-wavelength example network of the paper's Fig. 1.
///
/// Nodes are 0-based (paper node i = NodeId{i-1}); wavelength λ_i maps to
/// Wavelength{i-1}.  The paper's listing of Λ(⟨2,7⟩) = {λ1, λ2, λ3} is
/// inconsistent with its own Λ_out(G_M, 2) = {λ1, λ2, λ4}; the unique link
/// set making every printed Λ_in/Λ_out set consistent is
/// Λ(⟨2,7⟩) = {λ1, λ2}, which is what we build.
///
/// All link costs are `link_cost`; conversion is all-pairs at
/// `conversion_cost` at every node, except λ2→λ3 at node 3 which Fig. 3
/// shows as not allowed.
[[nodiscard]] inline WdmNetwork paper_example_network(
    double link_cost = 1.0, double conversion_cost = 0.25) {
  auto conv = std::make_shared<MatrixConversion>(7, 4);
  for (std::uint32_t v = 0; v < 7; ++v)
    conv->set_all_pairs(NodeId{v}, conversion_cost);
  // Fig. 3: conversion λ2 -> λ3 at paper-node 3 (= NodeId{2}) not allowed.
  conv->set(NodeId{2}, Wavelength{1}, Wavelength{2}, kInfiniteCost);

  WdmNetwork net(7, 4, std::move(conv));
  // (paper tail, paper head, paper wavelength indices)
  struct Spec {
    std::uint32_t u, v;
    std::initializer_list<std::uint32_t> lambdas;
  };
  const Spec specs[] = {
      {1, 2, {1, 3}}, {1, 4, {1, 2, 4}}, {2, 3, {1, 4}}, {2, 7, {1, 2}},
      {3, 1, {2, 3}}, {3, 7, {3, 4}},    {4, 5, {3}},    {5, 3, {2, 4}},
      {5, 6, {1, 3}}, {6, 4, {2, 3}},    {6, 7, {2, 3, 4}},
  };
  for (const auto& spec : specs) {
    const LinkId e = net.add_link(NodeId{spec.u - 1}, NodeId{spec.v - 1});
    for (const std::uint32_t l : spec.lambdas)
      net.set_wavelength(e, Wavelength{l - 1}, link_cost);
  }
  return net;
}

/// Which conversion regime a random test network uses.
enum class ConvKind {
  kNone,
  kUniform,
  kRange,
  kSparse,
  kRandomMatrix,  ///< may violate the triangle inequality
};

[[nodiscard]] inline std::shared_ptr<const ConversionModel> make_conversion(
    ConvKind kind, std::uint32_t n, std::uint32_t k, Rng& rng) {
  switch (kind) {
    case ConvKind::kNone:
      return std::make_shared<NoConversion>();
    case ConvKind::kUniform:
      return std::make_shared<UniformConversion>(rng.next_double_in(0.0, 2.0));
    case ConvKind::kRange:
      return std::make_shared<RangeLimitedConversion>(
          1 + static_cast<std::uint32_t>(rng.next_below(k)),
          rng.next_double_in(0.0, 1.0), rng.next_double_in(0.0, 0.5));
    case ConvKind::kSparse: {
      std::vector<NodeId> converters;
      for (std::uint32_t v = 0; v < n; ++v)
        if (rng.next_bool(0.5)) converters.push_back(NodeId{v});
      return std::make_shared<SparseConversion>(
          std::move(converters),
          std::make_shared<UniformConversion>(rng.next_double_in(0.0, 2.0)));
    }
    case ConvKind::kRandomMatrix: {
      auto matrix = std::make_shared<MatrixConversion>(n, k);
      for (std::uint32_t v = 0; v < n; ++v)
        for (std::uint32_t p = 0; p < k; ++p)
          for (std::uint32_t q = 0; q < k; ++q)
            if (p != q && rng.next_bool(0.6))
              matrix->set(NodeId{v}, Wavelength{p}, Wavelength{q},
                          rng.next_double_in(0.0, 3.0));
      return matrix;
    }
  }
  LUMEN_ASSERT(false);
}

/// A random strongly connected WDM network: random sparse topology,
/// uniform availability, uniform random link costs.
[[nodiscard]] inline WdmNetwork random_network(std::uint32_t n,
                                               std::uint32_t extra_links,
                                               std::uint32_t k,
                                               std::uint32_t k0_max,
                                               ConvKind kind, Rng& rng) {
  const Topology topo = random_sparse_topology(n, extra_links, rng);
  const Availability avail = uniform_availability(
      topo, k, 1, k0_max, CostSpec::uniform(0.5, 3.0), rng);
  return assemble_network(topo, k, avail, make_conversion(kind, n, k, rng));
}

/// A random network with aggressively varied shape parameters, including
/// degenerate ones (k = 1, n = 2, empty links, zero-cost wavelengths).
/// Shared by the integration fuzz sweep and the fault-injection fuzz
/// sweep so both explore the same instance space.
[[nodiscard]] inline WdmNetwork fuzz_network(Rng& rng) {
  const auto n = static_cast<std::uint32_t>(rng.next_in(2, 18));
  const auto k = static_cast<std::uint32_t>(rng.next_in(1, 6));
  const auto kinds = {ConvKind::kNone, ConvKind::kUniform, ConvKind::kRange,
                      ConvKind::kSparse, ConvKind::kRandomMatrix};
  const auto kind = *(kinds.begin() + rng.next_below(kinds.size()));
  WdmNetwork net(n, k, make_conversion(kind, n, k, rng));

  const auto num_links = static_cast<std::uint32_t>(
      rng.next_in(0, static_cast<std::int64_t>(3 * n)));
  for (std::uint32_t i = 0; i < num_links; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(n));
    const auto v = static_cast<std::uint32_t>(rng.next_below(n));
    if (u == v) continue;
    const LinkId e = net.add_link(NodeId{u}, NodeId{v});
    // Possibly zero wavelengths; possibly zero-cost ones.
    const auto count = static_cast<std::uint32_t>(rng.next_in(0, k));
    for (const std::uint32_t l : rng.sample_without_replacement(k, count)) {
      const double cost =
          rng.next_bool(0.15) ? 0.0 : rng.next_double_in(0.1, 5.0);
      net.set_wavelength(e, Wavelength{l}, cost);
    }
  }
  return net;
}

}  // namespace lumen::testing
