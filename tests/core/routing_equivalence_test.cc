// Randomized differential testing of the routers.
//
// Ground truth ladder:
//   brute force (tiny nets, any conversion model)
//     = state-space Dijkstra (medium nets, any conversion model)
//     = Liang–Shen (all nets)
//     = CFZ (triangle-inequality conversion models only; see core/cfz.h)
//     = lightpath router (when conversion is disabled).
#include <gtest/gtest.h>

#include <tuple>

#include "core/brute_force.h"
#include "core/cfz.h"
#include "core/liang_shen.h"
#include "core/state_dijkstra.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::make_conversion;
using testing::random_network;

class TinyNetworkTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, ConvKind>> {};

TEST_P(TinyNetworkTest, LiangShenMatchesBruteForce) {
  const auto [seed, kind] = GetParam();
  Rng rng(seed);
  const auto net = random_network(5, 6, 3, 3, kind, rng);
  for (std::uint32_t s = 0; s < 5; ++s) {
    for (std::uint32_t t = 0; t < 5; ++t) {
      if (s == t) continue;
      const auto ls = route_semilightpath(net, NodeId{s}, NodeId{t});
      const auto bf = brute_force_route(net, NodeId{s}, NodeId{t}, 10);
      ASSERT_EQ(ls.found, bf.found) << s << "->" << t << " seed " << seed;
      if (ls.found) {
        EXPECT_NEAR(ls.cost, bf.cost, 1e-9) << s << "->" << t;
        EXPECT_TRUE(ls.path.is_valid(net));
        EXPECT_NEAR(ls.path.cost(net), ls.cost, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TinyNetworkTest,
    ::testing::Combine(::testing::Values(11ULL, 12ULL, 13ULL, 14ULL, 15ULL),
                       ::testing::Values(ConvKind::kNone, ConvKind::kUniform,
                                         ConvKind::kRange, ConvKind::kSparse,
                                         ConvKind::kRandomMatrix)));

class MediumNetworkTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint32_t, std::uint32_t,
                     std::uint32_t, ConvKind>> {};

TEST_P(MediumNetworkTest, LiangShenMatchesStateDijkstra) {
  const auto [seed, n, k, k0, kind] = GetParam();
  Rng rng(seed);
  const auto net = random_network(n, 2 * n, k, k0, kind, rng);
  Rng pick(seed ^ 0xfeedULL);
  for (int trial = 0; trial < 15; ++trial) {
    const auto s = static_cast<std::uint32_t>(pick.next_below(n));
    auto t = static_cast<std::uint32_t>(pick.next_below(n));
    if (s == t) t = (t + 1) % n;
    const auto ls = route_semilightpath(net, NodeId{s}, NodeId{t});
    const auto oracle = state_dijkstra_route(net, NodeId{s}, NodeId{t});
    ASSERT_EQ(ls.found, oracle.found) << s << "->" << t << " seed " << seed;
    if (!ls.found) continue;
    EXPECT_NEAR(ls.cost, oracle.cost, 1e-9) << s << "->" << t;
    EXPECT_TRUE(ls.path.is_valid(net));
    EXPECT_NEAR(ls.path.cost(net), ls.cost, 1e-9);
    EXPECT_TRUE(oracle.path.is_valid(net));
    EXPECT_NEAR(oracle.path.cost(net), oracle.cost, 1e-9);
  }
}

TEST_P(MediumNetworkTest, AllHeapsProduceSameOptimum) {
  const auto [seed, n, k, k0, kind] = GetParam();
  Rng rng(seed);
  const auto net = random_network(n, 2 * n, k, k0, kind, rng);
  const NodeId s{0}, t{n / 2};
  const auto fib = route_semilightpath(net, s, t, HeapKind::kFibonacci);
  const auto bin = route_semilightpath(net, s, t, HeapKind::kBinary);
  const auto quad = route_semilightpath(net, s, t, HeapKind::kQuaternary);
  const auto pair = route_semilightpath(net, s, t, HeapKind::kPairing);
  EXPECT_EQ(fib.found, bin.found);
  EXPECT_EQ(fib.found, quad.found);
  EXPECT_EQ(fib.found, pair.found);
  if (fib.found) {
    EXPECT_DOUBLE_EQ(fib.cost, bin.cost);
    EXPECT_DOUBLE_EQ(fib.cost, quad.cost);
    EXPECT_DOUBLE_EQ(fib.cost, pair.cost);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MediumNetworkTest,
    ::testing::Values(
        std::tuple{21ULL, 20u, 4u, 2u, ConvKind::kUniform},
        std::tuple{22ULL, 30u, 8u, 3u, ConvKind::kNone},
        std::tuple{23ULL, 40u, 6u, 4u, ConvKind::kRange},
        std::tuple{24ULL, 25u, 10u, 3u, ConvKind::kSparse},
        std::tuple{25ULL, 35u, 5u, 2u, ConvKind::kRandomMatrix},
        std::tuple{26ULL, 50u, 12u, 5u, ConvKind::kUniform},
        std::tuple{27ULL, 60u, 4u, 4u, ConvKind::kRange},
        std::tuple{28ULL, 15u, 16u, 8u, ConvKind::kSparse}));

class CfzEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint32_t, std::uint32_t, ConvKind>> {
};

TEST_P(CfzEquivalenceTest, CfzMatchesLiangShenUnderTriangleModels) {
  const auto [seed, n, k, kind] = GetParam();
  Rng rng(seed);
  const auto net = random_network(n, 2 * n, k, k, kind, rng);
  Rng pick(seed ^ 0xabcdULL);
  for (int trial = 0; trial < 10; ++trial) {
    const auto s = static_cast<std::uint32_t>(pick.next_below(n));
    auto t = static_cast<std::uint32_t>(pick.next_below(n));
    if (s == t) t = (t + 1) % n;
    const auto ls = route_semilightpath(net, NodeId{s}, NodeId{t});
    const auto cfz = cfz_route(net, NodeId{s}, NodeId{t});
    ASSERT_EQ(ls.found, cfz.found) << s << "->" << t << " seed " << seed;
    if (ls.found) {
      EXPECT_NEAR(ls.cost, cfz.cost, 1e-9) << s << "->" << t;
    }
  }
}

// Triangle-inequality models only (kNone / kUniform / kRange / kSparse over
// uniform): the documented CFZ caveat excludes kRandomMatrix.
INSTANTIATE_TEST_SUITE_P(
    Sweep, CfzEquivalenceTest,
    ::testing::Values(std::tuple{31ULL, 15u, 4u, ConvKind::kUniform},
                      std::tuple{32ULL, 20u, 6u, ConvKind::kNone},
                      std::tuple{33ULL, 25u, 5u, ConvKind::kRange},
                      std::tuple{34ULL, 18u, 8u, ConvKind::kSparse},
                      std::tuple{35ULL, 30u, 3u, ConvKind::kUniform}));

TEST(LightpathRouterTest, MatchesSemilightpathUnderNoConversion) {
  // With conversion disabled the two problems coincide.
  for (const std::uint64_t seed : {41ULL, 42ULL, 43ULL}) {
    Rng rng(seed);
    const auto net = random_network(25, 50, 6, 3, ConvKind::kNone, rng);
    Rng pick(seed);
    for (int trial = 0; trial < 10; ++trial) {
      const auto s = static_cast<std::uint32_t>(pick.next_below(25));
      auto t = static_cast<std::uint32_t>(pick.next_below(25));
      if (s == t) t = (t + 1) % 25;
      const auto semi = route_semilightpath(net, NodeId{s}, NodeId{t});
      const auto light = route_lightpath(net, NodeId{s}, NodeId{t});
      ASSERT_EQ(semi.found, light.found) << s << "->" << t;
      if (semi.found) {
        EXPECT_NEAR(semi.cost, light.cost, 1e-9);
        EXPECT_TRUE(light.path.is_lightpath());
      }
    }
  }
}

TEST(LightpathRouterTest, SemilightpathNeverWorseThanLightpath) {
  for (const std::uint64_t seed : {51ULL, 52ULL}) {
    Rng rng(seed);
    const auto net = random_network(20, 40, 5, 3, ConvKind::kUniform, rng);
    for (std::uint32_t t = 1; t < 20; t += 3) {
      const auto semi = route_semilightpath(net, NodeId{0}, NodeId{t});
      const auto light = route_lightpath(net, NodeId{0}, NodeId{t});
      if (light.found) {
        ASSERT_TRUE(semi.found);
        EXPECT_LE(semi.cost, light.cost + 1e-9);
      }
    }
  }
}

TEST(RouterEdgeCasesTest, SourceEqualsTarget) {
  Rng rng(61);
  const auto net = random_network(10, 20, 4, 2, ConvKind::kUniform, rng);
  for (const auto& route : {route_semilightpath(net, NodeId{3}, NodeId{3}),
                           route_lightpath(net, NodeId{3}, NodeId{3}),
                           cfz_route(net, NodeId{3}, NodeId{3}),
                           state_dijkstra_route(net, NodeId{3}, NodeId{3}),
                           brute_force_route(net, NodeId{3}, NodeId{3})}) {
    EXPECT_TRUE(route.found);
    EXPECT_DOUBLE_EQ(route.cost, 0.0);
    EXPECT_TRUE(route.path.empty());
  }
}

TEST(RouterEdgeCasesTest, OutOfRangeNodesRejected) {
  Rng rng(62);
  const auto net = random_network(5, 5, 2, 2, ConvKind::kNone, rng);
  EXPECT_THROW((void)route_semilightpath(net, NodeId{5}, NodeId{0}), Error);
  EXPECT_THROW((void)route_semilightpath(net, NodeId{0}, NodeId{9}), Error);
  EXPECT_THROW((void)cfz_route(net, NodeId{7}, NodeId{0}), Error);
}

TEST(RouterEdgeCasesTest, IsolatedWavelengthlessLinks) {
  // Links with empty Λ(e) carry nothing: routing must fail gracefully.
  WdmNetwork net(3, 2, std::make_shared<UniformConversion>(0.1));
  net.add_link(NodeId{0}, NodeId{1});  // no wavelengths
  const LinkId e1 = net.add_link(NodeId{1}, NodeId{2});
  net.set_wavelength(e1, Wavelength{0}, 1.0);
  const auto r = route_semilightpath(net, NodeId{0}, NodeId{2});
  EXPECT_FALSE(r.found);
  const auto oracle = state_dijkstra_route(net, NodeId{0}, NodeId{2});
  EXPECT_FALSE(oracle.found);
}

TEST(RouterEdgeCasesTest, WavelengthMismatchWithoutConversionBlocks) {
  // 0 -λ0-> 1 -λ1-> 2 with NoConversion: unreachable.
  WdmNetwork net(3, 2, std::make_shared<NoConversion>());
  const LinkId e0 = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(e0, Wavelength{0}, 1.0);
  const LinkId e1 = net.add_link(NodeId{1}, NodeId{2});
  net.set_wavelength(e1, Wavelength{1}, 1.0);
  EXPECT_FALSE(route_semilightpath(net, NodeId{0}, NodeId{2}).found);
  EXPECT_FALSE(cfz_route(net, NodeId{0}, NodeId{2}).found);
  EXPECT_FALSE(state_dijkstra_route(net, NodeId{0}, NodeId{2}).found);
  EXPECT_FALSE(brute_force_route(net, NodeId{0}, NodeId{2}).found);
  // Enabling conversion at node 1 unblocks it.
  WdmNetwork net2(3, 2, std::make_shared<UniformConversion>(0.5));
  const LinkId f0 = net2.add_link(NodeId{0}, NodeId{1});
  net2.set_wavelength(f0, Wavelength{0}, 1.0);
  const LinkId f1 = net2.add_link(NodeId{1}, NodeId{2});
  net2.set_wavelength(f1, Wavelength{1}, 1.0);
  const auto r = route_semilightpath(net2, NodeId{0}, NodeId{2});
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.cost, 2.5);
  ASSERT_EQ(r.switches.size(), 1u);
  EXPECT_EQ(r.switches[0].node, NodeId{1});
}

TEST(RouterStatsTest, StatsPopulated) {
  Rng rng(63);
  const auto net = random_network(15, 30, 4, 2, ConvKind::kUniform, rng);
  const auto r = route_semilightpath(net, NodeId{0}, NodeId{7});
  EXPECT_GT(r.stats.aux_nodes, 0u);
  EXPECT_GT(r.stats.aux_links, 0u);
  EXPECT_GT(r.stats.search_pops, 0u);
  // Semilightpath routing is a single search, not a per-λ sweep.
  EXPECT_EQ(r.stats.wavelengths_searched, 0u);
}

TEST(RouterStatsTest, LightpathStatsReportStructureOnceAndCountSweeps) {
  Rng rng(64);
  const auto net = random_network(15, 30, 4, 2, ConvKind::kNone, rng);
  const auto r = route_lightpath(net, NodeId{0}, NodeId{7});
  // The k wavelength searches share one physical subnetwork: its size is
  // reported once (n, m), not accumulated k times; the sweep count is
  // carried separately.
  EXPECT_EQ(r.stats.aux_nodes, net.num_nodes());
  EXPECT_EQ(r.stats.aux_links, net.num_links());
  EXPECT_EQ(r.stats.wavelengths_searched, net.num_wavelengths());
  EXPECT_GT(r.stats.search_pops, 0u);
}

}  // namespace
}  // namespace lumen
