#include "core/goal_directed.h"

#include <gtest/gtest.h>

#include "core/liang_shen.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::random_network;

TEST(GoalDirectedTest, MatchesDijkstraOnPaperExample) {
  const auto net = testing::paper_example_network();
  for (std::uint32_t s = 0; s < 7; ++s) {
    for (std::uint32_t t = 0; t < 7; ++t) {
      const auto plain = route_semilightpath(net, NodeId{s}, NodeId{t});
      const auto astar = route_semilightpath_astar(net, NodeId{s}, NodeId{t});
      ASSERT_EQ(plain.found, astar.found) << s << "->" << t;
      if (plain.found) {
        EXPECT_NEAR(plain.cost, astar.cost, 1e-9) << s << "->" << t;
        EXPECT_TRUE(astar.path.is_valid(net));
        EXPECT_NEAR(astar.path.cost(net), astar.cost, 1e-9);
      }
    }
  }
}

class GoalDirectedRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GoalDirectedRandomTest, SameOptimumFewerPops) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const auto net = random_network(60, 120, 6, 3, ConvKind::kUniform, rng);
  std::uint64_t plain_pops = 0, astar_pops = 0;
  Rng pick(seed ^ 0xa57aULL);
  for (int trial = 0; trial < 10; ++trial) {
    const auto s = static_cast<std::uint32_t>(pick.next_below(60));
    auto t = static_cast<std::uint32_t>(pick.next_below(60));
    if (s == t) t = (t + 1) % 60;
    const auto plain = route_semilightpath(net, NodeId{s}, NodeId{t});
    const auto astar = route_semilightpath_astar(net, NodeId{s}, NodeId{t});
    ASSERT_EQ(plain.found, astar.found) << s << "->" << t;
    if (plain.found) {
      EXPECT_NEAR(plain.cost, astar.cost, 1e-9) << s << "->" << t;
    }
    plain_pops += plain.stats.search_pops;
    astar_pops += astar.stats.search_pops;
  }
  // A consistent potential never expands more settled nodes than Dijkstra.
  EXPECT_LE(astar_pops, plain_pops);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoalDirectedRandomTest,
                         ::testing::Values(201ULL, 202ULL, 203ULL, 204ULL,
                                           205ULL));

TEST(GoalDirectedTest, SelfRouteAndUnreachable) {
  const auto net = testing::paper_example_network();
  const auto self = route_semilightpath_astar(net, NodeId{3}, NodeId{3});
  EXPECT_TRUE(self.found);
  EXPECT_DOUBLE_EQ(self.cost, 0.0);
  const auto unreachable = route_semilightpath_astar(net, NodeId{6}, NodeId{0});
  EXPECT_FALSE(unreachable.found);
}

TEST(GoalDirectedTest, PrunesPhysicallyDeadBranches) {
  // A long appendix that cannot reach t: A* must not explore it at all.
  WdmNetwork net(12, 2, std::make_shared<UniformConversion>(0.1));
  // Chain 0 -> 1 -> 2 (the real route).
  for (std::uint32_t i = 0; i < 2; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{0}, 1.0);
  }
  // Dead appendix 0 -> 3 -> 4 -> ... -> 11 (cheap but hits a dead end).
  {
    const LinkId e = net.add_link(NodeId{0}, NodeId{3});
    net.set_wavelength(e, Wavelength{0}, 0.01);
  }
  for (std::uint32_t i = 3; i < 11; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{0}, 0.01);
  }
  const auto plain = route_semilightpath(net, NodeId{0}, NodeId{2});
  const auto astar = route_semilightpath_astar(net, NodeId{0}, NodeId{2});
  ASSERT_TRUE(plain.found);
  ASSERT_TRUE(astar.found);
  EXPECT_NEAR(plain.cost, astar.cost, 1e-9);
  // Dijkstra wades through the cheap appendix; A* skips it (those nodes
  // have +inf potential).
  EXPECT_LT(astar.stats.search_pops, plain.stats.search_pops);
  EXPECT_LE(astar.stats.search_pops, 6u);
}

}  // namespace
}  // namespace lumen
