#include "core/protection.h"

#include <gtest/gtest.h>

#include <set>

#include "core/liang_shen.h"
#include "tests/test_util.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"

namespace lumen {
namespace {

using testing::ConvKind;

/// Unordered span key of a hop.
std::pair<std::uint32_t, std::uint32_t> span_of(const WdmNetwork& net,
                                                const Hop& hop) {
  auto a = net.tail(hop.link).value();
  auto b = net.head(hop.link).value();
  if (a > b) std::swap(a, b);
  return {a, b};
}

void expect_valid_pair(const WdmNetwork& net, const ProtectedPair& pair,
                       NodeId s, NodeId t) {
  EXPECT_TRUE(pair.working.is_valid(net));
  EXPECT_TRUE(pair.backup.is_valid(net));
  EXPECT_EQ(pair.working.source(net), s);
  EXPECT_EQ(pair.working.destination(net), t);
  EXPECT_EQ(pair.backup.source(net), s);
  EXPECT_EQ(pair.backup.destination(net), t);
  EXPECT_NEAR(pair.working.cost(net), pair.working_cost, 1e-9);
  EXPECT_NEAR(pair.backup.cost(net), pair.backup_cost, 1e-9);
  // Span-disjointness.
  std::set<std::pair<std::uint32_t, std::uint32_t>> working_spans;
  for (const Hop& hop : pair.working.hops())
    working_spans.insert(span_of(net, hop));
  for (const Hop& hop : pair.backup.hops())
    EXPECT_FALSE(working_spans.contains(span_of(net, hop)))
        << "backup reuses span of working path";
}

TEST(ProtectionTest, DisjointPairOnNsfnet) {
  Rng rng(1);
  const Topology topo = nsfnet_topology();
  const Availability avail =
      full_availability(topo, 4, CostSpec::distance(10.0), rng);
  const auto net = assemble_network(
      topo, 4, avail, std::make_shared<UniformConversion>(0.3));
  const auto pair = route_protected_pair(net, NodeId{0}, NodeId{13});
  ASSERT_TRUE(pair.has_value());
  expect_valid_pair(net, *pair, NodeId{0}, NodeId{13});
  // The working path is the unprotected optimum.
  const auto optimal = route_semilightpath(net, NodeId{0}, NodeId{13});
  EXPECT_NEAR(pair->working_cost, optimal.cost, 1e-9);
  EXPECT_GE(pair->backup_cost + 1e-9, pair->working_cost);
}

TEST(ProtectionTest, NoBackupOnBridgeTopology) {
  // A line has a single span between its halves: no disjoint pair exists.
  Rng rng(2);
  const Topology topo = line_topology(5);
  const Availability avail = full_availability(topo, 2, CostSpec::unit(), rng);
  const auto net =
      assemble_network(topo, 2, avail, std::make_shared<NoConversion>());
  EXPECT_FALSE(route_protected_pair(net, NodeId{0}, NodeId{4}).has_value());
  EXPECT_FALSE(
      route_protected_pair_iterated(net, NodeId{0}, NodeId{4}).has_value());
}

TEST(ProtectionTest, RingAlwaysHasDisjointPair) {
  Rng rng(3);
  const Topology topo = ring_topology(8);
  const Availability avail = full_availability(topo, 3, CostSpec::unit(), rng);
  const auto net = assemble_network(
      topo, 3, avail, std::make_shared<UniformConversion>(0.1));
  for (std::uint32_t t = 1; t < 8; ++t) {
    const auto pair = route_protected_pair(net, NodeId{0}, NodeId{t});
    ASSERT_TRUE(pair.has_value()) << "t=" << t;
    expect_valid_pair(net, *pair, NodeId{0}, NodeId{t});
    // On an 8-ring, working + backup go opposite ways: lengths sum to 8.
    EXPECT_EQ(pair->working.length() + pair->backup.length(), 8u);
  }
}

TEST(ProtectionTest, IteratedEscapesTrapTopology) {
  // Trap: the cheapest working path uses the only span the backup needs.
  //      0 --1-- 1 --1-- 3        (cheap middle chain)
  //      0 --3-- 2 --3-- 3        (expensive detour)
  //      1 --1-- 2                (cross link making the trap)
  // Optimal working 0-1-3 blocks nothing vital, so construct the classic
  // trap shape instead: 0-1(1), 1-3(1), 0-2(3), 2-3(3), and 1-2(0.1):
  // the optimum 0-1-3 leaves 0-2-3 free — that's fine.  The trap needs
  // the optimum to *straddle* both alternatives: make 0-1-2-3 cheapest.
  WdmNetwork net(4, 1, std::make_shared<NoConversion>());
  auto add = [&](std::uint32_t u, std::uint32_t v, double w) {
    const LinkId e = net.add_link(NodeId{u}, NodeId{v});
    net.set_wavelength(e, Wavelength{0}, w);
    const LinkId r = net.add_link(NodeId{v}, NodeId{u});
    net.set_wavelength(r, Wavelength{0}, w);
  };
  add(0, 1, 1.0);
  add(1, 2, 0.1);
  add(2, 3, 1.0);
  add(0, 2, 3.0);
  add(1, 3, 3.0);
  // Optimal working path: 0-1-2-3 (cost 2.1) uses spans of BOTH side
  // routes; after removing them no backup exists.
  const auto greedy = route_protected_pair(net, NodeId{0}, NodeId{3});
  EXPECT_FALSE(greedy.has_value());
  // The iterated variant finds working 0-1-3 (cost 4.0) + backup 0-2-3.
  const auto iterated =
      route_protected_pair_iterated(net, NodeId{0}, NodeId{3}, 6);
  ASSERT_TRUE(iterated.has_value());
  expect_valid_pair(net, *iterated, NodeId{0}, NodeId{3});
  EXPECT_NEAR(iterated->total_cost(), 4.0 + 4.0, 1e-9);
}

TEST(ProtectionTest, IteratedNeverWorseThanGreedy) {
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL}) {
    Rng rng(seed);
    const auto net =
        testing::random_network(20, 40, 4, 3, ConvKind::kUniform, rng);
    const auto greedy = route_protected_pair(net, NodeId{0}, NodeId{10});
    const auto iterated =
        route_protected_pair_iterated(net, NodeId{0}, NodeId{10}, 5);
    if (greedy.has_value()) {
      ASSERT_TRUE(iterated.has_value());
      EXPECT_LE(iterated->total_cost(), greedy->total_cost() + 1e-9);
      expect_valid_pair(net, *iterated, NodeId{0}, NodeId{10});
    }
  }
}

TEST(ProtectionTest, Preconditions) {
  const auto net = testing::paper_example_network();
  EXPECT_THROW((void)route_protected_pair(net, NodeId{0}, NodeId{0}), Error);
  EXPECT_THROW(
      (void)route_protected_pair_iterated(net, NodeId{0}, NodeId{1}, 0),
      Error);
  EXPECT_THROW((void)route_protected_pair(net, NodeId{9}, NodeId{0}), Error);
}

TEST(ProtectionTest, UnroutableSourceYieldsNothing) {
  const auto net = testing::paper_example_network();
  EXPECT_FALSE(route_protected_pair(net, NodeId{6}, NodeId{0}).has_value());
}

}  // namespace
}  // namespace lumen
