// API-surface tests: auxiliary-graph reuse (route_on_aux), heap-kind
// dispatch, stats plumbing, and lightpath-router specifics not covered by
// the differential suites.
#include <gtest/gtest.h>

#include "core/aux_graph.h"
#include "core/liang_shen.h"
#include "tests/test_util.h"
#include "util/stopwatch.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::paper_example_network;
using testing::random_network;

TEST(RouteOnAuxTest, ReusingPrebuiltGraphMatchesOneShot) {
  const auto net = paper_example_network();
  const auto aux = AuxiliaryGraph::build_single_pair(net, NodeId{0}, NodeId{6});
  const auto reused = route_on_aux(net, aux);
  const auto one_shot = route_semilightpath(net, NodeId{0}, NodeId{6});
  ASSERT_EQ(reused.found, one_shot.found);
  EXPECT_DOUBLE_EQ(reused.cost, one_shot.cost);
  EXPECT_EQ(reused.path, one_shot.path);
}

TEST(RouteOnAuxTest, RepeatedQueriesAmortizeBuild) {
  Rng rng(11);
  const auto net = random_network(40, 80, 6, 3, ConvKind::kUniform, rng);
  const auto aux = AuxiliaryGraph::build_single_pair(net, NodeId{0}, NodeId{20});
  // Many reuses, each must give the identical answer.
  const auto first = route_on_aux(net, aux);
  for (int i = 0; i < 5; ++i) {
    const auto again = route_on_aux(net, aux, HeapKind::kBinary);
    EXPECT_EQ(again.found, first.found);
    if (first.found) {
      EXPECT_DOUBLE_EQ(again.cost, first.cost);
    }
  }
}

TEST(RouterApiTest, AllHeapKindsDispatch) {
  const auto net = paper_example_network();
  for (const HeapKind heap : {HeapKind::kFibonacci, HeapKind::kBinary,
                              HeapKind::kQuaternary, HeapKind::kPairing}) {
    const auto r = route_semilightpath(net, NodeId{0}, NodeId{6}, heap);
    ASSERT_TRUE(r.found);
    EXPECT_GT(r.stats.search_pops, 0u);
  }
}

TEST(RouterApiTest, StatsTimingsPlausible) {
  Rng rng(12);
  const auto net = random_network(50, 100, 6, 3, ConvKind::kUniform, rng);
  Stopwatch clock;
  const auto r = route_semilightpath(net, NodeId{0}, NodeId{25});
  const double wall = clock.seconds();
  EXPECT_GE(r.stats.build_seconds, 0.0);
  EXPECT_GE(r.stats.search_seconds, 0.0);
  // Internal timings cannot exceed the enclosing wall time (generously).
  EXPECT_LE(r.stats.total_seconds(), wall + 0.05);
}

TEST(LightpathRouterTest, ReportsWavelengthUniformPath) {
  const auto net = paper_example_network();
  const auto r = route_lightpath(net, NodeId{0}, NodeId{6});
  if (r.found) {
    ASSERT_FALSE(r.path.hops().empty());
    const Wavelength lambda = r.path.hops().front().wavelength;
    for (const Hop& hop : r.path.hops()) EXPECT_EQ(hop.wavelength, lambda);
    EXPECT_TRUE(r.switches.empty());
  }
}

TEST(LightpathRouterTest, PicksCheapestWavelengthNotFirst) {
  // λ0 route exists but λ1 is cheaper: the router must return λ1.
  WdmNetwork net(3, 2, std::make_shared<NoConversion>());
  for (std::uint32_t i = 0; i < 2; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{0}, 5.0);
    net.set_wavelength(e, Wavelength{1}, 1.0);
  }
  const auto r = route_lightpath(net, NodeId{0}, NodeId{2});
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
  EXPECT_EQ(r.path.hops().front().wavelength, Wavelength{1});
}

TEST(LightpathRouterTest, MixedWavelengthRouteLength) {
  // Cheapest λ0 route is long, cheapest λ1 route is short but pricier per
  // hop: the router optimizes over both jointly.
  WdmNetwork net(4, 2, std::make_shared<NoConversion>());
  // Long cheap λ0 chain 0-1-2-3.
  for (std::uint32_t i = 0; i < 3; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{0}, 1.0);
  }
  // Direct λ1 link 0-3 at cost 2.5 < 3.0.
  const LinkId direct = net.add_link(NodeId{0}, NodeId{3});
  net.set_wavelength(direct, Wavelength{1}, 2.5);
  const auto r = route_lightpath(net, NodeId{0}, NodeId{3});
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.cost, 2.5);
  EXPECT_EQ(r.path.length(), 1u);
}

TEST(RouterApiTest, RouteResultDefaultState) {
  RouteResult r;
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.path.empty());
  EXPECT_TRUE(r.switches.empty());
  EXPECT_EQ(r.stats.search_pops, 0u);
}

}  // namespace
}  // namespace lumen
