// Concurrency tests for the build-once routing paths: route_many batches,
// explicitly shared engines with per-thread scratch, and the parallel
// all-pairs matrix.  These run under the tsan preset (ctest -L parallel).
#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "core/all_pairs.h"
#include "core/liang_shen.h"
#include "core/route_engine.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::random_network;

std::vector<std::pair<NodeId, NodeId>> all_distinct_pairs(std::uint32_t n) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (std::uint32_t s = 0; s < n; ++s)
    for (std::uint32_t t = 0; t < n; ++t)
      if (s != t) pairs.emplace_back(NodeId{s}, NodeId{t});
  return pairs;
}

TEST(RouteEngineParallelTest, RouteManyMatchesSerialQueries) {
  Rng rng(0x5eed2026'0806b001ULL);
  const WdmNetwork net = random_network(14, 14, 4, 3, ConvKind::kUniform, rng);
  RouteEngine engine(net);
  const auto pairs = all_distinct_pairs(net.num_nodes());

  for (const unsigned threads : {1u, 2u, 4u}) {
    const std::vector<RouteResult> batch =
        engine.route_many(pairs, threads);
    ASSERT_EQ(batch.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const RouteResult serial =
          engine.route_semilightpath(pairs[i].first, pairs[i].second);
      ASSERT_EQ(batch[i].found, serial.found)
          << "threads=" << threads << " pair " << i;
      if (serial.found) EXPECT_NEAR(batch[i].cost, serial.cost, 1e-12);
    }
  }
}

TEST(RouteEngineParallelTest, RouteManyLightpathKind) {
  Rng rng(0x5eed2026'0806b002ULL);
  const WdmNetwork net = random_network(10, 12, 4, 3, ConvKind::kNone, rng);
  RouteEngine engine(net);
  const auto pairs = all_distinct_pairs(net.num_nodes());

  const std::vector<RouteResult> batch = engine.route_many(
      pairs, 4, RouteEngine::QueryKind::kLightpath);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const RouteResult reference =
        route_lightpath(net, pairs[i].first, pairs[i].second);
    ASSERT_EQ(batch[i].found, reference.found) << "pair " << i;
    if (reference.found) EXPECT_NEAR(batch[i].cost, reference.cost, 1e-9);
  }
}

TEST(RouteEngineParallelTest, SharedEngineWithPerThreadScratch) {
  Rng rng(0x5eed2026'0806b003ULL);
  const WdmNetwork net = random_network(12, 12, 3, 3, ConvKind::kRange, rng);
  const RouteEngine engine(net);  // const: queries share it read-only
  const auto pairs = all_distinct_pairs(net.num_nodes());

  std::vector<RouteResult> expected;
  expected.reserve(pairs.size());
  {
    SearchScratch scratch;
    for (const auto& [s, t] : pairs)
      expected.push_back(engine.route_semilightpath(s, t, scratch));
  }

  std::vector<RouteResult> got(pairs.size());
  std::vector<std::thread> workers;
  constexpr std::size_t kThreads = 4;
  for (std::size_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      SearchScratch scratch;  // one per thread
      for (std::size_t i = w; i < pairs.size(); i += kThreads)
        got[i] = engine.route_semilightpath(pairs[i].first, pairs[i].second,
                                            scratch);
    });
  }
  for (auto& worker : workers) worker.join();

  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(got[i].found, expected[i].found) << "pair " << i;
    if (expected[i].found) EXPECT_NEAR(got[i].cost, expected[i].cost, 1e-12);
  }
}

TEST(RouteEngineParallelTest, ParallelCostMatrixMatchesSerial) {
  Rng rng(0x5eed2026'0806b004ULL);
  const WdmNetwork net = random_network(12, 12, 3, 3, ConvKind::kSparse, rng);

  AllPairsRouter serial(net);
  const auto expected = serial.cost_matrix();

  AllPairsRouter parallel(net);
  const auto got = parallel.cost_matrix(4);
  // The parallel overload is served by hierarchy sweeps, not per-source
  // trees: the tree cache stays untouched.
  EXPECT_EQ(parallel.trees_computed(), 0u);

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t s = 0; s < expected.size(); ++s) {
    for (std::size_t t = 0; t < expected[s].size(); ++t) {
      if (expected[s][t] == kInfiniteCost) {
        EXPECT_EQ(got[s][t], kInfiniteCost) << s << "->" << t;
      } else {
        EXPECT_NEAR(got[s][t], expected[s][t], 1e-12) << s << "->" << t;
      }
    }
  }
}

TEST(RouteEngineParallelTest, ParallelCostMatrixLeavesTreeCacheAlone) {
  Rng rng(0x5eed2026'0806b005ULL);
  const WdmNetwork net = random_network(8, 10, 3, 2, ConvKind::kUniform, rng);
  AllPairsRouter router(net);
  (void)router.cost(NodeId{0}, NodeId{1});  // warm one tree serially
  EXPECT_EQ(router.trees_computed(), 1u);
  // The sweep-served matrix neither consumes nor extends the tree cache;
  // its rows still agree with the tree-backed point queries.
  const auto matrix = router.cost_matrix(3);
  EXPECT_EQ(router.trees_computed(), 1u);
  ASSERT_EQ(matrix.size(), net.num_nodes());
  EXPECT_NEAR(matrix[0][1], router.cost(NodeId{0}, NodeId{1}), 1e-12);
}

}  // namespace
}  // namespace lumen
