// Interoperation of the protection and K-shortest machinery.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/k_shortest.h"
#include "core/protection.h"
#include "tests/test_util.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"
#include "wdm/io.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::random_network;

TEST(ProtectionKspInteropTest, IteratedWithOneCandidateEqualsGreedy) {
  for (const std::uint64_t seed : {21ULL, 22ULL, 23ULL}) {
    Rng rng(seed);
    const auto net = random_network(18, 36, 4, 3, ConvKind::kUniform, rng);
    const auto greedy = route_protected_pair(net, NodeId{0}, NodeId{9});
    const auto iter1 =
        route_protected_pair_iterated(net, NodeId{0}, NodeId{9}, 1);
    ASSERT_EQ(greedy.has_value(), iter1.has_value()) << "seed " << seed;
    if (greedy) {
      EXPECT_NEAR(greedy->total_cost(), iter1->total_cost(), 1e-9);
      EXPECT_EQ(greedy->working.hops(), iter1->working.hops());
    }
  }
}

TEST(ProtectionKspInteropTest, WorkingPathAlwaysAmongKShortest) {
  Rng rng(24);
  const auto net = random_network(15, 30, 4, 2, ConvKind::kRange, rng);
  const auto pair = route_protected_pair_iterated(net, NodeId{0}, NodeId{7}, 5);
  if (!pair) GTEST_SKIP() << "no disjoint pair on this instance";
  const auto ranked = k_shortest_semilightpaths(net, NodeId{0}, NodeId{7}, 5);
  const bool found = std::any_of(
      ranked.begin(), ranked.end(), [&](const RankedRoute& r) {
        return r.path.hops() == pair->working.hops();
      });
  EXPECT_TRUE(found) << "iterated variant must pick its working path from "
                        "the candidate set";
}

TEST(ProtectionKspInteropTest, BackupStrictlyAvoidsWorkingSpans) {
  // On a ring every backup goes the other way: total hops = ring size.
  Rng rng(25);
  const Topology topo = ring_topology(10);
  const Availability avail = full_availability(topo, 2, CostSpec::unit(), rng);
  const auto net = assemble_network(
      topo, 2, avail, std::make_shared<UniformConversion>(0.05));
  for (std::uint32_t t = 1; t < 10; t += 2) {
    const auto pair = route_protected_pair(net, NodeId{0}, NodeId{t});
    ASSERT_TRUE(pair.has_value()) << t;
    EXPECT_EQ(pair->working.length() + pair->backup.length(), 10u);
  }
}

TEST(ProtectionKspInteropTest, AlternativesSurviveSerialization) {
  // Round-trip the network through the text format; the ranked
  // alternatives must be identical (costs and hop structure).
  const auto net = testing::paper_example_network();
  const auto reparsed = network_from_string(network_to_string(net));
  const auto a = k_shortest_semilightpaths(net, NodeId{0}, NodeId{6}, 5);
  const auto b = k_shortest_semilightpaths(reparsed, NodeId{0}, NodeId{6}, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].cost, b[i].cost, 1e-12) << i;
    EXPECT_EQ(a[i].path.hops(), b[i].path.hops()) << i;
  }
}

}  // namespace
}  // namespace lumen
