// Goal-directed RouteEngine equivalence: the A* search (ALT landmarks
// max-combined with the cached per-target reverse-Dijkstra potential)
// must return *bit-identical* costs to the engine's uninformed Dijkstra —
// both searches relax the same weights with the same left-to-right
// additions, so even tied optima are the same double — and must match the
// per-request reference router to rounding, on random networks and under
// interleaved reserve/release/fail/repair churn (the residual-safety
// invariant: base-weight potentials stay admissible because patches only
// ever raise weights).
#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "core/goal_directed.h"
#include "core/liang_shen.h"
#include "core/route_engine.h"
#include "rwa/session_manager.h"
#include "tests/test_util.h"
#include "util/error.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::fuzz_network;
using testing::paper_example_network;
using testing::random_network;

constexpr ConvKind kAllKinds[] = {
    ConvKind::kNone, ConvKind::kUniform, ConvKind::kRange, ConvKind::kSparse,
    ConvKind::kRandomMatrix};

WdmNetwork random_engine_network(Rng& rng) {
  const std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.next_below(12));
  const std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.next_below(5));
  const std::uint32_t k0 = 1 + static_cast<std::uint32_t>(rng.next_below(k));
  const ConvKind kind = kAllKinds[rng.next_below(std::size(kAllKinds))];
  return random_network(n, n, k, k0, kind, rng);
}

constexpr RouteEngine::QueryOptions kCombined{.goal_directed = true};
constexpr RouteEngine::QueryOptions kTargetOnly{.goal_directed = true,
                                                .use_landmarks = false};
constexpr RouteEngine::QueryOptions kLandmarksOnly{
    .goal_directed = true, .use_target_potential = false};

/// Every goal-directed flavor must agree with the engine's own uninformed
/// search exactly (same costs as doubles, same feasibility) and produce a
/// valid path of the claimed cost.
void expect_modes_identical(const WdmNetwork& net, RouteEngine& engine,
                            NodeId s, NodeId t) {
  const RouteResult plain = engine.route_semilightpath(s, t);
  for (const auto& query : {kCombined, kTargetOnly, kLandmarksOnly}) {
    const RouteResult goal = engine.route_semilightpath(s, t, query);
    ASSERT_EQ(plain.found, goal.found)
        << "s=" << s.value() << " t=" << t.value();
    // Bit-identical, not NEAR: both searches sum the same weights in the
    // same order along the optimal parent chain.
    EXPECT_EQ(plain.cost, goal.cost) << "s=" << s.value() << " t=" << t.value();
    if (!goal.found || s == t) continue;
    EXPECT_TRUE(goal.path.is_valid(net));
    EXPECT_EQ(goal.path.source(net), s);
    EXPECT_EQ(goal.path.destination(net), t);
    EXPECT_NEAR(goal.path.cost(net), goal.cost, 1e-9);
  }
}

TEST(GoalDirectedEngineTest, PaperExampleAllPairsAllModes) {
  const WdmNetwork net = paper_example_network();
  RouteEngine engine(net);
  for (std::uint32_t s = 0; s < net.num_nodes(); ++s) {
    for (std::uint32_t t = 0; t < net.num_nodes(); ++t) {
      expect_modes_identical(net, engine, NodeId{s}, NodeId{t});
      const RouteResult reference =
          route_semilightpath(net, NodeId{s}, NodeId{t});
      const RouteResult goal =
          engine.route_semilightpath(NodeId{s}, NodeId{t}, kCombined);
      ASSERT_EQ(reference.found, goal.found);
      if (reference.found) EXPECT_NEAR(reference.cost, goal.cost, 1e-9);
    }
  }
}

class GoalDirectedEngineFuzz : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(GoalDirectedEngineFuzz, EquivalenceOnRandomNetworks) {
  Rng rng(GetParam());
  // 5 structured + 2 degenerate networks per seed; 10 seeds → 70 nets.
  for (int iteration = 0; iteration < 7; ++iteration) {
    const WdmNetwork net =
        iteration < 5 ? random_engine_network(rng) : fuzz_network(rng);
    if (net.num_nodes() < 2) continue;
    RouteEngine engine(net);
    std::uint64_t plain_pops = 0;
    std::uint64_t goal_pops = 0;
    for (int query = 0; query < 8; ++query) {
      const NodeId s{
          static_cast<std::uint32_t>(rng.next_below(net.num_nodes()))};
      const NodeId t{
          static_cast<std::uint32_t>(rng.next_below(net.num_nodes()))};
      expect_modes_identical(net, engine, s, t);
      const RouteResult reference = route_semilightpath(net, s, t);
      const RouteResult plain = engine.route_semilightpath(s, t);
      const RouteResult goal = engine.route_semilightpath(s, t, kCombined);
      ASSERT_EQ(reference.found, goal.found)
          << "s=" << s.value() << " t=" << t.value();
      if (reference.found) EXPECT_NEAR(reference.cost, goal.cost, 1e-9);
      plain_pops += plain.stats.search_pops;
      goal_pops += goal.stats.search_pops;
      EXPECT_EQ(goal.stats.search_settled, goal.stats.search_pops);
      EXPECT_EQ(plain.stats.search_pruned, 0u);
    }
    // A consistent potential never settles more nodes than the uninformed
    // search (up to f-ties at exactly the optimum, which wash out in the
    // aggregate across queries).
    EXPECT_LE(goal_pops, plain_pops);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoalDirectedEngineFuzz,
                         ::testing::Values(0xa17'0001ULL, 0xa17'0002ULL,
                                           0xa17'0003ULL, 0xa17'0004ULL,
                                           0xa17'0005ULL, 0xa17'0006ULL,
                                           0xa17'0007ULL, 0xa17'0008ULL,
                                           0xa17'0009ULL, 0xa17'000aULL));

TEST(GoalDirectedEngineTest, ChurnKeepsBaseBoundsAdmissible) {
  // Interleave reserve / release / span-fail / repair on the engine while
  // mirroring every change into an oracle WdmNetwork; after each batch the
  // goal-directed search must still match the uninformed engine exactly
  // and the per-request router on the oracle.  This is the invariant the
  // whole design rests on: the potentials are never recomputed, yet stay
  // admissible because weights only ever rise above base.
  Rng rng(0x6d1'c4a2'2026ULL);
  for (int iteration = 0; iteration < 12; ++iteration) {
    WdmNetwork oracle = random_engine_network(rng);
    RouteEngine engine(oracle);

    struct Claim {
      LinkId link;
      Wavelength lambda;
      double cost = 0.0;
      RouteEngine::ReserveHandle handle;
      bool failed = false;  // true: set_weight(inf) fail, not a reserve
    };
    std::vector<Claim> claims;

    for (int step = 0; step < 30; ++step) {
      const int action = static_cast<int>(rng.next_below(4));
      if (action == 0 || claims.empty()) {
        // Reserve or fail a random still-available (link, λ).
        const LinkId e{
            static_cast<std::uint32_t>(rng.next_below(oracle.num_links()))};
        if (oracle.num_links() == 0 || oracle.num_available(e) == 0) continue;
        const LinkWavelength lw =
            oracle.available(e)[rng.next_below(oracle.num_available(e))];
        Claim claim{e, lw.lambda, lw.cost, {}, rng.next_bool(0.4)};
        ASSERT_TRUE(oracle.clear_wavelength(e, claim.lambda));
        if (claim.failed) {
          engine.set_weight(e, claim.lambda, kInfiniteCost);
        } else {
          claim.handle = engine.reserve(e, claim.lambda);
        }
        claims.push_back(claim);
      } else {
        // Release / repair a random outstanding claim.
        const std::size_t i = rng.next_below(claims.size());
        const Claim claim = claims[i];
        claims.erase(claims.begin() + static_cast<std::ptrdiff_t>(i));
        oracle.set_wavelength(claim.link, claim.lambda, claim.cost);
        if (claim.failed) {
          engine.set_weight(claim.link, claim.lambda, claim.cost);
        } else {
          engine.release(claim.handle);
        }
      }

      const NodeId s{
          static_cast<std::uint32_t>(rng.next_below(oracle.num_nodes()))};
      const NodeId t{
          static_cast<std::uint32_t>(rng.next_below(oracle.num_nodes()))};
      expect_modes_identical(oracle, engine, s, t);
      const RouteResult reference = route_semilightpath(oracle, s, t);
      const RouteResult goal = engine.route_semilightpath(s, t, kCombined);
      ASSERT_EQ(reference.found, goal.found)
          << "s=" << s.value() << " t=" << t.value() << " step=" << step;
      if (reference.found) EXPECT_NEAR(reference.cost, goal.cost, 1e-9);
    }
  }
}

TEST(GoalDirectedEngineTest, RouteManyGoalDirectedMatchesSequential) {
  Rng rng(0xba7c'0de5ULL);
  const WdmNetwork net = random_network(40, 60, 5, 3, ConvKind::kUniform, rng);
  RouteEngine engine(net);

  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 64; ++i) {
    pairs.emplace_back(
        NodeId{static_cast<std::uint32_t>(rng.next_below(net.num_nodes()))},
        NodeId{static_cast<std::uint32_t>(rng.next_below(net.num_nodes()))});
  }
  const std::vector<RouteResult> parallel = engine.route_many(
      pairs, 4, RouteEngine::QueryKind::kSemilightpath, kCombined);
  ASSERT_EQ(parallel.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const RouteResult plain =
        engine.route_semilightpath(pairs[i].first, pairs[i].second);
    ASSERT_EQ(plain.found, parallel[i].found) << i;
    EXPECT_EQ(plain.cost, parallel[i].cost) << i;
  }
}

TEST(GoalDirectedEngineTest, SessionManagerPolicyParity) {
  // The goal-directed policy must make the same accept/block decisions at
  // the same costs as the uninformed engine policy across a full workload
  // with departures and a span failure/repair cycle.
  Rng rng(0x90a1'd1ecULL);
  const WdmNetwork net = random_network(24, 36, 4, 2, ConvKind::kUniform, rng);
  SessionManager plain(net, RoutingPolicy::kSemilightpathEngine);
  SessionManager goal(net, RoutingPolicy::kGoalDirectedEngine);
  ASSERT_NE(goal.engine(), nullptr);  // engine policies build an engine

  std::vector<std::pair<std::optional<SessionId>, std::optional<SessionId>>>
      open_sessions;
  Rng workload(0x77'2026ULL);
  for (int step = 0; step < 200; ++step) {
    if (step == 80) {
      const NodeId a{static_cast<std::uint32_t>(workload.next_below(24))};
      const NodeId b{static_cast<std::uint32_t>(workload.next_below(24))};
      (void)plain.fail_span(a, b);
      (void)goal.fail_span(a, b);
    }
    if (step == 140) {
      const NodeId a{static_cast<std::uint32_t>(workload.next_below(24))};
      const NodeId b{static_cast<std::uint32_t>(workload.next_below(24))};
      plain.repair_span(a, b);
      goal.repair_span(a, b);
    }
    if (!open_sessions.empty() && workload.next_bool(0.3)) {
      const std::size_t i = workload.next_below(open_sessions.size());
      const auto [p, g] = open_sessions[i];
      open_sessions.erase(open_sessions.begin() +
                          static_cast<std::ptrdiff_t>(i));
      if (p) plain.close(*p);
      if (g) goal.close(*g);
      continue;
    }
    const auto s = static_cast<std::uint32_t>(workload.next_below(24));
    auto t = static_cast<std::uint32_t>(workload.next_below(24));
    if (s == t) t = (t + 1) % 24;
    const auto p = plain.open(NodeId{s}, NodeId{t});
    const auto g = goal.open(NodeId{s}, NodeId{t});
    ASSERT_EQ(p.has_value(), g.has_value()) << "step=" << step;
    if (p && g) {
      EXPECT_NEAR(plain.find(*p)->cost, goal.find(*g)->cost, 1e-9)
          << "step=" << step;
      open_sessions.emplace_back(p, g);
    }
  }
  EXPECT_EQ(plain.stats().carried, goal.stats().carried);
  EXPECT_EQ(plain.stats().blocked, goal.stats().blocked);
  EXPECT_NEAR(plain.stats().carried_cost_sum, goal.stats().carried_cost_sum,
              1e-6);
}

TEST(GoalDirectedEngineTest, ZeroLandmarksAndDisabledTermsStillExact) {
  Rng rng(0x0'1a27ULL);
  const WdmNetwork net = random_network(30, 45, 4, 2, ConvKind::kSparse, rng);
  RouteEngine engine(net, RouteEngine::Options{.num_landmarks = 0});
  EXPECT_EQ(engine.stats().landmarks, 0u);
  for (int query = 0; query < 20; ++query) {
    const NodeId s{static_cast<std::uint32_t>(rng.next_below(30))};
    const NodeId t{static_cast<std::uint32_t>(rng.next_below(30))};
    const RouteResult plain = engine.route_semilightpath(s, t);
    // kLandmarksOnly on a 0-landmark engine degenerates to plain Dijkstra
    // through the A* code path (potential ≡ 0) — still exact.
    for (const auto& query_opts : {kCombined, kTargetOnly, kLandmarksOnly}) {
      const RouteResult goal = engine.route_semilightpath(s, t, query_opts);
      ASSERT_EQ(plain.found, goal.found);
      EXPECT_EQ(plain.cost, goal.cost);
    }
  }
}

TEST(GoalDirectedEngineTest, SetWeightBelowBaseIsRejected) {
  const WdmNetwork net = paper_example_network();
  RouteEngine engine(net);
  const LinkId e{0};
  const Wavelength lambda = net.available(e)[0].lambda;
  const double base = engine.weight(e, lambda);
  // Raising (fail) and restoring (repair) are fine; discounting below the
  // build-time base would break the admissibility of the frozen potentials
  // and must be refused.
  engine.set_weight(e, lambda, kInfiniteCost);
  engine.set_weight(e, lambda, base);
  EXPECT_THROW(engine.set_weight(e, lambda, base * 0.5), Error);
}

TEST(GoalDirectedEngineTest, StandaloneCacheMatchesAndReuses) {
  // The cached standalone A* must equal the uncached overload and the
  // plain router; reusing the cache across targets stays correct.
  Rng rng(0xcac'8e01ULL);
  const WdmNetwork net = random_network(40, 60, 5, 3, ConvKind::kRange, rng);
  AstarPotentialCache cache;
  EXPECT_FALSE(cache.warm());
  for (int query = 0; query < 25; ++query) {
    const NodeId s{static_cast<std::uint32_t>(rng.next_below(40))};
    const NodeId t{static_cast<std::uint32_t>(rng.next_below(40))};
    const RouteResult reference = route_semilightpath(net, s, t);
    const RouteResult cached = route_semilightpath_astar(net, s, t, cache);
    const RouteResult uncached = route_semilightpath_astar(net, s, t);
    ASSERT_EQ(reference.found, cached.found);
    ASSERT_EQ(reference.found, uncached.found);
    if (reference.found) {
      EXPECT_NEAR(reference.cost, cached.cost, 1e-9);
      EXPECT_EQ(uncached.cost, cached.cost);
    }
    if (s != t) EXPECT_TRUE(cache.warm());
  }
  cache.invalidate();
  EXPECT_FALSE(cache.warm());
}

TEST(GoalDirectedEngineTest, PrunedAndSettledStatsAreConsistent) {
  // A network with a dead appendix: goal direction must prove the branch
  // hopeless (directed ∞ bounds) and report the prunes it made.
  WdmNetwork net(12, 2, std::make_shared<UniformConversion>(0.1));
  for (std::uint32_t i = 0; i < 2; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{0}, 1.0);
  }
  {
    const LinkId e = net.add_link(NodeId{0}, NodeId{3});
    net.set_wavelength(e, Wavelength{0}, 0.01);
  }
  for (std::uint32_t i = 3; i < 11; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{0}, 0.01);
  }
  RouteEngine engine(net);
  const RouteResult plain = engine.route_semilightpath(NodeId{0}, NodeId{2});
  const RouteResult goal =
      engine.route_semilightpath(NodeId{0}, NodeId{2}, kCombined);
  ASSERT_TRUE(plain.found);
  ASSERT_TRUE(goal.found);
  EXPECT_EQ(plain.cost, goal.cost);
  EXPECT_LT(goal.stats.search_pops, plain.stats.search_pops);
  EXPECT_GT(goal.stats.search_pruned, 0u);
  EXPECT_EQ(plain.stats.search_pruned, 0u);
}

}  // namespace
}  // namespace lumen
