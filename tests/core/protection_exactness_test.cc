// Protection heuristics vs the exact Suurballe optimum.
//
// On networks with one wavelength, no conversion, and purely directed
// links (no reverse twin, so span-disjoint == link-disjoint), the optimal
// protected pair is exactly Suurballe's disjoint shortest pair on the
// underlying weighted digraph.  This pins down the heuristics' gap.
#include <gtest/gtest.h>

#include <memory>

#include "core/protection.h"
#include "graph/suurballe.h"
#include "util/rng.h"
#include "wdm/network.h"

namespace lumen {
namespace {

/// A purely-directed single-wavelength network and its bare digraph twin.
struct Instance {
  WdmNetwork net;
  Digraph bare;
};

Instance directed_instance(std::uint32_t n, std::uint32_t links,
                           std::uint64_t seed) {
  Rng rng(seed);
  Instance inst{WdmNetwork(n, 1, std::make_shared<NoConversion>()),
                Digraph(n)};
  std::uint32_t added = 0;
  while (added < links) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(n));
    const auto v = static_cast<std::uint32_t>(rng.next_below(n));
    if (u == v) continue;
    const double w = rng.next_double_in(0.5, 3.0);
    const LinkId e = inst.net.add_link(NodeId{u}, NodeId{v});
    inst.net.set_wavelength(e, Wavelength{0}, w);
    inst.bare.add_link(NodeId{u}, NodeId{v}, w);
    ++added;
  }
  return inst;
}

TEST(ProtectionExactnessTest, HeuristicNeverBeatsSuurballe) {
  std::uint32_t comparable = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto inst = directed_instance(12, 45, seed);
    const auto exact = suurballe_disjoint_pair(inst.bare, NodeId{0}, NodeId{7});
    const auto greedy = route_protected_pair(inst.net, NodeId{0}, NodeId{7});
    const auto iterated =
        route_protected_pair_iterated(inst.net, NodeId{0}, NodeId{7}, 6);
    // Existence: if the heuristic finds a pair, an exact pair exists.
    if (greedy.has_value()) {
      ASSERT_TRUE(exact.has_value()) << seed;
    }
    if (iterated.has_value()) {
      ASSERT_TRUE(exact.has_value()) << seed;
    }
    if (!exact.has_value()) continue;
    ++comparable;
    if (greedy.has_value()) {
      EXPECT_GE(greedy->total_cost() + 1e-9, exact->total_cost) << seed;
    }
    if (iterated.has_value()) {
      EXPECT_GE(iterated->total_cost() + 1e-9, exact->total_cost) << seed;
      if (greedy.has_value()) {
        EXPECT_LE(iterated->total_cost(), greedy->total_cost() + 1e-9);
      }
    }
  }
  EXPECT_GE(comparable, 6u);  // the sweep must actually compare something
}

TEST(ProtectionExactnessTest, IteratedOftenMatchesExact) {
  // Not a theorem — a measured property documenting heuristic quality on
  // this instance family: the iterated variant hits the exact optimum in
  // a clear majority of solvable cases.
  std::uint32_t solvable = 0, matched = 0;
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    const auto inst = directed_instance(10, 35, seed);
    const auto exact = suurballe_disjoint_pair(inst.bare, NodeId{0}, NodeId{5});
    if (!exact.has_value()) continue;
    const auto iterated =
        route_protected_pair_iterated(inst.net, NodeId{0}, NodeId{5}, 8);
    if (!iterated.has_value()) continue;  // heuristic may miss trap cases
    ++solvable;
    if (iterated->total_cost() <= exact->total_cost + 1e-9) ++matched;
  }
  ASSERT_GE(solvable, 10u);
  EXPECT_GE(matched * 2, solvable);  // >= 50% exact
}

}  // namespace
}  // namespace lumen
