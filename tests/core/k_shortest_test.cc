#include "core/k_shortest.h"

#include <gtest/gtest.h>

#include <set>

#include "core/liang_shen.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::paper_example_network;
using testing::random_network;

TEST(KShortestTest, FirstAlternativeIsOptimal) {
  const auto net = paper_example_network();
  for (std::uint32_t t = 1; t < 7; ++t) {
    const auto optimal = route_semilightpath(net, NodeId{0}, NodeId{t});
    const auto ranked =
        k_shortest_semilightpaths(net, NodeId{0}, NodeId{t}, 1);
    if (!optimal.found) {
      EXPECT_TRUE(ranked.empty());
      continue;
    }
    ASSERT_EQ(ranked.size(), 1u);
    EXPECT_NEAR(ranked[0].cost, optimal.cost, 1e-9);
  }
}

TEST(KShortestTest, RankedSortedDistinctAndConsistent) {
  const auto net = paper_example_network();
  const auto ranked =
      k_shortest_semilightpaths(net, NodeId{0}, NodeId{6}, 8);
  ASSERT_GE(ranked.size(), 3u);  // the example has many alternatives
  double prev = 0.0;
  std::set<std::vector<Hop>> seen;
  for (const auto& route : ranked) {
    EXPECT_GE(route.cost + 1e-12, prev);
    prev = route.cost;
    EXPECT_TRUE(route.path.is_valid(net));
    EXPECT_NEAR(route.path.cost(net), route.cost, 1e-9);
    EXPECT_EQ(route.path.source(net), NodeId{0});
    EXPECT_EQ(route.path.destination(net), NodeId{6});
    // Distinct as routing decisions (hops carry wavelengths).
    EXPECT_TRUE(seen.insert(route.path.hops()).second);
    EXPECT_EQ(route.switches, route.path.switch_settings(net));
  }
}

TEST(KShortestTest, AlternativesDifferInWavelengthOrRoute) {
  // Two parallel wavelengths on one link: the alternatives are the same
  // physical route on different wavelengths.
  WdmNetwork net(2, 3, std::make_shared<NoConversion>());
  const LinkId e = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(e, Wavelength{0}, 1.0);
  net.set_wavelength(e, Wavelength{1}, 2.0);
  net.set_wavelength(e, Wavelength{2}, 3.0);
  const auto ranked = k_shortest_semilightpaths(net, NodeId{0}, NodeId{1}, 5);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_DOUBLE_EQ(ranked[0].cost, 1.0);
  EXPECT_EQ(ranked[0].path.hops()[0].wavelength, Wavelength{0});
  EXPECT_DOUBLE_EQ(ranked[2].cost, 3.0);
  EXPECT_EQ(ranked[2].path.hops()[0].wavelength, Wavelength{2});
}

TEST(KShortestTest, RandomNetworksProduceValidAlternatives) {
  for (const std::uint64_t seed : {91ULL, 92ULL, 93ULL}) {
    Rng rng(seed);
    const auto net = random_network(15, 30, 4, 3, ConvKind::kUniform, rng);
    const auto ranked =
        k_shortest_semilightpaths(net, NodeId{0}, NodeId{7}, 6);
    const auto optimal = route_semilightpath(net, NodeId{0}, NodeId{7});
    if (!optimal.found) {
      EXPECT_TRUE(ranked.empty());
      continue;
    }
    ASSERT_FALSE(ranked.empty());
    EXPECT_NEAR(ranked[0].cost, optimal.cost, 1e-9);
    for (const auto& route : ranked) {
      EXPECT_TRUE(route.path.is_valid(net));
      EXPECT_NEAR(route.path.cost(net), route.cost, 1e-9);
      EXPECT_GE(route.cost + 1e-9, optimal.cost);
    }
  }
}

TEST(KShortestTest, Preconditions) {
  const auto net = paper_example_network();
  EXPECT_THROW(
      (void)k_shortest_semilightpaths(net, NodeId{0}, NodeId{0}, 3), Error);
  EXPECT_THROW(
      (void)k_shortest_semilightpaths(net, NodeId{0}, NodeId{1}, 0), Error);
  EXPECT_THROW(
      (void)k_shortest_semilightpaths(net, NodeId{9}, NodeId{1}, 1), Error);
}

TEST(KShortestTest, UnreachableYieldsEmpty) {
  const auto net = paper_example_network();
  // Paper node 7 (id 6) has no out-links.
  EXPECT_TRUE(k_shortest_semilightpaths(net, NodeId{6}, NodeId{0}, 4).empty());
}

}  // namespace
}  // namespace lumen
