#include "core/constrained.h"

#include <gtest/gtest.h>

#include "core/liang_shen.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::random_network;

TEST(ConstrainedTest, BudgetZeroEqualsLightpathRouter) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Rng rng(seed);
    const auto net = random_network(20, 40, 5, 3, ConvKind::kUniform, rng);
    for (std::uint32_t t = 1; t < 20; t += 4) {
      const auto bounded =
          route_semilightpath_bounded(net, NodeId{0}, NodeId{t}, 0);
      const auto light = route_lightpath(net, NodeId{0}, NodeId{t});
      ASSERT_EQ(bounded.found, light.found) << "t=" << t << " seed " << seed;
      if (bounded.found) {
        EXPECT_NEAR(bounded.cost, light.cost, 1e-9);
        EXPECT_TRUE(bounded.path.is_lightpath());
      }
    }
  }
}

TEST(ConstrainedTest, LargeBudgetEqualsUnconstrained) {
  for (const std::uint64_t seed : {4ULL, 5ULL}) {
    Rng rng(seed);
    const auto net = random_network(15, 30, 4, 3, ConvKind::kRange, rng);
    for (std::uint32_t t = 1; t < 15; t += 3) {
      const auto bounded =
          route_semilightpath_bounded(net, NodeId{0}, NodeId{t}, 64);
      const auto free = route_semilightpath(net, NodeId{0}, NodeId{t});
      ASSERT_EQ(bounded.found, free.found) << "t=" << t;
      if (bounded.found) {
        EXPECT_NEAR(bounded.cost, free.cost, 1e-9);
      }
    }
  }
}

TEST(ConstrainedTest, BudgetEnforcedExactly) {
  // Chain forcing one conversion per hop boundary: 0-λ0->1-λ1->2-λ2->3.
  WdmNetwork net(4, 3, std::make_shared<UniformConversion>(0.1));
  for (std::uint32_t i = 0; i < 3; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{i}, 1.0);
  }
  EXPECT_FALSE(
      route_semilightpath_bounded(net, NodeId{0}, NodeId{3}, 0).found);
  EXPECT_FALSE(
      route_semilightpath_bounded(net, NodeId{0}, NodeId{3}, 1).found);
  const auto two = route_semilightpath_bounded(net, NodeId{0}, NodeId{3}, 2);
  ASSERT_TRUE(two.found);
  EXPECT_EQ(two.path.num_conversions(), 2u);
  EXPECT_NEAR(two.cost, 3.0 + 0.2, 1e-9);
}

TEST(ConstrainedTest, ReturnedPathRespectsBudget) {
  Rng rng(6);
  const auto net = random_network(20, 40, 5, 3, ConvKind::kUniform, rng);
  for (std::uint32_t budget = 0; budget <= 3; ++budget) {
    for (std::uint32_t t = 1; t < 20; t += 5) {
      const auto r =
          route_semilightpath_bounded(net, NodeId{0}, NodeId{t}, budget);
      if (!r.found) continue;
      EXPECT_LE(r.path.num_conversions(), budget);
      EXPECT_TRUE(r.path.is_valid(net));
      EXPECT_NEAR(r.path.cost(net), r.cost, 1e-9);
    }
  }
}

TEST(ConstrainedTest, ProfileMonotoneAndConsistent) {
  Rng rng(7);
  const auto net = random_network(18, 36, 4, 2, ConvKind::kUniform, rng);
  for (std::uint32_t t = 1; t < 18; t += 4) {
    const auto profile =
        conversion_cost_profile(net, NodeId{0}, NodeId{t}, 5);
    ASSERT_EQ(profile.size(), 6u);
    for (std::size_t c = 1; c < profile.size(); ++c) {
      EXPECT_LE(profile[c], profile[c - 1] + 1e-12)
          << "profile must be non-increasing in the budget";
    }
    // Each entry matches the dedicated bounded router.
    for (std::uint32_t c = 0; c <= 5; ++c) {
      const auto r =
          route_semilightpath_bounded(net, NodeId{0}, NodeId{t}, c);
      if (r.found) {
        EXPECT_NEAR(profile[c], r.cost, 1e-9) << "c=" << c;
      } else {
        EXPECT_EQ(profile[c], kInfiniteCost) << "c=" << c;
      }
    }
    // Unconstrained optimum is the profile's floor (for big enough c).
    const auto free = route_semilightpath(net, NodeId{0}, NodeId{t});
    if (free.found) {
      EXPECT_GE(profile[5] + 1e-9, free.cost);
    }
  }
}

TEST(ConstrainedTest, SelfRouteAndPreconditions) {
  const auto net = testing::paper_example_network();
  const auto self = route_semilightpath_bounded(net, NodeId{2}, NodeId{2}, 0);
  EXPECT_TRUE(self.found);
  EXPECT_DOUBLE_EQ(self.cost, 0.0);
  const auto profile = conversion_cost_profile(net, NodeId{2}, NodeId{2}, 3);
  for (const double c : profile) EXPECT_DOUBLE_EQ(c, 0.0);
  EXPECT_THROW(
      (void)route_semilightpath_bounded(net, NodeId{9}, NodeId{0}, 1), Error);
}

TEST(ConstrainedTest, RevisitInstanceNeedsBudgetTwo) {
  // The Fig. 5 instance needs two conversions at w; budget 1 blocks it.
  auto conv = std::make_shared<MatrixConversion>(4, 3);
  conv->set(NodeId{1}, Wavelength{0}, Wavelength{1}, 0.1);
  conv->set(NodeId{1}, Wavelength{1}, Wavelength{2}, 0.1);
  WdmNetwork net(4, 3, std::move(conv));
  const LinkId sw = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(sw, Wavelength{0}, 1.0);
  const LinkId wa = net.add_link(NodeId{1}, NodeId{2});
  net.set_wavelength(wa, Wavelength{1}, 1.0);
  const LinkId aw = net.add_link(NodeId{2}, NodeId{1});
  net.set_wavelength(aw, Wavelength{1}, 1.0);
  const LinkId wt = net.add_link(NodeId{1}, NodeId{3});
  net.set_wavelength(wt, Wavelength{2}, 1.0);

  EXPECT_FALSE(
      route_semilightpath_bounded(net, NodeId{0}, NodeId{3}, 1).found);
  const auto two = route_semilightpath_bounded(net, NodeId{0}, NodeId{3}, 2);
  ASSERT_TRUE(two.found);
  EXPECT_TRUE(two.path.revisits_node(net));
}

}  // namespace
}  // namespace lumen
