// Exact reconstruction of the paper's worked example (Figs. 1–4).
//
// The expected Λ_in / Λ_out sets below are transcribed verbatim from the
// paper's Section III-A listing for the network of Fig. 1 (0-based ids).
#include <gtest/gtest.h>

#include <set>

#include "core/aux_graph.h"
#include "core/brute_force.h"
#include "core/cfz.h"
#include "core/liang_shen.h"
#include "core/state_dijkstra.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::paper_example_network;

/// λ_i in paper notation (1-based) -> Wavelength (0-based).
Wavelength L(std::uint32_t paper_index) { return Wavelength{paper_index - 1}; }
/// Paper node (1-based) -> NodeId (0-based).
NodeId N(std::uint32_t paper_index) { return NodeId{paper_index - 1}; }

std::set<std::uint32_t> as_paper_set(const WavelengthSet& set) {
  std::set<std::uint32_t> out;
  for (const Wavelength l : set.to_vector()) out.insert(l.value() + 1);
  return out;
}

TEST(PaperExampleTest, NetworkShapeMatchesFig1) {
  const auto net = paper_example_network();
  EXPECT_EQ(net.num_nodes(), 7u);
  EXPECT_EQ(net.num_links(), 11u);
  EXPECT_EQ(net.num_wavelengths(), 4u);
  EXPECT_EQ(net.k0(), 3u);  // largest Λ(e) is {λ2,λ3,λ4} on ⟨6,7⟩
}

TEST(PaperExampleTest, LambdaInSetsMatchPaperListing) {
  const auto net = paper_example_network();
  using S = std::set<std::uint32_t>;
  EXPECT_EQ(as_paper_set(net.lambda_in(N(1))), (S{2, 3}));
  EXPECT_EQ(as_paper_set(net.lambda_in(N(2))), (S{1, 3}));
  EXPECT_EQ(as_paper_set(net.lambda_in(N(3))), (S{1, 2, 4}));
  EXPECT_EQ(as_paper_set(net.lambda_in(N(4))), (S{1, 2, 3, 4}));
  EXPECT_EQ(as_paper_set(net.lambda_in(N(5))), (S{3}));
  EXPECT_EQ(as_paper_set(net.lambda_in(N(6))), (S{1, 3}));
  EXPECT_EQ(as_paper_set(net.lambda_in(N(7))), (S{1, 2, 3, 4}));
}

TEST(PaperExampleTest, LambdaOutSetsMatchPaperListing) {
  const auto net = paper_example_network();
  using S = std::set<std::uint32_t>;
  EXPECT_EQ(as_paper_set(net.lambda_out(N(1))), (S{1, 2, 3, 4}));
  EXPECT_EQ(as_paper_set(net.lambda_out(N(2))), (S{1, 2, 4}));
  EXPECT_EQ(as_paper_set(net.lambda_out(N(3))), (S{2, 3, 4}));
  EXPECT_EQ(as_paper_set(net.lambda_out(N(4))), (S{3}));
  EXPECT_EQ(as_paper_set(net.lambda_out(N(5))), (S{1, 2, 3, 4}));
  EXPECT_EQ(as_paper_set(net.lambda_out(N(6))), (S{2, 3, 4}));
  EXPECT_EQ(as_paper_set(net.lambda_out(N(7))), (S{}));
}

TEST(PaperExampleTest, MultigraphLinkCountMatchesFig2) {
  // |E_M| = Σ_e |Λ(e)| = 2+3+2+2+2+2+1+2+2+2+3 = 23.
  const auto net = paper_example_network();
  EXPECT_EQ(net.total_link_wavelengths(), 23u);
}

TEST(PaperExampleTest, GadgetG3MatchesFig3) {
  const auto net = paper_example_network();
  const auto aux = AuxiliaryGraph::build_all_pairs(net);
  // X_3 from Λ_in(3) = {λ1, λ2, λ4}; Y_3 from Λ_out(3) = {λ2, λ3, λ4}.
  EXPECT_EQ(aux.x_size(N(3)), 3u);
  EXPECT_EQ(aux.y_size(N(3)), 3u);
  EXPECT_TRUE(aux.x_node(N(3), L(1)).valid());
  EXPECT_TRUE(aux.x_node(N(3), L(2)).valid());
  EXPECT_FALSE(aux.x_node(N(3), L(3)).valid());  // λ3 ∉ Λ_in(3)
  EXPECT_TRUE(aux.x_node(N(3), L(4)).valid());
  EXPECT_FALSE(aux.y_node(N(3), L(1)).valid());  // λ1 ∉ Λ_out(3)

  // Fig. 3: no gadget link (3,λ2) -> (3,λ3): the conversion is not allowed.
  const NodeId x = aux.x_node(N(3), L(2));
  const NodeId y_blocked = aux.y_node(N(3), L(3));
  bool found_blocked = false;
  std::uint32_t gadget_links_at_3 = 0;
  for (const LinkId e : aux.graph().out_links(x)) {
    if (aux.graph().head(e) == y_blocked) found_blocked = true;
  }
  EXPECT_FALSE(found_blocked);
  // Every other (λ_in, λ_out) pair at node 3 is allowed: |E_3| = 3*3 - 1.
  // (Count only conversion links; in all-pairs mode each x node also has a
  // sink-tie link to 3''.)
  for (std::uint32_t p = 1; p <= 4; ++p) {
    const NodeId xp = aux.x_node(N(3), L(p));
    if (!xp.valid()) continue;
    for (const LinkId e : aux.graph().out_links(xp)) {
      if (aux.link_info(e).kind == AuxLinkKind::kConversion)
        ++gadget_links_at_3;
    }
  }
  EXPECT_EQ(gadget_links_at_3, 8u);

  // The identity link (3,λ2) -> (3,λ2) exists with weight 0.
  const NodeId y_same = aux.y_node(N(3), L(2));
  bool found_identity = false;
  for (const LinkId e : aux.graph().out_links(x)) {
    if (aux.graph().head(e) == y_same) {
      found_identity = true;
      EXPECT_DOUBLE_EQ(aux.graph().weight(e), 0.0);
      EXPECT_EQ(aux.link_info(e).kind, AuxLinkKind::kConversion);
    }
  }
  EXPECT_TRUE(found_identity);
}

TEST(PaperExampleTest, EOrgLinksG3ToG1MatchFig4) {
  // The parallel links ⟨3,1⟩ on λ2 and λ3 become
  // y(3,λ2) -> x(1,λ2) and y(3,λ3) -> x(1,λ3).
  const auto net = paper_example_network(1.5);
  const auto aux = AuxiliaryGraph::build_all_pairs(net);
  for (const std::uint32_t lambda : {2u, 3u}) {
    const NodeId y = aux.y_node(N(3), L(lambda));
    const NodeId x = aux.x_node(N(1), L(lambda));
    ASSERT_TRUE(y.valid());
    ASSERT_TRUE(x.valid());
    bool found = false;
    for (const LinkId e : aux.graph().out_links(y)) {
      if (aux.graph().head(e) != x) continue;
      found = true;
      EXPECT_EQ(aux.link_info(e).kind, AuxLinkKind::kTransmission);
      EXPECT_DOUBLE_EQ(aux.graph().weight(e), 1.5);
    }
    EXPECT_TRUE(found);
  }
}

TEST(PaperExampleTest, ObservationBoundsHold) {
  const auto net = paper_example_network();
  const auto aux = AuxiliaryGraph::build_all_pairs(net);
  const auto& stats = aux.stats();
  const std::uint64_t n = net.num_nodes(), k = net.num_wavelengths(),
                      m = net.num_links();
  EXPECT_LE(stats.gadget_nodes, 2 * k * n);           // Observation 2
  EXPECT_LE(stats.gadget_links, k * k * n);           // Observation 2
  EXPECT_EQ(stats.multigraph_links, 23u);             // |E_M|
  EXPECT_EQ(stats.transmission_links, stats.multigraph_links);
  EXPECT_LE(stats.transmission_links, k * m);
}

TEST(PaperExampleTest, RoutingAgreesWithOracles) {
  const auto net = paper_example_network();
  for (std::uint32_t s = 1; s <= 7; ++s) {
    for (std::uint32_t t = 1; t <= 7; ++t) {
      if (s == t) continue;
      const auto ls = route_semilightpath(net, N(s), N(t));
      const auto oracle = state_dijkstra_route(net, N(s), N(t));
      EXPECT_EQ(ls.found, oracle.found) << s << "->" << t;
      if (ls.found) {
        EXPECT_NEAR(ls.cost, oracle.cost, 1e-9) << s << "->" << t;
        // The returned path must evaluate to the claimed cost.
        EXPECT_TRUE(ls.path.is_valid(net));
        EXPECT_NEAR(ls.path.cost(net), ls.cost, 1e-9);
        EXPECT_EQ(ls.path.source(net), N(s));
        EXPECT_EQ(ls.path.destination(net), N(t));
      }
    }
  }
}

TEST(PaperExampleTest, BruteForceConfirmsSelectedPairs) {
  const auto net = paper_example_network();
  for (const auto& [s, t] : {std::pair{1u, 7u}, std::pair{4u, 7u},
                             std::pair{5u, 1u}, std::pair{2u, 6u}}) {
    const auto ls = route_semilightpath(net, N(s), N(t));
    const auto bf = brute_force_route(net, N(s), N(t), 12);
    EXPECT_EQ(ls.found, bf.found) << s << "->" << t;
    if (ls.found) {
      EXPECT_NEAR(ls.cost, bf.cost, 1e-9) << s << "->" << t;
    }
  }
}

TEST(PaperExampleTest, CfzAgreesOnExample) {
  // The example's conversion costs are uniform (triangle inequality holds),
  // so CFZ must agree with Liang–Shen everywhere.
  const auto net = paper_example_network();
  for (std::uint32_t s = 1; s <= 7; ++s) {
    for (std::uint32_t t = 1; t <= 7; ++t) {
      if (s == t) continue;
      const auto ls = route_semilightpath(net, N(s), N(t));
      const auto cfz = cfz_route(net, N(s), N(t));
      EXPECT_EQ(ls.found, cfz.found) << s << "->" << t;
      if (ls.found) {
        EXPECT_NEAR(ls.cost, cfz.cost, 1e-9) << s << "->" << t;
      }
    }
  }
}

TEST(PaperExampleTest, UnreachableFromNode7) {
  // Node 7 has no outgoing links: nothing (but itself) is reachable.
  const auto net = paper_example_network();
  for (std::uint32_t t = 1; t <= 6; ++t) {
    const auto r = route_semilightpath(net, N(7), N(t));
    EXPECT_FALSE(r.found);
    EXPECT_EQ(r.cost, kInfiniteCost);
  }
  const auto self = route_semilightpath(net, N(7), N(7));
  EXPECT_TRUE(self.found);
  EXPECT_DOUBLE_EQ(self.cost, 0.0);
}

TEST(PaperExampleTest, BlockedConversionForcesDetourOrAlternative) {
  // With a huge cost on every conversion except identity, the router
  // prefers pure lightpaths when one exists.
  const auto net = paper_example_network(1.0, 100.0);
  const auto r = route_semilightpath(net, N(1), N(7));
  ASSERT_TRUE(r.found);
  // 1 -λ1-> 2 -λ1-> 7 is a pure lightpath of cost 2 (λ1 on ⟨1,2⟩ and ⟨2,7⟩).
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
  EXPECT_TRUE(r.path.is_lightpath());
  EXPECT_TRUE(r.switches.empty());
}

}  // namespace
}  // namespace lumen
