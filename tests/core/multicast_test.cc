#include "core/multicast.h"

#include <gtest/gtest.h>

#include "core/liang_shen.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::random_network;

TEST(MulticastTest, LegsMatchSinglePairOptima) {
  Rng rng(1);
  const auto net = random_network(20, 40, 5, 3, ConvKind::kUniform, rng);
  const std::vector<NodeId> dests = {NodeId{3}, NodeId{7}, NodeId{12},
                                     NodeId{18}};
  const auto mc = route_multicast(net, NodeId{0}, dests);
  ASSERT_EQ(mc.legs.size(), 4u);
  for (const MulticastLeg& leg : mc.legs) {
    const auto single = route_semilightpath(net, NodeId{0}, leg.destination);
    ASSERT_EQ(leg.reached, single.found);
    if (!leg.reached) continue;
    EXPECT_NEAR(leg.cost, single.cost, 1e-9);
    EXPECT_TRUE(leg.path.is_valid(net));
    EXPECT_NEAR(leg.path.cost(net), leg.cost, 1e-9);
  }
}

TEST(MulticastTest, SharingOnLineNetwork) {
  // 0 -> 1 -> 2 -> 3 single wavelength: the leg to 3 contains the legs to
  // 1 and 2; the forest uses exactly 3 (link, λ) pairs while unicasts
  // would use 1 + 2 + 3 = 6.
  WdmNetwork net(4, 1, std::make_shared<NoConversion>());
  for (std::uint32_t i = 0; i < 3; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{0}, 1.0);
  }
  const std::vector<NodeId> dests = {NodeId{1}, NodeId{2}, NodeId{3}};
  const auto mc = route_multicast(net, NodeId{0}, dests);
  EXPECT_TRUE(mc.all_reached);
  EXPECT_EQ(mc.tree_resources, 3u);
  EXPECT_EQ(mc.unicast_resources, 6u);
  EXPECT_EQ(mc.sharing(), 3u);
}

TEST(MulticastTest, TreeNeverUsesMoreThanUnicasts) {
  for (const std::uint64_t seed : {2ULL, 3ULL, 4ULL}) {
    Rng rng(seed);
    const auto net = random_network(25, 50, 4, 3, ConvKind::kRange, rng);
    std::vector<NodeId> dests;
    for (std::uint32_t d = 1; d < 25; d += 3) dests.push_back(NodeId{d});
    const auto mc = route_multicast(net, NodeId{0}, dests);
    EXPECT_LE(mc.tree_resources, mc.unicast_resources);
    // Shared prefixes use identical wavelengths: hops of any two legs on
    // the same physical link within the tree must agree on λ whenever
    // both legs' auxiliary paths pass the same tree branch.  (Weaker
    // checkable form: forest resources ≥ longest single leg.)
    std::uint64_t longest = 0;
    for (const auto& leg : mc.legs)
      longest = std::max<std::uint64_t>(longest, leg.path.length());
    EXPECT_GE(mc.tree_resources, longest);
  }
}

TEST(MulticastTest, UnreachableDestinationReported) {
  const auto net = testing::paper_example_network();
  // From paper node 7 (id 6) nothing is reachable.
  const std::vector<NodeId> dests = {NodeId{6}, NodeId{0}};
  const auto mc = route_multicast(net, NodeId{6}, dests);
  EXPECT_FALSE(mc.all_reached);
  ASSERT_EQ(mc.legs.size(), 2u);
  EXPECT_TRUE(mc.legs[0].reached);  // the source itself
  EXPECT_TRUE(mc.legs[0].path.empty());
  EXPECT_FALSE(mc.legs[1].reached);
  EXPECT_EQ(mc.legs[1].cost, kInfiniteCost);
}

TEST(MulticastTest, BroadcastFromHub) {
  // Broadcast (all nodes) from node 0 of the paper example.
  const auto net = testing::paper_example_network();
  std::vector<NodeId> everyone;
  for (std::uint32_t v = 0; v < 7; ++v) everyone.push_back(NodeId{v});
  const auto mc = route_multicast(net, NodeId{0}, everyone);
  EXPECT_TRUE(mc.all_reached);  // node 1 (paper) reaches all others
  EXPECT_GT(mc.sharing(), 0u);  // the example's paths overlap heavily
}

TEST(MulticastTest, Preconditions) {
  const auto net = testing::paper_example_network();
  EXPECT_THROW((void)route_multicast(net, NodeId{0}, {}), Error);
  const std::vector<NodeId> bad = {NodeId{99}};
  EXPECT_THROW((void)route_multicast(net, NodeId{0}, bad), Error);
  const std::vector<NodeId> ok = {NodeId{1}};
  EXPECT_THROW((void)route_multicast(net, NodeId{9}, ok), Error);
}

}  // namespace
}  // namespace lumen
