// Engine-level coverage for the batched sweep surface: bulk_costs rows
// must match the engine's own point queries exactly (the sweeps
// re-accumulate distances in the flat search's addition order), the
// stale-hierarchy path must fall back per source — counted on
// lumen.core.sweep.fallbacks — and never answer wrong, and the consumers
// rewired onto the sweeps (landmark selection, defragment's kMatrixGain
// ordering, the svc batch admission) must keep their contracts.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "core/route_engine.h"
#include "graph/hierarchy.h"
#include "graph/landmarks.h"
#include "obs/registry.h"
#include "rwa/defragment.h"
#include "rwa/dynamic_workload.h"
#include "svc/service.h"
#include "tests/test_util.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::random_network;

constexpr RouteEngine::Options kSweepEngine{.num_landmarks = 0,
                                            .build_hierarchy = true};

/// Every bulk row must equal the engine's own (flat, exact) point
/// queries as doubles — diagonal 0, +inf where no route exists.
void expect_rows_match_point_queries(const RouteEngine& engine,
                                     const std::vector<std::vector<double>>&
                                         rows,
                                     const char* what) {
  SearchScratch scratch;
  const std::uint32_t n = engine.num_nodes();
  ASSERT_EQ(rows.size(), n);
  for (std::uint32_t s = 0; s < n; ++s) {
    ASSERT_EQ(rows[s].size(), n);
    for (std::uint32_t t = 0; t < n; ++t) {
      if (s == t) {
        EXPECT_EQ(rows[s][t], 0.0) << what << " diagonal " << s;
        continue;
      }
      const RouteResult point =
          engine.route_semilightpath(NodeId{s}, NodeId{t}, scratch);
      if (!point.found) {
        EXPECT_EQ(rows[s][t], kInfiniteCost)
            << what << " " << s << "->" << t;
      } else {
        EXPECT_EQ(rows[s][t], point.cost) << what << " " << s << "->" << t;
      }
    }
  }
}

std::vector<NodeId> all_nodes(std::uint32_t n) {
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) nodes.push_back(NodeId{v});
  return nodes;
}

TEST(BulkCostsTest, SweepRowsMatchPointQueriesBitwise) {
  for (const std::uint64_t seed : {71ULL, 72ULL, 73ULL}) {
    Rng rng(seed);
    const WdmNetwork net =
        random_network(12, 14, 4, 2, ConvKind::kUniform, rng);
    RouteEngine engine(net, kSweepEngine);
    ASSERT_TRUE(engine.has_hierarchy());
    const auto rows = engine.bulk_costs(all_nodes(net.num_nodes()));
    expect_rows_match_point_queries(engine, rows, "sweep");
  }
}

TEST(BulkCostsTest, SweepAndFlatFallbackAgreeBitwise) {
  Rng rng(0xb01cULL);
  const WdmNetwork net = random_network(14, 16, 3, 2, ConvKind::kSparse, rng);
  RouteEngine engine(net, kSweepEngine);
  const auto sources = all_nodes(net.num_nodes());
  const RouteEngine& frozen = engine;
  RouteEngine::QueryOptions sweep_query{.use_hierarchy = true};
  RouteEngine::QueryOptions flat_query{.use_hierarchy = false};
  const auto swept = frozen.bulk_costs(sources, 1, sweep_query);
  const auto flat = frozen.bulk_costs(sources, 1, flat_query);
  ASSERT_EQ(swept.size(), flat.size());
  for (std::size_t s = 0; s < swept.size(); ++s) {
    for (std::size_t t = 0; t < swept[s].size(); ++t) {
      EXPECT_EQ(swept[s][t], flat[s][t]) << s << "->" << t;
    }
  }
}

TEST(BulkCostsTest, ThreadedMatchesSerial) {
  Rng rng(0xb01dULL);
  const WdmNetwork net = random_network(16, 18, 3, 2, ConvKind::kRange, rng);
  RouteEngine engine(net, kSweepEngine);
  const auto sources = all_nodes(net.num_nodes());
  const auto serial = engine.bulk_costs(sources, 1);
  const auto threaded = engine.bulk_costs(sources, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    for (std::size_t t = 0; t < serial[s].size(); ++t) {
      EXPECT_EQ(serial[s][t], threaded[s][t]) << s << "->" << t;
    }
  }
}

TEST(BulkCostsTest, StaleHierarchyFallsBackPerSourceAndStaysExact) {
  Rng rng(0x57a1e2ULL);
  const WdmNetwork net = random_network(12, 14, 4, 2, ConvKind::kUniform, rng);
  RouteEngine::Options options = kSweepEngine;
  options.hierarchy_auto_customize = false;
  RouteEngine engine(net, options);
  ASSERT_TRUE(engine.has_hierarchy());

  const LinkId e{0};
  const Wavelength lambda = net.available(e)[0].lambda;
  const auto handle = engine.reserve(e, lambda);
  ASSERT_TRUE(engine.hierarchy_stale());

  obs::Counter& fallbacks =
      obs::Registry::global().counter("lumen.core.sweep.fallbacks");
  obs::Counter& runs =
      obs::Registry::global().counter("lumen.core.sweep.runs");
  const std::uint64_t fallbacks_before = fallbacks.value();
  const std::uint64_t runs_before = runs.value();

  // Const call on a stale hierarchy: every source must be served by the
  // flat fallback (never a wrong sweep), and each one is counted.
  const auto sources = all_nodes(net.num_nodes());
  const RouteEngine& frozen = engine;
  RouteEngine::QueryOptions query{.use_hierarchy = true};
  const auto rows = frozen.bulk_costs(sources, 1, query);
  expect_rows_match_point_queries(engine, rows, "stale-fallback");
#if LUMEN_OBS_ENABLED
  EXPECT_EQ(runs.value(), runs_before);  // no sweep ran
  const std::uint64_t fell_back = fallbacks.value() - fallbacks_before;
  EXPECT_GE(fell_back, 1u);
  EXPECT_LE(fell_back, sources.size());
#endif

  // Customize and the same call sweeps again, still exact.
  EXPECT_GT(engine.customize_hierarchy(), 0u);
  const auto fresh = frozen.bulk_costs(sources, 1, query);
  expect_rows_match_point_queries(engine, fresh, "recustomized");
#if LUMEN_OBS_ENABLED
  EXPECT_GT(runs.value(), runs_before);
#endif
  engine.release(handle);
}

TEST(BulkCostsTest, LandmarkSelectionSweepParity) {
  Rng rng(0x1a27ULL);
  Digraph g(60);
  for (std::uint32_t i = 0; i < 240; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(60));
    const auto v = static_cast<std::uint32_t>(rng.next_below(60));
    if (u == v) continue;
    g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(0.1, 4.0));
  }
  const CsrDigraph fwd_csr(g);
  const CsrDigraph rev_csr = CsrDigraph::reversed(g);
  const ContractionHierarchy fwd_ch(fwd_csr, {});
  const ContractionHierarchy rev_ch(rev_csr, {});

  const LandmarkTables flat = select_landmarks(g, 4, 0xabcdULL);
  const LandmarkTables swept =
      select_landmarks(g, 4, 0xabcdULL, fwd_ch, rev_ch);
  ASSERT_EQ(flat.num_landmarks, swept.num_landmarks);
  ASSERT_EQ(flat.landmarks.size(), swept.landmarks.size());
  for (std::size_t l = 0; l < flat.landmarks.size(); ++l) {
    EXPECT_EQ(flat.landmarks[l], swept.landmarks[l]) << "landmark " << l;
  }
  ASSERT_EQ(flat.from_landmark.size(), swept.from_landmark.size());
  for (std::size_t i = 0; i < flat.from_landmark.size(); ++i) {
    ASSERT_EQ(flat.from_landmark[i], swept.from_landmark[i]) << "fwd " << i;
    ASSERT_EQ(flat.to_landmark[i], swept.to_landmark[i]) << "rev " << i;
  }
}

TEST(BulkCostsTest, DefragMatrixGainKeepsTheContract) {
  Rng rng(67);
  const Topology topo = grid_topology(4, 4);
  const Availability avail =
      full_availability(topo, 3, CostSpec::unit(), rng);
  SessionManager manager(
      assemble_network(topo, 3, avail,
                       std::make_shared<UniformConversion>(0.1)),
      RoutingPolicy::kSemilightpath);
  DynamicWorkloadConfig config;
  config.arrival_rate = 20.0;
  config.mean_holding_time = 1.0;
  config.num_arrivals = 150;
  config.seed = 68;
  (void)run_dynamic_workload(manager, config);
  Rng demand_rng(69);
  std::vector<std::pair<SessionId, double>> before;
  for (const auto& [s, t] : random_demands(16, 12, demand_rng)) {
    const auto id = manager.open(s, t);
    if (id.has_value()) before.emplace_back(*id, manager.find(*id)->cost);
  }
  const std::uint64_t active_before = manager.active_sessions();

  const auto report = defragment(manager, DefragOrder::kMatrixGain, 2);
  // Same guarantees as the default ordering: nothing dropped, nothing
  // worse, savings non-negative.
  EXPECT_EQ(manager.active_sessions(), active_before);
  EXPECT_EQ(report.considered, active_before);
  EXPECT_GE(report.cost_saved, 0.0);
  for (const auto& [id, old_cost] : before) {
    const SessionRecord* record = manager.find(id);
    ASSERT_NE(record, nullptr);
    EXPECT_TRUE(record->active);
    EXPECT_LE(record->cost, old_cost + 1e-9);
  }
}

TEST(BulkCostsTest, SvcOpenBatchAdmitsAndAccounts) {
  Rng rng(0x5c'0001ULL);
  const WdmNetwork net = random_network(12, 14, 4, 3, ConvKind::kUniform, rng);
  svc::ServiceOptions options;
  options.num_shards = 2;
  options.num_tenants = 1;
  options.engine.num_landmarks = 0;
  options.engine.build_hierarchy = true;
  options.query = {.use_hierarchy = true};
  svc::RoutingService service(net, options);

  std::vector<std::pair<NodeId, NodeId>> demands;
  for (std::uint32_t i = 0; i < 24; ++i) {
    const NodeId s{static_cast<std::uint32_t>(rng.next_below(12))};
    const NodeId t{static_cast<std::uint32_t>(rng.next_below(12))};
    if (s == t) continue;
    demands.emplace_back(s, t);
  }
  const auto tickets = service.open_batch(svc::TenantId{0}, demands);
  ASSERT_EQ(tickets.size(), demands.size());

  std::uint64_t admitted = 0;
  for (const auto& ticket : tickets) {
    ASSERT_TRUE(ticket.status == svc::AdmitStatus::kAdmitted ||
                ticket.status == svc::AdmitStatus::kBlocked);
    if (ticket.status == svc::AdmitStatus::kAdmitted) {
      ++admitted;
      EXPECT_TRUE(ticket.id.valid());
      EXPECT_GT(ticket.hops, 0u);
    }
  }
  EXPECT_GT(admitted, 0u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.offered, demands.size());
  EXPECT_EQ(stats.admitted, admitted);
  EXPECT_EQ(stats.blocked, demands.size() - admitted);
  EXPECT_EQ(service.active_sessions(), admitted);

  // The batch must be double-booking clean, exactly like serial opens.
  service.drain_all();
  std::vector<bool> owned(service.slot_table().num_slots(), false);
  for (const auto& [bits, slots] : service.active_reservations()) {
    for (const std::uint32_t slot : slots) {
      EXPECT_FALSE(owned[slot]) << "slot " << slot << " double-booked";
      owned[slot] = true;
    }
  }

  // Every admitted ticket closes exactly once.
  for (const auto& ticket : tickets) {
    if (ticket.status == svc::AdmitStatus::kAdmitted) {
      EXPECT_TRUE(service.close(ticket.id));
      EXPECT_FALSE(service.close(ticket.id));
    }
  }
  EXPECT_EQ(service.active_sessions(), 0u);
}

TEST(BulkCostsTest, SvcOpenBatchHonorsQuotaInInputOrder) {
  Rng rng(0x5c'0002ULL);
  const WdmNetwork net = random_network(10, 12, 4, 3, ConvKind::kUniform, rng);
  svc::ServiceOptions options;
  options.num_shards = 1;
  options.num_tenants = 1;
  svc::RoutingService service(net, options);
  service.set_quota(svc::TenantId{0}, 2);

  std::vector<std::pair<NodeId, NodeId>> demands;
  for (std::uint32_t i = 0; i + 1 < 10; i += 2) {
    demands.emplace_back(NodeId{i}, NodeId{i + 1});
  }
  const auto tickets = service.open_batch(svc::TenantId{0}, demands);
  ASSERT_EQ(tickets.size(), 5u);
  // Quota claims run in input order before any routing: demands past the
  // quota are denied regardless of how cheap they would have been.
  std::uint64_t denied = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    if (tickets[i].status == svc::AdmitStatus::kQuotaDenied) {
      ++denied;
      EXPECT_GE(i, 2u) << "denied inside the quota prefix";
    }
  }
  EXPECT_EQ(denied, 3u);
  EXPECT_LE(service.active_sessions(), 2u);
}

}  // namespace
}  // namespace lumen
