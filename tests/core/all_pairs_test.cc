// Corollary 1: the all-pairs router over G_all must agree with n
// independent single-pair runs, at one construction cost.
#include "core/all_pairs.h"

#include <gtest/gtest.h>

#include "core/liang_shen.h"
#include "core/state_dijkstra.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::random_network;

TEST(AllPairsTest, MatchesSinglePairOnPaperExample) {
  const auto net = testing::paper_example_network();
  AllPairsRouter router(net);
  for (std::uint32_t s = 0; s < 7; ++s) {
    for (std::uint32_t t = 0; t < 7; ++t) {
      const double expected =
          s == t ? 0.0 : route_semilightpath(net, NodeId{s}, NodeId{t}).cost;
      if (expected == kInfiniteCost) {
        EXPECT_EQ(router.cost(NodeId{s}, NodeId{t}), kInfiniteCost)
            << s << "->" << t;
      } else {
        EXPECT_NEAR(router.cost(NodeId{s}, NodeId{t}), expected, 1e-9)
            << s << "->" << t;
      }
    }
  }
}

TEST(AllPairsTest, LazyTreeComputation) {
  const auto net = testing::paper_example_network();
  AllPairsRouter router(net);
  EXPECT_EQ(router.trees_computed(), 0u);
  (void)router.cost(NodeId{0}, NodeId{3});
  EXPECT_EQ(router.trees_computed(), 1u);
  (void)router.cost(NodeId{0}, NodeId{5});  // same source: cached
  EXPECT_EQ(router.trees_computed(), 1u);
  (void)router.cost(NodeId{2}, NodeId{5});
  EXPECT_EQ(router.trees_computed(), 2u);
  (void)router.cost(NodeId{4}, NodeId{4});  // trivial: no tree needed
  EXPECT_EQ(router.trees_computed(), 2u);
}

TEST(AllPairsTest, RouteProducesValidPaths) {
  Rng rng(301);
  const auto net = random_network(20, 40, 5, 3, ConvKind::kUniform, rng);
  AllPairsRouter router(net);
  for (std::uint32_t s = 0; s < 20; s += 4) {
    for (std::uint32_t t = 0; t < 20; t += 3) {
      const auto r = router.route(NodeId{s}, NodeId{t});
      if (s == t) {
        EXPECT_TRUE(r.found);
        EXPECT_TRUE(r.path.empty());
        continue;
      }
      const auto single = route_semilightpath(net, NodeId{s}, NodeId{t});
      ASSERT_EQ(r.found, single.found) << s << "->" << t;
      if (!r.found) continue;
      EXPECT_NEAR(r.cost, single.cost, 1e-9);
      EXPECT_TRUE(r.path.is_valid(net));
      EXPECT_NEAR(r.path.cost(net), r.cost, 1e-9);
      EXPECT_EQ(r.path.source(net), NodeId{s});
      EXPECT_EQ(r.path.destination(net), NodeId{t});
    }
  }
}

TEST(AllPairsTest, CostMatrixConsistent) {
  Rng rng(302);
  const auto net = random_network(12, 24, 4, 2, ConvKind::kRange, rng);
  AllPairsRouter router(net);
  const auto matrix = router.cost_matrix();
  EXPECT_EQ(router.trees_computed(), 12u);
  ASSERT_EQ(matrix.size(), 12u);
  for (std::uint32_t s = 0; s < 12; ++s) {
    EXPECT_DOUBLE_EQ(matrix[s][s], 0.0);
    for (std::uint32_t t = 0; t < 12; ++t) {
      if (s == t) continue;
      const auto oracle = state_dijkstra_route(net, NodeId{s}, NodeId{t});
      if (oracle.found) {
        EXPECT_NEAR(matrix[s][t], oracle.cost, 1e-9) << s << "->" << t;
      } else {
        EXPECT_EQ(matrix[s][t], kInfiniteCost) << s << "->" << t;
      }
    }
  }
}

TEST(AllPairsTest, GAllSizeBounds) {
  // Corollary 1: |V_all| <= 2n(k+1), |E_all| <= k²n + km + 2kn.
  Rng rng(303);
  const auto net = random_network(30, 60, 6, 4, ConvKind::kUniform, rng);
  AllPairsRouter router(net);
  const auto& stats = router.aux_stats();
  const std::uint64_t n = net.num_nodes(), k = net.num_wavelengths(),
                      m = net.num_links();
  EXPECT_LE(stats.total_nodes(), 2 * n * (k + 1));
  EXPECT_LE(stats.total_links(), k * k * n + k * m + 2 * k * n);
}

TEST(AllPairsTest, TriangleInequalityOfOptima) {
  // Optimal semilightpath costs obey cost(s,t) <= cost(s,v) + cost(v,t)
  // whenever v's arrival/departure wavelengths can be stitched... in
  // general stitching adds a conversion, so we check the weaker relation
  // with the conversion ceiling added.
  Rng rng(304);
  const Topology topo = random_sparse_topology(15, 30, rng);
  const Availability avail =
      uniform_availability(topo, 5, 2, 4, CostSpec::uniform(1.0, 2.0), rng);
  const double conv_cost = 0.5;
  const auto net = assemble_network(
      topo, 5, avail, std::make_shared<UniformConversion>(conv_cost));
  AllPairsRouter router(net);
  const auto matrix = router.cost_matrix();
  for (std::uint32_t s = 0; s < 15; ++s)
    for (std::uint32_t v = 0; v < 15; ++v)
      for (std::uint32_t t = 0; t < 15; ++t) {
        if (matrix[s][v] == kInfiniteCost || matrix[v][t] == kInfiniteCost)
          continue;
        EXPECT_LE(matrix[s][t], matrix[s][v] + matrix[v][t] + conv_cost + 1e-9)
            << s << "->" << v << "->" << t;
      }
}

}  // namespace
}  // namespace lumen
