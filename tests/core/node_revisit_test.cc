// Theorem 2 and the Fig. 5 scenario.
//
// Without restrictions, the optimal semilightpath may legitimately visit a
// node more than once (converting on each visit).  Under Restriction 1
// (conversion defined on all of Λ_in(v) × Λ_out(v)) and Restriction 2
// (every conversion cost < every link cost), Theorem 2 proves the optimum
// is node-simple.
#include <gtest/gtest.h>

#include <memory>

#include "core/brute_force.h"
#include "core/liang_shen.h"
#include "core/state_dijkstra.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using testing::random_network;

/// The Fig. 5-style instance: node w (=1) cannot convert λ0→λ2 directly,
/// but can go λ0→λ1 and λ1→λ2; the loop w -> a -> w on λ1 lets the path
/// convert in two steps, so the unique s→t semilightpath visits w twice.
WdmNetwork revisit_instance() {
  auto conv = std::make_shared<MatrixConversion>(4, 3);
  conv->set(NodeId{1}, Wavelength{0}, Wavelength{1}, 0.1);
  conv->set(NodeId{1}, Wavelength{1}, Wavelength{2}, 0.1);
  // λ0→λ2 at node 1 stays forbidden: Restriction 1 is violated.
  WdmNetwork net(4, 3, std::move(conv));
  const LinkId sw = net.add_link(NodeId{0}, NodeId{1});  // s -> w
  net.set_wavelength(sw, Wavelength{0}, 1.0);
  const LinkId wa = net.add_link(NodeId{1}, NodeId{2});  // w -> a
  net.set_wavelength(wa, Wavelength{1}, 1.0);
  const LinkId aw = net.add_link(NodeId{2}, NodeId{1});  // a -> w
  net.set_wavelength(aw, Wavelength{1}, 1.0);
  const LinkId wt = net.add_link(NodeId{1}, NodeId{3});  // w -> t
  net.set_wavelength(wt, Wavelength{2}, 1.0);
  return net;
}

TEST(NodeRevisitTest, Fig5OptimumRevisitsNode) {
  const auto net = revisit_instance();
  const auto r = route_semilightpath(net, NodeId{0}, NodeId{3});
  ASSERT_TRUE(r.found);
  EXPECT_NEAR(r.cost, 4.0 + 0.2, 1e-9);  // 4 links + 2 conversions
  EXPECT_EQ(r.path.length(), 4u);
  EXPECT_TRUE(r.path.revisits_node(net));
  // Both conversions happen at w (= node 1).
  ASSERT_EQ(r.switches.size(), 2u);
  EXPECT_EQ(r.switches[0].node, NodeId{1});
  EXPECT_EQ(r.switches[1].node, NodeId{1});
  EXPECT_EQ(r.switches[0].from, Wavelength{0});
  EXPECT_EQ(r.switches[0].to, Wavelength{1});
  EXPECT_EQ(r.switches[1].from, Wavelength{1});
  EXPECT_EQ(r.switches[1].to, Wavelength{2});
}

TEST(NodeRevisitTest, OraclesAgreeOnRevisitInstance) {
  const auto net = revisit_instance();
  const auto ls = route_semilightpath(net, NodeId{0}, NodeId{3});
  const auto sd = state_dijkstra_route(net, NodeId{0}, NodeId{3});
  const auto bf = brute_force_route(net, NodeId{0}, NodeId{3}, 8);
  ASSERT_TRUE(sd.found);
  ASSERT_TRUE(bf.found);
  EXPECT_NEAR(ls.cost, sd.cost, 1e-9);
  EXPECT_NEAR(ls.cost, bf.cost, 1e-9);
  EXPECT_TRUE(bf.path.revisits_node(net));
}

TEST(NodeRevisitTest, AllowingDirectConversionRemovesRevisit) {
  // Same instance but with λ0→λ2 allowed at w (Restriction 1 restored and
  // conversion costs below link costs): the optimum becomes node-simple.
  auto conv = std::make_shared<MatrixConversion>(4, 3);
  conv->set(NodeId{1}, Wavelength{0}, Wavelength{1}, 0.1);
  conv->set(NodeId{1}, Wavelength{1}, Wavelength{2}, 0.1);
  conv->set(NodeId{1}, Wavelength{0}, Wavelength{2}, 0.1);
  WdmNetwork net(4, 3, std::move(conv));
  const LinkId sw = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(sw, Wavelength{0}, 1.0);
  const LinkId wa = net.add_link(NodeId{1}, NodeId{2});
  net.set_wavelength(wa, Wavelength{1}, 1.0);
  const LinkId aw = net.add_link(NodeId{2}, NodeId{1});
  net.set_wavelength(aw, Wavelength{1}, 1.0);
  const LinkId wt = net.add_link(NodeId{1}, NodeId{3});
  net.set_wavelength(wt, Wavelength{2}, 1.0);

  const auto r = route_semilightpath(net, NodeId{0}, NodeId{3});
  ASSERT_TRUE(r.found);
  EXPECT_NEAR(r.cost, 2.0 + 0.1, 1e-9);  // s->w->t with one conversion
  EXPECT_FALSE(r.path.revisits_node(net));
}

// Theorem 2 as a property: under Restrictions 1 and 2, optima are
// node-simple across random networks.
class Theorem2PropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(Theorem2PropertyTest, RestrictedOptimaAreNodeSimple) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  // UniformConversion(c) with c below every link cost satisfies both
  // restrictions: all pairs convertible (R1) and c < min w(e,λ) (R2).
  const Topology topo = random_sparse_topology(25, 50, rng);
  const Availability avail =
      uniform_availability(topo, 6, 1, 4, CostSpec::uniform(1.0, 3.0), rng);
  const auto net = assemble_network(topo, 6, avail,
                                    std::make_shared<UniformConversion>(0.05));
  ASSERT_LT(0.05, net.min_any_link_cost());  // Restriction 2 sanity

  Rng pick(seed ^ 0x777ULL);
  for (int trial = 0; trial < 20; ++trial) {
    const auto s = static_cast<std::uint32_t>(pick.next_below(25));
    auto t = static_cast<std::uint32_t>(pick.next_below(25));
    if (s == t) t = (t + 1) % 25;
    const auto r = route_semilightpath(net, NodeId{s}, NodeId{t});
    if (!r.found) continue;
    EXPECT_FALSE(r.path.revisits_node(net))
        << "seed " << seed << " " << s << "->" << t << ": "
        << r.path.to_string(net);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem2PropertyTest,
                         ::testing::Values(101ULL, 102ULL, 103ULL, 104ULL,
                                           105ULL, 106ULL, 107ULL, 108ULL));

TEST(NodeRevisitTest, RestrictionTwoViolationCanStillBeSimple) {
  // Theorem 2 gives a sufficient condition only; with big conversion costs
  // the optimum tends to avoid conversions altogether.  This documents the
  // one-directional nature of the claim rather than asserting a revisit.
  Rng rng(201);
  const auto net = random_network(15, 30, 4, 3, testing::ConvKind::kUniform,
                                  rng);
  const auto r = route_semilightpath(net, NodeId{0}, NodeId{5});
  if (r.found) {
    EXPECT_TRUE(r.path.is_valid(net));
  }
}

}  // namespace
}  // namespace lumen
