// RouteEngine correctness: the build-once flattened router must agree with
// the per-request reference routers cost-exactly on random networks, and
// its in-place residual updates must track a rebuilt-from-scratch oracle
// through arbitrary reserve/release interleavings.
#include "core/route_engine.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/liang_shen.h"
#include "tests/test_util.h"
#include "util/error.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::paper_example_network;
using testing::random_network;

constexpr ConvKind kAllKinds[] = {
    ConvKind::kNone, ConvKind::kUniform, ConvKind::kRange, ConvKind::kSparse,
    ConvKind::kRandomMatrix};

WdmNetwork random_engine_network(Rng& rng) {
  const std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.next_below(12));
  const std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.next_below(5));
  const std::uint32_t k0 = 1 + static_cast<std::uint32_t>(rng.next_below(k));
  const ConvKind kind = kAllKinds[rng.next_below(std::size(kAllKinds))];
  return random_network(n, n, k, k0, kind, rng);
}

/// Full result check against a reference RouteResult: same feasibility,
/// same optimal cost, and — when found — a valid path of that exact cost.
void expect_equivalent(const WdmNetwork& net, const RouteResult& reference,
                       const RouteResult& engine_result, NodeId s, NodeId t) {
  ASSERT_EQ(reference.found, engine_result.found)
      << "s=" << s.value() << " t=" << t.value();
  if (!reference.found) {
    EXPECT_EQ(engine_result.cost, kInfiniteCost);
    return;
  }
  EXPECT_NEAR(reference.cost, engine_result.cost, 1e-9);
  if (s == t) return;
  ASSERT_FALSE(engine_result.path.empty());
  EXPECT_TRUE(engine_result.path.is_valid(net));
  EXPECT_EQ(engine_result.path.source(net), s);
  EXPECT_EQ(engine_result.path.destination(net), t);
  // The reported cost must be the path's true Equation-(1) cost, not just
  // the search's distance label.
  EXPECT_NEAR(engine_result.path.cost(net), engine_result.cost, 1e-9);
}

TEST(RouteEngineTest, PaperExampleMatchesReferenceRouter) {
  const WdmNetwork net = paper_example_network();
  RouteEngine engine(net);
  for (std::uint32_t s = 0; s < net.num_nodes(); ++s) {
    for (std::uint32_t t = 0; t < net.num_nodes(); ++t) {
      const RouteResult reference =
          route_semilightpath(net, NodeId{s}, NodeId{t});
      const RouteResult got = engine.route_semilightpath(NodeId{s}, NodeId{t});
      expect_equivalent(net, reference, got, NodeId{s}, NodeId{t});
    }
  }
}

TEST(RouteEngineTest, SemilightpathEquivalenceOnRandomNetworks) {
  Rng rng(0x5eed2026'0806a001ULL);
  for (int iteration = 0; iteration < 100; ++iteration) {
    const WdmNetwork net = random_engine_network(rng);
    RouteEngine engine(net);
    for (int query = 0; query < 6; ++query) {
      const NodeId s{static_cast<std::uint32_t>(
          rng.next_below(net.num_nodes()))};
      const NodeId t{static_cast<std::uint32_t>(
          rng.next_below(net.num_nodes()))};
      const RouteResult reference = route_semilightpath(net, s, t);
      const RouteResult got = engine.route_semilightpath(s, t);
      expect_equivalent(net, reference, got, s, t);
    }
  }
}

TEST(RouteEngineTest, LightpathEquivalenceOnRandomNetworks) {
  Rng rng(0x5eed2026'0806a002ULL);
  for (int iteration = 0; iteration < 100; ++iteration) {
    const WdmNetwork net = random_engine_network(rng);
    RouteEngine engine(net);
    for (int query = 0; query < 6; ++query) {
      const NodeId s{static_cast<std::uint32_t>(
          rng.next_below(net.num_nodes()))};
      const NodeId t{static_cast<std::uint32_t>(
          rng.next_below(net.num_nodes()))};
      const RouteResult reference = route_lightpath(net, s, t);
      const RouteResult got = engine.route_lightpath(s, t);
      expect_equivalent(net, reference, got, s, t);
      if (got.found && s != t) EXPECT_TRUE(got.path.is_lightpath());
    }
  }
}

TEST(RouteEngineTest, ReserveReleaseTracksRebuiltOracle) {
  // The oracle is a WdmNetwork whose availability is mutated with
  // clear/set_wavelength exactly as the engine is patched; at every step
  // the engine must answer like a per-request router on the oracle.
  Rng rng(0x5eed2026'0806a003ULL);
  for (int iteration = 0; iteration < 25; ++iteration) {
    WdmNetwork oracle = random_engine_network(rng);
    RouteEngine engine(oracle);

    struct Claim {
      LinkId link;
      Wavelength lambda;
      double cost;
      RouteEngine::ReserveHandle handle;
    };
    std::vector<Claim> claims;

    for (int step = 0; step < 30; ++step) {
      const bool do_release = !claims.empty() && rng.next_bool(0.4);
      if (do_release) {
        const std::size_t i = rng.next_below(claims.size());
        oracle.set_wavelength(claims[i].link, claims[i].lambda,
                              claims[i].cost);
        engine.release(claims[i].handle);
        claims[i] = claims.back();
        claims.pop_back();
      } else {
        // Claim a random still-available (link, λ).
        const LinkId e{static_cast<std::uint32_t>(
            rng.next_below(oracle.num_links()))};
        if (oracle.num_available(e) == 0) continue;
        const auto& lw =
            oracle.available(e)[rng.next_below(oracle.num_available(e))];
        // Copy before clear_wavelength: `lw` references the availability
        // vector that the clear mutates.
        Claim claim{e, lw.lambda, lw.cost, {}};
        ASSERT_TRUE(oracle.clear_wavelength(e, claim.lambda));
        claim.handle = engine.reserve(e, claim.lambda);
        claims.push_back(claim);
      }

      const NodeId s{static_cast<std::uint32_t>(
          rng.next_below(oracle.num_nodes()))};
      const NodeId t{static_cast<std::uint32_t>(
          rng.next_below(oracle.num_nodes()))};
      const RouteResult reference = route_semilightpath(oracle, s, t);
      const RouteResult semilight = engine.route_semilightpath(s, t);
      ASSERT_EQ(reference.found, semilight.found) << "step " << step;
      if (reference.found)
        EXPECT_NEAR(reference.cost, semilight.cost, 1e-9) << "step " << step;

      const RouteResult lp_reference = route_lightpath(oracle, s, t);
      const RouteResult lp = engine.route_lightpath(s, t);
      ASSERT_EQ(lp_reference.found, lp.found) << "step " << step;
      if (lp_reference.found)
        EXPECT_NEAR(lp_reference.cost, lp.cost, 1e-9) << "step " << step;
    }

    // Releasing everything must restore the pristine answers.
    for (const Claim& claim : claims) {
      oracle.set_wavelength(claim.link, claim.lambda, claim.cost);
      engine.release(claim.handle);
    }
    for (int query = 0; query < 4; ++query) {
      const NodeId s{static_cast<std::uint32_t>(
          rng.next_below(oracle.num_nodes()))};
      const NodeId t{static_cast<std::uint32_t>(
          rng.next_below(oracle.num_nodes()))};
      expect_equivalent(oracle, route_semilightpath(oracle, s, t),
                        engine.route_semilightpath(s, t), s, t);
    }
  }
}

TEST(RouteEngineTest, ReserveFlipsWeightAndReleaseRestoresIt) {
  const WdmNetwork net = paper_example_network(1.5, 0.25);
  RouteEngine engine(net);
  const LinkId e{0};
  const Wavelength lambda = net.available(e).front().lambda;
  const double original = engine.weight(e, lambda);
  EXPECT_DOUBLE_EQ(original, net.available(e).front().cost);

  const auto handle = engine.reserve(e, lambda);
  EXPECT_EQ(engine.weight(e, lambda), kInfiniteCost);
  engine.release(handle);
  EXPECT_DOUBLE_EQ(engine.weight(e, lambda), original);
}

TEST(RouteEngineTest, SetWeightSupportsFailureAndRepair) {
  const WdmNetwork net = paper_example_network();
  RouteEngine engine(net);
  const LinkId e{0};
  const Wavelength lambda = net.available(e).front().lambda;
  const double original = engine.weight(e, lambda);

  engine.set_weight(e, lambda, kInfiniteCost);  // fail
  EXPECT_EQ(engine.weight(e, lambda), kInfiniteCost);
  engine.set_weight(e, lambda, original);  // repair
  EXPECT_DOUBLE_EQ(engine.weight(e, lambda), original);
}

TEST(RouteEngineTest, TrivialSelfRouteAndPreconditions) {
  const WdmNetwork net = paper_example_network();
  RouteEngine engine(net);

  const RouteResult self = engine.route_semilightpath(NodeId{3}, NodeId{3});
  EXPECT_TRUE(self.found);
  EXPECT_DOUBLE_EQ(self.cost, 0.0);
  EXPECT_TRUE(self.path.empty());

  EXPECT_THROW((void)engine.route_semilightpath(NodeId{7}, NodeId{0}), Error);
  EXPECT_THROW((void)engine.route_lightpath(NodeId{0}, NodeId{99}), Error);
  // λ outside the base Λ(e) is a structural change: reserve must refuse.
  const LinkId e{0};
  Wavelength missing = Wavelength::invalid();
  for (std::uint32_t l = 0; l < net.num_wavelengths(); ++l) {
    if (!net.is_available(e, Wavelength{l})) {
      missing = Wavelength{l};
      break;
    }
  }
  ASSERT_TRUE(missing.valid());
  EXPECT_THROW((void)engine.reserve(e, missing), Error);
  EXPECT_EQ(engine.weight(e, missing), kInfiniteCost);
}

TEST(RouteEngineTest, StatsReportAmortizedStructure) {
  const WdmNetwork net = paper_example_network();
  RouteEngine engine(net);
  EXPECT_GT(engine.stats().core_nodes, 0u);
  EXPECT_GT(engine.stats().core_links, 0u);
  EXPECT_EQ(engine.stats().transmission_slots, net.total_link_wavelengths());
  EXPECT_GE(engine.stats().build_seconds, 0.0);

  const RouteResult semilight = engine.route_semilightpath(NodeId{0}, NodeId{6});
  ASSERT_TRUE(semilight.found);
  EXPECT_EQ(semilight.stats.aux_nodes, engine.stats().core_nodes);
  EXPECT_EQ(semilight.stats.aux_links, engine.stats().core_links);
  EXPECT_EQ(semilight.stats.wavelengths_searched, 0u);
  EXPECT_DOUBLE_EQ(semilight.stats.build_seconds, 0.0);  // amortized

  const RouteResult lp = engine.route_lightpath(NodeId{0}, NodeId{6});
  EXPECT_EQ(lp.stats.aux_nodes, net.num_nodes());
  EXPECT_EQ(lp.stats.aux_links, net.num_links());
  EXPECT_EQ(lp.stats.wavelengths_searched, net.num_wavelengths());
}

}  // namespace
}  // namespace lumen
