// Section IV (Theorem 4): with |Λ(e)| <= k_0 the auxiliary graph — and
// hence the whole algorithm — is sized independently of the universe k.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/aux_graph.h"
#include "core/cfz.h"
#include "core/liang_shen.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

/// A fixed topology/availability with the universe size k varying: the λ
/// indices in use are remapped to spread across [0, k), but the *number*
/// of wavelengths per link stays k0.  This isolates pure k-dependence.
WdmNetwork spread_network(std::uint32_t n, std::uint32_t k, std::uint32_t k0,
                          std::uint64_t seed) {
  Rng rng(seed);
  const Topology topo = random_sparse_topology(n, 2 * n, rng);
  WdmNetwork net(topo.num_nodes, k,
                 std::make_shared<RangeLimitedConversion>(k, 0.2, 0.0));
  Rng lambda_rng(seed ^ 0x5555ULL);
  for (const auto& [u, v] : topo.links) {
    const LinkId e = net.add_link(u, v);
    for (const std::uint32_t l :
         lambda_rng.sample_without_replacement(k, k0)) {
      net.set_wavelength(e, Wavelength{l},
                         lambda_rng.next_double_in(1.0, 2.0));
    }
  }
  return net;
}

TEST(RestrictedCaseTest, AuxSizeIndependentOfUniverse) {
  // Same n, m, k0; k grows 8 -> 512.  Gadget sizes must track the
  // Observation 4/5 bounds, which do not involve k at all.
  constexpr std::uint32_t kN = 40, kK0 = 3;
  std::uint64_t baseline_nodes = 0;
  for (const std::uint32_t k : {8u, 32u, 128u, 512u}) {
    const auto net = spread_network(kN, k, kK0, /*seed=*/7);
    EXPECT_EQ(net.k0(), kK0);
    const auto aux = AuxiliaryGraph::build_all_pairs(net);
    const auto& stats = aux.stats();
    const std::uint64_t m = net.num_links();
    const std::uint64_t d = net.max_degree();
    // Observation 5: |V'| <= m k0 ... per side it is bounded by Σ|Λ(e)|.
    EXPECT_LE(stats.gadget_nodes, 2 * m * kK0);
    EXPECT_LE(stats.gadget_links + stats.transmission_links,
              d * d * kN * static_cast<std::uint64_t>(kK0) * kK0 + m * kK0);
    // Node count varies only through which λ collide on a node — bounded
    // variation, never growth proportional to k.
    if (baseline_nodes == 0) baseline_nodes = stats.gadget_nodes;
    EXPECT_LE(stats.gadget_nodes, 2 * m * kK0);
    EXPECT_GE(stats.gadget_nodes, baseline_nodes / 2);
  }
}

TEST(RestrictedCaseTest, CfzSizeGrowsWithUniverse) {
  // The contrast Theorem 4 exploits: CFZ's wavelength graph has k*n nodes
  // regardless of availability.
  constexpr std::uint32_t kN = 20, kK0 = 2;
  std::uint64_t prev_nodes = 0;
  for (const std::uint32_t k : {4u, 16u, 64u}) {
    const auto net = spread_network(kN, k, kK0, /*seed=*/9);
    const auto stats = cfz_graph_stats(net);
    EXPECT_EQ(stats.nodes, static_cast<std::uint64_t>(k) * kN + 2);
    EXPECT_GT(stats.nodes, prev_nodes);
    prev_nodes = stats.nodes;
    // The n² row scan per wavelength.
    EXPECT_EQ(stats.pair_scans,
              static_cast<std::uint64_t>(k) * kN * kN);
  }
}

TEST(RestrictedCaseTest, RoutingStillCorrectWithHugeUniverse) {
  // k = 256 with only 3 wavelengths per link: results must match the
  // state-space oracle (which is O(nk) and still tractable here).
  const auto net = spread_network(15, 256, 3, /*seed=*/11);
  for (std::uint32_t t = 1; t < 15; t += 4) {
    const auto ls = route_semilightpath(net, NodeId{0}, NodeId{t});
    // The state oracle would be slow at k=256; use CFZ only for found-ness
    // and the path self-evaluation for cost correctness.
    if (ls.found) {
      EXPECT_TRUE(ls.path.is_valid(net));
      EXPECT_NEAR(ls.path.cost(net), ls.cost, 1e-9);
    }
  }
}

TEST(RestrictedCaseTest, SearchEffortIndependentOfUniverse) {
  // Dijkstra pops on G_{s,t} must not scale with k at fixed k0.
  constexpr std::uint32_t kN = 40, kK0 = 3;
  std::vector<std::uint64_t> pops;
  for (const std::uint32_t k : {8u, 64u, 512u}) {
    const auto net = spread_network(kN, k, kK0, /*seed=*/13);
    const auto r = route_semilightpath(net, NodeId{0}, NodeId{kN / 2});
    pops.push_back(r.stats.search_pops + 1);
  }
  // Within 2x of each other (the λ collision pattern shifts slightly).
  const auto [min_it, max_it] = std::minmax_element(pops.begin(), pops.end());
  EXPECT_LE(*max_it, 2 * *min_it);
}

TEST(RestrictedCaseTest, K0OneIsPureLightpathRouting) {
  // k0 = 1: every link carries exactly one wavelength; semilightpaths may
  // still convert at nodes between differently-colored links.
  const auto net = spread_network(12, 16, 1, /*seed=*/17);
  EXPECT_EQ(net.k0(), 1u);
  for (std::uint32_t t = 1; t < 12; t += 3) {
    const auto r = route_semilightpath(net, NodeId{0}, NodeId{t});
    if (r.found) {
      EXPECT_TRUE(r.path.is_valid(net));
      EXPECT_NEAR(r.path.cost(net), r.cost, 1e-9);
    }
  }
}

}  // namespace
}  // namespace lumen
