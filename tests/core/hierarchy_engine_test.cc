// Hierarchy RouteEngine equivalence: the bidirectional upward search over
// the partial contraction hierarchy (plain CH and potential-pruned
// CH+ALT) must return *bit-identical* costs to the engine's flat searches
// — the engine re-accumulates the unpacked slot path left-to-right, the
// same addition order the flat Dijkstra uses — and must stay exact
// through reserve/fail/release/repair churn, where only the patched
// spans' support cones are re-customized.  The stale path (patches not
// yet customized) must fall back to the flat search, never answer wrong.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/liang_shen.h"
#include "core/route_engine.h"
#include "obs/registry.h"
#include "rwa/session_manager.h"
#include "tests/test_util.h"
#include "util/error.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::fuzz_network;
using testing::paper_example_network;
using testing::random_network;

constexpr ConvKind kAllKinds[] = {
    ConvKind::kNone, ConvKind::kUniform, ConvKind::kRange, ConvKind::kSparse,
    ConvKind::kRandomMatrix};

WdmNetwork random_engine_network(Rng& rng) {
  const std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.next_below(12));
  const std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.next_below(5));
  const std::uint32_t k0 = 1 + static_cast<std::uint32_t>(rng.next_below(k));
  const ConvKind kind = kAllKinds[rng.next_below(std::size(kAllKinds))];
  return random_network(n, n, k, k0, kind, rng);
}

constexpr RouteEngine::Options kWithHierarchy{.build_hierarchy = true};
constexpr RouteEngine::QueryOptions kAlt{.goal_directed = true};
constexpr RouteEngine::QueryOptions kCh{.use_hierarchy = true};
constexpr RouteEngine::QueryOptions kChAlt{.goal_directed = true,
                                           .use_hierarchy = true};

/// Plain Dijkstra, ALT, CH, and CH+ALT must agree exactly (same costs as
/// doubles, same feasibility), and the hierarchy modes must produce valid
/// paths of the claimed cost.
void expect_modes_identical(const WdmNetwork& net, RouteEngine& engine,
                            NodeId s, NodeId t) {
  const RouteResult plain = engine.route_semilightpath(s, t);
  for (const auto& query : {kAlt, kCh, kChAlt}) {
    const RouteResult result = engine.route_semilightpath(s, t, query);
    ASSERT_EQ(plain.found, result.found)
        << "s=" << s.value() << " t=" << t.value();
    EXPECT_EQ(plain.cost, result.cost)
        << "s=" << s.value() << " t=" << t.value();
    if (!result.found || s == t) continue;
    EXPECT_TRUE(result.path.is_valid(net));
    EXPECT_EQ(result.path.source(net), s);
    EXPECT_EQ(result.path.destination(net), t);
    EXPECT_NEAR(result.path.cost(net), result.cost, 1e-9);
  }
}

TEST(HierarchyEngineTest, PaperExampleAllPairsAllModes) {
  const WdmNetwork net = paper_example_network();
  RouteEngine engine(net, kWithHierarchy);
  EXPECT_TRUE(engine.has_hierarchy());
  EXPECT_FALSE(engine.hierarchy_stale());
  for (std::uint32_t s = 0; s < net.num_nodes(); ++s) {
    for (std::uint32_t t = 0; t < net.num_nodes(); ++t) {
      expect_modes_identical(net, engine, NodeId{s}, NodeId{t});
      const RouteResult reference =
          route_semilightpath(net, NodeId{s}, NodeId{t});
      const RouteResult hier =
          engine.route_semilightpath(NodeId{s}, NodeId{t}, kChAlt);
      ASSERT_EQ(reference.found, hier.found);
      if (reference.found) EXPECT_NEAR(reference.cost, hier.cost, 1e-9);
    }
  }
}

class HierarchyEngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HierarchyEngineFuzz, EquivalenceThroughChurnOnRandomNetworks) {
  Rng rng(GetParam());
  // 4 structured + 2 degenerate networks per seed; 10 seeds → 60 nets,
  // each taken through a reserve/fail/release/repair churn while every
  // mode must keep agreeing bit-for-bit.
  for (int iteration = 0; iteration < 6; ++iteration) {
    const WdmNetwork net =
        iteration < 4 ? random_engine_network(rng) : fuzz_network(rng);
    if (net.num_nodes() < 2) continue;
    WdmNetwork oracle = net;
    RouteEngine engine(net, kWithHierarchy);

    struct Claim {
      LinkId link;
      Wavelength lambda;
      double cost = 0.0;
      RouteEngine::ReserveHandle handle;
      bool failed = false;
    };
    std::vector<Claim> claims;

    for (int step = 0; step < 15; ++step) {
      const int action = static_cast<int>(rng.next_below(4));
      if (action == 0 || claims.empty()) {
        if (oracle.num_links() == 0) continue;
        const LinkId e{
            static_cast<std::uint32_t>(rng.next_below(oracle.num_links()))};
        if (oracle.num_available(e) == 0) continue;
        const LinkWavelength lw =
            oracle.available(e)[rng.next_below(oracle.num_available(e))];
        Claim claim{e, lw.lambda, lw.cost, {}, rng.next_bool(0.4)};
        ASSERT_TRUE(oracle.clear_wavelength(e, claim.lambda));
        if (claim.failed) {
          engine.set_weight(e, claim.lambda, kInfiniteCost);
        } else {
          claim.handle = engine.reserve(e, claim.lambda);
        }
        claims.push_back(claim);
      } else {
        const std::size_t i = rng.next_below(claims.size());
        const Claim claim = claims[i];
        claims.erase(claims.begin() + static_cast<std::ptrdiff_t>(i));
        oracle.set_wavelength(claim.link, claim.lambda, claim.cost);
        if (claim.failed) {
          engine.set_weight(claim.link, claim.lambda, claim.cost);
        } else {
          engine.release(claim.handle);
        }
      }

      const NodeId s{
          static_cast<std::uint32_t>(rng.next_below(oracle.num_nodes()))};
      const NodeId t{
          static_cast<std::uint32_t>(rng.next_below(oracle.num_nodes()))};
      expect_modes_identical(oracle, engine, s, t);
      const RouteResult reference = route_semilightpath(oracle, s, t);
      const RouteResult hier = engine.route_semilightpath(s, t, kChAlt);
      ASSERT_EQ(reference.found, hier.found)
          << "s=" << s.value() << " t=" << t.value() << " step=" << step;
      if (reference.found) EXPECT_NEAR(reference.cost, hier.cost, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyEngineFuzz,
                         ::testing::Values(0xc4'0001ULL, 0xc4'0002ULL,
                                           0xc4'0003ULL, 0xc4'0004ULL,
                                           0xc4'0005ULL, 0xc4'0006ULL,
                                           0xc4'0007ULL, 0xc4'0008ULL,
                                           0xc4'0009ULL, 0xc4'000aULL));

TEST(HierarchyEngineTest, StaleFallbackThenRecustomize) {
  Rng rng(0x57a1eULL);
  const WdmNetwork net = random_network(20, 30, 4, 2, ConvKind::kUniform, rng);
  // Manual customization: patches leave the hierarchy stale until
  // customize_hierarchy() runs.
  RouteEngine::Options options = kWithHierarchy;
  options.hierarchy_auto_customize = false;
  RouteEngine engine(net, options);
  ASSERT_TRUE(engine.has_hierarchy());
  EXPECT_FALSE(engine.hierarchy_stale());
  EXPECT_EQ(engine.customize_hierarchy(), 0u);  // nothing dirty

  const LinkId e{0};
  const Wavelength lambda = net.available(e)[0].lambda;
  const auto handle = engine.reserve(e, lambda);
  EXPECT_TRUE(engine.hierarchy_stale());

  // While stale, use_hierarchy queries must fall back to the flat search
  // (bumping the fallback counter) and still answer exactly.
  SearchScratch scratch;
  obs::Counter& fallbacks =
      obs::Registry::global().counter("lumen.core.hierarchy.fallbacks");
  obs::Counter& hierarchy_queries =
      obs::Registry::global().counter("lumen.core.hierarchy.queries");
  const std::uint64_t fallbacks_before = fallbacks.value();
  const std::uint64_t queries_before = hierarchy_queries.value();
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId s{static_cast<std::uint32_t>(rng.next_below(20))};
    const NodeId t{static_cast<std::uint32_t>(rng.next_below(20))};
    const RouteResult plain = engine.route_semilightpath(s, t, scratch);
    const RouteResult stale =
        engine.route_semilightpath(s, t, scratch, kChAlt);
    ASSERT_EQ(plain.found, stale.found);
    EXPECT_EQ(plain.cost, stale.cost);
  }
  EXPECT_TRUE(engine.hierarchy_stale());  // const queries never customize
#if LUMEN_OBS_ENABLED
  EXPECT_GT(fallbacks.value(), fallbacks_before);
  EXPECT_EQ(hierarchy_queries.value(), queries_before);
#endif

  // Explicit customization touches the patched cone and re-arms the
  // hierarchy path.
  EXPECT_GT(engine.customize_hierarchy(), 0u);
  EXPECT_FALSE(engine.hierarchy_stale());
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId s{static_cast<std::uint32_t>(rng.next_below(20))};
    const NodeId t{static_cast<std::uint32_t>(rng.next_below(20))};
    expect_modes_identical(net, engine, s, t);
  }
#if LUMEN_OBS_ENABLED
  EXPECT_GT(hierarchy_queries.value(), queries_before);
#endif
  engine.release(handle);
  EXPECT_TRUE(engine.hierarchy_stale());
  // The auto-customize path (scratch-less overload) self-heals.
  const RouteResult healed =
      engine.route_semilightpath(NodeId{0}, NodeId{1}, kChAlt);
  (void)healed;
  EXPECT_TRUE(engine.hierarchy_stale());  // auto-customize was disabled

  RouteEngine::Options auto_options = kWithHierarchy;
  RouteEngine auto_engine(net, auto_options);
  const auto h2 = auto_engine.reserve(e, lambda);
  EXPECT_TRUE(auto_engine.hierarchy_stale());
  (void)auto_engine.route_semilightpath(NodeId{0}, NodeId{1}, kChAlt);
  EXPECT_FALSE(auto_engine.hierarchy_stale());
  auto_engine.release(h2);
}

TEST(HierarchyEngineTest, SinglePatchRecustomizationIsSublinear) {
  // Counter-based sublinearity gate: one span fail/repair must touch only
  // that span's support cone, a small fraction of the arc set (flat
  // re-customization would re-evaluate every arc on every patch).
  Rng rng(0x5ab'11eaULL);
  const WdmNetwork net =
      random_network(60, 120, 5, 3, ConvKind::kUniform, rng);
  RouteEngine::Options options = kWithHierarchy;
  options.hierarchy_auto_customize = false;
  RouteEngine engine(net, options);
  const auto total_arcs = static_cast<double>(engine.stats().core_links +
                                              engine.stats().hierarchy_shortcuts);
  obs::Counter& recustomized = obs::Registry::global().counter(
      "lumen.core.hierarchy.recustomized_arcs");
  const std::uint64_t counter_before = recustomized.value();

  std::uint64_t touched_total = 0;
  std::uint32_t patches = 0;
  for (std::uint32_t ei = 0; ei < net.num_links(); ei += 9) {
    const LinkId e{ei};
    if (net.num_available(e) == 0) continue;
    const Wavelength lambda = net.available(e)[0].lambda;
    engine.set_weight(e, lambda, kInfiniteCost);  // span fail
    touched_total += engine.customize_hierarchy();
    engine.set_weight(e, lambda, net.available(e)[0].cost);  // repair
    touched_total += engine.customize_hierarchy();
    patches += 2;
  }
  ASSERT_GT(patches, 0u);
  const double mean_touched =
      static_cast<double>(touched_total) / static_cast<double>(patches);
  EXPECT_LT(mean_touched, 0.2 * total_arcs);
#if LUMEN_OBS_ENABLED
  // The touched-cone sizes are surfaced on the obs counter one-for-one.
  EXPECT_EQ(recustomized.value() - counter_before, touched_total);
#endif
}

TEST(HierarchyEngineTest, RouteManyHierarchyMatchesSequential) {
  Rng rng(0xbeefULL);
  const WdmNetwork net = random_network(40, 60, 5, 3, ConvKind::kUniform, rng);
  RouteEngine engine(net, kWithHierarchy);

  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 64; ++i) {
    pairs.emplace_back(
        NodeId{static_cast<std::uint32_t>(rng.next_below(net.num_nodes()))},
        NodeId{static_cast<std::uint32_t>(rng.next_below(net.num_nodes()))});
  }
  // Concurrent const queries over the fresh hierarchy (per-worker
  // scratches exercise the backward/forward array reuse under tsan).
  const std::vector<RouteResult> parallel = engine.route_many(
      pairs, 4, RouteEngine::QueryKind::kSemilightpath, kChAlt);
  ASSERT_EQ(parallel.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const RouteResult plain =
        engine.route_semilightpath(pairs[i].first, pairs[i].second);
    ASSERT_EQ(plain.found, parallel[i].found) << i;
    EXPECT_EQ(plain.cost, parallel[i].cost) << i;
  }
}

TEST(HierarchyEngineTest, SessionManagerPolicyParity) {
  // The hierarchy policy must make the same accept/block decisions at the
  // same costs as the goal-directed engine policy across a full workload
  // with departures and a span failure/repair cycle.
  Rng rng(0x91a2'77feULL);
  const WdmNetwork net = random_network(24, 36, 4, 2, ConvKind::kUniform, rng);
  SessionManager goal(net, RoutingPolicy::kGoalDirectedEngine);
  SessionManager hier(net, RoutingPolicy::kHierarchyEngine);
  ASSERT_NE(hier.engine(), nullptr);
  ASSERT_TRUE(hier.engine()->has_hierarchy());

  std::vector<std::pair<std::optional<SessionId>, std::optional<SessionId>>>
      open_sessions;
  Rng workload(0x88'2026ULL);
  for (int step = 0; step < 200; ++step) {
    if (step == 80) {
      const NodeId a{static_cast<std::uint32_t>(workload.next_below(24))};
      const NodeId b{static_cast<std::uint32_t>(workload.next_below(24))};
      (void)goal.fail_span(a, b);
      (void)hier.fail_span(a, b);
    }
    if (step == 140) {
      const NodeId a{static_cast<std::uint32_t>(workload.next_below(24))};
      const NodeId b{static_cast<std::uint32_t>(workload.next_below(24))};
      goal.repair_span(a, b);
      hier.repair_span(a, b);
    }
    if (!open_sessions.empty() && workload.next_bool(0.3)) {
      const std::size_t i = workload.next_below(open_sessions.size());
      const auto [g, h] = open_sessions[i];
      open_sessions.erase(open_sessions.begin() +
                          static_cast<std::ptrdiff_t>(i));
      if (g) goal.close(*g);
      if (h) hier.close(*h);
      continue;
    }
    const auto s = static_cast<std::uint32_t>(workload.next_below(24));
    auto t = static_cast<std::uint32_t>(workload.next_below(24));
    if (s == t) t = (t + 1) % 24;
    const auto g = goal.open(NodeId{s}, NodeId{t});
    const auto h = hier.open(NodeId{s}, NodeId{t});
    ASSERT_EQ(g.has_value(), h.has_value()) << "step=" << step;
    if (g && h) {
      EXPECT_NEAR(goal.find(*g)->cost, hier.find(*h)->cost, 1e-9)
          << "step=" << step;
      open_sessions.emplace_back(g, h);
    }
  }
  EXPECT_EQ(goal.stats().carried, hier.stats().carried);
  EXPECT_EQ(goal.stats().blocked, hier.stats().blocked);
  EXPECT_NEAR(goal.stats().carried_cost_sum, hier.stats().carried_cost_sum,
              1e-6);
}

TEST(HierarchyEngineTest, PrunedStatsSurfacedOnSearchCounters) {
  // Small fix regression test: every engine search path must surface its
  // CsrRunStats (pruned included) on the lumen.core.search.* counters —
  // the multi-source A* prunes the dead appendix below, and the exported
  // counter must move by exactly the per-result stats.
  WdmNetwork net(12, 2, std::make_shared<UniformConversion>(0.1));
  for (std::uint32_t i = 0; i < 2; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{0}, 1.0);
  }
  {
    const LinkId e = net.add_link(NodeId{0}, NodeId{3});
    net.set_wavelength(e, Wavelength{0}, 0.01);
  }
  for (std::uint32_t i = 3; i < 11; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{0}, 0.01);
  }
  RouteEngine engine(net, kWithHierarchy);
  obs::Counter& pruned =
      obs::Registry::global().counter("lumen.core.search.pruned");
  obs::Counter& pops = obs::Registry::global().counter("lumen.core.search.pops");
  obs::Counter& upward_pops =
      obs::Registry::global().counter("lumen.core.hierarchy.upward_pops");

  const std::uint64_t pruned_before = pruned.value();
  const std::uint64_t pops_before = pops.value();
  const RouteResult goal =
      engine.route_semilightpath(NodeId{0}, NodeId{2}, kAlt);
  ASSERT_TRUE(goal.found);
  EXPECT_GT(goal.stats.search_pruned, 0u);
#if LUMEN_OBS_ENABLED
  EXPECT_EQ(pruned.value() - pruned_before, goal.stats.search_pruned);
  EXPECT_EQ(pops.value() - pops_before, goal.stats.search_pops);
#endif

  const std::uint64_t upward_before = upward_pops.value();
  const std::uint64_t pruned_before_hier = pruned.value();
  const RouteResult hier =
      engine.route_semilightpath(NodeId{0}, NodeId{2}, kChAlt);
  ASSERT_TRUE(hier.found);
  EXPECT_EQ(hier.cost, goal.cost);
#if LUMEN_OBS_ENABLED
  EXPECT_EQ(upward_pops.value() - upward_before, hier.stats.search_pops);
  EXPECT_EQ(pruned.value() - pruned_before_hier, hier.stats.search_pruned);
#endif
}

}  // namespace
}  // namespace lumen
