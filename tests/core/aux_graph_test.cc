// Structural tests of the layered auxiliary-graph construction, including
// randomized verification of the paper's Observations 1–5.
#include "core/aux_graph.h"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/error.h"

namespace lumen {
namespace {

using testing::ConvKind;
using testing::random_network;

WdmNetwork two_link_chain() {
  // 0 -e0-> 1 -e1-> 2; λ0 on both, λ1 only on e1.
  WdmNetwork net(3, 2, std::make_shared<UniformConversion>(0.5));
  const LinkId e0 = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(e0, Wavelength{0}, 1.0);
  const LinkId e1 = net.add_link(NodeId{1}, NodeId{2});
  net.set_wavelength(e1, Wavelength{0}, 2.0);
  net.set_wavelength(e1, Wavelength{1}, 3.0);
  return net;
}

TEST(AuxGraphTest, SinglePairShape) {
  const auto net = two_link_chain();
  const auto aux = AuxiliaryGraph::build_single_pair(net, NodeId{0}, NodeId{2});
  // X/Y sizes: node0 X={} Y={λ0}; node1 X={λ0} Y={λ0,λ1}; node2 X={λ0,λ1} Y={}.
  EXPECT_EQ(aux.x_size(NodeId{0}), 0u);
  EXPECT_EQ(aux.y_size(NodeId{0}), 1u);
  EXPECT_EQ(aux.x_size(NodeId{1}), 1u);
  EXPECT_EQ(aux.y_size(NodeId{1}), 2u);
  EXPECT_EQ(aux.x_size(NodeId{2}), 2u);
  EXPECT_EQ(aux.y_size(NodeId{2}), 0u);
  // Gadget nodes = 6, terminals = 2.
  EXPECT_EQ(aux.stats().gadget_nodes, 6u);
  EXPECT_EQ(aux.stats().terminal_nodes, 2u);
  EXPECT_EQ(aux.graph().num_nodes(), 8u);
  // E_org = |E_M| = 3.
  EXPECT_EQ(aux.stats().multigraph_links, 3u);
  EXPECT_EQ(aux.stats().transmission_links, 3u);
  // Gadget links: node1 X={λ0} × Y={λ0,λ1}, both allowed = 2.
  EXPECT_EQ(aux.stats().gadget_links, 2u);
  // Terminal ties: s'=0' -> Y_0 (1 link); X_2 -> t'' (2 links).
  EXPECT_EQ(aux.stats().terminal_links, 3u);
}

TEST(AuxGraphTest, NodeInfoRoundTrips) {
  const auto net = two_link_chain();
  const auto aux = AuxiliaryGraph::build_single_pair(net, NodeId{0}, NodeId{2});
  const NodeId x = aux.x_node(NodeId{1}, Wavelength{0});
  ASSERT_TRUE(x.valid());
  const auto& info = aux.node_info(x);
  EXPECT_EQ(info.kind, AuxNodeKind::kIn);
  EXPECT_EQ(info.node, NodeId{1});
  EXPECT_EQ(info.lambda, Wavelength{0});

  const auto& src = aux.node_info(aux.source_terminal());
  EXPECT_EQ(src.kind, AuxNodeKind::kSourceTerminal);
  EXPECT_EQ(src.node, NodeId{0});
  const auto& sink = aux.node_info(aux.sink_terminal());
  EXPECT_EQ(sink.kind, AuxNodeKind::kSinkTerminal);
  EXPECT_EQ(sink.node, NodeId{2});
}

TEST(AuxGraphTest, MissingLambdaYieldsInvalid) {
  const auto net = two_link_chain();
  const auto aux = AuxiliaryGraph::build_single_pair(net, NodeId{0}, NodeId{2});
  EXPECT_FALSE(aux.x_node(NodeId{0}, Wavelength{0}).valid());
  EXPECT_FALSE(aux.y_node(NodeId{1}, Wavelength{5} /*out of any Λ*/).valid());
}

TEST(AuxGraphTest, SelfPairRejected) {
  const auto net = two_link_chain();
  EXPECT_THROW(
      (void)AuxiliaryGraph::build_single_pair(net, NodeId{1}, NodeId{1}),
      Error);
}

TEST(AuxGraphTest, TerminalAccessorModeChecked) {
  const auto net = two_link_chain();
  const auto single =
      AuxiliaryGraph::build_single_pair(net, NodeId{0}, NodeId{2});
  EXPECT_THROW((void)single.source_terminal(NodeId{0}), Error);
  const auto all = AuxiliaryGraph::build_all_pairs(net);
  EXPECT_THROW((void)all.source_terminal(), Error);
  EXPECT_TRUE(all.is_all_pairs());
  EXPECT_FALSE(single.is_all_pairs());
}

TEST(AuxGraphTest, AllPairsTerminalsPerNode) {
  const auto net = two_link_chain();
  const auto aux = AuxiliaryGraph::build_all_pairs(net);
  EXPECT_EQ(aux.stats().terminal_nodes, 6u);  // v', v'' per node
  for (std::uint32_t v = 0; v < 3; ++v) {
    EXPECT_TRUE(aux.source_terminal(NodeId{v}).valid());
    EXPECT_TRUE(aux.sink_terminal(NodeId{v}).valid());
  }
  // v' fan-out sizes = |Y_v|; v'' fan-in sizes = |X_v|.
  EXPECT_EQ(aux.graph().out_degree(aux.source_terminal(NodeId{1})), 2u);
  EXPECT_EQ(aux.graph().in_degree(aux.sink_terminal(NodeId{2})), 2u);
}

TEST(AuxGraphTest, ConversionLinkWeightsMatchModel) {
  const auto net = two_link_chain();
  const auto aux = AuxiliaryGraph::build_single_pair(net, NodeId{0}, NodeId{2});
  const NodeId x = aux.x_node(NodeId{1}, Wavelength{0});
  for (const LinkId e : aux.graph().out_links(x)) {
    const auto& info = aux.link_info(e);
    if (info.kind != AuxLinkKind::kConversion) continue;
    const double expected = info.from == info.to ? 0.0 : 0.5;
    EXPECT_DOUBLE_EQ(aux.graph().weight(e), expected);
    EXPECT_EQ(info.node, NodeId{1});
  }
}

TEST(AuxGraphTest, TransmissionLinkWeightsMatchNetwork) {
  const auto net = two_link_chain();
  const auto aux = AuxiliaryGraph::build_single_pair(net, NodeId{0}, NodeId{2});
  std::uint32_t checked = 0;
  for (std::uint32_t ei = 0; ei < aux.graph().num_links(); ++ei) {
    const LinkId e{ei};
    const auto& info = aux.link_info(e);
    if (info.kind != AuxLinkKind::kTransmission) continue;
    EXPECT_DOUBLE_EQ(aux.graph().weight(e),
                     net.link_cost(info.physical_link, info.from));
    ++checked;
  }
  EXPECT_EQ(checked, 3u);
}

TEST(AuxGraphTest, ToSemilightpathSkipsNonTransmission) {
  const auto net = two_link_chain();
  const auto aux = AuxiliaryGraph::build_single_pair(net, NodeId{0}, NodeId{2});
  const auto tree = dijkstra(aux.graph(), aux.source_terminal());
  const auto aux_path = extract_path(aux.graph(), tree, aux.sink_terminal());
  ASSERT_TRUE(aux_path.has_value());
  const auto path = aux.to_semilightpath(*aux_path);
  EXPECT_EQ(path.length(), 2u);  // two physical hops despite longer aux path
  EXPECT_GT(aux_path->size(), path.length());
}

// --- Observation bounds on random networks ----------------------------

class AuxGraphBoundsTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint32_t, std::uint32_t,
                     std::uint32_t, ConvKind>> {};

TEST_P(AuxGraphBoundsTest, ObservationsHold) {
  const auto [seed, n, k, k0, kind] = GetParam();
  Rng rng(seed);
  const auto net = random_network(n, 2 * n, k, k0, kind, rng);
  const auto aux = AuxiliaryGraph::build_all_pairs(net);
  const auto& stats = aux.stats();
  const std::uint64_t m = net.num_links();
  const std::uint64_t d = net.max_degree();

  // Observation 1/2: |X_v|+|Y_v| <= 2k; Σ gadget nodes <= 2kn.
  for (std::uint32_t v = 0; v < n; ++v) {
    EXPECT_LE(aux.x_size(NodeId{v}) + aux.y_size(NodeId{v}), 2 * k);
    // Observation 4 (restricted): <= 2 d k0 as well.
    EXPECT_LE(aux.x_size(NodeId{v}) + aux.y_size(NodeId{v}), 2 * d * k0);
  }
  EXPECT_LE(stats.gadget_nodes, 2ULL * k * n);
  // Observation 5: Σ gadget nodes <= Σ_e |Λ(e)| * 2... tighter: <= m*k0 per
  // side is not stated; the paper's |V'| <= m k0 bound counts both sides.
  EXPECT_LE(stats.gadget_nodes, 2ULL * m * k0);

  // Observation 2: |E'| <= k²n + km.
  EXPECT_LE(stats.gadget_links + stats.transmission_links,
            static_cast<std::uint64_t>(k) * k * n + k * m);
  // Observation 5 (restricted): |E'| <= d²nk0² + mk0.
  EXPECT_LE(stats.gadget_links + stats.transmission_links,
            d * d * n * static_cast<std::uint64_t>(k0) * k0 + m * k0);

  // E_org mirrors the multigraph exactly.
  EXPECT_EQ(stats.transmission_links, stats.multigraph_links);
  EXPECT_EQ(stats.multigraph_links, net.total_link_wavelengths());
  EXPECT_LE(stats.multigraph_links, k * m);
}

INSTANTIATE_TEST_SUITE_P(
    RandomNetworks, AuxGraphBoundsTest,
    ::testing::Values(
        std::tuple{1ULL, 12u, 4u, 2u, ConvKind::kUniform},
        std::tuple{2ULL, 20u, 8u, 3u, ConvKind::kNone},
        std::tuple{3ULL, 30u, 6u, 6u, ConvKind::kRange},
        std::tuple{4ULL, 25u, 16u, 4u, ConvKind::kSparse},
        std::tuple{5ULL, 15u, 5u, 2u, ConvKind::kRandomMatrix},
        std::tuple{6ULL, 40u, 32u, 3u, ConvKind::kUniform},
        std::tuple{7ULL, 8u, 3u, 1u, ConvKind::kNone}));

}  // namespace
}  // namespace lumen
