#include "wdm/conversion.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/error.h"

namespace lumen {
namespace {

TEST(NoConversionTest, OnlyIdentityAllowed) {
  NoConversion model;
  EXPECT_DOUBLE_EQ(model.cost(NodeId{0}, Wavelength{1}, Wavelength{1}), 0.0);
  EXPECT_EQ(model.cost(NodeId{0}, Wavelength{1}, Wavelength{2}),
            kInfiniteCost);
  EXPECT_TRUE(model.allowed(NodeId{0}, Wavelength{3}, Wavelength{3}));
  EXPECT_FALSE(model.allowed(NodeId{0}, Wavelength{3}, Wavelength{4}));
}

TEST(UniformConversionTest, FlatCost) {
  UniformConversion model(2.5);
  EXPECT_DOUBLE_EQ(model.cost(NodeId{9}, Wavelength{0}, Wavelength{7}), 2.5);
  EXPECT_DOUBLE_EQ(model.cost(NodeId{9}, Wavelength{7}, Wavelength{0}), 2.5);
  EXPECT_DOUBLE_EQ(model.cost(NodeId{9}, Wavelength{4}, Wavelength{4}), 0.0);
}

TEST(UniformConversionTest, ZeroCostFullConversion) {
  UniformConversion model(0.0);
  EXPECT_DOUBLE_EQ(model.cost(NodeId{0}, Wavelength{0}, Wavelength{5}), 0.0);
}

TEST(UniformConversionTest, NegativeCostRejected) {
  EXPECT_THROW(UniformConversion{-1.0}, Error);
}

TEST(RangeLimitedConversionTest, WithinRadius) {
  RangeLimitedConversion model(2, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(model.cost(NodeId{0}, Wavelength{5}, Wavelength{6}), 1.5);
  EXPECT_DOUBLE_EQ(model.cost(NodeId{0}, Wavelength{5}, Wavelength{7}), 2.0);
  EXPECT_DOUBLE_EQ(model.cost(NodeId{0}, Wavelength{5}, Wavelength{3}), 2.0);
  EXPECT_DOUBLE_EQ(model.cost(NodeId{0}, Wavelength{5}, Wavelength{5}), 0.0);
}

TEST(RangeLimitedConversionTest, BeyondRadiusBlocked) {
  RangeLimitedConversion model(2, 1.0, 0.5);
  EXPECT_EQ(model.cost(NodeId{0}, Wavelength{5}, Wavelength{8}),
            kInfiniteCost);
  EXPECT_EQ(model.cost(NodeId{0}, Wavelength{0}, Wavelength{3}),
            kInfiniteCost);
}

TEST(RangeLimitedConversionTest, SatisfiesTriangleInequality) {
  // base + per_step * gap is subadditive when base >= 0: required for the
  // CFZ chained-conversion caveat documented in core/cfz.h.
  RangeLimitedConversion model(10, 0.7, 0.3);
  for (std::uint32_t a = 0; a < 8; ++a)
    for (std::uint32_t b = 0; b < 8; ++b)
      for (std::uint32_t c = 0; c < 8; ++c) {
        const double direct =
            model.cost(NodeId{0}, Wavelength{a}, Wavelength{c});
        const double via = model.cost(NodeId{0}, Wavelength{a}, Wavelength{b}) +
                           model.cost(NodeId{0}, Wavelength{b}, Wavelength{c});
        EXPECT_LE(direct, via + 1e-12);
      }
}

TEST(SparseConversionTest, OnlyConverterNodesConvert) {
  auto inner = std::make_shared<UniformConversion>(1.0);
  SparseConversion model({NodeId{2}, NodeId{4}}, inner);
  EXPECT_DOUBLE_EQ(model.cost(NodeId{2}, Wavelength{0}, Wavelength{1}), 1.0);
  EXPECT_DOUBLE_EQ(model.cost(NodeId{4}, Wavelength{0}, Wavelength{1}), 1.0);
  EXPECT_EQ(model.cost(NodeId{3}, Wavelength{0}, Wavelength{1}),
            kInfiniteCost);
  // Identity is free everywhere, converter or not.
  EXPECT_DOUBLE_EQ(model.cost(NodeId{3}, Wavelength{1}, Wavelength{1}), 0.0);
  EXPECT_TRUE(model.is_converter(NodeId{2}));
  EXPECT_FALSE(model.is_converter(NodeId{0}));
}

TEST(SparseConversionTest, NullInnerRejected) {
  EXPECT_THROW(SparseConversion({NodeId{0}}, nullptr), Error);
}

TEST(MatrixConversionTest, DefaultsToNoConversion) {
  MatrixConversion model(3, 4);
  EXPECT_EQ(model.cost(NodeId{0}, Wavelength{0}, Wavelength{1}),
            kInfiniteCost);
  EXPECT_DOUBLE_EQ(model.cost(NodeId{0}, Wavelength{2}, Wavelength{2}), 0.0);
}

TEST(MatrixConversionTest, SetSpecificEntries) {
  MatrixConversion model(3, 4);
  model.set(NodeId{1}, Wavelength{0}, Wavelength{3}, 2.0);
  EXPECT_DOUBLE_EQ(model.cost(NodeId{1}, Wavelength{0}, Wavelength{3}), 2.0);
  // Asymmetric: the reverse stays blocked.
  EXPECT_EQ(model.cost(NodeId{1}, Wavelength{3}, Wavelength{0}),
            kInfiniteCost);
  // Other nodes unaffected.
  EXPECT_EQ(model.cost(NodeId{0}, Wavelength{0}, Wavelength{3}),
            kInfiniteCost);
}

TEST(MatrixConversionTest, SetAllPairs) {
  MatrixConversion model(2, 3);
  model.set_all_pairs(NodeId{0}, 1.5);
  for (std::uint32_t p = 0; p < 3; ++p)
    for (std::uint32_t q = 0; q < 3; ++q) {
      const double expected = p == q ? 0.0 : 1.5;
      EXPECT_DOUBLE_EQ(model.cost(NodeId{0}, Wavelength{p}, Wavelength{q}),
                       expected);
    }
  EXPECT_EQ(model.cost(NodeId{1}, Wavelength{0}, Wavelength{1}),
            kInfiniteCost);
}

TEST(MatrixConversionTest, DiagonalSetRejected) {
  MatrixConversion model(1, 2);
  EXPECT_THROW(model.set(NodeId{0}, Wavelength{1}, Wavelength{1}, 1.0),
               Error);
}

TEST(MatrixConversionTest, ReDisallowWithInfinity) {
  MatrixConversion model(1, 2);
  model.set(NodeId{0}, Wavelength{0}, Wavelength{1}, 1.0);
  model.set(NodeId{0}, Wavelength{0}, Wavelength{1}, kInfiniteCost);
  EXPECT_FALSE(model.allowed(NodeId{0}, Wavelength{0}, Wavelength{1}));
}

TEST(MatrixConversionTest, OutOfRangeRejected) {
  MatrixConversion model(2, 3);
  EXPECT_THROW(model.set(NodeId{0}, Wavelength{3}, Wavelength{0}, 1.0),
               Error);
  EXPECT_THROW((void)model.cost(NodeId{5}, Wavelength{0}, Wavelength{1}),
               Error);
}

}  // namespace
}  // namespace lumen
