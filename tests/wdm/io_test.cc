#include "wdm/io.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/liang_shen.h"
#include "tests/test_util.h"
#include "util/error.h"

namespace lumen {
namespace {

/// Structural + behavioural equality of two networks.
void expect_equivalent(const WdmNetwork& a, const WdmNetwork& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_links(), b.num_links());
  ASSERT_EQ(a.num_wavelengths(), b.num_wavelengths());
  for (std::uint32_t ei = 0; ei < a.num_links(); ++ei) {
    const LinkId e{ei};
    EXPECT_EQ(a.tail(e), b.tail(e));
    EXPECT_EQ(a.head(e), b.head(e));
    const auto la = a.available(e);
    const auto lb = b.available(e);
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].lambda, lb[i].lambda);
      EXPECT_DOUBLE_EQ(la[i].cost, lb[i].cost);
    }
  }
  for (std::uint32_t v = 0; v < a.num_nodes(); ++v)
    for (std::uint32_t p = 0; p < a.num_wavelengths(); ++p)
      for (std::uint32_t q = 0; q < a.num_wavelengths(); ++q)
        EXPECT_EQ(
            a.conversion_cost(NodeId{v}, Wavelength{p}, Wavelength{q}),
            b.conversion_cost(NodeId{v}, Wavelength{p}, Wavelength{q}));
}

TEST(IoTest, RoundTripNoConversion) {
  WdmNetwork net(3, 2, std::make_shared<NoConversion>());
  const LinkId e = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(e, Wavelength{1}, 2.5);
  const auto text = network_to_string(net);
  EXPECT_NE(text.find("conversion none"), std::string::npos);
  expect_equivalent(net, network_from_string(text));
}

TEST(IoTest, RoundTripUniform) {
  WdmNetwork net(4, 3, std::make_shared<UniformConversion>(0.75));
  const LinkId e = net.add_link(NodeId{2}, NodeId{3});
  net.set_wavelength(e, Wavelength{0}, 1.0);
  net.set_wavelength(e, Wavelength{2}, 1.25);
  const auto text = network_to_string(net);
  EXPECT_NE(text.find("conversion uniform 0.75"), std::string::npos);
  expect_equivalent(net, network_from_string(text));
}

TEST(IoTest, RoundTripRange) {
  WdmNetwork net(3, 6, std::make_shared<RangeLimitedConversion>(2, 0.5, 0.1));
  const LinkId e = net.add_link(NodeId{0}, NodeId{2});
  for (std::uint32_t l = 0; l < 6; ++l)
    net.set_wavelength(e, Wavelength{l}, 1.0 + l);
  const auto text = network_to_string(net);
  EXPECT_NE(text.find("conversion range 2 0.5 0.1"), std::string::npos);
  expect_equivalent(net, network_from_string(text));
}

TEST(IoTest, RoundTripMatrixAndSparse) {
  // Sparse and matrix models serialize behaviour-exactly as matrix lines.
  const auto net = testing::paper_example_network(1.5, 0.25);
  const auto text = network_to_string(net);
  EXPECT_NE(text.find("conversion matrix"), std::string::npos);
  const auto parsed = network_from_string(text);
  expect_equivalent(net, parsed);

  // Behavioural check: routing outcomes identical.
  for (std::uint32_t t = 1; t < 7; ++t) {
    const auto a = route_semilightpath(net, NodeId{0}, NodeId{t});
    const auto b = route_semilightpath(parsed, NodeId{0}, NodeId{t});
    ASSERT_EQ(a.found, b.found) << t;
    if (a.found) {
      EXPECT_NEAR(a.cost, b.cost, 1e-12) << t;
    }
  }
}

TEST(IoTest, RoundTripRandomNetworks) {
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    Rng rng(seed);
    const auto net = testing::random_network(
        12, 24, 5, 3, testing::ConvKind::kSparse, rng);
    expect_equivalent(net, network_from_string(network_to_string(net)));
  }
}

TEST(IoTest, CommentsAndBlankLinesIgnored) {
  const std::string text = R"(# a comment
lumen-wdm 1

nodes 2   # inline comment
wavelengths 2
conversion none
link 0 1 1  0 1.5
end
)";
  const auto net = network_from_string(text);
  EXPECT_EQ(net.num_nodes(), 2u);
  EXPECT_DOUBLE_EQ(net.link_cost(LinkId{0}, Wavelength{0}), 1.5);
}

TEST(IoTest, MalformedInputsRejected) {
  const auto expect_bad = [](const std::string& text) {
    EXPECT_THROW((void)network_from_string(text), Error) << text;
  };
  expect_bad("");  // empty
  expect_bad("bogus 1\n");
  expect_bad("lumen-wdm 2\n");  // wrong version
  expect_bad("lumen-wdm 1\nnodes 2\nwavelengths 0\nconversion none\nend\n");
  expect_bad(
      "lumen-wdm 1\nnodes 2\nwavelengths 2\nconversion martian\nend\n");
  expect_bad(
      "lumen-wdm 1\nnodes 2\nwavelengths 2\nconversion none\n"
      "link 0 5 0\nend\n");  // head out of range
  expect_bad(
      "lumen-wdm 1\nnodes 2\nwavelengths 2\nconversion none\n"
      "link 0 1 1  7 1.0\nend\n");  // λ out of range
  expect_bad(
      "lumen-wdm 1\nnodes 2\nwavelengths 2\nconversion none\n"
      "conv 0 0 1 1.0\nend\n");  // conv without matrix
  expect_bad(
      "lumen-wdm 1\nnodes 2\nwavelengths 2\nconversion none\n"
      "link 0 1 0\n");  // missing end
}

TEST(IoTest, ErrorsCarryLineNumbers) {
  try {
    (void)network_from_string(
        "lumen-wdm 1\nnodes 2\nwavelengths 2\nconversion none\nwhat 1 2\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace lumen
