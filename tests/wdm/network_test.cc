#include "wdm/network.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/error.h"

namespace lumen {
namespace {

WdmNetwork small_net() {
  WdmNetwork net(3, 4, std::make_shared<UniformConversion>(0.5));
  const LinkId a = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(a, Wavelength{0}, 1.0);
  net.set_wavelength(a, Wavelength{2}, 2.0);
  const LinkId b = net.add_link(NodeId{1}, NodeId{2});
  net.set_wavelength(b, Wavelength{2}, 3.0);
  return net;
}

TEST(WdmNetworkTest, BasicShape) {
  const auto net = small_net();
  EXPECT_EQ(net.num_nodes(), 3u);
  EXPECT_EQ(net.num_links(), 2u);
  EXPECT_EQ(net.num_wavelengths(), 4u);
  EXPECT_EQ(net.tail(LinkId{0}), NodeId{0});
  EXPECT_EQ(net.head(LinkId{0}), NodeId{1});
}

TEST(WdmNetworkTest, AvailabilitySortedByLambda) {
  WdmNetwork net(2, 8, std::make_shared<NoConversion>());
  const LinkId e = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(e, Wavelength{5}, 5.0);
  net.set_wavelength(e, Wavelength{1}, 1.0);
  net.set_wavelength(e, Wavelength{3}, 3.0);
  const auto list = net.available(e);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].lambda, Wavelength{1});
  EXPECT_EQ(list[1].lambda, Wavelength{3});
  EXPECT_EQ(list[2].lambda, Wavelength{5});
}

TEST(WdmNetworkTest, LinkCostAndAvailability) {
  const auto net = small_net();
  EXPECT_DOUBLE_EQ(net.link_cost(LinkId{0}, Wavelength{0}), 1.0);
  EXPECT_DOUBLE_EQ(net.link_cost(LinkId{0}, Wavelength{2}), 2.0);
  EXPECT_EQ(net.link_cost(LinkId{0}, Wavelength{1}), kInfiniteCost);
  EXPECT_TRUE(net.is_available(LinkId{0}, Wavelength{0}));
  EXPECT_FALSE(net.is_available(LinkId{0}, Wavelength{3}));
}

TEST(WdmNetworkTest, ResettingWavelengthUpdatesCost) {
  WdmNetwork net(2, 2, std::make_shared<NoConversion>());
  const LinkId e = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(e, Wavelength{0}, 1.0);
  net.set_wavelength(e, Wavelength{0}, 7.0);
  EXPECT_DOUBLE_EQ(net.link_cost(e, Wavelength{0}), 7.0);
  EXPECT_EQ(net.num_available(e), 1u);
}

TEST(WdmNetworkTest, LambdaSets) {
  const auto net = small_net();
  const auto set0 = net.lambda_set(LinkId{0});
  EXPECT_EQ(set0.size(), 2u);
  EXPECT_TRUE(set0.contains(Wavelength{0}));
  EXPECT_TRUE(set0.contains(Wavelength{2}));

  // Λ_in(1) = Λ(link 0) = {0, 2}; Λ_out(1) = Λ(link 1) = {2}.
  const auto in1 = net.lambda_in(NodeId{1});
  EXPECT_EQ(in1.size(), 2u);
  const auto out1 = net.lambda_out(NodeId{1});
  EXPECT_EQ(out1.size(), 1u);
  EXPECT_TRUE(out1.contains(Wavelength{2}));

  EXPECT_TRUE(net.lambda_in(NodeId{0}).empty());
  EXPECT_TRUE(net.lambda_out(NodeId{2}).empty());
}

TEST(WdmNetworkTest, K0AndTotals) {
  const auto net = small_net();
  EXPECT_EQ(net.k0(), 2u);
  EXPECT_EQ(net.total_link_wavelengths(), 3u);
}

TEST(WdmNetworkTest, MinCosts) {
  const auto net = small_net();
  EXPECT_DOUBLE_EQ(net.min_link_cost(LinkId{0}), 1.0);
  EXPECT_DOUBLE_EQ(net.min_link_cost(LinkId{1}), 3.0);
  EXPECT_DOUBLE_EQ(net.min_any_link_cost(), 1.0);
}

TEST(WdmNetworkTest, EmptyLinkHasNoWavelengths) {
  WdmNetwork net(2, 4, std::make_shared<NoConversion>());
  const LinkId e = net.add_link(NodeId{0}, NodeId{1});
  EXPECT_EQ(net.num_available(e), 0u);
  EXPECT_EQ(net.min_link_cost(e), kInfiniteCost);
}

TEST(WdmNetworkTest, ConversionDelegation) {
  const auto net = small_net();
  EXPECT_DOUBLE_EQ(
      net.conversion_cost(NodeId{1}, Wavelength{0}, Wavelength{2}), 0.5);
  EXPECT_DOUBLE_EQ(
      net.conversion_cost(NodeId{1}, Wavelength{2}, Wavelength{2}), 0.0);
}

TEST(WdmNetworkTest, MaxDegree) {
  WdmNetwork net(4, 2, std::make_shared<NoConversion>());
  net.add_link(NodeId{0}, NodeId{1});
  net.add_link(NodeId{0}, NodeId{2});
  net.add_link(NodeId{0}, NodeId{3});
  net.add_link(NodeId{1}, NodeId{0});
  EXPECT_EQ(net.max_degree(), 3u);
}

TEST(WdmNetworkTest, AddLinkWithWavelengthSpan) {
  WdmNetwork net(2, 4, std::make_shared<NoConversion>());
  const std::vector<LinkWavelength> lws{{Wavelength{1}, 1.5},
                                        {Wavelength{3}, 2.5}};
  const LinkId e = net.add_link(NodeId{0}, NodeId{1}, lws);
  EXPECT_EQ(net.num_available(e), 2u);
  EXPECT_DOUBLE_EQ(net.link_cost(e, Wavelength{3}), 2.5);
}

TEST(WdmNetworkTest, PreconditionViolations) {
  WdmNetwork net(2, 2, std::make_shared<NoConversion>());
  const LinkId e = net.add_link(NodeId{0}, NodeId{1});
  EXPECT_THROW(net.add_link(NodeId{0}, NodeId{2}), Error);
  EXPECT_THROW(net.set_wavelength(e, Wavelength{2}, 1.0), Error);
  EXPECT_THROW(net.set_wavelength(e, Wavelength{0}, -1.0), Error);
  EXPECT_THROW(net.set_wavelength(e, Wavelength{0}, kInfiniteCost), Error);
  EXPECT_THROW(net.set_wavelength(LinkId{5}, Wavelength{0}, 1.0), Error);
  EXPECT_THROW(WdmNetwork(2, 0, std::make_shared<NoConversion>()), Error);
  EXPECT_THROW(WdmNetwork(2, 2, nullptr), Error);
}

}  // namespace
}  // namespace lumen
