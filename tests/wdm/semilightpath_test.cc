#include "wdm/semilightpath.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/error.h"

namespace lumen {
namespace {

/// 0 -> 1 -> 2 -> 0 triangle, all wavelengths on all links, unit costs,
/// uniform conversion cost 0.25.
WdmNetwork triangle() {
  WdmNetwork net(3, 3, std::make_shared<UniformConversion>(0.25));
  for (const auto& [u, v] :
       {std::pair{0u, 1u}, std::pair{1u, 2u}, std::pair{2u, 0u}}) {
    const LinkId e = net.add_link(NodeId{u}, NodeId{v});
    for (std::uint32_t l = 0; l < 3; ++l)
      net.set_wavelength(e, Wavelength{l}, 1.0);
  }
  return net;
}

TEST(SemilightpathTest, EmptyPath) {
  const auto net = triangle();
  Semilightpath p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.length(), 0u);
  EXPECT_DOUBLE_EQ(p.cost(net), 0.0);
  EXPECT_TRUE(p.is_valid(net));
  EXPECT_TRUE(p.is_lightpath());
  EXPECT_FALSE(p.revisits_node(net));
  EXPECT_THROW((void)p.source(net), Error);
}

TEST(SemilightpathTest, SingleHop) {
  const auto net = triangle();
  Semilightpath p({Hop{LinkId{0}, Wavelength{1}}});
  EXPECT_EQ(p.source(net), NodeId{0});
  EXPECT_EQ(p.destination(net), NodeId{1});
  EXPECT_DOUBLE_EQ(p.cost(net), 1.0);
  EXPECT_TRUE(p.is_lightpath());
  EXPECT_EQ(p.num_conversions(), 0u);
}

TEST(SemilightpathTest, ConversionCostCounted) {
  const auto net = triangle();
  // 0 -(λ0)-> 1 -(λ2)-> 2: two links + one conversion at node 1.
  Semilightpath p(
      {Hop{LinkId{0}, Wavelength{0}}, Hop{LinkId{1}, Wavelength{2}}});
  EXPECT_DOUBLE_EQ(p.cost(net), 1.0 + 0.25 + 1.0);
  EXPECT_EQ(p.num_conversions(), 1u);
  EXPECT_FALSE(p.is_lightpath());
  const auto switches = p.switch_settings(net);
  ASSERT_EQ(switches.size(), 1u);
  EXPECT_EQ(switches[0].node, NodeId{1});
  EXPECT_EQ(switches[0].from, Wavelength{0});
  EXPECT_EQ(switches[0].to, Wavelength{2});
}

TEST(SemilightpathTest, SameWavelengthNoConversionCost) {
  const auto net = triangle();
  Semilightpath p(
      {Hop{LinkId{0}, Wavelength{1}}, Hop{LinkId{1}, Wavelength{1}}});
  EXPECT_DOUBLE_EQ(p.cost(net), 2.0);
  EXPECT_TRUE(p.switch_settings(net).empty());
}

TEST(SemilightpathTest, UnavailableWavelengthInvalid) {
  WdmNetwork net(2, 2, std::make_shared<NoConversion>());
  const LinkId e = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(e, Wavelength{0}, 1.0);
  Semilightpath p({Hop{e, Wavelength{1}}});
  EXPECT_FALSE(p.is_valid(net));
  EXPECT_EQ(p.cost(net), kInfiniteCost);
}

TEST(SemilightpathTest, ForbiddenConversionInfiniteCost) {
  WdmNetwork net(3, 2, std::make_shared<NoConversion>());
  const LinkId a = net.add_link(NodeId{0}, NodeId{1});
  const LinkId b = net.add_link(NodeId{1}, NodeId{2});
  net.set_wavelength(a, Wavelength{0}, 1.0);
  net.set_wavelength(b, Wavelength{1}, 1.0);
  Semilightpath p({Hop{a, Wavelength{0}}, Hop{b, Wavelength{1}}});
  EXPECT_TRUE(p.is_valid(net));  // structurally fine
  EXPECT_EQ(p.cost(net), kInfiniteCost);  // but the conversion is forbidden
}

TEST(SemilightpathTest, DisconnectedWalkInvalid) {
  const auto net = triangle();
  // Link 0 is 0->1, link 2 is 2->0: head(0)=1 != tail(2)=2.
  Semilightpath p(
      {Hop{LinkId{0}, Wavelength{0}}, Hop{LinkId{2}, Wavelength{0}}});
  EXPECT_FALSE(p.is_valid(net));
  EXPECT_THROW((void)p.cost(net), Error);
}

TEST(SemilightpathTest, RevisitDetection) {
  const auto net = triangle();
  // Full cycle 0->1->2->0 revisits node 0.
  Semilightpath cycle({Hop{LinkId{0}, Wavelength{0}},
                       Hop{LinkId{1}, Wavelength{0}},
                       Hop{LinkId{2}, Wavelength{0}}});
  EXPECT_TRUE(cycle.revisits_node(net));
  Semilightpath simple(
      {Hop{LinkId{0}, Wavelength{0}}, Hop{LinkId{1}, Wavelength{0}}});
  EXPECT_FALSE(simple.revisits_node(net));
}

TEST(SemilightpathTest, MultipleConversions) {
  const auto net = triangle();
  Semilightpath p({Hop{LinkId{0}, Wavelength{0}},
                   Hop{LinkId{1}, Wavelength{1}},
                   Hop{LinkId{2}, Wavelength{2}}});
  EXPECT_EQ(p.num_conversions(), 2u);
  EXPECT_DOUBLE_EQ(p.cost(net), 3.0 + 2 * 0.25);
  EXPECT_EQ(p.switch_settings(net).size(), 2u);
}

TEST(SemilightpathTest, ToStringReadable) {
  const auto net = triangle();
  Semilightpath p(
      {Hop{LinkId{0}, Wavelength{0}}, Hop{LinkId{1}, Wavelength{2}}});
  const std::string s = p.to_string(net);
  EXPECT_NE(s.find("0"), std::string::npos);
  EXPECT_NE(s.find("switch"), std::string::npos);
  EXPECT_NE(s.find("λ2"), std::string::npos);
}

TEST(SemilightpathTest, AppendBuildsPath) {
  const auto net = triangle();
  Semilightpath p;
  p.append(Hop{LinkId{0}, Wavelength{0}});
  p.append(Hop{LinkId{1}, Wavelength{0}});
  EXPECT_EQ(p.length(), 2u);
  EXPECT_EQ(p.destination(net), NodeId{2});
}

}  // namespace
}  // namespace lumen
