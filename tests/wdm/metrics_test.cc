#include "wdm/metrics.h"

#include <gtest/gtest.h>

#include <memory>

#include "topo/topologies.h"
#include "topo/wavelengths.h"

namespace lumen {
namespace {

TEST(MetricsTest, FullAvailabilityIsPerfectlyAligned) {
  Rng rng(1);
  const Topology topo = ring_topology(6);
  const Availability avail = full_availability(topo, 4, CostSpec::unit(), rng);
  const auto net =
      assemble_network(topo, 4, avail, std::make_shared<NoConversion>());
  const NetworkMetrics m = compute_metrics(net);
  EXPECT_EQ(m.free_pairs, 12u * 4u);
  EXPECT_EQ(m.dead_links, 0u);
  EXPECT_DOUBLE_EQ(m.continuity_alignment, 1.0);
  EXPECT_DOUBLE_EQ(m.wavelength_imbalance, 0.0);
}

TEST(MetricsTest, DisjointWavelengthsAreFullyFragmented) {
  // Chain where consecutive links share no wavelength.
  WdmNetwork net(3, 2, std::make_shared<NoConversion>());
  const LinkId a = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(a, Wavelength{0}, 1.0);
  const LinkId b = net.add_link(NodeId{1}, NodeId{2});
  net.set_wavelength(b, Wavelength{1}, 1.0);
  const NetworkMetrics m = compute_metrics(net);
  EXPECT_DOUBLE_EQ(m.continuity_alignment, 0.0);
  EXPECT_EQ(m.free_pairs, 2u);
}

TEST(MetricsTest, DeadLinksCounted) {
  WdmNetwork net(3, 2, std::make_shared<NoConversion>());
  net.add_link(NodeId{0}, NodeId{1});  // no wavelengths
  const LinkId b = net.add_link(NodeId{1}, NodeId{2});
  net.set_wavelength(b, Wavelength{0}, 1.0);
  const NetworkMetrics m = compute_metrics(net);
  EXPECT_EQ(m.dead_links, 1u);
  // The dead incoming link contributes no adjacency pair.
  EXPECT_DOUBLE_EQ(m.continuity_alignment, 1.0);
}

TEST(MetricsTest, ImbalanceDetectsSkew) {
  // λ0 on every link, λ1 on one link only: strongly imbalanced.
  WdmNetwork net(4, 2, std::make_shared<NoConversion>());
  for (std::uint32_t i = 0; i < 3; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{0}, 1.0);
    if (i == 0) net.set_wavelength(e, Wavelength{1}, 1.0);
  }
  const NetworkMetrics m = compute_metrics(net);
  EXPECT_GT(m.wavelength_imbalance, 0.4);
}

TEST(MetricsTest, PartialOverlapInBetween) {
  // Λ(in) = {0,1}, Λ(out) = {1,2}: overlap 1 of min-size 2 -> 0.5.
  WdmNetwork net(3, 3, std::make_shared<NoConversion>());
  const LinkId a = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(a, Wavelength{0}, 1.0);
  net.set_wavelength(a, Wavelength{1}, 1.0);
  const LinkId b = net.add_link(NodeId{1}, NodeId{2});
  net.set_wavelength(b, Wavelength{1}, 1.0);
  net.set_wavelength(b, Wavelength{2}, 1.0);
  const NetworkMetrics m = compute_metrics(net);
  EXPECT_DOUBLE_EQ(m.continuity_alignment, 0.5);
}

TEST(MetricsTest, AllLinksDeadCountsEveryLink) {
  // Every Λ(e) empty: all links dead, no adjacent pair has wavelengths,
  // and the imbalance term must not divide by the zero mean.
  WdmNetwork net(3, 2, std::make_shared<NoConversion>());
  net.add_link(NodeId{0}, NodeId{1});
  net.add_link(NodeId{1}, NodeId{2});
  const NetworkMetrics m = compute_metrics(net);
  EXPECT_EQ(m.free_pairs, 0u);
  EXPECT_EQ(m.dead_links, 2u);
  EXPECT_DOUBLE_EQ(m.continuity_alignment, 1.0);
  EXPECT_DOUBLE_EQ(m.wavelength_imbalance, 0.0);
}

TEST(MetricsTest, SingleLinkNodeContributesNoAdjacencyPair) {
  // A two-node network has no node with both an in- and an out-link, so
  // there is no adjacent pair to score: alignment stays at its neutral 1.
  WdmNetwork net(2, 2, std::make_shared<NoConversion>());
  const LinkId e = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(e, Wavelength{0}, 1.0);
  const NetworkMetrics m = compute_metrics(net);
  EXPECT_EQ(m.free_pairs, 1u);
  EXPECT_EQ(m.dead_links, 0u);
  EXPECT_DOUBLE_EQ(m.continuity_alignment, 1.0);
}

TEST(MetricsTest, DeadMiddleLinkSkippedInAlignment) {
  // Chain 0→1→2→3 where the middle link has empty Λ: both pairs that
  // would involve it are skipped, leaving no scored pair at all.
  WdmNetwork net(4, 2, std::make_shared<NoConversion>());
  const LinkId a = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(a, Wavelength{0}, 1.0);
  net.add_link(NodeId{1}, NodeId{2});  // dead
  const LinkId c = net.add_link(NodeId{2}, NodeId{3});
  net.set_wavelength(c, Wavelength{0}, 1.0);
  const NetworkMetrics m = compute_metrics(net);
  EXPECT_EQ(m.dead_links, 1u);
  EXPECT_DOUBLE_EQ(m.continuity_alignment, 1.0);
}

TEST(MetricsTest, UniformRingHasZeroImbalance) {
  // Every wavelength on every link of a ring: perfectly even per-λ
  // populations, so the coefficient of variation must be exactly 0.
  WdmNetwork net(4, 3, std::make_shared<NoConversion>());
  for (std::uint32_t i = 0; i < 4; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{(i + 1) % 4});
    for (std::uint32_t l = 0; l < 3; ++l)
      net.set_wavelength(e, Wavelength{l}, 1.0);
  }
  const NetworkMetrics m = compute_metrics(net);
  EXPECT_EQ(m.free_pairs, 4u * 3u);
  EXPECT_EQ(m.dead_links, 0u);
  EXPECT_DOUBLE_EQ(m.continuity_alignment, 1.0);
  EXPECT_DOUBLE_EQ(m.wavelength_imbalance, 0.0);
}

TEST(MetricsTest, EmptyNetwork) {
  WdmNetwork net(2, 2, std::make_shared<NoConversion>());
  const NetworkMetrics m = compute_metrics(net);
  EXPECT_EQ(m.free_pairs, 0u);
  EXPECT_DOUBLE_EQ(m.continuity_alignment, 1.0);
  EXPECT_DOUBLE_EQ(m.wavelength_imbalance, 0.0);
}

}  // namespace
}  // namespace lumen
