#include "wdm/wavelength_set.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace lumen {
namespace {

TEST(WavelengthSetTest, EmptySet) {
  WavelengthSet s(10);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.universe_size(), 10u);
  EXPECT_FALSE(s.contains(Wavelength{0}));
}

TEST(WavelengthSetTest, InsertEraseContains) {
  WavelengthSet s(8);
  s.insert(Wavelength{3});
  EXPECT_TRUE(s.contains(Wavelength{3}));
  EXPECT_EQ(s.size(), 1u);
  s.insert(Wavelength{3});  // idempotent
  EXPECT_EQ(s.size(), 1u);
  s.erase(Wavelength{3});
  EXPECT_FALSE(s.contains(Wavelength{3}));
  EXPECT_TRUE(s.empty());
}

TEST(WavelengthSetTest, CrossesWordBoundary) {
  WavelengthSet s(130);
  for (const std::uint32_t l : {0u, 63u, 64u, 127u, 128u, 129u})
    s.insert(Wavelength{l});
  EXPECT_EQ(s.size(), 6u);
  const auto v = s.to_vector();
  ASSERT_EQ(v.size(), 6u);
  EXPECT_EQ(v.front(), Wavelength{0});
  EXPECT_EQ(v.back(), Wavelength{129});
}

TEST(WavelengthSetTest, ToVectorSorted) {
  WavelengthSet s(20);
  for (const std::uint32_t l : {7u, 2u, 19u, 11u}) s.insert(Wavelength{l});
  const auto v = s.to_vector();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], Wavelength{2});
  EXPECT_EQ(v[1], Wavelength{7});
  EXPECT_EQ(v[2], Wavelength{11});
  EXPECT_EQ(v[3], Wavelength{19});
}

TEST(WavelengthSetTest, UnionAndIntersection) {
  WavelengthSet a(10), b(10);
  a.insert(Wavelength{1});
  a.insert(Wavelength{2});
  b.insert(Wavelength{2});
  b.insert(Wavelength{3});
  auto u = a;
  u |= b;
  EXPECT_EQ(u.size(), 3u);
  auto i = a;
  i &= b;
  EXPECT_EQ(i.size(), 1u);
  EXPECT_TRUE(i.contains(Wavelength{2}));
}

TEST(WavelengthSetTest, MismatchedUniverseRejected) {
  WavelengthSet a(10), b(11);
  EXPECT_THROW(a |= b, Error);
  EXPECT_THROW(a &= b, Error);
}

TEST(WavelengthSetTest, OutOfUniverseRejected) {
  WavelengthSet s(4);
  EXPECT_THROW(s.insert(Wavelength{4}), Error);
  EXPECT_THROW((void)s.contains(Wavelength{100}), Error);
  EXPECT_THROW(s.insert(Wavelength::invalid()), Error);
}

TEST(WavelengthSetTest, Equality) {
  WavelengthSet a(6), b(6);
  a.insert(Wavelength{5});
  b.insert(Wavelength{5});
  EXPECT_EQ(a, b);
  b.insert(Wavelength{0});
  EXPECT_NE(a, b);
}

TEST(WavelengthSetTest, RandomizedAgainstReference) {
  Rng rng(55);
  WavelengthSet s(100);
  std::vector<bool> ref(100, false);
  for (int op = 0; op < 2000; ++op) {
    const auto l = static_cast<std::uint32_t>(rng.next_below(100));
    if (rng.next_bool(0.5)) {
      s.insert(Wavelength{l});
      ref[l] = true;
    } else {
      s.erase(Wavelength{l});
      ref[l] = false;
    }
  }
  std::uint32_t ref_size = 0;
  for (std::uint32_t l = 0; l < 100; ++l) {
    EXPECT_EQ(s.contains(Wavelength{l}), ref[l]);
    ref_size += ref[l];
  }
  EXPECT_EQ(s.size(), ref_size);
}

}  // namespace
}  // namespace lumen
