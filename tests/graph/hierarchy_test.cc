#include "graph/hierarchy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace lumen {
namespace {

Digraph random_digraph(Rng& rng, std::uint32_t n, std::uint32_t m) {
  Digraph g(n);
  for (std::uint32_t i = 0; i < m; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(n));
    const auto v = static_cast<std::uint32_t>(rng.next_below(n));
    if (u == v) continue;
    g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(0.1, 4.0));
  }
  return g;
}

/// Flat multi-source / multi-sink reference on the arena's current
/// weights: cheapest distance from any source to any sink.
double reference_cost(const CsrDigraph& csr, std::span<const NodeId> sources,
                      std::span<const NodeId> sinks, SearchScratch& scratch) {
  scratch.begin(csr.num_nodes());
  for (const NodeId t : sinks) scratch.mark_sink(t);
  const NodeId hit = dijkstra_csr_run(csr, sources, scratch);
  return hit.valid() ? scratch.dist(hit) : kInfiniteCost;
}

/// Left-to-right sum of the unpacked slots — the comparison the engine
/// makes — plus structural validation of the slot chain.
double path_cost(const CsrDigraph& csr, const std::vector<std::uint32_t>& slots,
                 std::span<const NodeId> sources,
                 std::span<const NodeId> sinks) {
  double cost = 0.0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i > 0) {
      EXPECT_EQ(csr.head(slots[i - 1]), csr.tail(slots[i]));
    }
    cost += csr.weight(slots[i]);
  }
  if (!slots.empty()) {
    const NodeId start = csr.tail(slots.front());
    const NodeId end = csr.head(slots.back());
    EXPECT_NE(std::find(sources.begin(), sources.end(), start), sources.end());
    EXPECT_NE(std::find(sinks.begin(), sinks.end(), end), sinks.end());
  }
  return cost;
}

TEST(HierarchyTest, MatchesDijkstraOnRandomDigraphs) {
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL, 15ULL}) {
    Rng rng(seed);
    const Digraph g = random_digraph(rng, 60, 240);
    const CsrDigraph csr(g);
    const ContractionHierarchy hierarchy(csr, {});
    SearchScratch scratch;
    std::vector<std::uint32_t> slots;
    for (int trial = 0; trial < 40; ++trial) {
      const NodeId s{static_cast<std::uint32_t>(rng.next_below(60))};
      const NodeId t{static_cast<std::uint32_t>(rng.next_below(60))};
      const NodeId sources[1] = {s};
      const NodeId sinks[1] = {t};
      const double expected = reference_cost(csr, sources, sinks, scratch);
      const bool found = hierarchy.query(sources, sinks, scratch,
                                         NoPotential{}, slots);
      ASSERT_EQ(found, expected < kInfiniteCost)
          << "seed " << seed << " " << s.value() << "->" << t.value();
      if (!found) continue;
      EXPECT_EQ(path_cost(csr, slots, sources, sinks), expected)
          << "seed " << seed << " " << s.value() << "->" << t.value();
    }
  }
}

TEST(HierarchyTest, MultiSourceMultiSinkMatchesFlatSearch) {
  Rng rng(77);
  const Digraph g = random_digraph(rng, 50, 200);
  const CsrDigraph csr(g);
  const ContractionHierarchy hierarchy(csr, {});
  SearchScratch scratch;
  std::vector<std::uint32_t> slots;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<NodeId> sources, sinks;
    for (int i = 0; i < 3; ++i) {
      sources.emplace_back(static_cast<std::uint32_t>(rng.next_below(50)));
      sinks.emplace_back(static_cast<std::uint32_t>(rng.next_below(50)));
    }
    const double expected = reference_cost(csr, sources, sinks, scratch);
    const bool found =
        hierarchy.query(sources, sinks, scratch, NoPotential{}, slots);
    ASSERT_EQ(found, expected < kInfiniteCost);
    if (found) {
      EXPECT_EQ(path_cost(csr, slots, sources, sinks), expected);
    }
  }
}

TEST(HierarchyTest, TracksWeightPatchesThroughCustomize) {
  Rng rng(31);
  Digraph g = random_digraph(rng, 40, 180);
  CsrDigraph csr(g);
  // Remember each slot's base weight: patches may only raise weights
  // (the residual-safety contract the engine enforces).
  std::vector<double> base(csr.num_links());
  for (std::uint32_t slot = 0; slot < csr.num_links(); ++slot) {
    base[slot] = csr.weight(slot);
  }
  ContractionHierarchy hierarchy(csr, {});
  SearchScratch scratch;
  std::vector<std::uint32_t> slots;
  EXPECT_FALSE(hierarchy.stale());

  for (int step = 0; step < 60; ++step) {
    const auto slot = static_cast<std::uint32_t>(
        rng.next_below(csr.num_links()));
    // Alternate fail (+inf), raise, and repair (back to base).
    const int action = step % 3;
    const double w = action == 0   ? kInfiniteCost
                     : action == 1 ? base[slot] + rng.next_double_in(0.0, 2.0)
                                   : base[slot];
    csr.set_weight(slot, w);
    hierarchy.update_slot(slot, w);
    if (w != base[slot] || action == 2) {
      // update_slot is O(1); values go stale until customize() runs.
      (void)hierarchy.customize();
    }
    EXPECT_FALSE(hierarchy.stale());

    const NodeId s{static_cast<std::uint32_t>(rng.next_below(40))};
    const NodeId t{static_cast<std::uint32_t>(rng.next_below(40))};
    const NodeId sources[1] = {s};
    const NodeId sinks[1] = {t};
    const double expected = reference_cost(csr, sources, sinks, scratch);
    const bool found =
        hierarchy.query(sources, sinks, scratch, NoPotential{}, slots);
    ASSERT_EQ(found, expected < kInfiniteCost) << "step " << step;
    if (found) {
      EXPECT_EQ(path_cost(csr, slots, sources, sinks), expected)
          << "step " << step;
    }
  }
}

TEST(HierarchyTest, PointPatchRecustomizationIsSublinear) {
  Rng rng(123);
  const Digraph g = random_digraph(rng, 200, 700);
  const CsrDigraph csr(g);
  ContractionHierarchy hierarchy(csr, {});
  ASSERT_GT(hierarchy.num_arcs(), 0u);

  // A single-slot patch dirties one arc; the customize pass may ripple
  // through that arc's support cone but must not re-evaluate the world.
  std::uint64_t total_touched = 0;
  std::uint32_t patches = 0;
  for (std::uint32_t slot = 0; slot < csr.num_links(); slot += 17) {
    hierarchy.update_slot(slot, kInfiniteCost);
    EXPECT_TRUE(hierarchy.stale());
    total_touched += hierarchy.customize();
    EXPECT_FALSE(hierarchy.stale());
    hierarchy.update_slot(slot, csr.weight(slot));  // repair
    total_touched += hierarchy.customize();
    patches += 2;
  }
  const double mean_touched =
      static_cast<double>(total_touched) / static_cast<double>(patches);
  // Sublinearity gate: the average touched cone is a small fraction of
  // the arc set (flat re-customization would touch num_arcs every time).
  EXPECT_LT(mean_touched, 0.25 * static_cast<double>(hierarchy.num_arcs()));
}

TEST(HierarchyTest, QueryWhileStaleIsRejected) {
  Rng rng(9);
  const Digraph g = random_digraph(rng, 20, 60);
  const CsrDigraph csr(g);
  ContractionHierarchy hierarchy(csr, {});
  hierarchy.update_slot(0, kInfiniteCost);
  ASSERT_TRUE(hierarchy.stale());
  SearchScratch scratch;
  std::vector<std::uint32_t> slots;
  const NodeId sources[1] = {NodeId{0}};
  const NodeId sinks[1] = {NodeId{1}};
  EXPECT_THROW(
      (void)hierarchy.query(sources, sinks, scratch, NoPotential{}, slots),
      Error);
}

TEST(HierarchyTest, DegreeCapZeroKeepsEveryNodeInCore) {
  Rng rng(5);
  const Digraph g = random_digraph(rng, 30, 120);
  const CsrDigraph csr(g);
  ContractionHierarchy::Options options;
  options.degree_cap = 0;
  const ContractionHierarchy hierarchy(csr, options);
  // Only nodes with no live neighbors at all clear a zero cap.
  EXPECT_GE(hierarchy.build_stats().core_nodes, 28u);
  EXPECT_EQ(hierarchy.num_shortcuts(), 0u);
  // Degenerate hierarchy = flat forward Dijkstra; still exact.
  SearchScratch scratch;
  std::vector<std::uint32_t> slots;
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId sources[1] = {
        NodeId{static_cast<std::uint32_t>(rng.next_below(30))}};
    const NodeId sinks[1] = {
        NodeId{static_cast<std::uint32_t>(rng.next_below(30))}};
    const double expected = reference_cost(csr, sources, sinks, scratch);
    const bool found =
        hierarchy.query(sources, sinks, scratch, NoPotential{}, slots);
    ASSERT_EQ(found, expected < kInfiniteCost);
    if (found) EXPECT_EQ(path_cost(csr, slots, sources, sinks), expected);
  }
}

}  // namespace
}  // namespace lumen
