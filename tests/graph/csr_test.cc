#include "graph/csr.h"

#include <gtest/gtest.h>

#include "graph/bellman_ford.h"
#include "graph/simd_min.h"
#include "util/rng.h"

namespace lumen {
namespace {

TEST(CsrTest, PreservesStructure) {
  Digraph g(3);
  const LinkId a = g.add_link(NodeId{0}, NodeId{1}, 1.5);
  const LinkId b = g.add_link(NodeId{0}, NodeId{2}, 2.5);
  const LinkId c = g.add_link(NodeId{2}, NodeId{0}, 3.5);
  const CsrDigraph csr(g);
  EXPECT_EQ(csr.num_nodes(), 3u);
  EXPECT_EQ(csr.num_links(), 3u);
  const auto [first0, last0] = csr.out_slot_range(NodeId{0});
  ASSERT_EQ(last0 - first0, 2u);
  EXPECT_EQ(csr.head(first0), NodeId{1});
  EXPECT_DOUBLE_EQ(csr.weight(first0), 1.5);
  EXPECT_EQ(csr.original(first0), a);
  EXPECT_EQ(csr.original(first0 + 1), b);
  EXPECT_EQ(csr.link(first0).head, NodeId{1});
  EXPECT_DOUBLE_EQ(csr.link(first0).weight, 1.5);
  const auto [first1, last1] = csr.out_slot_range(NodeId{1});
  EXPECT_EQ(first1, last1);
  const auto [first2, last2] = csr.out_slot_range(NodeId{2});
  ASSERT_EQ(last2 - first2, 1u);
  EXPECT_EQ(csr.original(first2), c);
}

TEST(CsrTest, EmptyGraph) {
  const CsrDigraph csr((Digraph()));
  EXPECT_EQ(csr.num_nodes(), 0u);
  EXPECT_EQ(csr.num_links(), 0u);
}

TEST(CsrTest, DijkstraMatchesAdjacencyListVersion) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    Rng rng(seed);
    Digraph g(80);
    for (int i = 0; i < 500; ++i) {
      const auto u = static_cast<std::uint32_t>(rng.next_below(80));
      const auto v = static_cast<std::uint32_t>(rng.next_below(80));
      g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(0.0, 5.0));
    }
    const CsrDigraph csr(g);
    const auto reference = dijkstra(g, NodeId{0});
    const auto fast = dijkstra_csr(csr, NodeId{0});
    for (std::uint32_t v = 0; v < 80; ++v) {
      EXPECT_EQ(fast.dist[v], reference.dist[v]) << "node " << v;
      // Parent links are expressed in original ids: both trees must give
      // the same distances through their parents.
      if (fast.parent_link[v].valid()) {
        EXPECT_EQ(g.head(fast.parent_link[v]), NodeId{v});
      }
    }
    EXPECT_EQ(fast.pops, reference.pops);
  }
}

TEST(CsrTest, EarlyExitTarget) {
  Rng rng(5);
  Digraph g(50);
  for (int i = 0; i < 300; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(50));
    const auto v = static_cast<std::uint32_t>(rng.next_below(50));
    if (u != v) g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(0.1, 3));
  }
  const CsrDigraph csr(g);
  const auto full = dijkstra_csr(csr, NodeId{0});
  for (std::uint32_t t = 1; t < 50; t += 7) {
    const auto early = dijkstra_csr(csr, NodeId{0}, NodeId{t});
    EXPECT_DOUBLE_EQ(early.dist[t], full.dist[t]);
    EXPECT_LE(early.pops, full.pops);
  }
}

TEST(CsrTest, InfiniteWeightsSkipped) {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, kInfiniteCost);
  g.add_link(NodeId{0}, NodeId{2}, 1.0);
  g.add_link(NodeId{2}, NodeId{1}, 1.0);
  const CsrDigraph csr(g);
  const auto tree = dijkstra_csr(csr, NodeId{0});
  EXPECT_DOUBLE_EQ(tree.dist[1], 2.0);
}

// The heap's vectorized child scan must match the scalar left-to-right
// scan exactly, including first-index-wins tie-breaking and +inf keys —
// otherwise heap shape (and search determinism) silently drifts between
// SIMD and portable builds.
TEST(SimdMinTest, Argmin4MatchesScalarScan) {
  const auto scalar = [](const double k[4]) {
    unsigned best = 0;
    for (unsigned i = 1; i < 4; ++i) {
      if (k[i] < k[best]) best = i;
    }
    return best;
  };
  const double pool[] = {0.0, 1.0, 1.5, 2.0, 7.25, kInfiniteCost};
  double k[4];
  for (const double a : pool) {
    for (const double b : pool) {
      for (const double c : pool) {
        for (const double d : pool) {
          k[0] = a, k[1] = b, k[2] = c, k[3] = d;
          EXPECT_EQ(argmin4(k), scalar(k))
              << a << " " << b << " " << c << " " << d;
        }
      }
    }
  }
  Rng rng(99);
  for (int trial = 0; trial < 1000; ++trial) {
    for (double& key : k) key = rng.next_double_in(0.0, 10.0);
    EXPECT_EQ(argmin4(k), scalar(k));
  }
}

TEST(CsrTest, Preconditions) {
  Digraph g(2);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  const CsrDigraph csr(g);
  EXPECT_THROW((void)csr.out_slot_range(NodeId{5}), Error);
  EXPECT_THROW((void)csr.head(9), Error);
  EXPECT_THROW((void)csr.weight(9), Error);
  EXPECT_THROW((void)dijkstra_csr(csr, NodeId{5}), Error);
}

}  // namespace
}  // namespace lumen
