#include "graph/csr.h"

#include <gtest/gtest.h>

#include "graph/bellman_ford.h"
#include "util/rng.h"

namespace lumen {
namespace {

TEST(CsrTest, PreservesStructure) {
  Digraph g(3);
  const LinkId a = g.add_link(NodeId{0}, NodeId{1}, 1.5);
  const LinkId b = g.add_link(NodeId{0}, NodeId{2}, 2.5);
  const LinkId c = g.add_link(NodeId{2}, NodeId{0}, 3.5);
  const CsrDigraph csr(g);
  EXPECT_EQ(csr.num_nodes(), 3u);
  EXPECT_EQ(csr.num_links(), 3u);
  const auto out0 = csr.out(NodeId{0});
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(out0[0].head, NodeId{1});
  EXPECT_DOUBLE_EQ(out0[0].weight, 1.5);
  EXPECT_EQ(out0[0].original, a);
  EXPECT_EQ(out0[1].original, b);
  EXPECT_TRUE(csr.out(NodeId{1}).empty());
  ASSERT_EQ(csr.out(NodeId{2}).size(), 1u);
  EXPECT_EQ(csr.out(NodeId{2})[0].original, c);
}

TEST(CsrTest, EmptyGraph) {
  const CsrDigraph csr((Digraph()));
  EXPECT_EQ(csr.num_nodes(), 0u);
  EXPECT_EQ(csr.num_links(), 0u);
}

TEST(CsrTest, DijkstraMatchesAdjacencyListVersion) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    Rng rng(seed);
    Digraph g(80);
    for (int i = 0; i < 500; ++i) {
      const auto u = static_cast<std::uint32_t>(rng.next_below(80));
      const auto v = static_cast<std::uint32_t>(rng.next_below(80));
      g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(0.0, 5.0));
    }
    const CsrDigraph csr(g);
    const auto reference = dijkstra(g, NodeId{0});
    const auto fast = dijkstra_csr(csr, NodeId{0});
    for (std::uint32_t v = 0; v < 80; ++v) {
      EXPECT_EQ(fast.dist[v], reference.dist[v]) << "node " << v;
      // Parent links are expressed in original ids: both trees must give
      // the same distances through their parents.
      if (fast.parent_link[v].valid()) {
        EXPECT_EQ(g.head(fast.parent_link[v]), NodeId{v});
      }
    }
    EXPECT_EQ(fast.pops, reference.pops);
  }
}

TEST(CsrTest, EarlyExitTarget) {
  Rng rng(5);
  Digraph g(50);
  for (int i = 0; i < 300; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(50));
    const auto v = static_cast<std::uint32_t>(rng.next_below(50));
    if (u != v) g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(0.1, 3));
  }
  const CsrDigraph csr(g);
  const auto full = dijkstra_csr(csr, NodeId{0});
  for (std::uint32_t t = 1; t < 50; t += 7) {
    const auto early = dijkstra_csr(csr, NodeId{0}, NodeId{t});
    EXPECT_DOUBLE_EQ(early.dist[t], full.dist[t]);
    EXPECT_LE(early.pops, full.pops);
  }
}

TEST(CsrTest, InfiniteWeightsSkipped) {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, kInfiniteCost);
  g.add_link(NodeId{0}, NodeId{2}, 1.0);
  g.add_link(NodeId{2}, NodeId{1}, 1.0);
  const CsrDigraph csr(g);
  const auto tree = dijkstra_csr(csr, NodeId{0});
  EXPECT_DOUBLE_EQ(tree.dist[1], 2.0);
}

TEST(CsrTest, Preconditions) {
  Digraph g(2);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  const CsrDigraph csr(g);
  EXPECT_THROW((void)csr.out(NodeId{5}), Error);
  EXPECT_THROW((void)dijkstra_csr(csr, NodeId{5}), Error);
}

}  // namespace
}  // namespace lumen
