// Fuzz equivalence for the PHAST-style batched sweeps: one_to_all and
// many_to_all must reproduce a flat full dijkstra_csr_run from the same
// seeds bit-for-bit — every node, every lane, +inf for unreachable —
// across residual churn (fail/raise/repair + re-customize), because the
// exact-fix pass re-accumulates winning paths in the flat search's
// left-to-right slot order.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <span>
#include <vector>

#include "graph/hierarchy.h"
#include "util/rng.h"

namespace lumen {
namespace {

Digraph random_digraph(Rng& rng, std::uint32_t n, std::uint32_t m) {
  Digraph g(n);
  for (std::uint32_t i = 0; i < m; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(n));
    const auto v = static_cast<std::uint32_t>(rng.next_below(n));
    if (u == v) continue;
    g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(0.1, 4.0));
  }
  return g;
}

/// Flat full one-to-all reference: no sinks marked, so the run settles
/// everything reachable; untouched nodes read back +inf.
std::vector<double> flat_sssp(const CsrDigraph& csr,
                              std::span<const NodeId> sources,
                              SearchScratch& scratch) {
  scratch.begin(csr.num_nodes());
  (void)dijkstra_csr_run(csr, sources, scratch);
  std::vector<double> dist(csr.num_nodes());
  for (std::uint32_t v = 0; v < csr.num_nodes(); ++v) {
    dist[v] = scratch.dist(NodeId{v});
  }
  return dist;
}

void expect_bitwise_equal(std::span<const double> expected,
                          std::span<const double> actual, const char* what,
                          std::uint64_t seed) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t v = 0; v < expected.size(); ++v) {
    // Exact double equality: distances are non-negative, so value
    // equality is bit equality; +inf lanes must stay +inf.
    ASSERT_EQ(expected[v], actual[v])
        << what << " seed " << seed << " node " << v;
  }
}

TEST(SweepTest, OneToAllMatchesFlatDijkstraBitwise) {
  for (const std::uint64_t seed : {21ULL, 22ULL, 23ULL, 24ULL, 25ULL}) {
    Rng rng(seed);
    const Digraph g = random_digraph(rng, 80, 320);
    const CsrDigraph csr(g);
    const ContractionHierarchy hierarchy(csr, {});
    SearchScratch scratch;
    std::vector<double> swept(csr.num_nodes());
    for (int trial = 0; trial < 10; ++trial) {
      const NodeId sources[1] = {
          NodeId{static_cast<std::uint32_t>(rng.next_below(80))}};
      const std::vector<double> expected = flat_sssp(csr, sources, scratch);
      ContractionHierarchy::SweepStats stats;
      hierarchy.one_to_all(sources, scratch, swept.data(), &stats);
      expect_bitwise_equal(expected, swept, "one_to_all", seed);
      EXPECT_GT(stats.upward_pops, 0u);
    }
  }
}

TEST(SweepTest, ManyToAllEveryLaneWidthMatchesFlat) {
  Rng rng(404);
  const Digraph g = random_digraph(rng, 90, 360);
  const CsrDigraph csr(g);
  const ContractionHierarchy hierarchy(csr, {});
  SearchScratch scratch;
  // 1/4/8 hit the fixed-width kernels; the rest the generic tail.
  for (std::uint32_t lanes = 1; lanes <= ContractionHierarchy::kMaxLanes;
       ++lanes) {
    std::vector<NodeId> seeds(lanes);
    std::vector<std::span<const NodeId>> seed_sets(lanes);
    std::vector<double> rows(static_cast<std::size_t>(lanes) *
                             csr.num_nodes());
    std::vector<double*> row_ptrs(lanes);
    for (std::uint32_t l = 0; l < lanes; ++l) {
      seeds[l] = NodeId{static_cast<std::uint32_t>(rng.next_below(90))};
      seed_sets[l] = std::span<const NodeId>(&seeds[l], 1);
      row_ptrs[l] = rows.data() + static_cast<std::size_t>(l) *
                    csr.num_nodes();
    }
    ContractionHierarchy::SweepStats stats;
    hierarchy.many_to_all(seed_sets, scratch, row_ptrs, &stats);
    for (std::uint32_t l = 0; l < lanes; ++l) {
      const std::vector<double> expected =
          flat_sssp(csr, seed_sets[l], scratch);
      expect_bitwise_equal(
          expected,
          std::span<const double>(row_ptrs[l], csr.num_nodes()),
          "many_to_all", lanes * 100 + l);
    }
    EXPECT_GT(stats.arcs_scanned, 0u);
  }
}

TEST(SweepTest, MultiSeedLanesMatchMultiSourceFlat) {
  Rng rng(777);
  const Digraph g = random_digraph(rng, 70, 280);
  const CsrDigraph csr(g);
  const ContractionHierarchy hierarchy(csr, {});
  SearchScratch scratch;
  constexpr std::uint32_t kLanes = 4;
  std::array<std::array<NodeId, 3>, kLanes> seeds{};
  std::array<std::span<const NodeId>, kLanes> seed_sets;
  std::vector<double> rows(kLanes * static_cast<std::size_t>(70));
  std::array<double*, kLanes> row_ptrs{};
  for (std::uint32_t l = 0; l < kLanes; ++l) {
    for (auto& s : seeds[l]) {
      s = NodeId{static_cast<std::uint32_t>(rng.next_below(70))};
    }
    seed_sets[l] = seeds[l];
    row_ptrs[l] = rows.data() + static_cast<std::size_t>(l) * 70;
  }
  hierarchy.many_to_all(seed_sets, scratch, row_ptrs, nullptr);
  for (std::uint32_t l = 0; l < kLanes; ++l) {
    const std::vector<double> expected = flat_sssp(csr, seed_sets[l], scratch);
    expect_bitwise_equal(expected,
                         std::span<const double>(row_ptrs[l], 70),
                         "multi-seed", l);
  }
}

TEST(SweepTest, FuzzChurnBitIdentityFiftyNets) {
  // 50 seeded nets x residual churn: fail (+inf), raise (base + delta),
  // repair (base) — the base-floor discipline RouteEngine maintains — with
  // a re-customize between mutation and sweep.  Every step checks a fresh
  // one-to-all against the flat reference on the patched weights; every
  // third step additionally checks a 4-lane many_to_all.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed * 9176 + 3);
    const std::uint32_t n = 40 + static_cast<std::uint32_t>(seed % 5) * 10;
    Digraph g = random_digraph(rng, n, n * 4);
    CsrDigraph csr(g);
    ContractionHierarchy hierarchy(csr, {});
    std::vector<double> base(csr.num_links());
    for (std::uint32_t s = 0; s < csr.num_links(); ++s) {
      base[s] = csr.weight(s);
    }
    SearchScratch scratch;
    std::vector<double> swept(csr.num_nodes());
    for (int step = 0; step < 9; ++step) {
      if (csr.num_links() > 0) {
        const auto slot =
            static_cast<std::uint32_t>(rng.next_below(csr.num_links()));
        const int action = step % 3;
        const double w = action == 0 ? kInfiniteCost
                         : action == 1
                             ? base[slot] + rng.next_double_in(0.0, 2.0)
                             : base[slot];
        csr.set_weight(slot, w);
        hierarchy.update_slot(slot, w);
        (void)hierarchy.customize();
      }
      ASSERT_FALSE(hierarchy.stale());
      const NodeId sources[1] = {
          NodeId{static_cast<std::uint32_t>(rng.next_below(n))}};
      const std::vector<double> expected = flat_sssp(csr, sources, scratch);
      hierarchy.one_to_all(sources, scratch, swept.data());
      expect_bitwise_equal(expected, swept, "churn one_to_all", seed);
      if (step % 3 == 2) {
        constexpr std::uint32_t kLanes = 4;
        std::array<NodeId, kLanes> lane_seeds{};
        std::array<std::span<const NodeId>, kLanes> seed_sets;
        std::vector<double> rows(kLanes * static_cast<std::size_t>(n));
        std::array<double*, kLanes> row_ptrs{};
        for (std::uint32_t l = 0; l < kLanes; ++l) {
          lane_seeds[l] =
              NodeId{static_cast<std::uint32_t>(rng.next_below(n))};
          seed_sets[l] = std::span<const NodeId>(&lane_seeds[l], 1);
          row_ptrs[l] = rows.data() + static_cast<std::size_t>(l) * n;
        }
        hierarchy.many_to_all(seed_sets, scratch, row_ptrs, nullptr);
        for (std::uint32_t l = 0; l < kLanes; ++l) {
          const std::vector<double> lane_expected =
              flat_sssp(csr, seed_sets[l], scratch);
          expect_bitwise_equal(
              lane_expected, std::span<const double>(row_ptrs[l], n),
              "churn many_to_all", seed);
        }
      }
    }
  }
}

TEST(SweepTest, UnreachableNodesStayInfiniteAcrossLanes) {
  // Two components: seeds in one must read +inf across the other, in
  // every lane, matching the flat search's untouched-node semantics.
  Digraph g(6);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  g.add_link(NodeId{1}, NodeId{2}, 2.0);
  g.add_link(NodeId{3}, NodeId{4}, 1.5);
  g.add_link(NodeId{4}, NodeId{5}, 0.5);
  const CsrDigraph csr(g);
  const ContractionHierarchy hierarchy(csr, {});
  SearchScratch scratch;
  const NodeId left[1] = {NodeId{0}};
  const NodeId right[1] = {NodeId{3}};
  const std::span<const NodeId> seed_sets[2] = {left, right};
  std::vector<double> rows(2 * 6);
  double* const row_ptrs[2] = {rows.data(), rows.data() + 6};
  hierarchy.many_to_all(seed_sets, scratch, row_ptrs, nullptr);
  EXPECT_EQ(rows[0], 0.0);
  EXPECT_EQ(rows[2], 3.0);
  for (std::uint32_t v = 3; v < 6; ++v) EXPECT_EQ(rows[v], kInfiniteCost);
  for (std::uint32_t v = 0; v < 3; ++v) EXPECT_EQ(rows[6 + v], kInfiniteCost);
  EXPECT_EQ(rows[6 + 3], 0.0);
  EXPECT_EQ(rows[6 + 5], 2.0);
}

TEST(SweepTest, StaleSweepIsRejected) {
  Rng rng(9);
  const Digraph g = random_digraph(rng, 20, 60);
  const CsrDigraph csr(g);
  ContractionHierarchy hierarchy(csr, {});
  hierarchy.update_slot(0, kInfiniteCost);
  ASSERT_TRUE(hierarchy.stale());
  SearchScratch scratch;
  std::vector<double> dist(csr.num_nodes());
  const NodeId sources[1] = {NodeId{0}};
  EXPECT_THROW(hierarchy.one_to_all(sources, scratch, dist.data()), Error);
}

TEST(SweepTest, CoreOnlyHierarchySweepsFlat) {
  // degree_cap = 0 keeps every connected node in the core: the sweep
  // degenerates to the upward (= flat forward) Dijkstra with an empty
  // down pass — and must still match exactly.
  Rng rng(31);
  const Digraph g = random_digraph(rng, 30, 120);
  const CsrDigraph csr(g);
  ContractionHierarchy::Options options;
  options.degree_cap = 0;
  const ContractionHierarchy hierarchy(csr, options);
  SearchScratch scratch;
  std::vector<double> swept(csr.num_nodes());
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId sources[1] = {
        NodeId{static_cast<std::uint32_t>(rng.next_below(30))}};
    const std::vector<double> expected = flat_sssp(csr, sources, scratch);
    ContractionHierarchy::SweepStats stats;
    hierarchy.one_to_all(sources, scratch, swept.data(), &stats);
    expect_bitwise_equal(expected, swept, "core-only", 31);
  }
}

TEST(SweepTest, StructureOnlyReversalStoresNoWeights) {
  // Satellite: the downward-sweep builder's reversal mode must carry no
  // weight row (no double-store) and still search correctly under an
  // explicit override matching the weighted reversal slot-for-slot.
  Rng rng(55);
  const Digraph g = random_digraph(rng, 25, 100);
  const CsrDigraph weighted = CsrDigraph::reversed(g);
  const CsrDigraph bare =
      CsrDigraph::reversed(g, CsrDigraph::ReversalMode::kStructureOnly);
  ASSERT_TRUE(weighted.has_weights());
  ASSERT_FALSE(bare.has_weights());
  ASSERT_EQ(bare.num_links(), weighted.num_links());
  EXPECT_THROW((void)bare.weight(0), Error);
  // Slot order is identical, so the weighted view's row doubles as the
  // override; both searches must agree bit-for-bit.
  for (std::uint32_t s = 0; s < bare.num_links(); ++s) {
    ASSERT_EQ(bare.original(s), weighted.original(s));
    ASSERT_EQ(bare.head(s), weighted.head(s));
  }
  std::span<const double> override_row(weighted.weights_data(),
                                       weighted.num_links());
  SearchScratch scratch;
  const NodeId sources[1] = {NodeId{3}};
  const std::vector<double> expected = flat_sssp(weighted, sources, scratch);
  scratch.begin(bare.num_nodes());
  (void)dijkstra_csr_run(bare, sources, scratch, nullptr, override_row);
  for (std::uint32_t v = 0; v < bare.num_nodes(); ++v) {
    EXPECT_EQ(scratch.dist(NodeId{v}), expected[v]);
  }
  // An un-overridden search on a bare view is a contract violation.
  scratch.begin(bare.num_nodes());
  EXPECT_THROW((void)dijkstra_csr_run(bare, sources, scratch), Error);
}

}  // namespace
}  // namespace lumen
