#include "graph/digraph.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"  // kInfiniteCost
#include "util/error.h"

namespace lumen {
namespace {

TEST(DigraphTest, EmptyGraph) {
  Digraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_links(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(DigraphTest, AddNodesAndLinks) {
  Digraph g(3);
  EXPECT_EQ(g.num_nodes(), 3u);
  const LinkId e = g.add_link(NodeId{0}, NodeId{1}, 2.5);
  EXPECT_EQ(g.num_links(), 1u);
  EXPECT_EQ(g.tail(e), NodeId{0});
  EXPECT_EQ(g.head(e), NodeId{1});
  EXPECT_DOUBLE_EQ(g.weight(e), 2.5);
}

TEST(DigraphTest, AddNodeGrows) {
  Digraph g(1);
  const NodeId v = g.add_node();
  EXPECT_EQ(v, NodeId{1});
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST(DigraphTest, AdjacencyLists) {
  Digraph g(4);
  const LinkId a = g.add_link(NodeId{0}, NodeId{1}, 1);
  const LinkId b = g.add_link(NodeId{0}, NodeId{2}, 1);
  const LinkId c = g.add_link(NodeId{2}, NodeId{0}, 1);
  ASSERT_EQ(g.out_links(NodeId{0}).size(), 2u);
  EXPECT_EQ(g.out_links(NodeId{0})[0], a);
  EXPECT_EQ(g.out_links(NodeId{0})[1], b);
  ASSERT_EQ(g.in_links(NodeId{0}).size(), 1u);
  EXPECT_EQ(g.in_links(NodeId{0})[0], c);
  EXPECT_EQ(g.out_degree(NodeId{0}), 2u);
  EXPECT_EQ(g.in_degree(NodeId{0}), 1u);
  EXPECT_EQ(g.out_degree(NodeId{3}), 0u);
}

TEST(DigraphTest, ParallelLinksAllowed) {
  Digraph g(2);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  g.add_link(NodeId{0}, NodeId{1}, 2);
  EXPECT_EQ(g.num_links(), 2u);
  EXPECT_EQ(g.out_degree(NodeId{0}), 2u);
}

TEST(DigraphTest, SelfLoopAllowed) {
  Digraph g(1);
  const LinkId e = g.add_link(NodeId{0}, NodeId{0}, 1);
  EXPECT_EQ(g.tail(e), g.head(e));
  EXPECT_EQ(g.in_degree(NodeId{0}), 1u);
  EXPECT_EQ(g.out_degree(NodeId{0}), 1u);
}

TEST(DigraphTest, MaxDegree) {
  Digraph g(4);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  g.add_link(NodeId{0}, NodeId{2}, 1);
  g.add_link(NodeId{0}, NodeId{3}, 1);
  g.add_link(NodeId{1}, NodeId{0}, 1);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(DigraphTest, SetWeight) {
  Digraph g(2);
  const LinkId e = g.add_link(NodeId{0}, NodeId{1}, 1.0);
  g.set_weight(e, 9.0);
  EXPECT_DOUBLE_EQ(g.weight(e), 9.0);
}

TEST(DigraphTest, InfiniteWeightAllowed) {
  Digraph g(2);
  const LinkId e = g.add_link(NodeId{0}, NodeId{1}, kInfiniteCost);
  EXPECT_EQ(g.weight(e), kInfiniteCost);
}

TEST(DigraphTest, NegativeWeightRejected) {
  Digraph g(2);
  EXPECT_THROW(g.add_link(NodeId{0}, NodeId{1}, -1.0), Error);
  const LinkId e = g.add_link(NodeId{0}, NodeId{1}, 1.0);
  EXPECT_THROW(g.set_weight(e, -0.5), Error);
}

TEST(DigraphTest, OutOfRangeRejected) {
  Digraph g(2);
  EXPECT_THROW(g.add_link(NodeId{0}, NodeId{2}, 1.0), Error);
  EXPECT_THROW(g.add_link(NodeId{5}, NodeId{0}, 1.0), Error);
  EXPECT_THROW((void)g.tail(LinkId{0}), Error);
  EXPECT_THROW((void)g.out_links(NodeId{2}), Error);
}

}  // namespace
}  // namespace lumen
