#include "graph/betweenness.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/dijkstra.h"
#include "topo/topologies.h"
#include "util/rng.h"

namespace lumen {
namespace {

/// Bidirectional unit-weight graph from spans.
Digraph from_spans(std::uint32_t n,
                   std::initializer_list<std::pair<std::uint32_t,
                                                   std::uint32_t>> spans) {
  Digraph g(n);
  for (const auto& [u, v] : spans) {
    g.add_link(NodeId{u}, NodeId{v}, 1.0);
    g.add_link(NodeId{v}, NodeId{u}, 1.0);
  }
  return g;
}

TEST(BetweennessTest, StarCenterDominates) {
  // Star: center 0, leaves 1..4.  All leaf-to-leaf shortest paths pass
  // the center: 4*3 = 12 ordered pairs.
  const auto g = from_spans(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const auto c = betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(c[0], 12.0);
  for (int leaf = 1; leaf <= 4; ++leaf) EXPECT_DOUBLE_EQ(c[leaf], 0.0);
}

TEST(BetweennessTest, PathGraphKnownValues) {
  // Path 0-1-2-3: node 1 lies on paths {0↔2, 0↔3} = 4 ordered;
  // node 2 symmetric.
  const auto g = from_spans(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto c = betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[1], 4.0);
  EXPECT_DOUBLE_EQ(c[2], 4.0);
  EXPECT_DOUBLE_EQ(c[3], 0.0);
}

TEST(BetweennessTest, CycleIsUniform) {
  const auto g = from_spans(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  const auto c = betweenness_centrality(g);
  for (std::uint32_t v = 1; v < 5; ++v) EXPECT_NEAR(c[v], c[0], 1e-9);
  EXPECT_GT(c[0], 0.0);
}

TEST(BetweennessTest, EqualPathSplitCredit) {
  // Bidirectional diamond 0-{1,2}-3, unit weights.  0→3 has two shortest
  // paths (via 1 or 2: 0.5 credit each per direction), and symmetrically
  // 1→2 has two (via 0 or 3).  Every node ends up with exactly 1.0.
  const auto g = from_spans(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const auto c = betweenness_centrality(g);
  for (int v = 0; v < 4; ++v) EXPECT_NEAR(c[v], 1.0, 1e-9) << v;
}

TEST(BetweennessTest, WeightsShiftPaths) {
  // Same diamond but the 0-1-3 route is cheaper: node 1 takes all credit.
  Digraph g(4);
  auto both = [&g](std::uint32_t u, std::uint32_t v, double w) {
    g.add_link(NodeId{u}, NodeId{v}, w);
    g.add_link(NodeId{v}, NodeId{u}, w);
  };
  both(0, 1, 1.0);
  both(1, 3, 1.0);
  both(0, 2, 2.0);
  both(2, 3, 2.0);
  const auto c = betweenness_centrality(g);
  EXPECT_NEAR(c[1], 2.0, 1e-9);  // on 0→3 and 3→0
  EXPECT_DOUBLE_EQ(c[2], 0.0);
}

TEST(BetweennessTest, DisconnectedContributesNothing) {
  Digraph g(4);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  g.add_link(NodeId{2}, NodeId{3}, 1.0);
  const auto c = betweenness_centrality(g);
  for (const double x : c) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(BetweennessTest, EmptyGraph) {
  EXPECT_TRUE(betweenness_centrality(Digraph{}).empty());
}

TEST(BetweennessTest, MatchesBruteForceOnRandomGraphs) {
  // Brute-force: enumerate all shortest paths by DP over Dijkstra dists.
  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    Rng rng(seed);
    Digraph g(12);
    for (int i = 0; i < 40; ++i) {
      const auto u = static_cast<std::uint32_t>(rng.next_below(12));
      const auto v = static_cast<std::uint32_t>(rng.next_below(12));
      // Integer-ish weights avoid FP tie ambiguity between the two
      // implementations.
      if (u != v)
        g.add_link(NodeId{u}, NodeId{v},
                   static_cast<double>(1 + rng.next_below(4)));
    }
    const auto fast = betweenness_centrality(g);

    std::vector<double> slow(12, 0.0);
    for (std::uint32_t s = 0; s < 12; ++s) {
      const auto tree = dijkstra(g, NodeId{s});
      // σ via DP in distance order.
      std::vector<std::pair<double, std::uint32_t>> by_dist;
      std::vector<double> sigma(12, 0.0);
      sigma[s] = 1.0;
      for (std::uint32_t v = 0; v < 12; ++v)
        if (tree.dist[v] < kInfiniteCost) by_dist.push_back({tree.dist[v], v});
      std::sort(by_dist.begin(), by_dist.end());
      for (const auto& [d, v] : by_dist) {
        if (v == s) continue;
        for (const LinkId e : g.in_links(NodeId{v})) {
          const std::uint32_t u = g.tail(e).value();
          if (tree.dist[u] + g.weight(e) == tree.dist[v]) sigma[v] += sigma[u];
        }
      }
      // δ back-accumulation.
      std::vector<double> delta(12, 0.0);
      for (auto it = by_dist.rbegin(); it != by_dist.rend(); ++it) {
        const std::uint32_t w = it->second;
        for (const LinkId e : g.in_links(NodeId{w})) {
          const std::uint32_t u = g.tail(e).value();
          if (tree.dist[u] + g.weight(e) == tree.dist[w] && sigma[w] > 0)
            delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
        }
        if (w != s) slow[w] += delta[w];
      }
    }
    for (std::uint32_t v = 0; v < 12; ++v)
      EXPECT_NEAR(fast[v], slow[v], 1e-6) << "seed " << seed << " v " << v;
  }
}

}  // namespace
}  // namespace lumen
