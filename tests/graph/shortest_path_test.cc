#include <gtest/gtest.h>

#include <tuple>

#include "graph/bellman_ford.h"
#include "graph/binary_heap.h"
#include "graph/dijkstra.h"
#include "graph/pairing_heap.h"
#include "util/rng.h"

namespace lumen {
namespace {

Digraph diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3 with distinct costs.
  Digraph g(4);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  g.add_link(NodeId{1}, NodeId{3}, 4.0);
  g.add_link(NodeId{0}, NodeId{2}, 2.0);
  g.add_link(NodeId{2}, NodeId{3}, 1.0);
  return g;
}

TEST(DijkstraTest, Diamond) {
  const auto g = diamond();
  const auto tree = dijkstra(g, NodeId{0});
  EXPECT_DOUBLE_EQ(tree.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(tree.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(tree.dist[2], 2.0);
  EXPECT_DOUBLE_EQ(tree.dist[3], 3.0);
}

TEST(DijkstraTest, PathExtraction) {
  const auto g = diamond();
  const auto tree = dijkstra(g, NodeId{0});
  const auto path = extract_path(g, tree, NodeId{3});
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ(g.tail((*path)[0]), NodeId{0});
  EXPECT_EQ(g.head((*path)[0]), NodeId{2});
  EXPECT_EQ(g.head((*path)[1]), NodeId{3});
}

TEST(DijkstraTest, UnreachableNode) {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  const auto tree = dijkstra(g, NodeId{0});
  EXPECT_FALSE(tree.reached(NodeId{2}));
  EXPECT_EQ(tree.dist[2], kInfiniteCost);
  EXPECT_EQ(extract_path(g, tree, NodeId{2}), std::nullopt);
}

TEST(DijkstraTest, SourceItself) {
  Digraph g(2);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  const auto tree = dijkstra(g, NodeId{0});
  const auto path = extract_path(g, tree, NodeId{0});
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
}

TEST(DijkstraTest, InfiniteWeightLinksSkipped) {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, kInfiniteCost);
  g.add_link(NodeId{0}, NodeId{2}, 1.0);
  g.add_link(NodeId{2}, NodeId{1}, 1.0);
  const auto tree = dijkstra(g, NodeId{0});
  EXPECT_DOUBLE_EQ(tree.dist[1], 2.0);
}

TEST(DijkstraTest, ZeroWeightLinks) {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, 0.0);
  g.add_link(NodeId{1}, NodeId{2}, 0.0);
  const auto tree = dijkstra(g, NodeId{0});
  EXPECT_DOUBLE_EQ(tree.dist[2], 0.0);
}

TEST(DijkstraTest, ParallelLinksUseCheapest) {
  Digraph g(2);
  g.add_link(NodeId{0}, NodeId{1}, 5.0);
  const LinkId cheap = g.add_link(NodeId{0}, NodeId{1}, 2.0);
  const auto tree = dijkstra(g, NodeId{0});
  EXPECT_DOUBLE_EQ(tree.dist[1], 2.0);
  EXPECT_EQ(tree.parent_link[1], cheap);
}

TEST(DijkstraTest, EarlyExitTargetDistanceExact) {
  Rng rng(4);
  Digraph g(50);
  for (int i = 0; i < 300; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(50));
    const auto v = static_cast<std::uint32_t>(rng.next_below(50));
    if (u == v) continue;
    g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(0.1, 5.0));
  }
  const auto full = dijkstra(g, NodeId{0});
  for (std::uint32_t t = 1; t < 50; ++t) {
    const auto early = dijkstra(g, NodeId{0}, NodeId{t});
    EXPECT_DOUBLE_EQ(early.dist[t], full.dist[t]);
    EXPECT_LE(early.pops, full.pops);
  }
}

TEST(BellmanFordTest, MatchesDijkstraOnDiamond) {
  const auto g = diamond();
  const auto bf = bellman_ford(g, NodeId{0});
  const auto dj = dijkstra(g, NodeId{0});
  for (std::uint32_t v = 0; v < 4; ++v)
    EXPECT_DOUBLE_EQ(bf.dist[v], dj.dist[v]);
}

// Randomized differential test across heaps and Bellman–Ford.
class ShortestPathRandomTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int, int>> {};

TEST_P(ShortestPathRandomTest, AllAlgorithmsAgree) {
  const auto [seed, n, m] = GetParam();
  Rng rng(seed);
  Digraph g(static_cast<std::uint32_t>(n));
  for (int i = 0; i < m; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(n));
    const auto v = static_cast<std::uint32_t>(rng.next_below(n));
    g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(0.0, 10.0));
  }
  const auto reference = bellman_ford(g, NodeId{0});
  const auto fib = dijkstra_with<FibHeap>(g, NodeId{0});
  const auto bin = dijkstra_with<BinaryHeap>(g, NodeId{0});
  const auto quad = dijkstra_with<QuaternaryHeap>(g, NodeId{0});
  const auto pair = dijkstra_with<PairingHeap>(g, NodeId{0});
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    if (reference.dist[v] == kInfiniteCost) {
      EXPECT_EQ(fib.dist[v], kInfiniteCost) << "node " << v;
    } else {
      EXPECT_NEAR(fib.dist[v], reference.dist[v], 1e-9) << "node " << v;
    }
    EXPECT_DOUBLE_EQ(fib.dist[v], bin.dist[v]) << "node " << v;
    EXPECT_DOUBLE_EQ(fib.dist[v], quad.dist[v]) << "node " << v;
    EXPECT_DOUBLE_EQ(fib.dist[v], pair.dist[v]) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ShortestPathRandomTest,
    ::testing::Values(std::tuple{1ULL, 20, 60}, std::tuple{2ULL, 50, 200},
                      std::tuple{3ULL, 100, 150},  // sparse, likely disconnected
                      std::tuple{4ULL, 100, 800}, std::tuple{5ULL, 200, 1000},
                      std::tuple{6ULL, 10, 90}, std::tuple{7ULL, 2, 4},
                      std::tuple{8ULL, 300, 3000}));

TEST(DijkstraTest, TreePathsAreConsistent) {
  // Every reached node's dist equals the sum of weights along parent links.
  Rng rng(77);
  Digraph g(80);
  for (int i = 0; i < 400; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(80));
    const auto v = static_cast<std::uint32_t>(rng.next_below(80));
    g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(0.1, 3.0));
  }
  const auto tree = dijkstra(g, NodeId{0});
  for (std::uint32_t v = 0; v < 80; ++v) {
    if (!tree.reached(NodeId{v})) continue;
    const auto path = extract_path(g, tree, NodeId{v});
    ASSERT_TRUE(path.has_value());
    double total = 0.0;
    for (const LinkId e : *path) total += g.weight(e);
    EXPECT_NEAR(total, tree.dist[v], 1e-9);
  }
}

}  // namespace
}  // namespace lumen
