#include "graph/traversal.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace lumen {
namespace {

TEST(TraversalTest, BfsOrderFromSource) {
  Digraph g(4);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  g.add_link(NodeId{0}, NodeId{2}, 1);
  g.add_link(NodeId{1}, NodeId{3}, 1);
  const auto order = bfs_order(g, NodeId{0});
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], NodeId{0});
  // 1 and 2 before 3.
  EXPECT_EQ(order[3], NodeId{3});
}

TEST(TraversalTest, ReachableFrom) {
  Digraph g(4);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  g.add_link(NodeId{2}, NodeId{3}, 1);
  const auto reach = reachable_from(g, NodeId{0});
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_FALSE(reach[2]);
  EXPECT_FALSE(reach[3]);
}

TEST(TraversalTest, StronglyConnectedCycle) {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  g.add_link(NodeId{1}, NodeId{2}, 1);
  g.add_link(NodeId{2}, NodeId{0}, 1);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(TraversalTest, DirectedPathNotStronglyConnected) {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  g.add_link(NodeId{1}, NodeId{2}, 1);
  EXPECT_FALSE(is_strongly_connected(g));
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST(TraversalTest, DisconnectedWeak) {
  Digraph g(4);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  EXPECT_FALSE(is_weakly_connected(g));
}

TEST(TraversalTest, EmptyAndSingleton) {
  EXPECT_TRUE(is_strongly_connected(Digraph{}));
  EXPECT_TRUE(is_weakly_connected(Digraph{}));
  Digraph one(1);
  EXPECT_TRUE(is_strongly_connected(one));
  EXPECT_TRUE(is_weakly_connected(one));
}

TEST(TraversalTest, BfsHops) {
  Digraph g(5);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  g.add_link(NodeId{1}, NodeId{2}, 1);
  g.add_link(NodeId{2}, NodeId{3}, 1);
  g.add_link(NodeId{0}, NodeId{3}, 1);
  EXPECT_EQ(bfs_hops(g, NodeId{0}, NodeId{3}), 1);
  EXPECT_EQ(bfs_hops(g, NodeId{0}, NodeId{2}), 2);
  EXPECT_EQ(bfs_hops(g, NodeId{0}, NodeId{0}), 0);
  EXPECT_EQ(bfs_hops(g, NodeId{0}, NodeId{4}), -1);
}

TEST(TraversalTest, RandomBidirectionalGraphIsStronglyConnected) {
  Rng rng(5);
  Digraph g(30);
  // Spanning chain both ways guarantees strong connectivity.
  for (std::uint32_t i = 0; i + 1 < 30; ++i) {
    g.add_link(NodeId{i}, NodeId{i + 1}, 1);
    g.add_link(NodeId{i + 1}, NodeId{i}, 1);
  }
  for (int i = 0; i < 40; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(30));
    const auto v = static_cast<std::uint32_t>(rng.next_below(30));
    if (u != v) g.add_link(NodeId{u}, NodeId{v}, 1);
  }
  EXPECT_TRUE(is_strongly_connected(g));
}

}  // namespace
}  // namespace lumen
