// Typed property tests: every heap implementation must behave like a
// reference priority queue under random interleavings of push / pop_min /
// decrease_key.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "graph/binary_heap.h"
#include "graph/fib_heap.h"
#include "graph/pairing_heap.h"
#include "util/error.h"
#include "util/rng.h"

namespace lumen {
namespace {

template <class Heap>
class HeapTest : public ::testing::Test {};

using HeapTypes =
    ::testing::Types<FibHeap, BinaryHeap, QuaternaryHeap, PairingHeap>;
TYPED_TEST_SUITE(HeapTest, HeapTypes);

TYPED_TEST(HeapTest, StartsEmpty) {
  TypeParam heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
}

TYPED_TEST(HeapTest, SingleElement) {
  TypeParam heap;
  heap.push(3.5, 42);
  EXPECT_FALSE(heap.empty());
  EXPECT_EQ(heap.size(), 1u);
  EXPECT_DOUBLE_EQ(heap.min_key(), 3.5);
  EXPECT_EQ(heap.min_item(), 42u);
  const auto [key, item] = heap.pop_min();
  EXPECT_DOUBLE_EQ(key, 3.5);
  EXPECT_EQ(item, 42u);
  EXPECT_TRUE(heap.empty());
}

TYPED_TEST(HeapTest, PopsInSortedOrder) {
  TypeParam heap;
  Rng rng(123);
  std::vector<double> keys;
  for (std::uint32_t i = 0; i < 500; ++i) {
    const double k = rng.next_double_in(0, 100);
    keys.push_back(k);
    heap.push(k, i);
  }
  std::sort(keys.begin(), keys.end());
  for (const double expected : keys) {
    EXPECT_DOUBLE_EQ(heap.pop_min().first, expected);
  }
  EXPECT_TRUE(heap.empty());
}

TYPED_TEST(HeapTest, DuplicateKeys) {
  TypeParam heap;
  for (std::uint32_t i = 0; i < 10; ++i) heap.push(1.0, i);
  std::vector<bool> seen(10, false);
  for (int i = 0; i < 10; ++i) {
    const auto [key, item] = heap.pop_min();
    EXPECT_DOUBLE_EQ(key, 1.0);
    EXPECT_FALSE(seen[item]);
    seen[item] = true;
  }
}

TYPED_TEST(HeapTest, DecreaseKeyMovesToFront) {
  TypeParam heap;
  heap.push(10.0, 1);
  const auto h = heap.push(20.0, 2);
  heap.push(15.0, 3);
  heap.decrease_key(h, 5.0);
  EXPECT_EQ(heap.pop_min().second, 2u);
  EXPECT_EQ(heap.pop_min().second, 1u);
  EXPECT_EQ(heap.pop_min().second, 3u);
}

TYPED_TEST(HeapTest, DecreaseKeyToSameValueIsNoop) {
  TypeParam heap;
  const auto h = heap.push(10.0, 1);
  heap.decrease_key(h, 10.0);
  EXPECT_DOUBLE_EQ(heap.min_key(), 10.0);
}

TYPED_TEST(HeapTest, IncreaseKeyRejected) {
  TypeParam heap;
  const auto h = heap.push(10.0, 1);
  EXPECT_THROW(heap.decrease_key(h, 11.0), Error);
}

TYPED_TEST(HeapTest, PopOnEmptyRejected) {
  TypeParam heap;
  EXPECT_THROW((void)heap.pop_min(), Error);
  EXPECT_THROW((void)heap.min_key(), Error);
}

TYPED_TEST(HeapTest, ClearThenReuse) {
  TypeParam heap;
  for (std::uint32_t i = 0; i < 20; ++i) heap.push(i, i);
  heap.clear();
  EXPECT_TRUE(heap.empty());
  heap.push(2.0, 7);
  heap.push(1.0, 8);
  EXPECT_EQ(heap.pop_min().second, 8u);
  EXPECT_EQ(heap.pop_min().second, 7u);
}

// Randomized differential test against a reference multimap, including
// decrease_key on random live handles.
TYPED_TEST(HeapTest, RandomOperationsMatchReference) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    TypeParam heap;
    Rng rng(seed);
    struct Live {
      typename TypeParam::Handle handle;
      double key;
    };
    std::map<std::uint32_t, Live> live;  // item -> handle/key
    std::uint32_t next_item = 0;

    for (int op = 0; op < 4000; ++op) {
      const auto dice = rng.next_below(10);
      if (dice < 4 || live.empty()) {
        const double key = rng.next_double_in(0, 1000);
        const auto h = heap.push(key, next_item);
        live.emplace(next_item, Live{h, key});
        ++next_item;
      } else if (dice < 7) {
        // decrease_key on a random live item.
        auto it = live.begin();
        std::advance(it, rng.next_below(live.size()));
        const double new_key = it->second.key * rng.next_double();
        heap.decrease_key(it->second.handle, new_key);
        it->second.key = new_key;
      } else {
        const auto [key, item] = heap.pop_min();
        const auto it = live.find(item);
        ASSERT_NE(it, live.end());
        EXPECT_DOUBLE_EQ(key, it->second.key);
        // The popped key must be the minimum over live keys.
        for (const auto& [other_item, entry] : live) {
          EXPECT_LE(key, entry.key) << "item " << other_item;
        }
        live.erase(it);
      }
      EXPECT_EQ(heap.size(), live.size());
    }

    // Drain and confirm global sortedness.
    double prev = -1.0;
    while (!heap.empty()) {
      const auto [key, item] = heap.pop_min();
      EXPECT_GE(key, prev);
      prev = key;
      EXPECT_EQ(live.erase(item), 1u);
    }
    EXPECT_TRUE(live.empty());
  }
}

TYPED_TEST(HeapTest, ManyDecreaseKeysOnSameHandle) {
  TypeParam heap;
  heap.push(50.0, 0);
  const auto h = heap.push(100.0, 1);
  for (int i = 0; i < 50; ++i) {
    heap.decrease_key(h, 100.0 - 2 * i);
  }
  EXPECT_EQ(heap.pop_min().second, 1u);  // ended at key 2.0 < 50
}

TYPED_TEST(HeapTest, LargeSequentialWorkload) {
  TypeParam heap;
  // Dijkstra-like access pattern: monotone pops with interleaved pushes.
  Rng rng(99);
  std::vector<typename TypeParam::Handle> handles;
  for (std::uint32_t i = 0; i < 1000; ++i)
    handles.push_back(heap.push(1000.0 + i, i));
  double last = 0.0;
  std::uint32_t pops = 0;
  while (!heap.empty() && pops < 5000) {
    const auto [key, item] = heap.pop_min();
    EXPECT_GE(key, last);
    last = key;
    ++pops;
    if (pops % 3 == 0) heap.push(key + rng.next_double_in(0, 10), item);
  }
}

}  // namespace
}  // namespace lumen
