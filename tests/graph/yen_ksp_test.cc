#include "graph/yen_ksp.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/dijkstra.h"
#include "util/error.h"
#include "util/rng.h"

namespace lumen {
namespace {

/// The textbook Yen example graph (6 nodes).
Digraph yen_example() {
  Digraph g(6);  // C=0 D=1 E=2 F=3 G=4 H=5
  g.add_link(NodeId{0}, NodeId{1}, 3);  // C->D
  g.add_link(NodeId{0}, NodeId{2}, 2);  // C->E
  g.add_link(NodeId{1}, NodeId{3}, 4);  // D->F
  g.add_link(NodeId{2}, NodeId{1}, 1);  // E->D
  g.add_link(NodeId{2}, NodeId{3}, 2);  // E->F
  g.add_link(NodeId{2}, NodeId{4}, 3);  // E->G
  g.add_link(NodeId{3}, NodeId{4}, 2);  // F->G
  g.add_link(NodeId{3}, NodeId{5}, 1);  // F->H
  g.add_link(NodeId{4}, NodeId{5}, 2);  // G->H
  return g;
}

TEST(YenTest, TextbookExample) {
  const auto g = yen_example();
  const auto paths = yen_k_shortest_paths(g, NodeId{0}, NodeId{5}, 3);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_DOUBLE_EQ(paths[0].cost, 5.0);  // C-E-F-H
  EXPECT_DOUBLE_EQ(paths[1].cost, 7.0);  // C-E-G-H
  EXPECT_DOUBLE_EQ(paths[2].cost, 8.0);  // C-D-F-H or C-E-D-F-H
}

TEST(YenTest, FirstPathIsDijkstraOptimum) {
  Rng rng(1);
  Digraph g(40);
  for (int i = 0; i < 250; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(40));
    const auto v = static_cast<std::uint32_t>(rng.next_below(40));
    if (u != v) g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(0.5, 4));
  }
  const auto tree = dijkstra(g, NodeId{0}, NodeId{39});
  const auto paths = yen_k_shortest_paths(g, NodeId{0}, NodeId{39}, 1);
  if (!tree.reached(NodeId{39})) {
    EXPECT_TRUE(paths.empty());
  } else {
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_NEAR(paths[0].cost, tree.dist[39], 1e-9);
  }
}

TEST(YenTest, PathsSortedDistinctAndValid) {
  Rng rng(2);
  Digraph g(25);
  for (int i = 0; i < 150; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(25));
    const auto v = static_cast<std::uint32_t>(rng.next_below(25));
    if (u != v) g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(1, 3));
  }
  const auto paths = yen_k_shortest_paths(g, NodeId{0}, NodeId{24}, 12);
  std::set<std::vector<LinkId>> seen;
  double prev_cost = 0.0;
  for (const auto& p : paths) {
    // Sorted by cost.
    EXPECT_GE(p.cost + 1e-12, prev_cost);
    prev_cost = p.cost;
    // Distinct.
    EXPECT_TRUE(seen.insert(p.links).second);
    // Connected s -> t walk with matching cost.
    ASSERT_FALSE(p.links.empty());
    EXPECT_EQ(g.tail(p.links.front()), NodeId{0});
    EXPECT_EQ(g.head(p.links.back()), NodeId{24});
    double cost = 0.0;
    std::set<std::uint32_t> nodes{0};
    bool loopless = true;
    for (std::size_t i = 0; i < p.links.size(); ++i) {
      cost += g.weight(p.links[i]);
      if (i + 1 < p.links.size()) {
        EXPECT_EQ(g.head(p.links[i]), g.tail(p.links[i + 1]));
      }
      loopless &= nodes.insert(g.head(p.links[i]).value()).second;
    }
    EXPECT_NEAR(cost, p.cost, 1e-9);
    EXPECT_TRUE(loopless);
  }
}

TEST(YenTest, ExhaustsSmallGraphs) {
  // Diamond: exactly two loopless paths 0->3.
  Digraph g(4);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  g.add_link(NodeId{1}, NodeId{3}, 1);
  g.add_link(NodeId{0}, NodeId{2}, 2);
  g.add_link(NodeId{2}, NodeId{3}, 2);
  const auto paths = yen_k_shortest_paths(g, NodeId{0}, NodeId{3}, 10);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].cost, 2.0);
  EXPECT_DOUBLE_EQ(paths[1].cost, 4.0);
}

TEST(YenTest, ParallelLinksAreDistinctPaths) {
  Digraph g(2);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  g.add_link(NodeId{0}, NodeId{1}, 2);
  g.add_link(NodeId{0}, NodeId{1}, 3);
  const auto paths = yen_k_shortest_paths(g, NodeId{0}, NodeId{1}, 5);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_DOUBLE_EQ(paths[0].cost, 1.0);
  EXPECT_DOUBLE_EQ(paths[2].cost, 3.0);
}

TEST(YenTest, UnreachableTargetEmpty) {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  EXPECT_TRUE(yen_k_shortest_paths(g, NodeId{0}, NodeId{2}, 4).empty());
}

TEST(YenTest, Preconditions) {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  EXPECT_THROW((void)yen_k_shortest_paths(g, NodeId{0}, NodeId{0}, 2), Error);
  EXPECT_THROW((void)yen_k_shortest_paths(g, NodeId{0}, NodeId{1}, 0), Error);
  EXPECT_THROW((void)yen_k_shortest_paths(g, NodeId{9}, NodeId{1}, 1), Error);
}

TEST(YenTest, MatchesExhaustiveEnumerationOnTinyGraphs) {
  // Enumerate every loopless path by DFS and compare the sorted prefix.
  for (const std::uint64_t seed : {5ULL, 6ULL, 7ULL, 8ULL}) {
    Rng rng(seed);
    Digraph g(7);
    for (int i = 0; i < 16; ++i) {
      const auto u = static_cast<std::uint32_t>(rng.next_below(7));
      const auto v = static_cast<std::uint32_t>(rng.next_below(7));
      if (u != v) g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(1, 5));
    }
    // DFS enumeration.
    std::vector<double> all_costs;
    std::vector<char> visited(7, 0);
    std::vector<LinkId> stack;
    auto dfs = [&](auto&& self, NodeId at, double cost) -> void {
      if (at == NodeId{6}) {
        all_costs.push_back(cost);
        return;
      }
      visited[at.value()] = 1;
      for (const LinkId e : g.out_links(at)) {
        const NodeId v = g.head(e);
        if (visited[v.value()]) continue;
        self(self, v, cost + g.weight(e));
      }
      visited[at.value()] = 0;
    };
    dfs(dfs, NodeId{0}, 0.0);
    std::sort(all_costs.begin(), all_costs.end());

    const auto paths = yen_k_shortest_paths(g, NodeId{0}, NodeId{6}, 1000);
    ASSERT_EQ(paths.size(), all_costs.size()) << "seed " << seed;
    for (std::size_t i = 0; i < paths.size(); ++i)
      EXPECT_NEAR(paths[i].cost, all_costs[i], 1e-9)
          << "seed " << seed << " rank " << i;
  }
}

}  // namespace
}  // namespace lumen
