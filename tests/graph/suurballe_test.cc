#include "graph/suurballe.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/dijkstra.h"
#include "util/error.h"
#include "util/rng.h"

namespace lumen {
namespace {

void expect_valid_pair(const Digraph& g, const DisjointPair& pair, NodeId s,
                       NodeId t) {
  std::set<std::uint32_t> used;
  double total = 0.0;
  for (const auto* path : {&pair.first, &pair.second}) {
    ASSERT_FALSE(path->empty());
    EXPECT_EQ(g.tail(path->front()), s);
    EXPECT_EQ(g.head(path->back()), t);
    for (std::size_t i = 0; i < path->size(); ++i) {
      if (i + 1 < path->size()) {
        EXPECT_EQ(g.head((*path)[i]), g.tail((*path)[i + 1]));
      }
      EXPECT_TRUE(used.insert((*path)[i].value()).second)
          << "link reused across the pair";
      total += g.weight((*path)[i]);
    }
  }
  EXPECT_NEAR(total, pair.total_cost, 1e-9);
}

/// Exhaustive optimum: enumerate all simple paths, try all pairs.
double brute_force_best_pair(const Digraph& g, NodeId s, NodeId t) {
  std::vector<std::vector<LinkId>> all_paths;
  std::vector<LinkId> stack;
  std::vector<char> visited(g.num_nodes(), 0);
  auto dfs = [&](auto&& self, NodeId at) -> void {
    if (at == t) {
      all_paths.push_back(stack);
      return;
    }
    visited[at.value()] = 1;
    for (const LinkId e : g.out_links(at)) {
      if (g.weight(e) == kInfiniteCost) continue;
      if (visited[g.head(e).value()]) continue;
      stack.push_back(e);
      self(self, g.head(e));
      stack.pop_back();
    }
    visited[at.value()] = 0;
  };
  dfs(dfs, s);

  double best = kInfiniteCost;
  for (std::size_t i = 0; i < all_paths.size(); ++i) {
    for (std::size_t j = i + 1; j < all_paths.size(); ++j) {
      std::set<std::uint32_t> links;
      for (const LinkId e : all_paths[i]) links.insert(e.value());
      bool disjoint = true;
      for (const LinkId e : all_paths[j]) {
        if (links.contains(e.value())) {
          disjoint = false;
          break;
        }
      }
      if (!disjoint) continue;
      double total = 0.0;
      for (const LinkId e : all_paths[i]) total += g.weight(e);
      for (const LinkId e : all_paths[j]) total += g.weight(e);
      best = std::min(best, total);
    }
  }
  return best;
}

TEST(SuurballeTest, SimpleDiamond) {
  Digraph g(4);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  g.add_link(NodeId{1}, NodeId{3}, 1);
  g.add_link(NodeId{0}, NodeId{2}, 2);
  g.add_link(NodeId{2}, NodeId{3}, 2);
  const auto pair = suurballe_disjoint_pair(g, NodeId{0}, NodeId{3});
  ASSERT_TRUE(pair.has_value());
  expect_valid_pair(g, *pair, NodeId{0}, NodeId{3});
  EXPECT_DOUBLE_EQ(pair->total_cost, 6.0);
}

TEST(SuurballeTest, ClassicTrapTopology) {
  // The shortest single path uses links both alternatives need; the
  // optimal PAIR abandons it.  0→1(1) 1→2(0.1) 2→3(1): cheapest path.
  // Alternatives: 0→2(3), 1→3(3).
  Digraph g(4);
  g.add_link(NodeId{0}, NodeId{1}, 1.0);
  g.add_link(NodeId{1}, NodeId{2}, 0.1);
  g.add_link(NodeId{2}, NodeId{3}, 1.0);
  g.add_link(NodeId{0}, NodeId{2}, 3.0);
  g.add_link(NodeId{1}, NodeId{3}, 3.0);
  const auto pair = suurballe_disjoint_pair(g, NodeId{0}, NodeId{3});
  ASSERT_TRUE(pair.has_value());
  expect_valid_pair(g, *pair, NodeId{0}, NodeId{3});
  // Optimal pair: {0-1-3 (4.0), 0-2-3 (4.0)} = 8.0 — the 2.1 path is gone.
  EXPECT_NEAR(pair->total_cost, 8.0, 1e-9);
}

TEST(SuurballeTest, NoSecondPath) {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  g.add_link(NodeId{1}, NodeId{2}, 1);
  EXPECT_EQ(suurballe_disjoint_pair(g, NodeId{0}, NodeId{2}), std::nullopt);
}

TEST(SuurballeTest, UnreachableTarget) {
  Digraph g(3);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  EXPECT_EQ(suurballe_disjoint_pair(g, NodeId{0}, NodeId{2}), std::nullopt);
}

TEST(SuurballeTest, ParallelLinksArePairs) {
  Digraph g(2);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  g.add_link(NodeId{0}, NodeId{1}, 5);
  const auto pair = suurballe_disjoint_pair(g, NodeId{0}, NodeId{1});
  ASSERT_TRUE(pair.has_value());
  EXPECT_DOUBLE_EQ(pair->total_cost, 6.0);
}

TEST(SuurballeTest, MatchesBruteForceOnRandomGraphs) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 6ULL}) {
    Rng rng(seed);
    Digraph g(8);
    for (int i = 0; i < 20; ++i) {
      const auto u = static_cast<std::uint32_t>(rng.next_below(8));
      const auto v = static_cast<std::uint32_t>(rng.next_below(8));
      if (u != v)
        g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(0.5, 4.0));
    }
    const auto pair = suurballe_disjoint_pair(g, NodeId{0}, NodeId{7});
    const double best = brute_force_best_pair(g, NodeId{0}, NodeId{7});
    if (best == kInfiniteCost) {
      // Brute force only enumerates node-simple paths; Suurballe pairs are
      // link-disjoint but may revisit nodes, so Suurballe can find a pair
      // brute force misses — but not vice versa.
      if (pair.has_value()) {
        expect_valid_pair(g, *pair, NodeId{0}, NodeId{7});
      }
      continue;
    }
    ASSERT_TRUE(pair.has_value()) << "seed " << seed;
    expect_valid_pair(g, *pair, NodeId{0}, NodeId{7});
    EXPECT_LE(pair->total_cost, best + 1e-9) << "seed " << seed;
  }
}

TEST(SuurballeTest, TotalAtLeastTwiceShortestPath) {
  Rng rng(9);
  Digraph g(20);
  for (int i = 0; i < 80; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(20));
    const auto v = static_cast<std::uint32_t>(rng.next_below(20));
    if (u != v) g.add_link(NodeId{u}, NodeId{v}, rng.next_double_in(1, 3));
  }
  const auto tree = dijkstra(g, NodeId{0});
  const auto pair = suurballe_disjoint_pair(g, NodeId{0}, NodeId{11});
  if (pair.has_value() && tree.reached(NodeId{11})) {
    EXPECT_GE(pair->total_cost + 1e-9, 2 * tree.dist[11]);
  }
}

TEST(SuurballeTest, Preconditions) {
  Digraph g(2);
  g.add_link(NodeId{0}, NodeId{1}, 1);
  EXPECT_THROW((void)suurballe_disjoint_pair(g, NodeId{0}, NodeId{0}), Error);
  EXPECT_THROW((void)suurballe_disjoint_pair(g, NodeId{5}, NodeId{1}), Error);
}

}  // namespace
}  // namespace lumen
