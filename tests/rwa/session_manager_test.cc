#include "rwa/session_manager.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/liang_shen.h"
#include "tests/test_util.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"

namespace lumen {
namespace {

/// A tiny chain 0 -> 1 -> 2 with two wavelengths everywhere.
WdmNetwork chain_net(double conversion_cost = 0.25) {
  WdmNetwork net(3, 2, std::make_shared<UniformConversion>(conversion_cost));
  for (std::uint32_t i = 0; i < 2; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{0}, 1.0);
    net.set_wavelength(e, Wavelength{1}, 1.0);
  }
  return net;
}

TEST(SessionManagerTest, OpenReservesResources) {
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  EXPECT_DOUBLE_EQ(manager.wavelength_utilization(), 0.0);
  const auto id = manager.open(NodeId{0}, NodeId{2});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(manager.active_sessions(), 1u);
  EXPECT_DOUBLE_EQ(manager.wavelength_utilization(), 0.5);  // 2 of 4 pairs
  const SessionRecord* record = manager.find(*id);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->active);
  EXPECT_EQ(record->path.length(), 2u);
  // The reserved wavelengths are gone from the residual network.
  for (const Hop& hop : record->path.hops())
    EXPECT_FALSE(manager.residual().is_available(hop.link, hop.wavelength));
}

TEST(SessionManagerTest, CapacityExhaustionBlocksThenReleaseRestores) {
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  const auto first = manager.open(NodeId{0}, NodeId{2});
  const auto second = manager.open(NodeId{0}, NodeId{2});
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  // Both wavelengths on both links are now taken.
  const auto third = manager.open(NodeId{0}, NodeId{2});
  EXPECT_FALSE(third.has_value());
  EXPECT_EQ(manager.stats().blocked, 1u);

  ASSERT_TRUE(manager.close(*first));
  const auto fourth = manager.open(NodeId{0}, NodeId{2});
  EXPECT_TRUE(fourth.has_value());
  EXPECT_EQ(manager.stats().carried, 3u);
  EXPECT_EQ(manager.stats().offered, 4u);
}

TEST(SessionManagerTest, ReleaseRestoresOriginalCosts) {
  WdmNetwork net(2, 1, std::make_shared<NoConversion>());
  const LinkId e = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(e, Wavelength{0}, 3.75);
  SessionManager manager(std::move(net), RoutingPolicy::kSemilightpath);
  const auto id = manager.open(NodeId{0}, NodeId{1});
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(manager.residual().is_available(LinkId{0}, Wavelength{0}));
  ASSERT_TRUE(manager.close(*id));
  EXPECT_DOUBLE_EQ(manager.residual().link_cost(LinkId{0}, Wavelength{0}),
                   3.75);
  EXPECT_DOUBLE_EQ(manager.wavelength_utilization(), 0.0);
}

TEST(SessionManagerTest, DoubleCloseAndUnknownIdRejected) {
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  const auto id = manager.open(NodeId{0}, NodeId{2});
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(manager.close(*id));
  EXPECT_FALSE(manager.close(*id));            // already closed
  EXPECT_FALSE(manager.close(SessionId{99}));  // unknown
  EXPECT_EQ(manager.stats().released, 1u);
}

TEST(SessionManagerTest, PolicyLadderBlockingOrder) {
  // Force a wavelength-continuity conflict: 0->1 only λ0, 1->2 only λ1.
  auto make_conflict_net = [] {
    WdmNetwork net(3, 2, std::make_shared<UniformConversion>(0.1));
    const LinkId a = net.add_link(NodeId{0}, NodeId{1});
    net.set_wavelength(a, Wavelength{0}, 1.0);
    const LinkId b = net.add_link(NodeId{1}, NodeId{2});
    net.set_wavelength(b, Wavelength{1}, 1.0);
    return net;
  };
  SessionManager ff(make_conflict_net(), RoutingPolicy::kLightpathFirstFit);
  SessionManager best(make_conflict_net(), RoutingPolicy::kLightpathBestCost);
  SessionManager semi(make_conflict_net(), RoutingPolicy::kSemilightpath);
  EXPECT_FALSE(ff.open(NodeId{0}, NodeId{2}).has_value());
  EXPECT_FALSE(best.open(NodeId{0}, NodeId{2}).has_value());
  EXPECT_TRUE(semi.open(NodeId{0}, NodeId{2}).has_value());
}

TEST(SessionManagerTest, FirstFitPicksSmallestCommonWavelength) {
  WdmNetwork net(3, 3, std::make_shared<NoConversion>());
  const LinkId a = net.add_link(NodeId{0}, NodeId{1});
  const LinkId b = net.add_link(NodeId{1}, NodeId{2});
  // λ0 only on a, λ1 and λ2 on both.
  net.set_wavelength(a, Wavelength{0}, 1.0);
  for (const LinkId e : {a, b}) {
    net.set_wavelength(e, Wavelength{1}, 1.0);
    net.set_wavelength(e, Wavelength{2}, 1.0);
  }
  SessionManager manager(std::move(net), RoutingPolicy::kLightpathFirstFit);
  const auto id = manager.open(NodeId{0}, NodeId{2});
  ASSERT_TRUE(id.has_value());
  for (const Hop& hop : manager.find(*id)->path.hops())
    EXPECT_EQ(hop.wavelength, Wavelength{1});  // smallest common
}

TEST(SessionManagerTest, SemilightpathPolicyBeatsLightpathOnBlocking) {
  // Under heavy sequential load on a ring, the conversion-capable policy
  // must carry at least as many sessions.
  Rng rng(71);
  const Topology topo = ring_topology(8);
  const Availability avail =
      uniform_availability(topo, 4, 2, 3, CostSpec::unit(), rng);
  const auto base = assemble_network(
      topo, 4, avail, std::make_shared<UniformConversion>(0.1));

  SessionManager light(base, RoutingPolicy::kLightpathBestCost);
  SessionManager semi(base, RoutingPolicy::kSemilightpath);
  Rng demand_rng(72);
  for (const auto& [s, t] : random_demands(8, 40, demand_rng)) {
    (void)light.open(s, t);
    (void)semi.open(s, t);
  }
  EXPECT_GE(semi.stats().carried, light.stats().carried);
}

TEST(SessionManagerTest, StatsAccounting) {
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  (void)manager.open(NodeId{0}, NodeId{2});
  (void)manager.open(NodeId{0}, NodeId{2});
  (void)manager.open(NodeId{0}, NodeId{2});  // blocked
  const SessionStats& stats = manager.stats();
  EXPECT_EQ(stats.offered, 3u);
  EXPECT_EQ(stats.carried, 2u);
  EXPECT_EQ(stats.blocked, 1u);
  EXPECT_NEAR(stats.blocking_rate(), 1.0 / 3.0, 1e-12);
  EXPECT_GT(stats.mean_carried_cost(), 0.0);
}

TEST(SessionManagerTest, Preconditions) {
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  EXPECT_THROW((void)manager.open(NodeId{0}, NodeId{0}), Error);
  EXPECT_THROW((void)manager.open(NodeId{0}, NodeId{9}), Error);
}

}  // namespace
}  // namespace lumen
