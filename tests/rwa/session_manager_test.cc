#include "rwa/session_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/liang_shen.h"
#include "tests/test_util.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"

namespace lumen {
namespace {

/// A tiny chain 0 -> 1 -> 2 with two wavelengths everywhere.
WdmNetwork chain_net(double conversion_cost = 0.25) {
  WdmNetwork net(3, 2, std::make_shared<UniformConversion>(conversion_cost));
  for (std::uint32_t i = 0; i < 2; ++i) {
    const LinkId e = net.add_link(NodeId{i}, NodeId{i + 1});
    net.set_wavelength(e, Wavelength{0}, 1.0);
    net.set_wavelength(e, Wavelength{1}, 1.0);
  }
  return net;
}

TEST(SessionManagerTest, OpenReservesResources) {
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  EXPECT_DOUBLE_EQ(manager.wavelength_utilization(), 0.0);
  const auto id = manager.open(NodeId{0}, NodeId{2});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(manager.active_sessions(), 1u);
  EXPECT_DOUBLE_EQ(manager.wavelength_utilization(), 0.5);  // 2 of 4 pairs
  const SessionRecord* record = manager.find(*id);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->active);
  EXPECT_EQ(record->path.length(), 2u);
  // The reserved wavelengths are gone from the residual network.
  for (const Hop& hop : record->path.hops())
    EXPECT_FALSE(manager.residual().is_available(hop.link, hop.wavelength));
}

TEST(SessionManagerTest, CapacityExhaustionBlocksThenReleaseRestores) {
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  const auto first = manager.open(NodeId{0}, NodeId{2});
  const auto second = manager.open(NodeId{0}, NodeId{2});
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  // Both wavelengths on both links are now taken.
  const auto third = manager.open(NodeId{0}, NodeId{2});
  EXPECT_FALSE(third.has_value());
  EXPECT_EQ(manager.stats().blocked, 1u);

  ASSERT_TRUE(manager.close(*first));
  const auto fourth = manager.open(NodeId{0}, NodeId{2});
  EXPECT_TRUE(fourth.has_value());
  EXPECT_EQ(manager.stats().carried, 3u);
  EXPECT_EQ(manager.stats().offered, 4u);
}

TEST(SessionManagerTest, ReleaseRestoresOriginalCosts) {
  WdmNetwork net(2, 1, std::make_shared<NoConversion>());
  const LinkId e = net.add_link(NodeId{0}, NodeId{1});
  net.set_wavelength(e, Wavelength{0}, 3.75);
  SessionManager manager(std::move(net), RoutingPolicy::kSemilightpath);
  const auto id = manager.open(NodeId{0}, NodeId{1});
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(manager.residual().is_available(LinkId{0}, Wavelength{0}));
  ASSERT_TRUE(manager.close(*id));
  EXPECT_DOUBLE_EQ(manager.residual().link_cost(LinkId{0}, Wavelength{0}),
                   3.75);
  EXPECT_DOUBLE_EQ(manager.wavelength_utilization(), 0.0);
}

TEST(SessionManagerTest, DoubleCloseAndUnknownIdRejected) {
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  const auto id = manager.open(NodeId{0}, NodeId{2});
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(manager.close(*id));
  EXPECT_FALSE(manager.close(*id));            // already closed
  EXPECT_FALSE(manager.close(SessionId{99}));  // unknown
  EXPECT_EQ(manager.stats().released, 1u);
}

TEST(SessionManagerTest, PolicyLadderBlockingOrder) {
  // Force a wavelength-continuity conflict: 0->1 only λ0, 1->2 only λ1.
  auto make_conflict_net = [] {
    WdmNetwork net(3, 2, std::make_shared<UniformConversion>(0.1));
    const LinkId a = net.add_link(NodeId{0}, NodeId{1});
    net.set_wavelength(a, Wavelength{0}, 1.0);
    const LinkId b = net.add_link(NodeId{1}, NodeId{2});
    net.set_wavelength(b, Wavelength{1}, 1.0);
    return net;
  };
  SessionManager ff(make_conflict_net(), RoutingPolicy::kLightpathFirstFit);
  SessionManager best(make_conflict_net(), RoutingPolicy::kLightpathBestCost);
  SessionManager semi(make_conflict_net(), RoutingPolicy::kSemilightpath);
  EXPECT_FALSE(ff.open(NodeId{0}, NodeId{2}).has_value());
  EXPECT_FALSE(best.open(NodeId{0}, NodeId{2}).has_value());
  EXPECT_TRUE(semi.open(NodeId{0}, NodeId{2}).has_value());
}

TEST(SessionManagerTest, FirstFitPicksSmallestCommonWavelength) {
  WdmNetwork net(3, 3, std::make_shared<NoConversion>());
  const LinkId a = net.add_link(NodeId{0}, NodeId{1});
  const LinkId b = net.add_link(NodeId{1}, NodeId{2});
  // λ0 only on a, λ1 and λ2 on both.
  net.set_wavelength(a, Wavelength{0}, 1.0);
  for (const LinkId e : {a, b}) {
    net.set_wavelength(e, Wavelength{1}, 1.0);
    net.set_wavelength(e, Wavelength{2}, 1.0);
  }
  SessionManager manager(std::move(net), RoutingPolicy::kLightpathFirstFit);
  const auto id = manager.open(NodeId{0}, NodeId{2});
  ASSERT_TRUE(id.has_value());
  for (const Hop& hop : manager.find(*id)->path.hops())
    EXPECT_EQ(hop.wavelength, Wavelength{1});  // smallest common
}

TEST(SessionManagerTest, SemilightpathPolicyBeatsLightpathOnBlocking) {
  // Under heavy sequential load on a ring, the conversion-capable policy
  // must carry at least as many sessions.
  Rng rng(71);
  const Topology topo = ring_topology(8);
  const Availability avail =
      uniform_availability(topo, 4, 2, 3, CostSpec::unit(), rng);
  const auto base = assemble_network(
      topo, 4, avail, std::make_shared<UniformConversion>(0.1));

  SessionManager light(base, RoutingPolicy::kLightpathBestCost);
  SessionManager semi(base, RoutingPolicy::kSemilightpath);
  Rng demand_rng(72);
  for (const auto& [s, t] : random_demands(8, 40, demand_rng)) {
    (void)light.open(s, t);
    (void)semi.open(s, t);
  }
  EXPECT_GE(semi.stats().carried, light.stats().carried);
}

TEST(SessionManagerTest, StatsAccounting) {
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  (void)manager.open(NodeId{0}, NodeId{2});
  (void)manager.open(NodeId{0}, NodeId{2});
  (void)manager.open(NodeId{0}, NodeId{2});  // blocked
  const SessionStats& stats = manager.stats();
  EXPECT_EQ(stats.offered, 3u);
  EXPECT_EQ(stats.carried, 2u);
  EXPECT_EQ(stats.blocked, 1u);
  EXPECT_NEAR(stats.blocking_rate(), 1.0 / 3.0, 1e-12);
  EXPECT_GT(stats.mean_carried_cost(), 0.0);
}

TEST(SessionManagerTest, Preconditions) {
  SessionManager manager(chain_net(), RoutingPolicy::kSemilightpath);
  EXPECT_THROW((void)manager.open(NodeId{0}, NodeId{0}), Error);
  EXPECT_THROW((void)manager.open(NodeId{0}, NodeId{9}), Error);
}

/// Drives `plain` and `engine` through an identical workload of opens,
/// closes, failures, repairs, and reoptimizations, asserting the engine
/// policy makes the same decisions at the same costs throughout.  This is
/// the end-to-end check that the O(1) weight patches keep the flattened
/// core exactly synchronized with the residual network.
void run_engine_equivalence_workload(SessionManager& plain,
                                     SessionManager& engine,
                                     std::uint64_t seed) {
  const std::uint32_t n = plain.residual().num_nodes();
  Rng rng(seed);
  std::vector<std::pair<SessionId, SessionId>> open_pairs;

  for (int step = 0; step < 120; ++step) {
    const auto choice = rng.next_below(10);
    if (choice < 5) {  // open
      NodeId s{static_cast<std::uint32_t>(rng.next_below(n))};
      NodeId t{static_cast<std::uint32_t>(rng.next_below(n))};
      if (s == t) continue;
      const auto a = plain.open(s, t);
      const auto b = engine.open(s, t);
      ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
      if (a.has_value()) {
        EXPECT_NEAR(plain.find(*a)->cost, engine.find(*b)->cost, 1e-9)
            << "step " << step;
        open_pairs.emplace_back(*a, *b);
      }
    } else if (choice < 7) {  // close
      if (open_pairs.empty()) continue;
      const std::size_t i = rng.next_below(open_pairs.size());
      EXPECT_EQ(plain.close(open_pairs[i].first),
                engine.close(open_pairs[i].second));
      open_pairs[i] = open_pairs.back();
      open_pairs.pop_back();
    } else if (choice == 7) {  // fail a span
      const NodeId a{static_cast<std::uint32_t>(rng.next_below(n))};
      const NodeId b{static_cast<std::uint32_t>(rng.next_below(n))};
      const auto ra = plain.fail_span(a, b);
      const auto rb = engine.fail_span(a, b);
      EXPECT_EQ(ra.links_failed, rb.links_failed) << "step " << step;
      EXPECT_EQ(ra.affected, rb.affected) << "step " << step;
      EXPECT_EQ(ra.dropped, rb.dropped) << "step " << step;
      // Sessions may have been dropped; prune pairs that went inactive.
      std::erase_if(open_pairs, [&](const auto& pair) {
        const bool alive_a = plain.find(pair.first)->active;
        const bool alive_b = engine.find(pair.second)->active;
        EXPECT_EQ(alive_a, alive_b);
        return !alive_a;
      });
    } else if (choice == 8) {  // repair a span
      const NodeId a{static_cast<std::uint32_t>(rng.next_below(n))};
      const NodeId b{static_cast<std::uint32_t>(rng.next_below(n))};
      plain.repair_span(a, b);
      engine.repair_span(a, b);
    } else {  // reoptimize
      if (open_pairs.empty()) continue;
      const std::size_t i = rng.next_below(open_pairs.size());
      const bool moved_a = plain.reoptimize(open_pairs[i].first);
      const bool moved_b = engine.reoptimize(open_pairs[i].second);
      EXPECT_EQ(moved_a, moved_b) << "step " << step;
      EXPECT_NEAR(plain.find(open_pairs[i].first)->cost,
                  engine.find(open_pairs[i].second)->cost, 1e-9);
    }

    EXPECT_EQ(plain.active_sessions(), engine.active_sessions());
    EXPECT_NEAR(plain.wavelength_utilization(),
                engine.wavelength_utilization(), 1e-12);
  }

  EXPECT_EQ(plain.stats().carried, engine.stats().carried);
  EXPECT_EQ(plain.stats().blocked, engine.stats().blocked);
  EXPECT_EQ(plain.stats().dropped, engine.stats().dropped);
  EXPECT_NEAR(plain.stats().carried_cost_sum, engine.stats().carried_cost_sum,
              1e-6);
}

TEST(SessionManagerTest, EnginePolicyMatchesSemilightpathWorkload) {
  Rng rng(91);
  const auto base =
      testing::random_network(10, 12, 4, 3, testing::ConvKind::kUniform, rng);
  SessionManager plain(base, RoutingPolicy::kSemilightpath);
  SessionManager engine(base, RoutingPolicy::kSemilightpathEngine);
  EXPECT_EQ(plain.policy(), RoutingPolicy::kSemilightpath);
  EXPECT_EQ(engine.policy(), RoutingPolicy::kSemilightpathEngine);
  run_engine_equivalence_workload(plain, engine, 92);
}

TEST(SessionManagerTest, EnginePolicyMatchesLightpathWorkload) {
  Rng rng(93);
  const auto base =
      testing::random_network(10, 12, 4, 3, testing::ConvKind::kNone, rng);
  SessionManager plain(base, RoutingPolicy::kLightpathBestCost);
  SessionManager engine(base, RoutingPolicy::kLightpathEngine);
  run_engine_equivalence_workload(plain, engine, 94);
}

}  // namespace
}  // namespace lumen
