// Failure injection: span cuts, restoration, repair.
#include <gtest/gtest.h>

#include <memory>

#include "rwa/session_manager.h"
#include "tests/test_util.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"

namespace lumen {
namespace {

/// Bidirectional ring of 6 nodes, 2 wavelengths, full availability.
SessionManager ring_manager(RoutingPolicy policy) {
  Rng rng(17);
  const Topology topo = ring_topology(6);
  const Availability avail = full_availability(topo, 2, CostSpec::unit(), rng);
  return SessionManager(
      assemble_network(topo, 2, avail,
                       std::make_shared<UniformConversion>(0.1)),
      policy);
}

TEST(FailureTest, CutSpanReroutesAroundRing) {
  auto manager = ring_manager(RoutingPolicy::kSemilightpath);
  const auto id = manager.open(NodeId{0}, NodeId{2});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(manager.find(*id)->path.length(), 2u);  // 0-1-2 the short way

  // Cut span 1-2: the session must reroute the long way (0-5-4-3-2).
  const auto report = manager.fail_span(NodeId{1}, NodeId{2});
  EXPECT_EQ(report.links_failed, 2u);
  EXPECT_EQ(report.affected, 1u);
  EXPECT_EQ(report.rerouted, 1u);
  EXPECT_EQ(report.dropped, 0u);
  const SessionRecord* record = manager.find(*id);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->active);
  EXPECT_EQ(record->path.length(), 4u);
  // The new route avoids the cut span entirely.  (Note: an active path is
  // never "available" in the residual network — its wavelengths are
  // reserved — so we check link health, not availability.)
  for (const Hop& hop : record->path.hops())
    EXPECT_FALSE(manager.is_failed(hop.link));
  EXPECT_EQ(manager.stats().rerouted, 1u);
}

TEST(FailureTest, UnaffectedSessionsUntouched) {
  auto manager = ring_manager(RoutingPolicy::kSemilightpath);
  const auto far = manager.open(NodeId{3}, NodeId{5});
  ASSERT_TRUE(far.has_value());
  const auto before = manager.find(*far)->path;
  const auto report = manager.fail_span(NodeId{0}, NodeId{1});
  EXPECT_EQ(report.affected, 0u);
  EXPECT_EQ(manager.find(*far)->path, before);
}

TEST(FailureTest, DropWhenNoAlternateRoute) {
  // Line topology: cutting the only span in the middle drops the session.
  Rng rng(18);
  const Topology topo = line_topology(4);
  const Availability avail = full_availability(topo, 2, CostSpec::unit(), rng);
  SessionManager manager(
      assemble_network(topo, 2, avail, std::make_shared<NoConversion>()),
      RoutingPolicy::kSemilightpath);
  const auto id = manager.open(NodeId{0}, NodeId{3});
  ASSERT_TRUE(id.has_value());
  const auto report = manager.fail_span(NodeId{1}, NodeId{2});
  EXPECT_EQ(report.affected, 1u);
  EXPECT_EQ(report.dropped, 1u);
  EXPECT_EQ(report.rerouted, 0u);
  EXPECT_FALSE(manager.find(*id)->active);
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_EQ(manager.stats().dropped, 1u);
  // Resources of the dropped session on healthy links are back.
  EXPECT_DOUBLE_EQ(manager.wavelength_utilization(), 0.0);
}

TEST(FailureTest, FailedLinksRejectNewSessions) {
  Rng rng(19);
  const Topology topo = line_topology(3);
  const Availability avail = full_availability(topo, 2, CostSpec::unit(), rng);
  SessionManager manager(
      assemble_network(topo, 2, avail, std::make_shared<NoConversion>()),
      RoutingPolicy::kSemilightpath);
  (void)manager.fail_span(NodeId{0}, NodeId{1});
  EXPECT_FALSE(manager.open(NodeId{0}, NodeId{2}).has_value());
  // But the unaffected half still works.
  EXPECT_TRUE(manager.open(NodeId{1}, NodeId{2}).has_value());
}

TEST(FailureTest, RepairRestoresCapacity) {
  Rng rng(20);
  const Topology topo = line_topology(3);
  const Availability avail = full_availability(topo, 2, CostSpec::unit(), rng);
  SessionManager manager(
      assemble_network(topo, 2, avail, std::make_shared<NoConversion>()),
      RoutingPolicy::kSemilightpath);
  (void)manager.fail_span(NodeId{0}, NodeId{1});
  EXPECT_FALSE(manager.open(NodeId{0}, NodeId{2}).has_value());
  manager.repair_span(NodeId{0}, NodeId{1});
  EXPECT_TRUE(manager.open(NodeId{0}, NodeId{2}).has_value());
}

TEST(FailureTest, RepairRespectsActiveReservations) {
  auto manager = ring_manager(RoutingPolicy::kSemilightpath);
  // Fill span 0-1 in the 0->1 direction on both wavelengths.
  const auto a = manager.open(NodeId{0}, NodeId{1});
  const auto b = manager.open(NodeId{0}, NodeId{1});
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // Both sessions sit on span 0-1 (direct hop is the optimum both times).
  ASSERT_EQ(manager.find(*a)->path.length(), 1u);
  ASSERT_EQ(manager.find(*b)->path.length(), 1u);

  (void)manager.fail_span(NodeId{2}, NodeId{3});  // unrelated span
  manager.repair_span(NodeId{2}, NodeId{3});
  // The repair of an unrelated span must not resurrect 0->1 capacity.
  const auto c = manager.open(NodeId{0}, NodeId{1});
  if (c.has_value()) {
    // If carried, it must have gone the long way round.
    EXPECT_GT(manager.find(*c)->path.length(), 1u);
  }
}

TEST(FailureTest, IdempotentFailAndRepair) {
  auto manager = ring_manager(RoutingPolicy::kSemilightpath);
  const auto first = manager.fail_span(NodeId{0}, NodeId{1});
  EXPECT_EQ(first.links_failed, 2u);
  const auto second = manager.fail_span(NodeId{0}, NodeId{1});
  EXPECT_EQ(second.links_failed, 0u);  // already down
  manager.repair_span(NodeId{0}, NodeId{1});
  manager.repair_span(NodeId{0}, NodeId{1});  // no-op
  EXPECT_TRUE(manager.open(NodeId{0}, NodeId{1}).has_value());
}

TEST(FailureTest, IsFailedAccessor) {
  auto manager = ring_manager(RoutingPolicy::kSemilightpath);
  (void)manager.fail_span(NodeId{0}, NodeId{1});
  std::uint32_t failed = 0;
  for (std::uint32_t e = 0; e < manager.residual().num_links(); ++e)
    failed += manager.is_failed(LinkId{e});
  EXPECT_EQ(failed, 2u);
  EXPECT_THROW((void)manager.is_failed(LinkId{999}), Error);
}

TEST(FailureTest, MultiFailureCascade) {
  // Cut spans one by one around the ring; a 0->3 session survives until
  // the last route dies.
  auto manager = ring_manager(RoutingPolicy::kSemilightpath);
  const auto id = manager.open(NodeId{0}, NodeId{3});
  ASSERT_TRUE(id.has_value());
  (void)manager.fail_span(NodeId{1}, NodeId{2});   // kills clockwise
  EXPECT_TRUE(manager.find(*id)->active);
  (void)manager.fail_span(NodeId{4}, NodeId{5});   // kills counterclockwise
  EXPECT_FALSE(manager.find(*id)->active);
  EXPECT_EQ(manager.stats().dropped, 1u);
}

}  // namespace
}  // namespace lumen
