// Failure injection: span cuts, restoration, repair — including the
// engine-backed policies, whose in-place patched weights are checked
// against a rebuilt-from-scratch RouteEngine oracle through whole
// fail → reroute → repair cycles, and the FaultPlan span-timeline replay
// that drives the same path from simulator-level fault windows.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/route_engine.h"
#include "dist/fault_plan.h"
#include "rwa/session_manager.h"
#include "tests/test_util.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"

namespace lumen {
namespace {

/// Bidirectional ring of 6 nodes, 2 wavelengths, full availability.
SessionManager ring_manager(RoutingPolicy policy) {
  Rng rng(17);
  const Topology topo = ring_topology(6);
  const Availability avail = full_availability(topo, 2, CostSpec::unit(), rng);
  return SessionManager(
      assemble_network(topo, 2, avail,
                       std::make_shared<UniformConversion>(0.1)),
      policy);
}

TEST(FailureTest, CutSpanReroutesAroundRing) {
  auto manager = ring_manager(RoutingPolicy::kSemilightpath);
  const auto id = manager.open(NodeId{0}, NodeId{2});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(manager.find(*id)->path.length(), 2u);  // 0-1-2 the short way

  // Cut span 1-2: the session must reroute the long way (0-5-4-3-2).
  const auto report = manager.fail_span(NodeId{1}, NodeId{2});
  EXPECT_EQ(report.links_failed, 2u);
  EXPECT_EQ(report.affected, 1u);
  EXPECT_EQ(report.rerouted, 1u);
  EXPECT_EQ(report.dropped, 0u);
  const SessionRecord* record = manager.find(*id);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->active);
  EXPECT_EQ(record->path.length(), 4u);
  // The new route avoids the cut span entirely.  (Note: an active path is
  // never "available" in the residual network — its wavelengths are
  // reserved — so we check link health, not availability.)
  for (const Hop& hop : record->path.hops())
    EXPECT_FALSE(manager.is_failed(hop.link));
  EXPECT_EQ(manager.stats().rerouted, 1u);
}

TEST(FailureTest, UnaffectedSessionsUntouched) {
  auto manager = ring_manager(RoutingPolicy::kSemilightpath);
  const auto far = manager.open(NodeId{3}, NodeId{5});
  ASSERT_TRUE(far.has_value());
  const auto before = manager.find(*far)->path;
  const auto report = manager.fail_span(NodeId{0}, NodeId{1});
  EXPECT_EQ(report.affected, 0u);
  EXPECT_EQ(manager.find(*far)->path, before);
}

TEST(FailureTest, DropWhenNoAlternateRoute) {
  // Line topology: cutting the only span in the middle drops the session.
  Rng rng(18);
  const Topology topo = line_topology(4);
  const Availability avail = full_availability(topo, 2, CostSpec::unit(), rng);
  SessionManager manager(
      assemble_network(topo, 2, avail, std::make_shared<NoConversion>()),
      RoutingPolicy::kSemilightpath);
  const auto id = manager.open(NodeId{0}, NodeId{3});
  ASSERT_TRUE(id.has_value());
  const auto report = manager.fail_span(NodeId{1}, NodeId{2});
  EXPECT_EQ(report.affected, 1u);
  EXPECT_EQ(report.dropped, 1u);
  EXPECT_EQ(report.rerouted, 0u);
  EXPECT_FALSE(manager.find(*id)->active);
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_EQ(manager.stats().dropped, 1u);
  // Resources of the dropped session on healthy links are back.
  EXPECT_DOUBLE_EQ(manager.wavelength_utilization(), 0.0);
}

TEST(FailureTest, FailedLinksRejectNewSessions) {
  Rng rng(19);
  const Topology topo = line_topology(3);
  const Availability avail = full_availability(topo, 2, CostSpec::unit(), rng);
  SessionManager manager(
      assemble_network(topo, 2, avail, std::make_shared<NoConversion>()),
      RoutingPolicy::kSemilightpath);
  (void)manager.fail_span(NodeId{0}, NodeId{1});
  EXPECT_FALSE(manager.open(NodeId{0}, NodeId{2}).has_value());
  // But the unaffected half still works.
  EXPECT_TRUE(manager.open(NodeId{1}, NodeId{2}).has_value());
}

TEST(FailureTest, RepairRestoresCapacity) {
  Rng rng(20);
  const Topology topo = line_topology(3);
  const Availability avail = full_availability(topo, 2, CostSpec::unit(), rng);
  SessionManager manager(
      assemble_network(topo, 2, avail, std::make_shared<NoConversion>()),
      RoutingPolicy::kSemilightpath);
  (void)manager.fail_span(NodeId{0}, NodeId{1});
  EXPECT_FALSE(manager.open(NodeId{0}, NodeId{2}).has_value());
  manager.repair_span(NodeId{0}, NodeId{1});
  EXPECT_TRUE(manager.open(NodeId{0}, NodeId{2}).has_value());
}

TEST(FailureTest, RepairRespectsActiveReservations) {
  auto manager = ring_manager(RoutingPolicy::kSemilightpath);
  // Fill span 0-1 in the 0->1 direction on both wavelengths.
  const auto a = manager.open(NodeId{0}, NodeId{1});
  const auto b = manager.open(NodeId{0}, NodeId{1});
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // Both sessions sit on span 0-1 (direct hop is the optimum both times).
  ASSERT_EQ(manager.find(*a)->path.length(), 1u);
  ASSERT_EQ(manager.find(*b)->path.length(), 1u);

  (void)manager.fail_span(NodeId{2}, NodeId{3});  // unrelated span
  manager.repair_span(NodeId{2}, NodeId{3});
  // The repair of an unrelated span must not resurrect 0->1 capacity.
  const auto c = manager.open(NodeId{0}, NodeId{1});
  if (c.has_value()) {
    // If carried, it must have gone the long way round.
    EXPECT_GT(manager.find(*c)->path.length(), 1u);
  }
}

TEST(FailureTest, IdempotentFailAndRepair) {
  auto manager = ring_manager(RoutingPolicy::kSemilightpath);
  const auto first = manager.fail_span(NodeId{0}, NodeId{1});
  EXPECT_EQ(first.links_failed, 2u);
  const auto second = manager.fail_span(NodeId{0}, NodeId{1});
  EXPECT_EQ(second.links_failed, 0u);  // already down
  manager.repair_span(NodeId{0}, NodeId{1});
  manager.repair_span(NodeId{0}, NodeId{1});  // no-op
  EXPECT_TRUE(manager.open(NodeId{0}, NodeId{1}).has_value());
}

TEST(FailureTest, IsFailedAccessor) {
  auto manager = ring_manager(RoutingPolicy::kSemilightpath);
  (void)manager.fail_span(NodeId{0}, NodeId{1});
  std::uint32_t failed = 0;
  for (std::uint32_t e = 0; e < manager.residual().num_links(); ++e)
    failed += manager.is_failed(LinkId{e});
  EXPECT_EQ(failed, 2u);
  EXPECT_THROW((void)manager.is_failed(LinkId{999}), Error);
}

TEST(FailureTest, MultiFailureCascade) {
  // Cut spans one by one around the ring; a 0->3 session survives until
  // the last route dies.
  auto manager = ring_manager(RoutingPolicy::kSemilightpath);
  const auto id = manager.open(NodeId{0}, NodeId{3});
  ASSERT_TRUE(id.has_value());
  (void)manager.fail_span(NodeId{1}, NodeId{2});   // kills clockwise
  EXPECT_TRUE(manager.find(*id)->active);
  (void)manager.fail_span(NodeId{4}, NodeId{5});   // kills counterclockwise
  EXPECT_FALSE(manager.find(*id)->active);
  EXPECT_EQ(manager.stats().dropped, 1u);
}

// --- engine-backed policies through fail/reroute/repair cycles ----------

/// The manager's live engine must carry exactly the weights a fresh
/// engine built from the current residual network would: reserved and
/// failed slots +inf, free slots at their base cost.
void expect_engine_matches_rebuilt(const SessionManager& manager,
                                   const char* where) {
  const RouteEngine* live = manager.engine();
  ASSERT_NE(live, nullptr) << where;
  RouteEngine rebuilt(manager.residual());
  const WdmNetwork& net = manager.residual();
  for (std::uint32_t e = 0; e < net.num_links(); ++e) {
    for (std::uint32_t l = 0; l < net.num_wavelengths(); ++l) {
      EXPECT_EQ(live->weight(LinkId{e}, Wavelength{l}),
                rebuilt.weight(LinkId{e}, Wavelength{l}))
          << where << ": link " << e << " lambda " << l;
    }
  }
}

class EnginePolicyFailureTest
    : public ::testing::TestWithParam<RoutingPolicy> {};

INSTANTIATE_TEST_SUITE_P(EnginePolicies, EnginePolicyFailureTest,
                         ::testing::Values(RoutingPolicy::kSemilightpathEngine,
                                           RoutingPolicy::kLightpathEngine),
                         [](const auto& info) {
                           return info.param ==
                                          RoutingPolicy::kSemilightpathEngine
                                      ? "SemilightpathEngine"
                                      : "LightpathEngine";
                         });

TEST_P(EnginePolicyFailureTest, WeightsMatchRebuiltOracleThroughCycle) {
  auto manager = ring_manager(GetParam());
  expect_engine_matches_rebuilt(manager, "pristine");

  const auto a = manager.open(NodeId{0}, NodeId{2});
  const auto b = manager.open(NodeId{3}, NodeId{5});
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  expect_engine_matches_rebuilt(manager, "after opens");

  const auto report = manager.fail_span(NodeId{1}, NodeId{2});
  EXPECT_EQ(report.links_failed, 2u);
  EXPECT_EQ(report.affected, 1u);
  EXPECT_EQ(report.rerouted, 1u);
  EXPECT_TRUE(manager.find(*a)->active);
  EXPECT_EQ(manager.find(*a)->path.length(), 4u);  // the long way round
  expect_engine_matches_rebuilt(manager, "after fail+reroute");

  manager.repair_span(NodeId{1}, NodeId{2});
  expect_engine_matches_rebuilt(manager, "after repair");

  // The repaired span is routable again at the pre-cut optimum.
  const auto c = manager.open(NodeId{1}, NodeId{2});
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(manager.find(*c)->path.length(), 1u);
  expect_engine_matches_rebuilt(manager, "after reopen");

  EXPECT_TRUE(manager.close(*a));
  EXPECT_TRUE(manager.close(*b));
  EXPECT_TRUE(manager.close(*c));
  expect_engine_matches_rebuilt(manager, "after closes");
  EXPECT_DOUBLE_EQ(manager.wavelength_utilization(), 0.0);
}

TEST_P(EnginePolicyFailureTest, DropOnLineMatchesRebuiltOracle) {
  Rng rng(21);
  const Topology topo = line_topology(4);
  const Availability avail = full_availability(topo, 2, CostSpec::unit(), rng);
  SessionManager manager(
      assemble_network(topo, 2, avail, std::make_shared<NoConversion>()),
      GetParam());
  const auto id = manager.open(NodeId{0}, NodeId{3});
  ASSERT_TRUE(id.has_value());
  const auto report = manager.fail_span(NodeId{1}, NodeId{2});
  EXPECT_EQ(report.dropped, 1u);
  EXPECT_FALSE(manager.find(*id)->active);
  expect_engine_matches_rebuilt(manager, "after drop");
  // Healthy-half resources of the dropped session are back in the pool.
  EXPECT_DOUBLE_EQ(manager.wavelength_utilization(), 0.0);
  manager.repair_span(NodeId{1}, NodeId{2});
  expect_engine_matches_rebuilt(manager, "after repair");
  EXPECT_TRUE(manager.open(NodeId{0}, NodeId{3}).has_value());
}

TEST_P(EnginePolicyFailureTest, MatchesNonEngineTwinThroughCycle) {
  // The engine policy must make the same accept/reroute/drop decisions at
  // the same costs as its per-request twin on an identical op sequence.
  const RoutingPolicy twin_policy =
      GetParam() == RoutingPolicy::kSemilightpathEngine
          ? RoutingPolicy::kSemilightpath
          : RoutingPolicy::kLightpathBestCost;
  auto engine_manager = ring_manager(GetParam());
  auto twin_manager = ring_manager(twin_policy);

  // Every pair below has a unique shortest route around the ring, so the
  // twins cannot legitimately diverge by tie-breaking.
  const std::pair<std::uint32_t, std::uint32_t> opens[] = {
      {0, 2}, {3, 5}, {1, 5}, {2, 4}};
  std::vector<std::optional<SessionId>> engine_ids, twin_ids;
  for (const auto& [s, t] : opens) {
    engine_ids.push_back(engine_manager.open(NodeId{s}, NodeId{t}));
    twin_ids.push_back(twin_manager.open(NodeId{s}, NodeId{t}));
    ASSERT_EQ(engine_ids.back().has_value(), twin_ids.back().has_value())
        << s << "->" << t;
    if (engine_ids.back().has_value()) {
      EXPECT_NEAR(engine_manager.find(*engine_ids.back())->cost,
                  twin_manager.find(*twin_ids.back())->cost, 1e-9)
          << s << "->" << t;
    }
  }

  const auto engine_report = engine_manager.fail_span(NodeId{1}, NodeId{2});
  const auto twin_report = twin_manager.fail_span(NodeId{1}, NodeId{2});
  EXPECT_EQ(engine_report.affected, twin_report.affected);
  EXPECT_EQ(engine_report.rerouted, twin_report.rerouted);
  EXPECT_EQ(engine_report.dropped, twin_report.dropped);

  engine_manager.repair_span(NodeId{1}, NodeId{2});
  twin_manager.repair_span(NodeId{1}, NodeId{2});
  EXPECT_EQ(engine_manager.active_sessions(), twin_manager.active_sessions());
  EXPECT_NEAR(engine_manager.wavelength_utilization(),
              twin_manager.wavelength_utilization(), 1e-12);
  expect_engine_matches_rebuilt(engine_manager, "after twin cycle");
}

// --- FaultPlan span-timeline replay --------------------------------------

TEST(FaultTimelineTest, SpanTimelineReplayDrivesFailAndRepair) {
  // Simulator-level span-down windows replayed through apply_span_state
  // exercise the exact fail/repair + engine weight-sync path.
  FaultPlan plan(11);
  plan.span_down(NodeId{1}, NodeId{2}, 1.0, 3.0)
      .span_down(NodeId{4}, NodeId{5}, 4.0, 5.0);
  const auto timeline = plan.span_timeline();
  ASSERT_EQ(timeline.size(), 4u);
  // Sorted by time: down@1, up@3, down@4, up@5.
  EXPECT_TRUE(timeline[0].down);
  EXPECT_FALSE(timeline[1].down);
  EXPECT_TRUE(timeline[2].down);
  EXPECT_FALSE(timeline[3].down);
  EXPECT_LE(timeline[0].time, timeline[1].time);

  auto manager = ring_manager(RoutingPolicy::kSemilightpathEngine);
  const auto id = manager.open(NodeId{0}, NodeId{2});
  ASSERT_TRUE(id.has_value());
  ASSERT_EQ(manager.find(*id)->path.length(), 2u);

  std::uint32_t reroutes = 0;
  for (const SpanEvent& event : timeline) {
    const auto report =
        manager.apply_span_state(event.a, event.b, event.down);
    reroutes += report.rerouted;
    expect_engine_matches_rebuilt(manager, "after span event");
  }
  // Cutting 1-2 forced the session the long way; after that span healed,
  // cutting 4-5 forced it back onto the (repaired) short route — the
  // session survives because the windows never overlap.
  EXPECT_EQ(reroutes, 2u);
  EXPECT_TRUE(manager.find(*id)->active);
  // All spans healed: full capacity is back.
  for (std::uint32_t e = 0; e < manager.residual().num_links(); ++e)
    EXPECT_FALSE(manager.is_failed(LinkId{e}));
  EXPECT_TRUE(manager.open(NodeId{1}, NodeId{2}).has_value());
}

}  // namespace
}  // namespace lumen
