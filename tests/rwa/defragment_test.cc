#include "rwa/defragment.h"

#include <gtest/gtest.h>

#include <memory>

#include "rwa/dynamic_workload.h"
#include "tests/test_util.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"
#include "wdm/metrics.h"

namespace lumen {
namespace {

SessionManager grid_manager(std::uint32_t k) {
  Rng rng(61);
  const Topology topo = grid_topology(4, 4);
  const Availability avail = full_availability(topo, k, CostSpec::unit(), rng);
  return SessionManager(
      assemble_network(topo, k, avail,
                       std::make_shared<UniformConversion>(0.1)),
      RoutingPolicy::kSemilightpath);
}

TEST(DefragmentTest, NoSessionsNothingToDo) {
  auto manager = grid_manager(4);
  const auto report = defragment(manager);
  EXPECT_EQ(report.considered, 0u);
  EXPECT_EQ(report.improved, 0u);
  EXPECT_DOUBLE_EQ(report.cost_saved, 0.0);
}

TEST(DefragmentTest, FreshOptimalSessionsDontMove) {
  auto manager = grid_manager(4);
  (void)manager.open(NodeId{0}, NodeId{15});
  (void)manager.open(NodeId{3}, NodeId{12});
  const auto report = defragment(manager);
  EXPECT_EQ(report.considered, 2u);
  EXPECT_EQ(report.improved, 0u);  // provisioned optimally moments ago
  EXPECT_EQ(manager.active_sessions(), 2u);
}

TEST(DefragmentTest, ReleasedCapacityGetsReclaimed) {
  // Fill a corridor, force a detour, then free the corridor: defrag must
  // move the detoured session back and save its extra cost.
  Rng rng(62);
  const Topology topo = ring_topology(8);
  const Availability avail = full_availability(topo, 1, CostSpec::unit(), rng);
  SessionManager manager(
      assemble_network(topo, 1, avail, std::make_shared<NoConversion>()),
      RoutingPolicy::kSemilightpath);

  // Blocker takes the short way 0->2 (2 hops on the single wavelength).
  const auto blocker = manager.open(NodeId{0}, NodeId{2});
  ASSERT_TRUE(blocker.has_value());
  ASSERT_EQ(manager.find(*blocker)->path.length(), 2u);
  // Victim 0->2 must go the long way (6 hops).
  const auto victim = manager.open(NodeId{0}, NodeId{2});
  ASSERT_TRUE(victim.has_value());
  ASSERT_EQ(manager.find(*victim)->path.length(), 6u);

  ASSERT_TRUE(manager.close(*blocker));
  const auto report = defragment(manager);
  EXPECT_EQ(report.improved, 1u);
  EXPECT_NEAR(report.cost_saved, 4.0, 1e-9);
  EXPECT_EQ(manager.find(*victim)->path.length(), 2u);
  EXPECT_TRUE(manager.find(*victim)->active);
}

TEST(DefragmentTest, NeverDropsAndNeverWorsens) {
  auto manager = grid_manager(3);
  // Load the network dynamically, leaving survivors on stale routes.
  DynamicWorkloadConfig config;
  config.arrival_rate = 20.0;
  config.mean_holding_time = 1.0;
  config.num_arrivals = 150;
  config.seed = 63;
  (void)run_dynamic_workload(manager, config);
  // Re-open a few long-lived sessions to defragment.
  Rng rng(64);
  std::vector<std::pair<SessionId, double>> before;
  for (const auto& [s, t] : random_demands(16, 12, rng)) {
    const auto id = manager.open(s, t);
    if (id.has_value()) before.emplace_back(*id, manager.find(*id)->cost);
  }
  const std::uint64_t active_before = manager.active_sessions();
  const auto report = defragment(manager);
  EXPECT_EQ(manager.active_sessions(), active_before);
  EXPECT_EQ(report.considered, active_before);
  for (const auto& [id, old_cost] : before) {
    const SessionRecord* record = manager.find(id);
    ASSERT_NE(record, nullptr);
    EXPECT_TRUE(record->active);
    EXPECT_LE(record->cost, old_cost + 1e-9);
  }
}

TEST(DefragmentTest, ImprovesContinuityAlignmentMetricOrLeavesItBe) {
  // Sanity link to wdm/metrics: a defrag pass never reduces free capacity
  // and is measured by the same residual network the metrics read.
  auto manager = grid_manager(3);
  DynamicWorkloadConfig config;
  config.arrival_rate = 25.0;
  config.mean_holding_time = 1.0;
  config.num_arrivals = 120;
  config.seed = 65;
  (void)run_dynamic_workload(manager, config);
  Rng rng(66);
  for (const auto& [s, t] : random_demands(16, 10, rng)) (void)manager.open(s, t);

  const NetworkMetrics before = compute_metrics(manager.residual());
  (void)defragment(manager);
  const NetworkMetrics after = compute_metrics(manager.residual());
  // Moving sessions to cheaper (shorter) routes can only free pairs.
  EXPECT_GE(after.free_pairs, before.free_pairs);
}

}  // namespace
}  // namespace lumen
