#include "rwa/dynamic_workload.h"

#include <gtest/gtest.h>

#include <memory>

#include "tests/test_util.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"

namespace lumen {
namespace {

SessionManager make_manager(RoutingPolicy policy, std::uint32_t k = 6) {
  Rng rng(5);
  const Topology topo = nsfnet_topology();
  const Availability avail =
      full_availability(topo, k, CostSpec::unit(), rng);
  return SessionManager(
      assemble_network(topo, k, avail,
                       std::make_shared<UniformConversion>(0.25)),
      policy);
}

TEST(DynamicWorkloadTest, OffersExactlyConfiguredArrivals) {
  auto manager = make_manager(RoutingPolicy::kSemilightpath);
  DynamicWorkloadConfig config;
  config.arrival_rate = 5.0;
  config.mean_holding_time = 1.0;
  config.num_arrivals = 200;
  config.seed = 1;
  const auto result = run_dynamic_workload(manager, config);
  EXPECT_EQ(result.stats.offered, 200u);
  EXPECT_EQ(result.stats.carried + result.stats.blocked, 200u);
  // The driver drains everything at the end.
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_DOUBLE_EQ(manager.wavelength_utilization(), 0.0);
  EXPECT_GT(result.horizon, 0.0);
}

TEST(DynamicWorkloadTest, Deterministic) {
  auto a = make_manager(RoutingPolicy::kSemilightpath);
  auto b = make_manager(RoutingPolicy::kSemilightpath);
  DynamicWorkloadConfig config;
  config.arrival_rate = 10.0;
  config.num_arrivals = 300;
  config.seed = 42;
  const auto ra = run_dynamic_workload(a, config);
  const auto rb = run_dynamic_workload(b, config);
  EXPECT_EQ(ra.stats.carried, rb.stats.carried);
  EXPECT_EQ(ra.stats.blocked, rb.stats.blocked);
  EXPECT_DOUBLE_EQ(ra.mean_utilization, rb.mean_utilization);
}

TEST(DynamicWorkloadTest, LightLoadCarriesEverything) {
  auto manager = make_manager(RoutingPolicy::kSemilightpath);
  DynamicWorkloadConfig config;
  config.arrival_rate = 0.2;  // 0.2 Erlang on 6 wavelengths: trivial
  config.mean_holding_time = 1.0;
  config.num_arrivals = 150;
  config.seed = 3;
  const auto result = run_dynamic_workload(manager, config);
  EXPECT_EQ(result.stats.blocked, 0u);
  EXPECT_LT(result.mean_active_sessions, 2.0);
}

TEST(DynamicWorkloadTest, BlockingGrowsWithLoad) {
  double prev_blocking = -1.0;
  for (const double load : {5.0, 40.0, 160.0}) {
    auto manager = make_manager(RoutingPolicy::kSemilightpath);
    DynamicWorkloadConfig config;
    config.arrival_rate = load;
    config.mean_holding_time = 1.0;
    config.num_arrivals = 400;
    config.seed = 9;
    const auto result = run_dynamic_workload(manager, config);
    EXPECT_GE(result.stats.blocking_rate(), prev_blocking);
    prev_blocking = result.stats.blocking_rate();
  }
  EXPECT_GT(prev_blocking, 0.05);  // 160 Erlang must block noticeably
}

TEST(DynamicWorkloadTest, SemilightpathBlocksNoMoreThanLightpath) {
  for (const double load : {30.0, 60.0}) {
    DynamicWorkloadConfig config;
    config.arrival_rate = load;
    config.mean_holding_time = 1.0;
    config.num_arrivals = 400;
    config.seed = 13;
    auto light = make_manager(RoutingPolicy::kLightpathBestCost);
    auto semi = make_manager(RoutingPolicy::kSemilightpath);
    const auto rl = run_dynamic_workload(light, config);
    const auto rs = run_dynamic_workload(semi, config);
    // Same arrival/holding sequence (same seed): conversion can only help
    // per request, and in aggregate should not do worse materially.
    EXPECT_LE(rs.stats.blocking_rate(), rl.stats.blocking_rate() + 0.02)
        << "load " << load;
  }
}

TEST(DynamicWorkloadTest, UtilizationTracksLoad) {
  DynamicWorkloadConfig light_config;
  light_config.arrival_rate = 2.0;
  light_config.num_arrivals = 300;
  light_config.seed = 21;
  auto manager_light = make_manager(RoutingPolicy::kSemilightpath);
  const auto light = run_dynamic_workload(manager_light, light_config);

  DynamicWorkloadConfig heavy_config = light_config;
  heavy_config.arrival_rate = 30.0;
  auto manager_heavy = make_manager(RoutingPolicy::kSemilightpath);
  const auto heavy = run_dynamic_workload(manager_heavy, heavy_config);

  EXPECT_GT(heavy.mean_utilization, light.mean_utilization);
  EXPECT_GT(heavy.mean_active_sessions, light.mean_active_sessions);
}

TEST(DynamicWorkloadTest, Preconditions) {
  auto manager = make_manager(RoutingPolicy::kSemilightpath);
  DynamicWorkloadConfig config;
  config.arrival_rate = 0.0;
  EXPECT_THROW((void)run_dynamic_workload(manager, config), Error);
  config.arrival_rate = 1.0;
  config.mean_holding_time = 0.0;
  EXPECT_THROW((void)run_dynamic_workload(manager, config), Error);
}

}  // namespace
}  // namespace lumen
