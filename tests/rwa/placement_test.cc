#include "rwa/placement.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/liang_shen.h"
#include "tests/test_util.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"

namespace lumen {
namespace {

/// Star network: center node 0, leaves 1..5; every leaf-to-leaf route
/// transits the center.
WdmNetwork star_network() {
  WdmNetwork net(6, 2, std::make_shared<NoConversion>());
  for (std::uint32_t leaf = 1; leaf < 6; ++leaf) {
    // Wavelengths chosen so leaf-to-leaf needs conversion at the center:
    // into the center on λ0, out of it on λ1.
    const LinkId in = net.add_link(NodeId{leaf}, NodeId{0});
    net.set_wavelength(in, Wavelength{0}, 1.0);
    const LinkId out = net.add_link(NodeId{0}, NodeId{leaf});
    net.set_wavelength(out, Wavelength{1}, 1.0);
  }
  return net;
}

TEST(PlacementTest, StarCenterRankedFirst) {
  const auto net = star_network();
  for (const auto strategy :
       {PlacementStrategy::kBetweenness, PlacementStrategy::kDegree}) {
    const auto ranked = rank_converter_sites(net, strategy);
    ASSERT_EQ(ranked.size(), 6u);
    EXPECT_EQ(ranked.front(), NodeId{0});
  }
}

TEST(PlacementTest, OneConverterAtTheCenterUnblocksTheStar) {
  auto base = star_network();
  // Without converters leaf-to-leaf is infeasible (λ0 in, λ1 out).
  EXPECT_FALSE(route_semilightpath(base, NodeId{1}, NodeId{2}).found);

  const auto conv = place_converters(
      base, /*budget=*/1, std::make_shared<UniformConversion>(0.5));
  WdmNetwork upgraded(6, 2, conv);
  for (std::uint32_t leaf = 1; leaf < 6; ++leaf) {
    const LinkId in = upgraded.add_link(NodeId{leaf}, NodeId{0});
    upgraded.set_wavelength(in, Wavelength{0}, 1.0);
    const LinkId out = upgraded.add_link(NodeId{0}, NodeId{leaf});
    upgraded.set_wavelength(out, Wavelength{1}, 1.0);
  }
  const auto r = route_semilightpath(upgraded, NodeId{1}, NodeId{2});
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.cost, 2.5);
  ASSERT_EQ(r.switches.size(), 1u);
  EXPECT_EQ(r.switches[0].node, NodeId{0});
}

TEST(PlacementTest, RankingIsDeterministicAndComplete) {
  Rng rng(81);
  const Topology topo = waxman_topology(30, 0.4, 0.2, rng);
  const Availability avail =
      full_availability(topo, 4, CostSpec::unit(), rng);
  const auto net =
      assemble_network(topo, 4, avail, std::make_shared<NoConversion>());
  const auto a = rank_converter_sites(net, PlacementStrategy::kBetweenness);
  const auto b = rank_converter_sites(net, PlacementStrategy::kBetweenness);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 30u);
  std::vector<char> seen(30, 0);
  for (const NodeId v : a) {
    EXPECT_FALSE(seen[v.value()]);
    seen[v.value()] = 1;
  }
}

TEST(PlacementTest, BudgetClampsToNetworkSize) {
  const auto net = star_network();
  const auto all = place_converters(
      net, /*budget=*/100, std::make_shared<UniformConversion>(0.1));
  // Everywhere a converter: behaves like the inner model off-diagonal.
  for (std::uint32_t v = 0; v < 6; ++v) {
    EXPECT_DOUBLE_EQ(all->cost(NodeId{v}, Wavelength{0}, Wavelength{1}), 0.1);
  }
  const auto none = place_converters(
      net, /*budget=*/0, std::make_shared<UniformConversion>(0.1));
  for (std::uint32_t v = 0; v < 6; ++v) {
    EXPECT_FALSE(none->allowed(NodeId{v}, Wavelength{0}, Wavelength{1}));
  }
}

TEST(PlacementTest, NullInnerRejected) {
  const auto net = star_network();
  EXPECT_THROW((void)place_converters(net, 1, nullptr), Error);
}

TEST(PlacementTest, BetweennessBeatsRandomOnTransitTopology) {
  // Dumbbell: two cliques joined by a bridge path.  Bridge nodes carry
  // all inter-clique traffic; betweenness targets them, a bad placement
  // (leaf nodes) does not.
  Rng rng(82);
  const Topology topo = hierarchical_topology(4, 4, 0, rng);
  const Availability avail =
      uniform_availability(topo, 6, 2, 3, CostSpec::unit(), rng);
  const auto probe =
      assemble_network(topo, 6, avail, std::make_shared<NoConversion>());
  const auto ranked =
      rank_converter_sites(probe, PlacementStrategy::kBetweenness);
  // The four backbone hubs (ids 0..3) must dominate the ranking: check
  // at least 3 of the top 4 are hubs.
  std::uint32_t hubs_in_top4 = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (ranked[i].value() < 4) ++hubs_in_top4;
  }
  EXPECT_GE(hubs_in_top4, 3u);
}

}  // namespace
}  // namespace lumen
