#include "rwa/wavelength_assignment.h"

#include <gtest/gtest.h>

#include "topo/topologies.h"
#include "util/rng.h"

namespace lumen {
namespace {

RoutedPath path_of(std::initializer_list<std::uint32_t> link_ids) {
  RoutedPath p;
  for (const std::uint32_t e : link_ids) p.links.push_back(LinkId{e});
  return p;
}

TEST(ConflictGraphTest, SharedLinkMeansEdge) {
  const std::vector<RoutedPath> paths = {
      path_of({0, 1}), path_of({1, 2}), path_of({3})};
  const auto conflicts = build_conflict_graph(paths);
  ASSERT_EQ(conflicts.size(), 3u);
  EXPECT_EQ(conflicts[0], (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(conflicts[1], (std::vector<std::uint32_t>{0}));
  EXPECT_TRUE(conflicts[2].empty());
}

TEST(ConflictGraphTest, EmptyAndSingleton) {
  EXPECT_TRUE(build_conflict_graph({}).empty());
  const auto single = build_conflict_graph({path_of({0, 1, 2})});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_TRUE(single[0].empty());
}

TEST(AssignmentTest, DisjointPathsShareOneWavelength) {
  const std::vector<RoutedPath> paths = {
      path_of({0}), path_of({1}), path_of({2})};
  for (const auto h :
       {AssignmentHeuristic::kFirstFit, AssignmentHeuristic::kDsatur}) {
    const auto result = assign_wavelengths(paths, h);
    EXPECT_EQ(result.wavelengths_used, 1u);
    EXPECT_TRUE(assignment_is_valid(paths, result.wavelength));
  }
}

TEST(AssignmentTest, FullyConflictingNeedOnePerPath) {
  // All paths cross link 7.
  const std::vector<RoutedPath> paths = {
      path_of({7}), path_of({7, 1}), path_of({2, 7}), path_of({7, 3})};
  for (const auto h :
       {AssignmentHeuristic::kFirstFit, AssignmentHeuristic::kDsatur}) {
    const auto result = assign_wavelengths(paths, h);
    EXPECT_EQ(result.wavelengths_used, 4u);
    EXPECT_TRUE(assignment_is_valid(paths, result.wavelength));
  }
  EXPECT_EQ(congestion_lower_bound(paths), 4u);
}

TEST(AssignmentTest, ValidityPredicateDetectsClashes) {
  const std::vector<RoutedPath> paths = {path_of({0, 1}), path_of({1, 2})};
  EXPECT_FALSE(
      assignment_is_valid(paths, {Wavelength{0}, Wavelength{0}}));
  EXPECT_TRUE(assignment_is_valid(paths, {Wavelength{0}, Wavelength{1}}));
  EXPECT_THROW((void)assignment_is_valid(paths, {Wavelength{0}}), Error);
}

TEST(AssignmentTest, CongestionBoundsOptimum) {
  // Random path sets on a ring: congestion <= used; DSATUR <= first-fit
  // is not guaranteed in general, but both must be >= the bound.
  Rng rng(31);
  const Topology topo = ring_topology(10);
  const Digraph g = topo.to_digraph();
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<RoutedPath> paths;
    const auto count = 4 + rng.next_below(12);
    for (std::uint64_t i = 0; i < count; ++i) {
      // A random clockwise arc: consecutive even link ids on the ring.
      const auto start = static_cast<std::uint32_t>(rng.next_below(10));
      const auto length =
          1 + static_cast<std::uint32_t>(rng.next_below(6));
      RoutedPath p;
      NodeId at{start};
      for (std::uint32_t hop = 0; hop < length; ++hop) {
        // Find the clockwise link at -> at+1.
        for (const LinkId e : g.out_links(at)) {
          if (g.head(e) == NodeId{(at.value() + 1) % 10}) {
            p.links.push_back(e);
            break;
          }
        }
        at = NodeId{(at.value() + 1) % 10};
      }
      paths.push_back(std::move(p));
    }
    const auto bound = congestion_lower_bound(paths);
    for (const auto h :
         {AssignmentHeuristic::kFirstFit, AssignmentHeuristic::kDsatur}) {
      const auto result = assign_wavelengths(paths, h);
      EXPECT_TRUE(assignment_is_valid(paths, result.wavelength));
      EXPECT_GE(result.wavelengths_used, bound);
      // Greedy coloring never exceeds max-degree+1 of the conflict graph.
      const auto conflicts = build_conflict_graph(paths);
      std::size_t max_degree = 0;
      for (const auto& adj : conflicts)
        max_degree = std::max(max_degree, adj.size());
      EXPECT_LE(result.wavelengths_used, max_degree + 1);
    }
  }
}

TEST(AssignmentTest, IntervalPathsFirstFitInOrderIsOptimal) {
  // Paths on a line are intervals; interval graphs are perfect (chromatic
  // number = clique number = link congestion), and first-fit coloring in
  // left-endpoint order is exactly optimal on them.
  Rng rng(32);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<RoutedPath> paths;
    const auto count = 5 + rng.next_below(15);
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto start = static_cast<std::uint32_t>(rng.next_below(12));
      const auto end =
          start + 1 + static_cast<std::uint32_t>(rng.next_below(12 - start));
      RoutedPath p;
      for (std::uint32_t e = start; e < end; ++e) p.links.push_back(LinkId{e});
      paths.push_back(std::move(p));
    }
    std::sort(paths.begin(), paths.end(),
              [](const RoutedPath& a, const RoutedPath& b) {
                return a.links.front() < b.links.front();
              });
    const auto result =
        assign_wavelengths(paths, AssignmentHeuristic::kFirstFit);
    EXPECT_TRUE(assignment_is_valid(paths, result.wavelength));
    EXPECT_EQ(result.wavelengths_used, congestion_lower_bound(paths))
        << "trial " << trial;
    // DSATUR stays valid and within the greedy ceiling too.
    const auto dsatur = assign_wavelengths(paths, AssignmentHeuristic::kDsatur);
    EXPECT_TRUE(assignment_is_valid(paths, dsatur.wavelength));
    EXPECT_GE(dsatur.wavelengths_used, congestion_lower_bound(paths));
  }
}

TEST(AssignmentTest, EmptyInput) {
  const auto result = assign_wavelengths({});
  EXPECT_TRUE(result.wavelength.empty());
  EXPECT_EQ(result.wavelengths_used, 0u);
  EXPECT_EQ(congestion_lower_bound({}), 0u);
}

}  // namespace
}  // namespace lumen
