#include "rwa/batch.h"

#include <gtest/gtest.h>

#include <memory>

#include "tests/test_util.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"

namespace lumen {
namespace {

SessionManager nsfnet_manager(std::uint32_t k, RoutingPolicy policy) {
  Rng rng(41);
  const Topology topo = nsfnet_topology();
  const Availability avail = full_availability(topo, k, CostSpec::unit(), rng);
  return SessionManager(
      assemble_network(topo, k, avail,
                       std::make_shared<UniformConversion>(0.1)),
      policy);
}

TEST(BatchTest, GivenOrderCarriesInOrder) {
  auto manager = nsfnet_manager(4, RoutingPolicy::kSemilightpath);
  const std::vector<std::pair<NodeId, NodeId>> demands = {
      {NodeId{0}, NodeId{13}}, {NodeId{1}, NodeId{12}},
      {NodeId{2}, NodeId{11}}};
  const auto result = provision_batch(manager, demands, DemandOrder::kGiven);
  EXPECT_EQ(result.carried, 3u);
  EXPECT_EQ(result.blocked, 0u);
  EXPECT_EQ(result.sessions.size(), 3u);
  EXPECT_GT(result.total_cost, 0.0);
  EXPECT_EQ(manager.active_sessions(), 3u);
}

TEST(BatchTest, AccountingMatchesManagerStats) {
  auto manager = nsfnet_manager(2, RoutingPolicy::kLightpathBestCost);
  Rng rng(42);
  const auto demands = random_demands(14, 60, rng);
  const auto result = provision_batch(manager, demands, DemandOrder::kGiven);
  EXPECT_EQ(result.carried + result.blocked, 60u);
  EXPECT_EQ(manager.stats().carried, result.carried);
  EXPECT_EQ(manager.stats().blocked, result.blocked);
}

TEST(BatchTest, OrderingsAreValidPermutations) {
  // Whatever the ordering, the same demand multiset is offered.
  Rng demand_rng(43);
  const auto demands = random_demands(14, 30, demand_rng);
  for (const auto order :
       {DemandOrder::kGiven, DemandOrder::kShortestFirst,
        DemandOrder::kLongestFirst, DemandOrder::kRandom,
        DemandOrder::kCheapestFirst, DemandOrder::kCostliestFirst}) {
    auto manager = nsfnet_manager(8, RoutingPolicy::kSemilightpath);
    Rng shuffle_rng(7);
    const auto result = provision_batch(manager, demands, order, &shuffle_rng);
    EXPECT_EQ(result.carried + result.blocked, 30u);
    // Light enough load: everything fits regardless of order.
    EXPECT_EQ(result.blocked, 0u);
  }
}

TEST(BatchTest, RandomNeedsRng) {
  auto manager = nsfnet_manager(2, RoutingPolicy::kSemilightpath);
  const std::vector<std::pair<NodeId, NodeId>> demands = {
      {NodeId{0}, NodeId{1}}};
  EXPECT_THROW(
      (void)provision_batch(manager, demands, DemandOrder::kRandom, nullptr),
      Error);
}

TEST(BatchTest, CostOrderingsOfferCheapestOrCostliestFirst) {
  // The cost-based orders rank by optimal semilightpath cost on the
  // pre-batch state (engine-batched), so with a fresh manager the carried
  // costs of an uncontended prefix must come out sorted.
  const std::vector<std::pair<NodeId, NodeId>> demands = {
      {NodeId{0}, NodeId{13}}, {NodeId{0}, NodeId{1}}, {NodeId{2}, NodeId{9}},
      {NodeId{5}, NodeId{6}},  {NodeId{3}, NodeId{12}}};

  auto cheap = nsfnet_manager(8, RoutingPolicy::kSemilightpath);
  const auto cheap_result =
      provision_batch(cheap, demands, DemandOrder::kCheapestFirst,
                      /*rng=*/nullptr, /*route_threads=*/2);
  ASSERT_EQ(cheap_result.carried, demands.size());
  for (std::size_t i = 1; i < cheap_result.sessions.size(); ++i) {
    EXPECT_LE(cheap.find(cheap_result.sessions[i - 1])->cost,
              cheap.find(cheap_result.sessions[i])->cost + 1e-9);
  }

  auto costly = nsfnet_manager(8, RoutingPolicy::kSemilightpath);
  const auto costly_result =
      provision_batch(costly, demands, DemandOrder::kCostliestFirst);
  ASSERT_EQ(costly_result.carried, demands.size());
  for (std::size_t i = 1; i < costly_result.sessions.size(); ++i) {
    EXPECT_GE(costly.find(costly_result.sessions[i - 1])->cost,
              costly.find(costly_result.sessions[i])->cost - 1e-9);
  }
}

TEST(BatchTest, EnginePolicyCarriesTheBatchLikeThePlainPolicy) {
  // Continuous random costs keep optimal routes unique (ties are
  // measure-zero), so both policies must make identical decisions; with
  // unit costs they could legitimately pick different equal-cost routes
  // and the residual states would diverge.
  const auto make_manager = [](RoutingPolicy policy) {
    Rng rng(41);
    const Topology topo = nsfnet_topology();
    const Availability avail =
        full_availability(topo, 4, CostSpec::uniform(1.0, 2.0), rng);
    return SessionManager(
        assemble_network(topo, 4, avail,
                         std::make_shared<UniformConversion>(0.1)),
        policy);
  };
  Rng demand_rng(45);
  const auto demands = random_demands(14, 40, demand_rng);
  auto plain = make_manager(RoutingPolicy::kSemilightpath);
  auto engine = make_manager(RoutingPolicy::kSemilightpathEngine);
  const auto plain_result =
      provision_batch(plain, demands, DemandOrder::kGiven);
  const auto engine_result =
      provision_batch(engine, demands, DemandOrder::kGiven);
  EXPECT_EQ(plain_result.carried, engine_result.carried);
  EXPECT_EQ(plain_result.blocked, engine_result.blocked);
  EXPECT_NEAR(plain_result.total_cost, engine_result.total_cost, 1e-6);
}

TEST(BatchTest, OrderingChangesOutcomeUnderPressure) {
  // Under heavy load, ordering matters; we don't assert which wins, only
  // that all orderings produce internally consistent results and that the
  // study is non-degenerate (some blocking occurs).
  Rng demand_rng(44);
  const auto demands = random_demands(14, 120, demand_rng);
  std::uint32_t min_carried = ~0u, max_carried = 0;
  for (const auto order : {DemandOrder::kGiven, DemandOrder::kShortestFirst,
                           DemandOrder::kLongestFirst}) {
    auto manager = nsfnet_manager(3, RoutingPolicy::kSemilightpath);
    const auto result = provision_batch(manager, demands, order);
    EXPECT_GT(result.blocked, 0u);
    min_carried = std::min(min_carried, result.carried);
    max_carried = std::max(max_carried, result.carried);
  }
  EXPECT_GT(min_carried, 0u);
  EXPECT_GE(max_carried, min_carried);
}

}  // namespace
}  // namespace lumen
