// Pins SessionManager's single-thread semantics ahead of the sharded
// service refactor: span-state replay must be idempotent (a repeated
// transition is a counted no-op with NO per-session scan or engine
// weight re-sync — witnessed by the lumen.rwa.span_noops counter), the
// occupancy gauges must total exactly against a hand count, the engine
// weight view must track the residual bit-for-bit through fail/repair
// churn, and the session table's public views must stay deterministic
// now that the table itself is a FlatMap with unspecified order.
#include "rwa/session_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/registry.h"
#include "tests/test_util.h"

namespace lumen {
namespace {

using lumen::testing::paper_example_network;

/// Engine/residual weight agreement over every base (link, λ) pair: a
/// base pair carries its residual cost when available, +inf otherwise.
void expect_engine_matches_residual(const SessionManager& manager,
                                    const WdmNetwork& base) {
  ASSERT_NE(manager.engine(), nullptr);
  const WdmNetwork& residual = manager.residual();
  for (std::uint32_t e = 0; e < base.num_links(); ++e) {
    for (const LinkWavelength& lw : base.available(LinkId{e})) {
      const double engine_weight =
          manager.engine()->weight(LinkId{e}, lw.lambda);
      if (residual.is_available(LinkId{e}, lw.lambda)) {
        EXPECT_DOUBLE_EQ(engine_weight,
                         residual.link_cost(LinkId{e}, lw.lambda))
            << "link " << e << " λ" << lw.lambda.value();
      } else {
        EXPECT_EQ(engine_weight, kInfiniteCost)
            << "link " << e << " λ" << lw.lambda.value();
      }
    }
  }
}

TEST(SessionManagerConcurrencyTest, SpanStateReplayNoopIsCountedEarlyOut) {
  const WdmNetwork base = paper_example_network();
  SessionManager manager(base, RoutingPolicy::kSemilightpathEngine);
  ASSERT_TRUE(manager.open(NodeId{0}, NodeId{6}).has_value());

  obs::Counter& noops =
      obs::Registry::global().counter("lumen.rwa.span_noops");
  const std::uint64_t before = noops.value();

  // First down does real work; the replayed down is a counted no-op.
  const auto first = manager.apply_span_state(NodeId{0}, NodeId{1}, true);
  EXPECT_GT(first.links_failed, 0u);
  const auto replayed = manager.apply_span_state(NodeId{0}, NodeId{1}, true);
  EXPECT_EQ(replayed.links_failed, 0u);
  EXPECT_EQ(replayed.affected, 0u);

  // Same for up: first repairs, the replay is a no-op.
  manager.apply_span_state(NodeId{0}, NodeId{1}, false);
  manager.apply_span_state(NodeId{0}, NodeId{1}, false);

#if LUMEN_OBS_ENABLED
  EXPECT_EQ(noops.value(), before + 2);
#else
  (void)before;
#endif
  expect_engine_matches_residual(manager, base);
}

TEST(SessionManagerConcurrencyTest, RepairOfHealthySpanDoesNoPerSessionWork) {
  const WdmNetwork base = paper_example_network();
  SessionManager manager(base, RoutingPolicy::kSemilightpathEngine);
  // Load the network so a spurious repair-resync would have plenty of
  // session state to corrupt.
  std::vector<SessionId> ids;
  for (int i = 0; i < 4; ++i) {
    const auto id = manager.open(NodeId{0}, NodeId{6});
    if (id.has_value()) ids.push_back(*id);
  }
  ASSERT_FALSE(ids.empty());

  // repair_span on a span that was never down returns 0 links repaired.
  EXPECT_EQ(manager.repair_span(NodeId{0}, NodeId{1}), 0u);
  expect_engine_matches_residual(manager, base);
  // Sessions are untouched.
  for (const SessionId id : ids) {
    const SessionRecord* record = manager.find(id);
    ASSERT_NE(record, nullptr);
    EXPECT_TRUE(record->active);
  }
}

TEST(SessionManagerConcurrencyTest, ReplayedTimelineConvergesToSameState) {
  // The same span driven through [down, down, up, up] and [down, up]
  // must land the residual, the engine view, and the accounting in the
  // same place (replay idempotence for fault-timeline consumers).
  const WdmNetwork base = paper_example_network();
  SessionManager stutter(base, RoutingPolicy::kSemilightpathEngine);
  SessionManager clean(base, RoutingPolicy::kSemilightpathEngine);
  ASSERT_TRUE(stutter.open(NodeId{0}, NodeId{6}).has_value());
  ASSERT_TRUE(clean.open(NodeId{0}, NodeId{6}).has_value());

  stutter.apply_span_state(NodeId{0}, NodeId{3}, true);
  stutter.apply_span_state(NodeId{0}, NodeId{3}, true);
  stutter.apply_span_state(NodeId{0}, NodeId{3}, false);
  stutter.apply_span_state(NodeId{0}, NodeId{3}, false);
  clean.apply_span_state(NodeId{0}, NodeId{3}, true);
  clean.apply_span_state(NodeId{0}, NodeId{3}, false);

  EXPECT_EQ(stutter.active_sessions(), clean.active_sessions());
  EXPECT_DOUBLE_EQ(stutter.wavelength_utilization(),
                   clean.wavelength_utilization());
  for (std::uint32_t e = 0; e < base.num_links(); ++e) {
    EXPECT_EQ(stutter.is_failed(LinkId{e}), clean.is_failed(LinkId{e}));
    for (const LinkWavelength& lw : base.available(LinkId{e})) {
      EXPECT_EQ(stutter.residual().is_available(LinkId{e}, lw.lambda),
                clean.residual().is_available(LinkId{e}, lw.lambda))
          << "link " << e << " λ" << lw.lambda.value();
    }
  }
  expect_engine_matches_residual(stutter, base);
  expect_engine_matches_residual(clean, base);
}

TEST(SessionManagerConcurrencyTest, UtilizationGaugesTotalExactly) {
  const WdmNetwork base = paper_example_network();
  SessionManager manager(base, RoutingPolicy::kSemilightpathEngine);
  const auto id = manager.open(NodeId{0}, NodeId{6});
  ASSERT_TRUE(id.has_value());
  manager.update_utilization_gauges();

#if LUMEN_OBS_ENABLED
  // Hand count: links carrying at least one reservation.
  std::uint64_t busy_links = 0;
  for (std::uint32_t e = 0; e < base.num_links(); ++e) {
    if (manager.residual().num_available(LinkId{e}) <
        base.num_available(LinkId{e})) {
      ++busy_links;
    }
  }
  EXPECT_EQ(busy_links, manager.find(*id)->path.length());
  const double spans_busy =
      obs::Registry::global().gauge("lumen.rwa.util.spans_busy").value();
  EXPECT_DOUBLE_EQ(spans_busy, static_cast<double>(busy_links));
#endif

  // The scalar utilization agrees with the reserved-pair count.
  const std::uint64_t reserved = manager.find(*id)->path.length();
  EXPECT_DOUBLE_EQ(manager.wavelength_utilization(),
                   static_cast<double>(reserved) /
                       static_cast<double>(base.total_link_wavelengths()));
}

TEST(SessionManagerConcurrencyTest, ActiveSessionIdsSortedThroughChurn) {
  const WdmNetwork base = paper_example_network();
  SessionManager manager(base, RoutingPolicy::kSemilightpathEngine);
  std::vector<SessionId> opened;
  for (int round = 0; round < 12; ++round) {
    const auto id =
        manager.open(NodeId{static_cast<std::uint32_t>(round) % 7},
                     NodeId{static_cast<std::uint32_t>(round + 3) % 7});
    if (id.has_value()) opened.push_back(*id);
    if (round % 3 == 2 && !opened.empty()) {
      manager.close(opened.front());
      opened.erase(opened.begin());
    }
  }
  const std::vector<SessionId> ids = manager.active_session_ids();
  ASSERT_EQ(ids.size(), opened.size());
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  std::vector<SessionId> expected = opened;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(ids, expected);
}

}  // namespace
}  // namespace lumen
