#include "topo/topologies.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/traversal.h"
#include "util/error.h"

namespace lumen {
namespace {

/// No duplicate directed links (simple digraph check).
bool is_simple(const Topology& topo) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const auto& [u, v] : topo.links) {
    if (u == v) return false;
    if (!seen.insert({u.value(), v.value()}).second) return false;
  }
  return true;
}

TEST(TopologyTest, LineShape) {
  const auto topo = line_topology(5);
  EXPECT_EQ(topo.num_nodes, 5u);
  EXPECT_EQ(topo.num_links(), 8u);  // 4 spans * 2 directions
  EXPECT_TRUE(is_strongly_connected(topo.to_digraph()));
  EXPECT_TRUE(is_simple(topo));
}

TEST(TopologyTest, RingShapes) {
  const auto bi = ring_topology(6, true);
  EXPECT_EQ(bi.num_links(), 12u);
  EXPECT_TRUE(is_strongly_connected(bi.to_digraph()));
  const auto uni = ring_topology(6, false);
  EXPECT_EQ(uni.num_links(), 6u);
  EXPECT_TRUE(is_strongly_connected(uni.to_digraph()));
}

TEST(TopologyTest, RingPreconditions) {
  EXPECT_THROW((void)ring_topology(1, true), Error);
  EXPECT_THROW((void)ring_topology(2, false), Error);
  EXPECT_NO_THROW((void)ring_topology(2, true));
}

TEST(TopologyTest, GridShape) {
  const auto topo = grid_topology(3, 4);
  EXPECT_EQ(topo.num_nodes, 12u);
  // Spans: 3*3 horizontal + 2*4 vertical = 17; *2 directions.
  EXPECT_EQ(topo.num_links(), 34u);
  EXPECT_EQ(topo.coords.size(), 12u);
  EXPECT_TRUE(is_strongly_connected(topo.to_digraph()));
  EXPECT_TRUE(is_simple(topo));
}

TEST(TopologyTest, GridDegeneratesToLine) {
  const auto topo = grid_topology(1, 4);
  EXPECT_EQ(topo.num_links(), 6u);
  EXPECT_TRUE(is_strongly_connected(topo.to_digraph()));
}

TEST(TopologyTest, TorusShape) {
  const auto topo = torus_topology(3, 3);
  EXPECT_EQ(topo.num_nodes, 9u);
  EXPECT_EQ(topo.num_links(), 36u);  // 2 spans per node * 2 directions
  EXPECT_TRUE(is_strongly_connected(topo.to_digraph()));
  // Every node has exactly in-degree 4 and out-degree 4.
  const auto g = topo.to_digraph();
  for (std::uint32_t v = 0; v < 9; ++v) {
    EXPECT_EQ(g.out_degree(NodeId{v}), 4u);
    EXPECT_EQ(g.in_degree(NodeId{v}), 4u);
  }
}

TEST(TopologyTest, NsfnetShape) {
  const auto topo = nsfnet_topology();
  EXPECT_EQ(topo.num_nodes, 14u);
  EXPECT_EQ(topo.num_links(), 42u);  // 21 spans
  EXPECT_EQ(topo.coords.size(), 14u);
  EXPECT_TRUE(is_strongly_connected(topo.to_digraph()));
  EXPECT_TRUE(is_simple(topo));
}

TEST(TopologyTest, ArpanetShape) {
  const auto topo = arpanet_topology();
  EXPECT_EQ(topo.num_nodes, 20u);
  EXPECT_EQ(topo.num_links(), 64u);  // 32 spans
  EXPECT_EQ(topo.coords.size(), 20u);
  EXPECT_TRUE(is_strongly_connected(topo.to_digraph()));
  EXPECT_TRUE(is_simple(topo));
  // Every node participates in at least two spans (survivable backbone).
  const auto g = topo.to_digraph();
  for (std::uint32_t v = 0; v < 20; ++v) {
    EXPECT_GE(g.out_degree(NodeId{v}), 2u) << v;
    EXPECT_EQ(g.out_degree(NodeId{v}), g.in_degree(NodeId{v})) << v;
  }
}

TEST(TopologyTest, RandomSparseShapeAndConnectivity) {
  Rng rng(3);
  const auto topo = random_sparse_topology(50, 100, rng);
  EXPECT_EQ(topo.num_nodes, 50u);
  EXPECT_EQ(topo.num_links(), 150u);  // cycle + extras
  EXPECT_TRUE(is_strongly_connected(topo.to_digraph()));
  EXPECT_TRUE(is_simple(topo));
}

TEST(TopologyTest, RandomSparseDeterministic) {
  Rng a(7), b(7);
  const auto ta = random_sparse_topology(30, 60, a);
  const auto tb = random_sparse_topology(30, 60, b);
  EXPECT_EQ(ta.links, tb.links);
}

TEST(TopologyTest, RandomSparseTooManyLinksRejected) {
  Rng rng(1);
  EXPECT_THROW((void)random_sparse_topology(3, 100, rng), Error);
}

TEST(TopologyTest, WaxmanConnectivityAndCoords) {
  Rng rng(11);
  const auto topo = waxman_topology(60, 0.4, 0.14, rng);
  EXPECT_EQ(topo.num_nodes, 60u);
  EXPECT_EQ(topo.coords.size(), 60u);
  EXPECT_GE(topo.num_links(), 120u);  // at least the bidirectional cycle
  EXPECT_TRUE(is_strongly_connected(topo.to_digraph()));
  EXPECT_TRUE(is_simple(topo));
  for (const auto& [x, y] : topo.coords) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    EXPECT_GE(y, 0.0);
    EXPECT_LT(y, 1.0);
  }
}

TEST(TopologyTest, WaxmanDensityGrowsWithAlpha) {
  Rng a(5), b(5);
  const auto sparse = waxman_topology(80, 0.1, 0.1, a);
  const auto dense = waxman_topology(80, 0.9, 0.5, b);
  EXPECT_LT(sparse.num_links(), dense.num_links());
}

TEST(TopologyTest, RandomRegularDegrees) {
  Rng rng(13);
  const auto topo = random_regular_topology(40, 4, rng);
  EXPECT_EQ(topo.num_links(), 160u);
  const auto g = topo.to_digraph();
  for (std::uint32_t v = 0; v < 40; ++v)
    EXPECT_EQ(g.out_degree(NodeId{v}), 4u);
  EXPECT_TRUE(is_strongly_connected(g));
  EXPECT_TRUE(is_simple(topo));
}

TEST(TopologyTest, RandomRegularPreconditions) {
  Rng rng(1);
  EXPECT_THROW((void)random_regular_topology(4, 4, rng), Error);
  EXPECT_THROW((void)random_regular_topology(4, 0, rng), Error);
}

TEST(TopologyTest, HierarchicalShape) {
  Rng rng(21);
  const auto topo = hierarchical_topology(4, 5, 2, rng);
  EXPECT_EQ(topo.num_nodes, 4u * 6u);
  EXPECT_EQ(topo.coords.size(), topo.num_nodes);
  EXPECT_TRUE(is_strongly_connected(topo.to_digraph()));
  EXPECT_TRUE(is_simple(topo));
  // Spans: backbone ring 4 + chords 2 + per hub (metro ring 5 + 2 homing)
  // = 4 + 2 + 4*7 = 34 spans = 68 directed links.
  EXPECT_EQ(topo.num_links(), 68u);
}

TEST(TopologyTest, HierarchicalSurvivesSingleSpanCut) {
  // Dual homing: removing any one span leaves the graph connected.
  Rng rng(22);
  const auto topo = hierarchical_topology(3, 4, 0, rng);
  const auto g = topo.to_digraph();
  ASSERT_TRUE(is_strongly_connected(g));
  // Remove each span (pair of opposite links) in turn and re-check.
  for (std::size_t i = 0; i < topo.links.size(); i += 2) {
    Digraph cut(topo.num_nodes);
    for (std::size_t j = 0; j < topo.links.size(); ++j) {
      if (j == i || j == i + 1) continue;
      cut.add_link(topo.links[j].first, topo.links[j].second, 1.0);
    }
    EXPECT_TRUE(is_strongly_connected(cut)) << "span " << i / 2;
  }
}

TEST(TopologyTest, HierarchicalPreconditions) {
  Rng rng(23);
  EXPECT_THROW((void)hierarchical_topology(2, 4, 0, rng), Error);
  EXPECT_THROW((void)hierarchical_topology(3, 1, 0, rng), Error);
}

TEST(TopologyTest, LinkDistance) {
  const auto topo = grid_topology(2, 2);
  // Unit square corners; adjacent corners are distance 1 apart.
  for (std::size_t i = 0; i < topo.links.size(); ++i)
    EXPECT_NEAR(topo.link_distance(i), 1.0, 1e-12);
  const auto no_coords = ring_topology(4);
  EXPECT_DOUBLE_EQ(no_coords.link_distance(0), 1.0);
  EXPECT_THROW((void)no_coords.link_distance(99), Error);
}

TEST(TopologyTest, ToDigraphPreservesEndpoints) {
  const auto topo = nsfnet_topology();
  const auto g = topo.to_digraph();
  ASSERT_EQ(g.num_links(), topo.num_links());
  for (std::uint32_t i = 0; i < topo.num_links(); ++i) {
    EXPECT_EQ(g.tail(LinkId{i}), topo.links[i].first);
    EXPECT_EQ(g.head(LinkId{i}), topo.links[i].second);
  }
}

}  // namespace
}  // namespace lumen
