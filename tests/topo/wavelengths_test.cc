#include "topo/wavelengths.h"

#include <gtest/gtest.h>

#include <memory>

#include "graph/dijkstra.h"  // kInfiniteCost
#include "util/error.h"

namespace lumen {
namespace {

TEST(AvailabilityTest, FullAvailabilityCoversEverything) {
  Rng rng(1);
  const auto topo = ring_topology(6);
  const auto avail = full_availability(topo, 5, CostSpec::unit(), rng);
  ASSERT_EQ(avail.size(), topo.num_links());
  for (const auto& list : avail) {
    EXPECT_EQ(list.size(), 5u);
    for (const auto& lw : list) EXPECT_DOUBLE_EQ(lw.cost, 1.0);
  }
}

TEST(AvailabilityTest, UniformRespectsK0Bounds) {
  Rng rng(2);
  const auto topo = grid_topology(4, 4);
  const auto avail =
      uniform_availability(topo, 16, 2, 5, CostSpec::unit(), rng);
  bool saw_min = false, saw_max = false;
  for (const auto& list : avail) {
    EXPECT_GE(list.size(), 2u);
    EXPECT_LE(list.size(), 5u);
    saw_min |= list.size() == 2;
    saw_max |= list.size() == 5;
    // Sorted, distinct, within universe.
    for (std::size_t i = 0; i < list.size(); ++i) {
      EXPECT_LT(list[i].lambda.value(), 16u);
      if (i > 0) {
        EXPECT_LT(list[i - 1].lambda, list[i].lambda);
      }
    }
  }
  EXPECT_TRUE(saw_min);
  EXPECT_TRUE(saw_max);
}

TEST(AvailabilityTest, UniformPreconditions) {
  Rng rng(1);
  const auto topo = ring_topology(4);
  EXPECT_THROW(
      (void)uniform_availability(topo, 4, 0, 2, CostSpec::unit(), rng),
      Error);
  EXPECT_THROW(
      (void)uniform_availability(topo, 4, 3, 2, CostSpec::unit(), rng),
      Error);
  EXPECT_THROW(
      (void)uniform_availability(topo, 4, 1, 5, CostSpec::unit(), rng),
      Error);
}

TEST(AvailabilityTest, BandedContiguous) {
  Rng rng(3);
  const auto topo = ring_topology(8);
  const auto avail = banded_availability(topo, 12, 4, CostSpec::unit(), rng);
  for (const auto& list : avail) {
    ASSERT_EQ(list.size(), 4u);
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_EQ(list[i].lambda.value(), list[i - 1].lambda.value() + 1);
    }
    EXPECT_LE(list.back().lambda.value(), 11u);
  }
}

TEST(AvailabilityTest, UniformCostsInRange) {
  Rng rng(4);
  const auto topo = ring_topology(5);
  const auto avail =
      full_availability(topo, 3, CostSpec::uniform(2.0, 4.0), rng);
  for (const auto& list : avail)
    for (const auto& lw : list) {
      EXPECT_GE(lw.cost, 2.0);
      EXPECT_LT(lw.cost, 4.0);
    }
}

TEST(AvailabilityTest, DistanceCosts) {
  Rng rng(5);
  const auto topo = grid_topology(2, 3);
  const auto avail =
      full_availability(topo, 2, CostSpec::distance(10.0), rng);
  for (std::size_t e = 0; e < avail.size(); ++e) {
    for (const auto& lw : avail[e]) {
      EXPECT_NEAR(lw.cost, 10.0 * topo.link_distance(e), 1e-12);
    }
  }
}

TEST(AvailabilityTest, OccupancyReducesAvailability) {
  Rng rng(6);
  const auto topo = grid_topology(4, 4);
  const auto full = full_availability(topo, 8, CostSpec::unit(), rng);
  Rng rng2(6);
  const auto occupied =
      occupancy_availability(topo, 8, 60, CostSpec::unit(), rng2);
  std::uint64_t full_total = 0, occ_total = 0;
  for (const auto& list : full) full_total += list.size();
  for (const auto& list : occupied) occ_total += list.size();
  EXPECT_LT(occ_total, full_total);
  EXPECT_GT(occ_total, 0u);
}

TEST(AvailabilityTest, OccupancyZeroDemandsIsFull) {
  Rng rng(7);
  const auto topo = ring_topology(5);
  const auto avail =
      occupancy_availability(topo, 4, 0, CostSpec::unit(), rng);
  for (const auto& list : avail) EXPECT_EQ(list.size(), 4u);
}

TEST(AssembleTest, BuildsRoutableNetwork) {
  Rng rng(8);
  const auto topo = nsfnet_topology();
  const auto avail =
      uniform_availability(topo, 8, 2, 4, CostSpec::unit(), rng);
  const auto net =
      assemble_network(topo, 8, avail, std::make_shared<UniformConversion>(0.5));
  EXPECT_EQ(net.num_nodes(), topo.num_nodes);
  EXPECT_EQ(net.num_links(), topo.num_links());
  EXPECT_EQ(net.num_wavelengths(), 8u);
  EXPECT_LE(net.k0(), 4u);
  for (std::uint32_t e = 0; e < net.num_links(); ++e) {
    EXPECT_EQ(net.tail(LinkId{e}), topo.links[e].first);
    EXPECT_EQ(net.head(LinkId{e}), topo.links[e].second);
    EXPECT_EQ(net.available(LinkId{e}).size(), avail[e].size());
  }
}

TEST(AssembleTest, SizeMismatchRejected) {
  Rng rng(9);
  const auto topo = ring_topology(4);
  Availability avail(3);  // wrong: topo has 8 links
  EXPECT_THROW((void)assemble_network(topo, 2, avail,
                                      std::make_shared<NoConversion>()),
               Error);
}

TEST(DemandsTest, RandomDemandsValid) {
  Rng rng(10);
  const auto demands = random_demands(20, 50, rng);
  EXPECT_EQ(demands.size(), 50u);
  for (const auto& [s, t] : demands) {
    EXPECT_NE(s, t);
    EXPECT_LT(s.value(), 20u);
    EXPECT_LT(t.value(), 20u);
  }
}

TEST(DemandsTest, NeedsTwoNodes) {
  Rng rng(1);
  EXPECT_THROW((void)random_demands(1, 5, rng), Error);
}

TEST(DemandsTest, GravityDemandsValidAndDeterministic) {
  Rng a(11), b(11);
  const auto topo = nsfnet_topology();
  const auto da = gravity_demands(topo, 60, a);
  const auto db = gravity_demands(topo, 60, b);
  EXPECT_EQ(da, db);
  EXPECT_EQ(da.size(), 60u);
  for (const auto& [s, t] : da) {
    EXPECT_NE(s, t);
    EXPECT_LT(s.value(), 14u);
    EXPECT_LT(t.value(), 14u);
  }
}

TEST(DemandsTest, GravityFavorsCloseHeavyPairs) {
  // Two tight clusters far apart: intra-cluster pairs must dominate.
  Topology topo;
  topo.num_nodes = 6;
  topo.coords = {{0.0, 0.0}, {0.02, 0.0}, {0.0, 0.02},
                 {1.0, 1.0}, {0.98, 1.0}, {1.0, 0.98}};
  // (links are irrelevant to the demand model)
  Rng rng(12);
  const auto demands = gravity_demands(topo, 400, rng);
  std::uint32_t intra = 0;
  for (const auto& [s, t] : demands) {
    const bool s_left = s.value() < 3, t_left = t.value() < 3;
    if (s_left == t_left) ++intra;
  }
  EXPECT_GT(intra, 350u);  // inter-cluster pairs are ~400x down-weighted
}

TEST(DemandsTest, GravityWithoutCoordsStillWorks) {
  const auto topo = ring_topology(8);  // no coords
  Rng rng(13);
  const auto demands = gravity_demands(topo, 40, rng);
  EXPECT_EQ(demands.size(), 40u);
  for (const auto& [s, t] : demands) EXPECT_NE(s, t);
}

TEST(DemandsTest, GravityNeedsTwoNodes) {
  Topology tiny;
  tiny.num_nodes = 1;
  Rng rng(1);
  EXPECT_THROW((void)gravity_demands(tiny, 3, rng), Error);
}

}  // namespace
}  // namespace lumen
