// Shared workload builders for the experiment benches (E2–E9).
//
// Every bench builds its networks deterministically from (experiment seed,
// sweep point) so runs are reproducible and LS/CFZ/distributed series see
// identical inputs.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "topo/topologies.h"
#include "topo/wavelengths.h"
#include "util/stats.h"
#include "wdm/network.h"

namespace lumen::bench {

/// Exports p50/p90/p99 of a Percentiles accumulator as benchmark counters
/// named `<prefix>_p50` etc.  No-op when the accumulator is empty.
inline void export_percentile_counters(benchmark::State& state,
                                       const std::string& prefix,
                                       const Percentiles& sample) {
  if (sample.count() == 0) return;
  state.counters[prefix + "_p50"] = sample.p50();
  state.counters[prefix + "_p90"] = sample.p90();
  state.counters[prefix + "_p99"] = sample.p99();
}

/// Rewrites a `--json <file>` (or `--json=<file>`) flag into google
/// benchmark's --benchmark_out/--benchmark_out_format pair, so every
/// bench emits a machine-readable trajectory point with
///
///   ./bench_comparison --json out.json
///
/// Returns the (possibly rewritten) argv; `argc` is updated in place.
/// The storage behind the returned pointers has static lifetime.
inline char** apply_json_flag(int& argc, char** argv) {
  static std::vector<std::string> storage;
  static std::vector<char*> rewritten;
  storage.clear();
  rewritten.clear();
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      storage.push_back("--benchmark_out=" + std::string(argv[++i]));
      storage.push_back("--benchmark_out_format=json");
    } else if (arg.rfind("--json=", 0) == 0) {
      storage.push_back("--benchmark_out=" + arg.substr(7));
      storage.push_back("--benchmark_out_format=json");
    } else {
      storage.push_back(arg);
    }
  }
  rewritten.reserve(storage.size());
  for (std::string& s : storage) rewritten.push_back(s.data());
  argc = static_cast<int>(rewritten.size());
  return rewritten.data();
}

}  // namespace lumen::bench

/// Drop-in replacement for BENCHMARK_MAIN() that understands --json.
#define LUMEN_BENCH_MAIN()                                               \
  int main(int argc, char** argv) {                                      \
    char** lumen_argv = ::lumen::bench::apply_json_flag(argc, argv);     \
    ::benchmark::Initialize(&argc, lumen_argv);                          \
    if (::benchmark::ReportUnrecognizedArguments(argc, lumen_argv))      \
      return 1;                                                          \
    ::benchmark::RunSpecifiedBenchmarks();                               \
    ::benchmark::Shutdown();                                             \
    return 0;                                                            \
  }                                                                      \
  static_assert(true, "require a trailing semicolon")

namespace lumen::bench {

/// The Section III-C regime: sparse WAN with m = 4n links and
/// k = ceil(log2 n) wavelengths, k0 <= min(k, 4), uniform conversion.
inline WdmNetwork comparison_network(std::uint32_t n, std::uint64_t seed) {
  const auto k = static_cast<std::uint32_t>(std::ceil(std::log2(n)));
  Rng rng(seed + n);
  const Topology topo = random_sparse_topology(n, 3 * n, rng);
  const Availability avail = uniform_availability(
      topo, k, 1, std::min(k, 4u), CostSpec::uniform(1.0, 3.0), rng);
  return assemble_network(topo, k, avail,
                          std::make_shared<UniformConversion>(0.3));
}

/// The Section IV regime: n and k0 fixed, universe size k sweeping — the
/// in-use wavelengths are spread uniformly over [0, k).
inline WdmNetwork restricted_network(std::uint32_t n, std::uint32_t k,
                                     std::uint32_t k0, std::uint64_t seed) {
  Rng rng(seed);
  const Topology topo = random_sparse_topology(n, 2 * n, rng);
  WdmNetwork net(topo.num_nodes, k,
                 std::make_shared<RangeLimitedConversion>(k, 0.2, 0.0));
  Rng lambda_rng(seed ^ 0x5555ULL);
  for (const auto& [u, v] : topo.links) {
    const LinkId e = net.add_link(u, v);
    for (const std::uint32_t l : lambda_rng.sample_without_replacement(k, k0))
      net.set_wavelength(e, Wavelength{l}, lambda_rng.next_double_in(1, 2));
  }
  return net;
}

/// Theorem 3/5 regime: Waxman WAN with distance costs and range-limited
/// conversion; full availability up to k0 per link.
inline WdmNetwork distributed_network(std::uint32_t n, std::uint32_t k,
                                      std::uint32_t k0, std::uint64_t seed) {
  Rng rng(seed + n);
  const Topology topo = waxman_topology(n, 0.4, 0.2, rng);
  const Availability avail = uniform_availability(
      topo, k, 1, k0, CostSpec::distance(10.0), rng);
  return assemble_network(
      topo, k, avail, std::make_shared<RangeLimitedConversion>(3, 0.2, 0.1));
}

}  // namespace lumen::bench
