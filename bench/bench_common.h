// Shared workload builders for the experiment benches (E2–E9).
//
// Every bench builds its networks deterministically from (experiment seed,
// sweep point) so runs are reproducible and LS/CFZ/distributed series see
// identical inputs.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>

#include "topo/topologies.h"
#include "topo/wavelengths.h"
#include "wdm/network.h"

namespace lumen::bench {

/// The Section III-C regime: sparse WAN with m = 4n links and
/// k = ceil(log2 n) wavelengths, k0 <= min(k, 4), uniform conversion.
inline WdmNetwork comparison_network(std::uint32_t n, std::uint64_t seed) {
  const auto k = static_cast<std::uint32_t>(std::ceil(std::log2(n)));
  Rng rng(seed + n);
  const Topology topo = random_sparse_topology(n, 3 * n, rng);
  const Availability avail = uniform_availability(
      topo, k, 1, std::min(k, 4u), CostSpec::uniform(1.0, 3.0), rng);
  return assemble_network(topo, k, avail,
                          std::make_shared<UniformConversion>(0.3));
}

/// The Section IV regime: n and k0 fixed, universe size k sweeping — the
/// in-use wavelengths are spread uniformly over [0, k).
inline WdmNetwork restricted_network(std::uint32_t n, std::uint32_t k,
                                     std::uint32_t k0, std::uint64_t seed) {
  Rng rng(seed);
  const Topology topo = random_sparse_topology(n, 2 * n, rng);
  WdmNetwork net(topo.num_nodes, k,
                 std::make_shared<RangeLimitedConversion>(k, 0.2, 0.0));
  Rng lambda_rng(seed ^ 0x5555ULL);
  for (const auto& [u, v] : topo.links) {
    const LinkId e = net.add_link(u, v);
    for (const std::uint32_t l : lambda_rng.sample_without_replacement(k, k0))
      net.set_wavelength(e, Wavelength{l}, lambda_rng.next_double_in(1, 2));
  }
  return net;
}

/// Theorem 3/5 regime: Waxman WAN with distance costs and range-limited
/// conversion; full availability up to k0 per link.
inline WdmNetwork distributed_network(std::uint32_t n, std::uint32_t k,
                                      std::uint32_t k0, std::uint64_t seed) {
  Rng rng(seed + n);
  const Topology topo = waxman_topology(n, 0.4, 0.2, rng);
  const Availability avail = uniform_availability(
      topo, k, 1, k0, CostSpec::distance(10.0), rng);
  return assemble_network(
      topo, k, avail, std::make_shared<RangeLimitedConversion>(3, 0.2, 0.1));
}

}  // namespace lumen::bench
