// E2 — Section III-C comparison: Liang–Shen vs Chlamtac–Faragó–Zhang.
//
// Regime: m = 4n (sparse WAN), k = ceil(log2 n).  The paper's analysis:
//   T_LS  = O(k²n + km + kn log kn)  ≈ O(n log² n)
//   T_CFZ = O(k²n + kn²)             ≈ O(n² log n)
// so the ratio should grow like Ω(n / log n) — roughly doubling every time
// n doubles.  The `ratio_vs_LS` counter on each CFZ row reports the
// measured ratio against a same-input Liang–Shen run.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/cfz.h"
#include "core/liang_shen.h"
#include "util/stopwatch.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 20260707;

void BM_LiangShen(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kSeed);
  const NodeId s{0}, t{n / 2};
  double cost = 0;
  std::uint64_t aux_links = 0;
  for (auto _ : state) {
    const RouteResult r = route_semilightpath(net, s, t);
    benchmark::DoNotOptimize(cost = r.cost);
    aux_links = r.stats.aux_links;
  }
  state.counters["n"] = n;
  state.counters["m"] = net.num_links();
  state.counters["k"] = net.num_wavelengths();
  state.counters["aux_links"] = static_cast<double>(aux_links);
}
BENCHMARK(BM_LiangShen)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_CFZ(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kSeed);
  const NodeId s{0}, t{n / 2};

  // One-shot LS reference on the identical input for the ratio counter.
  Stopwatch ls_clock;
  const RouteResult ls = route_semilightpath(net, s, t);
  const double ls_seconds = ls_clock.seconds();

  double cost = 0;
  double cfz_seconds = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    Stopwatch clock;
    const RouteResult r = cfz_route(net, s, t);
    cfz_seconds += clock.seconds();
    ++runs;
    benchmark::DoNotOptimize(cost = r.cost);
    if (ls.found && r.found && std::abs(r.cost - ls.cost) > 1e-6) {
      state.SkipWithError("CFZ optimum disagrees with Liang–Shen");
      return;
    }
  }
  state.counters["n"] = n;
  state.counters["k"] = net.num_wavelengths();
  state.counters["ratio_vs_LS"] =
      (cfz_seconds / static_cast<double>(runs)) / std::max(ls_seconds, 1e-9);
  state.counters["pair_scans_kn2"] =
      static_cast<double>(net.num_wavelengths()) * n * n;
}
BENCHMARK(BM_CFZ)
    ->RangeMultiplier(2)
    ->Range(128, 4096)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

LUMEN_BENCH_MAIN();
