// E13 (extension) — protection-pair quality and cost ablation.
//
// Three ways to get a working/backup pair:
//   greedy     — optimal working path, backup on the remainder (2 routes)
//   iterated   — best pair over the K cheapest working paths (~K·2 routes)
//   Suurballe  — exact optimum, single-wavelength/no-conversion regime
// Counters report each method's success rate and its mean total cost as a
// multiple of the exact optimum across a demand batch, so the
// quality/effort trade-off is visible.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

#include <memory>

#include "core/protection.h"
#include "graph/suurballe.h"
#include "topo/topologies.h"
#include "util/rng.h"
#include "wdm/network.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 97531;

struct Instance {
  WdmNetwork net;
  Digraph bare;
};

/// Purely-directed single-wavelength instance (span == link), where
/// Suurballe is the exact optimum for comparison.
Instance directed_instance(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  Instance inst{WdmNetwork(n, 1, std::make_shared<NoConversion>()),
                Digraph(n)};
  const std::uint32_t links = 5 * n;
  std::uint32_t added = 0;
  while (added < links) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(n));
    const auto v = static_cast<std::uint32_t>(rng.next_below(n));
    if (u == v) continue;
    const double w = rng.next_double_in(0.5, 3.0);
    const LinkId e = inst.net.add_link(NodeId{u}, NodeId{v});
    inst.net.set_wavelength(e, Wavelength{0}, w);
    inst.bare.add_link(NodeId{u}, NodeId{v}, w);
    ++added;
  }
  return inst;
}

enum class Method { kGreedy, kIterated, kSuurballe };

void run_method(benchmark::State& state, Method method) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Instance inst = directed_instance(n, kSeed);

  // Demand set shared by all methods.
  Rng demand_rng(kSeed ^ n);
  std::vector<std::pair<NodeId, NodeId>> demands;
  for (int i = 0; i < 20; ++i) {
    const auto s = static_cast<std::uint32_t>(demand_rng.next_below(n));
    auto t = static_cast<std::uint32_t>(demand_rng.next_below(n));
    if (s == t) t = (t + 1) % n;
    demands.emplace_back(NodeId{s}, NodeId{t});
  }

  std::uint32_t solved = 0, exact_solved = 0;
  double cost_sum = 0.0, exact_sum = 0.0;
  for (auto _ : state) {
    solved = exact_solved = 0;
    cost_sum = exact_sum = 0.0;
    for (const auto& [s, t] : demands) {
      const auto exact = suurballe_disjoint_pair(inst.bare, s, t);
      if (exact) {
        ++exact_solved;
        exact_sum += exact->total_cost;
      }
      double cost = 0.0;
      bool ok = false;
      switch (method) {
        case Method::kGreedy: {
          const auto pair = route_protected_pair(inst.net, s, t);
          ok = pair.has_value();
          if (ok) cost = pair->total_cost();
          break;
        }
        case Method::kIterated: {
          const auto pair =
              route_protected_pair_iterated(inst.net, s, t, 5);
          ok = pair.has_value();
          if (ok) cost = pair->total_cost();
          break;
        }
        case Method::kSuurballe: {
          ok = exact.has_value();
          if (ok) cost = exact->total_cost;
          break;
        }
      }
      if (ok) {
        ++solved;
        cost_sum += cost;
      }
      benchmark::DoNotOptimize(cost);
    }
  }
  state.counters["solved_of_20"] = solved;
  state.counters["exact_solvable"] = exact_solved;
  if (solved > 0 && exact_solved > 0) {
    state.counters["cost_vs_exact"] =
        (cost_sum / solved) / (exact_sum / exact_solved);
  }
}

void BM_Protection_Greedy(benchmark::State& state) {
  run_method(state, Method::kGreedy);
}
void BM_Protection_Iterated(benchmark::State& state) {
  run_method(state, Method::kIterated);
}
void BM_Protection_Suurballe(benchmark::State& state) {
  run_method(state, Method::kSuurballe);
}
BENCHMARK(BM_Protection_Greedy)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Protection_Iterated)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Protection_Suurballe)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LUMEN_BENCH_MAIN();
