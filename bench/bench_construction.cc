// E3 — Theorem 1 / Observations 1–3: auxiliary-graph construction cost and
// size versus the paper's bounds.
//
// Counters on every row report the realized |V'|, |E'| against the
// Observation 2 ceilings 2kn and k²n + km; construction time should scale
// linearly with |E'| (the O(k²n + km) claim).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/aux_graph.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 31337;

WdmNetwork dense_availability_network(std::uint32_t n, std::uint32_t k) {
  Rng rng(kSeed + n * 131 + k);
  const Topology topo = random_sparse_topology(n, 3 * n, rng);
  const Availability avail =
      full_availability(topo, k, CostSpec::uniform(1.0, 2.0), rng);
  return assemble_network(topo, k, avail,
                          std::make_shared<UniformConversion>(0.2));
}

/// Sweep n at fixed k: build time should grow linearly in n.
void BM_BuildAuxGraph_SweepN(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t k = 8;
  const WdmNetwork net = dense_availability_network(n, k);
  std::uint64_t nodes = 0, links = 0;
  for (auto _ : state) {
    const auto aux = AuxiliaryGraph::build_single_pair(net, NodeId{0},
                                                       NodeId{n - 1});
    nodes = aux.stats().total_nodes();
    links = aux.stats().total_links();
    benchmark::DoNotOptimize(aux.graph().num_links());
  }
  const double m = net.num_links();
  state.counters["aux_nodes"] = static_cast<double>(nodes);
  state.counters["bound_2kn"] = 2.0 * k * n + 2;
  state.counters["aux_links"] = static_cast<double>(links);
  state.counters["bound_k2n_km"] = static_cast<double>(k) * k * n + k * m;
}
BENCHMARK(BM_BuildAuxGraph_SweepN)
    ->RangeMultiplier(2)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

/// Sweep k at fixed n: with full availability, build time grows ~k².
void BM_BuildAuxGraph_SweepK(benchmark::State& state) {
  const std::uint32_t n = 256;
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = dense_availability_network(n, k);
  std::uint64_t nodes = 0, links = 0;
  for (auto _ : state) {
    const auto aux = AuxiliaryGraph::build_single_pair(net, NodeId{0},
                                                       NodeId{n - 1});
    nodes = aux.stats().total_nodes();
    links = aux.stats().total_links();
    benchmark::DoNotOptimize(aux.graph().num_links());
  }
  state.counters["aux_nodes"] = static_cast<double>(nodes);
  state.counters["aux_links"] = static_cast<double>(links);
  state.counters["bound_k2n_km"] =
      static_cast<double>(k) * k * n + static_cast<double>(k) * net.num_links();
}
BENCHMARK(BM_BuildAuxGraph_SweepK)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Unit(benchmark::kMillisecond);

/// All-pairs variant (Corollary 1): G_all adds only 2n terminals and ≤2kn
/// tie links on top of G'.
void BM_BuildGAll(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kSeed);
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    const auto aux = AuxiliaryGraph::build_all_pairs(net);
    nodes = aux.stats().total_nodes();
    benchmark::DoNotOptimize(aux.graph().num_links());
  }
  const double k = net.num_wavelengths();
  state.counters["aux_nodes"] = static_cast<double>(nodes);
  state.counters["bound_2n_k_plus_1"] = 2.0 * n * (k + 1);
}
BENCHMARK(BM_BuildGAll)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LUMEN_BENCH_MAIN();
