// E4 — Section IV / Theorem 4: with |Λ(e)| <= k_0 fixed, Liang–Shen's
// running time is independent of the universe size k, while CFZ's grows
// with k (its wavelength graph always materializes all k·n nodes and scans
// k·n² node pairs).
//
// Sweep: n = 512, m ≈ 1536, k_0 = 3 fixed; k = 8 … 1024.
// Expected shape: the BM_LS_UniverseSweep series is flat; the
// BM_CFZ_UniverseSweep series grows superlinearly in k.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/cfz.h"
#include "core/liang_shen.h"

namespace {

using namespace lumen;

constexpr std::uint32_t kN = 512;
constexpr std::uint32_t kK0 = 3;
constexpr std::uint64_t kSeed = 424242;

void BM_LS_UniverseSweep(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::restricted_network(kN, k, kK0, kSeed);
  const NodeId s{0}, t{kN / 2};
  double cost = 0;
  std::uint64_t aux_nodes = 0;
  for (auto _ : state) {
    const RouteResult r = route_semilightpath(net, s, t);
    benchmark::DoNotOptimize(cost = r.cost);
    aux_nodes = r.stats.aux_nodes;
  }
  state.counters["k"] = k;
  state.counters["k0"] = kK0;
  state.counters["aux_nodes"] = static_cast<double>(aux_nodes);
  state.counters["bound_mk0"] =
      static_cast<double>(net.num_links()) * kK0 + 2;
}
BENCHMARK(BM_LS_UniverseSweep)
    ->RangeMultiplier(2)
    ->Range(8, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_CFZ_UniverseSweep(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::restricted_network(kN, k, kK0, kSeed);
  const NodeId s{0}, t{kN / 2};
  double cost = 0;
  std::uint64_t wg_nodes = 0;
  for (auto _ : state) {
    const RouteResult r = cfz_route(net, s, t);
    benchmark::DoNotOptimize(cost = r.cost);
    wg_nodes = r.stats.aux_nodes;
  }
  state.counters["k"] = k;
  state.counters["wg_nodes_kn"] = static_cast<double>(wg_nodes);
}
// CFZ grows with k by design; cap the sweep at 128 (k = 256 already takes
// >5 s on a laptop because the k·n-node wavelength graph thrashes caches)
// and run each point once.
BENCHMARK(BM_CFZ_UniverseSweep)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// The same sweep restricted to construction-free search effort: heap pops
/// inside the Liang–Shen Dijkstra must not depend on k either.
void BM_LS_SearchEffort(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::restricted_network(kN, k, kK0, kSeed);
  std::uint64_t pops = 0;
  for (auto _ : state) {
    const RouteResult r = route_semilightpath(net, NodeId{0}, NodeId{kN / 2});
    pops = r.stats.search_pops;
    benchmark::DoNotOptimize(pops);
  }
  state.counters["search_pops"] = static_cast<double>(pops);
}
BENCHMARK(BM_LS_SearchEffort)
    ->RangeMultiplier(4)
    ->Range(8, 1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LUMEN_BENCH_MAIN();
