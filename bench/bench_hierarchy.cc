// E19 (extension) — contraction-hierarchy ablations, plus the E8 heap
// micro-bench it absorbed.
//
// The engine's partial contraction hierarchy answers a semilightpath
// query with a bidirectional *upward* search over the elimination order:
// a backward sweep over H_b from the sink seeds, then a forward ascent
// over H_f that stops as soon as the frontier key reaches the best meet.
// The ablation grid crosses four query modes — plain engine Dijkstra,
// ALT (goal-directed A*), CH (hierarchy), CH+ALT (hierarchy with the
// same residual-safe potential pruning the ascent) — with two residual
// states: low load (pristine) and high load (~30% of the (link, λ)
// pairs reserved, after re-customization; beyond that the degree-2
// access rings disconnect and almost nothing routes).
//
// The instance is the metro/backbone WAN (hierarchical_topology): access
// rings hanging off a chorded hub ring, the shape WDM networks are
// actually deployed in.  Elimination contracts the rings completely and
// leaves a ~hub-sized core, which is where the hierarchy's advantage
// comes from — and why E19 does NOT use the random sparse
// comparison_network: expander-like graphs have no small separators, the
// core stays large, and ALT keeps winning there (see docs/PERFORMANCE.md).
// Queries are a fixed mix of scattered random pairs, the regime of an
// online session workload: every query sees a cold target, so ALT pays
// its per-target reverse Dijkstra while CH needs no potential at all.
// Every series verifies in-bench that its costs are bit-identical to the
// plain engine search over the whole mix.
//
// BM_HierarchyCustomize isolates the incremental maintenance cost: one
// span fail + repair, re-customizing only the patched spans' support
// cones (the touched-arcs counter is exported next to the timing).
//
// BM_HeapMixedOps (from the retired bench_heaps) keeps the raw heap
// ablation: a Dijkstra-shaped push/decrease/pop mix over all four
// in-tree heaps — the 4-ary array heap's batched (SIMD min-of-4) child
// scan is the one the SearchScratch hot path uses.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/aux_graph.h"
#include "core/route_engine.h"
#include "graph/binary_heap.h"
#include "graph/dijkstra.h"
#include "graph/pairing_heap.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 24680;
constexpr double kHighLoad = 0.3;
constexpr std::size_t kMixSize = 40;

constexpr RouteEngine::Options kBuildHierarchy{.build_hierarchy = true};
constexpr RouteEngine::QueryOptions kAlt{.goal_directed = true};
constexpr RouteEngine::QueryOptions kCh{.use_hierarchy = true};
constexpr RouteEngine::QueryOptions kChAlt{.goal_directed = true,
                                           .use_hierarchy = true};

/// Metro/backbone WAN at the comparison_network wavelength regime:
/// sqrt(n) hubs on a chorded ring, each serving a (sqrt(n)-1)-node
/// access ring; k = ceil(log2 n), k0 <= 4, uniform conversion.
WdmNetwork hierarchy_network(std::uint32_t n, std::uint64_t seed) {
  const auto side = static_cast<std::uint32_t>(
      std::round(std::sqrt(static_cast<double>(n))));
  const auto k = static_cast<std::uint32_t>(
      std::ceil(std::log2(static_cast<double>(n))));
  Rng rng(seed + n);
  const Topology topo = hierarchical_topology(side, side - 1, side / 2, rng);
  const Availability avail = uniform_availability(
      topo, k, 1, std::min(k, 4u), CostSpec::uniform(1.0, 3.0), rng);
  return assemble_network(topo, k, avail,
                          std::make_shared<UniformConversion>(0.3));
}

/// The scattered-pair query mix every series routes (deterministic).
std::vector<std::pair<NodeId, NodeId>> query_mix(std::uint32_t n) {
  Rng rng(kSeed ^ 0x4a11ULL);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(kMixSize);
  for (std::size_t i = 0; i < kMixSize; ++i) {
    pairs.emplace_back(
        NodeId{static_cast<std::uint32_t>(rng.next_below(n))},
        NodeId{static_cast<std::uint32_t>(rng.next_below(n))});
  }
  return pairs;
}

/// Reserves ~`fraction` of the engine's (link, λ) slots, mirroring a
/// loaded residual network.  Deterministic in `seed`.
void load_engine(RouteEngine& engine, const WdmNetwork& net, double fraction,
                 std::uint64_t seed) {
  Rng rng(seed);
  for (std::uint32_t ei = 0; ei < net.num_links(); ++ei) {
    const LinkId e{ei};
    for (const auto& lw : net.available(e)) {
      if (rng.next_bool(fraction)) (void)engine.reserve(e, lw.lambda);
    }
  }
}

/// Shared ablation body: routes the query mix under `query` on a
/// hierarchy-equipped engine at `load` reserved fraction (one query per
/// benchmark iteration, cycling through the mix), verifying every
/// mix pair against the engine's own uninformed search and exporting
/// the pop counters the E19 acceptance gate reads.
void hierarchy_series(benchmark::State& state,
                      const RouteEngine::QueryOptions& query, double load) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = hierarchy_network(n, kSeed);
  RouteEngine engine(net, kBuildHierarchy);
  if (load > 0.0) {
    load_engine(engine, net, load, kSeed ^ 0x10adULL);
    (void)engine.customize_hierarchy();  // queries below use const scratch
  }

  const auto pairs = query_mix(n);
  SearchScratch scratch;
  double mode_pops = 0.0;
  double alt_pops = 0.0;
  double routable = 0.0;
  for (const auto& [s, t] : pairs) {
    const RouteResult plain = engine.route_semilightpath(s, t, scratch);
    const RouteResult alt = engine.route_semilightpath(s, t, scratch, kAlt);
    const RouteResult modal = engine.route_semilightpath(s, t, scratch, query);
    if (plain.found != modal.found ||
        (plain.found && plain.cost != modal.cost)) {
      state.SkipWithError("query-mode optimum disagrees with engine Dijkstra");
      return;
    }
    mode_pops += static_cast<double>(modal.stats.search_pops);
    alt_pops += static_cast<double>(alt.stats.search_pops);
    if (plain.found) routable += 1.0;
  }

  std::size_t next = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[next];
    next = (next + 1) % pairs.size();
    const RouteResult r = engine.route_semilightpath(s, t, scratch, query);
    benchmark::DoNotOptimize(r.cost);
  }
  state.counters["mean_pops"] = mode_pops / static_cast<double>(pairs.size());
  state.counters["pop_reduction_vs_alt"] =
      mode_pops == 0.0 ? 0.0 : alt_pops / mode_pops;
  state.counters["routable"] = routable;
  state.counters["shortcuts"] =
      static_cast<double>(engine.stats().hierarchy_shortcuts);
  state.counters["core_nodes"] =
      static_cast<double>(engine.stats().hierarchy_core_nodes);
}

void BM_EngineDijkstra(benchmark::State& state) {
  hierarchy_series(state, RouteEngine::QueryOptions{}, 0.0);
}
BENCHMARK(BM_EngineDijkstra)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_EngineAlt(benchmark::State& state) {
  hierarchy_series(state, kAlt, 0.0);
}
BENCHMARK(BM_EngineAlt)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_EngineCh(benchmark::State& state) { hierarchy_series(state, kCh, 0.0); }
BENCHMARK(BM_EngineCh)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_EngineChAlt(benchmark::State& state) {
  hierarchy_series(state, kChAlt, 0.0);
}
BENCHMARK(BM_EngineChAlt)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_EngineDijkstraHighLoad(benchmark::State& state) {
  hierarchy_series(state, RouteEngine::QueryOptions{}, kHighLoad);
}
BENCHMARK(BM_EngineDijkstraHighLoad)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_EngineAltHighLoad(benchmark::State& state) {
  hierarchy_series(state, kAlt, kHighLoad);
}
BENCHMARK(BM_EngineAltHighLoad)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_EngineChHighLoad(benchmark::State& state) {
  hierarchy_series(state, kCh, kHighLoad);
}
BENCHMARK(BM_EngineChHighLoad)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_EngineChAltHighLoad(benchmark::State& state) {
  hierarchy_series(state, kChAlt, kHighLoad);
}
BENCHMARK(BM_EngineChAltHighLoad)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_HierarchyBuild(benchmark::State& state) {
  // One-time ordering + first customization, the cost build_hierarchy
  // adds to engine construction (amortized over the query stream).
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = hierarchy_network(n, kSeed);
  std::uint32_t shortcuts = 0;
  for (auto _ : state) {
    RouteEngine engine(net, kBuildHierarchy);
    shortcuts = engine.stats().hierarchy_shortcuts;
    benchmark::DoNotOptimize(shortcuts);
  }
  state.counters["shortcuts"] = static_cast<double>(shortcuts);
}
BENCHMARK(BM_HierarchyBuild)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_HierarchyCustomize(benchmark::State& state) {
  // Incremental maintenance: one (link, λ) fail + repair per iteration,
  // each followed by a customize() that may only touch the patched
  // slot's support cone.  touched_arcs counts re-evaluated arcs per
  // customize; total_arcs is the flat re-customization cost it avoids.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = hierarchy_network(n, kSeed);
  RouteEngine engine(net, kBuildHierarchy);
  Rng rng(kSeed ^ 0xcc5ULL);
  std::uint64_t touched = 0;
  std::uint64_t customizations = 0;
  for (auto _ : state) {
    const LinkId e{static_cast<std::uint32_t>(rng.next_below(net.num_links()))};
    if (net.num_available(e) == 0) continue;
    const LinkWavelength lw = net.available(e)[0];
    engine.set_weight(e, lw.lambda, kInfiniteCost);
    touched += engine.customize_hierarchy();
    engine.set_weight(e, lw.lambda, lw.cost);
    touched += engine.customize_hierarchy();
    customizations += 2;
  }
  state.counters["touched_arcs"] =
      customizations == 0 ? 0.0
                          : static_cast<double>(touched) /
                                static_cast<double>(customizations);
  state.counters["total_arcs"] =
      static_cast<double>(engine.stats().core_links +
                          engine.stats().hierarchy_shortcuts);
}
BENCHMARK(BM_HierarchyCustomize)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

/// E8 heap ablation (absorbed from the retired bench_heaps): Dijkstra
/// over the single-pair auxiliary graph with each in-tree heap plugged
/// in, showing Theorem 1's asymptotic Fibonacci-heap choice versus
/// practical constants.  Uses bench_heaps' original seed and expander
/// instance so the E8 table stays comparable across captures.
template <class Heap>
void BM_DijkstraOnAux(benchmark::State& state) {
  constexpr std::uint64_t kE8Seed = 5150;
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kE8Seed);
  const auto aux =
      AuxiliaryGraph::build_single_pair(net, NodeId{0}, NodeId{n / 2});
  for (auto _ : state) {
    const auto tree = dijkstra_with<Heap>(aux.graph(), aux.source_terminal());
    benchmark::DoNotOptimize(tree.dist.back());
  }
  state.counters["aux_nodes"] = static_cast<double>(aux.graph().num_nodes());
  state.counters["aux_links"] = static_cast<double>(aux.graph().num_links());
}
BENCHMARK(BM_DijkstraOnAux<FibHeap>)
    ->Name("BM_DijkstraOnAux/Fibonacci")
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DijkstraOnAux<BinaryHeap>)
    ->Name("BM_DijkstraOnAux/Binary")
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DijkstraOnAux<QuaternaryHeap>)
    ->Name("BM_DijkstraOnAux/Quaternary")
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DijkstraOnAux<PairingHeap>)
    ->Name("BM_DijkstraOnAux/Pairing")
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

/// Raw heap micro-bench (absorbed from the retired bench_heaps): a
/// Dijkstra-shaped push/decrease/pop mix.
template <class Heap>
void BM_HeapMixedOps(benchmark::State& state) {
  const auto ops = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Heap heap;
    Rng rng(kSeed);
    std::vector<typename Heap::Handle> handles;
    std::vector<double> keys;
    handles.reserve(ops);
    for (std::uint32_t i = 0; i < ops; ++i) {
      const double key = rng.next_double_in(0, 1e6);
      handles.push_back(heap.push(key, i));
      keys.push_back(key);
      if (i % 3 == 0 && i > 0) {
        const auto j = static_cast<std::uint32_t>(rng.next_below(i));
        // decrease_key on a possibly-stale handle is guarded by key check.
        if (keys[j] > 0) {
          heap.decrease_key(handles[j], keys[j] * 0.5);
          keys[j] *= 0.5;
        }
      }
      if (i % 4 == 0 && !heap.empty()) {
        const auto [key_popped, item] = heap.pop_min();
        keys[item] = -1;  // mark dead
        benchmark::DoNotOptimize(key_popped);
      }
    }
    benchmark::DoNotOptimize(heap.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * ops);
}
BENCHMARK(BM_HeapMixedOps<FibHeap>)
    ->Name("BM_HeapMixedOps/Fibonacci")
    ->Arg(100000);
BENCHMARK(BM_HeapMixedOps<BinaryHeap>)
    ->Name("BM_HeapMixedOps/Binary")
    ->Arg(100000);
BENCHMARK(BM_HeapMixedOps<QuaternaryHeap>)
    ->Name("BM_HeapMixedOps/Quaternary")
    ->Arg(100000);
BENCHMARK(BM_HeapMixedOps<PairingHeap>)
    ->Name("BM_HeapMixedOps/Pairing")
    ->Arg(100000);

}  // namespace

LUMEN_BENCH_MAIN();
