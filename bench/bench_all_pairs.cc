// E6 — Corollary 1: all-pairs routing via G_all.
//
// Full cost-matrix computation must amortize the auxiliary-graph build:
// one construction + n Dijkstra runs, versus n single-pair calls that each
// rebuild G_{s,t}.  The `speedup_vs_rebuild` counter reports the measured
// advantage of the shared build.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/all_pairs.h"
#include "core/liang_shen.h"
#include "util/stopwatch.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 777;

void BM_AllPairsMatrix(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kSeed);
  for (auto _ : state) {
    AllPairsRouter router(net);
    const auto matrix = router.cost_matrix();
    benchmark::DoNotOptimize(matrix[0][n - 1]);
  }

  // Reference: single-pair source-to-all by rebuilding per source.
  Stopwatch rebuild_clock;
  for (std::uint32_t s = 0; s < n; ++s) {
    const RouteResult r =
        route_semilightpath(net, NodeId{s}, NodeId{(s + 1) % n});
    benchmark::DoNotOptimize(r.cost);
  }
  const double rebuild_seconds = rebuild_clock.seconds();

  AllPairsRouter router(net);
  Stopwatch shared_clock;
  (void)router.cost_matrix();
  const double shared_seconds = shared_clock.seconds();
  state.counters["n"] = n;
  // The rebuild loop answers n single queries (with early-exit Dijkstra);
  // the shared-build matrix answers all n² in comparable total time.
  state.counters["speedup_vs_rebuild"] =
      rebuild_seconds / std::max(shared_seconds, 1e-9);
  state.counters["matrix_us_per_query"] =
      shared_seconds * 1e6 / (static_cast<double>(n) * n);
}
BENCHMARK(BM_AllPairsMatrix)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_AllPairsSingleQuery(benchmark::State& state) {
  // Marginal cost of one more query once the router is warm.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kSeed);
  AllPairsRouter router(net);
  (void)router.cost_matrix();  // warm all trees
  std::uint32_t s = 0, t = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.cost(NodeId{s}, NodeId{t}));
    s = (s + 1) % n;
    t = (t + 3) % n;
  }
  state.counters["n"] = n;
}
BENCHMARK(BM_AllPairsSingleQuery)
    ->RangeMultiplier(4)
    ->Range(32, 512);

}  // namespace

LUMEN_BENCH_MAIN();
