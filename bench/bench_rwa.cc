// E10 (extension) — online provisioning: blocking vs offered load per
// routing policy, and the sparse-converter ablation.
//
// Two classic WDM results the semilightpath machinery lets us regenerate:
//   1. Conversion suppresses blocking: at equal load the semilightpath
//      policy blocks less than wavelength-continuous lightpath routing
//      (first-fit worst, optimal lightpath in between).
//   2. A few converters go a long way: blocking with converters at a
//      fraction of nodes (SparseConversion) approaches full conversion
//      well before every node is upgraded.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

#include <memory>

#include "obs/route_event.h"
#include "rwa/dynamic_workload.h"
#include "rwa/placement.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"

namespace {

using namespace lumen;

constexpr std::uint32_t kWavelengths = 8;
constexpr std::uint32_t kArrivals = 1500;
constexpr std::uint64_t kSeed = 2468;

WdmNetwork arpanet_full(std::shared_ptr<const ConversionModel> conv) {
  Rng rng(kSeed);
  const Topology topo = arpanet_topology();
  const Availability avail =
      full_availability(topo, kWavelengths, CostSpec::distance(10.0), rng);
  return assemble_network(topo, kWavelengths, avail, std::move(conv));
}

DynamicWorkloadConfig config_for(double load) {
  DynamicWorkloadConfig config;
  config.arrival_rate = load;
  config.mean_holding_time = 1.0;
  config.num_arrivals = kArrivals;
  config.seed = kSeed ^ 0x10adULL;
  return config;
}

void run_policy(benchmark::State& state, RoutingPolicy policy) {
  const double load = static_cast<double>(state.range(0));
  double blocking = 0.0, utilization = 0.0;
  Percentiles carried_cost(1024);
  for (auto _ : state) {
    obs::RouteEventLog events;
    SessionManager manager(
        arpanet_full(std::make_shared<UniformConversion>(0.5)), policy);
    manager.set_telemetry(&events);
    const auto result = run_dynamic_workload(manager, config_for(load));
    blocking = result.stats.blocking_rate();
    utilization = result.mean_utilization;
    for (const obs::RouteEvent& e : events.snapshot())
      if (e.outcome == "carried") carried_cost.add(e.cost);
    benchmark::DoNotOptimize(blocking);
  }
  state.counters["load_erlang"] = load;
  state.counters["blocking_pct"] = 100.0 * blocking;
  state.counters["utilization_pct"] = 100.0 * utilization;
  bench::export_percentile_counters(state, "carried_cost", carried_cost);
}

void BM_Blocking_FirstFit(benchmark::State& state) {
  run_policy(state, RoutingPolicy::kLightpathFirstFit);
}
void BM_Blocking_OptimalLightpath(benchmark::State& state) {
  run_policy(state, RoutingPolicy::kLightpathBestCost);
}
void BM_Blocking_Semilightpath(benchmark::State& state) {
  run_policy(state, RoutingPolicy::kSemilightpath);
}
BENCHMARK(BM_Blocking_FirstFit)
    ->Arg(30)->Arg(60)->Arg(90)->Arg(120)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Blocking_OptimalLightpath)
    ->Arg(30)->Arg(60)->Arg(90)->Arg(120)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Blocking_Semilightpath)
    ->Arg(30)->Arg(60)->Arg(90)->Arg(120)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

/// Sparse-converter ablation at fixed load: converters at the `pct`% of
/// nodes ranked best by betweenness centrality (rwa/placement.h — the
/// natural upgrade order for transit-heavy nodes).
void BM_Blocking_SparseConverters(benchmark::State& state) {
  const auto pct = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork probe =
      arpanet_full(std::make_shared<NoConversion>());
  const auto conv = place_converters(
      probe, pct * probe.num_nodes() / 100,
      std::make_shared<UniformConversion>(0.5),
      PlacementStrategy::kBetweenness);

  double blocking = 0.0;
  for (auto _ : state) {
    SessionManager manager(arpanet_full(conv),
                           RoutingPolicy::kSemilightpath);
    const auto result = run_dynamic_workload(manager, config_for(90.0));
    blocking = result.stats.blocking_rate();
    benchmark::DoNotOptimize(blocking);
  }
  state.counters["converter_pct"] = pct;
  state.counters["blocking_pct"] = 100.0 * blocking;
}
BENCHMARK(BM_Blocking_SparseConverters)
    ->Arg(0)->Arg(10)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

LUMEN_BENCH_MAIN();
