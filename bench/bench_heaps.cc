// E8 — heap ablation: the Theorem 1 proof plugs a Fibonacci heap into
// Dijkstra for the O(m' + n' log n') bound.  This bench measures all four
// in-tree heaps on the same auxiliary graphs to show the asymptotic choice
// versus practical constants (array heaps usually win at these sizes).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/aux_graph.h"
#include "graph/binary_heap.h"
#include "graph/dijkstra.h"
#include "graph/pairing_heap.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 5150;

template <class Heap>
void BM_DijkstraOnAux(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kSeed);
  const auto aux =
      AuxiliaryGraph::build_single_pair(net, NodeId{0}, NodeId{n / 2});
  for (auto _ : state) {
    const auto tree =
        dijkstra_with<Heap>(aux.graph(), aux.source_terminal());
    benchmark::DoNotOptimize(tree.dist.back());
  }
  state.counters["aux_nodes"] = static_cast<double>(aux.graph().num_nodes());
  state.counters["aux_links"] = static_cast<double>(aux.graph().num_links());
}
BENCHMARK(BM_DijkstraOnAux<FibHeap>)
    ->Name("BM_DijkstraOnAux/Fibonacci")
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DijkstraOnAux<BinaryHeap>)
    ->Name("BM_DijkstraOnAux/Binary")
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DijkstraOnAux<QuaternaryHeap>)
    ->Name("BM_DijkstraOnAux/Quaternary")
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DijkstraOnAux<PairingHeap>)
    ->Name("BM_DijkstraOnAux/Pairing")
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

/// Raw heap micro-bench: a Dijkstra-shaped push/decrease/pop mix.
template <class Heap>
void BM_HeapMixedOps(benchmark::State& state) {
  const auto ops = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Heap heap;
    Rng rng(kSeed);
    std::vector<typename Heap::Handle> handles;
    std::vector<double> keys;
    handles.reserve(ops);
    for (std::uint32_t i = 0; i < ops; ++i) {
      const double key = rng.next_double_in(0, 1e6);
      handles.push_back(heap.push(key, i));
      keys.push_back(key);
      if (i % 3 == 0 && i > 0) {
        const auto j = static_cast<std::uint32_t>(rng.next_below(i));
        // decrease_key on a possibly-stale handle is guarded by key check.
        if (keys[j] > 0) {
          heap.decrease_key(handles[j], keys[j] * 0.5);
          keys[j] *= 0.5;
        }
      }
      if (i % 4 == 0 && !heap.empty()) {
        const auto [key_popped, item] = heap.pop_min();
        keys[item] = -1;  // mark dead
        benchmark::DoNotOptimize(key_popped);
      }
    }
    benchmark::DoNotOptimize(heap.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * ops);
}
BENCHMARK(BM_HeapMixedOps<FibHeap>)
    ->Name("BM_HeapMixedOps/Fibonacci")
    ->Arg(100000);
BENCHMARK(BM_HeapMixedOps<BinaryHeap>)
    ->Name("BM_HeapMixedOps/Binary")
    ->Arg(100000);
BENCHMARK(BM_HeapMixedOps<QuaternaryHeap>)
    ->Name("BM_HeapMixedOps/Quaternary")
    ->Arg(100000);
BENCHMARK(BM_HeapMixedOps<PairingHeap>)
    ->Name("BM_HeapMixedOps/Pairing")
    ->Arg(100000);

}  // namespace

LUMEN_BENCH_MAIN();
