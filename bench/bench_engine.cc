// E14: build-once route-many amortization.
//
// Measures the RouteEngine against the per-request routers on the ISSUE's
// reference workload — a 100-node sparse WAN with a 16-wavelength universe
// — in three regimes:
//   * per-request rebuild (route_semilightpath / route_lightpath): every
//     query pays construction + search;
//   * engine single queries: construction amortized away, search only;
//   * engine batches (route_many) at 1/2/4 threads: the parallel fan-out
//     over the immutable flattened core.
// The single-thread amortized speedup is the acceptance gate (>= 5x on
// this workload); items_processed makes the per-route rate comparable
// across regimes.
#include <benchmark/benchmark.h>

#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/liang_shen.h"
#include "core/route_engine.h"

namespace lumen::bench {
namespace {

constexpr std::uint32_t kNodes = 100;
constexpr std::uint32_t kWavelengths = 16;
constexpr std::uint64_t kSeed = 0xe14'5eedULL;

/// The reference workload: 100-node sparse WAN (m = 3n + (n-1) links),
/// 16-λ universe with up to 8 per link, uniform conversion.
WdmNetwork engine_network() {
  Rng rng(kSeed);
  const Topology topo = random_sparse_topology(kNodes, 3 * kNodes, rng);
  const Availability avail = uniform_availability(
      topo, kWavelengths, 2, 8, CostSpec::uniform(1.0, 3.0), rng);
  return assemble_network(topo, kWavelengths, avail,
                          std::make_shared<UniformConversion>(0.3));
}

std::vector<std::pair<NodeId, NodeId>> query_mix(std::size_t count) {
  Rng rng(kSeed ^ 0x9e3779b9ULL);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    const NodeId s{static_cast<std::uint32_t>(rng.next_below(kNodes))};
    const NodeId t{static_cast<std::uint32_t>(rng.next_below(kNodes))};
    if (s != t) pairs.emplace_back(s, t);
  }
  return pairs;
}

void BM_SemilightpathPerRequestRebuild(benchmark::State& state) {
  const WdmNetwork net = engine_network();
  const auto pairs = query_mix(64);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(route_semilightpath(net, s, t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SemilightpathPerRequestRebuild)->Unit(benchmark::kMicrosecond);

void BM_SemilightpathEngine(benchmark::State& state) {
  const WdmNetwork net = engine_network();
  RouteEngine engine(net);
  const auto pairs = query_mix(64);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(engine.route_semilightpath(s, t));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["core_nodes"] =
      static_cast<double>(engine.stats().core_nodes);
  state.counters["core_links"] =
      static_cast<double>(engine.stats().core_links);
  state.counters["build_seconds"] = engine.stats().build_seconds;
}
BENCHMARK(BM_SemilightpathEngine)->Unit(benchmark::kMicrosecond);

void BM_LightpathPerRequestRebuild(benchmark::State& state) {
  const WdmNetwork net = engine_network();
  const auto pairs = query_mix(64);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(route_lightpath(net, s, t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LightpathPerRequestRebuild)->Unit(benchmark::kMicrosecond);

void BM_LightpathEngine(benchmark::State& state) {
  const WdmNetwork net = engine_network();
  RouteEngine engine(net);
  const auto pairs = query_mix(64);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(engine.route_lightpath(s, t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LightpathEngine)->Unit(benchmark::kMicrosecond);

void BM_RouteManyBatch(benchmark::State& state) {
  const WdmNetwork net = engine_network();
  RouteEngine engine(net);
  const auto pairs = query_mix(256);
  const unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.route_many(pairs, threads));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pairs.size()));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_RouteManyBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_EngineBuild(benchmark::State& state) {
  const WdmNetwork net = engine_network();
  for (auto _ : state) {
    RouteEngine engine(net);
    benchmark::DoNotOptimize(engine.stats().core_links);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineBuild)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lumen::bench

LUMEN_BENCH_MAIN();
