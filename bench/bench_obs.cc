// E16 — observability overhead: what the v2 causal-tracing stack costs.
//
// Every row is meant to be run twice — once in the default build and once
// with -DLUMEN_OBS_DISABLED=ON (the obs-off preset) — and compared:
//   engine_query        — the routing hot path (ambient CausalSpan + the
//                         registry instruments around each query) on the
//                         E16 workload: 100 nodes, 16 wavelengths
//   session_open_close  — the RWA request path: rwa.open root span, route
//                         spans, flight-recorder event mirror
//   dist_route          — a full sync protocol run with per-round spans
//   causal_span         — one span lifecycle (TLS install + seqlock emit)
//   span_emit           — the lock-free SpanBuffer ring alone
//   pump_tick           — one MetricsPump snapshot + watchdog evaluation
// The acceptance budget is <3% overhead on engine_query; the span
// micro-rows explain where the rest of the time goes.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/route_engine.h"
#include "dist/dist_router.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/slo.h"
#include "obs/span_buffer.h"
#include "obs/trace_context.h"
#include "rwa/session_manager.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 20260806;
constexpr std::uint32_t kNodes = 100;
constexpr std::uint32_t kWavelengths = 16;
constexpr std::uint32_t kMaxPerLink = 8;

WdmNetwork e16_network() {
  return bench::distributed_network(kNodes, kWavelengths, kMaxPerLink, kSeed);
}

void BM_EngineQuery_HotPath(benchmark::State& state) {
  const WdmNetwork net = e16_network();
  RouteEngine engine(net);
  Rng rng(kSeed);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 64; ++i) {
    const auto s = static_cast<std::uint32_t>(rng.next_below(kNodes));
    auto t = static_cast<std::uint32_t>(rng.next_below(kNodes));
    if (s == t) t = (t + 1) % kNodes;
    pairs.emplace_back(NodeId{s}, NodeId{t});
  }
  std::size_t i = 0;
  std::uint64_t found = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ % pairs.size()];
    const RouteResult r = engine.route_semilightpath(s, t);
    found += r.found ? 1 : 0;
    benchmark::DoNotOptimize(r.cost);
  }
  state.counters["found"] = static_cast<double>(found);
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_EngineQuery_HotPath)->Unit(benchmark::kMicrosecond);

void BM_SessionOpenClose(benchmark::State& state) {
  const WdmNetwork net = e16_network();
  SessionManager manager(net, RoutingPolicy::kSemilightpathEngine);
  Rng rng(kSeed ^ 0xbeefULL);
  for (auto _ : state) {
    const auto s = static_cast<std::uint32_t>(rng.next_below(kNodes));
    auto t = static_cast<std::uint32_t>(rng.next_below(kNodes));
    if (s == t) t = (t + 1) % kNodes;
    if (const auto id = manager.open(NodeId{s}, NodeId{t}))
      (void)manager.close(*id);
  }
  state.counters["blocked"] = static_cast<double>(manager.stats().blocked);
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_SessionOpenClose)->Unit(benchmark::kMicrosecond);

void BM_DistRoute_SpanPerRound(benchmark::State& state) {
  const WdmNetwork net = e16_network();
  for (auto _ : state) {
    const auto r =
        distributed_route_semilightpath(net, NodeId{0}, NodeId{kNodes / 2});
    benchmark::DoNotOptimize(r.cost);
  }
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_DistRoute_SpanPerRound)->Unit(benchmark::kMillisecond);

void BM_CausalSpanLifecycle(benchmark::State& state) {
  for (auto _ : state) {
    obs::CausalSpan span("bench.span");
    span.set_node(1);
    span.set_attributes(2, 3);
    benchmark::DoNotOptimize(span.trace_id());
  }
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_CausalSpanLifecycle);

void BM_SpanEmit(benchmark::State& state) {
  obs::SpanBuffer buffer;
  obs::CausalSpanRecord record{};
  record.trace_id = 7;
  record.span_id = 9;
  for (auto _ : state) {
    buffer.emit(record);
    benchmark::DoNotOptimize(buffer.total_emitted());
  }
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_SpanEmit);

void BM_PumpTick(benchmark::State& state) {
  obs::SloWatchdog watchdog;
  watchdog.add_rule(obs::SloRule::ratio("blocking", "lumen.rwa.blocked",
                                        "lumen.rwa.offered", 0.5));
  watchdog.add_rule(obs::SloRule::percentile(
      "open-p99", "lumen.rwa.open_latency_ns", 0.99, 1e9));
  obs::PumpOptions options;
  options.watchdog = &watchdog;
  obs::MetricsPump pump(obs::Registry::global(), options);
  for (auto _ : state) {
    const auto snapshot = pump.tick();
    benchmark::DoNotOptimize(snapshot.tick);
  }
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_PumpTick);

}  // namespace

LUMEN_BENCH_MAIN();
