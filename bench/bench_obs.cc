// E16 — observability overhead: what the v2 causal-tracing stack costs.
//
// Every row is meant to be run twice — once in the default build and once
// with -DLUMEN_OBS_DISABLED=ON (the obs-off preset) — and compared:
//   engine_query        — the routing hot path (ambient CausalSpan + the
//                         registry instruments around each query) on the
//                         E16 workload: 100 nodes, 16 wavelengths
//   session_open_close  — the RWA request path: rwa.open root span, route
//                         spans, flight-recorder event mirror
//   dist_route          — a full sync protocol run with per-round spans
//   causal_span         — one span lifecycle (TLS install + seqlock emit)
//   span_emit           — the lock-free SpanBuffer ring alone
//   pump_tick           — one MetricsPump snapshot + watchdog evaluation
// The acceptance budget is <3% overhead on engine_query; the span
// micro-rows explain where the rest of the time goes.
//
// The v3 rows (BENCH_9) add the dimensional and profiler costs:
// counter_increment vs labeled_counter_increment (the labeled probe must
// stay within 2x of a plain add), profiler_sample (the per-span-close
// cooperative sampling cost), and profiler_snapshot (the read side).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/route_engine.h"
#include "dist/dist_router.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/slo.h"
#include "obs/span_buffer.h"
#include "obs/trace_context.h"
#include "obs/wire/wire_decoder.h"
#include "obs/wire/wire_encoder.h"
#include "obs/wire/wire_transport.h"
#include "rwa/session_manager.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 20260806;
constexpr std::uint32_t kNodes = 100;
constexpr std::uint32_t kWavelengths = 16;
constexpr std::uint32_t kMaxPerLink = 8;

WdmNetwork e16_network() {
  return bench::distributed_network(kNodes, kWavelengths, kMaxPerLink, kSeed);
}

void BM_EngineQuery_HotPath(benchmark::State& state) {
  const WdmNetwork net = e16_network();
  RouteEngine engine(net);
  Rng rng(kSeed);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 64; ++i) {
    const auto s = static_cast<std::uint32_t>(rng.next_below(kNodes));
    auto t = static_cast<std::uint32_t>(rng.next_below(kNodes));
    if (s == t) t = (t + 1) % kNodes;
    pairs.emplace_back(NodeId{s}, NodeId{t});
  }
  std::size_t i = 0;
  std::uint64_t found = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ % pairs.size()];
    const RouteResult r = engine.route_semilightpath(s, t);
    found += r.found ? 1 : 0;
    benchmark::DoNotOptimize(r.cost);
  }
  state.counters["found"] = static_cast<double>(found);
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_EngineQuery_HotPath)->Unit(benchmark::kMicrosecond);

void BM_SessionOpenClose(benchmark::State& state) {
  const WdmNetwork net = e16_network();
  SessionManager manager(net, RoutingPolicy::kSemilightpathEngine);
  Rng rng(kSeed ^ 0xbeefULL);
  for (auto _ : state) {
    const auto s = static_cast<std::uint32_t>(rng.next_below(kNodes));
    auto t = static_cast<std::uint32_t>(rng.next_below(kNodes));
    if (s == t) t = (t + 1) % kNodes;
    if (const auto id = manager.open(NodeId{s}, NodeId{t}))
      (void)manager.close(*id);
  }
  state.counters["blocked"] = static_cast<double>(manager.stats().blocked);
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_SessionOpenClose)->Unit(benchmark::kMicrosecond);

void BM_DistRoute_SpanPerRound(benchmark::State& state) {
  const WdmNetwork net = e16_network();
  for (auto _ : state) {
    const auto r =
        distributed_route_semilightpath(net, NodeId{0}, NodeId{kNodes / 2});
    benchmark::DoNotOptimize(r.cost);
  }
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_DistRoute_SpanPerRound)->Unit(benchmark::kMillisecond);

void BM_CausalSpanLifecycle(benchmark::State& state) {
  for (auto _ : state) {
    obs::CausalSpan span("bench.span");
    span.set_node(1);
    span.set_attributes(2, 3);
    benchmark::DoNotOptimize(span.trace_id());
  }
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_CausalSpanLifecycle);

void BM_SpanEmit(benchmark::State& state) {
  obs::SpanBuffer buffer;
  obs::CausalSpanRecord record{};
  record.trace_id = 7;
  record.span_id = 9;
  for (auto _ : state) {
    buffer.emit(record);
    benchmark::DoNotOptimize(buffer.total_emitted());
  }
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_SpanEmit);

// --- dimensional instruments (obs v3) ----------------------------------
// The BENCH_9 gate: a labeled child increment (lock-free family probe +
// atomic add) must stay within 2x of the unlabeled counter add.

void BM_CounterIncrement(benchmark::State& state) {
  obs::Counter& counter =
      obs::Registry::global().counter("lumen.bench.plain_counter");
  for (auto _ : state) {
    counter.add();
    benchmark::DoNotOptimize(&counter);
  }
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_CounterIncrement);

void BM_LabeledCounterIncrement(benchmark::State& state) {
  obs::LabeledFamily<obs::Counter>& family =
      obs::Registry::global().labeled_counter("lumen.bench.labeled_counter");
  const obs::TagSet tags = obs::TagSet{}.tenant(3).shard(1);
  for (auto _ : state) {
    family.at(tags).add();
    benchmark::DoNotOptimize(&family);
  }
  state.counters["children"] = static_cast<double>(family.size());
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_LabeledCounterIncrement);

// --- always-on profiler -------------------------------------------------
// One cooperative sample boundary (TLS stack push/pop + every period-th
// close writing a seqlock slot); this is the incremental cost the
// profiler adds to every ambient CausalSpan close.

void BM_ProfilerSample(benchmark::State& state) {
  obs::Profiler profiler;
  for (auto _ : state) {
    profiler.on_span_open("bench.stage");
    profiler.on_span_close(1000);
  }
  state.counters["samples"] = static_cast<double>(profiler.total_samples());
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_ProfilerSample);

void BM_ProfilerSnapshot(benchmark::State& state) {
  obs::Profiler profiler(1024, 1);
  for (int i = 0; i < 1024; ++i) {
    profiler.on_span_open("bench.outer");
    profiler.on_span_open(i % 2 == 0 ? "bench.a" : "bench.b");
    profiler.on_span_close(500);
    profiler.on_span_close(1200);
  }
  for (auto _ : state) {
    const obs::ProfileSnapshot snapshot = profiler.snapshot();
    benchmark::DoNotOptimize(snapshot.entries.size());
  }
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_ProfilerSnapshot);

void BM_PumpTick(benchmark::State& state) {
  obs::SloWatchdog watchdog;
  watchdog.add_rule(obs::SloRule::ratio("blocking", "lumen.rwa.blocked",
                                        "lumen.rwa.offered", 0.5));
  watchdog.add_rule(obs::SloRule::percentile(
      "open-p99", "lumen.rwa.open_latency_ns", 0.99, 1e9));
  obs::PumpOptions options;
  options.watchdog = &watchdog;
  obs::MetricsPump pump(obs::Registry::global(), options);
  for (auto _ : state) {
    const auto snapshot = pump.tick();
    benchmark::DoNotOptimize(snapshot.tick);
  }
  state.counters["obs_enabled"] = LUMEN_OBS_ENABLED;
}
BENCHMARK(BM_PumpTick);

// --- wire telemetry codec (obs/wire) -----------------------------------
// Encode/decode throughput of the binary export path; unlike the rows
// above these run identical code in both build modes (the codec has no
// disabled stub), so obs-off numbers should match the default build.

obs::PumpSnapshot wire_bench_snapshot() {
  obs::PumpSnapshot snapshot;
  snapshot.tick = 100;
  snapshot.uptime_seconds = 100.0;
  for (int i = 0; i < 32; ++i) {
    const std::string name = "lumen.bench.counter_" + std::to_string(i);
    snapshot.counters.emplace_back(name, static_cast<std::uint64_t>(i) * 997);
    snapshot.counter_deltas.emplace_back(name, static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < 8; ++i)
    snapshot.gauges.emplace_back("lumen.bench.gauge_" + std::to_string(i),
                                 0.125 * i);
  obs::HistogramSummary summary;
  summary.count = 4096;
  summary.mean = 2.5e-6;
  summary.min = 1e-7;
  summary.max = 9e-6;
  summary.p50 = 2e-6;
  summary.p90 = 7e-6;
  summary.p99 = 8.5e-6;
  for (int i = 0; i < 4; ++i)
    snapshot.histograms.emplace_back("lumen.bench.hist_" + std::to_string(i),
                                     summary);
  return snapshot;
}

void BM_WireEncodeSnapshot(benchmark::State& state) {
  obs::wire::LoopbackTransport transport;
  obs::wire::WireExporter exporter(transport);
  const obs::PumpSnapshot snapshot = wire_bench_snapshot();
  for (auto _ : state) {
    exporter.export_snapshot(snapshot);
    transport.clear();
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(exporter.stats().bytes_sent));
  state.counters["records_per_snapshot"] =
      static_cast<double>(exporter.stats().records_sent) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_WireEncodeSnapshot)->Unit(benchmark::kMicrosecond);

void BM_WireDecodeSnapshot(benchmark::State& state) {
  obs::wire::LoopbackTransport transport;
  obs::wire::WireExporter exporter(transport);
  exporter.export_snapshot(wire_bench_snapshot());
  std::int64_t bytes = 0;
  obs::wire::WireDecoder decoder;
  for (auto _ : state) {
    for (const auto& frame : transport.frames()) {
      benchmark::DoNotOptimize(decoder.decode_frame(frame));
      bytes += static_cast<std::int64_t>(frame.size());
    }
    benchmark::DoNotOptimize(decoder.take_snapshots());
  }
  state.SetBytesProcessed(bytes);
  state.counters["rejected"] =
      static_cast<double>(decoder.stats().frames_rejected);
}
BENCHMARK(BM_WireDecodeSnapshot)->Unit(benchmark::kMicrosecond);

void BM_WireDecodeMalformed(benchmark::State& state) {
  // Worst-case collector input: frames that fail validation at random
  // depths.  Rejection must stay cheap — a hostile sender may not cost
  // the collector more than a well-behaved one.
  obs::wire::LoopbackTransport transport;
  obs::wire::WireExporter exporter(transport);
  exporter.export_snapshot(wire_bench_snapshot());
  Rng rng(kSeed);
  std::vector<std::vector<std::byte>> mutated;
  for (int i = 0; i < 64; ++i) {
    std::vector<std::byte> frame = transport.frames()[0];
    for (int flip = 0; flip < 4; ++flip)
      frame[rng.next_below(frame.size())] =
          static_cast<std::byte>(rng.next_below(256));
    mutated.push_back(std::move(frame));
  }
  obs::wire::WireDecoder decoder;
  std::int64_t bytes = 0;
  for (auto _ : state) {
    for (const auto& frame : mutated) {
      benchmark::DoNotOptimize(decoder.decode_frame(frame));
      bytes += static_cast<std::int64_t>(frame.size());
    }
    benchmark::DoNotOptimize(decoder.take_snapshots());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_WireDecodeMalformed)->Unit(benchmark::kMicrosecond);

}  // namespace

LUMEN_BENCH_MAIN();
