// E12 (extension) — graph representation ablation: adjacency-list Digraph
// vs packed CSR for the Dijkstra phase of Theorem 1.
//
// The auxiliary graph is built once per query but searched hot; CSR packs
// the out-links contiguously.  Counters report the conversion cost and
// the speedup so the trade-off (snapshot cost vs traversal locality) is
// visible per size.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/aux_graph.h"
#include "graph/csr.h"
#include "util/stopwatch.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 86420;

void BM_DijkstraAdjList(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kSeed);
  const auto aux =
      AuxiliaryGraph::build_single_pair(net, NodeId{0}, NodeId{n / 2});
  for (auto _ : state) {
    const auto tree = dijkstra(aux.graph(), aux.source_terminal());
    benchmark::DoNotOptimize(tree.dist.back());
  }
  state.counters["aux_links"] = aux.graph().num_links();
}
BENCHMARK(BM_DijkstraAdjList)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_DijkstraCsr(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kSeed);
  const auto aux =
      AuxiliaryGraph::build_single_pair(net, NodeId{0}, NodeId{n / 2});

  Stopwatch snapshot_clock;
  const CsrDigraph csr(aux.graph());
  const double snapshot_ms = snapshot_clock.millis();

  // Verify equivalence once.
  {
    const auto a = dijkstra(aux.graph(), aux.source_terminal());
    const auto b = dijkstra_csr(csr, aux.source_terminal());
    for (std::uint32_t v = 0; v < csr.num_nodes(); ++v) {
      if (a.dist[v] != b.dist[v]) {
        state.SkipWithError("CSR Dijkstra disagrees with adjacency-list");
        return;
      }
    }
  }

  for (auto _ : state) {
    const auto tree = dijkstra_csr(csr, aux.source_terminal());
    benchmark::DoNotOptimize(tree.dist.back());
  }
  state.counters["snapshot_ms"] = snapshot_ms;
}
BENCHMARK(BM_DijkstraCsr)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LUMEN_BENCH_MAIN();
