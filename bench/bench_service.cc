// E20 — sharded routing-service churn macro-benchmark.
//
// Steady-state Poisson churn against svc::RoutingService: each worker
// thread drives an independent virtual clock with exponential
// inter-arrival and holding times (no sleeps — the virtual clock only
// orders opens against departures), opening sessions through the full
// admission path (quota check, shard route with CH+ALT, two-phase slot
// commit, cross-shard broadcast) and closing them when their holding
// time expires.  The headline counters are route_reserve_per_min (opens
// — each one is a route + reserve attempt; the PR gate demands >= 1M on
// one machine) and admit_ns_p99 (wall-clock admission latency, the
// quantity the svc-admit-p99 SLO rule watches).
//
// Sweeps thread count x shard count on a 64-node sparse WAN.  Every
// seed is fixed, so two runs of the same binary produce the same
// arrival tape; admitted/blocked splits are deterministic for the
// single-threaded configurations.
//
// Reproduce: ./build/bench/bench_service --json out.json
//
// --tenants N (default 2) sets the tenant population; arrivals then
// draw their tenant from a Zipf(s=1) distribution over the N ids, so
// tenant 0 dominates the offered load — the skew that makes the
// per-tenant dimensional telemetry (obs v3) worth watching.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "svc/service.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 8808;
/// Tenant population (--tenants N); arrivals sample tenants Zipf(s=1).
std::uint32_t g_num_tenants = 2;

/// Zipf(s=1) sampler over tenant ids 0..n-1: P(k) ∝ 1/(k+1), sampled by
/// CDF inversion so one next_double() per arrival picks the tenant.
struct ZipfTenants {
  std::vector<double> cdf;
  explicit ZipfTenants(std::uint32_t n) {
    cdf.resize(n);
    double total = 0.0;
    for (std::uint32_t k = 0; k < n; ++k) total += 1.0 / (k + 1);
    double acc = 0.0;
    for (std::uint32_t k = 0; k < n; ++k) {
      acc += 1.0 / ((k + 1) * total);
      cdf[k] = acc;
    }
    cdf.back() = 1.0;  // guard CDF rounding at the tail
  }
  [[nodiscard]] svc::TenantId sample(Rng& rng) const {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return svc::TenantId{static_cast<std::uint32_t>(
        std::min<std::size_t>(
            static_cast<std::size_t>(it - cdf.begin()), cdf.size() - 1))};
  }
};
// Per-worker offered load: arrival rate x mean holding time ~ 24
// concurrent sessions in steady state, enough to keep slot contention
// and occasional blocking in the mix without collapsing the network.
constexpr double kArrivalRate = 24.0;
constexpr double kMeanHolding = 1.0;

/// One worker's persistent churn state: virtual clock, pending
/// departures, and the sample of wall-clock admit latencies.
struct Worker {
  Rng rng{0};
  double clock = 0.0;
  double next_arrival = 0.0;
  // (virtual departure time, session) — earliest departure first.
  std::priority_queue<std::pair<double, std::uint64_t>,
                      std::vector<std::pair<double, std::uint64_t>>,
                      std::greater<>>
      departures;
  std::uint64_t opens = 0;
  std::uint64_t closes = 0;
  std::uint64_t admitted = 0;
  std::vector<double> admit_ns;
};

double exponential(Rng& rng, double mean) {
  // next_double() is in [0, 1); flip so the log argument stays positive.
  return -mean * std::log(1.0 - rng.next_double());
}

/// Runs `events` churn events on one worker: the next event is whichever
/// of (next Poisson arrival, earliest departure) comes first in virtual
/// time.  Every arrival is a full route+reserve attempt, timed
/// wall-clock around svc::RoutingService::open.
void churn_events(svc::RoutingService& service, Worker& worker,
                  const ZipfTenants& tenants, std::uint32_t num_nodes,
                  std::uint32_t events) {
  for (std::uint32_t i = 0; i < events; ++i) {
    if (!worker.departures.empty() &&
        worker.departures.top().first <= worker.next_arrival) {
      const auto [when, bits] = worker.departures.top();
      worker.departures.pop();
      worker.clock = when;
      if (service.close(svc::SvcSessionId::from_bits(bits))) ++worker.closes;
      continue;
    }
    worker.clock = worker.next_arrival;
    worker.next_arrival += exponential(worker.rng, 1.0 / kArrivalRate);
    const auto s = NodeId{
        static_cast<std::uint32_t>(worker.rng.next_below(num_nodes))};
    auto t = NodeId{
        static_cast<std::uint32_t>(worker.rng.next_below(num_nodes))};
    if (s == t) t = NodeId{(t.value() + 1) % num_nodes};

    const svc::TenantId tenant = tenants.sample(worker.rng);
    const auto begin = std::chrono::steady_clock::now();
    const svc::AdmitTicket ticket = service.open(tenant, s, t);
    const auto end = std::chrono::steady_clock::now();
    worker.admit_ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count()));
    ++worker.opens;
    if (ticket.status == svc::AdmitStatus::kAdmitted) {
      ++worker.admitted;
      worker.departures.emplace(
          worker.clock + exponential(worker.rng, kMeanHolding),
          ticket.id.bits());
    }
  }
}

/// The macro-benchmark: threads x shards churn over a 64-node WAN.  The
/// service (and its CH+ALT engine replicas) is built once per run;
/// every iteration continues the steady-state churn, so setup cost
/// never pollutes the throughput numbers.
void run_churn(benchmark::State& state, std::uint32_t threads,
               std::uint32_t shards, std::uint32_t nodes,
               std::uint32_t events_per_thread) {
  const WdmNetwork net = bench::comparison_network(nodes, kSeed);

  svc::ServiceOptions options;
  options.num_shards = shards;
  options.num_tenants = g_num_tenants;
  options.engine.build_hierarchy = true;
  options.query.goal_directed = true;
  options.query.use_hierarchy = true;
  svc::RoutingService service(net, options);

  std::vector<Worker> workers(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    workers[w].rng = Rng(kSeed * 7919 + w);
    workers[w].next_arrival =
        exponential(workers[w].rng, 1.0 / kArrivalRate);
  }

  const ZipfTenants tenants(g_num_tenants);
  double busy_seconds = 0.0;
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    if (threads == 1) {
      churn_events(service, workers[0], tenants, net.num_nodes(),
                   events_per_thread);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::uint32_t w = 0; w < threads; ++w) {
        pool.emplace_back([&, w] {
          churn_events(service, workers[w], tenants, net.num_nodes(),
                       events_per_thread);
        });
      }
      for (std::thread& thread : pool) thread.join();
    }
    busy_seconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - begin)
                        .count();
  }

  std::uint64_t opens = 0, closes = 0, admitted = 0;
  Percentiles admit_ns(4096);
  for (Worker& worker : workers) {
    opens += worker.opens;
    closes += worker.closes;
    admitted += worker.admitted;
    for (const double ns : worker.admit_ns) admit_ns.add(ns);
  }
  const svc::ServiceStats stats = service.stats();

  state.SetItemsProcessed(static_cast<std::int64_t>(opens + closes));
  state.counters["route_reserve_per_min"] =
      busy_seconds > 0.0 ? 60.0 * static_cast<double>(opens) / busy_seconds
                         : 0.0;
  state.counters["ops_per_min"] =
      busy_seconds > 0.0
          ? 60.0 * static_cast<double>(opens + closes) / busy_seconds
          : 0.0;
  state.counters["admitted_pct"] =
      opens > 0 ? 100.0 * static_cast<double>(admitted) /
                      static_cast<double>(opens)
                : 0.0;
  state.counters["commit_conflicts"] =
      static_cast<double>(stats.commit_conflicts);
  state.counters["resync_patches"] =
      static_cast<double>(stats.cross_shard_patches);
  state.counters["active_at_end"] = static_cast<double>(stats.active);
  bench::export_percentile_counters(state, "admit_ns", admit_ns);
  // The svc-admit-p99 SLO rule (svc::RoutingService::default_slo_rules)
  // watches the same admission path through the obs histogram; surface
  // whether this run would have tripped the 5 ms budget.
  state.counters["slo_p99_budget_ns"] = 5e6;
  state.counters["slo_p99_ok"] = admit_ns.p99() <= 5e6 ? 1.0 : 0.0;
}

void BM_ServiceChurn(benchmark::State& state) {
  run_churn(state, static_cast<std::uint32_t>(state.range(0)),
            static_cast<std::uint32_t>(state.range(1)), /*nodes=*/64,
            /*events_per_thread=*/4000);
}
BENCHMARK(BM_ServiceChurn)
    ->ArgNames({"threads", "shards"})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({4, 4})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Tiny configuration for the tier-1 smoke test: a 16-node net, one
// worker, a few hundred events — proves the binary links and the whole
// admission path runs in every build configuration in well under a
// second.  Run with --benchmark_filter=Smoke --benchmark_min_time=0.01.
void BM_ServiceChurnSmoke(benchmark::State& state) {
  run_churn(state, /*threads=*/1, /*shards=*/2, /*nodes=*/16,
            /*events_per_thread=*/300);
}
BENCHMARK(BM_ServiceChurnSmoke)->Unit(benchmark::kMillisecond);

}  // namespace

// LUMEN_BENCH_MAIN() with a --tenants N front-end: the flag is consumed
// here (google benchmark would reject it) before the usual --json
// rewrite and benchmark::Initialize.
int main(int argc, char** argv) {
  std::vector<char*> kept;
  kept.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n >= 1) g_num_tenants = static_cast<std::uint32_t>(n);
      continue;
    }
    kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  char** lumen_argv = lumen::bench::apply_json_flag(kept_argc, kept.data());
  benchmark::Initialize(&kept_argc, lumen_argv);
  if (benchmark::ReportUnrecognizedArguments(kept_argc, lumen_argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
