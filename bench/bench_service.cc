// E20 — sharded routing-service churn macro-benchmark.
//
// Steady-state Poisson churn against svc::RoutingService: each worker
// thread drives an independent virtual clock with exponential
// inter-arrival and holding times (no sleeps — the virtual clock only
// orders opens against departures), opening sessions through the full
// admission path (quota check, shard route with CH+ALT, two-phase slot
// commit, cross-shard broadcast) and closing them when their holding
// time expires.  The headline counters are route_reserve_per_min (opens
// — each one is a route + reserve attempt; the PR gate demands >= 1M on
// one machine) and admit_ns_p99 (wall-clock admission latency, the
// quantity the svc-admit-p99 SLO rule watches).
//
// Sweeps thread count x shard count on a 64-node sparse WAN.  Every
// seed is fixed, so two runs of the same binary produce the same
// arrival tape; admitted/blocked splits are deterministic for the
// single-threaded configurations.
//
// Reproduce: ./build/bench/bench_service --json out.json
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "svc/service.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 8808;
// Per-worker offered load: arrival rate x mean holding time ~ 24
// concurrent sessions in steady state, enough to keep slot contention
// and occasional blocking in the mix without collapsing the network.
constexpr double kArrivalRate = 24.0;
constexpr double kMeanHolding = 1.0;

/// One worker's persistent churn state: virtual clock, pending
/// departures, and the sample of wall-clock admit latencies.
struct Worker {
  Rng rng{0};
  double clock = 0.0;
  double next_arrival = 0.0;
  // (virtual departure time, session) — earliest departure first.
  std::priority_queue<std::pair<double, std::uint64_t>,
                      std::vector<std::pair<double, std::uint64_t>>,
                      std::greater<>>
      departures;
  std::uint64_t opens = 0;
  std::uint64_t closes = 0;
  std::uint64_t admitted = 0;
  std::vector<double> admit_ns;
};

double exponential(Rng& rng, double mean) {
  // next_double() is in [0, 1); flip so the log argument stays positive.
  return -mean * std::log(1.0 - rng.next_double());
}

/// Runs `events` churn events on one worker: the next event is whichever
/// of (next Poisson arrival, earliest departure) comes first in virtual
/// time.  Every arrival is a full route+reserve attempt, timed
/// wall-clock around svc::RoutingService::open.
void churn_events(svc::RoutingService& service, Worker& worker,
                  svc::TenantId tenant, std::uint32_t num_nodes,
                  std::uint32_t events) {
  for (std::uint32_t i = 0; i < events; ++i) {
    if (!worker.departures.empty() &&
        worker.departures.top().first <= worker.next_arrival) {
      const auto [when, bits] = worker.departures.top();
      worker.departures.pop();
      worker.clock = when;
      if (service.close(svc::SvcSessionId::from_bits(bits))) ++worker.closes;
      continue;
    }
    worker.clock = worker.next_arrival;
    worker.next_arrival += exponential(worker.rng, 1.0 / kArrivalRate);
    const auto s = NodeId{
        static_cast<std::uint32_t>(worker.rng.next_below(num_nodes))};
    auto t = NodeId{
        static_cast<std::uint32_t>(worker.rng.next_below(num_nodes))};
    if (s == t) t = NodeId{(t.value() + 1) % num_nodes};

    const auto begin = std::chrono::steady_clock::now();
    const svc::AdmitTicket ticket = service.open(tenant, s, t);
    const auto end = std::chrono::steady_clock::now();
    worker.admit_ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count()));
    ++worker.opens;
    if (ticket.status == svc::AdmitStatus::kAdmitted) {
      ++worker.admitted;
      worker.departures.emplace(
          worker.clock + exponential(worker.rng, kMeanHolding),
          ticket.id.bits());
    }
  }
}

/// The macro-benchmark: threads x shards churn over a 64-node WAN.  The
/// service (and its CH+ALT engine replicas) is built once per run;
/// every iteration continues the steady-state churn, so setup cost
/// never pollutes the throughput numbers.
void run_churn(benchmark::State& state, std::uint32_t threads,
               std::uint32_t shards, std::uint32_t nodes,
               std::uint32_t events_per_thread) {
  const WdmNetwork net = bench::comparison_network(nodes, kSeed);

  svc::ServiceOptions options;
  options.num_shards = shards;
  options.num_tenants = 2;
  options.engine.build_hierarchy = true;
  options.query.goal_directed = true;
  options.query.use_hierarchy = true;
  svc::RoutingService service(net, options);

  std::vector<Worker> workers(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    workers[w].rng = Rng(kSeed * 7919 + w);
    workers[w].next_arrival =
        exponential(workers[w].rng, 1.0 / kArrivalRate);
  }

  double busy_seconds = 0.0;
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    if (threads == 1) {
      churn_events(service, workers[0], svc::TenantId{0}, net.num_nodes(),
                   events_per_thread);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::uint32_t w = 0; w < threads; ++w) {
        pool.emplace_back([&, w] {
          churn_events(service, workers[w], svc::TenantId{w % 2},
                       net.num_nodes(), events_per_thread);
        });
      }
      for (std::thread& thread : pool) thread.join();
    }
    busy_seconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - begin)
                        .count();
  }

  std::uint64_t opens = 0, closes = 0, admitted = 0;
  Percentiles admit_ns(4096);
  for (Worker& worker : workers) {
    opens += worker.opens;
    closes += worker.closes;
    admitted += worker.admitted;
    for (const double ns : worker.admit_ns) admit_ns.add(ns);
  }
  const svc::ServiceStats stats = service.stats();

  state.SetItemsProcessed(static_cast<std::int64_t>(opens + closes));
  state.counters["route_reserve_per_min"] =
      busy_seconds > 0.0 ? 60.0 * static_cast<double>(opens) / busy_seconds
                         : 0.0;
  state.counters["ops_per_min"] =
      busy_seconds > 0.0
          ? 60.0 * static_cast<double>(opens + closes) / busy_seconds
          : 0.0;
  state.counters["admitted_pct"] =
      opens > 0 ? 100.0 * static_cast<double>(admitted) /
                      static_cast<double>(opens)
                : 0.0;
  state.counters["commit_conflicts"] =
      static_cast<double>(stats.commit_conflicts);
  state.counters["resync_patches"] =
      static_cast<double>(stats.cross_shard_patches);
  state.counters["active_at_end"] = static_cast<double>(stats.active);
  bench::export_percentile_counters(state, "admit_ns", admit_ns);
  // The svc-admit-p99 SLO rule (svc::RoutingService::default_slo_rules)
  // watches the same admission path through the obs histogram; surface
  // whether this run would have tripped the 5 ms budget.
  state.counters["slo_p99_budget_ns"] = 5e6;
  state.counters["slo_p99_ok"] = admit_ns.p99() <= 5e6 ? 1.0 : 0.0;
}

void BM_ServiceChurn(benchmark::State& state) {
  run_churn(state, static_cast<std::uint32_t>(state.range(0)),
            static_cast<std::uint32_t>(state.range(1)), /*nodes=*/64,
            /*events_per_thread=*/4000);
}
BENCHMARK(BM_ServiceChurn)
    ->ArgNames({"threads", "shards"})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({4, 4})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Tiny configuration for the tier-1 smoke test: a 16-node net, one
// worker, a few hundred events — proves the binary links and the whole
// admission path runs in every build configuration in well under a
// second.  Run with --benchmark_filter=Smoke --benchmark_min_time=0.01.
void BM_ServiceChurnSmoke(benchmark::State& state) {
  run_churn(state, /*threads=*/1, /*shards=*/2, /*nodes=*/16,
            /*events_per_thread=*/300);
}
BENCHMARK(BM_ServiceChurnSmoke)->Unit(benchmark::kMillisecond);

}  // namespace

LUMEN_BENCH_MAIN();
