// E22 — PHAST-style batched one-to-all sweeps over the contraction
// hierarchy.
//
// A one-to-all query used to mean n point queries (or one flat full
// Dijkstra); the sweep engine answers it with one upward search plus one
// linear descending-rank scan over the level-ordered reversed downward
// CSR, and many_to_all packs up to kMaxLanes sources through that scan
// SIMD-style.  The series here capture the three claims BENCH_10.json
// gates:
//
//   * BM_SweepOneToAll vs BM_RepeatedChQueries — one bulk_costs row
//     versus n repeated CH point queries from the same source (the
//     workload Corollary 1 consumers actually issue).  Gate: >= 5x at
//     n = 4096.
//   * BM_SweepLanes — lane-width ablation (1/4/8 sources per sweep);
//     the per-source counter shows the marginal cost of an extra lane
//     riding an already-paid scan.
//   * BM_CostMatrixTrees vs BM_CostMatrixSweeps — AllPairsRouter's full
//     n x n matrix end-to-end (construction included): per-source
//     shortest-path trees on the auxiliary graph versus the lane-packed
//     sweep path behind cost_matrix(threads).
//
// The instance is the E19 metro/backbone WAN (hierarchical_topology) at
// the comparison_network wavelength regime — rings contract away and
// leave a hub-sized core, the regime the hierarchy exists for.  Every
// series verifies in-bench that sampled sweep rows are bit-identical to
// the engine's own flat point queries.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/all_pairs.h"
#include "core/route_engine.h"
#include "graph/hierarchy.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 24680;

constexpr RouteEngine::Options kSweepEngine{.num_landmarks = 0,
                                            .build_hierarchy = true};
constexpr RouteEngine::QueryOptions kCh{.use_hierarchy = true};

/// Metro/backbone WAN at the comparison_network wavelength regime (the
/// E19 instance): sqrt(n) hubs on a chorded ring, each serving a
/// (sqrt(n)-1)-node access ring; k = ceil(log2 n), k0 <= 4.
WdmNetwork sweep_network(std::uint32_t n, std::uint64_t seed) {
  const auto side = static_cast<std::uint32_t>(
      std::round(std::sqrt(static_cast<double>(n))));
  const auto k = static_cast<std::uint32_t>(
      std::ceil(std::log2(static_cast<double>(n))));
  Rng rng(seed + n);
  const Topology topo = hierarchical_topology(side, side - 1, side / 2, rng);
  const Availability avail = uniform_availability(
      topo, k, 1, std::min(k, 4u), CostSpec::uniform(1.0, 3.0), rng);
  return assemble_network(topo, k, avail,
                          std::make_shared<UniformConversion>(0.3));
}

/// Bit-identity spot check: 16 scattered targets of `row` against the
/// engine's flat point queries.  SkipWithError on any mismatch.
bool verify_row(benchmark::State& state, const RouteEngine& engine,
                NodeId source, const std::vector<double>& row) {
  SearchScratch scratch;
  Rng rng(kSeed ^ 0x5afeULL);
  for (int probe = 0; probe < 16; ++probe) {
    const NodeId t{
        static_cast<std::uint32_t>(rng.next_below(engine.num_nodes()))};
    if (t == source) continue;
    const RouteResult point = engine.route_semilightpath(source, t, scratch);
    const double expected = point.found ? point.cost : kInfiniteCost;
    if (row[t.value()] != expected) {
      state.SkipWithError("sweep row disagrees with flat point query");
      return false;
    }
  }
  return true;
}

void BM_SweepOneToAll(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = sweep_network(n, kSeed);
  RouteEngine engine(net, kSweepEngine);
  const std::vector<NodeId> source{NodeId{n / 2}};
  if (!verify_row(state, engine, source[0],
                  engine.bulk_costs(source, 1)[0])) {
    return;
  }
  for (auto _ : state) {
    const auto rows = engine.bulk_costs(source, 1);
    benchmark::DoNotOptimize(rows[0][n - 1]);
  }
  state.counters["targets"] = static_cast<double>(net.num_nodes());
}
BENCHMARK(BM_SweepOneToAll)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_RepeatedChQueries(benchmark::State& state) {
  // The pre-sweep way to fill one source row: n CH point queries.  One
  // benchmark iteration covers the same work as one BM_SweepOneToAll
  // iteration, so real_time ratios read directly as speedups.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = sweep_network(n, kSeed);
  RouteEngine engine(net, kSweepEngine);
  const NodeId source{n / 2};
  SearchScratch scratch;
  for (auto _ : state) {
    double last = 0.0;
    for (std::uint32_t t = 0; t < n; ++t) {
      const RouteResult r =
          engine.route_semilightpath(source, NodeId{t}, scratch, kCh);
      last = r.cost;
    }
    benchmark::DoNotOptimize(last);
  }
  state.counters["targets"] = static_cast<double>(net.num_nodes());
}
BENCHMARK(BM_RepeatedChQueries)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_SweepLanes(benchmark::State& state) {
  // Lane-width ablation at fixed n: one many_to_all sweep carrying
  // `lanes` sources.  per_source_us is the number the consumers feel.
  const auto lanes = static_cast<std::uint32_t>(state.range(0));
  constexpr std::uint32_t kNodes = 1024;
  const WdmNetwork net = sweep_network(kNodes, kSeed);
  RouteEngine engine(net, kSweepEngine);
  std::vector<NodeId> sources;
  Rng rng(kSeed ^ 0x1a2eULL);
  while (sources.size() < lanes) {
    const NodeId s{static_cast<std::uint32_t>(rng.next_below(kNodes))};
    bool seen = false;
    for (const NodeId prior : sources) seen = seen || prior == s;
    if (!seen) sources.push_back(s);
  }
  {
    const auto rows = engine.bulk_costs(sources, 1);
    for (std::size_t l = 0; l < sources.size(); ++l) {
      if (!verify_row(state, engine, sources[l], rows[l])) return;
    }
  }
  for (auto _ : state) {
    const auto rows = engine.bulk_costs(sources, 1);
    benchmark::DoNotOptimize(rows[lanes - 1][kNodes - 1]);
  }
  state.counters["per_source_us"] = benchmark::Counter(
      static_cast<double>(lanes),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}
BENCHMARK(BM_SweepLanes)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_CostMatrixTrees(benchmark::State& state) {
  // End-to-end n x n matrix the pre-sweep way: fresh router, one
  // shortest-path tree per source on the all-pairs auxiliary graph.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = sweep_network(n, kSeed);
  for (auto _ : state) {
    AllPairsRouter router(net);
    const auto matrix = router.cost_matrix();
    benchmark::DoNotOptimize(matrix[0][n - 1]);
  }
}
BENCHMARK(BM_CostMatrixTrees)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_CostMatrixSweeps(benchmark::State& state) {
  // Same matrix via cost_matrix(threads): fresh router, lazily-built
  // sweep engine (hierarchy construction included), lane-packed sweeps
  // drained by `threads` workers.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  const WdmNetwork net = sweep_network(n, kSeed);
  {
    // Parity check once per shape: sweeps vs trees, sampled entries.
    AllPairsRouter trees(net);
    AllPairsRouter sweeps(net);
    const auto expected = trees.cost_matrix();
    const auto got = sweeps.cost_matrix(threads);
    Rng rng(kSeed ^ 0x3a7cULL);
    for (int probe = 0; probe < 32; ++probe) {
      const auto s = static_cast<std::uint32_t>(rng.next_below(n));
      const auto t = static_cast<std::uint32_t>(rng.next_below(n));
      const double want = expected[s][t];
      const bool match = want == kInfiniteCost
                             ? got[s][t] == kInfiniteCost
                             : std::abs(got[s][t] - want) <= 1e-9;
      if (!match) {
        state.SkipWithError("sweep matrix disagrees with tree matrix");
        return;
      }
    }
  }
  for (auto _ : state) {
    AllPairsRouter router(net);
    const auto matrix = router.cost_matrix(threads);
    benchmark::DoNotOptimize(matrix[0][n - 1]);
  }
}
BENCHMARK(BM_CostMatrixSweeps)
    ->ArgsProduct({{64, 256, 1024}, {2, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

LUMEN_BENCH_MAIN();
