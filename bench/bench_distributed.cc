// E5 / E9 — Theorems 3 & 5, Corollary 2: the distributed algorithm's
// communication (messages) and time (rounds) complexities.
//
// Counters per row:
//   messages, km            — Theorem 3 claims messages = O(km)
//   messages_per_km         — should stay bounded by a small constant
//   rounds, kn              — Theorem 3 claims rounds = O(kn); on
//                             small-diameter WANs rounds track the hop
//                             diameter, far inside the bound
// The universe sweep (Theorem 5) holds n, k_0 fixed and grows k: message
// totals must stay flat (availability, not the universe, drives traffic).
// The all-pairs series reports totals against the O(k²n²) Corollary 2
// ceiling.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "dist/dist_router.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 99;

void BM_DistributedRoute_SweepN(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t k = 8, k0 = 4;
  const WdmNetwork net = bench::distributed_network(n, k, k0, kSeed);
  std::uint64_t messages = 0, rounds = 0;
  for (auto _ : state) {
    const auto r = distributed_route_semilightpath(net, NodeId{0},
                                                   NodeId{n / 2});
    messages = r.messages;
    rounds = r.rounds;
    benchmark::DoNotOptimize(r.cost);
  }
  const double km = static_cast<double>(k) * net.num_links();
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["km"] = km;
  state.counters["messages_per_km"] = static_cast<double>(messages) / km;
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["kn"] = static_cast<double>(k) * n;
}
BENCHMARK(BM_DistributedRoute_SweepN)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_DistributedRoute_SweepK(benchmark::State& state) {
  // Full availability regime: k0 = k, so messages should scale with k.
  const std::uint32_t n = 128;
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::distributed_network(n, k, k, kSeed);
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const auto r = distributed_route_semilightpath(net, NodeId{0},
                                                   NodeId{n / 2});
    messages = r.messages;
    benchmark::DoNotOptimize(r.cost);
  }
  const double km = static_cast<double>(k) * net.num_links();
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["messages_per_km"] = static_cast<double>(messages) / km;
}
BENCHMARK(BM_DistributedRoute_SweepK)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMillisecond);

void BM_DistributedRoute_UniverseSweep(benchmark::State& state) {
  // Theorem 5: k grows, k0 fixed -> message totals stay flat.
  const std::uint32_t n = 128, k0 = 3;
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::restricted_network(n, k, k0, kSeed);
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const auto r = distributed_route_semilightpath(net, NodeId{0},
                                                   NodeId{n / 2});
    messages = r.messages;
    benchmark::DoNotOptimize(r.cost);
  }
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["bound_mk0"] =
      static_cast<double>(net.num_links()) * k0;
}
BENCHMARK(BM_DistributedRoute_UniverseSweep)
    ->RangeMultiplier(4)
    ->Range(8, 512)
    ->Unit(benchmark::kMillisecond);

void BM_DistributedAllPairs(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t k = 4, k0 = 3;
  const WdmNetwork net = bench::distributed_network(n, k, k0, kSeed);
  std::uint64_t messages = 0, rounds = 0;
  for (auto _ : state) {
    const auto r = distributed_all_pairs(net);
    messages = r.messages;
    rounds = r.rounds;
    benchmark::DoNotOptimize(r.cost[0][1]);
  }
  state.counters["messages"] = static_cast<double>(messages);
  // Corollary 2's O(k²n²) assumes Haldar's 2n²-message APSP; we substitute
  // n repetitions of the single-source protocol (O(kmn) messages), so this
  // counter is the *Haldar* ceiling for context, not a bound our
  // implementation must sit under when m > kn.  See EXPERIMENTS.md (E9).
  state.counters["haldar_bound_k2n2"] =
      static_cast<double>(k) * k * n * n;
  state.counters["per_source_km"] =
      static_cast<double>(k) * net.num_links();
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_DistributedAllPairs)
    ->RangeMultiplier(2)
    ->Range(16, 128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LUMEN_BENCH_MAIN();
