// E11/E17 (extension) — goal-directed search ablations.
//
// Theorem 1 is a single-pair query answered by an SSSP run that settles
// the whole auxiliary graph.  Two goal-directed variants prune that work:
//
//   * core/goal_directed — per-request A* over G_{s,t} with a physical
//     reverse-Dijkstra potential (optionally cached across calls).
//   * RouteEngine + QueryOptions{goal_directed} — A* over the build-once
//     flattened core with ALT landmark bounds max-combined with the
//     cached per-target potential (E17).
//
// The engine series isolates the search cost (construction is amortized
// outside the loop) at low load (pristine residual) and high load (~half
// the (link, λ) pairs reserved, where +inf patches erode the pruning).
// Every series is verified in-bench to return the plain-Dijkstra optimum.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>

#include "bench/bench_common.h"
#include "core/goal_directed.h"
#include "core/liang_shen.h"
#include "core/route_engine.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 13579;

constexpr RouteEngine::QueryOptions kAlt{.goal_directed = true};
constexpr RouteEngine::QueryOptions kTargetOnly{.goal_directed = true,
                                                .use_landmarks = false};

/// Reserves ~`fraction` of the engine's (link, λ) slots, mirroring a
/// loaded residual network.  Deterministic in `seed`.
void load_engine(RouteEngine& engine, const WdmNetwork& net, double fraction,
                 std::uint64_t seed) {
  Rng rng(seed);
  for (std::uint32_t ei = 0; ei < net.num_links(); ++ei) {
    const LinkId e{ei};
    for (const auto& lw : net.available(e)) {
      if (rng.next_bool(fraction)) (void)engine.reserve(e, lw.lambda);
    }
  }
}

void BM_PlainDijkstraRoute(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kSeed);
  std::uint64_t pops = 0;
  for (auto _ : state) {
    const RouteResult r = route_semilightpath(net, NodeId{0}, NodeId{n / 2});
    pops = r.stats.search_pops;
    benchmark::DoNotOptimize(r.cost);
  }
  state.counters["search_pops"] = static_cast<double>(pops);
}
BENCHMARK(BM_PlainDijkstraRoute)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_AStarRoute(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kSeed);

  // Verify equality once per size.
  const RouteResult plain = route_semilightpath(net, NodeId{0}, NodeId{n / 2});
  const RouteResult astar =
      route_semilightpath_astar(net, NodeId{0}, NodeId{n / 2});
  if (plain.found != astar.found ||
      (plain.found && std::abs(plain.cost - astar.cost) > 1e-6)) {
    state.SkipWithError("A* optimum disagrees with Dijkstra");
    return;
  }

  std::uint64_t pops = 0;
  for (auto _ : state) {
    const RouteResult r =
        route_semilightpath_astar(net, NodeId{0}, NodeId{n / 2});
    pops = r.stats.search_pops;
    benchmark::DoNotOptimize(r.cost);
  }
  state.counters["search_pops"] = static_cast<double>(pops);
  state.counters["pop_reduction_pct"] =
      plain.stats.search_pops == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(astar.stats.search_pops) /
                               static_cast<double>(plain.stats.search_pops));
}
BENCHMARK(BM_AStarRoute)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_AStarRouteCachedPotential(benchmark::State& state) {
  // Same per-request aux-graph build, but the reverse-Dijkstra potential
  // is computed once and reused (the steady state of a query stream with
  // repeated targets).
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kSeed);
  AstarPotentialCache cache;
  for (auto _ : state) {
    const RouteResult r =
        route_semilightpath_astar(net, NodeId{0}, NodeId{n / 2}, cache);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_AStarRouteCachedPotential)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

/// Shared engine-series body: routes (0, n/2) under `query` on an engine
/// at `load` reserved fraction, verifying against the engine's own
/// uninformed search and exporting pop/settle/prune counters.
void engine_series(benchmark::State& state, const RouteEngine::QueryOptions& query,
                   double load) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kSeed);
  RouteEngine engine(net);
  if (load > 0.0) load_engine(engine, net, load, kSeed ^ 0x10adULL);

  const RouteResult plain = engine.route_semilightpath(NodeId{0}, NodeId{n / 2});
  const RouteResult goal =
      engine.route_semilightpath(NodeId{0}, NodeId{n / 2}, query);
  if (plain.found != goal.found ||
      (plain.found && plain.cost != goal.cost)) {
    state.SkipWithError("goal-directed optimum disagrees with engine Dijkstra");
    return;
  }

  SearchScratch scratch;
  for (auto _ : state) {
    const RouteResult r =
        engine.route_semilightpath(NodeId{0}, NodeId{n / 2}, scratch, query);
    benchmark::DoNotOptimize(r.cost);
  }
  state.counters["search_pops"] = static_cast<double>(goal.stats.search_pops);
  state.counters["search_pruned"] =
      static_cast<double>(goal.stats.search_pruned);
  state.counters["pop_reduction_pct"] =
      plain.stats.search_pops == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(goal.stats.search_pops) /
                               static_cast<double>(plain.stats.search_pops));
}

void BM_EngineDijkstra(benchmark::State& state) {
  engine_series(state, RouteEngine::QueryOptions{}, 0.0);
}
BENCHMARK(BM_EngineDijkstra)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_EngineAstarTargetOnly(benchmark::State& state) {
  engine_series(state, kTargetOnly, 0.0);
}
BENCHMARK(BM_EngineAstarTargetOnly)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_EngineAlt(benchmark::State& state) { engine_series(state, kAlt, 0.0); }
BENCHMARK(BM_EngineAlt)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_EngineDijkstraHighLoad(benchmark::State& state) {
  engine_series(state, RouteEngine::QueryOptions{}, 0.5);
}
BENCHMARK(BM_EngineDijkstraHighLoad)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_EngineAltHighLoad(benchmark::State& state) {
  engine_series(state, kAlt, 0.5);
}
BENCHMARK(BM_EngineAltHighLoad)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

LUMEN_BENCH_MAIN();
