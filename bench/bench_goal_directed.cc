// E11 (extension) — goal-directed search ablation.
//
// Theorem 1 is a single-pair query answered by an SSSP run that settles
// the whole auxiliary graph.  The A* variant (core/goal_directed) prunes
// with a physical-distance potential; this bench reports the measured
// speedup and the pop reduction across network sizes.  Both routers are
// verified in-bench to return the same optimum.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_common.h"
#include "core/goal_directed.h"
#include "core/liang_shen.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 13579;

void BM_PlainDijkstraRoute(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kSeed);
  std::uint64_t pops = 0;
  for (auto _ : state) {
    const RouteResult r = route_semilightpath(net, NodeId{0}, NodeId{n / 2});
    pops = r.stats.search_pops;
    benchmark::DoNotOptimize(r.cost);
  }
  state.counters["search_pops"] = static_cast<double>(pops);
}
BENCHMARK(BM_PlainDijkstraRoute)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_AStarRoute(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const WdmNetwork net = bench::comparison_network(n, kSeed);

  // Verify equality once per size.
  const RouteResult plain = route_semilightpath(net, NodeId{0}, NodeId{n / 2});
  const RouteResult astar =
      route_semilightpath_astar(net, NodeId{0}, NodeId{n / 2});
  if (plain.found != astar.found ||
      (plain.found && std::abs(plain.cost - astar.cost) > 1e-6)) {
    state.SkipWithError("A* optimum disagrees with Dijkstra");
    return;
  }

  std::uint64_t pops = 0;
  for (auto _ : state) {
    const RouteResult r =
        route_semilightpath_astar(net, NodeId{0}, NodeId{n / 2});
    pops = r.stats.search_pops;
    benchmark::DoNotOptimize(r.cost);
  }
  state.counters["search_pops"] = static_cast<double>(pops);
  state.counters["pop_reduction_pct"] =
      plain.stats.search_pops == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(astar.stats.search_pops) /
                               static_cast<double>(plain.stats.search_pops));
}
BENCHMARK(BM_AStarRoute)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LUMEN_BENCH_MAIN();
