// E15 — fault-injected distributed routing: the price of recovery.
//
// Sweeps the random-drop probability on both hardened protocols and
// reports the overhead against the clean run on the same network:
//   messages, sweeps          — traffic and retransmission rounds burned
//   message_overhead          — messages / clean-run messages
//   rounds (sync) / vtime     — time to the certified post-heal fixpoint
// The span-flap row drives a SessionManager through a FaultPlan span
// timeline (fail -> reroute -> repair per event), the end-to-end recovery
// path the fault suite verifies for correctness.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>

#include "bench/bench_common.h"
#include "dist/async_router.h"
#include "dist/dist_router.h"
#include "dist/fault_plan.h"
#include "rwa/session_manager.h"

namespace {

using namespace lumen;

constexpr std::uint64_t kSeed = 4242;
constexpr double kHealAt = 8.0;

void BM_SyncRouter_DropSweep(benchmark::State& state) {
  const double drop_p = static_cast<double>(state.range(0)) / 100.0;
  const std::uint32_t n = 96, k = 6, k0 = 3;
  const WdmNetwork net = bench::distributed_network(n, k, k0, kSeed);
  const auto clean =
      distributed_route_semilightpath(net, NodeId{0}, NodeId{n / 2});
  std::uint64_t messages = 0, rounds = 0;
  std::uint32_t sweeps = 0;
  std::uint64_t run = 0;
  for (auto _ : state) {
    FaultPlan plan(kSeed + run++);
    plan.drop_messages(drop_p, kHealAt).delay_spikes(0.1, 2.0);
    const auto r =
        distributed_route_semilightpath(net, NodeId{0}, NodeId{n / 2}, plan);
    messages = r.messages;
    rounds = r.rounds;
    sweeps = r.retransmit_sweeps;
    benchmark::DoNotOptimize(r.cost);
  }
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["message_overhead"] =
      static_cast<double>(messages) /
      static_cast<double>(std::max<std::uint64_t>(clean.messages, 1));
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["sweeps"] = static_cast<double>(sweeps);
}
BENCHMARK(BM_SyncRouter_DropSweep)
    ->Arg(0)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

void BM_AsyncRouter_DropSweep(benchmark::State& state) {
  const double drop_p = static_cast<double>(state.range(0)) / 100.0;
  const std::uint32_t n = 96, k = 6, k0 = 3;
  const WdmNetwork net = bench::distributed_network(n, k, k0, kSeed);
  const auto clean =
      async_route_semilightpath(net, NodeId{0}, NodeId{n / 2}, kSeed);
  std::uint64_t messages = 0;
  std::uint32_t sweeps = 0;
  double vtime = 0.0;
  std::uint64_t run = 0;
  for (auto _ : state) {
    FaultPlan plan(kSeed + run);
    plan.drop_messages(drop_p, kHealAt).duplicate_messages(0.1);
    AsyncOptions options;
    options.faults = &plan;
    const auto r = async_route_semilightpath(net, NodeId{0}, NodeId{n / 2},
                                             kSeed + run, options);
    ++run;
    messages = r.messages;
    sweeps = r.retransmit_sweeps;
    vtime = r.virtual_time;
    benchmark::DoNotOptimize(r.cost);
  }
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["message_overhead"] =
      static_cast<double>(messages) /
      static_cast<double>(std::max<std::uint64_t>(clean.messages, 1));
  state.counters["vtime"] = vtime;
  state.counters["sweeps"] = static_cast<double>(sweeps);
}
BENCHMARK(BM_AsyncRouter_DropSweep)
    ->Arg(0)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

void BM_SessionManager_SpanFlapTimeline(benchmark::State& state) {
  // A carried workload hit by a sequence of span cuts and repairs replayed
  // from a FaultPlan timeline: measures fail_span/repair_span plus the
  // engine weight-resync per event.
  const auto flaps = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 64, k = 6, k0 = 4;
  const WdmNetwork net = bench::distributed_network(n, k, k0, kSeed);
  Rng workload(kSeed);
  std::uint64_t rerouted = 0, dropped = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SessionManager manager(net, RoutingPolicy::kSemilightpathEngine);
    for (std::uint32_t i = 0; i < 3 * n; ++i) {
      const auto s =
          NodeId{static_cast<std::uint32_t>(workload.next_below(n))};
      auto t = NodeId{static_cast<std::uint32_t>(workload.next_below(n))};
      if (s == t) t = NodeId{(t.value() + 1) % n};
      (void)manager.open(s, t);
    }
    FaultPlan plan(kSeed + flaps);
    for (std::uint32_t f = 0; f < flaps; ++f) {
      const LinkId e{
          static_cast<std::uint32_t>(workload.next_below(net.num_links()))};
      const double from = static_cast<double>(2 * f);
      plan.span_down(net.tail(e), net.head(e), from, from + 1.0);
    }
    state.ResumeTiming();
    for (const SpanEvent& event : plan.span_timeline()) {
      const auto report =
          manager.apply_span_state(event.a, event.b, event.down);
      rerouted += report.rerouted;
      dropped += report.dropped;
    }
    benchmark::DoNotOptimize(manager.active_sessions());
  }
  state.counters["rerouted"] = static_cast<double>(rerouted);
  state.counters["dropped"] = static_cast<double>(dropped);
}
BENCHMARK(BM_SessionManager_SpanFlapTimeline)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LUMEN_BENCH_MAIN();
