#!/usr/bin/env python3
"""Compare two BENCH_*.json files and flag hot-path regressions.

The repo's checked-in BENCH_N.json files wrap google-benchmark output:
a top-level dict with "experiment"/"description" plus nested sections,
any of which may hold a google-benchmark result ({"context": ...,
"benchmarks": [...]}) or scalar summary numbers.  This tool flattens
every benchmark entry it can find in both files — keyed by the JSON path
to its section plus the benchmark name — and compares real_time for the
entries present in both.

Exit status 1 when any shared benchmark regressed by more than the
threshold (default 10%), 0 otherwise.  Benchmarks present in only one
file are reported but never fail the run (series come and go across
PRs); aggregate rows other than the base run_type=="iteration" entries
(mean/median/stddev) are skipped so repetition sweeps do not double
count.

Usage:
  bench_diff.py BASELINE.json CANDIDATE.json [--threshold-pct 10]
  bench_diff.py --self-test
"""

import argparse
import json
import sys


def flatten_benchmarks(node, path=""):
    """Yields (key, entry) for every google-benchmark result dict found
    anywhere under `node`.  The key is "<section path>/<name>"."""
    if isinstance(node, dict):
        benchmarks = node.get("benchmarks")
        if isinstance(benchmarks, list):
            for entry in benchmarks:
                if not isinstance(entry, dict) or "name" not in entry:
                    continue
                if entry.get("run_type", "iteration") != "iteration":
                    continue  # skip mean/median/stddev aggregate rows
                yield f"{path}/{entry['name']}", entry
        for key, value in node.items():
            if key == "benchmarks":
                continue
            yield from flatten_benchmarks(value, f"{path}/{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from flatten_benchmarks(value, f"{path}[{i}]")


def load(path):
    with open(path) as f:
        return dict(flatten_benchmarks(json.load(f)))


def rekey_by_name(flat):
    """Drops the section path from keys, keeping the benchmark name only.
    Names that appear in more than one section are ambiguous and removed."""
    by_name = {}
    dupes = set()
    for key, entry in flat.items():
        name = entry.get("name", key)
        if name in by_name:
            dupes.add(name)
        by_name[name] = entry
    return {k: v for k, v in by_name.items() if k not in dupes}


def compare(baseline, candidate, threshold_pct):
    """Returns (regressions, report_lines) comparing real_time maps."""
    regressions = []
    lines = []
    shared = sorted(set(baseline) & set(candidate))
    if not shared and baseline and candidate:
        # Typical when a raw `bench --json` capture is compared against a
        # checked-in wrapper (whose runs sit under a "runs" section): the
        # path-qualified keys are disjoint, so fall back to benchmark
        # names, dropping any name that is ambiguous within one file.
        base_names = rekey_by_name(baseline)
        cand_names = rekey_by_name(candidate)
        if set(base_names) & set(cand_names):
            lines.append("note: no shared section paths; comparing by "
                         "benchmark name")
            baseline, candidate = base_names, cand_names
            shared = sorted(set(baseline) & set(candidate))
    for key in shared:
        base = baseline[key].get("real_time")
        cand = candidate[key].get("real_time")
        if not isinstance(base, (int, float)) or not isinstance(
                cand, (int, float)) or base <= 0:
            continue
        delta_pct = 100.0 * (cand - base) / base
        marker = " "
        if delta_pct > threshold_pct:
            marker = "!"
            regressions.append((key, delta_pct))
        unit = baseline[key].get("time_unit", "ns")
        lines.append(f"{marker} {key}: {base:.3f} -> {cand:.3f} {unit} "
                     f"({delta_pct:+.1f}%)")
    for key in sorted(set(baseline) - set(candidate)):
        lines.append(f"- {key}: only in baseline")
    for key in sorted(set(candidate) - set(baseline)):
        lines.append(f"+ {key}: only in candidate")
    if not shared:
        lines.append("warning: no shared benchmarks between the two files")
    return regressions, lines


def self_test():
    """Exercises flattening and comparison on synthetic documents."""
    baseline = {
        "experiment": "E0",
        "runs": {
            "context": {},
            "benchmarks": [
                {"name": "BM_Fast/64", "real_time": 100.0,
                 "time_unit": "us"},
                {"name": "BM_Fast/64_mean", "run_type": "aggregate",
                 "real_time": 101.0},
                {"name": "BM_Gone/1", "real_time": 5.0},
            ],
        },
    }
    improved = {
        "runs": {"benchmarks": [
            {"name": "BM_Fast/64", "real_time": 95.0, "time_unit": "us"},
            {"name": "BM_New/1", "real_time": 1.0},
        ]}
    }
    regressed = {
        "runs": {"benchmarks": [
            {"name": "BM_Fast/64", "real_time": 150.0, "time_unit": "us"},
        ]}
    }
    base = dict(flatten_benchmarks(baseline))
    assert set(base) == {"/runs/BM_Fast/64", "/runs/BM_Gone/1"}, base

    ok, _ = compare(base, dict(flatten_benchmarks(improved)), 10.0)
    assert ok == [], ok
    bad, _ = compare(base, dict(flatten_benchmarks(regressed)), 10.0)
    assert len(bad) == 1 and bad[0][0] == "/runs/BM_Fast/64", bad
    # A 50% regression passes a 60% threshold.
    ok, _ = compare(base, dict(flatten_benchmarks(regressed)), 60.0)
    assert ok == [], ok

    # A raw google-benchmark capture (no wrapper section) against the
    # wrapped baseline: disjoint paths, matched by name instead.
    raw = {"context": {}, "benchmarks": [
        {"name": "BM_Fast/64", "real_time": 150.0, "time_unit": "us"},
    ]}
    bad, lines = compare(base, dict(flatten_benchmarks(raw)), 10.0)
    assert len(bad) == 1 and bad[0][0] == "BM_Fast/64", bad
    assert any("comparing by benchmark name" in l for l in lines), lines
    print("bench_diff self-test passed")


def main():
    parser = argparse.ArgumentParser(
        description="Flag real_time regressions between two BENCH_*.json")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("candidate", nargs="?")
    parser.add_argument("--threshold-pct", type=float, default=10.0,
                        help="max allowed real_time increase (default 10)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in synthetic check and exit")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return 0
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate files are required")

    regressions, lines = compare(load(args.baseline), load(args.candidate),
                                 args.threshold_pct)
    for line in lines:
        print(line)
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold_pct:.0f}%:")
        for key, delta in regressions:
            print(f"  {key}: {delta:+.1f}%")
        return 1
    print(f"\nno regressions above {args.threshold_pct:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
