// lumen_top — live terminal view of the obs MetricsPump snapshot stream.
//
//   $ ./lumen_top <snapshot.jsonl> [--interval S] [--once]
//   $ ./lumen_top --collect PORT [--interval S] [--once]
//   $ ./lumen_top --demo [--once] [--serve PORT]
//
// Tail mode follows a JSONL sink written by obs::MetricsPump (see
// PumpOptions::snapshot_path): every refresh it re-reads the file, picks
// the newest snapshot line, and renders counters, window deltas, latency
// summaries, and any alert lines as a refreshing terminal table.  The
// parser is the same flat-JSON reader the exporters use, so lumen_top
// needs no dependencies beyond the lumen libraries themselves.
//
//   --interval S   refresh period in seconds (default 1.0)
//   --once         render the newest snapshot once and exit (no clearing)
//
// Demo mode is a self-contained traffic generator: it drives an online
// RWA workload on the ARPANET backbone, ticks a local MetricsPump with a
// blocking-ratio SLO watchdog attached, and renders each tick's snapshot
// directly — a one-command way to see the whole v2 pipeline (instruments
// → pump → watchdog → flight-recorder dump) without wiring up a real
// deployment.  With --serve PORT it also exposes the live registry as a
// Prometheus text endpoint on 127.0.0.1:PORT.
//
// Collect mode is the UDP twin of tail mode: it binds 127.0.0.1:PORT,
// decodes wire-telemetry frames (src/obs/wire) as a WireExporter on any
// process sends them, and renders each completed snapshot live — no
// shared filesystem required.  A recv quiet period flushes the
// in-progress snapshot so the view never stalls on a lost boundary.
//
// Under LUMEN_OBS_DISABLED everything still compiles and links; the demo
// then renders empty snapshots (the instruments are no-ops) and --serve
// reports that the endpoint is compiled out.  Collect mode keeps
// working — the wire decoder is compiled in both modes.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/flat_json.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_server.h"
#include "obs/registry.h"
#include "obs/slo.h"
#include "obs/wire/wire_decoder.h"
#include "rwa/session_manager.h"
#include "topo/topologies.h"
#include "topo/wavelengths.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/udp.h"

using namespace lumen;

namespace {

struct Options {
  std::string snapshot_path;
  double interval_seconds = 1.0;
  bool once = false;
  bool demo = false;
  int serve_port = -1;    // < 0: no endpoint
  int collect_port = -1;  // < 0: not collecting
};

void usage() {
  std::fprintf(stderr,
               "usage: lumen_top <snapshot.jsonl> [--interval S] [--once]\n"
               "       lumen_top --collect PORT [--interval S] [--once]\n"
               "       lumen_top --demo [--once] [--serve PORT]\n");
}

/// Renders one pump snapshot (plus any trailing alert lines) as tables.
void render(const obs::PumpSnapshot& snapshot,
            const std::vector<std::string>& alert_lines, bool clear_screen) {
  std::string out;
  if (clear_screen) out += "\x1b[2J\x1b[H";
  out += "lumen_top — tick " + std::to_string(snapshot.tick) + ", uptime " +
         fmt_double(snapshot.uptime_seconds, 1) + "s, alerts " +
         std::to_string(snapshot.alerts.size()) + "\n\n";

  if (!snapshot.counters.empty()) {
    Table counters({"counter", "total", "delta"});
    for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
      const std::uint64_t delta = i < snapshot.counter_deltas.size()
                                      ? snapshot.counter_deltas[i].second
                                      : 0;
      counters.add_row({snapshot.counters[i].first,
                        fmt_int(static_cast<std::int64_t>(
                            snapshot.counters[i].second)),
                        "+" + std::to_string(delta)});
    }
    out += counters.to_markdown() + "\n";
  }

  if (!snapshot.gauges.empty()) {
    Table gauges({"gauge", "value"});
    for (const auto& [name, value] : snapshot.gauges)
      gauges.add_row({name, fmt_double(value, 4)});
    out += gauges.to_markdown() + "\n";
  }

  if (!snapshot.histograms.empty()) {
    Table latencies({"histogram", "count", "mean", "p50", "p90", "p99"});
    for (const auto& [name, summary] : snapshot.histograms)
      latencies.add_row({name,
                         fmt_int(static_cast<std::int64_t>(summary.count)),
                         fmt_sci(summary.mean), fmt_sci(summary.p50),
                         fmt_sci(summary.p90), fmt_sci(summary.p99)});
    out += latencies.to_markdown() + "\n";
  }

  // Per-tenant admission split, pivoted from the labeled svc children.
  struct TenantRow {
    std::uint64_t admitted = 0, blocked = 0, quota_denied = 0;
    double p99 = 0.0;
    std::uint64_t exemplar = 0;
  };
  std::map<std::string, TenantRow> tenants;
  struct ShardRow {
    std::uint64_t conflicts = 0, patches = 0;
  };
  std::map<std::string, ShardRow> shards;
  const auto label_value = [](const std::string& labels,
                              const std::string& key) -> std::string {
    for (const auto& [k, v] : obs::labels_parse(labels))
      if (k == key) return v;
    return {};
  };
  for (const obs::LabeledCounterSample& s : snapshot.labeled_counters) {
    const std::string tenant = label_value(s.labels, "tenant");
    if (!tenant.empty()) {
      TenantRow& row = tenants[tenant];
      if (s.name.ends_with(".admitted")) row.admitted += s.value;
      else if (s.name.ends_with(".blocked")) row.blocked += s.value;
      else if (s.name.ends_with(".quota_denied")) row.quota_denied += s.value;
    }
    const std::string shard = label_value(s.labels, "shard");
    if (!shard.empty()) {
      ShardRow& row = shards[shard];
      if (s.name.ends_with(".commit_conflicts")) row.conflicts += s.value;
      else if (s.name.ends_with(".resync_patches")) row.patches += s.value;
    }
  }
  for (const obs::LabeledHistogramSample& s : snapshot.labeled_histograms) {
    const std::string tenant = label_value(s.labels, "tenant");
    if (tenant.empty() || s.name.find("admit_latency") == std::string::npos)
      continue;
    TenantRow& row = tenants[tenant];
    row.p99 = s.summary.p99;
    if (s.exemplar != 0) row.exemplar = s.exemplar;
  }
  if (!tenants.empty()) {
    Table table({"tenant", "admitted", "blocked", "quota", "admit p99",
                 "exemplar"});
    for (const auto& [tenant, row] : tenants) {
      char trace[32] = "-";
      if (row.exemplar != 0)
        std::snprintf(trace, sizeof trace, "%016llx",
                      static_cast<unsigned long long>(row.exemplar));
      table.add_row({tenant, fmt_int(static_cast<std::int64_t>(row.admitted)),
                     fmt_int(static_cast<std::int64_t>(row.blocked)),
                     fmt_int(static_cast<std::int64_t>(row.quota_denied)),
                     fmt_sci(row.p99), trace});
    }
    out += table.to_markdown() + "\n";
  }
  if (!shards.empty()) {
    Table table({"shard", "conflicts", "resync patches"});
    for (const auto& [shard, row] : shards)
      table.add_row({shard, fmt_int(static_cast<std::int64_t>(row.conflicts)),
                     fmt_int(static_cast<std::int64_t>(row.patches))});
    out += table.to_markdown() + "\n";
  }

  // Remaining labeled series that the pivots above did not claim.
  if (!snapshot.labeled_gauges.empty()) {
    Table table({"labeled gauge", "labels", "value"});
    for (const obs::LabeledGaugeSample& s : snapshot.labeled_gauges)
      table.add_row({s.name, s.labels, fmt_double(s.value, 4)});
    out += table.to_markdown() + "\n";
  }

  // Top profiler stages by weighted self time.
  if (!snapshot.profile.empty()) {
    std::vector<const obs::ProfileEntry*> by_self;
    by_self.reserve(snapshot.profile.size());
    for (const obs::ProfileEntry& entry : snapshot.profile)
      by_self.push_back(&entry);
    std::sort(by_self.begin(), by_self.end(),
              [](const obs::ProfileEntry* a, const obs::ProfileEntry* b) {
                return a->self_ns > b->self_ns;
              });
    constexpr std::size_t kTopStages = 12;
    Table table({"profile stack (top by self time)", "samples", "self ns",
                 "total ns"});
    for (std::size_t i = 0; i < by_self.size() && i < kTopStages; ++i)
      table.add_row({by_self[i]->stack,
                     fmt_int(static_cast<std::int64_t>(by_self[i]->samples)),
                     fmt_int(static_cast<std::int64_t>(by_self[i]->self_ns)),
                     fmt_int(static_cast<std::int64_t>(by_self[i]->total_ns))});
    out += table.to_markdown() + "\n";
  }

  for (const obs::AlertEvent& alert : snapshot.alerts) {
    out += (alert.resolved ? "RESOLVED " : "ALERT    ") + alert.rule + ": " +
           alert.metric + " = " + fmt_double(alert.value, 4) +
           " (threshold " + fmt_double(alert.threshold, 4) + ")";
    if (!alert.dump_path.empty()) out += " — dump: " + alert.dump_path;
    out += '\n';
  }
  for (const std::string& line : alert_lines) out += line + '\n';
  if (snapshot.counters.empty() && snapshot.histograms.empty())
    out += "(no instruments in this snapshot)\n";
  std::fputs(out.c_str(), stdout);
  std::fflush(stdout);
}

/// Splits "name{labels}" into its parts; labels stays "" when the key
/// carries no brace section (a plain instrument).
void split_labeled(const std::string& key, std::string& name,
                   std::string& labels) {
  const std::size_t brace = key.find('{');
  if (brace == std::string::npos || key.back() != '}') {
    name = key;
    labels.clear();
    return;
  }
  name = key.substr(0, brace);
  labels = key.substr(brace + 1, key.size() - brace - 2);
}

/// Parses one pump_snapshot_to_json line back into a PumpSnapshot.
/// Key scheme: "tick", "uptime_seconds", "c:<name>", "d:<name>",
/// "g:<name>", "h:<name>:<field>", "alerts"; labeled children embed
/// their labels in braces ("c:<name>{tenant=3}"), labeled histograms
/// add an ":exemplar" field, and profiler stacks ride as
/// "p:<stack>:{n,self,total}".
obs::PumpSnapshot parse_snapshot_line(const std::string& line,
                                      std::size_t line_no) {
  obs::PumpSnapshot snapshot;
  std::vector<std::pair<std::string, obs::HistogramSummary>>& hists =
      snapshot.histograms;
  obs::detail::FlatJsonParser parser(line, line_no);
  parser.parse([&](const std::string& key, const std::string&, double number,
                   bool is_string) {
    if (is_string) return;
    if (key == "tick") {
      snapshot.tick = static_cast<std::uint64_t>(number);
    } else if (key == "uptime_seconds") {
      snapshot.uptime_seconds = number;
    } else if (key.rfind("c:", 0) == 0) {
      const std::string body = key.substr(2);
      if (body.find('{') == std::string::npos) {
        snapshot.counters.emplace_back(body,
                                       static_cast<std::uint64_t>(number));
      } else {
        obs::LabeledCounterSample sample;
        split_labeled(body, sample.name, sample.labels);
        sample.value = static_cast<std::uint64_t>(number);
        snapshot.labeled_counters.push_back(std::move(sample));
      }
    } else if (key.rfind("d:", 0) == 0) {
      const std::string body = key.substr(2);
      if (body.find('{') == std::string::npos) {
        snapshot.counter_deltas.emplace_back(
            body, static_cast<std::uint64_t>(number));
      } else {
        // The delta key follows its value key, so it lands on the
        // labeled counter just pushed (or starts one after a lost pair).
        std::string name, labels;
        split_labeled(body, name, labels);
        auto& labeled = snapshot.labeled_counters;
        if (labeled.empty() || labeled.back().name != name ||
            labeled.back().labels != labels) {
          obs::LabeledCounterSample sample;
          sample.name = std::move(name);
          sample.labels = std::move(labels);
          labeled.push_back(std::move(sample));
        }
        labeled.back().delta = static_cast<std::uint64_t>(number);
      }
    } else if (key.rfind("g:", 0) == 0) {
      const std::string body = key.substr(2);
      if (body.find('{') == std::string::npos) {
        snapshot.gauges.emplace_back(body, number);
      } else {
        obs::LabeledGaugeSample sample;
        split_labeled(body, sample.name, sample.labels);
        sample.value = number;
        snapshot.labeled_gauges.push_back(std::move(sample));
      }
    } else if (key.rfind("h:", 0) == 0) {
      const std::size_t colon = key.rfind(':');
      const std::string body = key.substr(2, colon - 2);
      const std::string field = key.substr(colon + 1);
      obs::HistogramSummary* summary = nullptr;
      std::uint64_t* exemplar = nullptr;
      if (body.find('{') == std::string::npos) {
        if (hists.empty() || hists.back().first != body)
          hists.emplace_back(body, obs::HistogramSummary{});
        summary = &hists.back().second;
      } else {
        std::string name, labels;
        split_labeled(body, name, labels);
        auto& labeled = snapshot.labeled_histograms;
        if (labeled.empty() || labeled.back().name != name ||
            labeled.back().labels != labels) {
          obs::LabeledHistogramSample sample;
          sample.name = std::move(name);
          sample.labels = std::move(labels);
          labeled.push_back(std::move(sample));
        }
        summary = &labeled.back().summary;
        exemplar = &labeled.back().exemplar;
      }
      if (field == "count") summary->count = static_cast<std::uint64_t>(number);
      else if (field == "mean") summary->mean = number;
      else if (field == "p50") summary->p50 = number;
      else if (field == "p90") summary->p90 = number;
      else if (field == "p99") summary->p99 = number;
      else if (field == "max") summary->max = number;
      else if (field == "exemplar" && exemplar != nullptr)
        *exemplar = static_cast<std::uint64_t>(number);
    } else if (key.rfind("p:", 0) == 0) {
      const std::size_t colon = key.rfind(':');
      const std::string stack = key.substr(2, colon - 2);
      const std::string field = key.substr(colon + 1);
      auto& profile = snapshot.profile;
      if (profile.empty() || profile.back().stack != stack) {
        obs::ProfileEntry entry;
        entry.stack = stack;
        profile.push_back(std::move(entry));
      }
      if (field == "n")
        profile.back().samples = static_cast<std::uint64_t>(number);
      else if (field == "self")
        profile.back().self_ns = static_cast<std::uint64_t>(number);
      else if (field == "total")
        profile.back().total_ns = static_cast<std::uint64_t>(number);
    }
  });
  return snapshot;
}

/// Tail mode: newest snapshot line + any alert lines after it.
int run_tail(const Options& options) {
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  std::uint64_t last_rendered = 0;
  while (true) {
    std::ifstream in(options.snapshot_path);
    if (!in.good()) {
      std::fprintf(stderr, "lumen_top: cannot read %s\n",
                   options.snapshot_path.c_str());
      return 1;
    }
    std::string newest;
    std::size_t newest_line_no = 0;
    std::vector<std::string> alerts_after;
    std::size_t line_no = 0;
    for (std::string line; std::getline(in, line);) {
      ++line_no;
      if (line.empty()) continue;
      if (line.find("\"tick\":") != std::string::npos &&
          line.find("\"alert\":") == std::string::npos) {
        newest = line;
        newest_line_no = line_no;
        alerts_after.clear();
      } else if (line.find("\"alert\":") != std::string::npos) {
        alerts_after.push_back(line);
      }
    }
    if (newest.empty()) {
      std::fprintf(stderr, "lumen_top: no snapshots in %s yet\n",
                   options.snapshot_path.c_str());
      if (options.once) return 1;
    } else {
      const obs::PumpSnapshot snapshot =
          parse_snapshot_line(newest, newest_line_no);
      if (options.once || snapshot.tick != last_rendered) {
        render(snapshot, alerts_after, tty && !options.once);
        last_rendered = snapshot.tick;
      }
    }
    if (options.once) return 0;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.interval_seconds));
  }
}

/// Collect mode: live UDP tail of a WireExporter's frame stream.
int run_collect(const Options& options) {
  UdpSocket socket(static_cast<std::uint16_t>(options.collect_port));
  if (!socket.ok()) {
    std::fprintf(stderr, "lumen_top: cannot bind UDP 127.0.0.1:%d\n",
                 options.collect_port);
    return 1;
  }
  std::fprintf(stderr, "lumen_top: collecting on 127.0.0.1:%u\n",
               static_cast<unsigned>(socket.port()));
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  obs::wire::WireDecoder decoder;
  std::vector<std::byte> buffer(65536);
  while (true) {
    const long n = socket.recv(buffer, options.interval_seconds);
    if (n < 0) {
      std::fprintf(stderr, "lumen_top: socket error\n");
      return 1;
    }
    if (n > 0) {
      (void)decoder.decode_frame(std::span<const std::byte>(
          buffer.data(), static_cast<std::size_t>(n)));
    } else {
      // Quiet period: surface the in-progress snapshot rather than wait
      // for the next boundary record (which a lost frame may never bring).
      decoder.flush();
    }
    const std::vector<obs::PumpSnapshot> snapshots = decoder.take_snapshots();
    if (!snapshots.empty()) {
      render(snapshots.back(), {}, tty && !options.once);
      if (options.once) return 0;
    }
  }
}

/// Demo mode: online ARPANET workload + local pump with an SLO watchdog.
int run_demo(const Options& options) {
  constexpr std::uint32_t kWavelengths = 4;
  Rng rng(0x70901ULL);
  const Topology topo = arpanet_topology();
  const Availability avail =
      full_availability(topo, kWavelengths, CostSpec::distance(10.0), rng);
  SessionManager manager(
      assemble_network(topo, kWavelengths, avail,
                       std::make_shared<UniformConversion>(0.5)),
      RoutingPolicy::kSemilightpath);
  const std::uint32_t n = manager.residual().num_nodes();

  obs::SloWatchdog watchdog;
  watchdog.add_rule(obs::SloRule::ratio("blocking", "lumen.rwa.blocked",
                                        "lumen.rwa.offered", 0.2));
  obs::PumpOptions pump_options;
  pump_options.watchdog = &watchdog;
  pump_options.recorder = &obs::FlightRecorder::global();
  pump_options.profiler = &obs::Profiler::global();
  obs::MetricsPump pump(obs::Registry::global(), pump_options);

  std::unique_ptr<obs::MetricsServer> server;
  if (options.serve_port >= 0) {
    server = obs::serve_metrics(static_cast<std::uint16_t>(options.serve_port));
    if (server)
      std::fprintf(stderr, "serving http://127.0.0.1:%u/metrics\n",
                   static_cast<unsigned>(server->port()));
    else
      std::fprintf(stderr, "metrics endpoint unavailable "
                           "(compiled out or bind failed)\n");
  }

  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  std::vector<SessionId> active;
  while (true) {
    // One round of churn: a burst of arrivals, then random departures.
    for (int i = 0; i < 32; ++i) {
      const NodeId s{static_cast<std::uint32_t>(rng.next_below(n))};
      NodeId t{static_cast<std::uint32_t>(rng.next_below(n))};
      while (t == s) t = NodeId{static_cast<std::uint32_t>(rng.next_below(n))};
      if (const auto id = manager.open(s, t)) active.push_back(*id);
    }
    while (active.size() > 64) {
      const std::size_t victim = rng.next_below(active.size());
      (void)manager.close(active[victim]);
      active[victim] = active.back();
      active.pop_back();
    }
    render(pump.tick(), {}, tty && !options.once);
    if (options.once) return 0;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.interval_seconds));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--once") == 0) {
      options.once = true;
    } else if (std::strcmp(arg, "--demo") == 0) {
      options.demo = true;
    } else if (std::strcmp(arg, "--interval") == 0 && i + 1 < argc) {
      options.interval_seconds = std::atof(argv[++i]);
      if (options.interval_seconds <= 0.0) options.interval_seconds = 1.0;
    } else if (std::strcmp(arg, "--serve") == 0 && i + 1 < argc) {
      options.serve_port = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--collect") == 0 && i + 1 < argc) {
      options.collect_port = std::atoi(argv[++i]);
    } else if (arg[0] == '-') {
      usage();
      return 2;
    } else {
      options.snapshot_path = arg;
    }
  }
  if (options.demo) return run_demo(options);
  if (options.collect_port >= 0 && options.collect_port <= 65535)
    return run_collect(options);
  if (options.snapshot_path.empty()) {
    usage();
    return 2;
  }
  return run_tail(options);
}
