// lumen_collect — wire-telemetry collector and re-exporter.
//
//   $ ./lumen_collect --port P [--jsonl FILE] [--prom FILE]
//                     [--frames N] [--idle-exit S] [--quiet]
//   $ ./lumen_collect --selfcheck
//
// Binds 127.0.0.1:P (0 = ephemeral; the bound port is printed to
// stderr), decodes every arriving wire frame (src/obs/wire), and
// re-exports what it understood:
//
//   --jsonl FILE   append one pump_snapshot_to_json line per completed
//                  snapshot, one alert_to_json line per alert, and one
//                  route_event_to_json line per route event ("-" =
//                  stdout).  The same JSONL dialect the MetricsPump
//                  writes locally, so `lumen_top FILE` tails it.
//   --prom FILE    rewrite FILE after every completed snapshot with a
//                  Prometheus text rendering of that snapshot plus the
//                  collector's own health (node_exporter textfile-
//                  collector style).
//
// The decoder never trusts the network: malformed or truncated frames
// are counted and dropped (frames_received == accepted + rejected,
// always), data sets that arrive before their template are buffered and
// replayed, and lost frames show up as sequence gaps — re-exported as
// `lumen.obs.wire.gaps`.
//
//   --frames N     exit after N datagrams (tests/bounded captures)
//   --idle-exit S  exit after S seconds with no traffic
//
// --selfcheck runs the whole path in-process — exporter → real UDP
// socket → decoder — and verifies the round-trip reproduces the
// snapshot exactly; it is this binary's smoke test and works in every
// build mode (the wire codec is compiled identically with and without
// LUMEN_OBS_DISABLED).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/flat_json.h"
#include "obs/slo.h"
#include "obs/wire/wire_decoder.h"
#include "obs/wire/wire_encoder.h"
#include "obs/wire/wire_transport.h"
#include "util/udp.h"

using namespace lumen;

namespace {

struct Options {
  int port = -1;
  std::string jsonl_path;  // "" = off, "-" = stdout
  std::string prom_path;   // "" = off
  std::uint64_t max_frames = 0;  // 0 = unbounded
  double idle_exit_seconds = 0.0;  // 0 = wait forever
  bool quiet = false;
  bool selfcheck = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: lumen_collect --port P [--jsonl FILE] [--prom FILE]\n"
               "                     [--frames N] [--idle-exit S] [--quiet]\n"
               "       lumen_collect --selfcheck\n");
}

/// One decoded snapshot (plus collector health) in Prometheus text
/// exposition format.  Histogram summaries re-export as a `_count`
/// counter plus mean/percentile gauges — the wire carries condensed
/// summaries, not buckets.  Labeled series (templates 262/263) render
/// as extra `name{tenant="3",...}` samples with exposition-escaped
/// label values; a metric's TYPE line is emitted once even when plain
/// and labeled samples share the name.  Profile stacks (template 264)
/// become `lumen.obs.profile.*{stack="..."}` gauges.
std::string snapshot_prometheus_text(
    const obs::PumpSnapshot& snapshot,
    const obs::wire::WireDecoderStats& stats) {
  std::string out;
  std::set<std::string> typed;
  const auto type_line = [&](const std::string& metric, const char* kind) {
    if (typed.insert(metric).second)
      out += "# TYPE " + metric + " " + kind + "\n";
  };
  const auto counter = [&](const std::string& name, std::uint64_t value,
                           const std::string& labels = {}) {
    const std::string metric = obs::prometheus_name(name);
    type_line(metric, "counter");
    out += metric + obs::prometheus_labels(labels) + " " +
           std::to_string(value) + "\n";
  };
  const auto gauge = [&](const std::string& name, double value,
                         const std::string& labels = {}) {
    const std::string metric = obs::prometheus_name(name);
    type_line(metric, "gauge");
    out += metric + obs::prometheus_labels(labels) + " " +
           obs::detail::fmt_double_exact(value) + "\n";
  };
  for (const auto& [name, value] : snapshot.counters) counter(name, value);
  for (const obs::LabeledCounterSample& s : snapshot.labeled_counters)
    counter(s.name, s.value, s.labels);
  for (const auto& [name, value] : snapshot.gauges) gauge(name, value);
  for (const obs::LabeledGaugeSample& s : snapshot.labeled_gauges)
    gauge(s.name, s.value, s.labels);
  for (const auto& [name, summary] : snapshot.histograms) {
    counter(name + "_count", summary.count);
    gauge(name + "_mean", summary.mean);
    gauge(name + "_p50", summary.p50);
    gauge(name + "_p90", summary.p90);
    gauge(name + "_p99", summary.p99);
    gauge(name + "_max", summary.max);
  }
  for (const obs::LabeledHistogramSample& s : snapshot.labeled_histograms) {
    counter(s.name + "_count", s.summary.count, s.labels);
    gauge(s.name + "_mean", s.summary.mean, s.labels);
    gauge(s.name + "_p50", s.summary.p50, s.labels);
    gauge(s.name + "_p90", s.summary.p90, s.labels);
    gauge(s.name + "_p99", s.summary.p99, s.labels);
    gauge(s.name + "_max", s.summary.max, s.labels);
    if (s.exemplar != 0)
      counter(s.name + "_exemplar", s.exemplar, s.labels);
  }
  for (const obs::ProfileEntry& entry : snapshot.profile) {
    const std::string labels = obs::labels_canonical({{"stack", entry.stack}});
    counter("lumen.obs.profile.samples", entry.samples, labels);
    gauge("lumen.obs.profile.self_ns",
          static_cast<double>(entry.self_ns), labels);
    gauge("lumen.obs.profile.total_ns",
          static_cast<double>(entry.total_ns), labels);
  }
  counter("lumen.obs.wire.frames_received", stats.frames_received);
  counter("lumen.obs.wire.frames_accepted", stats.frames_accepted);
  counter("lumen.obs.wire.frames_rejected", stats.frames_rejected);
  counter("lumen.obs.wire.records", stats.records_decoded);
  counter("lumen.obs.wire.gaps", stats.sequence_gaps);
  counter("lumen.obs.wire.frames_missed", stats.frames_missed);
  counter("lumen.obs.wire.buffered_sets", stats.buffered_sets);
  counter("lumen.obs.wire.replayed_sets", stats.replayed_sets);
  return out;
}

/// Re-export sinks shared by the live loop and the final flush.
struct Sinks {
  std::ofstream jsonl_file;
  std::ostream* jsonl = nullptr;  // null = no JSONL sink
  std::string prom_path;
};

void drain(obs::wire::WireDecoder& decoder, Sinks& sinks) {
  const std::vector<obs::PumpSnapshot> snapshots = decoder.take_snapshots();
  const std::vector<obs::RouteEvent> events = decoder.take_route_events();
  if (sinks.jsonl != nullptr) {
    for (const obs::PumpSnapshot& snapshot : snapshots) {
      *sinks.jsonl << obs::pump_snapshot_to_json(snapshot) << '\n';
      for (const obs::AlertEvent& alert : snapshot.alerts)
        *sinks.jsonl << obs::alert_to_json(alert) << '\n';
    }
    for (const obs::RouteEvent& event : events)
      *sinks.jsonl << obs::route_event_to_json(event) << '\n';
    sinks.jsonl->flush();
  }
  if (!sinks.prom_path.empty() && !snapshots.empty()) {
    std::ofstream prom(sinks.prom_path, std::ios::trunc);
    if (prom)
      prom << snapshot_prometheus_text(snapshots.back(), decoder.stats());
  }
}

void report(const obs::wire::WireDecoderStats& stats) {
  std::fprintf(stderr,
               "lumen_collect: frames received=%llu accepted=%llu "
               "rejected=%llu, records=%llu, gaps=%llu (missed=%llu), "
               "buffered=%llu replayed=%llu\n",
               static_cast<unsigned long long>(stats.frames_received),
               static_cast<unsigned long long>(stats.frames_accepted),
               static_cast<unsigned long long>(stats.frames_rejected),
               static_cast<unsigned long long>(stats.records_decoded),
               static_cast<unsigned long long>(stats.sequence_gaps),
               static_cast<unsigned long long>(stats.frames_missed),
               static_cast<unsigned long long>(stats.buffered_sets),
               static_cast<unsigned long long>(stats.replayed_sets));
}

int run_collect(const Options& options) {
  UdpSocket socket(static_cast<std::uint16_t>(options.port));
  if (!socket.ok()) {
    std::fprintf(stderr, "lumen_collect: cannot bind 127.0.0.1:%d\n",
                 options.port);
    return 1;
  }
  if (!options.quiet)
    std::fprintf(stderr, "lumen_collect: listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(socket.port()));

  Sinks sinks;
  sinks.prom_path = options.prom_path;
  if (options.jsonl_path == "-") {
    sinks.jsonl = &std::cout;
  } else if (!options.jsonl_path.empty()) {
    sinks.jsonl_file.open(options.jsonl_path, std::ios::app);
    if (!sinks.jsonl_file) {
      std::fprintf(stderr, "lumen_collect: cannot open %s\n",
                   options.jsonl_path.c_str());
      return 1;
    }
    sinks.jsonl = &sinks.jsonl_file;
  }

  obs::wire::WireDecoder decoder;
  std::vector<std::byte> buffer(65536);
  std::uint64_t frames = 0;
  double idle_seconds = 0.0;
  constexpr double kPollSeconds = 0.25;
  while (options.max_frames == 0 || frames < options.max_frames) {
    const long n = socket.recv(buffer, kPollSeconds);
    if (n < 0) {
      std::fprintf(stderr, "lumen_collect: socket error\n");
      break;
    }
    if (n == 0) {
      idle_seconds += kPollSeconds;
      if (options.idle_exit_seconds > 0.0 &&
          idle_seconds >= options.idle_exit_seconds)
        break;
      continue;
    }
    idle_seconds = 0.0;
    ++frames;
    (void)decoder.decode_frame(
        std::span<const std::byte>(buffer.data(), static_cast<std::size_t>(n)));
    drain(decoder, sinks);
  }
  decoder.flush();  // emit the in-progress snapshot at end of stream
  drain(decoder, sinks);
  if (!options.quiet) report(decoder.stats());
  return 0;
}

/// Exporter → UDP loopback → decoder, in-process; exact round-trip or
/// nonzero exit.  Doubles as the binary's smoke test.
int run_selfcheck() {
  UdpSocket receiver(0);  // ephemeral port
  if (!receiver.ok()) {
    std::fprintf(stderr, "lumen_collect: selfcheck cannot bind\n");
    return 1;
  }
  obs::wire::UdpWireTransport transport(receiver.port());

  obs::wire::WireExporterOptions exporter_options;
  exporter_options.template_interval = 2;  // exercise the resend path
  obs::wire::WireExporter exporter(transport, exporter_options);

  obs::PumpSnapshot sent;
  sent.tick = 7;
  sent.uptime_seconds = 1.5;
  sent.counters = {{"lumen.rwa.blocked", 3}, {"lumen.rwa.offered", 41}};
  sent.counter_deltas = {{"lumen.rwa.blocked", 1}, {"lumen.rwa.offered", 8}};
  sent.gauges = {{"lumen.rwa.util.busy_ratio", 0.375}};
  obs::HistogramSummary summary;
  summary.count = 12;
  summary.mean = 2.5e-6;
  summary.min = 1e-7;
  summary.max = 9e-6;
  summary.p50 = 2e-6;
  summary.p90 = 7e-6;
  summary.p99 = 8.5e-6;
  sent.histograms = {{"lumen.rwa.open_latency_ns", summary}};
  // Labeled children + profile stacks (templates 262-264); the label
  // value exercises the canonical escaping (backslash, comma, equals).
  obs::LabeledCounterSample labeled_counter;
  labeled_counter.name = "lumen.svc.admitted";
  labeled_counter.labels = "tenant=3";
  labeled_counter.value = 17;
  labeled_counter.delta = 4;
  sent.labeled_counters = {labeled_counter};
  obs::LabeledGaugeSample labeled_gauge;
  labeled_gauge.name = "lumen.svc.tenant_share";
  labeled_gauge.labels = "policy=a\\,b\\=c,tenant=3";
  labeled_gauge.value = 0.625;
  sent.labeled_gauges = {labeled_gauge};
  obs::LabeledHistogramSample labeled_histogram;
  labeled_histogram.name = "lumen.svc.admit_latency_ns";
  labeled_histogram.labels = "tenant=3";
  labeled_histogram.summary = summary;
  labeled_histogram.exemplar = 0xfeedbeef;
  sent.labeled_histograms = {labeled_histogram};
  obs::ProfileEntry profile_entry;
  profile_entry.stack = "svc.admit;svc.route";
  profile_entry.samples = 24;
  profile_entry.self_ns = 9000;
  profile_entry.total_ns = 12000;
  sent.profile = {profile_entry};
  obs::AlertEvent alert;
  alert.rule = "blocking";
  alert.metric = "lumen.rwa.blocked";
  alert.value = 0.25;
  alert.threshold = 0.2;
  alert.tick = 7;
  sent.alerts = {alert};
  exporter.export_snapshot(sent);

  obs::RouteEvent event;
  event.sequence = 5;
  event.source = 2;
  event.target = 9;
  event.policy = "semilightpath";
  event.outcome = "carried";
  event.cost = 31.25;
  event.hops = 4;
  event.trace_id = 0xabcdef;
  exporter.export_route_events(std::span<const obs::RouteEvent>(&event, 1));

  obs::wire::WireDecoder decoder;
  std::vector<std::byte> buffer(65536);
  for (;;) {
    const long n = receiver.recv(buffer, 0.5);
    if (n <= 0) break;
    (void)decoder.decode_frame(
        std::span<const std::byte>(buffer.data(), static_cast<std::size_t>(n)));
  }
  decoder.flush();

  const std::vector<obs::PumpSnapshot> snapshots = decoder.take_snapshots();
  const std::vector<obs::RouteEvent> events = decoder.take_route_events();
  bool ok = decoder.stats().frames_rejected == 0 &&
            decoder.stats().frames_received > 0;
  ok = ok && snapshots.size() == 1 &&
       obs::pump_snapshot_to_json(snapshots[0]) ==
           obs::pump_snapshot_to_json(sent) &&
       snapshots[0].alerts.size() == 1 &&
       snapshots[0].alerts[0].rule == alert.rule &&
       snapshots[0].alerts[0].value == alert.value;
  ok = ok && events.size() == 1 && events[0] == event;
  report(decoder.stats());
  std::fprintf(stderr, "lumen_collect: selfcheck %s\n",
               ok ? "passed" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--selfcheck") == 0) {
      options.selfcheck = true;
    } else if (std::strcmp(arg, "--port") == 0 && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--jsonl") == 0 && i + 1 < argc) {
      options.jsonl_path = argv[++i];
    } else if (std::strcmp(arg, "--prom") == 0 && i + 1 < argc) {
      options.prom_path = argv[++i];
    } else if (std::strcmp(arg, "--frames") == 0 && i + 1 < argc) {
      options.max_frames =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(arg, "--idle-exit") == 0 && i + 1 < argc) {
      options.idle_exit_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--quiet") == 0) {
      options.quiet = true;
    } else {
      usage();
      return 2;
    }
  }
  if (options.selfcheck) return run_selfcheck();
  if (options.port < 0 || options.port > 65535) {
    usage();
    return 2;
  }
  return run_collect(options);
}
