// Branch-light argmin over a batch of four heap keys.
//
// The 4-ary heap's sift-down spends most of its time finding the smallest
// of four child keys.  With SearchScratch's position-parallel hkey_
// layout those keys sit in one contiguous 32-byte run, so the comparison
// tree vectorizes: two packed min lanes plus one cross-lane min produce
// the minimum value, and a packed compare-against-broadcast yields the
// index — no data-dependent branches.  SSE2 and NEON paths sit behind a
// portable fallback with identical semantics: the *first* index attaining
// the minimum wins ties, matching the scalar left-to-right scan it
// replaces (heap shape, and therefore search determinism, is preserved
// bit-for-bit).
//
// The sift-down hook is opt-in (-DLUMEN_SIMD_HEAP): on the reference
// container the index-extraction chain loses to three predicted scalar
// compares over the same contiguous run — see the sift-down ablation in
// docs/PERFORMANCE.md before enabling it on a new target.
#pragma once

#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace lumen {

/// Index in [0, 4) of the smallest of k[0..3]; first index on ties.
/// NaNs are not expected (search keys are finite or +infinity).
inline unsigned argmin4(const double k[4]) noexcept {
#if defined(__SSE2__)
  const __m128d lo = _mm_loadu_pd(k);      // k0 k1
  const __m128d hi = _mm_loadu_pd(k + 2);  // k2 k3
  __m128d m = _mm_min_pd(lo, hi);          // min(k0,k2) min(k1,k3)
  m = _mm_min_pd(m, _mm_unpackhi_pd(m, m));
  const __m128d best = _mm_unpacklo_pd(m, m);  // broadcast the minimum
  const unsigned eq = static_cast<unsigned>(_mm_movemask_pd(
                          _mm_cmpeq_pd(lo, best)) |
                      (_mm_movemask_pd(_mm_cmpeq_pd(hi, best)) << 2));
  // eq is nonzero by construction; lowest set bit = first minimal index.
  return static_cast<unsigned>(__builtin_ctz(eq));
#elif defined(__aarch64__) && defined(__ARM_NEON)
  const float64x2_t lo = vld1q_f64(k);
  const float64x2_t hi = vld1q_f64(k + 2);
  const double best = vminvq_f64(vminq_f64(lo, hi));
  const float64x2_t bestv = vdupq_n_f64(best);
  const uint64x2_t eq_lo = vceqq_f64(lo, bestv);
  const uint64x2_t eq_hi = vceqq_f64(hi, bestv);
  const unsigned eq =
      static_cast<unsigned>((vgetq_lane_u64(eq_lo, 0) & 1u) |
                            ((vgetq_lane_u64(eq_lo, 1) & 1u) << 1) |
                            ((vgetq_lane_u64(eq_hi, 0) & 1u) << 2) |
                            ((vgetq_lane_u64(eq_hi, 1) & 1u) << 3));
  return static_cast<unsigned>(__builtin_ctz(eq));
#else
  unsigned best = 0;
  for (unsigned i = 1; i < 4; ++i) {
    if (k[i] < k[best]) best = i;
  }
  return best;
#endif
}

}  // namespace lumen
