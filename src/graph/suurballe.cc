#include "graph/suurballe.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/dijkstra.h"

namespace lumen {

namespace {

/// Splits the union of two link-disjoint s→t paths into the two paths.
/// `pool[v]` holds the union's outgoing links at v (original ids).
std::vector<LinkId> walk_off_one_path(
    const Digraph& g, std::unordered_map<std::uint32_t,
                                         std::vector<LinkId>>& pool,
    NodeId s, NodeId t) {
  std::vector<LinkId> path;
  NodeId at = s;
  while (at != t) {
    auto it = pool.find(at.value());
    LUMEN_ASSERT(it != pool.end() && !it->second.empty());
    const LinkId e = it->second.back();
    it->second.pop_back();
    path.push_back(e);
    at = g.head(e);
  }
  return path;
}

}  // namespace

std::optional<DisjointPair> suurballe_disjoint_pair(const Digraph& g,
                                                    NodeId s, NodeId t) {
  LUMEN_REQUIRE(s.value() < g.num_nodes());
  LUMEN_REQUIRE(t.value() < g.num_nodes());
  LUMEN_REQUIRE_MSG(s != t, "Suurballe requires distinct endpoints");

  // 1. Shortest-path tree from s and the first path.
  const ShortestPathTree tree = dijkstra(g, s);
  if (!tree.reached(t)) return std::nullopt;
  const auto first_path = extract_path(g, tree, t);
  LUMEN_ASSERT(first_path.has_value());
  std::unordered_set<std::uint32_t> on_first;
  for (const LinkId e : *first_path) on_first.insert(e.value());

  // 2. Residual graph with reduced weights; first-path links reversed.
  //    residual link i maps back to (original id, reversed?).
  Digraph residual(g.num_nodes());
  std::vector<std::pair<LinkId, bool>> origin;
  residual.reserve_links(g.num_links());
  origin.reserve(g.num_links());
  for (std::uint32_t ei = 0; ei < g.num_links(); ++ei) {
    const LinkId e{ei};
    const double w = g.weight(e);
    if (w == kInfiniteCost) continue;
    const double du = tree.dist[g.tail(e).value()];
    const double dv = tree.dist[g.head(e).value()];
    if (du == kInfiniteCost || dv == kInfiniteCost) continue;
    const double reduced = std::max(0.0, w + du - dv);  // clamp FP noise
    if (on_first.contains(ei)) {
      // Reversed, weight 0 (the link lies on a shortest path).
      residual.add_link(g.head(e), g.tail(e), 0.0);
      origin.emplace_back(e, true);
    } else {
      residual.add_link(g.tail(e), g.head(e), reduced);
      origin.emplace_back(e, false);
    }
  }

  // 3. Shortest path in the residual.
  const ShortestPathTree residual_tree = dijkstra(residual, s, t);
  if (!residual_tree.reached(t)) return std::nullopt;
  const auto second_path = extract_path(residual, residual_tree, t);
  LUMEN_ASSERT(second_path.has_value());

  // 4. Union with cancellation of opposite pairs.
  std::unordered_set<std::uint32_t> union_links(on_first);
  for (const LinkId r : *second_path) {
    const auto& [original, reversed] = origin[r.value()];
    if (reversed) {
      // Traversing a first-path link backwards cancels it.
      const auto erased = union_links.erase(original.value());
      LUMEN_ASSERT(erased == 1);
    } else {
      // The two paths are link-disjoint, so no duplicates arise.
      const bool inserted = union_links.insert(original.value()).second;
      LUMEN_ASSERT(inserted);
    }
  }

  // 5. Decompose the union into the two disjoint paths.
  std::unordered_map<std::uint32_t, std::vector<LinkId>> pool;
  double total = 0.0;
  for (const std::uint32_t ei : union_links) {
    const LinkId e{ei};
    pool[g.tail(e).value()].push_back(e);
    total += g.weight(e);
  }
  DisjointPair pair;
  pair.first = walk_off_one_path(g, pool, s, t);
  pair.second = walk_off_one_path(g, pool, s, t);
  pair.total_cost = total;
  return pair;
}

}  // namespace lumen
