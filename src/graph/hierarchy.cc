#include "graph/hierarchy.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <queue>
#include <tuple>

namespace lumen {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

ContractionHierarchy::ContractionHierarchy(const CsrDigraph& g,
                                           const Options& options) {
  const std::uint32_t n = g.num_nodes();
  const std::uint32_t m = g.num_links();
  build_stats_.nodes = n;
  const auto order_start = Clock::now();

  // Live adjacency during elimination: distinct-neighbor -> arc id, kept
  // in ordered maps so the elimination (and therefore the whole
  // hierarchy) is deterministic.
  std::vector<std::map<std::uint32_t, std::uint32_t>> out_nbr(n);
  std::vector<std::map<std::uint32_t, std::uint32_t>> in_nbr(n);
  std::vector<std::vector<std::uint32_t>> inputs;        // per arc
  std::vector<std::vector<std::uint32_t>> supports_a;    // per arc
  std::vector<std::vector<std::uint32_t>> supports_b;    // per arc

  const auto add_arc = [&](std::uint32_t u, std::uint32_t w) {
    const auto id = static_cast<std::uint32_t>(arc_tail_.size());
    arc_tail_.push_back(u);
    arc_head_.push_back(w);
    inputs.emplace_back();
    supports_a.emplace_back();
    supports_b.emplace_back();
    out_nbr[u].emplace(w, id);
    in_nbr[w].emplace(u, id);
    return id;
  };

  // Initial arcs: parallel CSR slots u->w min-merge into one arc.
  slot_arc_.assign(m, kInvalidArc);
  for (std::uint32_t u = 0; u < n; ++u) {
    const auto [first, last] = g.out_slot_range(NodeId{u});
    for (std::uint32_t slot = first; slot < last; ++slot) {
      const std::uint32_t w = g.head(slot).value();
      if (u == w) continue;  // self-loops never lie on a cheapest route
      const auto it = out_nbr[u].find(w);
      const std::uint32_t id = it != out_nbr[u].end() ? it->second
                                                      : add_arc(u, w);
      inputs[id].push_back(slot);
      slot_arc_[slot] = id;
    }
  }
  build_stats_.input_arcs = static_cast<std::uint32_t>(arc_tail_.size());

  // Elimination ordering: lazy priority queue over (priority, node,
  // version).  Deferred nodes (over the caps) re-enter only when a
  // neighbor's elimination changes their neighborhood.
  rank_.assign(n, kCoreRank);
  std::vector<std::uint32_t> level(n, 0);
  std::vector<std::uint32_t> version(n, 0);
  std::vector<std::uint8_t> eliminated(n, 0);

  const auto degree_estimate = [&](std::uint32_t x) {
    const auto in = static_cast<std::int64_t>(in_nbr[x].size());
    const auto out = static_cast<std::int64_t>(out_nbr[x].size());
    return 2 * (in * out - in - out) + static_cast<std::int64_t>(level[x]);
  };
  // Exact fill-in: pairs (u, v) of in/out neighbors not yet connected.
  const auto fill_of = [&](std::uint32_t x) {
    std::uint32_t fill = 0;
    for (const auto& [u, a1] : in_nbr[x]) {
      for (const auto& [v, a2] : out_nbr[x]) {
        if (u == v) continue;
        if (out_nbr[u].find(v) == out_nbr[u].end()) ++fill;
      }
    }
    return fill;
  };

  using Entry = std::tuple<std::int64_t, std::uint32_t, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (std::uint32_t x = 0; x < n; ++x) {
    queue.emplace(degree_estimate(x), x, 0);
  }

  std::uint32_t next_rank = 0;
  while (!queue.empty()) {
    const auto [popped_priority, x, ver] = queue.top();
    queue.pop();
    if (eliminated[x]) continue;
    if (ver != version[x]) continue;  // superseded entry
    const auto in = static_cast<std::uint32_t>(in_nbr[x].size());
    const auto out = static_cast<std::uint32_t>(out_nbr[x].size());
    if (in > options.degree_cap || out > options.degree_cap) continue;
    const std::uint32_t fill = fill_of(x);
    if (fill > options.fill_cap) continue;
    const std::int64_t exact_priority =
        2 * (static_cast<std::int64_t>(fill) -
             static_cast<std::int64_t>(in + out)) +
        static_cast<std::int64_t>(level[x]);
    if (exact_priority > popped_priority) {
      queue.emplace(exact_priority, x, ver);  // try again at true priority
      continue;
    }

    // Eliminate x: bypass it with a (possibly merged) shortcut per
    // surviving neighbor pair, supported by the two arcs it replaces.
    rank_[x] = next_rank++;
    eliminated[x] = 1;
    for (const auto& [u, a1] : in_nbr[x]) {
      for (const auto& [v, a2] : out_nbr[x]) {
        if (u == v) continue;
        const auto it = out_nbr[u].find(v);
        std::uint32_t id;
        if (it != out_nbr[u].end()) {
          id = it->second;
        } else {
          id = add_arc(u, v);
          ++build_stats_.shortcut_arcs;
        }
        supports_a[id].push_back(a1);
        supports_b[id].push_back(a2);
      }
    }
    const auto bump = [&](std::uint32_t u) {
      level[u] = std::max(level[u], level[x] + 1);
      ++version[u];
      queue.emplace(degree_estimate(u), u, version[u]);
    };
    for (const auto& [u, a1] : in_nbr[x]) {
      out_nbr[u].erase(x);
      bump(u);
    }
    for (const auto& [v, a2] : out_nbr[x]) {
      in_nbr[v].erase(x);
      bump(v);
    }
  }
  build_stats_.core_nodes = n - next_rank;
  build_stats_.order_seconds = seconds_since(order_start);

  // --- freeze the transient per-arc vectors into flat CSR-style arrays.
  const auto num_arcs = static_cast<std::uint32_t>(arc_tail_.size());
  arc_value_.assign(num_arcs, kInfiniteCost);
  arc_bucket_.resize(num_arcs);
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    const std::uint32_t rt = rank_[arc_tail_[a]];
    const std::uint32_t rh = rank_[arc_head_[a]];
    const std::uint32_t key = std::min(rt, rh);
    arc_bucket_[a] = key == kCoreRank ? next_rank : key;
  }

  input_offset_.assign(num_arcs + 1, 0);
  support_offset_.assign(num_arcs + 1, 0);
  parent_offset_.assign(num_arcs + 1, 0);
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    input_offset_[a + 1] =
        input_offset_[a] + static_cast<std::uint32_t>(inputs[a].size());
    support_offset_[a + 1] =
        support_offset_[a] + static_cast<std::uint32_t>(supports_a[a].size());
  }
  input_slots_.reserve(input_offset_[num_arcs]);
  support_a_.reserve(support_offset_[num_arcs]);
  support_b_.reserve(support_offset_[num_arcs]);
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    input_slots_.insert(input_slots_.end(), inputs[a].begin(),
                        inputs[a].end());
    support_a_.insert(support_a_.end(), supports_a[a].begin(),
                      supports_a[a].end());
    support_b_.insert(support_b_.end(), supports_b[a].begin(),
                      supports_b[a].end());
    for (const std::uint32_t s : supports_a[a]) ++parent_offset_[s + 1];
    for (const std::uint32_t s : supports_b[a]) ++parent_offset_[s + 1];
  }
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    parent_offset_[a + 1] += parent_offset_[a];
  }
  parent_arcs_.resize(parent_offset_[num_arcs]);
  {
    std::vector<std::uint32_t> cursor(parent_offset_.begin(),
                                      parent_offset_.end() - 1);
    for (std::uint32_t a = 0; a < num_arcs; ++a) {
      for (std::uint32_t i = support_offset_[a]; i < support_offset_[a + 1];
           ++i) {
        parent_arcs_[cursor[support_a_[i]]++] = a;
        parent_arcs_[cursor[support_b_[i]]++] = a;
      }
    }
  }

  // Query adjacency.  Each arc lands in exactly one side: rising rank or
  // core-core -> forward (relaxed tail->head), strictly falling rank ->
  // backward (relaxed head->tail from the sinks).
  fwd_offset_.assign(n + 1, 0);
  bwd_offset_.assign(n + 1, 0);
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    const std::uint32_t rt = rank_[arc_tail_[a]];
    const std::uint32_t rh = rank_[arc_head_[a]];
    if (rt < rh || (rt == kCoreRank && rh == kCoreRank)) {
      ++fwd_offset_[arc_tail_[a] + 1];
    } else {
      ++bwd_offset_[arc_head_[a] + 1];
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    fwd_offset_[v + 1] += fwd_offset_[v];
    bwd_offset_[v + 1] += bwd_offset_[v];
  }
  fwd_arcs_.resize(fwd_offset_[n]);
  bwd_arcs_.resize(bwd_offset_[n]);
  {
    std::vector<std::uint32_t> fcur(fwd_offset_.begin(),
                                    fwd_offset_.end() - 1);
    std::vector<std::uint32_t> bcur(bwd_offset_.begin(),
                                    bwd_offset_.end() - 1);
    for (std::uint32_t a = 0; a < num_arcs; ++a) {
      const std::uint32_t rt = rank_[arc_tail_[a]];
      const std::uint32_t rh = rank_[arc_head_[a]];
      if (rt < rh || (rt == kCoreRank && rh == kCoreRank)) {
        fwd_arcs_[fcur[arc_tail_[a]]++] = a;
      } else {
        bwd_arcs_[bcur[arc_head_[a]]++] = a;
      }
    }
  }

  // First full customization on the arena's current weights.
  const auto customize_start = Clock::now();
  slot_weight_.assign(g.weights_data(), g.weights_data() + m);
  dirty_buckets_.resize(static_cast<std::size_t>(next_rank) + 1);
  arc_dirty_.assign(num_arcs, 0);
  for (std::uint32_t a = 0; a < num_arcs; ++a) mark_dirty(a);
  (void)customize();
  build_stats_.customize_seconds = seconds_since(customize_start);
}

double ContractionHierarchy::evaluate(std::uint32_t arc) const {
  double value = kInfiniteCost;
  for (std::uint32_t i = input_offset_[arc]; i < input_offset_[arc + 1];
       ++i) {
    value = std::min(value, slot_weight_[input_slots_[i]]);
  }
  for (std::uint32_t i = support_offset_[arc]; i < support_offset_[arc + 1];
       ++i) {
    value = std::min(value, arc_value_[support_a_[i]] +
                                arc_value_[support_b_[i]]);
  }
  return value;
}

void ContractionHierarchy::mark_dirty(std::uint32_t arc) {
  if (arc_dirty_[arc] != 0) return;
  arc_dirty_[arc] = 1;
  dirty_buckets_[arc_bucket_[arc]].push_back(arc);
  ++dirty_count_;
}

void ContractionHierarchy::update_slot(std::uint32_t slot, double weight) {
  LUMEN_REQUIRE(slot < slot_weight_.size());
  if (slot_weight_[slot] == weight) return;
  slot_weight_[slot] = weight;
  if (slot_arc_[slot] != kInvalidArc) mark_dirty(slot_arc_[slot]);
}

std::uint32_t ContractionHierarchy::customize() {
  std::uint32_t touched = 0;
  // Ascending freeze-rank sweep; an arc's supports live in strictly lower
  // buckets, so each arc settles in one visit.  Value changes propagate
  // only upward through the explicit dependent lists (index loop: the
  // current bucket never grows while being drained).
  for (auto& bucket : dirty_buckets_) {
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const std::uint32_t arc = bucket[i];
      arc_dirty_[arc] = 0;
      ++touched;
      const double value = evaluate(arc);
      if (value == arc_value_[arc]) continue;
      arc_value_[arc] = value;
      for (std::uint32_t p = parent_offset_[arc]; p < parent_offset_[arc + 1];
           ++p) {
        mark_dirty(parent_arcs_[p]);
      }
    }
    bucket.clear();
  }
  dirty_count_ = 0;
  return touched;
}

void ContractionHierarchy::unpack(std::uint32_t arc,
                                  std::vector<std::uint32_t>& slots_out)
    const {
  // Depth-first expansion with an explicit stack; pushing the right
  // support before the left keeps emission in path order.  Matches are
  // exact: an arc's value is bit-for-bit one of its candidates.
  std::vector<std::uint32_t> stack;
  stack.push_back(arc);
  while (!stack.empty()) {
    const std::uint32_t cur = stack.back();
    stack.pop_back();
    const double value = arc_value_[cur];
    LUMEN_ASSERT(value != kInfiniteCost);
    bool matched = false;
    for (std::uint32_t i = input_offset_[cur]; i < input_offset_[cur + 1];
         ++i) {
      if (slot_weight_[input_slots_[i]] == value) {
        slots_out.push_back(input_slots_[i]);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (std::uint32_t i = support_offset_[cur]; i < support_offset_[cur + 1];
         ++i) {
      if (arc_value_[support_a_[i]] + arc_value_[support_b_[i]] == value) {
        stack.push_back(support_b_[i]);
        stack.push_back(support_a_[i]);
        matched = true;
        break;
      }
    }
    LUMEN_ASSERT(matched);  // value is always one of its candidates
  }
}

}  // namespace lumen
