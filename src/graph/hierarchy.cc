#include "graph/hierarchy.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <queue>
#include <tuple>

#if defined(__SSE2__)
#include <emmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace lumen {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Relaxes one downward arc across all lanes: dst[l] = min(dst[l],
// src[l] + w), recording `arc` as the parent of every improved lane.
// +inf propagates through the IEEE add, so unreachable lanes never win a
// comparison.  kLanes == 0 selects the runtime-width scalar tail; the
// fixed even widths (4/8) run two lanes per packed op under SSE2/NEON,
// following the simd_min.h convention (guarded intrinsics, exact parity
// with the scalar loop — strict < keeps first-writer ties identical).
template <std::uint32_t kLanes>
inline void relax_lanes(const double* src, double* dst, std::uint32_t* par,
                        double w, std::uint32_t arc, std::uint32_t lanes) {
#if defined(__SSE2__)
  if constexpr (kLanes >= 2) {
    const __m128d ww = _mm_set1_pd(w);
    for (std::uint32_t l = 0; l < kLanes; l += 2) {
      const __m128d cand = _mm_add_pd(_mm_loadu_pd(src + l), ww);
      const __m128d cur = _mm_loadu_pd(dst + l);
      const int mask = _mm_movemask_pd(_mm_cmplt_pd(cand, cur));
      if (mask == 0) continue;
      _mm_storeu_pd(dst + l, _mm_min_pd(cand, cur));
      if ((mask & 1) != 0) par[l] = arc;
      if ((mask & 2) != 0) par[l + 1] = arc;
    }
    return;
  }
#elif defined(__aarch64__) && defined(__ARM_NEON)
  if constexpr (kLanes >= 2) {
    const float64x2_t ww = vdupq_n_f64(w);
    for (std::uint32_t l = 0; l < kLanes; l += 2) {
      const float64x2_t cand = vaddq_f64(vld1q_f64(src + l), ww);
      const float64x2_t cur = vld1q_f64(dst + l);
      const uint64x2_t lt = vcltq_f64(cand, cur);
      if (vgetq_lane_u64(lt, 0) == 0 && vgetq_lane_u64(lt, 1) == 0) continue;
      vst1q_f64(dst + l, vminq_f64(cand, cur));
      if (vgetq_lane_u64(lt, 0) != 0) par[l] = arc;
      if (vgetq_lane_u64(lt, 1) != 0) par[l + 1] = arc;
    }
    return;
  }
#endif
  const std::uint32_t width = kLanes == 0 ? lanes : kLanes;
  for (std::uint32_t l = 0; l < width; ++l) {
    const double cand = src[l] + w;
    if (cand < dst[l]) {
      dst[l] = cand;
      par[l] = arc;
    }
  }
}

}  // namespace

ContractionHierarchy::ContractionHierarchy(const CsrDigraph& g,
                                           const Options& options) {
  const std::uint32_t n = g.num_nodes();
  const std::uint32_t m = g.num_links();
  build_stats_.nodes = n;
  const auto order_start = Clock::now();

  // Live adjacency during elimination: distinct-neighbor -> arc id, kept
  // in ordered maps so the elimination (and therefore the whole
  // hierarchy) is deterministic.
  std::vector<std::map<std::uint32_t, std::uint32_t>> out_nbr(n);
  std::vector<std::map<std::uint32_t, std::uint32_t>> in_nbr(n);
  std::vector<std::vector<std::uint32_t>> inputs;        // per arc
  std::vector<std::vector<std::uint32_t>> supports_a;    // per arc
  std::vector<std::vector<std::uint32_t>> supports_b;    // per arc

  const auto add_arc = [&](std::uint32_t u, std::uint32_t w) {
    const auto id = static_cast<std::uint32_t>(arc_tail_.size());
    arc_tail_.push_back(u);
    arc_head_.push_back(w);
    inputs.emplace_back();
    supports_a.emplace_back();
    supports_b.emplace_back();
    out_nbr[u].emplace(w, id);
    in_nbr[w].emplace(u, id);
    return id;
  };

  // Initial arcs: parallel CSR slots u->w min-merge into one arc.
  slot_arc_.assign(m, kInvalidArc);
  for (std::uint32_t u = 0; u < n; ++u) {
    const auto [first, last] = g.out_slot_range(NodeId{u});
    for (std::uint32_t slot = first; slot < last; ++slot) {
      const std::uint32_t w = g.head(slot).value();
      if (u == w) continue;  // self-loops never lie on a cheapest route
      const auto it = out_nbr[u].find(w);
      const std::uint32_t id = it != out_nbr[u].end() ? it->second
                                                      : add_arc(u, w);
      inputs[id].push_back(slot);
      slot_arc_[slot] = id;
    }
  }
  build_stats_.input_arcs = static_cast<std::uint32_t>(arc_tail_.size());

  // Elimination ordering: lazy priority queue over (priority, node,
  // version).  Deferred nodes (over the caps) re-enter only when a
  // neighbor's elimination changes their neighborhood.
  rank_.assign(n, kCoreRank);
  std::vector<std::uint32_t> level(n, 0);
  std::vector<std::uint32_t> version(n, 0);
  std::vector<std::uint8_t> eliminated(n, 0);

  const auto degree_estimate = [&](std::uint32_t x) {
    const auto in = static_cast<std::int64_t>(in_nbr[x].size());
    const auto out = static_cast<std::int64_t>(out_nbr[x].size());
    return 2 * (in * out - in - out) + static_cast<std::int64_t>(level[x]);
  };
  // Exact fill-in: pairs (u, v) of in/out neighbors not yet connected.
  const auto fill_of = [&](std::uint32_t x) {
    std::uint32_t fill = 0;
    for (const auto& [u, a1] : in_nbr[x]) {
      for (const auto& [v, a2] : out_nbr[x]) {
        if (u == v) continue;
        if (out_nbr[u].find(v) == out_nbr[u].end()) ++fill;
      }
    }
    return fill;
  };

  using Entry = std::tuple<std::int64_t, std::uint32_t, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (std::uint32_t x = 0; x < n; ++x) {
    queue.emplace(degree_estimate(x), x, 0);
  }

  std::uint32_t next_rank = 0;
  while (!queue.empty()) {
    const auto [popped_priority, x, ver] = queue.top();
    queue.pop();
    if (eliminated[x]) continue;
    if (ver != version[x]) continue;  // superseded entry
    const auto in = static_cast<std::uint32_t>(in_nbr[x].size());
    const auto out = static_cast<std::uint32_t>(out_nbr[x].size());
    if (in > options.degree_cap || out > options.degree_cap) continue;
    const std::uint32_t fill = fill_of(x);
    if (fill > options.fill_cap) continue;
    const std::int64_t exact_priority =
        2 * (static_cast<std::int64_t>(fill) -
             static_cast<std::int64_t>(in + out)) +
        static_cast<std::int64_t>(level[x]);
    if (exact_priority > popped_priority) {
      queue.emplace(exact_priority, x, ver);  // try again at true priority
      continue;
    }

    // Eliminate x: bypass it with a (possibly merged) shortcut per
    // surviving neighbor pair, supported by the two arcs it replaces.
    rank_[x] = next_rank++;
    eliminated[x] = 1;
    for (const auto& [u, a1] : in_nbr[x]) {
      for (const auto& [v, a2] : out_nbr[x]) {
        if (u == v) continue;
        const auto it = out_nbr[u].find(v);
        std::uint32_t id;
        if (it != out_nbr[u].end()) {
          id = it->second;
        } else {
          id = add_arc(u, v);
          ++build_stats_.shortcut_arcs;
        }
        supports_a[id].push_back(a1);
        supports_b[id].push_back(a2);
      }
    }
    const auto bump = [&](std::uint32_t u) {
      level[u] = std::max(level[u], level[x] + 1);
      ++version[u];
      queue.emplace(degree_estimate(u), u, version[u]);
    };
    for (const auto& [u, a1] : in_nbr[x]) {
      out_nbr[u].erase(x);
      bump(u);
    }
    for (const auto& [v, a2] : out_nbr[x]) {
      in_nbr[v].erase(x);
      bump(v);
    }
  }
  build_stats_.core_nodes = n - next_rank;
  build_stats_.order_seconds = seconds_since(order_start);

  // --- freeze the transient per-arc vectors into flat CSR-style arrays.
  const auto num_arcs = static_cast<std::uint32_t>(arc_tail_.size());
  arc_value_.assign(num_arcs, kInfiniteCost);
  arc_bucket_.resize(num_arcs);
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    const std::uint32_t rt = rank_[arc_tail_[a]];
    const std::uint32_t rh = rank_[arc_head_[a]];
    const std::uint32_t key = std::min(rt, rh);
    arc_bucket_[a] = key == kCoreRank ? next_rank : key;
  }

  input_offset_.assign(num_arcs + 1, 0);
  support_offset_.assign(num_arcs + 1, 0);
  parent_offset_.assign(num_arcs + 1, 0);
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    input_offset_[a + 1] =
        input_offset_[a] + static_cast<std::uint32_t>(inputs[a].size());
    support_offset_[a + 1] =
        support_offset_[a] + static_cast<std::uint32_t>(supports_a[a].size());
  }
  input_slots_.reserve(input_offset_[num_arcs]);
  support_a_.reserve(support_offset_[num_arcs]);
  support_b_.reserve(support_offset_[num_arcs]);
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    input_slots_.insert(input_slots_.end(), inputs[a].begin(),
                        inputs[a].end());
    support_a_.insert(support_a_.end(), supports_a[a].begin(),
                      supports_a[a].end());
    support_b_.insert(support_b_.end(), supports_b[a].begin(),
                      supports_b[a].end());
    for (const std::uint32_t s : supports_a[a]) ++parent_offset_[s + 1];
    for (const std::uint32_t s : supports_b[a]) ++parent_offset_[s + 1];
  }
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    parent_offset_[a + 1] += parent_offset_[a];
  }
  parent_arcs_.resize(parent_offset_[num_arcs]);
  {
    std::vector<std::uint32_t> cursor(parent_offset_.begin(),
                                      parent_offset_.end() - 1);
    for (std::uint32_t a = 0; a < num_arcs; ++a) {
      for (std::uint32_t i = support_offset_[a]; i < support_offset_[a + 1];
           ++i) {
        parent_arcs_[cursor[support_a_[i]]++] = a;
        parent_arcs_[cursor[support_b_[i]]++] = a;
      }
    }
  }

  // Query adjacency.  Each arc lands in exactly one side: rising rank or
  // core-core -> forward (relaxed tail->head), strictly falling rank ->
  // backward (relaxed head->tail from the sinks).
  fwd_offset_.assign(n + 1, 0);
  bwd_offset_.assign(n + 1, 0);
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    const std::uint32_t rt = rank_[arc_tail_[a]];
    const std::uint32_t rh = rank_[arc_head_[a]];
    if (rt < rh || (rt == kCoreRank && rh == kCoreRank)) {
      ++fwd_offset_[arc_tail_[a] + 1];
    } else {
      ++bwd_offset_[arc_head_[a] + 1];
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    fwd_offset_[v + 1] += fwd_offset_[v];
    bwd_offset_[v + 1] += bwd_offset_[v];
  }
  fwd_arcs_.resize(fwd_offset_[n]);
  bwd_arcs_.resize(bwd_offset_[n]);
  {
    std::vector<std::uint32_t> fcur(fwd_offset_.begin(),
                                    fwd_offset_.end() - 1);
    std::vector<std::uint32_t> bcur(bwd_offset_.begin(),
                                    bwd_offset_.end() - 1);
    for (std::uint32_t a = 0; a < num_arcs; ++a) {
      const std::uint32_t rt = rank_[arc_tail_[a]];
      const std::uint32_t rh = rank_[arc_head_[a]];
      if (rt < rh || (rt == kCoreRank && rh == kCoreRank)) {
        fwd_arcs_[fcur[arc_tail_[a]]++] = a;
      } else {
        bwd_arcs_[bcur[arc_head_[a]]++] = a;
      }
    }
  }

  // Downward-sweep CSR for the batched one-to-all sweeps.  Sweep
  // *positions* are a level order: core nodes first (id order — they are
  // finalized by the upward Dijkstra), then eliminated nodes by strictly
  // descending rank.  Every backward arc's tail has strictly higher rank
  // than its head, so scanning positions ascending relaxes each arc after
  // its tail is final — one pass, no heap.
  node_pos_.assign(n, 0);
  pos_node_.assign(n, 0);
  {
    std::uint32_t pos = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (rank_[v] != kCoreRank) continue;
      node_pos_[v] = pos;
      pos_node_[pos] = v;
      ++pos;
    }
    first_down_pos_ = pos;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (rank_[v] == kCoreRank) continue;
      const std::uint32_t p = first_down_pos_ + (next_rank - 1 - rank_[v]);
      node_pos_[v] = p;
      pos_node_[p] = v;
    }
  }
  {
    // The backward arcs re-expressed on positions; the structure-only
    // reversed view then packs, per head position, its incoming arcs.
    // No weight row is copied — down_value_ (customized alongside
    // arc_value_) is the only store.
    Digraph down(n);
    std::vector<std::uint32_t> down_arc_of_link;
    for (std::uint32_t a = 0; a < num_arcs; ++a) {
      const std::uint32_t rt = rank_[arc_tail_[a]];
      const std::uint32_t rh = rank_[arc_head_[a]];
      if (rt < rh || (rt == kCoreRank && rh == kCoreRank)) continue;  // fwd
      down.add_link(NodeId{node_pos_[arc_tail_[a]]},
                    NodeId{node_pos_[arc_head_[a]]}, 0.0);
      down_arc_of_link.push_back(a);
    }
    down_csr_ = std::make_unique<CsrDigraph>(CsrDigraph::reversed(
        down, CsrDigraph::ReversalMode::kStructureOnly));
    const std::uint32_t dm = down_csr_->num_links();
    down_value_.assign(dm, kInfiniteCost);
    down_slot_arc_.resize(dm);
    arc_down_slot_.assign(num_arcs, kInvalidArc);
    for (std::uint32_t slot = 0; slot < dm; ++slot) {
      const std::uint32_t a = down_arc_of_link[down_csr_->original(slot)
                                                   .value()];
      down_slot_arc_[slot] = a;
      arc_down_slot_[a] = slot;
    }
  }

  // First full customization on the arena's current weights.
  const auto customize_start = Clock::now();
  slot_weight_.assign(g.weights_data(), g.weights_data() + m);
  dirty_buckets_.resize(static_cast<std::size_t>(next_rank) + 1);
  arc_dirty_.assign(num_arcs, 0);
  for (std::uint32_t a = 0; a < num_arcs; ++a) mark_dirty(a);
  (void)customize();
  build_stats_.customize_seconds = seconds_since(customize_start);
}

double ContractionHierarchy::evaluate(std::uint32_t arc) const {
  double value = kInfiniteCost;
  for (std::uint32_t i = input_offset_[arc]; i < input_offset_[arc + 1];
       ++i) {
    value = std::min(value, slot_weight_[input_slots_[i]]);
  }
  for (std::uint32_t i = support_offset_[arc]; i < support_offset_[arc + 1];
       ++i) {
    value = std::min(value, arc_value_[support_a_[i]] +
                                arc_value_[support_b_[i]]);
  }
  return value;
}

void ContractionHierarchy::mark_dirty(std::uint32_t arc) {
  if (arc_dirty_[arc] != 0) return;
  arc_dirty_[arc] = 1;
  dirty_buckets_[arc_bucket_[arc]].push_back(arc);
  ++dirty_count_;
}

void ContractionHierarchy::update_slot(std::uint32_t slot, double weight) {
  LUMEN_REQUIRE(slot < slot_weight_.size());
  if (slot_weight_[slot] == weight) return;
  slot_weight_[slot] = weight;
  if (slot_arc_[slot] != kInvalidArc) mark_dirty(slot_arc_[slot]);
}

std::uint32_t ContractionHierarchy::customize() {
  std::uint32_t touched = 0;
  // Ascending freeze-rank sweep; an arc's supports live in strictly lower
  // buckets, so each arc settles in one visit.  Value changes propagate
  // only upward through the explicit dependent lists (index loop: the
  // current bucket never grows while being drained).
  for (auto& bucket : dirty_buckets_) {
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const std::uint32_t arc = bucket[i];
      arc_dirty_[arc] = 0;
      ++touched;
      const double value = evaluate(arc);
      if (value == arc_value_[arc]) continue;
      arc_value_[arc] = value;
      // Mirror downward-arc values into the sweep's slot-ordered row so the
      // linear down scan never chases arc ids (structure-only CSR).
      if (const std::uint32_t ds = arc_down_slot_[arc]; ds != kInvalidArc) {
        down_value_[ds] = value;
      }
      for (std::uint32_t p = parent_offset_[arc]; p < parent_offset_[arc + 1];
           ++p) {
        mark_dirty(parent_arcs_[p]);
      }
    }
    bucket.clear();
  }
  dirty_count_ = 0;
  return touched;
}

void ContractionHierarchy::unpack(std::uint32_t arc,
                                  std::vector<std::uint32_t>& slots_out)
    const {
  // Depth-first expansion with an explicit stack; pushing the right
  // support before the left keeps emission in path order.  Matches are
  // exact: an arc's value is bit-for-bit one of its candidates.
  std::vector<std::uint32_t> stack;
  stack.push_back(arc);
  while (!stack.empty()) {
    const std::uint32_t cur = stack.back();
    stack.pop_back();
    const double value = arc_value_[cur];
    LUMEN_ASSERT(value != kInfiniteCost);
    bool matched = false;
    for (std::uint32_t i = input_offset_[cur]; i < input_offset_[cur + 1];
         ++i) {
      if (slot_weight_[input_slots_[i]] == value) {
        slots_out.push_back(input_slots_[i]);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (std::uint32_t i = support_offset_[cur]; i < support_offset_[cur + 1];
         ++i) {
      if (arc_value_[support_a_[i]] + arc_value_[support_b_[i]] == value) {
        stack.push_back(support_b_[i]);
        stack.push_back(support_a_[i]);
        matched = true;
        break;
      }
    }
    LUMEN_ASSERT(matched);  // value is always one of its candidates
  }
}

// --- batched one-to-all sweeps (PHAST-style) -------------------------------

void ContractionHierarchy::sweep_upward(std::span<const NodeId> seeds,
                                        std::uint32_t lane,
                                        std::uint32_t lanes,
                                        SearchScratch& scratch,
                                        SweepStats* stats) const {
  const auto n = static_cast<std::uint32_t>(rank_.size());
  scratch.begin(n);
  for (const NodeId s : seeds) {
    LUMEN_REQUIRE(s.value() < n);
    scratch.touch(s.value());
    if (scratch.dist_[s.value()] > 0.0) {
      scratch.dist_[s.value()] = 0.0;
      scratch.parent_[s.value()] = kInvalidArc;
      scratch.heap_push(s.value(), 0.0);
    }
  }
  while (!scratch.heap_.empty()) {
    const std::uint32_t u = scratch.heap_pop_min();
    scratch.state_[u] = SearchScratch::kSettled;
    if (stats != nullptr) ++stats->upward_pops;
    const double du = scratch.dist_[u];
    // Scatter the settled label into the position-major lane arrays; the
    // down sweep and exact-fix pass work entirely in position space.
    const std::size_t entry =
        static_cast<std::size_t>(node_pos_[u]) * lanes + lane;
    scratch.sweep_dist_[entry] = du;
    scratch.sweep_parent_[entry] = scratch.parent_[u];
    for (std::uint32_t i = fwd_offset_[u]; i < fwd_offset_[u + 1]; ++i) {
      const std::uint32_t a = fwd_arcs_[i];
      const double w = arc_value_[a];
      if (w == kInfiniteCost) continue;
      const std::uint32_t v = arc_head_[a];
      scratch.touch(v);
      if (scratch.state_[v] == SearchScratch::kSettled) continue;
      const double candidate = du + w;
      if (candidate < scratch.dist_[v]) {
        const bool queued = scratch.state_[v] == SearchScratch::kInHeap;
        scratch.dist_[v] = candidate;
        scratch.parent_[v] = a;
        if (queued) {
          scratch.heap_decrease(v, candidate);
        } else {
          scratch.heap_push(v, candidate);
        }
      }
    }
  }
}

template <std::uint32_t kLanes>
void ContractionHierarchy::down_sweep_fixed(std::uint32_t lanes,
                                            SearchScratch& scratch,
                                            SweepStats* stats) const {
  const std::uint32_t width = kLanes == 0 ? lanes : kLanes;
  const auto n = static_cast<std::uint32_t>(rank_.size());
  const std::uint32_t* tails = down_csr_->heads_data();  // tail positions
  const double* values = down_value_.data();
  double* dist = scratch.sweep_dist_.data();
  std::uint32_t* parent = scratch.sweep_parent_.data();
  std::uint64_t scanned = 0;
  for (std::uint32_t p = first_down_pos_; p < n; ++p) {
    const auto [first, last] = down_csr_->out_slot_range(NodeId{p});
    if (first == last) continue;
    double* dst = dist + static_cast<std::size_t>(p) * width;
    std::uint32_t* par = parent + static_cast<std::size_t>(p) * width;
    for (std::uint32_t slot = first; slot < last; ++slot) {
      const double w = values[slot];
      if (w == kInfiniteCost) continue;
      const double* src =
          dist + static_cast<std::size_t>(tails[slot]) * width;
      relax_lanes<kLanes>(src, dst, par, w, down_slot_arc_[slot], width);
    }
    scanned += last - first;
  }
  if (stats != nullptr) stats->arcs_scanned += scanned * width;
}

void ContractionHierarchy::sweep_exact_fix(std::uint32_t lanes,
                                           SearchScratch& scratch) const {
  const auto n = static_cast<std::uint32_t>(rank_.size());
  const std::size_t entries = static_cast<std::size_t>(n) * lanes;
  double* dist = scratch.sweep_dist_.data();
  const std::uint32_t* parent = scratch.sweep_parent_.data();
  std::uint8_t* done = scratch.sweep_done_.data();
  std::fill_n(done, entries, std::uint8_t{0});
  auto& stack = scratch.sweep_stack_;
  auto& slots = scratch.sweep_slots_;
  // Memoized iterative recursion along the final parent forest: an
  // entry's exact value is exact(tail of parent arc) folded left-to-right
  // over the parent arc's unpacked slot weights — exactly the addition
  // order a flat Dijkstra would have used on the same path.  Seeds (0)
  // and unreached lanes (+inf) have no parent and are already exact.
  for (std::size_t e0 = 0; e0 < entries; ++e0) {
    if (done[e0] != 0) continue;
    stack.clear();
    stack.push_back(static_cast<std::uint32_t>(e0));
    while (!stack.empty()) {
      const std::uint32_t e = stack.back();
      if (done[e] == 1) {
        stack.pop_back();
        continue;
      }
      const std::uint32_t a = parent[e];
      if (a == kInvalidArc) {
        done[e] = 1;
        stack.pop_back();
        continue;
      }
      const std::uint32_t lane = e % lanes;
      const std::uint32_t te =
          node_pos_[arc_tail_[a]] * lanes + lane;
      if (done[te] != 1) {
        if (done[te] == 2) {
          // Parent chains are acyclic whenever differently-rounded path
          // sums differ (the generic case); a razor-thin float tie could
          // in principle close a loop, so keep the min-plus value (equal
          // within one rounding) instead of spinning.
          done[e] = 1;
          stack.pop_back();
          continue;
        }
        done[e] = 2;
        stack.push_back(te);
        continue;
      }
      double acc = dist[te];
      slots.clear();
      unpack(a, slots);
      for (const std::uint32_t s : slots) acc += slot_weight_[s];
      dist[e] = acc;
      done[e] = 1;
      stack.pop_back();
    }
  }
}

void ContractionHierarchy::many_to_all(
    std::span<const std::span<const NodeId>> seed_sets,
    SearchScratch& scratch, std::span<double* const> dist_rows,
    SweepStats* stats) const {
  LUMEN_REQUIRE_MSG(!stale(), "hierarchy swept before customize()");
  const auto lanes = static_cast<std::uint32_t>(seed_sets.size());
  LUMEN_REQUIRE(lanes >= 1 && lanes <= kMaxLanes);
  LUMEN_REQUIRE(dist_rows.size() == seed_sets.size());
  const auto n = static_cast<std::uint32_t>(rank_.size());
  const std::size_t entries = static_cast<std::size_t>(n) * lanes;
  scratch.ensure_sweep(entries);
  std::fill_n(scratch.sweep_dist_.data(), entries, kInfiniteCost);
  std::fill_n(scratch.sweep_parent_.data(), entries, kInvalidArc);
  for (std::uint32_t lane = 0; lane < lanes; ++lane) {
    sweep_upward(seed_sets[lane], lane, lanes, scratch, stats);
  }
  switch (lanes) {
    case 1: down_sweep_fixed<1>(lanes, scratch, stats); break;
    case 4: down_sweep_fixed<4>(lanes, scratch, stats); break;
    case 8: down_sweep_fixed<8>(lanes, scratch, stats); break;
    default: down_sweep_fixed<0>(lanes, scratch, stats); break;
  }
  sweep_exact_fix(lanes, scratch);
  // Gather the position-major lane rows back out node-indexed.
  const double* dist = scratch.sweep_dist_.data();
  for (std::uint32_t p = 0; p < n; ++p) {
    const std::uint32_t v = pos_node_[p];
    const double* row = dist + static_cast<std::size_t>(p) * lanes;
    for (std::uint32_t lane = 0; lane < lanes; ++lane) {
      dist_rows[lane][v] = row[lane];
    }
  }
}

void ContractionHierarchy::one_to_all(std::span<const NodeId> seeds,
                                      SearchScratch& scratch,
                                      double* dist_out,
                                      SweepStats* stats) const {
  const std::span<const NodeId> sets[1] = {seeds};
  double* const rows[1] = {dist_out};
  many_to_all(sets, scratch, rows, stats);
}

}  // namespace lumen
