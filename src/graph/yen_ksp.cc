#include "graph/yen_ksp.h"

#include <algorithm>
#include <set>

#include "graph/dijkstra.h"

namespace lumen {

namespace {

/// Dijkstra on g with some links and nodes masked out.  Masked links are
/// skipped; masked nodes are never relaxed into or popped (except the
/// source, which is legal by construction in Yen: masked nodes are root
/// prefix nodes other than the spur node itself).
ShortestPathTree masked_dijkstra(const Digraph& g, NodeId source,
                                 NodeId target,
                                 const std::vector<char>& link_banned,
                                 const std::vector<char>& node_banned) {
  ShortestPathTree tree;
  tree.source = source;
  tree.dist.assign(g.num_nodes(), kInfiniteCost);
  tree.parent_link.assign(g.num_nodes(), LinkId::invalid());

  FibHeap heap;
  std::vector<FibHeap::Handle> handle(g.num_nodes());
  std::vector<char> in_heap(g.num_nodes(), 0);
  std::vector<char> settled(g.num_nodes(), 0);

  tree.dist[source.value()] = 0.0;
  handle[source.value()] = heap.push(0.0, source.value());
  in_heap[source.value()] = 1;

  while (!heap.empty()) {
    const auto [d, u_raw] = heap.pop_min();
    ++tree.pops;
    in_heap[u_raw] = 0;
    settled[u_raw] = 1;
    if (NodeId{u_raw} == target || d == kInfiniteCost) break;
    for (const LinkId e : g.out_links(NodeId{u_raw})) {
      if (link_banned[e.value()]) continue;
      const double w = g.weight(e);
      if (w == kInfiniteCost) continue;
      const NodeId v = g.head(e);
      if (node_banned[v.value()] || settled[v.value()]) continue;
      const double candidate = d + w;
      if (candidate < tree.dist[v.value()]) {
        tree.dist[v.value()] = candidate;
        tree.parent_link[v.value()] = e;
        if (in_heap[v.value()]) {
          heap.decrease_key(handle[v.value()], candidate);
        } else {
          handle[v.value()] = heap.push(candidate, v.value());
          in_heap[v.value()] = 1;
        }
      }
    }
  }
  return tree;
}

double path_cost(const Digraph& g, const std::vector<LinkId>& links) {
  double total = 0.0;
  for (const LinkId e : links) total += g.weight(e);
  return total;
}

}  // namespace

std::vector<RankedPath> yen_k_shortest_paths(const Digraph& g, NodeId source,
                                             NodeId target, std::uint32_t K) {
  LUMEN_REQUIRE(source.value() < g.num_nodes());
  LUMEN_REQUIRE(target.value() < g.num_nodes());
  LUMEN_REQUIRE_MSG(source != target, "Yen requires source != target");
  LUMEN_REQUIRE(K >= 1);

  std::vector<RankedPath> accepted;
  std::vector<char> link_banned(g.num_links(), 0);
  std::vector<char> node_banned(g.num_nodes(), 0);

  // First path: plain Dijkstra.
  {
    const auto tree = masked_dijkstra(g, source, target, link_banned,
                                      node_banned);
    const auto links = extract_path(g, tree, target);
    if (!links) return accepted;
    accepted.push_back(RankedPath{*links, tree.dist[target.value()]});
  }

  // Candidate pool, ordered by (cost, links) for deterministic ties.
  auto cmp = [](const RankedPath& a, const RankedPath& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.links < b.links;
  };
  std::set<RankedPath, decltype(cmp)> candidates(cmp);

  while (accepted.size() < K) {
    const RankedPath& previous = accepted.back();
    // Spur from every prefix of the previous path.
    std::vector<LinkId> root;
    double root_cost = 0.0;
    NodeId spur = source;
    for (std::size_t i = 0; i < previous.links.size(); ++i) {
      // Ban links that would recreate an already accepted path sharing
      // this root.
      std::fill(link_banned.begin(), link_banned.end(), 0);
      std::fill(node_banned.begin(), node_banned.end(), 0);
      for (const RankedPath& p : accepted) {
        if (p.links.size() <= i) continue;
        if (std::equal(root.begin(), root.end(), p.links.begin())) {
          link_banned[p.links[i].value()] = 1;
        }
      }
      // Ban the root's interior nodes so the spur path stays loopless.
      NodeId walker = source;
      for (const LinkId e : root) {
        node_banned[walker.value()] = 1;
        walker = g.head(e);
      }
      LUMEN_ASSERT(walker == spur);

      const auto tree = masked_dijkstra(g, spur, target, link_banned,
                                        node_banned);
      const auto spur_links = extract_path(g, tree, target);
      if (spur_links) {
        RankedPath candidate;
        candidate.links = root;
        candidate.links.insert(candidate.links.end(), spur_links->begin(),
                               spur_links->end());
        candidate.cost = root_cost + tree.dist[target.value()];
        candidates.insert(std::move(candidate));
      }

      // Extend the root by one link of the previous path.
      const LinkId next = previous.links[i];
      root.push_back(next);
      root_cost += g.weight(next);
      spur = g.head(next);
      if (spur == target) break;  // no spur node beyond the target
    }

    // Promote the cheapest unseen candidate.
    bool promoted = false;
    while (!candidates.empty()) {
      auto it = candidates.begin();
      RankedPath best = *it;
      candidates.erase(it);
      if (std::find_if(accepted.begin(), accepted.end(),
                       [&](const RankedPath& p) {
                         return p.links == best.links;
                       }) == accepted.end()) {
        accepted.push_back(std::move(best));
        promoted = true;
        break;
      }
    }
    if (!promoted) break;  // pool exhausted: fewer than K paths exist
  }

  // Candidate costs were accumulated as root_cost + spur distance; sums
  // bracketed differently can drift by ~1 ulp, so recompute each path's
  // cost canonically and restore exact ordering (stable: equal-cost paths
  // keep their discovery order).
  for (RankedPath& p : accepted) p.cost = path_cost(g, p.links);
  std::stable_sort(accepted.begin(), accepted.end(),
                   [](const RankedPath& a, const RankedPath& b) {
                     return a.cost < b.cost;
                   });
  return accepted;
}

}  // namespace lumen
