#include "graph/betweenness.h"

#include <algorithm>
#include <cmath>

#include "graph/dijkstra.h"
#include "graph/fib_heap.h"

namespace lumen {

std::vector<double> betweenness_centrality(const Digraph& g) {
  const std::uint32_t n = g.num_nodes();
  std::vector<double> centrality(n, 0.0);
  if (n == 0) return centrality;

  // Workspaces reused across sources.
  std::vector<double> dist(n);
  std::vector<double> sigma(n);       // number of shortest paths
  std::vector<double> delta(n);       // dependency accumulator
  std::vector<std::vector<std::uint32_t>> predecessors(n);
  std::vector<std::uint32_t> order;   // settle order
  order.reserve(n);
  std::vector<FibHeap::Handle> handle(n);
  std::vector<char> in_heap(n);
  std::vector<char> settled(n);

  // Relative tolerance for "equally short" alternate predecessors.
  constexpr double kTieTolerance = 1e-12;

  for (std::uint32_t s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), kInfiniteCost);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    std::fill(in_heap.begin(), in_heap.end(), 0);
    std::fill(settled.begin(), settled.end(), 0);
    for (auto& preds : predecessors) preds.clear();
    order.clear();

    FibHeap heap;
    dist[s] = 0.0;
    sigma[s] = 1.0;
    handle[s] = heap.push(0.0, s);
    in_heap[s] = 1;

    while (!heap.empty()) {
      const auto [d, u] = heap.pop_min();
      if (d == kInfiniteCost) break;
      in_heap[u] = 0;
      settled[u] = 1;
      order.push_back(u);
      for (const LinkId e : g.out_links(NodeId{u})) {
        const double w = g.weight(e);
        if (w == kInfiniteCost) continue;
        const std::uint32_t v = g.head(e).value();
        if (settled[v]) continue;
        const double candidate = d + w;
        // Unreached nodes have dist = +inf; an infinite tolerance would
        // poison both comparisons, so treat first contact separately.
        const double tolerance =
            dist[v] == kInfiniteCost
                ? 0.0
                : kTieTolerance * std::max(1.0, std::abs(dist[v]));
        if (candidate < dist[v] - tolerance) {
          dist[v] = candidate;
          sigma[v] = sigma[u];
          predecessors[v].assign(1, u);
          if (in_heap[v]) {
            heap.decrease_key(handle[v], candidate);
          } else {
            handle[v] = heap.push(candidate, v);
            in_heap[v] = 1;
          }
        } else if (candidate <= dist[v] + tolerance) {
          // Another shortest path to v via u.
          sigma[v] += sigma[u];
          predecessors[v].push_back(u);
        }
      }
    }

    // Back-accumulate dependencies in reverse settle order.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::uint32_t w = *it;
      for (const std::uint32_t u : predecessors[w]) {
        delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) centrality[w] += delta[w];
    }
  }
  return centrality;
}

}  // namespace lumen
