// Directed weighted multigraph with adjacency lists.
//
// This is the shared graph substrate: the physical WDM topology, the layered
// auxiliary graphs of the Liang–Shen algorithm, and the CFZ wavelength graph
// are all Digraph instances.  Parallel links and self-loops are permitted
// (the multigraph G_M in the paper relies on parallel links).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"
#include "util/strong_id.h"

namespace lumen {

/// A directed weighted multigraph.  Nodes and links are dense 0-based ids.
/// Link weights are non-negative doubles; +infinity is a legal weight
/// meaning "unusable" (such links are skipped by the shortest-path codes).
class Digraph {
 public:
  Digraph() = default;

  /// Creates a graph with `num_nodes` nodes and no links.
  explicit Digraph(std::uint32_t num_nodes)
      : out_(num_nodes), in_(num_nodes) {}

  /// Adds an isolated node and returns its id.
  NodeId add_node() {
    out_.emplace_back();
    in_.emplace_back();
    return NodeId{static_cast<std::uint32_t>(out_.size() - 1)};
  }

  /// Adds a directed link tail -> head with the given weight (>= 0, may be
  /// +infinity).  Returns the new link's id.
  LinkId add_link(NodeId tail, NodeId head, double weight) {
    LUMEN_REQUIRE(tail.value() < num_nodes());
    LUMEN_REQUIRE(head.value() < num_nodes());
    LUMEN_REQUIRE_MSG(weight >= 0.0, "link weights must be non-negative");
    const LinkId id{static_cast<std::uint32_t>(tails_.size())};
    tails_.push_back(tail);
    heads_.push_back(head);
    weights_.push_back(weight);
    out_[tail.value()].push_back(id);
    in_[head.value()].push_back(id);
    return id;
  }

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(out_.size());
  }
  [[nodiscard]] std::uint32_t num_links() const noexcept {
    return static_cast<std::uint32_t>(tails_.size());
  }

  [[nodiscard]] NodeId tail(LinkId e) const {
    LUMEN_REQUIRE(e.value() < num_links());
    return tails_[e.value()];
  }
  [[nodiscard]] NodeId head(LinkId e) const {
    LUMEN_REQUIRE(e.value() < num_links());
    return heads_[e.value()];
  }
  [[nodiscard]] double weight(LinkId e) const {
    LUMEN_REQUIRE(e.value() < num_links());
    return weights_[e.value()];
  }

  /// Replaces the weight of an existing link.
  void set_weight(LinkId e, double weight) {
    LUMEN_REQUIRE(e.value() < num_links());
    LUMEN_REQUIRE_MSG(weight >= 0.0, "link weights must be non-negative");
    weights_[e.value()] = weight;
  }

  /// Outgoing links of `v`, in insertion order.
  [[nodiscard]] std::span<const LinkId> out_links(NodeId v) const {
    LUMEN_REQUIRE(v.value() < num_nodes());
    return out_[v.value()];
  }

  /// Incoming links of `v`, in insertion order.
  [[nodiscard]] std::span<const LinkId> in_links(NodeId v) const {
    LUMEN_REQUIRE(v.value() < num_nodes());
    return in_[v.value()];
  }

  [[nodiscard]] std::uint32_t out_degree(NodeId v) const {
    return static_cast<std::uint32_t>(out_links(v).size());
  }
  [[nodiscard]] std::uint32_t in_degree(NodeId v) const {
    return static_cast<std::uint32_t>(in_links(v).size());
  }

  /// max over nodes of max(in-degree, out-degree): the paper's `d`.
  [[nodiscard]] std::uint32_t max_degree() const noexcept {
    std::uint32_t d = 0;
    for (std::uint32_t v = 0; v < num_nodes(); ++v) {
      d = std::max({d, static_cast<std::uint32_t>(out_[v].size()),
                    static_cast<std::uint32_t>(in_[v].size())});
    }
    return d;
  }

  /// Reserves storage for an expected number of links (performance hint).
  void reserve_links(std::size_t expected) {
    tails_.reserve(expected);
    heads_.reserve(expected);
    weights_.reserve(expected);
  }

 private:
  std::vector<NodeId> tails_;
  std::vector<NodeId> heads_;
  std::vector<double> weights_;
  std::vector<std::vector<LinkId>> out_;
  std::vector<std::vector<LinkId>> in_;
};

}  // namespace lumen
