// Pairing heap with decrease-key.
//
// A simpler self-adjusting alternative to the Fibonacci heap with the same
// practical profile (O(1) push and decrease-key amortized, O(log n) pop);
// included as a third point in the heap ablation (bench E8).
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "util/error.h"

namespace lumen {

/// Min-ordered pairing heap.  Handles stay valid until the item is popped.
class PairingHeap {
 public:
  struct Node {
    double key = 0.0;
    std::uint32_t item = 0;
    bool in_heap = false;
    Node* child = nullptr;    // leftmost child
    Node* sibling = nullptr;  // next sibling to the right
    Node* prev = nullptr;     // parent if leftmost child, else left sibling
  };
  using Handle = Node*;

  PairingHeap() = default;
  PairingHeap(const PairingHeap&) = delete;
  PairingHeap& operator=(const PairingHeap&) = delete;
  PairingHeap(PairingHeap&&) = default;
  PairingHeap& operator=(PairingHeap&&) = default;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Inserts (key, item); returns a handle usable with decrease_key.
  Handle push(double key, std::uint32_t item) {
    Node* node = allocate(key, item);
    root_ = root_ ? meld(root_, node) : node;
    ++size_;
    return node;
  }

  [[nodiscard]] double min_key() const {
    LUMEN_REQUIRE(root_ != nullptr);
    return root_->key;
  }
  [[nodiscard]] std::uint32_t min_item() const {
    LUMEN_REQUIRE(root_ != nullptr);
    return root_->item;
  }

  /// Removes and returns the minimum (key, item).  Requires non-empty.
  std::pair<double, std::uint32_t> pop_min() {
    LUMEN_REQUIRE(root_ != nullptr);
    Node* old_root = root_;
    const std::pair<double, std::uint32_t> result{old_root->key,
                                                  old_root->item};
    root_ = merge_pairs(old_root->child);
    if (root_ != nullptr) {
      root_->prev = nullptr;
      root_->sibling = nullptr;
    }
    old_root->in_heap = false;
    free_.push_back(old_root);
    --size_;
    return result;
  }

  /// Lowers the key of a live entry to `new_key` (<= current key).
  void decrease_key(Handle h, double new_key) {
    LUMEN_REQUIRE(h != nullptr && h->in_heap);
    LUMEN_REQUIRE_MSG(new_key <= h->key,
                      "decrease_key must not increase the key");
    h->key = new_key;
    if (h == root_) return;
    detach(h);
    root_ = meld(root_, h);
  }

  /// Removes all entries (storage retained).
  void clear() {
    root_ = nullptr;
    size_ = 0;
    free_.clear();
    free_.reserve(pool_.size());
    for (auto& node : pool_) {
      node.in_heap = false;
      free_.push_back(&node);
    }
  }

 private:
  Node* allocate(double key, std::uint32_t item) {
    Node* node;
    if (!free_.empty()) {
      node = free_.back();
      free_.pop_back();
    } else {
      pool_.emplace_back();
      node = &pool_.back();
    }
    node->key = key;
    node->item = item;
    node->in_heap = true;
    node->child = nullptr;
    node->sibling = nullptr;
    node->prev = nullptr;
    return node;
  }

  /// Melds two non-null trees; returns the new root.
  static Node* meld(Node* a, Node* b) noexcept {
    if (b->key < a->key) std::swap(a, b);
    // b becomes a's leftmost child.
    b->prev = a;
    b->sibling = a->child;
    if (a->child != nullptr) a->child->prev = b;
    a->child = b;
    a->sibling = nullptr;
    return a;
  }

  /// Unlinks a non-root node from its parent/sibling chain.
  static void detach(Node* h) noexcept {
    if (h->prev->child == h) {
      h->prev->child = h->sibling;
    } else {
      h->prev->sibling = h->sibling;
    }
    if (h->sibling != nullptr) h->sibling->prev = h->prev;
    h->sibling = nullptr;
    h->prev = nullptr;
  }

  /// Two-pass pairwise merge of a sibling list; returns the merged root.
  Node* merge_pairs(Node* first) {
    if (first == nullptr) return nullptr;
    // Pass 1: meld adjacent pairs left to right.
    scratch_.clear();
    Node* cur = first;
    while (cur != nullptr) {
      Node* a = cur;
      Node* b = cur->sibling;
      cur = b ? b->sibling : nullptr;
      a->sibling = nullptr;
      a->prev = nullptr;
      if (b != nullptr) {
        b->sibling = nullptr;
        b->prev = nullptr;
        scratch_.push_back(meld(a, b));
      } else {
        scratch_.push_back(a);
      }
    }
    // Pass 2: meld right to left.
    Node* result = scratch_.back();
    for (std::size_t i = scratch_.size() - 1; i-- > 0;) {
      result = meld(scratch_[i], result);
    }
    return result;
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  std::deque<Node> pool_;
  std::vector<Node*> free_;
  std::vector<Node*> scratch_;
};

}  // namespace lumen
