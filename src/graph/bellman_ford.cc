#include "graph/bellman_ford.h"

namespace lumen {

ShortestPathTree bellman_ford(const Digraph& g, NodeId source) {
  LUMEN_REQUIRE(source.value() < g.num_nodes());
  ShortestPathTree tree;
  tree.source = source;
  tree.dist.assign(g.num_nodes(), kInfiniteCost);
  tree.parent_link.assign(g.num_nodes(), LinkId::invalid());
  tree.dist[source.value()] = 0.0;

  // Queue-based Bellman–Ford (SPFA): relax only out-links of nodes whose
  // distance changed in the previous sweep.
  std::vector<char> pending(g.num_nodes(), 0);
  std::vector<NodeId> frontier{source};
  pending[source.value()] = 1;

  while (!frontier.empty()) {
    ++tree.pops;  // one sweep
    std::vector<NodeId> next;
    for (const NodeId u : frontier) {
      pending[u.value()] = 0;
      const double du = tree.dist[u.value()];
      for (const LinkId e : g.out_links(u)) {
        const double w = g.weight(e);
        if (w == kInfiniteCost) continue;
        const NodeId v = g.head(e);
        const double candidate = du + w;
        if (candidate < tree.dist[v.value()]) {
          tree.dist[v.value()] = candidate;
          tree.parent_link[v.value()] = e;
          ++tree.relaxations;
          if (!pending[v.value()]) {
            pending[v.value()] = 1;
            next.push_back(v);
          }
        }
      }
    }
    frontier = std::move(next);
  }
  return tree;
}

}  // namespace lumen
