// Basic graph traversals: BFS, reachability, connectivity checks.
//
// Used by topology generators to certify that generated networks are
// strongly connected, and by tests as simple structural oracles.
#pragma once

#include <vector>

#include "graph/digraph.h"
#include "util/strong_id.h"

namespace lumen {

/// Nodes reachable from `source` following link directions (including the
/// source itself), in BFS order.
[[nodiscard]] std::vector<NodeId> bfs_order(const Digraph& g, NodeId source);

/// reachable[v] == true iff v is reachable from source.
[[nodiscard]] std::vector<bool> reachable_from(const Digraph& g,
                                               NodeId source);

/// True iff every node reaches every other node following link directions.
[[nodiscard]] bool is_strongly_connected(const Digraph& g);

/// True iff the underlying undirected graph is connected.
[[nodiscard]] bool is_weakly_connected(const Digraph& g);

/// Number of hops of the shortest unweighted path source -> target, or -1
/// when unreachable.
[[nodiscard]] int bfs_hops(const Digraph& g, NodeId source, NodeId target);

}  // namespace lumen
