// Fibonacci heap with decrease-key.
//
// Theorem 1 of Liang & Shen relies on the Fredman–Tarjan Fibonacci heap to
// obtain the O(m' + n' log n') Dijkstra bound on the auxiliary graph; this is
// a from-scratch implementation.  Items are 32-bit payloads, keys are
// doubles.  Handles stay valid until the item is popped.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "util/error.h"

namespace lumen {

/// Min-ordered Fibonacci heap.  push / pop_min / decrease_key in the usual
/// amortized bounds: O(1), O(log n), O(1).
class FibHeap {
 public:
  /// Opaque handle to a live heap entry.
  using Handle = struct FibNode*;

  FibHeap() = default;
  FibHeap(const FibHeap&) = delete;
  FibHeap& operator=(const FibHeap&) = delete;
  FibHeap(FibHeap&&) = default;
  FibHeap& operator=(FibHeap&&) = default;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Inserts (key, item); returns a handle usable with decrease_key.
  Handle push(double key, std::uint32_t item);

  /// Key of the current minimum.  Requires a non-empty heap.
  [[nodiscard]] double min_key() const;
  /// Item of the current minimum.  Requires a non-empty heap.
  [[nodiscard]] std::uint32_t min_item() const;

  /// Removes and returns the minimum (key, item).  Requires non-empty.
  std::pair<double, std::uint32_t> pop_min();

  /// Lowers the key of a live entry to `new_key` (<= current key).
  void decrease_key(Handle h, double new_key);

  /// Removes all entries (storage is retained for reuse).
  void clear();

 private:
  FibNode* allocate(double key, std::uint32_t item);
  void add_to_roots(FibNode* x) noexcept;
  void consolidate();
  void cut(FibNode* x, FibNode* parent) noexcept;
  void cascading_cut(FibNode* y) noexcept;
  static void link_under(FibNode* child, FibNode* parent) noexcept;

  FibNode* min_ = nullptr;
  std::size_t size_ = 0;
  std::deque<FibNode> pool_;     // stable-address node storage
  std::vector<FibNode*> free_;   // recycled nodes
  std::vector<FibNode*> degree_scratch_;
};

/// Internal node; exposed only because Handle aliases a pointer to it.
struct FibNode {
  double key = 0.0;
  std::uint32_t item = 0;
  std::uint32_t degree = 0;
  bool marked = false;
  bool in_heap = false;
  FibNode* parent = nullptr;
  FibNode* child = nullptr;
  FibNode* left = nullptr;   // circular sibling list
  FibNode* right = nullptr;
};

}  // namespace lumen
