#include "graph/landmarks.h"

#include <algorithm>

#include "graph/hierarchy.h"

namespace lumen {

namespace {

/// Full SSSP over a CSR view into a preallocated row (no early exit).
void sssp_into(const CsrDigraph& csr, NodeId source, SearchScratch& scratch,
               double* row) {
  scratch.begin(csr.num_nodes());
  const NodeId sources[1] = {source};
  (void)dijkstra_csr_run(csr, sources, scratch);
  for (std::uint32_t v = 0; v < csr.num_nodes(); ++v)
    row[v] = scratch.dist(NodeId{v});
}

/// Shared farthest-point selection; `fill_fwd`/`fill_rev` produce the
/// per-landmark d(ℓ,·) / d(·,ℓ) rows (flat Dijkstra or hierarchy sweep —
/// bit-identical either way, so the selection is too).
template <class FillFwd, class FillRev>
LandmarkTables select_impl(const Digraph& g, std::uint32_t count,
                           std::uint64_t seed, FillFwd&& fill_fwd,
                           FillRev&& fill_rev) {
  LandmarkTables tables;
  tables.num_nodes = g.num_nodes();
  const std::uint32_t n = g.num_nodes();
  if (n == 0 || count == 0) return tables;
  count = std::min(count, n);

  tables.from_landmark.resize(static_cast<std::size_t>(count) * n);
  tables.to_landmark.resize(static_cast<std::size_t>(count) * n);

  // score[v] = round-trip distance from v to its closest chosen landmark;
  // the next landmark maximizes it (∞ = a component no landmark covers
  // yet, which is exactly what we want to grab first).
  std::vector<double> score(n, kInfiniteCost);
  std::vector<char> chosen(n, 0);

  NodeId next{static_cast<std::uint32_t>(seed % n)};
  for (std::uint32_t l = 0; l < count; ++l) {
    chosen[next.value()] = 1;
    tables.landmarks.push_back(next);
    double* fwd = tables.from_landmark.data() +
                  static_cast<std::size_t>(l) * n;
    double* rev = tables.to_landmark.data() + static_cast<std::size_t>(l) * n;
    fill_fwd(next, fwd);
    fill_rev(next, rev);
    tables.num_landmarks = l + 1;
    if (l + 1 == count) break;

    NodeId farthest = NodeId::invalid();
    double farthest_score = -1.0;
    for (std::uint32_t v = 0; v < n; ++v) {
      // min(∞, x) semantics fall out of IEEE addition: ∞ + x = ∞.
      score[v] = std::min(score[v], fwd[v] + rev[v]);
      if (chosen[v] || score[v] <= 0.0) continue;
      if (score[v] > farthest_score) {
        farthest_score = score[v];
        farthest = NodeId{v};
      }
    }
    if (!farthest.valid()) break;  // every remaining node sits on a landmark
    next = farthest;
  }
  return tables;
}

}  // namespace

LandmarkTables select_landmarks(const Digraph& g, std::uint32_t count,
                                std::uint64_t seed) {
  const CsrDigraph forward(g);
  const CsrDigraph reverse = CsrDigraph::reversed(g);
  SearchScratch scratch;
  return select_impl(
      g, count, seed,
      [&](NodeId l, double* row) { sssp_into(forward, l, scratch, row); },
      [&](NodeId l, double* row) { sssp_into(reverse, l, scratch, row); });
}

LandmarkTables select_landmarks(const Digraph& g, std::uint32_t count,
                                std::uint64_t seed,
                                const ContractionHierarchy& forward,
                                const ContractionHierarchy& reverse) {
  SearchScratch scratch;
  return select_impl(
      g, count, seed,
      [&](NodeId l, double* row) {
        const NodeId seeds[1] = {l};
        forward.one_to_all(seeds, scratch, row);
      },
      [&](NodeId l, double* row) {
        const NodeId seeds[1] = {l};
        reverse.one_to_all(seeds, scratch, row);
      });
}

}  // namespace lumen
