// Indexed d-ary min-heap with decrease-key.
//
// The classic array heap: O(log n) push/pop, O(log n) decrease_key.  Used as
// the ablation baseline against the Fibonacci heap (bench E8) and as a
// simple, cache-friendly default for small graphs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/error.h"

namespace lumen {

/// Min-ordered d-ary heap (default 4-ary).  Handles are stable slot indices
/// valid until the entry is popped.
template <unsigned Arity = 4>
class DaryHeap {
  static_assert(Arity >= 2, "heap arity must be at least 2");

 public:
  using Handle = std::uint32_t;

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Inserts (key, item); returns a handle usable with decrease_key.
  Handle push(double key, std::uint32_t item) {
    Handle slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = Slot{key, item, static_cast<std::uint32_t>(heap_.size())};
    } else {
      slot = static_cast<Handle>(slots_.size());
      slots_.push_back(Slot{key, item, static_cast<std::uint32_t>(heap_.size())});
    }
    heap_.push_back(slot);
    sift_up(heap_.size() - 1);
    return slot;
  }

  [[nodiscard]] double min_key() const {
    LUMEN_REQUIRE(!heap_.empty());
    return slots_[heap_[0]].key;
  }
  [[nodiscard]] std::uint32_t min_item() const {
    LUMEN_REQUIRE(!heap_.empty());
    return slots_[heap_[0]].item;
  }

  /// Removes and returns the minimum (key, item).  Requires non-empty.
  std::pair<double, std::uint32_t> pop_min() {
    LUMEN_REQUIRE(!heap_.empty());
    const Handle top = heap_[0];
    const std::pair<double, std::uint32_t> result{slots_[top].key,
                                                  slots_[top].item};
    const Handle last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      slots_[last].pos = 0;
      sift_down(0);
    }
    free_slots_.push_back(top);
    return result;
  }

  /// Lowers the key of a live entry to `new_key` (<= current key).
  void decrease_key(Handle h, double new_key) {
    LUMEN_REQUIRE(h < slots_.size());
    LUMEN_REQUIRE_MSG(new_key <= slots_[h].key,
                      "decrease_key must not increase the key");
    slots_[h].key = new_key;
    sift_up(slots_[h].pos);
  }

  /// Removes all entries (storage retained).
  void clear() {
    heap_.clear();
    slots_.clear();
    free_slots_.clear();
  }

 private:
  struct Slot {
    double key;
    std::uint32_t item;
    std::uint32_t pos;  // index into heap_
  };

  void sift_up(std::size_t i) noexcept {
    const Handle moving = heap_[i];
    const double key = slots_[moving].key;
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (slots_[heap_[parent]].key <= key) break;
      heap_[i] = heap_[parent];
      slots_[heap_[i]].pos = static_cast<std::uint32_t>(i);
      i = parent;
    }
    heap_[i] = moving;
    slots_[moving].pos = static_cast<std::uint32_t>(i);
  }

  void sift_down(std::size_t i) noexcept {
    const Handle moving = heap_[i];
    const double key = slots_[moving].key;
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t first_child = i * Arity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      double best_key = slots_[heap_[first_child]].key;
      const std::size_t end = std::min(first_child + Arity, n);
      for (std::size_t c = first_child + 1; c < end; ++c) {
        const double ck = slots_[heap_[c]].key;
        if (ck < best_key) {
          best = c;
          best_key = ck;
        }
      }
      if (best_key >= key) break;
      heap_[i] = heap_[best];
      slots_[heap_[i]].pos = static_cast<std::uint32_t>(i);
      i = best;
    }
    heap_[i] = moving;
    slots_[moving].pos = static_cast<std::uint32_t>(i);
  }

  std::vector<Handle> heap_;       // heap order -> slot
  std::vector<Slot> slots_;        // handle -> entry
  std::vector<Handle> free_slots_; // recycled handles
};

/// The conventional binary heap.
using BinaryHeap = DaryHeap<2>;
/// Cache-friendlier 4-ary variant.
using QuaternaryHeap = DaryHeap<4>;

}  // namespace lumen
