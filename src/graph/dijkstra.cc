#include "graph/dijkstra.h"

#include <algorithm>

namespace lumen {

ShortestPathTree dijkstra(const Digraph& g, NodeId source,
                          std::optional<NodeId> target) {
  return dijkstra_with<FibHeap>(g, source, target);
}

std::optional<std::vector<LinkId>> extract_path(const Digraph& g,
                                                const ShortestPathTree& tree,
                                                NodeId target) {
  LUMEN_REQUIRE(target.value() < tree.dist.size());
  if (!tree.reached(target)) return std::nullopt;
  std::vector<LinkId> path;
  NodeId v = target;
  while (v != tree.source) {
    const LinkId e = tree.parent_link[v.value()];
    LUMEN_ASSERT(e.valid());
    path.push_back(e);
    v = g.tail(e);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace lumen
