// Two-phase partial contraction hierarchy over a CSR arena.
//
// Phase 1 (per RouteEngine::build, metric-guided only through the base
// weights' topology): a directed elimination ordering contracts low-degree
// nodes one at a time, recording for every surviving pair of neighbors a
// *shortcut arc* whose supports are the two arcs it bypasses.  Nodes whose
// degree (or fill-in) exceeds the caps are never eliminated and form the
// top-rank "core" — on expander-like cores full contraction would drown in
// fill, so the hierarchy degrades gracefully: a smaller core just means
// fewer nodes the query has to scan flat.
//
// Phase 2 (customization, cheap, repeatable): every arc's value is
// min(weight of its input slots, min over supports of the two support
// values).  Supports always sit at strictly lower freeze rank (their
// middle node was eliminated while both endpoints were live), so one
// ascending sweep over rank buckets re-evaluates each arc at most once.
// Point updates (reserve/fail/release/repair patch one slot) dirty only
// the owning arc and propagate upward through explicit dependent lists:
// re-customization touches only the cone above the patched spans, not the
// whole shortcut set.
//
// Queries run bidirectionally: a backward pass ascends strictly
// descending arcs from the sinks (a small cone), then a forward pass
// ascends from the sources through rising-rank and core-core arcs,
// pruned by the best meeting so far and, optionally, by an ALT potential
// (admissible on shortcuts because a shortcut's value is at least the
// real distance between its endpoints).  Residual safety is inherited
// from the engine invariant: weight patches never drop below the
// build-time base, so the ordering never needs to be redone — only the
// O(changed-cone) customization.
//
// Exactness sketch: every shortest path in the patched graph can be
// rewritten valley-by-valley (each valley's interior minimum is an
// eliminated node, whose elimination added/merged exactly the bypassing
// shortcut with value <= the valley's cost) into an up-then-down walk
// whose rising half, including any plateau inside the core, lies in the
// forward search space and whose strictly falling half lies in the
// backward space; the apex is settled by both sides with true distances.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/csr.h"

namespace lumen {

/// Partial elimination hierarchy with support-based re-customization and
/// bidirectional upward queries.  Structure is fixed at construction;
/// update_slot()/customize() track the arena's patched weights.  query()
/// is const and safe to run concurrently (one SearchScratch per thread)
/// as long as no customization runs at the same time.
class ContractionHierarchy {
 public:
  struct Options {
    /// A node is eliminated only while its in- and out-degree (distinct
    /// live neighbors) are both at most this.  The defaults are tuned on
    /// metro/backbone WDM gadget graphs (hierarchical_topology), where
    /// they contract the access rings completely and leave only a small
    /// hub core; on expander-like random topologies contraction stalls
    /// early regardless (no small separators), so raising the caps
    /// mostly buys shortcut bloat.
    std::uint32_t degree_cap = 32;
    /// ...and eliminating it would create at most this many new arcs.
    std::uint32_t fill_cap = 160;
  };

  /// Rank of never-eliminated (core) nodes; eliminated nodes get ranks
  /// 0..eliminated-1 in elimination order.
  static constexpr std::uint32_t kCoreRank = 0xffffffffu;
  static constexpr std::uint32_t kInvalidArc = 0xffffffffu;
  /// Upper bound on many_to_all lane count (sources per sweep).
  static constexpr std::uint32_t kMaxLanes = 8;

  struct BuildStats {
    std::uint32_t nodes = 0;
    std::uint32_t core_nodes = 0;      ///< never eliminated
    std::uint32_t input_arcs = 0;      ///< parallel slots min-merged
    std::uint32_t shortcut_arcs = 0;   ///< added by elimination
    double order_seconds = 0.0;
    double customize_seconds = 0.0;
  };

  /// Builds ordering + shortcuts on g's *current* weights and runs the
  /// first full customization.  g must outlive nothing — the hierarchy
  /// copies everything it needs (slot weights included).
  ContractionHierarchy(const CsrDigraph& g, const Options& options);

  [[nodiscard]] const BuildStats& build_stats() const noexcept {
    return build_stats_;
  }
  [[nodiscard]] std::uint32_t num_arcs() const noexcept {
    return static_cast<std::uint32_t>(arc_value_.size());
  }
  [[nodiscard]] std::uint32_t num_shortcuts() const noexcept {
    return build_stats_.shortcut_arcs;
  }
  [[nodiscard]] std::uint32_t rank(NodeId v) const {
    LUMEN_REQUIRE(v.value() < rank_.size());
    return rank_[v.value()];
  }

  /// Mirrors a weight patch on CSR `slot` (same slot ids as the arena the
  /// hierarchy was built from).  O(1): records the new weight and dirties
  /// the owning arc; values are stale until customize() runs.
  void update_slot(std::uint32_t slot, double weight);

  /// Re-evaluates dirty arcs and the cone of arcs supported by them, in
  /// ascending freeze-rank order (each arc at most once).  Returns the
  /// number of arcs touched — the sublinearity measure: after a single
  /// span patch this is the size of that span's support cone, not
  /// num_arcs().
  std::uint32_t customize();

  /// True when update_slot() patches have not been customized yet;
  /// query() results would be wrong (callers fall back to flat search).
  [[nodiscard]] bool stale() const noexcept { return dirty_count_ > 0; }

  /// Bidirectional upward query: cheapest route from any source to any
  /// sink under the customized weights.  On success fills `slots_out`
  /// with the CSR slot sequence of the route (source->sink order; empty
  /// when a source node is itself a sink) and returns true.
  ///
  /// `potential(v)` must be an admissible, consistent lower bound on the
  /// remaining flat-graph cost from v to every sink (kInfiniteCost prunes
  /// v), exactly as for astar_csr_run; pass NoPotential{} for the plain
  /// CH query.  `stats` counts both passes' pops plus potential/bound
  /// prunes.
  template <class Potential>
  bool query(std::span<const NodeId> sources, std::span<const NodeId> sinks,
             SearchScratch& scratch, Potential&& potential,
             std::vector<std::uint32_t>& slots_out,
             CsrRunStats* stats = nullptr) const;

  // --- batched one-to-all sweeps (PHAST-style) ---------------------------

  /// Per-sweep effort counters (all lanes pooled).
  struct SweepStats {
    std::uint64_t upward_pops = 0;   ///< upward-Dijkstra settles
    std::uint64_t arcs_scanned = 0;  ///< downward arc·lane relaxations
  };

  /// Full one-to-all distances from the multi-seed source set: a small
  /// upward Dijkstra over rising/core arcs, then one linear scan of the
  /// downward arcs in descending rank order (each arc read exactly once,
  /// contiguously — no heap).  `dist_out[v]` (size num_nodes) receives
  /// the cheapest cost from any seed to v, +inf when unreachable, and is
  /// re-accumulated slot-by-slot along the winning up-down path so the
  /// values match a flat full dijkstra_csr_run from the same seeds
  /// bit-for-bit (same left-to-right addition order; see the cost
  /// re-accumulation note on query()).  Requires !stale().
  void one_to_all(std::span<const NodeId> seeds, SearchScratch& scratch,
                  double* dist_out, SweepStats* stats = nullptr) const;

  /// Lane-parallel variant: lane l sweeps from `seed_sets[l]` into
  /// `dist_rows[l]` (each a num_nodes row).  All lanes share one pass
  /// over the downward arcs — each arc's value and tail row are loaded
  /// once and relaxed against every lane, so the sweep's memory traffic
  /// is amortized across sources.  At most kMaxLanes lanes (callers
  /// chunk larger batches); fixed-width kernels cover 1/4/8 lanes with a
  /// generic scalar fallback for the rest.
  void many_to_all(std::span<const std::span<const NodeId>> seed_sets,
                   SearchScratch& scratch, std::span<double* const> dist_rows,
                   SweepStats* stats = nullptr) const;

 private:
  template <std::uint32_t kLanes>
  void down_sweep_fixed(std::uint32_t lanes, SearchScratch& scratch,
                        SweepStats* stats) const;
  /// Upward phase of lane `lane`: full Dijkstra over fwd/core arcs,
  /// scattering settled labels into the position-major lane arrays.
  void sweep_upward(std::span<const NodeId> seeds, std::uint32_t lane,
                    std::uint32_t lanes, SearchScratch& scratch,
                    SweepStats* stats) const;
  /// Exact-fix pass: re-accumulates every reached entry left-to-right
  /// along its final parent chain (memoized), replacing tree-order
  /// shortcut sums with the flat Dijkstra's slot-order sums.
  void sweep_exact_fix(std::uint32_t lanes, SearchScratch& scratch) const;
  /// min over input slot weights and support value sums.
  [[nodiscard]] double evaluate(std::uint32_t arc) const;
  void mark_dirty(std::uint32_t arc);
  void unpack(std::uint32_t arc, std::vector<std::uint32_t>& slots_out) const;

  // --- arcs (SoA, indexed by arc id; initial arcs first, shortcuts after)
  std::vector<std::uint32_t> arc_tail_;
  std::vector<std::uint32_t> arc_head_;
  AlignedVector<double> arc_value_;       // customized cost
  std::vector<std::uint32_t> arc_bucket_; // freeze rank (customization order)
  // input slots per arc: CSR slots connecting tail->head directly
  std::vector<std::uint32_t> input_offset_;  // num_arcs+1
  std::vector<std::uint32_t> input_slots_;
  // support pairs per arc: value may be min over value(a)+value(b)
  std::vector<std::uint32_t> support_offset_;  // num_arcs+1
  std::vector<std::uint32_t> support_a_;
  std::vector<std::uint32_t> support_b_;
  // dependents: arcs listing this arc in one of their support pairs
  std::vector<std::uint32_t> parent_offset_;  // num_arcs+1
  std::vector<std::uint32_t> parent_arcs_;

  // --- query adjacency (arc ids)
  // forward: arcs with tail v rising in rank, plus core->core arcs
  std::vector<std::uint32_t> fwd_offset_;  // num_nodes+1
  std::vector<std::uint32_t> fwd_arcs_;
  // backward: arcs with head v whose tail has strictly higher rank
  std::vector<std::uint32_t> bwd_offset_;  // num_nodes+1
  std::vector<std::uint32_t> bwd_arcs_;

  std::vector<std::uint32_t> rank_;       // per node; kCoreRank = core
  std::vector<std::uint32_t> slot_arc_;   // CSR slot -> owning arc
  AlignedVector<double> slot_weight_;     // mirror of the arena's weights

  // --- downward-sweep CSR (one_to_all/many_to_all) ----------------------
  // Level order by *position*: 0..core-1 are the core nodes (id order),
  // core..n-1 the eliminated nodes in descending rank.  down_csr_ packs,
  // per position, the backward arcs INTO that node keyed by the tail's
  // position (structure-only: values live in down_value_, kept current by
  // customize() alongside arc_value_).  Scanning positions ascending
  // therefore relaxes every arc after its tail is final — the one-pass
  // correctness invariant.
  std::unique_ptr<CsrDigraph> down_csr_;
  AlignedVector<double> down_value_;        // per down slot (customized)
  AlignedVector<std::uint32_t> down_slot_arc_;  // down slot -> arc id
  std::vector<std::uint32_t> arc_down_slot_;    // arc id -> down slot
  std::vector<std::uint32_t> node_pos_;     // node id -> sweep position
  std::vector<std::uint32_t> pos_node_;     // sweep position -> node id
  std::uint32_t first_down_pos_ = 0;        // == core count

  // --- customization worklist: one bucket per freeze rank (+1 for core)
  std::vector<std::vector<std::uint32_t>> dirty_buckets_;
  std::vector<std::uint8_t> arc_dirty_;
  std::uint32_t dirty_count_ = 0;

  BuildStats build_stats_;
};

template <class Potential>
bool ContractionHierarchy::query(std::span<const NodeId> sources,
                                 std::span<const NodeId> sinks,
                                 SearchScratch& scratch,
                                 Potential&& potential,
                                 std::vector<std::uint32_t>& slots_out,
                                 CsrRunStats* stats) const {
  constexpr bool kGoal = !std::is_same_v<std::decay_t<Potential>, NoPotential>;
  LUMEN_REQUIRE_MSG(!stale(), "hierarchy queried before customize()");
  slots_out.clear();
  const auto n = static_cast<std::uint32_t>(rank_.size());

  // --- backward pass: ascend strictly descending arcs from the sinks.
  // Runs on the scratch's primary arrays; settled labels are parked in
  // the backward set (bstamp_/bdist_/bparent_) at pop time so the
  // forward pass can reuse the primary arrays under a new generation.
  scratch.begin(n);
  scratch.begin_backward();
  for (const NodeId t : sinks) {
    LUMEN_REQUIRE(t.value() < n);
    scratch.touch(t.value());
    if (scratch.dist_[t.value()] > 0.0) {
      scratch.dist_[t.value()] = 0.0;
      scratch.parent_[t.value()] = kInvalidArc;
      scratch.heap_push(t.value(), 0.0);
    }
  }
  while (!scratch.heap_.empty()) {
    const std::uint32_t u = scratch.heap_pop_min();
    scratch.state_[u] = SearchScratch::kSettled;
    scratch.bstamp_[u] = scratch.bgeneration_;
    scratch.bdist_[u] = scratch.dist_[u];
    scratch.bparent_[u] = scratch.parent_[u];
    if (stats != nullptr) {
      ++stats->pops;
      ++stats->settled;
    }
    const double du = scratch.dist_[u];
    for (std::uint32_t i = bwd_offset_[u]; i < bwd_offset_[u + 1]; ++i) {
      const std::uint32_t a = bwd_arcs_[i];
      const double w = arc_value_[a];
      if (w == kInfiniteCost) continue;
      const std::uint32_t v = arc_tail_[a];
      scratch.touch(v);
      if (scratch.state_[v] == SearchScratch::kSettled) continue;
      const double candidate = du + w;
      if (candidate < scratch.dist_[v]) {
        const bool queued = scratch.state_[v] == SearchScratch::kInHeap;
        scratch.dist_[v] = candidate;
        scratch.parent_[v] = a;
        if (stats != nullptr) ++stats->relaxations;
        if (queued) {
          scratch.heap_decrease(v, candidate);
        } else {
          scratch.heap_push(v, candidate);
        }
      }
    }
  }

  // --- forward pass: ascend rising-rank and core-core arcs from the
  // sources, meeting the backward labels.  Keys carry the potential (A*
  // style); pruning against best_meet is safe because best_meet only
  // tightens.
  scratch.begin(n);
  if constexpr (kGoal) scratch.ensure_potentials();
  const auto pot_of = [&](std::uint32_t v) -> double {
    if (scratch.pot_stamp_[v] != scratch.generation_) {
      scratch.pot_stamp_[v] = scratch.generation_;
      if constexpr (kGoal) scratch.pot_[v] = potential(v);
    }
    return scratch.pot_[v];
  };

  double best_meet = kInfiniteCost;
  std::uint32_t meet = 0xffffffffu;
  for (const NodeId s : sources) {
    LUMEN_REQUIRE(s.value() < n);
    scratch.touch(s.value());
    if (scratch.dist_[s.value()] > 0.0) {
      double h = 0.0;
      if constexpr (kGoal) {
        h = pot_of(s.value());
        if (h == kInfiniteCost) {
          if (stats != nullptr) ++stats->pruned;
          continue;
        }
      }
      scratch.dist_[s.value()] = 0.0;
      scratch.parent_[s.value()] = kInvalidArc;
      scratch.heap_push(s.value(), h);
    }
  }
  while (!scratch.heap_.empty()) {
    // The root keys the whole queue from below; no meeting can beat the
    // best one found.
    if (scratch.hkey_[0] >= best_meet) break;
    const std::uint32_t u = scratch.heap_pop_min();
    scratch.state_[u] = SearchScratch::kSettled;
    if (stats != nullptr) {
      ++stats->pops;
      ++stats->settled;
    }
    const double du = scratch.dist_[u];
    if (scratch.bstamp_[u] == scratch.bgeneration_ &&
        du + scratch.bdist_[u] < best_meet) {
      best_meet = du + scratch.bdist_[u];
      meet = u;
    }
    for (std::uint32_t i = fwd_offset_[u]; i < fwd_offset_[u + 1]; ++i) {
      const std::uint32_t a = fwd_arcs_[i];
      const double w = arc_value_[a];
      if (w == kInfiniteCost) continue;
      const std::uint32_t v = arc_head_[a];
      scratch.touch(v);
      if (scratch.state_[v] == SearchScratch::kSettled) continue;
      const double candidate = du + w;
      if (candidate < scratch.dist_[v]) {
        double key = candidate;
        if constexpr (kGoal) {
          const double hv = pot_of(v);
          if (hv == kInfiniteCost) {
            if (stats != nullptr) ++stats->pruned;
            continue;
          }
          key = candidate + hv;
        }
        if (key >= best_meet) {
          // Any completion through this label costs at least key.
          if (stats != nullptr) ++stats->pruned;
          continue;
        }
        const bool queued = scratch.state_[v] == SearchScratch::kInHeap;
        scratch.dist_[v] = candidate;
        scratch.parent_[v] = a;
        if (stats != nullptr) ++stats->relaxations;
        if (queued) {
          scratch.heap_decrease(v, key);
        } else {
          scratch.heap_push(v, key);
        }
      }
    }
  }
  if (best_meet == kInfiniteCost) return false;

  // --- unpack: forward arc chain (seed->meet, walked in reverse), then
  // backward chain (already meet->sink order), each expanded support-by-
  // support down to CSR slots.  Matches are exact double equality: every
  // value is literally one of the candidates it was min'd from.
  std::vector<std::uint32_t> chain;
  for (std::uint32_t v = meet; scratch.parent_[v] != kInvalidArc;) {
    const std::uint32_t a = scratch.parent_[v];
    chain.push_back(a);
    v = arc_tail_[a];
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    unpack(*it, slots_out);
  }
  for (std::uint32_t v = meet; scratch.bparent_[v] != kInvalidArc;) {
    const std::uint32_t a = scratch.bparent_[v];
    unpack(a, slots_out);
    v = arc_head_[a];
  }
  return true;
}

}  // namespace lumen
