#include "graph/fib_heap.h"

#include <cmath>

namespace lumen {

FibNode* FibHeap::allocate(double key, std::uint32_t item) {
  FibNode* node;
  if (!free_.empty()) {
    node = free_.back();
    free_.pop_back();
  } else {
    pool_.emplace_back();
    node = &pool_.back();
  }
  node->key = key;
  node->item = item;
  node->degree = 0;
  node->marked = false;
  node->in_heap = true;
  node->parent = nullptr;
  node->child = nullptr;
  node->left = node;
  node->right = node;
  return node;
}

void FibHeap::add_to_roots(FibNode* x) noexcept {
  if (min_ == nullptr) {
    x->left = x;
    x->right = x;
    min_ = x;
    return;
  }
  // Splice x into the root ring just right of min_.
  x->left = min_;
  x->right = min_->right;
  min_->right->left = x;
  min_->right = x;
  if (x->key < min_->key) min_ = x;
}

FibHeap::Handle FibHeap::push(double key, std::uint32_t item) {
  FibNode* node = allocate(key, item);
  add_to_roots(node);
  ++size_;
  return node;
}

double FibHeap::min_key() const {
  LUMEN_REQUIRE(min_ != nullptr);
  return min_->key;
}

std::uint32_t FibHeap::min_item() const {
  LUMEN_REQUIRE(min_ != nullptr);
  return min_->item;
}

void FibHeap::link_under(FibNode* child, FibNode* parent) noexcept {
  // Remove child from the root ring.
  child->left->right = child->right;
  child->right->left = child->left;
  child->parent = parent;
  if (parent->child == nullptr) {
    parent->child = child;
    child->left = child;
    child->right = child;
  } else {
    child->left = parent->child;
    child->right = parent->child->right;
    parent->child->right->left = child;
    parent->child->right = child;
  }
  ++parent->degree;
  child->marked = false;
}

void FibHeap::consolidate() {
  if (min_ == nullptr) return;
  // max degree is O(log_phi n); 64 entries is ample headroom for any
  // size_t-addressable heap.
  degree_scratch_.assign(64, nullptr);

  // Collect current roots first (the ring is restructured while linking).
  std::vector<FibNode*> roots;
  FibNode* w = min_;
  do {
    roots.push_back(w);
    w = w->right;
  } while (w != min_);

  for (FibNode* x : roots) {
    std::uint32_t d = x->degree;
    while (degree_scratch_[d] != nullptr) {
      FibNode* y = degree_scratch_[d];
      if (y->key < x->key) std::swap(x, y);
      link_under(y, x);
      degree_scratch_[d] = nullptr;
      ++d;
    }
    degree_scratch_[d] = x;
  }

  // Rebuild the root ring from the scratch table.
  min_ = nullptr;
  for (FibNode* x : degree_scratch_) {
    if (x == nullptr) continue;
    x->parent = nullptr;
    add_to_roots(x);
  }
}

std::pair<double, std::uint32_t> FibHeap::pop_min() {
  LUMEN_REQUIRE(min_ != nullptr);
  FibNode* z = min_;
  const std::pair<double, std::uint32_t> result{z->key, z->item};

  // Promote z's children to roots.
  if (z->child != nullptr) {
    FibNode* c = z->child;
    do {
      FibNode* next = c->right;
      c->parent = nullptr;
      c->marked = false;
      // Splice c right of z in the root ring.
      c->left = z;
      c->right = z->right;
      z->right->left = c;
      z->right = c;
      c = next;
    } while (c != z->child);
    z->child = nullptr;
  }

  // Remove z from the root ring.
  if (z->right == z) {
    min_ = nullptr;
  } else {
    z->left->right = z->right;
    z->right->left = z->left;
    min_ = z->right;
    consolidate();
  }
  --size_;
  z->in_heap = false;
  free_.push_back(z);
  return result;
}

void FibHeap::cut(FibNode* x, FibNode* parent) noexcept {
  // Remove x from parent's child ring.
  if (x->right == x) {
    parent->child = nullptr;
  } else {
    x->left->right = x->right;
    x->right->left = x->left;
    if (parent->child == x) parent->child = x->right;
  }
  --parent->degree;
  x->parent = nullptr;
  x->marked = false;
  add_to_roots(x);
}

void FibHeap::cascading_cut(FibNode* y) noexcept {
  FibNode* parent = y->parent;
  while (parent != nullptr) {
    if (!y->marked) {
      y->marked = true;
      return;
    }
    cut(y, parent);
    y = parent;
    parent = y->parent;
  }
}

void FibHeap::decrease_key(Handle h, double new_key) {
  LUMEN_REQUIRE(h != nullptr && h->in_heap);
  LUMEN_REQUIRE_MSG(new_key <= h->key,
                    "decrease_key must not increase the key");
  h->key = new_key;
  FibNode* parent = h->parent;
  if (parent != nullptr && h->key < parent->key) {
    cut(h, parent);
    cascading_cut(parent);
  }
  if (h->key < min_->key) min_ = h;
}

void FibHeap::clear() {
  min_ = nullptr;
  size_ = 0;
  free_.clear();
  free_.reserve(pool_.size());
  for (auto& node : pool_) {
    node.in_heap = false;
    free_.push_back(&node);
  }
}

}  // namespace lumen
