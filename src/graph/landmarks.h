// ALT landmarks (A*, Landmarks, Triangle inequality — Goldberg &
// Harrelson) over a weighted digraph.
//
// A landmark ℓ with precomputed forward distances d(ℓ,·) and reverse
// distances d(·,ℓ) yields, for any query target t, the lower bound
//
//   π_t(v) = max_ℓ max( d(ℓ,t) − d(ℓ,v),  d(v,ℓ) − d(t,ℓ) )  ≥ 0,
//
// valid by the triangle inequality; it is a *consistent* A* potential,
// so goal-directed searches keyed by f = g + π_t settle every node at
// its true distance and never re-expand.  Directed infinities carry real
// information: d(ℓ,t) = ∞ with d(ℓ,v) < ∞ proves v cannot reach t (if it
// could, ℓ could too), so π_t(v) = ∞ and the node is pruned outright —
// the same holds for d(v,ℓ) = ∞ with d(t,ℓ) < ∞.
//
// Selection is deterministic farthest-point: starting from a seed-chosen
// node, repeatedly add the node maximizing its round-trip distance to
// the closest already-chosen landmark (ties to the smallest id), which
// spreads landmarks toward the graph periphery where their bounds are
// tightest.  Distances are computed once per landmark (one forward + one
// reverse Dijkstra) and stored as flat per-landmark rows.
//
// The tables snapshot the weights they were built with.  Used on graphs
// whose weights only ever *rise* above that snapshot (the RouteEngine's
// residual-patch invariant), the bounds remain admissible and consistent
// with zero invalidation.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/digraph.h"

namespace lumen {

/// Flat per-landmark distance tables plus the π_t evaluation.
struct LandmarkTables {
  std::uint32_t num_nodes = 0;
  std::uint32_t num_landmarks = 0;
  std::vector<NodeId> landmarks;
  /// from_landmark[ℓ·n + v] = d(landmarks[ℓ] → v).
  std::vector<double> from_landmark;
  /// to_landmark[ℓ·n + v] = d(v → landmarks[ℓ]).
  std::vector<double> to_landmark;

  [[nodiscard]] bool empty() const noexcept { return num_landmarks == 0; }

  /// π_t(v): the max-over-landmarks lower bound on d(v, t); ∞ when some
  /// landmark proves t unreachable from v.  O(num_landmarks).
  [[nodiscard]] double potential(std::uint32_t v, std::uint32_t t) const {
    double best = 0.0;
    for (std::uint32_t l = 0; l < num_landmarks; ++l) {
      const double* fwd = from_landmark.data() +
                          static_cast<std::size_t>(l) * num_nodes;
      const double* rev = to_landmark.data() +
                          static_cast<std::size_t>(l) * num_nodes;
      const double lt = fwd[t];  // d(ℓ, t)
      const double lv = fwd[v];  // d(ℓ, v)
      if (lt == kInfiniteCost) {
        if (lv < kInfiniteCost) return kInfiniteCost;
      } else if (lv < kInfiniteCost && lt - lv > best) {
        best = lt - lv;
      }
      const double vl = rev[v];  // d(v, ℓ)
      const double tl = rev[t];  // d(t, ℓ)
      if (vl == kInfiniteCost) {
        if (tl < kInfiniteCost) return kInfiniteCost;
      } else if (tl < kInfiniteCost && vl - tl > best) {
        best = vl - tl;
      }
    }
    return best;
  }
};

/// Builds `count` landmarks on g (clamped to num_nodes) by deterministic
/// farthest-point selection seeded from node (seed mod n).  2·count full
/// Dijkstras; O(count · n) storage.  count = 0 or an empty graph yields
/// empty tables (LandmarkTables::empty()).
[[nodiscard]] LandmarkTables select_landmarks(const Digraph& g,
                                              std::uint32_t count,
                                              std::uint64_t seed);

class ContractionHierarchy;

/// Sweep-warmed variant: the per-landmark rows come from PHAST one-to-all
/// sweeps over prebuilt hierarchies of g (`forward`) and of g reversed
/// (`reverse`) instead of 2·count flat Dijkstras.  Sweep distances are
/// bit-identical to the flat search, so the farthest-point selection —
/// and therefore the tables — match the flat overload exactly; only the
/// build cost changes.  Both hierarchies must be fresh (!stale()).
[[nodiscard]] LandmarkTables select_landmarks(
    const Digraph& g, std::uint32_t count, std::uint64_t seed,
    const ContractionHierarchy& forward, const ContractionHierarchy& reverse);

}  // namespace lumen
