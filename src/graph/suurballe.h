// Suurballe's algorithm: a link-disjoint pair of paths with minimum
// total cost.
//
// The exact counterpart of the protection heuristics in core/protection:
// for plain weighted digraphs (equivalently: WDM routing restricted to a
// single wavelength layer with no conversion) Suurballe finds the
// cheapest pair of link-disjoint s→t paths in two Dijkstra runs —
// including instances where the single-path optimum must be abandoned
// (trap topologies).  Tests use it as ground truth for the two-step
// heuristic's gap.
//
// Method: Dijkstra from s; reduce weights w'(e) = w(e) + d(tail) - d(head)
// (non-negative, zero along shortest paths); reverse the links of one
// shortest path; Dijkstra again in the residual; union the two paths and
// cancel opposite link pairs; split the union into two disjoint paths.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"
#include "util/strong_id.h"

namespace lumen {

/// A link-disjoint pair of s→t paths with minimal total cost.
struct DisjointPair {
  std::vector<LinkId> first;   ///< link sequence of one path
  std::vector<LinkId> second;  ///< link sequence of the other
  double total_cost = 0.0;     ///< sum of both paths' weights
};

/// The cheapest pair of link-disjoint paths s→t (links may not repeat
/// across the pair; nodes may).  std::nullopt when fewer than two
/// link-disjoint paths exist.  Weights must be non-negative (+inf links
/// ignored).  Requires s != t.
[[nodiscard]] std::optional<DisjointPair> suurballe_disjoint_pair(
    const Digraph& g, NodeId s, NodeId t);

}  // namespace lumen
