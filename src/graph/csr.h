// Compressed-sparse-row (CSR) digraph view with patchable weights.
//
// The mutable Digraph stores per-node link vectors — convenient while
// building, but each adjacency list is its own heap allocation.  CSR packs
// all out-links into one contiguous array for cache-friendly traversal;
// the Dijkstra inner loop on large auxiliary graphs is memory-bound, so
// this is the representation ablation bench_csr measures.  Link identity
// is preserved: every CSR out-link carries the original LinkId so results
// (parent links, extracted paths) remain expressed in Digraph terms.
//
// The structure (offsets, heads) is immutable after construction, but
// weights may be patched in place via slot indices (set_weight): this is
// what lets the build-once RouteEngine flip residual availability to/from
// +inf in O(1) per (link, wavelength) instead of rebuilding the arena.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/dijkstra.h"  // ShortestPathTree, kInfiniteCost

namespace lumen {

/// CSR snapshot of a Digraph's out-adjacency.  Structure is fixed;
/// weights are patchable by slot.
class CsrDigraph {
 public:
  /// One packed out-link.  Its index in the packed array is its "slot".
  struct OutLink {
    NodeId head;
    double weight;
    LinkId original;  ///< id of the corresponding Digraph link
  };

  /// Sentinel for "no slot" (e.g. a search seed's parent).
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

  /// Snapshots `g` (O(n + m)).
  explicit CsrDigraph(const Digraph& g);

  /// Snapshots the *reversed* graph: slot (v, e) holds link e of g packed
  /// under its head v, pointing back at g.tail(e).  Searches over this
  /// view compute distances *to* a node (the reverse-Dijkstra potentials
  /// of goal-directed routing).  Slot order differs from the forward CSR,
  /// so per-slot weight rows built against one view do not apply to the
  /// other; `original` ids stay those of g.
  [[nodiscard]] static CsrDigraph reversed(const Digraph& g);

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(offsets_.size() - 1);
  }
  [[nodiscard]] std::uint32_t num_links() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }

  /// Out-links of v, contiguous.
  [[nodiscard]] std::span<const OutLink> out(NodeId v) const {
    LUMEN_REQUIRE(v.value() < num_nodes());
    return {links_.data() + offsets_[v.value()],
            offsets_[v.value() + 1] - offsets_[v.value()]};
  }

  /// Slot range [first, last) of v's out-links in the packed array.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> out_slot_range(
      NodeId v) const {
    LUMEN_REQUIRE(v.value() < num_nodes());
    return {static_cast<std::uint32_t>(offsets_[v.value()]),
            static_cast<std::uint32_t>(offsets_[v.value() + 1])};
  }

  /// The packed out-link stored in `slot`.
  [[nodiscard]] const OutLink& link(std::uint32_t slot) const {
    LUMEN_REQUIRE(slot < num_links());
    return links_[slot];
  }

  /// Tail node of the link stored in `slot` (O(log n) over the offsets).
  /// Lets parent-slot chains from SearchScratch be walked back to a seed.
  [[nodiscard]] NodeId tail(std::uint32_t slot) const;

  /// Patches the weight stored in `slot` (>= 0, may be +infinity).  The
  /// structure is untouched, so views/spans stay valid.
  void set_weight(std::uint32_t slot, double weight) {
    LUMEN_REQUIRE(slot < num_links());
    LUMEN_REQUIRE_MSG(weight >= 0.0, "link weights must be non-negative");
    links_[slot].weight = weight;
  }

  /// Reverse index: result[original link id] = slot holding its snapshot.
  /// Each Digraph link appears in exactly one slot.  O(m).
  [[nodiscard]] std::vector<std::uint32_t> slots_by_original() const;

 private:
  CsrDigraph() = default;  // backs the reversed() factory

  std::vector<std::size_t> offsets_;  // n+1 entries
  std::vector<OutLink> links_;
};

class SearchScratch;
struct CsrRunStats;

/// Declared here (defaults live on this declaration) so it can be a
/// friend of SearchScratch; definition below the class.
template <class Potential>
NodeId astar_csr_run(const CsrDigraph& g, std::span<const NodeId> sources,
                     SearchScratch& scratch, Potential&& potential,
                     CsrRunStats* stats = nullptr,
                     std::span<const double> weights = {});

/// Reusable search state for dijkstra_csr_run.  Buffers are sized to the
/// graph once and invalidated lazily via generation stamps, so after
/// warm-up a query allocates nothing and "clearing" is O(1).
///
/// Protocol per query: begin(n), mark_sink(v) for each early-exit target
/// (optional), run, then read dist()/parent_slot() for settled nodes.
/// One scratch serves one thread; concurrent searches need one scratch
/// each (the graph itself is safe to share read-only).
class SearchScratch {
 public:
  /// Opens a new query over an `num_nodes`-node graph: grows the buffers
  /// if needed and invalidates all per-node state from previous queries.
  void begin(std::uint32_t num_nodes);

  /// A token-stamped per-target distance table for goal-directed searches.
  /// The owner (a RouteEngine, identified by a unique token) fills it
  /// lazily — one reverse Dijkstra on the first query to `target` — and
  /// reuses it while (owner, target) match, so batches and repeated
  /// queries to the same target amortize the potential computation.  The
  /// tables hold *base*-weight distances, which stay admissible for the
  /// owner's whole lifetime (weight patches only ever raise weights), so
  /// no weight-change invalidation is ever needed.
  struct TargetPotential {
    std::uint64_t owner = 0;  ///< 0 = empty slot
    std::uint32_t target = 0xffffffffu;
    std::vector<double> dist;  ///< per-node distance-to-target
  };
  [[nodiscard]] TargetPotential& target_potential() noexcept {
    return target_potential_;
  }

  /// Marks v as a sink of the current query (search stops at the first
  /// settled sink).
  void mark_sink(NodeId v);
  [[nodiscard]] bool is_sink(NodeId v) const noexcept {
    return sink_stamp_[v.value()] == generation_;
  }

  /// Tentative/final distance of v in the current query (+inf when never
  /// touched).  Final iff settled(v).
  [[nodiscard]] double dist(NodeId v) const noexcept {
    return stamp_[v.value()] == generation_ ? dist_[v.value()] : kInfiniteCost;
  }
  [[nodiscard]] bool settled(NodeId v) const noexcept {
    return stamp_[v.value()] == generation_ && state_[v.value()] == kSettled;
  }
  /// Slot of the CSR link that last relaxed v (kInvalidSlot at seeds and
  /// untouched nodes).
  [[nodiscard]] std::uint32_t parent_slot(NodeId v) const noexcept {
    return stamp_[v.value()] == generation_ ? parent_[v.value()]
                                            : CsrDigraph::kInvalidSlot;
  }

 private:
  friend NodeId dijkstra_csr_run(const CsrDigraph&, std::span<const NodeId>,
                                 SearchScratch&, CsrRunStats*,
                                 std::span<const double>);
  template <class Potential>
  friend NodeId astar_csr_run(const CsrDigraph&, std::span<const NodeId>,
                              SearchScratch&, Potential&&, CsrRunStats*,
                              std::span<const double>);

  static constexpr std::uint8_t kInHeap = 1;
  static constexpr std::uint8_t kSettled = 2;

  /// First touch of v in this query: resets its per-query state.
  void touch(std::uint32_t v) {
    if (stamp_[v] != generation_) {
      stamp_[v] = generation_;
      dist_[v] = kInfiniteCost;
      parent_[v] = CsrDigraph::kInvalidSlot;
      state_[v] = 0;
    }
  }

  // --- indexed 4-ary heap over node ids, keyed by key_ ------------------
  // (Dijkstra pushes key == dist; A* pushes key == dist + potential.)
  void heap_push(std::uint32_t v, double key);
  void heap_decrease(std::uint32_t v, double key);
  std::uint32_t heap_pop_min();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::uint64_t generation_ = 0;
  std::vector<std::uint64_t> stamp_;       // per node: generation when touched
  std::vector<std::uint64_t> sink_stamp_;  // per node: generation when marked
  std::vector<double> dist_;
  std::vector<std::uint32_t> parent_;  // CSR slot
  std::vector<std::uint8_t> state_;    // kInHeap / kSettled (stamped)
  std::vector<double> key_;            // heap ordering key (f-value)
  std::vector<std::uint32_t> heap_;    // node ids, min-ordered by key_
  std::vector<std::uint32_t> pos_;     // heap position (valid while kInHeap)
  // Per-query memo of the A* potential (evaluating it costs O(L) per
  // node, and a node can be relaxed many times before settling).
  std::vector<std::uint64_t> pot_stamp_;
  std::vector<double> pot_;
  TargetPotential target_potential_;
};

/// Per-run effort counters of dijkstra_csr_run / astar_csr_run.
struct CsrRunStats {
  std::uint64_t pops = 0;
  std::uint64_t settled = 0;  ///< == pops (no lazy deletion), kept explicit
  std::uint64_t relaxations = 0;
  /// Relaxations (or seeds) skipped because the potential proved the node
  /// cannot reach the target; 0 for uninformed Dijkstra runs.
  std::uint64_t pruned = 0;
};

/// Multi-source, early-exit Dijkstra over a CSR arena.
///
/// Seeds every node of `sources` at distance 0 (this is the RouteEngine's
/// "virtual terminal": equivalent to a zero-weight tie from an implicit
/// super-source, without materializing terminal nodes).  When sinks were
/// marked in `scratch`, the search stops at the first settled sink — which,
/// by Dijkstra's settle order, is the closest sink — and returns it
/// (invalid id when no sink is reachable).  With no sinks marked it runs to
/// exhaustion and returns an invalid id; distances are then a full SSSP.
///
/// `weights`, when non-empty, overrides the arena's stored weights
/// (indexed by slot; size num_links).  This serves structure-sharing
/// subnetwork caches that keep one weight row per wavelength.
NodeId dijkstra_csr_run(const CsrDigraph& g, std::span<const NodeId> sources,
                        SearchScratch& scratch, CsrRunStats* stats = nullptr,
                        std::span<const double> weights = {});

/// Goal-directed (A*) variant of dijkstra_csr_run.
///
/// `potential(v)` must be an *admissible, consistent* lower bound on the
/// remaining cost from node v to every marked sink (kInfiniteCost when v
/// provably cannot reach one — such nodes are pruned outright and counted
/// in CsrRunStats::pruned).  The heap is ordered by f = dist + potential;
/// settled distances (scratch.dist()) are true g-costs, so results are
/// exchangeable with dijkstra_csr_run's.  With a consistent potential the
/// first settled sink is still the cheapest one (all sinks must have
/// potential 0), and every settled node carries its optimal distance.
/// The potential is evaluated at most once per touched node per query
/// (memoized in the scratch).
template <class Potential>
NodeId astar_csr_run(const CsrDigraph& g, std::span<const NodeId> sources,
                     SearchScratch& scratch, Potential&& potential,
                     CsrRunStats* stats, std::span<const double> weights) {
  LUMEN_REQUIRE(weights.empty() || weights.size() == g.num_links());
  const bool overridden = !weights.empty();

  const auto pot_of = [&](std::uint32_t v) -> double {
    if (scratch.pot_stamp_[v] != scratch.generation_) {
      scratch.pot_stamp_[v] = scratch.generation_;
      scratch.pot_[v] = potential(v);
    }
    return scratch.pot_[v];
  };

  for (const NodeId s : sources) {
    LUMEN_REQUIRE(s.value() < g.num_nodes());
    scratch.touch(s.value());
    if (scratch.dist_[s.value()] > 0.0) {
      const double h = pot_of(s.value());
      if (h == kInfiniteCost) {
        if (stats != nullptr) ++stats->pruned;
        continue;
      }
      scratch.dist_[s.value()] = 0.0;
      scratch.parent_[s.value()] = CsrDigraph::kInvalidSlot;
      scratch.heap_push(s.value(), h);
    }
  }

  while (!scratch.heap_.empty()) {
    const std::uint32_t u = scratch.heap_pop_min();
    scratch.state_[u] = SearchScratch::kSettled;
    if (stats != nullptr) {
      ++stats->pops;
      ++stats->settled;
    }
    if (scratch.sink_stamp_[u] == scratch.generation_) return NodeId{u};
    const double du = scratch.dist_[u];

    const auto [first, last] = g.out_slot_range(NodeId{u});
    for (std::uint32_t slot = first; slot < last; ++slot) {
      const CsrDigraph::OutLink& out = g.link(slot);
      const double w = overridden ? weights[slot] : out.weight;
      if (w == kInfiniteCost) continue;
      const std::uint32_t v = out.head.value();
      scratch.touch(v);
      if (scratch.state_[v] == SearchScratch::kSettled) continue;
      const double candidate = du + w;
      if (candidate < scratch.dist_[v]) {
        const double hv = pot_of(v);
        if (hv == kInfiniteCost) {
          if (stats != nullptr) ++stats->pruned;
          continue;
        }
        const bool queued = scratch.state_[v] == SearchScratch::kInHeap;
        scratch.dist_[v] = candidate;
        scratch.parent_[v] = slot;
        if (stats != nullptr) ++stats->relaxations;
        if (queued) {
          scratch.heap_decrease(v, candidate + hv);
        } else {
          scratch.heap_push(v, candidate + hv);
        }
      }
    }
  }
  return NodeId::invalid();
}

/// Dijkstra over the CSR view (Fibonacci heap).  Semantics identical to
/// dijkstra() on the originating Digraph — parent links are original ids.
[[nodiscard]] ShortestPathTree dijkstra_csr(
    const CsrDigraph& g, NodeId source,
    std::optional<NodeId> target = std::nullopt);

}  // namespace lumen
