// Compressed-sparse-row (CSR) digraph view with patchable weights.
//
// The mutable Digraph stores per-node link vectors — convenient while
// building, but each adjacency list is its own heap allocation.  CSR packs
// all out-links into contiguous arrays for cache-friendly traversal; the
// Dijkstra inner loop on large auxiliary graphs is memory-bound, so this
// is the representation ablation bench_csr measures.  Link identity is
// preserved: every slot carries the original LinkId so results (parent
// links, extracted paths) remain expressed in Digraph terms.
//
// Layout is structure-of-arrays: heads, weights, and original ids live in
// separate cache-line-aligned arrays keyed by slot.  The search kernel
// streams exactly two of them (heads + weights) per relaxation, so SoA
// halves the touched bytes versus the old array-of-structs packing — and
// a per-wavelength weight override becomes a plain row-pointer swap
// instead of a per-link branch.
//
// The structure (offsets, heads) is immutable after construction, but
// weights may be patched in place via slot indices (set_weight): this is
// what lets the build-once RouteEngine flip residual availability to/from
// +inf in O(1) per (link, wavelength) instead of rebuilding the arena.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "graph/dijkstra.h"  // ShortestPathTree, kInfiniteCost
#include "util/mem.h"

namespace lumen {

/// CSR snapshot of a Digraph's out-adjacency.  Structure is fixed;
/// weights are patchable by slot.
class CsrDigraph {
 public:
  /// One packed out-link, materialized by value from the SoA rows.
  struct OutLink {
    NodeId head;
    double weight;
    LinkId original;  ///< id of the corresponding Digraph link
  };

  /// Sentinel for "no slot" (e.g. a search seed's parent).
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

  /// Snapshots `g` (O(n + m)).
  explicit CsrDigraph(const Digraph& g);

  /// What reversed() copies besides the structure.
  enum class ReversalMode {
    kCopyWeights,    ///< snapshot g's weights per slot (default)
    kStructureOnly,  ///< offsets/heads/originals only; no weight row
  };

  /// Snapshots the *reversed* graph: slot (v, e) holds link e of g packed
  /// under its head v, pointing back at g.tail(e).  Searches over this
  /// view compute distances *to* a node (the reverse-Dijkstra potentials
  /// of goal-directed routing).  Slot order differs from the forward CSR,
  /// so per-slot weight rows built against one view do not apply to the
  /// other; `original` ids stay those of g.
  ///
  /// kStructureOnly skips the weight row entirely (has_weights() is then
  /// false): callers that keep their own separately-customized weight row
  /// — the hierarchy's downward-sweep CSR — would otherwise double-store
  /// every weight.  Such a view must always be searched with an explicit
  /// weight override; weight()/set_weight() on it are errors.
  [[nodiscard]] static CsrDigraph reversed(
      const Digraph& g, ReversalMode mode = ReversalMode::kCopyWeights);

  /// False only for ReversalMode::kStructureOnly views.
  [[nodiscard]] bool has_weights() const noexcept {
    return weights_.size() == heads_.size();
  }

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(offsets_.size() - 1);
  }
  [[nodiscard]] std::uint32_t num_links() const noexcept {
    return static_cast<std::uint32_t>(heads_.size());
  }

  /// Slot range [first, last) of v's out-links in the packed arrays.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> out_slot_range(
      NodeId v) const {
    LUMEN_REQUIRE(v.value() < num_nodes());
    return {offsets_[v.value()], offsets_[v.value() + 1]};
  }

  [[nodiscard]] NodeId head(std::uint32_t slot) const {
    LUMEN_REQUIRE(slot < num_links());
    return NodeId{heads_[slot]};
  }
  [[nodiscard]] double weight(std::uint32_t slot) const {
    LUMEN_REQUIRE(slot < num_links());
    LUMEN_REQUIRE_MSG(has_weights(), "structure-only view stores no weights");
    return weights_[slot];
  }
  [[nodiscard]] LinkId original(std::uint32_t slot) const {
    LUMEN_REQUIRE(slot < num_links());
    return originals_[slot];
  }

  /// The packed out-link stored in `slot`, materialized by value.
  [[nodiscard]] OutLink link(std::uint32_t slot) const {
    LUMEN_REQUIRE(slot < num_links());
    LUMEN_REQUIRE_MSG(has_weights(), "structure-only view stores no weights");
    return {NodeId{heads_[slot]}, weights_[slot], originals_[slot]};
  }

  /// Raw SoA rows for the search kernels (indexed by slot, num_links
  /// entries).  weights_data() doubles as the default weight row a
  /// per-wavelength override replaces wholesale.
  [[nodiscard]] const std::uint32_t* heads_data() const noexcept {
    return heads_.data();
  }
  [[nodiscard]] const double* weights_data() const noexcept {
    return weights_.data();
  }

  /// Tail node of the link stored in `slot` (O(log n) over the offsets).
  /// Lets parent-slot chains from SearchScratch be walked back to a seed.
  [[nodiscard]] NodeId tail(std::uint32_t slot) const;

  /// Patches the weight stored in `slot` (>= 0, may be +infinity).  The
  /// structure is untouched, so views/spans stay valid.
  void set_weight(std::uint32_t slot, double weight) {
    LUMEN_REQUIRE(slot < num_links());
    LUMEN_REQUIRE_MSG(has_weights(), "structure-only view stores no weights");
    LUMEN_REQUIRE_MSG(weight >= 0.0, "link weights must be non-negative");
    weights_[slot] = weight;
  }

  /// Reverse index: result[original link id] = slot holding its snapshot.
  /// Each Digraph link appears in exactly one slot.  O(m).
  [[nodiscard]] std::vector<std::uint32_t> slots_by_original() const;

 private:
  CsrDigraph() = default;  // backs the reversed() factory

  AlignedVector<std::uint32_t> offsets_;  // n+1 entries
  AlignedVector<std::uint32_t> heads_;    // per slot
  AlignedVector<double> weights_;         // per slot (patchable)
  std::vector<LinkId> originals_;         // per slot (cold: path extraction)
};

class SearchScratch;
class ContractionHierarchy;
struct CsrRunStats;

/// Tag potential for the shared kernel: compiles the uninformed Dijkstra
/// (no potential memo, no pruning branch) out of csr_search_run.
struct NoPotential {};

/// Below this node count the scratch rows (dist/stamp/state) fit
/// comfortably in L2 and the software-prefetch bookkeeping is pure
/// overhead (~10 ns/pop measured on the n = 64 engine bench), so
/// csr_search_run dispatches to the prefetch-free instantiation.
inline constexpr std::uint32_t kPrefetchMinNodes = 1u << 15;

template <bool kPrefetch, class Potential>
NodeId csr_search_run_impl(const CsrDigraph& g, std::span<const NodeId> sources,
                           SearchScratch& scratch, Potential&& potential,
                           CsrRunStats* stats, std::span<const double> weights);

template <class Potential>
NodeId csr_search_run(const CsrDigraph& g, std::span<const NodeId> sources,
                      SearchScratch& scratch, Potential&& potential,
                      CsrRunStats* stats, std::span<const double> weights);

/// Declared here (defaults live on this declaration) so it can be a
/// friend of SearchScratch; definition below the class.
template <class Potential>
NodeId astar_csr_run(const CsrDigraph& g, std::span<const NodeId> sources,
                     SearchScratch& scratch, Potential&& potential,
                     CsrRunStats* stats = nullptr,
                     std::span<const double> weights = {});

/// Reusable search state for the CSR search kernels.  Buffers are sized to
/// the graph once and invalidated lazily via generation stamps, so after
/// warm-up a query allocates nothing and "clearing" is O(1).
///
/// Protocol per query: begin(n), mark_sink(v) for each early-exit target
/// (optional), run, then read dist()/parent_slot() for settled nodes.
/// One scratch serves one thread; concurrent searches need one scratch
/// each (the graph itself is safe to share read-only).
///
/// Footprint is mode-aware: begin() sizes only the arrays every search
/// touches.  The A* potential memo, the hierarchy query's backward-side
/// arrays, and the per-target reverse-potential cache are each sized
/// lazily on the first query of their mode, so a scratch that only ever
/// runs plain Dijkstra never allocates the other two sets.
class SearchScratch {
 public:
  /// Opens a new query over an `num_nodes`-node graph: grows the buffers
  /// if needed and invalidates all per-node state from previous queries.
  void begin(std::uint32_t num_nodes);

  /// A token-stamped per-target distance table for goal-directed searches.
  /// The owner (a RouteEngine, identified by a unique token) fills it
  /// lazily — one reverse Dijkstra on the first query to `target` — and
  /// reuses it while (owner, target) match, so batches and repeated
  /// queries to the same target amortize the potential computation.  The
  /// tables hold *base*-weight distances, which stay admissible for the
  /// owner's whole lifetime (weight patches only ever raise weights), so
  /// no weight-change invalidation is ever needed.
  struct TargetPotential {
    std::uint64_t owner = 0;  ///< 0 = empty slot
    std::uint32_t target = 0xffffffffu;
    std::vector<double> dist;  ///< per-node distance-to-target
  };
  [[nodiscard]] TargetPotential& target_potential() noexcept {
    return target_potential_;
  }

  /// Marks v as a sink of the current query (search stops at the first
  /// settled sink).
  void mark_sink(NodeId v);
  [[nodiscard]] bool is_sink(NodeId v) const noexcept {
    return sink_stamp_[v.value()] == generation_;
  }

  /// Tentative/final distance of v in the current query (+inf when never
  /// touched).  Final iff settled(v).
  [[nodiscard]] double dist(NodeId v) const noexcept {
    return stamp_[v.value()] == generation_ ? dist_[v.value()] : kInfiniteCost;
  }
  [[nodiscard]] bool settled(NodeId v) const noexcept {
    return stamp_[v.value()] == generation_ && state_[v.value()] == kSettled;
  }
  /// Slot of the CSR link that last relaxed v (kInvalidSlot at seeds and
  /// untouched nodes).
  [[nodiscard]] std::uint32_t parent_slot(NodeId v) const noexcept {
    return stamp_[v.value()] == generation_ ? parent_[v.value()]
                                            : CsrDigraph::kInvalidSlot;
  }

 private:
  friend NodeId dijkstra_csr_run(const CsrDigraph&, std::span<const NodeId>,
                                 SearchScratch&, CsrRunStats*,
                                 std::span<const double>);
  template <bool kPrefetch, class Potential>
  friend NodeId csr_search_run_impl(const CsrDigraph&, std::span<const NodeId>,
                                    SearchScratch&, Potential&&, CsrRunStats*,
                                    std::span<const double>);
  /// The hierarchy query drives both sides of its bidirectional search
  /// through this scratch (forward pass on the primary arrays, backward
  /// pass results parked in the b* set).
  friend class ContractionHierarchy;

  static constexpr std::uint8_t kInHeap = 1;
  static constexpr std::uint8_t kSettled = 2;

  /// First touch of v in this query: resets its per-query state.
  void touch(std::uint32_t v) {
    if (stamp_[v] != generation_) {
      stamp_[v] = generation_;
      dist_[v] = kInfiniteCost;
      parent_[v] = CsrDigraph::kInvalidSlot;
      state_[v] = 0;
    }
  }

  /// Lazily sizes the A* potential memo (goal-directed queries only).
  void ensure_potentials() {
    if (pot_stamp_.size() < stamp_.size()) {
      pot_stamp_.resize(stamp_.size(), 0);
      pot_.resize(stamp_.size(), 0.0);
    }
  }
  /// Lazily sizes the batched-sweep lane arrays (one_to_all/many_to_all
  /// only): `entries` = positions × lanes.  The sweep kernels fill and
  /// consume these wholesale each call, so no generation stamping is
  /// needed — only capacity survives between calls.
  void ensure_sweep(std::size_t entries) {
    if (sweep_dist_.size() < entries) {
      sweep_dist_.resize(entries);
      sweep_parent_.resize(entries);
      sweep_done_.resize(entries);
    }
  }

  /// Lazily sizes the hierarchy backward-side arrays (hierarchy queries
  /// only) and opens a fresh backward generation.
  void begin_backward() {
    if (bstamp_.size() < stamp_.size()) {
      bstamp_.resize(stamp_.size(), 0);
      bdist_.resize(stamp_.size(), kInfiniteCost);
      bparent_.resize(stamp_.size(), CsrDigraph::kInvalidSlot);
    }
    ++bgeneration_;
  }

  // --- indexed 4-ary heap over node ids, keyed by hkey_ -----------------
  // (Dijkstra pushes key == dist; A* pushes key == dist + potential.)
  void heap_push(std::uint32_t v, double key);
  void heap_decrease(std::uint32_t v, double key);
  std::uint32_t heap_pop_min();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::uint64_t generation_ = 0;
  AlignedVector<std::uint64_t> stamp_;  // per node: generation when touched
  AlignedVector<std::uint64_t> sink_stamp_;  // generation when marked
  AlignedVector<double> dist_;
  AlignedVector<std::uint32_t> parent_;  // CSR slot
  AlignedVector<std::uint8_t> state_;    // kInHeap / kSettled (stamped)
  AlignedVector<std::uint32_t> heap_;  // node ids, min-ordered by hkey_
  // Heap keys (f-values) stored position-parallel to heap_, NOT per node:
  // sift-down's four child keys then sit in one contiguous 32-byte run, so
  // the min scan is a straight load (SIMD-friendly) instead of a gather
  // through heap_ into a node-indexed array.
  AlignedVector<double> hkey_;
  AlignedVector<std::uint32_t> pos_;  // heap position (valid while kInHeap)
  // Per-query memo of the A* potential (evaluating it costs O(L) per
  // node, and a node can be relaxed many times before settling); sized
  // lazily by ensure_potentials().
  AlignedVector<std::uint64_t> pot_stamp_;
  AlignedVector<double> pot_;
  // Backward side of the hierarchy's bidirectional query, stamped by its
  // own generation so one begin() can host both passes; sized lazily by
  // begin_backward().
  std::uint64_t bgeneration_ = 0;
  AlignedVector<std::uint64_t> bstamp_;
  AlignedVector<double> bdist_;
  AlignedVector<std::uint32_t> bparent_;  // hierarchy arc id
  // Batched-sweep lane state (position-major, lane-minor: entry p·L + l),
  // sized lazily by ensure_sweep(); plus the exact-fix work buffers, kept
  // here so one worker's sweeps reuse one allocation.
  AlignedVector<double> sweep_dist_;
  AlignedVector<std::uint32_t> sweep_parent_;  // hierarchy arc id
  AlignedVector<std::uint8_t> sweep_done_;     // exact-fix memo byte
  std::vector<std::uint32_t> sweep_stack_;     // exact-fix recursion stack
  std::vector<std::uint32_t> sweep_slots_;     // unpack scratch
  TargetPotential target_potential_;
};

/// Per-run effort counters of the CSR search kernels.
struct CsrRunStats {
  std::uint64_t pops = 0;
  std::uint64_t settled = 0;  ///< == pops (no lazy deletion), kept explicit
  std::uint64_t relaxations = 0;
  /// Relaxations (or seeds) skipped because the potential proved the node
  /// cannot reach the target; 0 for uninformed Dijkstra runs.
  std::uint64_t pruned = 0;
};

/// Multi-source, early-exit Dijkstra over a CSR arena.
///
/// Seeds every node of `sources` at distance 0 (this is the RouteEngine's
/// "virtual terminal": equivalent to a zero-weight tie from an implicit
/// super-source, without materializing terminal nodes).  When sinks were
/// marked in `scratch`, the search stops at the first settled sink — which,
/// by Dijkstra's settle order, is the closest sink — and returns it
/// (invalid id when no sink is reachable).  With no sinks marked it runs to
/// exhaustion and returns an invalid id; distances are then a full SSSP.
///
/// `weights`, when non-empty, overrides the arena's stored weights
/// (indexed by slot; size num_links).  This serves structure-sharing
/// subnetwork caches that keep one weight row per wavelength.
NodeId dijkstra_csr_run(const CsrDigraph& g, std::span<const NodeId> sources,
                        SearchScratch& scratch, CsrRunStats* stats = nullptr,
                        std::span<const double> weights = {});

/// The shared relaxation kernel behind dijkstra_csr_run and astar_csr_run
/// (both weight-override variants included): one loop, instantiated with
/// NoPotential for the uninformed search so the goal-directed branches
/// compile out, and with kPrefetch = false for graphs whose scratch rows
/// fit in cache (see kPrefetchMinNodes).  See astar_csr_run for the
/// potential contract.
template <bool kPrefetch, class Potential>
NodeId csr_search_run_impl(const CsrDigraph& g, std::span<const NodeId> sources,
                           SearchScratch& scratch, Potential&& potential,
                           CsrRunStats* stats, std::span<const double> weights) {
  constexpr bool kGoal = !std::is_same_v<std::decay_t<Potential>, NoPotential>;
  // How far ahead of the relaxation cursor the scratch rows of upcoming
  // heads are prefetched; far enough to cover an L2 miss, near enough to
  // stay within typical out-degrees.
  [[maybe_unused]] constexpr std::uint32_t kLookahead = 4;
  LUMEN_REQUIRE(weights.empty() || weights.size() == g.num_links());
  LUMEN_REQUIRE_MSG(!weights.empty() || g.has_weights(),
                    "structure-only view needs an explicit weight override");
  // SoA: an override is a wholesale row swap, not a per-link branch.
  const double* w = weights.empty() ? g.weights_data() : weights.data();
  const std::uint32_t* heads = g.heads_data();
  if constexpr (kGoal) scratch.ensure_potentials();

  const auto pot_of = [&](std::uint32_t v) -> double {
    if (scratch.pot_stamp_[v] != scratch.generation_) {
      scratch.pot_stamp_[v] = scratch.generation_;
      if constexpr (kGoal) scratch.pot_[v] = potential(v);
    }
    return scratch.pot_[v];
  };

  for (const NodeId s : sources) {
    LUMEN_REQUIRE(s.value() < g.num_nodes());
    scratch.touch(s.value());
    if (scratch.dist_[s.value()] > 0.0) {
      double h = 0.0;
      if constexpr (kGoal) {
        h = pot_of(s.value());
        if (h == kInfiniteCost) {
          if (stats != nullptr) ++stats->pruned;
          continue;
        }
      }
      scratch.dist_[s.value()] = 0.0;
      scratch.parent_[s.value()] = CsrDigraph::kInvalidSlot;
      scratch.heap_push(s.value(), h);
    }
  }

  while (!scratch.heap_.empty()) {
    const std::uint32_t u = scratch.heap_pop_min();
    scratch.state_[u] = SearchScratch::kSettled;
    // Issue the prefetch of u's packed head/weight rows before the
    // bookkeeping below so the lines arrive by the relaxation loop.
    const auto [first, last] = g.out_slot_range(NodeId{u});
    if constexpr (kPrefetch) {
      prefetch_read(heads + first);
      prefetch_read(w + first);
    }
    if (stats != nullptr) {
      ++stats->pops;
      ++stats->settled;
    }
    if (scratch.sink_stamp_[u] == scratch.generation_) return NodeId{u};
    const double du = scratch.dist_[u];

    for (std::uint32_t slot = first; slot < last; ++slot) {
      if constexpr (kPrefetch) {
        if (slot + kLookahead < last) {
          // The head -> scratch-row load is data-dependent; hint it early.
          const std::uint32_t ahead = heads[slot + kLookahead];
          prefetch_read(scratch.stamp_.data() + ahead);
          prefetch_read(scratch.dist_.data() + ahead);
        }
      }
      const double wt = w[slot];
      if (wt == kInfiniteCost) continue;
      const std::uint32_t v = heads[slot];
      scratch.touch(v);
      if (scratch.state_[v] == SearchScratch::kSettled) continue;
      const double candidate = du + wt;
      if (candidate < scratch.dist_[v]) {
        double key = candidate;
        if constexpr (kGoal) {
          const double hv = pot_of(v);
          if (hv == kInfiniteCost) {
            if (stats != nullptr) ++stats->pruned;
            continue;
          }
          key = candidate + hv;
        }
        const bool queued = scratch.state_[v] == SearchScratch::kInHeap;
        scratch.dist_[v] = candidate;
        scratch.parent_[v] = slot;
        if (stats != nullptr) ++stats->relaxations;
        if (queued) {
          scratch.heap_decrease(v, key);
        } else {
          scratch.heap_push(v, key);
        }
      }
    }
  }
  return NodeId::invalid();
}

template <class Potential>
NodeId csr_search_run(const CsrDigraph& g, std::span<const NodeId> sources,
                      SearchScratch& scratch, Potential&& potential,
                      CsrRunStats* stats, std::span<const double> weights) {
  if (g.num_nodes() >= kPrefetchMinNodes) {
    return csr_search_run_impl<true>(g, sources, scratch,
                                     std::forward<Potential>(potential), stats,
                                     weights);
  }
  return csr_search_run_impl<false>(g, sources, scratch,
                                    std::forward<Potential>(potential), stats,
                                    weights);
}

/// Goal-directed (A*) variant of dijkstra_csr_run.
///
/// `potential(v)` must be an *admissible, consistent* lower bound on the
/// remaining cost from node v to every marked sink (kInfiniteCost when v
/// provably cannot reach one — such nodes are pruned outright and counted
/// in CsrRunStats::pruned).  The heap is ordered by f = dist + potential;
/// settled distances (scratch.dist()) are true g-costs, so results are
/// exchangeable with dijkstra_csr_run's.  With a consistent potential the
/// first settled sink is still the cheapest one (all sinks must have
/// potential 0), and every settled node carries its optimal distance.
/// The potential is evaluated at most once per touched node per query
/// (memoized in the scratch).
template <class Potential>
NodeId astar_csr_run(const CsrDigraph& g, std::span<const NodeId> sources,
                     SearchScratch& scratch, Potential&& potential,
                     CsrRunStats* stats, std::span<const double> weights) {
  return csr_search_run(g, sources, scratch,
                        std::forward<Potential>(potential), stats, weights);
}

/// Dijkstra over the CSR view (Fibonacci heap).  Semantics identical to
/// dijkstra() on the originating Digraph — parent links are original ids.
[[nodiscard]] ShortestPathTree dijkstra_csr(
    const CsrDigraph& g, NodeId source,
    std::optional<NodeId> target = std::nullopt);

}  // namespace lumen
