// Compressed-sparse-row (CSR) immutable digraph view.
//
// The mutable Digraph stores per-node link vectors — convenient while
// building, but each adjacency list is its own heap allocation.  CSR packs
// all out-links into one contiguous array for cache-friendly traversal;
// the Dijkstra inner loop on large auxiliary graphs is memory-bound, so
// this is the representation ablation bench_csr measures.  Link identity
// is preserved: every CSR out-link carries the original LinkId so results
// (parent links, extracted paths) remain expressed in Digraph terms.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/dijkstra.h"  // ShortestPathTree, kInfiniteCost

namespace lumen {

/// Immutable CSR snapshot of a Digraph's out-adjacency.
class CsrDigraph {
 public:
  /// One packed out-link.
  struct OutLink {
    NodeId head;
    double weight;
    LinkId original;  ///< id of the corresponding Digraph link
  };

  /// Snapshots `g` (O(n + m)).
  explicit CsrDigraph(const Digraph& g);

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(offsets_.size() - 1);
  }
  [[nodiscard]] std::uint32_t num_links() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }

  /// Out-links of v, contiguous.
  [[nodiscard]] std::span<const OutLink> out(NodeId v) const {
    LUMEN_REQUIRE(v.value() < num_nodes());
    return {links_.data() + offsets_[v.value()],
            offsets_[v.value() + 1] - offsets_[v.value()]};
  }

 private:
  std::vector<std::size_t> offsets_;  // n+1 entries
  std::vector<OutLink> links_;
};

/// Dijkstra over the CSR view (Fibonacci heap).  Semantics identical to
/// dijkstra() on the originating Digraph — parent links are original ids.
[[nodiscard]] ShortestPathTree dijkstra_csr(
    const CsrDigraph& g, NodeId source,
    std::optional<NodeId> target = std::nullopt);

}  // namespace lumen
