// Compressed-sparse-row (CSR) digraph view with patchable weights.
//
// The mutable Digraph stores per-node link vectors — convenient while
// building, but each adjacency list is its own heap allocation.  CSR packs
// all out-links into one contiguous array for cache-friendly traversal;
// the Dijkstra inner loop on large auxiliary graphs is memory-bound, so
// this is the representation ablation bench_csr measures.  Link identity
// is preserved: every CSR out-link carries the original LinkId so results
// (parent links, extracted paths) remain expressed in Digraph terms.
//
// The structure (offsets, heads) is immutable after construction, but
// weights may be patched in place via slot indices (set_weight): this is
// what lets the build-once RouteEngine flip residual availability to/from
// +inf in O(1) per (link, wavelength) instead of rebuilding the arena.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/dijkstra.h"  // ShortestPathTree, kInfiniteCost

namespace lumen {

/// CSR snapshot of a Digraph's out-adjacency.  Structure is fixed;
/// weights are patchable by slot.
class CsrDigraph {
 public:
  /// One packed out-link.  Its index in the packed array is its "slot".
  struct OutLink {
    NodeId head;
    double weight;
    LinkId original;  ///< id of the corresponding Digraph link
  };

  /// Sentinel for "no slot" (e.g. a search seed's parent).
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

  /// Snapshots `g` (O(n + m)).
  explicit CsrDigraph(const Digraph& g);

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(offsets_.size() - 1);
  }
  [[nodiscard]] std::uint32_t num_links() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }

  /// Out-links of v, contiguous.
  [[nodiscard]] std::span<const OutLink> out(NodeId v) const {
    LUMEN_REQUIRE(v.value() < num_nodes());
    return {links_.data() + offsets_[v.value()],
            offsets_[v.value() + 1] - offsets_[v.value()]};
  }

  /// Slot range [first, last) of v's out-links in the packed array.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> out_slot_range(
      NodeId v) const {
    LUMEN_REQUIRE(v.value() < num_nodes());
    return {static_cast<std::uint32_t>(offsets_[v.value()]),
            static_cast<std::uint32_t>(offsets_[v.value() + 1])};
  }

  /// The packed out-link stored in `slot`.
  [[nodiscard]] const OutLink& link(std::uint32_t slot) const {
    LUMEN_REQUIRE(slot < num_links());
    return links_[slot];
  }

  /// Tail node of the link stored in `slot` (O(log n) over the offsets).
  /// Lets parent-slot chains from SearchScratch be walked back to a seed.
  [[nodiscard]] NodeId tail(std::uint32_t slot) const;

  /// Patches the weight stored in `slot` (>= 0, may be +infinity).  The
  /// structure is untouched, so views/spans stay valid.
  void set_weight(std::uint32_t slot, double weight) {
    LUMEN_REQUIRE(slot < num_links());
    LUMEN_REQUIRE_MSG(weight >= 0.0, "link weights must be non-negative");
    links_[slot].weight = weight;
  }

  /// Reverse index: result[original link id] = slot holding its snapshot.
  /// Each Digraph link appears in exactly one slot.  O(m).
  [[nodiscard]] std::vector<std::uint32_t> slots_by_original() const;

 private:
  std::vector<std::size_t> offsets_;  // n+1 entries
  std::vector<OutLink> links_;
};

/// Reusable search state for dijkstra_csr_run.  Buffers are sized to the
/// graph once and invalidated lazily via generation stamps, so after
/// warm-up a query allocates nothing and "clearing" is O(1).
///
/// Protocol per query: begin(n), mark_sink(v) for each early-exit target
/// (optional), run, then read dist()/parent_slot() for settled nodes.
/// One scratch serves one thread; concurrent searches need one scratch
/// each (the graph itself is safe to share read-only).
class SearchScratch {
 public:
  /// Opens a new query over an `num_nodes`-node graph: grows the buffers
  /// if needed and invalidates all per-node state from previous queries.
  void begin(std::uint32_t num_nodes);

  /// Marks v as a sink of the current query (search stops at the first
  /// settled sink).
  void mark_sink(NodeId v);
  [[nodiscard]] bool is_sink(NodeId v) const noexcept {
    return sink_stamp_[v.value()] == generation_;
  }

  /// Tentative/final distance of v in the current query (+inf when never
  /// touched).  Final iff settled(v).
  [[nodiscard]] double dist(NodeId v) const noexcept {
    return stamp_[v.value()] == generation_ ? dist_[v.value()] : kInfiniteCost;
  }
  [[nodiscard]] bool settled(NodeId v) const noexcept {
    return stamp_[v.value()] == generation_ && state_[v.value()] == kSettled;
  }
  /// Slot of the CSR link that last relaxed v (kInvalidSlot at seeds and
  /// untouched nodes).
  [[nodiscard]] std::uint32_t parent_slot(NodeId v) const noexcept {
    return stamp_[v.value()] == generation_ ? parent_[v.value()]
                                            : CsrDigraph::kInvalidSlot;
  }

 private:
  friend NodeId dijkstra_csr_run(const CsrDigraph&, std::span<const NodeId>,
                                 SearchScratch&, struct CsrRunStats*,
                                 std::span<const double>);

  static constexpr std::uint8_t kInHeap = 1;
  static constexpr std::uint8_t kSettled = 2;

  /// First touch of v in this query: resets its per-query state.
  void touch(std::uint32_t v) {
    if (stamp_[v] != generation_) {
      stamp_[v] = generation_;
      dist_[v] = kInfiniteCost;
      parent_[v] = CsrDigraph::kInvalidSlot;
      state_[v] = 0;
    }
  }

  // --- indexed 4-ary heap over node ids, keyed by dist_ -----------------
  void heap_push(std::uint32_t v);
  void heap_decrease(std::uint32_t v);
  std::uint32_t heap_pop_min();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::uint64_t generation_ = 0;
  std::vector<std::uint64_t> stamp_;       // per node: generation when touched
  std::vector<std::uint64_t> sink_stamp_;  // per node: generation when marked
  std::vector<double> dist_;
  std::vector<std::uint32_t> parent_;  // CSR slot
  std::vector<std::uint8_t> state_;    // kInHeap / kSettled (stamped)
  std::vector<std::uint32_t> heap_;    // node ids, min-ordered by dist_
  std::vector<std::uint32_t> pos_;     // heap position (valid while kInHeap)
};

/// Per-run effort counters of dijkstra_csr_run.
struct CsrRunStats {
  std::uint64_t pops = 0;
  std::uint64_t relaxations = 0;
};

/// Multi-source, early-exit Dijkstra over a CSR arena.
///
/// Seeds every node of `sources` at distance 0 (this is the RouteEngine's
/// "virtual terminal": equivalent to a zero-weight tie from an implicit
/// super-source, without materializing terminal nodes).  When sinks were
/// marked in `scratch`, the search stops at the first settled sink — which,
/// by Dijkstra's settle order, is the closest sink — and returns it
/// (invalid id when no sink is reachable).  With no sinks marked it runs to
/// exhaustion and returns an invalid id; distances are then a full SSSP.
///
/// `weights`, when non-empty, overrides the arena's stored weights
/// (indexed by slot; size num_links).  This serves structure-sharing
/// subnetwork caches that keep one weight row per wavelength.
NodeId dijkstra_csr_run(const CsrDigraph& g, std::span<const NodeId> sources,
                        SearchScratch& scratch, CsrRunStats* stats = nullptr,
                        std::span<const double> weights = {});

/// Dijkstra over the CSR view (Fibonacci heap).  Semantics identical to
/// dijkstra() on the originating Digraph — parent links are original ids.
[[nodiscard]] ShortestPathTree dijkstra_csr(
    const CsrDigraph& g, NodeId source,
    std::optional<NodeId> target = std::nullopt);

}  // namespace lumen
