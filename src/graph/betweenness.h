// Brandes' betweenness centrality.
//
// Betweenness — the fraction of shortest paths passing through a node —
// is the standard criterion for placing scarce shared infrastructure
// (here: wavelength converters, see rwa/placement.h) at the nodes most
// traffic transits.  This is the exact O(nm + n² log n) weighted Brandes
// algorithm: one Dijkstra per source with predecessor sets, followed by
// the dependency back-accumulation.
#pragma once

#include <vector>

#include "graph/digraph.h"
#include "util/strong_id.h"

namespace lumen {

/// Exact betweenness centrality of every node for the directed graph `g`
/// (non-negative weights; +inf links ignored).  Endpoints are excluded
/// (the classic definition); parallel shortest paths split credit.
/// Returns raw (unnormalized) scores.
[[nodiscard]] std::vector<double> betweenness_centrality(const Digraph& g);

}  // namespace lumen
