// Yen's K-shortest loopless paths.
//
// Generic substrate used by core/k_shortest to enumerate alternative
// semilightpaths (the standard building block for protection/restoration
// routing, which the paper's introduction motivates).  Paths are loopless
// in the *searched* graph; when the searched graph is an auxiliary graph,
// the corresponding physical walks may still legitimately revisit physical
// nodes (the Fig. 5 phenomenon).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/strong_id.h"

namespace lumen {

/// One ranked path: its links in order and its total weight.
struct RankedPath {
  std::vector<LinkId> links;
  double cost = 0.0;

  friend bool operator==(const RankedPath&, const RankedPath&) = default;
};

/// The K cheapest loopless paths from `source` to `target`, sorted by
/// non-decreasing cost (fewer than K when the graph has fewer distinct
/// loopless paths).  Weights must be non-negative; +inf links are ignored.
/// Requires source != target and K >= 1.
///
/// Complexity: O(K · n · (m + n log n)) — Yen's bound with Dijkstra as the
/// spur-path engine.
[[nodiscard]] std::vector<RankedPath> yen_k_shortest_paths(
    const Digraph& g, NodeId source, NodeId target, std::uint32_t K);

}  // namespace lumen
