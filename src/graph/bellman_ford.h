// Bellman–Ford single-source shortest paths.
//
// Serves two roles: an independent oracle for randomized Dijkstra testing,
// and the relaxation schedule the synchronous distributed algorithm
// (src/dist) follows — one Bellman–Ford sweep corresponds to one
// communication round.
#pragma once

#include "graph/dijkstra.h"  // ShortestPathTree, kInfiniteCost

namespace lumen {

/// Runs Bellman–Ford from `source`.  Weights may be any non-negative value
/// including +infinity (skipped).  Returns the same tree structure as
/// dijkstra(); `pops` counts full relaxation sweeps performed.
[[nodiscard]] ShortestPathTree bellman_ford(const Digraph& g, NodeId source);

}  // namespace lumen
