#include "graph/csr.h"

#include "graph/fib_heap.h"

namespace lumen {

CsrDigraph::CsrDigraph(const Digraph& g) {
  offsets_.resize(g.num_nodes() + 1);
  links_.reserve(g.num_links());
  std::size_t cursor = 0;
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    offsets_[v] = cursor;
    for (const LinkId e : g.out_links(NodeId{v})) {
      links_.push_back(OutLink{g.head(e), g.weight(e), e});
      ++cursor;
    }
  }
  offsets_[g.num_nodes()] = cursor;
}

ShortestPathTree dijkstra_csr(const CsrDigraph& g, NodeId source,
                              std::optional<NodeId> target) {
  LUMEN_REQUIRE(source.value() < g.num_nodes());
  if (target) LUMEN_REQUIRE(target->value() < g.num_nodes());

  ShortestPathTree tree;
  tree.source = source;
  tree.dist.assign(g.num_nodes(), kInfiniteCost);
  tree.parent_link.assign(g.num_nodes(), LinkId::invalid());

  std::vector<FibHeap::Handle> handle(g.num_nodes());
  std::vector<char> in_heap(g.num_nodes(), 0);
  std::vector<char> settled(g.num_nodes(), 0);

  FibHeap heap;
  tree.dist[source.value()] = 0.0;
  handle[source.value()] = heap.push(0.0, source.value());
  in_heap[source.value()] = 1;

  while (!heap.empty()) {
    const auto [d, u_raw] = heap.pop_min();
    ++tree.pops;
    in_heap[u_raw] = 0;
    settled[u_raw] = 1;
    if (target && NodeId{u_raw} == *target) break;
    if (d == kInfiniteCost) break;

    for (const CsrDigraph::OutLink& link : g.out(NodeId{u_raw})) {
      if (link.weight == kInfiniteCost) continue;
      const std::uint32_t v = link.head.value();
      if (settled[v]) continue;
      const double candidate = d + link.weight;
      if (candidate < tree.dist[v]) {
        tree.dist[v] = candidate;
        tree.parent_link[v] = link.original;
        ++tree.relaxations;
        if (in_heap[v]) {
          heap.decrease_key(handle[v], candidate);
        } else {
          handle[v] = heap.push(candidate, v);
          in_heap[v] = 1;
        }
      }
    }
  }
  return tree;
}

}  // namespace lumen
