#include "graph/csr.h"

#include <algorithm>

#include "graph/fib_heap.h"
#include "graph/simd_min.h"

namespace lumen {

CsrDigraph::CsrDigraph(const Digraph& g) {
  offsets_.resize(g.num_nodes() + 1);
  heads_.reserve(g.num_links());
  weights_.reserve(g.num_links());
  originals_.reserve(g.num_links());
  std::uint32_t cursor = 0;
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    offsets_[v] = cursor;
    for (const LinkId e : g.out_links(NodeId{v})) {
      heads_.push_back(g.head(e).value());
      weights_.push_back(g.weight(e));
      originals_.push_back(e);
      ++cursor;
    }
  }
  offsets_[g.num_nodes()] = cursor;
}

CsrDigraph CsrDigraph::reversed(const Digraph& g, ReversalMode mode) {
  const bool copy_weights = mode == ReversalMode::kCopyWeights;
  CsrDigraph csr;
  csr.offsets_.resize(g.num_nodes() + 1);
  csr.heads_.reserve(g.num_links());
  if (copy_weights) csr.weights_.reserve(g.num_links());
  csr.originals_.reserve(g.num_links());
  std::uint32_t cursor = 0;
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    csr.offsets_[v] = cursor;
    for (const LinkId e : g.in_links(NodeId{v})) {
      csr.heads_.push_back(g.tail(e).value());
      if (copy_weights) csr.weights_.push_back(g.weight(e));
      csr.originals_.push_back(e);
      ++cursor;
    }
  }
  csr.offsets_[g.num_nodes()] = cursor;
  return csr;
}

NodeId CsrDigraph::tail(std::uint32_t slot) const {
  LUMEN_REQUIRE(slot < num_links());
  // offsets_ is non-decreasing with offsets_[v] <= slot < offsets_[v+1]
  // exactly for the tail v; upper_bound lands one past that entry.
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), slot);
  return NodeId{static_cast<std::uint32_t>(it - offsets_.begin() - 1)};
}

std::vector<std::uint32_t> CsrDigraph::slots_by_original() const {
  std::vector<std::uint32_t> slots(num_links(), kInvalidSlot);
  for (std::uint32_t slot = 0; slot < num_links(); ++slot) {
    const std::uint32_t original = originals_[slot].value();
    LUMEN_ASSERT(original < slots.size());
    slots[original] = slot;
  }
  return slots;
}

// --- SearchScratch -------------------------------------------------------

void SearchScratch::begin(std::uint32_t num_nodes) {
  if (stamp_.size() < num_nodes) {
    stamp_.resize(num_nodes, 0);
    sink_stamp_.resize(num_nodes, 0);
    dist_.resize(num_nodes, kInfiniteCost);
    parent_.resize(num_nodes, CsrDigraph::kInvalidSlot);
    state_.resize(num_nodes, 0);
    pos_.resize(num_nodes, 0);
    // The A* potential memo and the hierarchy backward-side arrays are
    // sized lazily by their modes (ensure_potentials / begin_backward),
    // so plain-Dijkstra scratches carry only this set.
  }
  ++generation_;  // O(1) invalidation of all per-node state
  heap_.clear();
  hkey_.clear();
}

void SearchScratch::mark_sink(NodeId v) {
  LUMEN_REQUIRE(v.value() < sink_stamp_.size());
  sink_stamp_[v.value()] = generation_;
}

void SearchScratch::heap_push(std::uint32_t v, double key) {
  heap_.push_back(v);
  hkey_.push_back(key);
  pos_[v] = static_cast<std::uint32_t>(heap_.size() - 1);
  state_[v] = kInHeap;
  sift_up(heap_.size() - 1);
}

void SearchScratch::heap_decrease(std::uint32_t v, double key) {
  const std::uint32_t i = pos_[v];
  hkey_[i] = key;
  sift_up(i);
}

std::uint32_t SearchScratch::heap_pop_min() {
  const std::uint32_t top = heap_.front();
  const std::uint32_t last = heap_.back();
  const double last_key = hkey_.back();
  heap_.pop_back();
  hkey_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    hkey_[0] = last_key;
    pos_[last] = 0;
    sift_down(0);
  }
  return top;
}

void SearchScratch::sift_up(std::size_t i) {
  const std::uint32_t v = heap_[i];
  const double key = hkey_[i];
  while (i > 0) {
    const std::size_t up = (i - 1) / 4;
    if (hkey_[up] <= key) break;
    heap_[i] = heap_[up];
    hkey_[i] = hkey_[up];
    pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = up;
  }
  heap_[i] = v;
  hkey_[i] = key;
  pos_[v] = static_cast<std::uint32_t>(i);
}

void SearchScratch::sift_down(std::size_t i) {
  const std::uint32_t v = heap_[i];
  const double key = hkey_[i];
  const std::size_t size = heap_.size();
  while (true) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= size) break;
    const std::size_t count = std::min<std::size_t>(4, size - first_child);
    std::size_t best;
    double best_key;
#if defined(LUMEN_SIMD_HEAP)
    if (count == 4) {
      // Full fan-out: the four child keys sit contiguously in hkey_
      // (position-parallel layout), so the comparison tree runs as packed
      // mins over one straight 32-byte load — no per-child gather through
      // heap_ (see simd_min.h).  Ties pick the first index, matching the
      // scalar scan below bit-for-bit.  Opt-in: on the reference container
      // the compare/movemask/ctz index extraction sits on the sift's
      // critical path and loses to three predicted scalar compares (see
      // the sift-down ablation in docs/PERFORMANCE.md).
      const unsigned arg = argmin4(&hkey_[first_child]);
      best = first_child + arg;
      best_key = hkey_[best];
    } else
#endif
    {
      best = first_child;
      best_key = hkey_[first_child];
      for (std::size_t c = first_child + 1; c < first_child + count; ++c) {
        const double ck = hkey_[c];
        if (ck < best_key) {
          best = c;
          best_key = ck;
        }
      }
    }
    if (best_key >= key) break;
    heap_[i] = heap_[best];
    hkey_[i] = best_key;
    pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = best;
  }
  heap_[i] = v;
  hkey_[i] = key;
  pos_[v] = static_cast<std::uint32_t>(i);
}

// --- multi-source early-exit search ---------------------------------------

NodeId dijkstra_csr_run(const CsrDigraph& g, std::span<const NodeId> sources,
                        SearchScratch& scratch, CsrRunStats* stats,
                        std::span<const double> weights) {
  return csr_search_run(g, sources, scratch, NoPotential{}, stats, weights);
}

ShortestPathTree dijkstra_csr(const CsrDigraph& g, NodeId source,
                              std::optional<NodeId> target) {
  LUMEN_REQUIRE(source.value() < g.num_nodes());
  if (target) LUMEN_REQUIRE(target->value() < g.num_nodes());

  ShortestPathTree tree;
  tree.source = source;
  tree.dist.assign(g.num_nodes(), kInfiniteCost);
  tree.parent_link.assign(g.num_nodes(), LinkId::invalid());

  std::vector<FibHeap::Handle> handle(g.num_nodes());
  std::vector<char> in_heap(g.num_nodes(), 0);
  std::vector<char> settled(g.num_nodes(), 0);

  FibHeap heap;
  tree.dist[source.value()] = 0.0;
  handle[source.value()] = heap.push(0.0, source.value());
  in_heap[source.value()] = 1;

  const std::uint32_t* heads = g.heads_data();
  const double* w = g.weights_data();
  while (!heap.empty()) {
    const auto [d, u_raw] = heap.pop_min();
    ++tree.pops;
    in_heap[u_raw] = 0;
    settled[u_raw] = 1;
    if (target && NodeId{u_raw} == *target) break;
    if (d == kInfiniteCost) break;

    const auto [first, last] = g.out_slot_range(NodeId{u_raw});
    for (std::uint32_t slot = first; slot < last; ++slot) {
      if (w[slot] == kInfiniteCost) continue;
      const std::uint32_t v = heads[slot];
      if (settled[v]) continue;
      const double candidate = d + w[slot];
      if (candidate < tree.dist[v]) {
        tree.dist[v] = candidate;
        tree.parent_link[v] = g.original(slot);
        ++tree.relaxations;
        if (in_heap[v]) {
          heap.decrease_key(handle[v], candidate);
        } else {
          handle[v] = heap.push(candidate, v);
          in_heap[v] = 1;
        }
      }
    }
  }
  return tree;
}

}  // namespace lumen
