#include "graph/csr.h"

#include <algorithm>

#include "graph/fib_heap.h"

namespace lumen {

CsrDigraph::CsrDigraph(const Digraph& g) {
  offsets_.resize(g.num_nodes() + 1);
  links_.reserve(g.num_links());
  std::size_t cursor = 0;
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    offsets_[v] = cursor;
    for (const LinkId e : g.out_links(NodeId{v})) {
      links_.push_back(OutLink{g.head(e), g.weight(e), e});
      ++cursor;
    }
  }
  offsets_[g.num_nodes()] = cursor;
}

CsrDigraph CsrDigraph::reversed(const Digraph& g) {
  CsrDigraph csr;
  csr.offsets_.resize(g.num_nodes() + 1);
  csr.links_.reserve(g.num_links());
  std::size_t cursor = 0;
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    csr.offsets_[v] = cursor;
    for (const LinkId e : g.in_links(NodeId{v})) {
      csr.links_.push_back(OutLink{g.tail(e), g.weight(e), e});
      ++cursor;
    }
  }
  csr.offsets_[g.num_nodes()] = cursor;
  return csr;
}

NodeId CsrDigraph::tail(std::uint32_t slot) const {
  LUMEN_REQUIRE(slot < num_links());
  // offsets_ is non-decreasing with offsets_[v] <= slot < offsets_[v+1]
  // exactly for the tail v; upper_bound lands one past that entry.
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), slot);
  return NodeId{static_cast<std::uint32_t>(it - offsets_.begin() - 1)};
}

std::vector<std::uint32_t> CsrDigraph::slots_by_original() const {
  std::vector<std::uint32_t> slots(num_links(), kInvalidSlot);
  for (std::uint32_t slot = 0; slot < num_links(); ++slot) {
    const std::uint32_t original = links_[slot].original.value();
    LUMEN_ASSERT(original < slots.size());
    slots[original] = slot;
  }
  return slots;
}

// --- SearchScratch -------------------------------------------------------

void SearchScratch::begin(std::uint32_t num_nodes) {
  if (stamp_.size() < num_nodes) {
    stamp_.resize(num_nodes, 0);
    sink_stamp_.resize(num_nodes, 0);
    dist_.resize(num_nodes, kInfiniteCost);
    parent_.resize(num_nodes, CsrDigraph::kInvalidSlot);
    state_.resize(num_nodes, 0);
    key_.resize(num_nodes, kInfiniteCost);
    pos_.resize(num_nodes, 0);
    pot_stamp_.resize(num_nodes, 0);
    pot_.resize(num_nodes, 0.0);
  }
  ++generation_;  // O(1) invalidation of all per-node state
  heap_.clear();
}

void SearchScratch::mark_sink(NodeId v) {
  LUMEN_REQUIRE(v.value() < sink_stamp_.size());
  sink_stamp_[v.value()] = generation_;
}

void SearchScratch::heap_push(std::uint32_t v, double key) {
  key_[v] = key;
  heap_.push_back(v);
  pos_[v] = static_cast<std::uint32_t>(heap_.size() - 1);
  state_[v] = kInHeap;
  sift_up(heap_.size() - 1);
}

void SearchScratch::heap_decrease(std::uint32_t v, double key) {
  key_[v] = key;
  sift_up(pos_[v]);
}

std::uint32_t SearchScratch::heap_pop_min() {
  const std::uint32_t top = heap_.front();
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    pos_[last] = 0;
    sift_down(0);
  }
  return top;
}

void SearchScratch::sift_up(std::size_t i) {
  const std::uint32_t v = heap_[i];
  const double key = key_[v];
  while (i > 0) {
    const std::size_t up = (i - 1) / 4;
    const std::uint32_t u = heap_[up];
    if (key_[u] <= key) break;
    heap_[i] = u;
    pos_[u] = static_cast<std::uint32_t>(i);
    i = up;
  }
  heap_[i] = v;
  pos_[v] = static_cast<std::uint32_t>(i);
}

void SearchScratch::sift_down(std::size_t i) {
  const std::uint32_t v = heap_[i];
  const double key = key_[v];
  const std::size_t size = heap_.size();
  while (true) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= size) break;
    const std::size_t last_child = std::min(first_child + 4, size);
    std::size_t best = first_child;
    double best_key = key_[heap_[first_child]];
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      const double ck = key_[heap_[c]];
      if (ck < best_key) {
        best = c;
        best_key = ck;
      }
    }
    if (best_key >= key) break;
    const std::uint32_t child = heap_[best];
    heap_[i] = child;
    pos_[child] = static_cast<std::uint32_t>(i);
    i = best;
  }
  heap_[i] = v;
  pos_[v] = static_cast<std::uint32_t>(i);
}

// --- multi-source early-exit search ---------------------------------------

NodeId dijkstra_csr_run(const CsrDigraph& g, std::span<const NodeId> sources,
                        SearchScratch& scratch, CsrRunStats* stats,
                        std::span<const double> weights) {
  LUMEN_REQUIRE(weights.empty() || weights.size() == g.num_links());
  const bool overridden = !weights.empty();

  for (const NodeId s : sources) {
    LUMEN_REQUIRE(s.value() < g.num_nodes());
    scratch.touch(s.value());
    if (scratch.dist_[s.value()] > 0.0) {
      scratch.dist_[s.value()] = 0.0;
      scratch.parent_[s.value()] = CsrDigraph::kInvalidSlot;
      scratch.heap_push(s.value(), 0.0);
    }
  }

  while (!scratch.heap_.empty()) {
    const std::uint32_t u = scratch.heap_pop_min();
    scratch.state_[u] = SearchScratch::kSettled;
    if (stats != nullptr) {
      ++stats->pops;
      ++stats->settled;
    }
    if (scratch.sink_stamp_[u] == scratch.generation_) return NodeId{u};
    const double du = scratch.dist_[u];

    const auto [first, last] = g.out_slot_range(NodeId{u});
    for (std::uint32_t slot = first; slot < last; ++slot) {
      const CsrDigraph::OutLink& out = g.link(slot);
      const double w = overridden ? weights[slot] : out.weight;
      if (w == kInfiniteCost) continue;
      const std::uint32_t v = out.head.value();
      scratch.touch(v);
      if (scratch.state_[v] == SearchScratch::kSettled) continue;
      const double candidate = du + w;
      if (candidate < scratch.dist_[v]) {
        const bool queued = scratch.state_[v] == SearchScratch::kInHeap;
        scratch.dist_[v] = candidate;
        scratch.parent_[v] = slot;
        if (stats != nullptr) ++stats->relaxations;
        if (queued) {
          scratch.heap_decrease(v, candidate);
        } else {
          scratch.heap_push(v, candidate);
        }
      }
    }
  }
  return NodeId::invalid();
}

ShortestPathTree dijkstra_csr(const CsrDigraph& g, NodeId source,
                              std::optional<NodeId> target) {
  LUMEN_REQUIRE(source.value() < g.num_nodes());
  if (target) LUMEN_REQUIRE(target->value() < g.num_nodes());

  ShortestPathTree tree;
  tree.source = source;
  tree.dist.assign(g.num_nodes(), kInfiniteCost);
  tree.parent_link.assign(g.num_nodes(), LinkId::invalid());

  std::vector<FibHeap::Handle> handle(g.num_nodes());
  std::vector<char> in_heap(g.num_nodes(), 0);
  std::vector<char> settled(g.num_nodes(), 0);

  FibHeap heap;
  tree.dist[source.value()] = 0.0;
  handle[source.value()] = heap.push(0.0, source.value());
  in_heap[source.value()] = 1;

  while (!heap.empty()) {
    const auto [d, u_raw] = heap.pop_min();
    ++tree.pops;
    in_heap[u_raw] = 0;
    settled[u_raw] = 1;
    if (target && NodeId{u_raw} == *target) break;
    if (d == kInfiniteCost) break;

    for (const CsrDigraph::OutLink& link : g.out(NodeId{u_raw})) {
      if (link.weight == kInfiniteCost) continue;
      const std::uint32_t v = link.head.value();
      if (settled[v]) continue;
      const double candidate = d + link.weight;
      if (candidate < tree.dist[v]) {
        tree.dist[v] = candidate;
        tree.parent_link[v] = link.original;
        ++tree.relaxations;
        if (in_heap[v]) {
          heap.decrease_key(handle[v], candidate);
        } else {
          handle[v] = heap.push(candidate, v);
          in_heap[v] = 1;
        }
      }
    }
  }
  return tree;
}

}  // namespace lumen
