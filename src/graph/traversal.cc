#include "graph/traversal.h"

#include <queue>

namespace lumen {

std::vector<NodeId> bfs_order(const Digraph& g, NodeId source) {
  LUMEN_REQUIRE(source.value() < g.num_nodes());
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> order;
  order.reserve(g.num_nodes());
  std::queue<NodeId> queue;
  queue.push(source);
  seen[source.value()] = 1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    order.push_back(u);
    for (const LinkId e : g.out_links(u)) {
      const NodeId v = g.head(e);
      if (!seen[v.value()]) {
        seen[v.value()] = 1;
        queue.push(v);
      }
    }
  }
  return order;
}

std::vector<bool> reachable_from(const Digraph& g, NodeId source) {
  std::vector<bool> reachable(g.num_nodes(), false);
  for (const NodeId v : bfs_order(g, source)) reachable[v.value()] = true;
  return reachable;
}

bool is_strongly_connected(const Digraph& g) {
  if (g.num_nodes() == 0) return true;
  // Forward BFS from node 0 must reach everything...
  if (bfs_order(g, NodeId{0}).size() != g.num_nodes()) return false;
  // ...and backward BFS (following in-links) must as well.
  std::vector<char> seen(g.num_nodes(), 0);
  std::queue<NodeId> queue;
  queue.push(NodeId{0});
  seen[0] = 1;
  std::size_t count = 1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (const LinkId e : g.in_links(u)) {
      const NodeId v = g.tail(e);
      if (!seen[v.value()]) {
        seen[v.value()] = 1;
        ++count;
        queue.push(v);
      }
    }
  }
  return count == g.num_nodes();
}

bool is_weakly_connected(const Digraph& g) {
  if (g.num_nodes() == 0) return true;
  std::vector<char> seen(g.num_nodes(), 0);
  std::queue<NodeId> queue;
  queue.push(NodeId{0});
  seen[0] = 1;
  std::size_t count = 1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    auto visit = [&](NodeId v) {
      if (!seen[v.value()]) {
        seen[v.value()] = 1;
        ++count;
        queue.push(v);
      }
    };
    for (const LinkId e : g.out_links(u)) visit(g.head(e));
    for (const LinkId e : g.in_links(u)) visit(g.tail(e));
  }
  return count == g.num_nodes();
}

int bfs_hops(const Digraph& g, NodeId source, NodeId target) {
  LUMEN_REQUIRE(source.value() < g.num_nodes());
  LUMEN_REQUIRE(target.value() < g.num_nodes());
  std::vector<int> hops(g.num_nodes(), -1);
  std::queue<NodeId> queue;
  queue.push(source);
  hops[source.value()] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    if (u == target) return hops[u.value()];
    for (const LinkId e : g.out_links(u)) {
      const NodeId v = g.head(e);
      if (hops[v.value()] < 0) {
        hops[v.value()] = hops[u.value()] + 1;
        queue.push(v);
      }
    }
  }
  return hops[target.value()];
}

}  // namespace lumen
