// Dijkstra single-source shortest paths, parameterized on the heap.
//
// This is the engine Theorem 1 runs on the auxiliary graph G_{s,t}: with the
// Fibonacci heap it meets the O(m' + n' log n') bound.  Weights must be
// non-negative; +infinity weights mark unusable links and are skipped.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/digraph.h"
#include "graph/fib_heap.h"
#include "util/error.h"
#include "util/strong_id.h"

namespace lumen {

/// Unreachable-distance sentinel.
inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// Result of a Dijkstra run: a shortest-path tree rooted at the source.
struct ShortestPathTree {
  NodeId source;
  /// dist[v] = cost of the shortest path source -> v (kInfiniteCost if
  /// unreachable, or not settled when a target cut the search short).
  std::vector<double> dist;
  /// parent_link[v] = last link on the shortest path to v (invalid at the
  /// source and at unreached nodes).
  std::vector<LinkId> parent_link;
  /// Number of pop_min operations performed (instrumentation).
  std::uint64_t pops = 0;
  /// Number of successful relaxations (instrumentation).
  std::uint64_t relaxations = 0;

  [[nodiscard]] bool reached(NodeId v) const {
    LUMEN_REQUIRE(v.value() < dist.size());
    return dist[v.value()] < kInfiniteCost;
  }
};

/// Runs Dijkstra from `source`.  If `target` is given, the search stops as
/// soon as the target is settled (distances of other nodes may then be
/// upper bounds only, but dist[target] and the path to it are exact).
///
/// Heap must provide: Handle push(double,uint32_t), pop_min(),
/// decrease_key(Handle,double), empty().
template <class Heap>
ShortestPathTree dijkstra_with(const Digraph& g, NodeId source,
                               std::optional<NodeId> target = std::nullopt) {
  LUMEN_REQUIRE(source.value() < g.num_nodes());
  if (target) LUMEN_REQUIRE(target->value() < g.num_nodes());

  ShortestPathTree tree;
  tree.source = source;
  tree.dist.assign(g.num_nodes(), kInfiniteCost);
  tree.parent_link.assign(g.num_nodes(), LinkId::invalid());

  // Per-thread search buffers, reused across calls: repeated queries (the
  // RouteEngine regime, all-pairs trees, per-wavelength sweeps) stop
  // paying three O(n) heap allocations each.  assign() recycles capacity.
  struct Scratch {
    std::vector<typename Heap::Handle> handle;
    std::vector<char> in_heap;
    std::vector<char> settled;
  };
  thread_local Scratch scratch;
  if (scratch.handle.size() < g.num_nodes())
    scratch.handle.resize(g.num_nodes());
  scratch.in_heap.assign(g.num_nodes(), 0);
  scratch.settled.assign(g.num_nodes(), 0);
  std::vector<typename Heap::Handle>& handle = scratch.handle;
  std::vector<char>& in_heap = scratch.in_heap;
  std::vector<char>& settled = scratch.settled;

  Heap heap;
  tree.dist[source.value()] = 0.0;
  handle[source.value()] = heap.push(0.0, source.value());
  in_heap[source.value()] = 1;

  while (!heap.empty()) {
    const auto [d, u_raw] = heap.pop_min();
    ++tree.pops;
    const NodeId u{u_raw};
    in_heap[u_raw] = 0;
    settled[u_raw] = 1;
    if (target && u == *target) break;
    if (d == kInfiniteCost) break;  // remaining nodes unreachable

    for (const LinkId e : g.out_links(u)) {
      const double w = g.weight(e);
      if (w == kInfiniteCost) continue;
      const NodeId v = g.head(e);
      if (settled[v.value()]) continue;
      const double candidate = d + w;
      if (candidate < tree.dist[v.value()]) {
        tree.dist[v.value()] = candidate;
        tree.parent_link[v.value()] = e;
        ++tree.relaxations;
        if (in_heap[v.value()]) {
          heap.decrease_key(handle[v.value()], candidate);
        } else {
          handle[v.value()] = heap.push(candidate, v.value());
          in_heap[v.value()] = 1;
        }
      }
    }
  }
  return tree;
}

/// Dijkstra with the Fibonacci heap (the paper's choice).
[[nodiscard]] ShortestPathTree dijkstra(
    const Digraph& g, NodeId source,
    std::optional<NodeId> target = std::nullopt);

/// Reconstructs the link sequence of the tree path source -> target.
/// Returns std::nullopt when the target was not reached.
[[nodiscard]] std::optional<std::vector<LinkId>> extract_path(
    const Digraph& g, const ShortestPathTree& tree, NodeId target);

}  // namespace lumen
