#include "wdm/io.h"

#include <cmath>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>

#include "graph/dijkstra.h"  // kInfiniteCost
#include "util/error.h"

namespace lumen {

namespace {

void write_conversion(const WdmNetwork& net, std::ostream& os) {
  const ConversionModel& model = net.conversion();
  const std::uint32_t n = net.num_nodes();
  const std::uint32_t k = net.num_wavelengths();

  if (dynamic_cast<const NoConversion*>(&model) != nullptr) {
    os << "conversion none\n";
    return;
  }
  if (const auto* uniform = dynamic_cast<const UniformConversion*>(&model)) {
    const double c =
        k >= 2 ? uniform->cost(NodeId{0}, Wavelength{0}, Wavelength{1}) : 0.0;
    os << "conversion uniform " << c << "\n";
    return;
  }
  if (const auto* range =
          dynamic_cast<const RangeLimitedConversion*>(&model)) {
    os << "conversion range " << range->radius() << " " << range->base()
       << " " << range->per_step() << "\n";
    return;
  }

  // General case (SparseConversion, MatrixConversion, custom models):
  // materialize behaviour as matrix lines.
  os << "conversion matrix\n";
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t p = 0; p < k; ++p) {
      for (std::uint32_t q = 0; q < k; ++q) {
        if (p == q) continue;
        const double c = model.cost(NodeId{v}, Wavelength{p}, Wavelength{q});
        if (c == kInfiniteCost) continue;
        os << "conv " << v << " " << p << " " << q << " " << c << "\n";
      }
    }
  }
}

[[noreturn]] void parse_fail(std::size_t line_number, const std::string& why) {
  throw Error("parse error at line " + std::to_string(line_number) + ": " +
              why);
}

}  // namespace

void write_network(const WdmNetwork& net, std::ostream& os) {
  os.precision(17);  // lossless double round-trip
  os << "lumen-wdm 1\n";
  os << "nodes " << net.num_nodes() << "\n";
  os << "wavelengths " << net.num_wavelengths() << "\n";
  write_conversion(net, os);
  for (std::uint32_t ei = 0; ei < net.num_links(); ++ei) {
    const LinkId e{ei};
    const auto list = net.available(e);
    os << "link " << net.tail(e).value() << " " << net.head(e).value() << " "
       << list.size();
    for (const LinkWavelength& lw : list)
      os << "  " << lw.lambda.value() << " " << lw.cost;
    os << "\n";
  }
  os << "end\n";
}

std::string network_to_string(const WdmNetwork& net) {
  std::ostringstream os;
  write_network(net, os);
  return os.str();
}

WdmNetwork read_network(std::istream& is) {
  std::size_t line_number = 0;
  std::string line;

  auto next_line = [&]() -> std::string {
    while (std::getline(is, line)) {
      ++line_number;
      // Strip comments and surrounding whitespace.
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      const auto first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;
      const auto last = line.find_last_not_of(" \t\r");
      return line.substr(first, last - first + 1);
    }
    parse_fail(line_number, "unexpected end of input");
  };

  // Header.
  {
    std::istringstream ss(next_line());
    std::string magic;
    int version = 0;
    ss >> magic >> version;
    if (magic != "lumen-wdm" || version != 1)
      parse_fail(line_number, "expected 'lumen-wdm 1' header");
  }

  std::uint32_t n = 0, k = 0;
  {
    std::istringstream ss(next_line());
    std::string keyword;
    ss >> keyword >> n;
    if (keyword != "nodes" || ss.fail())
      parse_fail(line_number, "expected 'nodes <n>'");
  }
  {
    std::istringstream ss(next_line());
    std::string keyword;
    ss >> keyword >> k;
    if (keyword != "wavelengths" || ss.fail() || k == 0)
      parse_fail(line_number, "expected 'wavelengths <k>' with k >= 1");
  }

  // Conversion model.
  std::shared_ptr<const ConversionModel> conversion;
  std::shared_ptr<MatrixConversion> matrix;  // kept for `conv` lines
  {
    std::istringstream ss(next_line());
    std::string keyword, kind;
    ss >> keyword >> kind;
    if (keyword != "conversion")
      parse_fail(line_number, "expected 'conversion <kind>'");
    if (kind == "none") {
      conversion = std::make_shared<NoConversion>();
    } else if (kind == "uniform") {
      double c = 0;
      ss >> c;
      if (ss.fail() || c < 0)
        parse_fail(line_number, "expected 'conversion uniform <cost>'");
      conversion = std::make_shared<UniformConversion>(c);
    } else if (kind == "range") {
      std::uint32_t radius = 0;
      double base = 0, per_step = 0;
      ss >> radius >> base >> per_step;
      if (ss.fail() || base < 0 || per_step < 0)
        parse_fail(line_number,
                   "expected 'conversion range <radius> <base> <per_step>'");
      conversion =
          std::make_shared<RangeLimitedConversion>(radius, base, per_step);
    } else if (kind == "matrix") {
      matrix = std::make_shared<MatrixConversion>(n, k);
      conversion = matrix;
    } else {
      parse_fail(line_number, "unknown conversion kind '" + kind + "'");
    }
  }

  WdmNetwork net(n, k, conversion);

  // Body: conv / link lines until end.
  while (true) {
    std::istringstream ss(next_line());
    std::string keyword;
    ss >> keyword;
    if (keyword == "end") break;
    if (keyword == "conv") {
      if (matrix == nullptr)
        parse_fail(line_number, "'conv' line outside matrix conversion");
      std::uint32_t v = 0, p = 0, q = 0;
      double c = 0;
      ss >> v >> p >> q >> c;
      if (ss.fail() || v >= n || p >= k || q >= k || p == q || c < 0)
        parse_fail(line_number, "malformed 'conv v from to cost' line");
      matrix->set(NodeId{v}, Wavelength{p}, Wavelength{q}, c);
      continue;
    }
    if (keyword == "link") {
      std::uint32_t u = 0, v = 0, count = 0;
      ss >> u >> v >> count;
      if (ss.fail() || u >= n || v >= n)
        parse_fail(line_number, "malformed 'link tail head count' line");
      const LinkId e = net.add_link(NodeId{u}, NodeId{v});
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t lambda = 0;
        double cost = 0;
        ss >> lambda >> cost;
        if (ss.fail() || lambda >= k || cost < 0 || !std::isfinite(cost))
          parse_fail(line_number, "malformed (λ, cost) pair on link line");
        net.set_wavelength(e, Wavelength{lambda}, cost);
      }
      continue;
    }
    parse_fail(line_number, "unknown keyword '" + keyword + "'");
  }
  return net;
}

WdmNetwork network_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_network(is);
}

}  // namespace lumen
