#include "wdm/metrics.h"

#include <algorithm>
#include <cmath>

namespace lumen {

NetworkMetrics compute_metrics(const WdmNetwork& net) {
  NetworkMetrics metrics;

  // Occupancy.
  std::vector<std::uint64_t> per_lambda(net.num_wavelengths(), 0);
  for (std::uint32_t ei = 0; ei < net.num_links(); ++ei) {
    const LinkId e{ei};
    const auto list = net.available(e);
    metrics.free_pairs += list.size();
    if (list.empty()) ++metrics.dead_links;
    for (const LinkWavelength& lw : list) ++per_lambda[lw.lambda.value()];
  }

  // Continuity alignment over adjacent link pairs.
  double alignment_sum = 0.0;
  std::uint64_t pairs = 0;
  for (std::uint32_t vi = 0; vi < net.num_nodes(); ++vi) {
    const NodeId v{vi};
    for (const LinkId in : net.in_links(v)) {
      const WavelengthSet in_set = net.lambda_set(in);
      if (in_set.empty()) continue;
      for (const LinkId out : net.out_links(v)) {
        WavelengthSet common = net.lambda_set(out);
        if (common.empty()) continue;
        const std::uint32_t smaller =
            std::min(in_set.size(), common.size());
        common &= in_set;
        alignment_sum += static_cast<double>(common.size()) /
                         static_cast<double>(std::max(1u, smaller));
        ++pairs;
      }
    }
  }
  metrics.continuity_alignment = pairs ? alignment_sum / pairs : 1.0;

  // Per-wavelength imbalance (coefficient of variation).
  double mean = 0.0;
  for (const std::uint64_t count : per_lambda) mean += count;
  mean /= static_cast<double>(per_lambda.size());
  if (mean > 0.0) {
    double var = 0.0;
    for (const std::uint64_t count : per_lambda) {
      const double d = static_cast<double>(count) - mean;
      var += d * d;
    }
    var /= static_cast<double>(per_lambda.size());
    metrics.wavelength_imbalance = std::sqrt(var) / mean;
  }
  return metrics;
}

}  // namespace lumen
