// Wavelength-conversion cost models c_v(λ_p, λ_q).
//
// The paper's cost structure: c_v(λ, λ) = 0 always; c_v(λ_p, λ_q) ≥ 0 is the
// cost of switching an optical signal from λ_p to λ_q at node v, and is
// +infinity when node v cannot perform that conversion.  Different physical
// node designs correspond to different models below.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "graph/dijkstra.h"  // kInfiniteCost
#include "util/error.h"
#include "util/strong_id.h"

namespace lumen {

/// Interface: per-node wavelength conversion cost function.
///
/// Contract for every implementation: cost(v, λ, λ) == 0 for all v and λ,
/// and cost(...) ≥ 0 (may be +infinity = conversion not supported).
class ConversionModel {
 public:
  virtual ~ConversionModel() = default;

  /// Cost of converting from `from` to `to` at node `v`.
  [[nodiscard]] virtual double cost(NodeId v, Wavelength from,
                                    Wavelength to) const = 0;

  /// True when node `v` can convert `from` to `to` at finite cost.
  [[nodiscard]] bool allowed(NodeId v, Wavelength from, Wavelength to) const {
    return cost(v, from, to) < kInfiniteCost;
  }
};

/// No node can convert: only lightpaths are feasible.
class NoConversion final : public ConversionModel {
 public:
  [[nodiscard]] double cost(NodeId, Wavelength from,
                            Wavelength to) const override {
    return from == to ? 0.0 : kInfiniteCost;
  }
};

/// Every node converts any wavelength to any other at one flat cost.
class UniformConversion final : public ConversionModel {
 public:
  /// `conversion_cost` must be ≥ 0 (0 models free full conversion).
  explicit UniformConversion(double conversion_cost)
      : conversion_cost_(conversion_cost) {
    LUMEN_REQUIRE(conversion_cost >= 0.0);
  }

  [[nodiscard]] double cost(NodeId, Wavelength from,
                            Wavelength to) const override {
    return from == to ? 0.0 : conversion_cost_;
  }

 private:
  double conversion_cost_;
};

/// Limited-range converters: λ_p -> λ_q is possible only when
/// |p - q| <= radius; the cost grows linearly with the distance.
/// Models the common "adjacent-channel" converter hardware.
class RangeLimitedConversion final : public ConversionModel {
 public:
  /// cost = base + per_step * |p - q| when |p - q| <= radius.
  RangeLimitedConversion(std::uint32_t radius, double base, double per_step)
      : radius_(radius), base_(base), per_step_(per_step) {
    LUMEN_REQUIRE(base >= 0.0 && per_step >= 0.0);
  }

  [[nodiscard]] double cost(NodeId, Wavelength from,
                            Wavelength to) const override {
    if (from == to) return 0.0;
    const std::uint32_t gap = from.value() > to.value()
                                  ? from.value() - to.value()
                                  : to.value() - from.value();
    if (gap > radius_) return kInfiniteCost;
    return base_ + per_step_ * static_cast<double>(gap);
  }

  [[nodiscard]] std::uint32_t radius() const noexcept { return radius_; }
  [[nodiscard]] double base() const noexcept { return base_; }
  [[nodiscard]] double per_step() const noexcept { return per_step_; }

 private:
  std::uint32_t radius_;
  double base_;
  double per_step_;
};

/// Sparse wavelength conversion: only the listed nodes carry converters
/// (delegating to an inner model there); all other nodes cannot convert.
class SparseConversion final : public ConversionModel {
 public:
  SparseConversion(std::vector<NodeId> converter_nodes,
                   std::shared_ptr<const ConversionModel> inner)
      : converters_(converter_nodes.begin(), converter_nodes.end()),
        inner_(std::move(inner)) {
    LUMEN_REQUIRE(inner_ != nullptr);
  }

  [[nodiscard]] double cost(NodeId v, Wavelength from,
                            Wavelength to) const override {
    if (from == to) return 0.0;
    if (!converters_.contains(v)) return kInfiniteCost;
    return inner_->cost(v, from, to);
  }

  [[nodiscard]] bool is_converter(NodeId v) const {
    return converters_.contains(v);
  }

 private:
  std::unordered_set<NodeId> converters_;
  std::shared_ptr<const ConversionModel> inner_;
};

/// Fully general model: an explicit k×k cost matrix per node, default
/// "no conversion".  Used for the paper's worked example and for
/// adversarial instances (Fig. 5).
class MatrixConversion final : public ConversionModel {
 public:
  /// All off-diagonal entries start at +infinity (disallowed).
  MatrixConversion(std::uint32_t num_nodes, std::uint32_t num_wavelengths)
      : k_(num_wavelengths),
        costs_(static_cast<std::size_t>(num_nodes) * num_wavelengths *
                   num_wavelengths,
               kInfiniteCost) {}

  /// Sets c_v(from, to) = c.  Requires from != to and c ≥ 0 (may be
  /// +infinity to re-disallow).
  void set(NodeId v, Wavelength from, Wavelength to, double c) {
    LUMEN_REQUIRE_MSG(from != to, "the diagonal is fixed at zero");
    LUMEN_REQUIRE(c >= 0.0);
    costs_[index(v, from, to)] = c;
  }

  /// Allows every ordered pair at node v with one flat cost.
  void set_all_pairs(NodeId v, double c) {
    for (std::uint32_t p = 0; p < k_; ++p)
      for (std::uint32_t q = 0; q < k_; ++q)
        if (p != q) set(v, Wavelength{p}, Wavelength{q}, c);
  }

  [[nodiscard]] double cost(NodeId v, Wavelength from,
                            Wavelength to) const override {
    if (from == to) return 0.0;
    return costs_[index(v, from, to)];
  }

 private:
  [[nodiscard]] std::size_t index(NodeId v, Wavelength from,
                                  Wavelength to) const {
    LUMEN_REQUIRE(from.value() < k_ && to.value() < k_);
    const std::size_t base = static_cast<std::size_t>(v.value()) * k_ * k_;
    LUMEN_REQUIRE(base + from.value() * k_ + to.value() < costs_.size());
    return base + static_cast<std::size_t>(from.value()) * k_ + to.value();
  }

  std::uint32_t k_;
  std::vector<double> costs_;
};

}  // namespace lumen
