// Plain-text serialization of WDM networks.
//
// A small line-oriented format so that test fixtures, example scenarios,
// and externally generated topologies can be stored and exchanged:
//
//   lumen-wdm 1
//   nodes 7
//   wavelengths 4
//   conversion uniform 0.25        # none | uniform c | range r base step
//                                  # | matrix
//   link 0 1 2  0 1.0  2 1.0       # tail head count  (λ cost)...
//   conv 2 1 2 0.4                 # matrix mode only: v from to cost
//   end
//
// Writing recognizes the stock conversion models (none / uniform / range)
// and emits them compactly; any other model — including SparseConversion
// and MatrixConversion — is materialized behaviour-exactly as `matrix`
// lines (every finite off-diagonal c_v(λp, λq)).  Reading therefore
// round-trips the *behaviour* of every model, not its C++ type.
#pragma once

#include <iosfwd>
#include <string>

#include "wdm/network.h"

namespace lumen {

/// Writes `net` in the format above.
void write_network(const WdmNetwork& net, std::ostream& os);

/// Convenience: the serialized form as a string.
[[nodiscard]] std::string network_to_string(const WdmNetwork& net);

/// Parses a network; throws lumen::Error with a line number on malformed
/// input.
[[nodiscard]] WdmNetwork read_network(std::istream& is);

/// Convenience: parse from a string.
[[nodiscard]] WdmNetwork network_from_string(const std::string& text);

}  // namespace lumen
