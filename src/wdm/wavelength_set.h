// Dynamic bitset over the wavelength universe Λ = {λ_0 .. λ_{k-1}}.
//
// Λ(e), Λ_in(v), and Λ_out(v) from the paper are all WavelengthSet values.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"
#include "util/strong_id.h"

namespace lumen {

/// A set of wavelengths drawn from a fixed universe of size k.
class WavelengthSet {
 public:
  WavelengthSet() = default;

  /// Empty set over a universe of `universe_size` wavelengths.
  explicit WavelengthSet(std::uint32_t universe_size)
      : universe_(universe_size), words_((universe_size + 63) / 64, 0) {}

  [[nodiscard]] std::uint32_t universe_size() const noexcept {
    return universe_;
  }

  /// Number of wavelengths in the set.
  [[nodiscard]] std::uint32_t size() const noexcept {
    std::uint32_t total = 0;
    for (const auto word : words_)
      total += static_cast<std::uint32_t>(__builtin_popcountll(word));
    return total;
  }

  [[nodiscard]] bool empty() const noexcept {
    for (const auto word : words_)
      if (word != 0) return false;
    return true;
  }

  void insert(Wavelength lambda) {
    check(lambda);
    words_[lambda.value() >> 6] |= bit(lambda);
  }

  void erase(Wavelength lambda) {
    check(lambda);
    words_[lambda.value() >> 6] &= ~bit(lambda);
  }

  [[nodiscard]] bool contains(Wavelength lambda) const {
    check(lambda);
    return (words_[lambda.value() >> 6] & bit(lambda)) != 0;
  }

  /// In-place union with another set over the same universe.
  WavelengthSet& operator|=(const WavelengthSet& other) {
    LUMEN_REQUIRE(universe_ == other.universe_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      words_[i] |= other.words_[i];
    return *this;
  }

  /// In-place intersection with another set over the same universe.
  WavelengthSet& operator&=(const WavelengthSet& other) {
    LUMEN_REQUIRE(universe_ == other.universe_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      words_[i] &= other.words_[i];
    return *this;
  }

  friend bool operator==(const WavelengthSet&, const WavelengthSet&) = default;

  /// Members in increasing wavelength order.
  [[nodiscard]] std::vector<Wavelength> to_vector() const {
    std::vector<Wavelength> out;
    out.reserve(size());
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int b = __builtin_ctzll(word);
        out.push_back(
            Wavelength{static_cast<std::uint32_t>((w << 6) + b)});
        word &= word - 1;
      }
    }
    return out;
  }

 private:
  void check(Wavelength lambda) const {
    LUMEN_REQUIRE_MSG(lambda.valid() && lambda.value() < universe_,
                      "wavelength outside universe");
  }
  static std::uint64_t bit(Wavelength lambda) noexcept {
    return std::uint64_t{1} << (lambda.value() & 63);
  }

  std::uint32_t universe_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace lumen
